#include "core/governor.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

// Default AMT pricing: $0.02/HIT * 5 workers = $0.10 per HIT, 5 questions
// per HIT — the paper's Section 6.2 setting.
constexpr double kHit = 0.1;

GovernorOptions DollarCap(double cap) {
  GovernorOptions opt;
  opt.max_cost_usd = cap;
  return opt;
}

TEST(GovernorOptionsTest, DefaultIsDisabled) {
  EXPECT_FALSE(GovernorOptions{}.enabled());
}

TEST(GovernorOptionsTest, AnyLimitEnables) {
  GovernorOptions opt;
  opt.max_rounds = 1;
  EXPECT_TRUE(opt.enabled());
  opt = {};
  opt.max_cost_usd = 0.5;
  EXPECT_TRUE(opt.enabled());
  opt = {};
  opt.stall_rounds = 2;
  EXPECT_TRUE(opt.enabled());
  opt = {};
  CancellationToken token;
  opt.cancel = &token;
  EXPECT_TRUE(opt.enabled());
}

TEST(GovernorTest, UnlimitedGovernorAlwaysFunds) {
  RunGovernor gov(GovernorOptions{}, AmtCostModel{}, /*max_retries=*/3);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(gov.CanFundQuestion(i));
  }
  EXPECT_FALSE(gov.stopped());
  EXPECT_EQ(gov.reason(), TerminationReason::kCompleted);
  EXPECT_EQ(gov.denied_questions(), 0);
}

TEST(GovernorTest, DollarCapFundsUpToOneHit) {
  RunGovernor gov(DollarCap(kHit), AmtCostModel{}, /*max_retries=*/0);
  // Questions 1..5 all fit in the first HIT (worst case = open + 1).
  for (int64_t open = 0; open < 5; ++open) {
    EXPECT_TRUE(gov.CanFundQuestion(open)) << open;
  }
  // The 6th question would need a second HIT.
  EXPECT_FALSE(gov.CanFundQuestion(5));
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.reason(), TerminationReason::kDollarCap);
  EXPECT_EQ(gov.denied_questions(), 1);
}

TEST(GovernorTest, DollarCapReservesWorstCaseRetryChain) {
  // With 3 retries a question's worst case is 4 paid attempts; under a
  // one-HIT cap only the question whose whole chain fits is funded.
  RunGovernor gov(DollarCap(kHit), AmtCostModel{}, /*max_retries=*/3);
  EXPECT_TRUE(gov.CanFundQuestion(0));   // worst 4 attempts -> 1 HIT
  EXPECT_TRUE(gov.CanFundQuestion(1));   // worst 5 attempts -> 1 HIT
  EXPECT_FALSE(gov.CanFundQuestion(2));  // worst 6 attempts -> 2 HITs
  EXPECT_EQ(gov.reason(), TerminationReason::kDollarCap);
}

TEST(GovernorTest, ClosedRoundsBillTheLedger) {
  RunGovernor gov(DollarCap(3 * kHit), AmtCostModel{}, /*max_retries=*/0);
  EXPECT_DOUBLE_EQ(gov.cost_spent_usd(), 0.0);
  gov.OnRoundClosed(/*round_questions=*/5, /*resolved_total=*/5);
  EXPECT_EQ(gov.hits_closed(), 1);
  EXPECT_DOUBLE_EQ(gov.cost_spent_usd(), kHit);
  gov.OnRoundClosed(/*round_questions=*/6, /*resolved_total=*/11);
  EXPECT_EQ(gov.hits_closed(), 3);  // ceil(6/5) = 2 more
  EXPECT_DOUBLE_EQ(gov.cost_spent_usd(), 3 * kHit);
  EXPECT_EQ(gov.rounds_closed(), 2);
  // The cap is fully committed: nothing more is fundable.
  EXPECT_FALSE(gov.CanFundQuestion(0));
  EXPECT_EQ(gov.reason(), TerminationReason::kDollarCap);
}

TEST(GovernorTest, SpentNeverExceedsCap) {
  // Drive a synthetic run: fund-then-bill in governor-shaped steps and
  // check the headline invariant after every round.
  RunGovernor gov(DollarCap(2.5 * kHit), AmtCostModel{}, /*max_retries=*/1);
  int64_t open = 0;
  for (int round = 0; round < 10; ++round) {
    while (gov.CanFundQuestion(open)) ++open;
    if (open == 0) break;
    gov.OnRoundClosed(open, /*resolved_total=*/(round + 1) * 100);
    open = 0;
    EXPECT_LE(gov.cost_spent_usd(), gov.cost_cap_usd() + 1e-9);
  }
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.reason(), TerminationReason::kDollarCap);
}

TEST(GovernorTest, RoundCapStopsAtBoundary) {
  GovernorOptions opt;
  opt.max_rounds = 2;
  RunGovernor gov(opt, AmtCostModel{}, /*max_retries=*/0);
  gov.OnRoundClosed(1, 1);
  EXPECT_FALSE(gov.stopped());
  EXPECT_TRUE(gov.CanFundQuestion(0));
  gov.OnRoundClosed(1, 2);
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.reason(), TerminationReason::kRoundCap);
  EXPECT_FALSE(gov.CanFundQuestion(0));
  EXPECT_EQ(gov.denied_questions(), 1);
}

TEST(GovernorTest, StallWatchdogTripsOnZeroProgressStreak) {
  GovernorOptions opt;
  opt.stall_rounds = 2;
  RunGovernor gov(opt, AmtCostModel{}, /*max_retries=*/0);
  gov.OnRoundClosed(1, /*resolved_total=*/1);  // progress
  gov.OnRoundClosed(1, /*resolved_total=*/1);  // stall 1
  EXPECT_FALSE(gov.stopped());
  gov.OnRoundClosed(1, /*resolved_total=*/1);  // stall 2
  EXPECT_TRUE(gov.stopped());
  EXPECT_EQ(gov.reason(), TerminationReason::kStalled);
}

TEST(GovernorTest, ProgressResetsStallStreak) {
  GovernorOptions opt;
  opt.stall_rounds = 2;
  RunGovernor gov(opt, AmtCostModel{}, /*max_retries=*/0);
  gov.OnRoundClosed(1, 1);
  gov.OnRoundClosed(1, 1);  // stall 1
  gov.OnRoundClosed(1, 2);  // progress: streak resets
  gov.OnRoundClosed(1, 2);  // stall 1 again
  EXPECT_FALSE(gov.stopped());
}

TEST(GovernorTest, CancellationTokenStopsAtNextPoll) {
  CancellationToken token;
  GovernorOptions opt;
  opt.cancel = &token;
  RunGovernor gov(opt, AmtCostModel{}, /*max_retries=*/0);
  EXPECT_TRUE(gov.CanFundQuestion(0));
  token.Cancel();
  EXPECT_FALSE(gov.CanFundQuestion(0));
  EXPECT_EQ(gov.reason(), TerminationReason::kCancelled);
}

TEST(GovernorTest, FirstStopReasonLatches) {
  CancellationToken token;
  GovernorOptions opt;
  opt.cancel = &token;
  opt.max_rounds = 1;
  RunGovernor gov(opt, AmtCostModel{}, /*max_retries=*/0);
  token.Cancel();
  EXPECT_FALSE(gov.CanFundQuestion(0));
  EXPECT_EQ(gov.reason(), TerminationReason::kCancelled);
  // The round cap firing later must not overwrite the latched reason.
  gov.OnRoundClosed(1, 1);
  EXPECT_EQ(gov.reason(), TerminationReason::kCancelled);
}

TEST(GovernorTest, DeadlineRequiresWallClockOptIn) {
  GovernorOptions opt;
  opt.deadline_seconds = 1.0;
  EXPECT_DEATH(RunGovernor(opt, AmtCostModel{}, 0), "allow_wall_clock");
}

TEST(GovernorTest, ExpiredDeadlineStops) {
  GovernorOptions opt;
  opt.deadline_seconds = 1e-12;  // expires before the first poll
  opt.allow_wall_clock = true;
  RunGovernor gov(opt, AmtCostModel{}, /*max_retries=*/0);
  // The clock must advance past the (sub-nanosecond) deadline; a bounded
  // spin keeps the test deterministic without sleeping.
  bool funded = true;
  for (int i = 0; i < 1000000 && funded; ++i) {
    funded = gov.CanFundQuestion(0);
  }
  EXPECT_FALSE(funded);
  EXPECT_EQ(gov.reason(), TerminationReason::kDeadline);
}

TEST(GovernorTest, DeniedQuestionsAccumulate) {
  GovernorOptions opt;
  opt.max_rounds = 1;
  RunGovernor gov(opt, AmtCostModel{}, /*max_retries=*/0);
  gov.OnRoundClosed(1, 1);
  for (int i = 0; i < 4; ++i) EXPECT_FALSE(gov.CanFundQuestion(0));
  EXPECT_EQ(gov.denied_questions(), 4);
}

TEST(GovernorTest, CustomCostModelChangesTheCapBoundary) {
  AmtCostModel model;
  model.reward_per_hit = 0.05;
  model.workers_per_question = 3;  // $0.15 per HIT
  model.questions_per_hit = 2;
  RunGovernor gov(DollarCap(0.15), model, /*max_retries=*/0);
  EXPECT_TRUE(gov.CanFundQuestion(0));   // 1 attempt -> 1 HIT
  EXPECT_TRUE(gov.CanFundQuestion(1));   // 2 attempts -> 1 HIT
  EXPECT_FALSE(gov.CanFundQuestion(2));  // 3 attempts -> 2 HITs
}

TEST(TerminationReasonTest, NamesAreStable) {
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kCompleted),
               "completed");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kCancelled),
               "cancelled");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kDeadline),
               "deadline");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kRoundCap),
               "round_cap");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kDollarCap),
               "dollar_cap");
  EXPECT_STREQ(TerminationReasonName(TerminationReason::kStalled),
               "stalled");
}

TEST(TerminationReportTest, ToStringNamesTheReason) {
  TerminationReport report;
  report.governed = true;
  report.reason = TerminationReason::kDollarCap;
  report.rounds = 7;
  report.cost_spent_usd = 0.4;
  report.cost_cap_usd = 0.5;
  const std::string s = report.ToString();
  EXPECT_NE(s.find("dollar_cap"), std::string::npos) << s;
  EXPECT_NE(s.find("rounds=7"), std::string::npos) << s;
}

TEST(CancellationTokenTest, StartsClearAndLatches) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.Cancel();
  EXPECT_TRUE(token.cancelled());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.cancelled());
}

}  // namespace
}  // namespace crowdsky
