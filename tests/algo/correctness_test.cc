// Theorem 1 (completeness of CrowdSky): with correct answers every tuple
// becomes complete and the crowdsourced skyline equals the ground truth.
// This property must hold for every algorithm variant, pruning level,
// distribution, dimensionality and |AC| — a broad parameterized sweep.
#include <gtest/gtest.h>

#include <tuple>

#include "algo/baseline_sort.h"
#include "algo/crowdsky_algorithm.h"
#include "algo/parallel_dset.h"
#include "algo/parallel_sl.h"
#include "crowd/oracle.h"
#include "data/generator.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

enum class Variant { kSerial, kParallelDSet, kParallelSL, kBaseline, kBitonic };

const char* VariantName(Variant v) {
  switch (v) {
    case Variant::kSerial:
      return "Serial";
    case Variant::kParallelDSet:
      return "ParallelDSet";
    case Variant::kParallelSL:
      return "ParallelSL";
    case Variant::kBaseline:
      return "Baseline";
    case Variant::kBitonic:
      return "Bitonic";
  }
  return "?";
}

AlgoResult RunVariant(Variant v, const Dataset& ds, CrowdSession* session,
                      const CrowdSkyOptions& options) {
  switch (v) {
    case Variant::kSerial:
      return RunCrowdSky(ds, session, options);
    case Variant::kParallelDSet:
      return RunParallelDSet(ds, session, options);
    case Variant::kParallelSL:
      return RunParallelSL(ds, session, options);
    case Variant::kBaseline:
      return RunBaselineSort(ds, session);
    case Variant::kBitonic:
      return RunBitonicBaseline(ds, session);
  }
  return {};
}

using Param = std::tuple<Variant, DataDistribution, int /*n*/,
                         int /*num_known*/, int /*num_crowd*/>;

class CompletenessTest : public ::testing::TestWithParam<Param> {};

TEST_P(CompletenessTest, MatchesGroundTruthWithPerfectOracle) {
  const auto [variant, dist, n, dk, mc] = GetParam();
  for (uint64_t seed = 1; seed <= 2; ++seed) {
    GeneratorOptions opt;
    opt.cardinality = n;
    opt.num_known = dk;
    opt.num_crowd = mc;
    opt.distribution = dist;
    opt.seed = seed;
    const Dataset ds = GenerateDataset(opt).ValueOrDie();
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    const AlgoResult r = RunVariant(variant, ds, &session, {});
    EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds))
        << VariantName(variant) << " seed " << seed;
    EXPECT_EQ(r.contradictions, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompletenessTest,
    ::testing::Combine(
        ::testing::Values(Variant::kSerial, Variant::kParallelDSet,
                          Variant::kParallelSL, Variant::kBaseline,
                          Variant::kBitonic),
        ::testing::Values(DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated),
        ::testing::Values(40, 150),
        ::testing::Values(2, 4),
        ::testing::Values(1, 2)),
    [](const auto& pinfo) {
      return std::string(VariantName(std::get<0>(pinfo.param))) + "_" +
             DataDistributionName(std::get<1>(pinfo.param)) + "_n" +
             std::to_string(std::get<2>(pinfo.param)) + "_k" +
             std::to_string(std::get<3>(pinfo.param)) + "_c" +
             std::to_string(std::get<4>(pinfo.param));
    });

class PruningLevelTest : public ::testing::TestWithParam<int> {};

TEST_P(PruningLevelTest, EveryPruningLevelIsCorrect) {
  PruningConfig configs[] = {PruningConfig::DSetExhaustive(),
                             PruningConfig::DSetOnly(), PruningConfig::P1(),
                             PruningConfig::P1P2(), PruningConfig::All()};
  const PruningConfig pruning = configs[GetParam()];
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    GeneratorOptions opt;
    opt.cardinality = 120;
    opt.num_known = 3;
    opt.num_crowd = 1;
    opt.distribution = dist;
    opt.seed = 3;
    const Dataset ds = GenerateDataset(opt).ValueOrDie();
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    CrowdSkyOptions options;
    options.pruning = pruning;
    const AlgoResult r = RunCrowdSky(ds, &session, options);
    EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds));
  }
}

INSTANTIATE_TEST_SUITE_P(Levels, PruningLevelTest, ::testing::Range(0, 5));

TEST(CompletenessEdgeCasesTest, SingleTuple) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1), {{1, 2, 3}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  EXPECT_EQ(r.skyline, std::vector<int>{0});
  EXPECT_EQ(r.questions, 0);
}

TEST(CompletenessEdgeCasesTest, TotalOrderChain) {
  // 0 dominates everything in AK and AC: single-question-free skyline of
  // size 1 after the chain collapses.
  auto ds = Dataset::Make(
      Schema::MakeSynthetic(2, 1),
      {{1, 1, 0.1}, {2, 2, 0.2}, {3, 3, 0.3}, {4, 4, 0.4}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  EXPECT_EQ(r.skyline, std::vector<int>{0});
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(*ds));
}

TEST(CompletenessEdgeCasesTest, PureAntichainNeedsNoQuestions) {
  // Everything incomparable in AK: all tuples are complete skyline tuples
  // without any crowd involvement (sharing of incomparability).
  auto ds = Dataset::Make(
      Schema::MakeSynthetic(2, 1),
      {{1, 4, 0.4}, {2, 3, 0.3}, {3, 2, 0.2}, {4, 1, 0.1}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  EXPECT_EQ(r.skyline, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(r.questions, 0);
  EXPECT_EQ(r.rounds, 0);
}

TEST(CompletenessEdgeCasesTest, DuplicateKnownRowsResolvedByCrowd) {
  // Lines 1-3 of Algorithm 1: equal AK rows, the crowd separates them.
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1),
                          {{1, 1, 0.9}, {1, 1, 0.1}, {2, 2, 0.5}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  // Tuple 1 beats its duplicate 0 in AC; tuple 2 is dominated by 1 in AK
  // and in AC, so the skyline is {1}.
  EXPECT_EQ(r.skyline, std::vector<int>{1});
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(*ds));
}

TEST(CompletenessEdgeCasesTest, IdenticalTuplesBothSkyline) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1),
                          {{1, 1, 0.5}, {1, 1, 0.5}, {3, 3, 0.9}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  EXPECT_EQ(r.skyline, (std::vector<int>{0, 1}));
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(*ds));
}

TEST(CompletenessEdgeCasesTest, AllIdenticalTuples) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1),
                          {{1, 1, 0.5}, {1, 1, 0.5}, {1, 1, 0.5}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  EXPECT_EQ(r.skyline, (std::vector<int>{0, 1, 2}));
}

TEST(CompletenessEdgeCasesTest, EqualCrowdValuesWithDominance) {
  // s dominates t in AK and ties in AC: s weakly precedes t, so t is a
  // non-skyline tuple (Definition 1 requires strictness only somewhere).
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1),
                          {{1, 1, 0.5}, {2, 2, 0.5}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  EXPECT_EQ(r.skyline, std::vector<int>{0});
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(*ds));
}

TEST(CompletenessEdgeCasesTest, MaxDirectionCrowdAttribute) {
  auto schema = Schema::Make({
      {"k1", Direction::kMin, AttributeKind::kKnown},
      {"c1", Direction::kMax, AttributeKind::kCrowd},
  });
  schema.status().CheckOK();
  auto ds = Dataset::Make(std::move(schema).ValueOrDie(),
                          {{1, 10}, {2, 20}, {3, 5}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  // Tuple 1 (20) beats 0 (10) on the MAX crowd attr but loses in AK;
  // tuple 2 loses everywhere. Ground truth: {0, 1}.
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(*ds));
  EXPECT_EQ(r.skyline, (std::vector<int>{0, 1}));
}

TEST(CompletenessTest, ParallelVariantsAskNoFewerQuestionsThanSerial) {
  // ParallelDSet preserves question counts; ParallelSL may ask slightly
  // more (violated C2), around 10% in the paper.
  GeneratorOptions opt;
  opt.cardinality = 400;
  opt.num_known = 3;
  opt.num_crowd = 1;
  opt.seed = 21;
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    opt.distribution = dist;
    const Dataset ds = GenerateDataset(opt).ValueOrDie();
    PerfectOracle o1(ds), o2(ds), o3(ds);
    CrowdSession s1(&o1), s2(&o2), s3(&o3);
    const AlgoResult serial = RunCrowdSky(ds, &s1, {});
    const AlgoResult pdset = RunParallelDSet(ds, &s2, {});
    const AlgoResult psl = RunParallelSL(ds, &s3, {});
    EXPECT_EQ(serial.skyline, pdset.skyline);
    EXPECT_EQ(serial.skyline, psl.skyline);
    // ParallelDSet preserves the serial question count up to within-batch
    // staleness (answers land between rounds, not between questions).
    EXPECT_NEAR(static_cast<double>(pdset.questions),
                static_cast<double>(serial.questions),
                0.02 * static_cast<double>(serial.questions) + 3);
    // ParallelSL trades ~10% extra questions for rounds (violated C2).
    EXPECT_GT(static_cast<double>(psl.questions),
              0.95 * static_cast<double>(serial.questions) - 3);
    EXPECT_LT(static_cast<double>(psl.questions),
              1.35 * static_cast<double>(serial.questions) + 10);
  }
}

}  // namespace
}  // namespace crowdsky
