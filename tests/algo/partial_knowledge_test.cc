// Partially-missing crowd data (Example 1): when some tuples' crowd
// values are machine-known, their pairwise preferences are seeded into
// the preference tree and only pairs involving missing values are
// crowdsourced.
#include <gtest/gtest.h>

#include "algo/crowdsky_algorithm.h"
#include "algo/parallel_sl.h"
#include "crowd/oracle.h"
#include "data/generator.h"
#include "data/toy.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

Dataset Make(int n, int mc, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 3;
  opt.num_crowd = mc;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

/// Marks the first `fraction` of tuples as having known crowd values.
std::vector<DynamicBitset> KnownPrefix(const Dataset& ds, double fraction) {
  std::vector<DynamicBitset> masks(
      static_cast<size_t>(ds.schema().num_crowd()),
      DynamicBitset(static_cast<size_t>(ds.size())));
  const int known = static_cast<int>(fraction * ds.size());
  for (auto& mask : masks) {
    for (int i = 0; i < known; ++i) mask.Set(static_cast<size_t>(i));
  }
  return masks;
}

TEST(PartialKnowledgeTest, FullyKnownDataNeedsNoCrowd) {
  const Dataset ds = Make(150, 1, 1);
  const std::vector<DynamicBitset> masks = KnownPrefix(ds, 1.0);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  CrowdSkyOptions options;
  options.known_crowd_values = &masks;
  const AlgoResult r = RunCrowdSky(ds, &session, options);
  EXPECT_EQ(r.questions, 0);
  EXPECT_GT(r.seeded_relations, 0);
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds));
}

TEST(PartialKnowledgeTest, SeedingPreservesCorrectness) {
  for (const double fraction : {0.0, 0.25, 0.5, 0.75}) {
    for (const int mc : {1, 2}) {
      const Dataset ds = Make(120, mc, 3);
      const std::vector<DynamicBitset> masks = KnownPrefix(ds, fraction);
      PerfectOracle oracle(ds);
      CrowdSession session(&oracle);
      CrowdSkyOptions options;
      options.known_crowd_values = &masks;
      const AlgoResult r = RunCrowdSky(ds, &session, options);
      EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds))
          << "fraction=" << fraction << " mc=" << mc;
    }
  }
}

TEST(PartialKnowledgeTest, MoreKnownValuesMeanFewerQuestions) {
  const Dataset ds = Make(250, 1, 5);
  int64_t prev = -1;
  for (const double fraction : {0.0, 0.3, 0.6, 0.9}) {
    const std::vector<DynamicBitset> masks = KnownPrefix(ds, fraction);
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    CrowdSkyOptions options;
    options.known_crowd_values = &masks;
    const AlgoResult r = RunCrowdSky(ds, &session, options);
    if (prev >= 0) {
      EXPECT_LE(r.questions, prev) << fraction;
    }
    prev = r.questions;
  }
}

TEST(PartialKnowledgeTest, NullMaskMeansHandsOff) {
  const Dataset ds = Make(100, 1, 7);
  PerfectOracle o1(ds), o2(ds);
  CrowdSession s1(&o1), s2(&o2);
  CrowdSkyOptions defaults;  // null known_crowd_values
  const AlgoResult a = RunCrowdSky(ds, &s1, defaults);
  const std::vector<DynamicBitset> empty = KnownPrefix(ds, 0.0);
  CrowdSkyOptions with_empty;
  with_empty.known_crowd_values = &empty;
  const AlgoResult b = RunCrowdSky(ds, &s2, with_empty);
  EXPECT_EQ(a.questions, b.questions);
  EXPECT_EQ(a.skyline, b.skyline);
  EXPECT_EQ(b.seeded_relations, 0);
}

TEST(PartialKnowledgeTest, EqualKnownValuesSeedEquivalences) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1),
                          {{1, 5, 0.5}, {5, 1, 0.5}, {2, 2, 0.1}});
  ds.status().CheckOK();
  std::vector<DynamicBitset> masks(1, DynamicBitset(3));
  masks[0].Set(0);
  masks[0].Set(1);
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  CrowdSkyOptions options;
  options.known_crowd_values = &masks;
  const AlgoResult r = RunCrowdSky(*ds, &session, options);
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(*ds));
}

TEST(PartialKnowledgeTest, WorksUnderParallelSL) {
  const Dataset ds = Make(150, 1, 9);
  const std::vector<DynamicBitset> masks = KnownPrefix(ds, 0.5);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  CrowdSkyOptions options;
  options.known_crowd_values = &masks;
  const AlgoResult r = RunParallelSL(ds, &session, options);
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds));
  EXPECT_GT(r.seeded_relations, 0);
}

TEST(PartialKnowledgeDeathTest, WrongMaskShapeAborts) {
  const Dataset ds = Make(50, 2, 11);
  std::vector<DynamicBitset> one_mask(1, DynamicBitset(50));
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  CrowdSkyOptions options;
  options.known_crowd_values = &one_mask;
  EXPECT_DEATH(RunCrowdSky(ds, &session, options),
               "one bitset per crowd attribute");
  std::vector<DynamicBitset> wrong_size(2, DynamicBitset(10));
  options.known_crowd_values = &wrong_size;
  EXPECT_DEATH(RunCrowdSky(ds, &session, options), "wrong size");
}

}  // namespace
}  // namespace crowdsky
