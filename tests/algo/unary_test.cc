#include "algo/unary.h"

#include <gtest/gtest.h>

#include "algo/crowdsky_algorithm.h"
#include "algo/metrics.h"
#include "crowd/oracle.h"
#include "data/generator.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

Dataset RandomDataset(int n, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 4;
  opt.num_crowd = 1;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

TEST(UnaryTest, OneQuestionPerTuplePerCrowdAttr) {
  const Dataset ds = RandomDataset(80, 1);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const UnaryResult r = RunUnary(ds, &session);
  EXPECT_EQ(r.questions, 80);
  EXPECT_EQ(r.rounds, 1);  // one-shot strategy
  ASSERT_EQ(r.questions_per_round.size(), 1u);
  EXPECT_EQ(r.questions_per_round[0], 80);
}

TEST(UnaryTest, PerfectEstimatesGivePerfectSkyline) {
  const Dataset ds = RandomDataset(150, 2);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const UnaryResult r = RunUnary(ds, &session);
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds));
}

TEST(UnaryTest, NoisyEstimatesDegradeAccuracy) {
  const Dataset ds = RandomDataset(300, 3);
  WorkerModel worker;
  worker.unary_sigma = 0.3;  // very noisy raters
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(1), 5);
  CrowdSession session(&crowd);
  const UnaryResult r = RunUnary(ds, &session);
  const AccuracyMetrics acc = EvaluateNewSkylineAccuracy(ds, r.skyline);
  EXPECT_LT(acc.f1, 0.999);
}

TEST(UnaryTest, MoreWorkersImproveUnaryAccuracy) {
  const Dataset ds = RandomDataset(250, 7);
  WorkerModel worker;
  worker.unary_sigma = 0.25;
  double f1_few = 0.0, f1_many = 0.0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    SimulatedCrowd few(ds, worker, VotingPolicy::MakeStatic(1), seed);
    CrowdSession s1(&few);
    f1_few += EvaluateNewSkylineAccuracy(ds, RunUnary(ds, &s1).skyline).f1;
    SimulatedCrowd many(ds, worker, VotingPolicy::MakeStatic(25), seed);
    CrowdSession s2(&many);
    f1_many += EvaluateNewSkylineAccuracy(ds, RunUnary(ds, &s2).skyline).f1;
  }
  EXPECT_GT(f1_many, f1_few);
}

TEST(UnaryTest, EstimatesExposedInResult) {
  const Dataset ds = RandomDataset(20, 9);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const UnaryResult r = RunUnary(ds, &session);
  ASSERT_EQ(r.estimates.size(), 20u);
  const PreferenceMatrix crowd = PreferenceMatrix::FromCrowd(ds);
  for (int id = 0; id < 20; ++id) {
    EXPECT_DOUBLE_EQ(r.estimates[static_cast<size_t>(id)],
                     crowd.value(id, 0));
  }
}

TEST(UnaryTest, PairwiseBeatsUnaryUnderComparableNoise) {
  // The paper's headline accuracy claim (Figure 11): CrowdSky's pair-wise
  // questions with voting beat unary estimates.
  double unary_f1 = 0.0, crowdsky_f1 = 0.0;
  const int kRuns = 5;
  for (uint64_t seed = 1; seed <= kRuns; ++seed) {
    const Dataset ds = RandomDataset(200, seed + 100);
    WorkerModel worker;
    worker.p_correct = 0.8;
    SimulatedCrowd crowd1(ds, worker, VotingPolicy::MakeStatic(5), seed);
    CrowdSession s1(&crowd1);
    unary_f1 += EvaluateNewSkylineAccuracy(ds, RunUnary(ds, &s1).skyline).f1;

    SimulatedCrowd crowd2(ds, worker, VotingPolicy::MakeStatic(5), seed);
    CrowdSession s2(&crowd2);
    crowdsky_f1 +=
        EvaluateNewSkylineAccuracy(ds, RunCrowdSky(ds, &s2, {}).skyline).f1;
  }
  EXPECT_GT(crowdsky_f1, unary_f1);
}

}  // namespace
}  // namespace crowdsky
