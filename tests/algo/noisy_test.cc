// Behaviour under imperfect workers (Section 5): the algorithms must
// terminate, stay internally consistent, and the voting hierarchy
// (dynamic >= static >= single-worker accuracy) must hold on average.
#include <gtest/gtest.h>

#include "algo/crowdsky_algorithm.h"
#include "algo/metrics.h"
#include "algo/parallel_sl.h"
#include "common/random.h"
#include "crowd/oracle.h"
#include "data/generator.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {
namespace {

Dataset Make(int n, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 4;
  opt.num_crowd = 1;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

TEST(NoisyTest, TerminatesAndStaysConsistent) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const Dataset ds = Make(150, seed);
    WorkerModel worker;
    worker.p_correct = 0.7;
    SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(1), seed * 13);
    CrowdSession session(&crowd);
    const AlgoResult r = RunCrowdSky(ds, &session, {});
    // The result is a well-formed subset of ids.
    for (const int id : r.skyline) {
      EXPECT_GE(id, 0);
      EXPECT_LT(id, ds.size());
    }
    EXPECT_TRUE(std::is_sorted(r.skyline.begin(), r.skyline.end()));
    EXPECT_GT(r.questions, 0);
  }
}

TEST(NoisyTest, VeryUnreliableWorkersStillTerminate) {
  const Dataset ds = Make(100, 3);
  WorkerModel worker;
  worker.p_correct = 0.55;
  worker.spammer_fraction = 0.2;
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(1), 99);
  CrowdSession session(&crowd);
  const AlgoResult serial = RunCrowdSky(ds, &session, {});
  EXPECT_FALSE(serial.skyline.empty());

  SimulatedCrowd crowd2(ds, worker, VotingPolicy::MakeStatic(1), 99);
  CrowdSession session2(&crowd2);
  const AlgoResult psl = RunParallelSL(ds, &session2, {});
  EXPECT_FALSE(psl.skyline.empty());
}

TEST(NoisyTest, SerialRunsNeverRecordContradictions) {
  // The adaptive strategy never re-asks a pair whose relation the
  // preference tree already implies, so even very noisy answers cannot
  // contradict it in a serial run — wrong answers are locked in instead
  // (which is exactly why dynamic voting spends more workers on early,
  // high-impact questions).
  const Dataset ds = Make(200, 5);
  WorkerModel worker;
  worker.p_correct = 0.6;
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(1), 7);
  CrowdSession session(&crowd);
  const AlgoResult r = RunCrowdSky(ds, &session, {});
  EXPECT_EQ(r.contradictions, 0);
  EXPECT_FALSE(r.skyline.empty());
}

TEST(NoisyTest, MajorityVotingImprovesSkylineAccuracy) {
  double f1_single = 0.0, f1_voted = 0.0;
  const int kRuns = 6;
  for (uint64_t seed = 1; seed <= kRuns; ++seed) {
    const Dataset ds = Make(250, seed + 40);
    WorkerModel worker;
    worker.p_correct = 0.75;
    {
      SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(1), seed);
      CrowdSession session(&crowd);
      f1_single +=
          EvaluateNewSkylineAccuracy(ds, RunCrowdSky(ds, &session, {}).skyline)
              .f1;
    }
    {
      SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(7), seed);
      CrowdSession session(&crowd);
      f1_voted +=
          EvaluateNewSkylineAccuracy(ds, RunCrowdSky(ds, &session, {}).skyline)
              .f1;
    }
  }
  EXPECT_GT(f1_voted, f1_single);
}

TEST(NoisyTest, DynamicVotingAtLeastMatchesStaticOnAverage) {
  double f1_static = 0.0, f1_dynamic = 0.0;
  int64_t workers_static = 0, workers_dynamic = 0;
  const int kRuns = 8;
  for (uint64_t seed = 1; seed <= kRuns; ++seed) {
    const Dataset ds = Make(300, seed + 70);
    const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
    WorkerModel worker;
    worker.p_correct = 0.8;
    {
      SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5), seed);
      CrowdSession session(&crowd);
      const AlgoResult r = RunCrowdSky(ds, structure, &session, {});
      f1_static += EvaluateNewSkylineAccuracy(ds, r.skyline).f1;
      workers_static += r.worker_answers;
    }
    {
      Rng rng(seed);
      SimulatedCrowd crowd(
          ds, worker, VotingPolicy::MakeDynamic(5, structure, &rng), seed);
      CrowdSession session(&crowd);
      const AlgoResult r = RunCrowdSky(ds, structure, &session, {});
      f1_dynamic += EvaluateNewSkylineAccuracy(ds, r.skyline).f1;
      workers_dynamic += r.worker_answers;
    }
  }
  // Accuracy: dynamic must not lose, and typically wins.
  EXPECT_GE(f1_dynamic + 0.05, f1_static);
  // Budget parity: within 25% of the static worker budget.
  EXPECT_LT(std::abs(static_cast<double>(workers_dynamic - workers_static)),
            0.25 * static_cast<double>(workers_static));
}

TEST(NoisyTest, DeterministicGivenSeeds) {
  const Dataset ds = Make(120, 9);
  WorkerModel worker;
  worker.p_correct = 0.7;
  SimulatedCrowd c1(ds, worker, VotingPolicy::MakeStatic(3), 42);
  SimulatedCrowd c2(ds, worker, VotingPolicy::MakeStatic(3), 42);
  CrowdSession s1(&c1), s2(&c2);
  const AlgoResult r1 = RunCrowdSky(ds, &s1, {});
  const AlgoResult r2 = RunCrowdSky(ds, &s2, {});
  EXPECT_EQ(r1.skyline, r2.skyline);
  EXPECT_EQ(r1.questions, r2.questions);
}

TEST(NoisyTest, HeterogeneousWorkersSupported) {
  const Dataset ds = Make(100, 11);
  WorkerModel worker;
  worker.p_correct = 0.8;
  worker.p_stddev = 0.1;
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5), 3);
  CrowdSession session(&crowd);
  const AlgoResult r = RunCrowdSky(ds, &session, {});
  EXPECT_FALSE(r.skyline.empty());
}

}  // namespace
}  // namespace crowdsky
