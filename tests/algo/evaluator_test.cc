// Unit tests driving TupleEvaluator directly on the toy dataset,
// asserting the per-step behaviour the drivers rely on.
#include "algo/evaluator.h"

#include <gtest/gtest.h>

#include "crowd/oracle.h"
#include "data/toy.h"

namespace crowdsky {
namespace {

class EvaluatorTest : public ::testing::Test {
 protected:
  EvaluatorTest()
      : toy_(MakeToyDataset()),
        structure_(PreferenceMatrix::FromKnown(toy_)),
        knowledge_(toy_.size(), 1),
        oracle_(toy_),
        session_(&oracle_),
        completion_(toy_.size()) {
    for (const int t : structure_.known_skyline()) {
      completion_.MarkSkyline(t);
    }
  }

  TupleEvaluator MakeEvaluator(char label, CrowdSkyOptions options = {}) {
    return TupleEvaluator(ToyId(label), structure_, &knowledge_, &session_,
                          &completion_, options);
  }

  /// Runs an evaluator to completion; returns the number of paid steps.
  int Drive(TupleEvaluator* ev) {
    int paid = 0;
    while (!ev->done()) {
      if (ev->Step()) ++paid;
    }
    return paid;
  }

  Dataset toy_;
  DominanceStructure structure_;
  CrowdKnowledge knowledge_;
  PerfectOracle oracle_;
  CrowdSession session_;
  CompletionState completion_;
};

TEST_F(EvaluatorTest, SingleDominatorNonSkyline) {
  TupleEvaluator ev = MakeEvaluator('a');  // DS(a) = {b}, b < a in AC
  EXPECT_EQ(Drive(&ev), 1);
  EXPECT_TRUE(ev.done());
  EXPECT_TRUE(ev.complete());
  EXPECT_FALSE(ev.is_skyline());
  EXPECT_EQ(ev.tuple(), ToyId('a'));
}

TEST_F(EvaluatorTest, ProbeThenQuery) {
  TupleEvaluator ev = MakeEvaluator('d');  // DS(d) = {b, e}
  // Step 1: probe (b, e); step 2: ask (e, d) -> dominated.
  EXPECT_TRUE(ev.Step());
  EXPECT_FALSE(ev.done());
  EXPECT_TRUE(knowledge_.WeaklyPrefers(ToyId('e'), ToyId('b')));
  EXPECT_TRUE(ev.Step());
  EXPECT_TRUE(ev.done());
  EXPECT_FALSE(ev.is_skyline());
}

TEST_F(EvaluatorTest, SkylineTupleSurvivesAllQuestions) {
  TupleEvaluator ev = MakeEvaluator('k');  // DS(k) = {i, l}; k wins
  EXPECT_EQ(Drive(&ev), 2);
  EXPECT_TRUE(ev.is_skyline());
}

TEST_F(EvaluatorTest, P1UsesCompletionState) {
  // Mark a as a complete non-skyline tuple; c's evaluator must not ask
  // about it (DS(c) = {a, b, e} shrinks to {b, e}).
  completion_.MarkNonSkyline(ToyId('a'));
  TupleEvaluator ev = MakeEvaluator('c');
  Drive(&ev);
  EXPECT_FALSE(session_.IsCached(0, ToyId('a'), ToyId('c')));
  EXPECT_FALSE(ev.is_skyline());
}

TEST_F(EvaluatorTest, P2UsesSharedKnowledge) {
  // Teach the tree e < b; c's evaluator then only needs (c, e).
  knowledge_.Record(0, ToyId('e'), ToyId('b'), Answer::kFirstPreferred)
      .CheckOK();
  completion_.MarkNonSkyline(ToyId('a'));
  TupleEvaluator ev = MakeEvaluator('c');
  EXPECT_EQ(Drive(&ev), 1);
  EXPECT_TRUE(session_.IsCached(0, ToyId('e'), ToyId('c')));
  EXPECT_FALSE(session_.IsCached(0, ToyId('b'), ToyId('c')));
}

TEST_F(EvaluatorTest, StepNeverPaysMoreThanOnePair) {
  TupleEvaluator ev = MakeEvaluator('h');
  while (!ev.done()) {
    const int64_t before = session_.stats().questions;
    ev.Step();
    EXPECT_LE(session_.stats().questions - before, 1);
  }
}

TEST_F(EvaluatorTest, EmptyDominatingSetCompletesWithoutAsking) {
  TupleEvaluator ev = MakeEvaluator('b');  // b is in SKY_AK
  EXPECT_FALSE(ev.Step());
  EXPECT_TRUE(ev.done());
  EXPECT_TRUE(ev.is_skyline());
  EXPECT_EQ(session_.stats().questions, 0);
}

TEST_F(EvaluatorTest, BudgetAbortKeepsUndecidedTupleInSkyline) {
  session_.SetQuestionBudget(1);
  TupleEvaluator ev = MakeEvaluator('h');  // needs 2 questions normally
  Drive(&ev);
  EXPECT_TRUE(ev.done());
  EXPECT_FALSE(ev.complete());
  EXPECT_TRUE(ev.is_skyline());  // undecided stays in by default
}

TEST_F(EvaluatorTest, BudgetAbortOnDominatedTupleKeepsItOut) {
  // First spend the budget learning b < a; then a is already dominated...
  // Actually drive 'a' with budget 1: the single allowed question decides
  // it, so it completes. Drive 'j' with budget 0 instead: undecided.
  session_.SetQuestionBudget(0);
  TupleEvaluator ev = MakeEvaluator('j');
  Drive(&ev);
  EXPECT_FALSE(ev.complete());
  EXPECT_TRUE(ev.is_skyline());
}

TEST_F(EvaluatorTest, FreeLookupCountsTransitivityHits) {
  knowledge_.Record(0, ToyId('b'), ToyId('a'), Answer::kFirstPreferred)
      .CheckOK();
  // a's only question (b, a) is now implied; no payment happens.
  TupleEvaluator ev = MakeEvaluator('a');
  EXPECT_FALSE(ev.Step());
  EXPECT_TRUE(ev.done());
  EXPECT_FALSE(ev.is_skyline());
  EXPECT_EQ(ev.free_lookups(), 1);
  EXPECT_EQ(session_.stats().questions, 0);
}

TEST_F(EvaluatorTest, StepOnDoneEvaluatorAborts) {
  TupleEvaluator ev = MakeEvaluator('b');
  ev.Step();
  ASSERT_TRUE(ev.done());
  EXPECT_DEATH(ev.Step(), "completed evaluator");
}

}  // namespace
}  // namespace crowdsky
