// Reproduces the paper's worked example end-to-end on the Figure 1 toy
// dataset: Example 3 (26 questions with dominating sets only), Example 6
// (12 questions with full pruning), Example 7 (ParallelDSet: 12 questions
// in 9 rounds) and Example 8 / Table 3 (ParallelSL: 12 questions in 6
// rounds).
#include <gtest/gtest.h>

#include "algo/baseline_sort.h"
#include "algo/crowdsky_algorithm.h"
#include "algo/parallel_dset.h"
#include "algo/parallel_sl.h"
#include "crowd/oracle.h"
#include "data/toy.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

std::vector<int> PaperSkyline() {
  std::vector<int> sky;
  for (const char c : {'b', 'e', 'f', 'h', 'i', 'k', 'l'}) {
    sky.push_back(ToyId(c));
  }
  std::sort(sky.begin(), sky.end());
  return sky;
}

class ToyWalkthroughTest : public ::testing::Test {
 protected:
  ToyWalkthroughTest() : toy_(MakeToyDataset()), oracle_(toy_) {}

  AlgoResult Run(AlgoResult (*fn)(const Dataset&, CrowdSession*,
                                  const CrowdSkyOptions&),
                 PruningConfig pruning) {
    oracle_.ResetStats();
    CrowdSession session(&oracle_);
    CrowdSkyOptions options;
    options.pruning = pruning;
    return fn(toy_, &session, options);
  }

  Dataset toy_;
  PerfectOracle oracle_;
};

TEST_F(ToyWalkthroughTest, Example3ExhaustiveDSetAsks26Questions) {
  const AlgoResult r = Run(&RunCrowdSky, PruningConfig::DSetExhaustive());
  EXPECT_EQ(r.skyline, PaperSkyline());
  EXPECT_EQ(r.questions, 26);  // sum of |DS(t)| from Table 1
}

TEST_F(ToyWalkthroughTest, DSetWithCompletionBreakAsksFewer) {
  const AlgoResult r = Run(&RunCrowdSky, PruningConfig::DSetOnly());
  EXPECT_EQ(r.skyline, PaperSkyline());
  EXPECT_LT(r.questions, 26);
  EXPECT_GE(r.questions, 12);
}

TEST_F(ToyWalkthroughTest, Example4P1PrunesBelow18) {
  // The paper counts 18 questions with P1 and no early break; with the
  // early break of Algorithm 1 line 24 the count is lower still.
  const AlgoResult r = Run(&RunCrowdSky, PruningConfig::P1());
  EXPECT_EQ(r.skyline, PaperSkyline());
  EXPECT_LE(r.questions, 18);
  EXPECT_GE(r.questions, 12);
}

TEST_F(ToyWalkthroughTest, Example6FullPruningAsks12Questions) {
  const AlgoResult r = Run(&RunCrowdSky, PruningConfig::All());
  EXPECT_EQ(r.skyline, PaperSkyline());
  EXPECT_EQ(r.questions, 12);
  EXPECT_EQ(r.rounds, 12);  // Serial: one question per round
}

TEST_F(ToyWalkthroughTest, PruningLevelsAreMonotone) {
  const int64_t exhaustive =
      Run(&RunCrowdSky, PruningConfig::DSetExhaustive()).questions;
  const int64_t dset = Run(&RunCrowdSky, PruningConfig::DSetOnly()).questions;
  EXPECT_LE(dset, exhaustive);
  const int64_t p1 = Run(&RunCrowdSky, PruningConfig::P1()).questions;
  const int64_t p12 = Run(&RunCrowdSky, PruningConfig::P1P2()).questions;
  const int64_t all = Run(&RunCrowdSky, PruningConfig::All()).questions;
  EXPECT_LE(p1, dset);
  EXPECT_LE(p12, p1);
  EXPECT_LE(all, p12 + 2);  // probing may trade probe questions for Q(t) ones
  EXPECT_EQ(all, 12);
}

TEST_F(ToyWalkthroughTest, Example7ParallelDSetTwelveQuestionsNineRounds) {
  const AlgoResult r = Run(&RunParallelDSet, PruningConfig::All());
  EXPECT_EQ(r.skyline, PaperSkyline());
  EXPECT_EQ(r.questions, 12);
  EXPECT_EQ(r.rounds, 9);
}

TEST_F(ToyWalkthroughTest, Example8ParallelSLTwelveQuestionsSixRounds) {
  const AlgoResult r = Run(&RunParallelSL, PruningConfig::All());
  EXPECT_EQ(r.skyline, PaperSkyline());
  EXPECT_EQ(r.questions, 12);
  EXPECT_EQ(r.rounds, 6);
}

TEST_F(ToyWalkthroughTest, Table3RoundStructure) {
  oracle_.ResetStats();
  CrowdSession session(&oracle_);
  const AlgoResult r = RunParallelSL(toy_, &session, {});
  // Round-by-round question counts from Table 3:
  // r1: (a,b), (g,e), (b,e), (i,l); r2: (d,e), (k,i), (c,e);
  // r3: (f,e), (e,i); r4: (h,e); r5: (f,h); r6: (j,f).
  const std::vector<int64_t> expected = {4, 3, 2, 1, 1, 1};
  EXPECT_EQ(r.questions_per_round, expected);
}

TEST_F(ToyWalkthroughTest, BaselineSortFindsSameSkylineWithMoreQuestions) {
  oracle_.ResetStats();
  CrowdSession session(&oracle_);
  const BaselineResult r = RunBaselineSort(toy_, &session);
  EXPECT_EQ(r.skyline, PaperSkyline());
  EXPECT_GT(r.questions, 12);
  // Tournament sort of 12 items: at most n log2(n-ish) comparisons.
  EXPECT_LE(r.questions, 66);  // all pairs upper bound
  // The crowd-derived order must equal the hidden total order on A3:
  // f h k e i b l j a c d g.
  const std::vector<int> expected_order = {
      ToyId('f'), ToyId('h'), ToyId('k'), ToyId('e'), ToyId('i'),
      ToyId('b'), ToyId('l'), ToyId('j'), ToyId('a'), ToyId('c'),
      ToyId('d'), ToyId('g')};
  ASSERT_EQ(r.orders.size(), 1u);
  EXPECT_EQ(r.orders[0], expected_order);
}

TEST_F(ToyWalkthroughTest, AntiCorrelatedToyProbingSavesQuestions) {
  // Section 3.4's motivating example on the Figure 3 dataset: the naive
  // dominating-set method needs 24 questions (4 x 6); probing needs 9
  // (3 probes among {b,e,i,j} + one question per remaining tuple).
  const Dataset ant = MakeAntiCorrelatedToyDataset();
  PerfectOracle oracle(ant);
  CrowdSession with_probe(&oracle);
  const AlgoResult probed = RunCrowdSky(ant, &with_probe, {});

  PerfectOracle oracle2(ant);
  CrowdSession exhaustive_session(&oracle2);
  CrowdSkyOptions exhaustive;
  exhaustive.pruning = PruningConfig::DSetExhaustive();
  const AlgoResult naive =
      RunCrowdSky(ant, &exhaustive_session, exhaustive);

  EXPECT_EQ(naive.questions, 24);  // 4 dominators x 6 dominated tuples
  EXPECT_EQ(probed.questions, 9);  // the paper's count
  EXPECT_EQ(probed.skyline, naive.skyline);
  EXPECT_EQ(probed.skyline, ComputeGroundTruthSkyline(ant));
}

TEST_F(ToyWalkthroughTest, TransitivityAnswersQuestionsForFree) {
  // Without cross-tuple pruning, several Q(t) questions are already
  // implied by earlier answers; the preference tree answers them for free.
  PruningConfig with_tree = PruningConfig::DSetOnly();
  with_tree.use_transitivity = true;
  const AlgoResult with_trans = Run(&RunCrowdSky, with_tree);
  EXPECT_GT(with_trans.free_lookups, 0);
  const AlgoResult without_trans =
      Run(&RunCrowdSky, PruningConfig::DSetOnly());
  EXPECT_GT(without_trans.questions, with_trans.questions);
  EXPECT_EQ(without_trans.skyline, with_trans.skyline);
}

}  // namespace
}  // namespace crowdsky
