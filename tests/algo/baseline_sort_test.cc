#include "algo/baseline_sort.h"

#include <gtest/gtest.h>

#include <cmath>

#include "crowd/oracle.h"
#include "data/generator.h"
#include "data/toy.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

Dataset RandomDataset(int n, int mc, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 2;
  opt.num_crowd = mc;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

bool IsSortedByHiddenValue(const Dataset& ds, const std::vector<int>& order,
                           int attr) {
  const PreferenceMatrix crowd = PreferenceMatrix::FromCrowd(ds);
  for (size_t i = 1; i < order.size(); ++i) {
    if (crowd.value(order[i - 1], attr) > crowd.value(order[i], attr)) {
      return false;
    }
  }
  return true;
}

TEST(TournamentSortTest, ProducesCorrectTotalOrder) {
  const Dataset ds = RandomDataset(100, 1, 3);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const BaselineResult r = RunBaselineSort(ds, &session);
  ASSERT_EQ(r.orders.size(), 1u);
  ASSERT_EQ(r.orders[0].size(), 100u);
  EXPECT_TRUE(IsSortedByHiddenValue(ds, r.orders[0], 0));
}

TEST(TournamentSortTest, QuestionCountIsNLogNish) {
  const int n = 256;
  const Dataset ds = RandomDataset(n, 1, 5);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const BaselineResult r = RunBaselineSort(ds, &session);
  const double nlogn = n * std::log2(n);
  EXPECT_GE(r.questions, n - 1);
  EXPECT_LE(static_cast<double>(r.questions), 1.2 * nlogn);
}

TEST(TournamentSortTest, NonPowerOfTwoSizes) {
  for (const int n : {1, 2, 3, 5, 17, 33, 100}) {
    const Dataset ds = RandomDataset(n, 1, 7);
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    const BaselineResult r = RunBaselineSort(ds, &session);
    ASSERT_EQ(static_cast<int>(r.orders[0].size()), n) << n;
    EXPECT_TRUE(IsSortedByHiddenValue(ds, r.orders[0], 0)) << n;
  }
}

TEST(TournamentSortTest, MultipleCrowdAttributes) {
  const Dataset ds = RandomDataset(40, 2, 9);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const BaselineResult r = RunBaselineSort(ds, &session);
  ASSERT_EQ(r.orders.size(), 2u);
  EXPECT_TRUE(IsSortedByHiddenValue(ds, r.orders[0], 0));
  EXPECT_TRUE(IsSortedByHiddenValue(ds, r.orders[1], 1));
}

TEST(TournamentSortTest, SkylineMatchesGroundTruth) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const Dataset ds = RandomDataset(120, 1, seed);
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    const BaselineResult r = RunBaselineSort(ds, &session);
    EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds)) << seed;
  }
}

TEST(TournamentSortTest, RoundsExceedParallelizableMinimum) {
  // Replay paths are sequential: rounds scale like n log n, far above the
  // log n of a fully parallel structure.
  const Dataset ds = RandomDataset(128, 1, 11);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const BaselineResult r = RunBaselineSort(ds, &session);
  EXPECT_GT(r.rounds, 128);
}

TEST(BitonicSortTest, ProducesCorrectTotalOrder) {
  for (const int n : {1, 2, 7, 32, 100}) {
    const Dataset ds = RandomDataset(n, 1, 13);
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    const BaselineResult r = RunBitonicBaseline(ds, &session);
    ASSERT_EQ(static_cast<int>(r.orders[0].size()), n) << n;
    EXPECT_TRUE(IsSortedByHiddenValue(ds, r.orders[0], 0)) << n;
  }
}

TEST(BitonicSortTest, FewRoundsManyQuestions) {
  const int n = 128;
  const Dataset ds = RandomDataset(n, 1, 15);
  PerfectOracle o1(ds), o2(ds);
  CrowdSession s1(&o1), s2(&o2);
  const BaselineResult bitonic = RunBitonicBaseline(ds, &s1);
  const BaselineResult tournament = RunBaselineSort(ds, &s2);
  // O(log^2 n) rounds vs O(n log n).
  EXPECT_LT(bitonic.rounds, 60);
  EXPECT_LT(bitonic.rounds, tournament.rounds / 4);
  EXPECT_GE(bitonic.questions, tournament.questions / 2);
}

TEST(BitonicSortTest, SkylineMatchesGroundTruth) {
  const Dataset ds = RandomDataset(90, 1, 17);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  const BaselineResult r = RunBitonicBaseline(ds, &session);
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds));
}

TEST(SkylineFromOrdersTest, RanksActLikeValues) {
  const Dataset toy = MakeToyDataset();
  // Hand the true total order on A3 to the rank-based skyline.
  const std::vector<int> order = {ToyId('f'), ToyId('h'), ToyId('k'),
                                  ToyId('e'), ToyId('i'), ToyId('b'),
                                  ToyId('l'), ToyId('j'), ToyId('a'),
                                  ToyId('c'), ToyId('d'), ToyId('g')};
  const std::vector<int> sky = internal::SkylineFromOrders(toy, {order});
  EXPECT_EQ(sky, ComputeGroundTruthSkyline(toy));
}

}  // namespace
}  // namespace crowdsky
