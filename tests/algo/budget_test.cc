// Budget-constrained execution: the fixed-budget setting of [12] on top of
// CrowdSky. With the budget exhausted, undecided tuples stay in the
// skyline (tuples are in the skyline by default, Section 2.3) and are
// reported as incomplete.
#include <gtest/gtest.h>

#include "algo/crowdsky_algorithm.h"
#include "algo/metrics.h"
#include "algo/parallel_dset.h"
#include "algo/parallel_sl.h"
#include "core/engine.h"
#include "crowd/oracle.h"
#include "data/generator.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

Dataset Make(int n, uint64_t seed = 1) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 3;
  opt.num_crowd = 1;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

TEST(BudgetTest, ZeroBudgetKeepsEveryUndecidedTuple) {
  const Dataset ds = Make(80);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(0);
  const AlgoResult r = RunCrowdSky(ds, &session, {});
  EXPECT_EQ(r.questions, 0);
  // Nothing could be decided beyond machine-side knowledge: the result is
  // every tuple except... none; all non-AK-skyline tuples stay undecided.
  EXPECT_EQ(static_cast<int>(r.skyline.size()), ds.size());
  EXPECT_GT(r.incomplete_tuples, 0);
}

TEST(BudgetTest, BudgetIsRespectedExactly) {
  const Dataset ds = Make(150);
  for (const int64_t budget : {1, 5, 25, 100}) {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    session.SetQuestionBudget(budget);
    const AlgoResult r = RunCrowdSky(ds, &session, {});
    EXPECT_LE(r.questions, budget) << budget;
  }
}

TEST(BudgetTest, LargeBudgetBehavesLikeUnlimited) {
  const Dataset ds = Make(120);
  PerfectOracle o1(ds), o2(ds);
  CrowdSession unlimited(&o1);
  const AlgoResult full = RunCrowdSky(ds, &unlimited, {});
  CrowdSession capped(&o2);
  capped.SetQuestionBudget(full.questions + 10);
  const AlgoResult r = RunCrowdSky(ds, &capped, {});
  EXPECT_EQ(r.skyline, full.skyline);
  EXPECT_EQ(r.incomplete_tuples, 0);
}

TEST(BudgetTest, AccuracyImprovesMonotonicallyWithBudget) {
  const Dataset ds = Make(200, 5);
  double prev_f1 = -1.0;
  // Precision improves as more non-skyline tuples get eliminated;
  // recall stays 1 under a perfect oracle (true skyline tuples are never
  // wrongly eliminated).
  for (const int64_t budget : {10, 50, 200, 1000}) {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    session.SetQuestionBudget(budget);
    const AlgoResult r = RunCrowdSky(ds, &session, {});
    const AccuracyMetrics m = EvaluateNewSkylineAccuracy(ds, r.skyline);
    EXPECT_DOUBLE_EQ(m.recall, 1.0) << budget;
    EXPECT_GE(m.f1 + 1e-9, prev_f1) << budget;
    prev_f1 = m.f1;
  }
}

TEST(BudgetTest, SkylineIsSupersetOfTruthUnderPerfectOracle) {
  const Dataset ds = Make(150, 9);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(40);
  const AlgoResult r = RunCrowdSky(ds, &session, {});
  const std::vector<int> truth = ComputeGroundTruthSkyline(ds);
  // Every true skyline tuple must be present (no false eliminations).
  for (const int t : truth) {
    EXPECT_TRUE(std::binary_search(r.skyline.begin(), r.skyline.end(), t))
        << t;
  }
}

TEST(BudgetTest, ParallelVariantsHonorBudgets) {
  const Dataset ds = Make(150, 3);
  {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    session.SetQuestionBudget(30);
    const AlgoResult r = RunParallelDSet(ds, &session, {});
    EXPECT_LE(r.questions, 30);
    EXPECT_GT(r.incomplete_tuples, 0);
  }
  {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    session.SetQuestionBudget(30);
    const AlgoResult r = RunParallelSL(ds, &session, {});
    EXPECT_LE(r.questions, 30);
    EXPECT_GT(r.incomplete_tuples, 0);
  }
}

TEST(BudgetTest, EngineExposesBudget) {
  const Dataset ds = Make(150, 7);
  EngineOptions opt;
  opt.algorithm = Algorithm::kCrowdSkySerial;
  opt.oracle = OracleKind::kPerfect;
  opt.max_questions = 20;
  const auto r = RunSkylineQuery(ds, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->algo.questions, 20);
  EXPECT_GT(r->algo.incomplete_tuples, 0);
}

TEST(BudgetTest, EngineRejectsBudgetForSortBaselines) {
  const Dataset ds = Make(50);
  EngineOptions opt;
  opt.algorithm = Algorithm::kBaselineSort;
  opt.max_questions = 20;
  EXPECT_TRUE(RunSkylineQuery(ds, opt).status().IsInvalidArgument());
  opt.algorithm = Algorithm::kUnary;
  EXPECT_TRUE(RunSkylineQuery(ds, opt).status().IsInvalidArgument());
}

// --- Budget-abort boundary regressions (evaluator.cc) -------------------
//
// The evaluator checks CanAsk() per *attribute*, not per pair, so the
// budget can run dry mid-pair. These pin the exact boundary behaviors:
// the abort on the last attribute of a pair, the off-by-one cases around
// an exactly-sufficient budget, and the unary path sharing one ledger
// with pairwise questions.

TEST(BudgetTest, MidPairAbortOnLastAttribute) {
  // Two crowd attributes: a budget of 1 pays for a pair's first attribute
  // and must abort before its last one, leaving the pair half-resolved.
  GeneratorOptions opt;
  opt.cardinality = 60;
  opt.num_known = 2;
  opt.num_crowd = 2;
  opt.seed = 11;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(1);
  const AlgoResult r = RunCrowdSky(ds, &session, {});
  EXPECT_EQ(r.questions, 1);  // the abort came after the paid attribute
  EXPECT_GT(r.incomplete_tuples, 0);
  const std::vector<int> truth = ComputeGroundTruthSkyline(ds);
  for (const int t : truth) {
    EXPECT_TRUE(std::binary_search(r.skyline.begin(), r.skyline.end(), t))
        << t;
  }
}

TEST(BudgetTest, ExactBudgetMatchesUnlimited) {
  // Boundary "exactly 0 remaining at the natural end": a budget equal to
  // the unlimited run's spend must not perturb anything — serial CrowdSky
  // is deterministic, so the capped run asks the identical prefix.
  const Dataset ds = Make(120, 13);
  PerfectOracle o1(ds), o2(ds);
  CrowdSession unlimited(&o1);
  const AlgoResult full = RunCrowdSky(ds, &unlimited, {});
  ASSERT_GT(full.questions, 1);
  CrowdSession exact(&o2);
  exact.SetQuestionBudget(full.questions);
  const AlgoResult r = RunCrowdSky(ds, &exact, {});
  EXPECT_EQ(r.questions, full.questions);
  EXPECT_EQ(r.skyline, full.skyline);
  EXPECT_EQ(r.incomplete_tuples, 0);
}

TEST(BudgetTest, OneQuestionShortSpendsWholeBudget) {
  // Boundary "exactly 1 remaining": one question short of completion, the
  // run spends its entire budget (the denied ask is the final one) and
  // whatever that last question would have decided stays undetermined.
  const Dataset ds = Make(120, 13);
  PerfectOracle o1(ds), o2(ds);
  CrowdSession unlimited(&o1);
  const AlgoResult full = RunCrowdSky(ds, &unlimited, {});
  ASSERT_GT(full.questions, 1);
  CrowdSession short_one(&o2);
  short_one.SetQuestionBudget(full.questions - 1);
  const AlgoResult r = RunCrowdSky(ds, &short_one, {});
  EXPECT_EQ(r.questions, full.questions - 1);
  EXPECT_GT(r.incomplete_tuples, 0);
  const std::vector<int> truth = ComputeGroundTruthSkyline(ds);
  for (const int t : truth) {
    EXPECT_TRUE(std::binary_search(r.skyline.begin(), r.skyline.end(), t))
        << t;
  }
}

TEST(BudgetTest, UnaryAsksShareThePairwiseBudget) {
  // One ledger for both question kinds: unary asks consume the same
  // budget the evaluator's pairwise gate checks.
  const Dataset ds = Make(40, 17);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(3);
  session.AskUnary(0, 0);
  session.AskUnary(1, 0);
  EXPECT_TRUE(session.CanAsk());  // exactly 1 remaining
  session.AskUnary(2, 0);
  EXPECT_FALSE(session.CanAsk());  // exactly 0 remaining
  EXPECT_EQ(session.stats().unary_questions, 3);
}

TEST(BudgetDeathTest, UnaryAskPastBudgetDies) {
  // Asking past the budget is a caller bug, not a soft failure: the
  // entry CHECK must fire rather than silently over-spend.
  const Dataset ds = Make(40, 17);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(1);
  session.AskUnary(0, 0);
  EXPECT_DEATH(session.AskUnary(1, 0), "question budget exhausted");
}

TEST(BudgetTest, BudgetWithDuplicatesInPrePass) {
  auto ds = Dataset::Make(
      Schema::MakeSynthetic(2, 1),
      {{1, 1, 0.9}, {1, 1, 0.1}, {2, 2, 0.5}, {3, 3, 0.7}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(1);
  const AlgoResult r = RunCrowdSky(*ds, &session, {});
  EXPECT_LE(r.questions, 1);
  EXPECT_FALSE(r.skyline.empty());
}

}  // namespace
}  // namespace crowdsky
