#include "algo/metrics.h"

#include <gtest/gtest.h>

#include "data/toy.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

// Toy ground truth: SKY_A = {b,e,f,h,i,k,l}, SKY_AK = {b,e,i,l},
// newly retrieved truth = {f, h, k}.

std::vector<int> Ids(const std::string& labels) {
  std::vector<int> out;
  for (const char c : labels) out.push_back(ToyId(c));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(MetricsTest, PerfectResult) {
  const Dataset toy = MakeToyDataset();
  const AccuracyMetrics m =
      EvaluateNewSkylineAccuracy(toy, Ids("befhikl"));
  EXPECT_EQ(m.truth_new, 3);
  EXPECT_EQ(m.retrieved_new, 3);
  EXPECT_EQ(m.correct_new, 3);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(MetricsTest, MissingNewTupleLowersRecallOnly) {
  const Dataset toy = MakeToyDataset();
  // Result misses k.
  const AccuracyMetrics m = EvaluateNewSkylineAccuracy(toy, Ids("befhil"));
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_NEAR(m.recall, 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, SpuriousTupleLowersPrecisionOnly) {
  const Dataset toy = MakeToyDataset();
  // Result wrongly includes a (a non-skyline tuple).
  const AccuracyMetrics m =
      EvaluateNewSkylineAccuracy(toy, Ids("abefhikl"));
  EXPECT_NEAR(m.precision, 3.0 / 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
}

TEST(MetricsTest, KnownSkylineMembersDoNotCount) {
  const Dataset toy = MakeToyDataset();
  // Returning only the AK skyline: nothing newly retrieved.
  const AccuracyMetrics m = EvaluateNewSkylineAccuracy(toy, Ids("beil"));
  EXPECT_EQ(m.retrieved_new, 0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);  // convention for empty retrieval
  EXPECT_DOUBLE_EQ(m.recall, 0.0);
}

TEST(MetricsTest, EmptyTruthGivesRecallOne) {
  // Dataset where AK skyline == full skyline (nothing to retrieve).
  auto ds = Dataset::Make(Schema::MakeSynthetic(1, 1),
                          {{1, 0.1}, {2, 0.2}, {3, 0.3}});
  ds.status().CheckOK();
  const AccuracyMetrics m = EvaluateNewSkylineAccuracy(*ds, {0});
  EXPECT_EQ(m.truth_new, 0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
}

TEST(MetricsTest, UnsortedInputHandled) {
  const Dataset toy = MakeToyDataset();
  std::vector<int> shuffled = {ToyId('k'), ToyId('b'), ToyId('f'),
                               ToyId('h'), ToyId('e'), ToyId('i'),
                               ToyId('l')};
  const AccuracyMetrics m = EvaluateNewSkylineAccuracy(toy, shuffled);
  EXPECT_DOUBLE_EQ(m.f1, 1.0);
}

TEST(MetricsTest, F1IsHarmonicMean) {
  const Dataset toy = MakeToyDataset();
  const AccuracyMetrics m = EvaluateNewSkylineAccuracy(toy, Ids("befhil"));
  const double expected =
      2.0 * m.precision * m.recall / (m.precision + m.recall);
  EXPECT_DOUBLE_EQ(m.f1, expected);
}

}  // namespace
}  // namespace crowdsky
