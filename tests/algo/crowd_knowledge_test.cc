#include "algo/crowd_knowledge.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(CrowdKnowledgeTest, SingleAttributeRelations) {
  CrowdKnowledge k(4, 1);
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kUnknown);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kFirstPreferred).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kPrefers);
  EXPECT_EQ(k.Relation(1, 0), AcRelation::kPreferredBy);
  EXPECT_TRUE(k.WeaklyPrefers(0, 1));
  EXPECT_FALSE(k.WeaklyPrefers(1, 0));
}

TEST(CrowdKnowledgeTest, EqualAnswer) {
  CrowdKnowledge k(4, 1);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kEqual).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kEqual);
  EXPECT_TRUE(k.WeaklyPrefers(0, 1));
  EXPECT_TRUE(k.WeaklyPrefers(1, 0));
}

TEST(CrowdKnowledgeTest, SecondPreferredOrientation) {
  CrowdKnowledge k(4, 1);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kSecondPreferred).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kPreferredBy);
}

TEST(CrowdKnowledgeTest, TransitivityAcrossRecords) {
  CrowdKnowledge k(5, 1);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kFirstPreferred).ok());
  ASSERT_TRUE(k.Record(0, 1, 2, Answer::kFirstPreferred).ok());
  EXPECT_EQ(k.Relation(0, 2), AcRelation::kPrefers);
}

TEST(CrowdKnowledgeTest, MultiAttributeCombination) {
  CrowdKnowledge k(4, 2);
  // attr 0: 0 < 1; attr 1 unknown -> combined unknown.
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kFirstPreferred).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kUnknown);
  // attr 1: 0 < 1 as well -> combined strict preference.
  ASSERT_TRUE(k.Record(1, 0, 1, Answer::kFirstPreferred).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kPrefers);
}

TEST(CrowdKnowledgeTest, MultiAttributeIncomparable) {
  CrowdKnowledge k(4, 2);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kFirstPreferred).ok());
  ASSERT_TRUE(k.Record(1, 0, 1, Answer::kSecondPreferred).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kIncomparable);
  EXPECT_FALSE(k.WeaklyPrefers(0, 1));
  EXPECT_FALSE(k.WeaklyPrefers(1, 0));
}

TEST(CrowdKnowledgeTest, IncomparableIsDefiniteEvenWithUnknownAttr) {
  CrowdKnowledge k(4, 3);
  // One strict each way decides incomparability regardless of attr 2.
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kFirstPreferred).ok());
  ASSERT_TRUE(k.Record(1, 0, 1, Answer::kSecondPreferred).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kIncomparable);
}

TEST(CrowdKnowledgeTest, EqualPlusStrictIsStrict) {
  CrowdKnowledge k(4, 2);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kEqual).ok());
  ASSERT_TRUE(k.Record(1, 0, 1, Answer::kFirstPreferred).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kPrefers);
}

TEST(CrowdKnowledgeTest, AllEqualIsEqual) {
  CrowdKnowledge k(4, 2);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kEqual).ok());
  ASSERT_TRUE(k.Record(1, 0, 1, Answer::kEqual).ok());
  EXPECT_EQ(k.Relation(0, 1), AcRelation::kEqual);
}

TEST(CrowdKnowledgeTest, PrunedFromAcSkylineSingleAttr) {
  CrowdKnowledge k(5, 1);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kFirstPreferred).ok());
  DynamicBitset mask(5);
  std::vector<int> members = {0, 1, 3};
  for (const int m : members) mask.Set(static_cast<size_t>(m));
  EXPECT_TRUE(k.PrunedFromAcSkyline(mask, members, 1));   // 0 < 1
  EXPECT_FALSE(k.PrunedFromAcSkyline(mask, members, 0));
  EXPECT_FALSE(k.PrunedFromAcSkyline(mask, members, 3));  // unrelated
}

TEST(CrowdKnowledgeTest, EqualGroupKeepsSmallestId) {
  CrowdKnowledge k(5, 1);
  ASSERT_TRUE(k.Record(0, 1, 3, Answer::kEqual).ok());
  DynamicBitset mask(5);
  std::vector<int> members = {1, 3};
  mask.Set(1);
  mask.Set(3);
  EXPECT_FALSE(k.PrunedFromAcSkyline(mask, members, 1));
  EXPECT_TRUE(k.PrunedFromAcSkyline(mask, members, 3));
}

TEST(CrowdKnowledgeTest, EqualGroupKeepsSmallestIdMultiAttr) {
  CrowdKnowledge k(5, 2);
  ASSERT_TRUE(k.Record(0, 1, 3, Answer::kEqual).ok());
  ASSERT_TRUE(k.Record(1, 1, 3, Answer::kEqual).ok());
  DynamicBitset mask(5);
  std::vector<int> members = {1, 3};
  mask.Set(1);
  mask.Set(3);
  EXPECT_FALSE(k.PrunedFromAcSkyline(mask, members, 1));
  EXPECT_TRUE(k.PrunedFromAcSkyline(mask, members, 3));
}

TEST(CrowdKnowledgeTest, ContradictionCountAggregates) {
  CrowdKnowledge k(4, 2, ContradictionPolicy::kFirstWins);
  ASSERT_TRUE(k.Record(0, 0, 1, Answer::kFirstPreferred).ok());
  ASSERT_TRUE(k.Record(0, 1, 0, Answer::kFirstPreferred).ok());  // conflict
  ASSERT_TRUE(k.Record(1, 2, 3, Answer::kFirstPreferred).ok());
  ASSERT_TRUE(k.Record(1, 2, 3, Answer::kEqual).ok());  // conflict
  EXPECT_EQ(k.contradiction_count(), 2);
}

}  // namespace
}  // namespace crowdsky
