// The round-robin multi-attribute strategy (Section 6.1 mentions it as a
// possible refinement for |AC| > 1): ask one crowd-attribute question at a
// time and stop as soon as the pair's fate is decided.
#include <gtest/gtest.h>

#include "algo/crowdsky_algorithm.h"
#include "algo/parallel_sl.h"
#include "crowd/oracle.h"
#include "data/generator.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

Dataset Make(int n, int num_crowd, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 3;
  opt.num_crowd = num_crowd;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

TEST(RoundRobinTest, SameSkylineAsAllAtOnce) {
  for (const int mc : {1, 2, 3}) {
    for (uint64_t seed = 1; seed <= 3; ++seed) {
      const Dataset ds = Make(120, mc, seed);
      PerfectOracle o1(ds), o2(ds);
      CrowdSession s1(&o1), s2(&o2);
      CrowdSkyOptions rr;
      rr.multi_attr = MultiAttributeStrategy::kRoundRobin;
      const AlgoResult a = RunCrowdSky(ds, &s1, {});
      const AlgoResult b = RunCrowdSky(ds, &s2, rr);
      EXPECT_EQ(a.skyline, b.skyline) << "mc=" << mc << " seed=" << seed;
      EXPECT_EQ(b.skyline, ComputeGroundTruthSkyline(ds));
    }
  }
}

TEST(RoundRobinTest, SavesQuestionsWithMultipleCrowdAttributes) {
  int64_t all_at_once = 0, round_robin = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset ds = Make(250, 3, seed);
    PerfectOracle o1(ds), o2(ds);
    CrowdSession s1(&o1), s2(&o2);
    CrowdSkyOptions rr;
    rr.multi_attr = MultiAttributeStrategy::kRoundRobin;
    all_at_once += RunCrowdSky(ds, &s1, {}).questions;
    round_robin += RunCrowdSky(ds, &s2, rr).questions;
  }
  // Once two tuples are incomparable within AC (or the dominator is
  // strictly beaten somewhere), the remaining attribute questions are
  // skipped. The net saving is modest — skipped answers also stop feeding
  // the preference tree, so later pairs get fewer free lookups — but it
  // must be a saving.
  EXPECT_LT(round_robin, all_at_once * 98 / 100);
}

TEST(RoundRobinTest, NoEffectWithSingleCrowdAttribute) {
  const Dataset ds = Make(150, 1, 5);
  PerfectOracle o1(ds), o2(ds);
  CrowdSession s1(&o1), s2(&o2);
  CrowdSkyOptions rr;
  rr.multi_attr = MultiAttributeStrategy::kRoundRobin;
  const AlgoResult a = RunCrowdSky(ds, &s1, {});
  const AlgoResult b = RunCrowdSky(ds, &s2, rr);
  EXPECT_EQ(a.questions, b.questions);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.skyline, b.skyline);
}

TEST(RoundRobinTest, CostsMoreRoundsInExchange) {
  const Dataset ds = Make(200, 3, 7);
  PerfectOracle o1(ds), o2(ds);
  CrowdSession s1(&o1), s2(&o2);
  CrowdSkyOptions rr;
  rr.multi_attr = MultiAttributeStrategy::kRoundRobin;
  const AlgoResult a = RunCrowdSky(ds, &s1, {});
  const AlgoResult b = RunCrowdSky(ds, &s2, rr);
  // All-at-once bundles a pair's m questions into one round; round-robin
  // spreads the asks it still needs over separate rounds.
  EXPECT_GE(b.rounds, a.rounds);
}

TEST(RoundRobinTest, WorksUnderParallelSL) {
  const Dataset ds = Make(150, 2, 9);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  CrowdSkyOptions rr;
  rr.multi_attr = MultiAttributeStrategy::kRoundRobin;
  const AlgoResult r = RunParallelSL(ds, &session, rr);
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds));
}

TEST(RoundRobinTest, WorksUnderNoise) {
  const Dataset ds = Make(150, 2, 11);
  WorkerModel worker;
  worker.p_correct = 0.8;
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5), 13);
  CrowdSession session(&crowd);
  CrowdSkyOptions rr;
  rr.multi_attr = MultiAttributeStrategy::kRoundRobin;
  const AlgoResult r = RunCrowdSky(ds, &session, rr);
  EXPECT_FALSE(r.skyline.empty());
  EXPECT_TRUE(std::is_sorted(r.skyline.begin(), r.skyline.end()));
}

TEST(RoundRobinTest, WorksWithBudget) {
  const Dataset ds = Make(150, 2, 13);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(25);
  CrowdSkyOptions rr;
  rr.multi_attr = MultiAttributeStrategy::kRoundRobin;
  const AlgoResult r = RunCrowdSky(ds, &session, rr);
  EXPECT_LE(r.questions, 25);
}

}  // namespace
}  // namespace crowdsky
