// Pruning behaviour on synthetic data: the question-count orderings that
// Figures 6-7 report must hold as properties, not just in one plot.
#include <gtest/gtest.h>

#include "algo/baseline_sort.h"
#include "algo/crowdsky_algorithm.h"
#include "crowd/oracle.h"
#include "data/generator.h"

namespace crowdsky {
namespace {

int64_t Questions(const Dataset& ds, PruningConfig pruning) {
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  CrowdSkyOptions options;
  options.pruning = pruning;
  return RunCrowdSky(ds, &session, options).questions;
}

int64_t BaselineQuestions(const Dataset& ds) {
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  return RunBaselineSort(ds, &session).questions;
}

Dataset Make(DataDistribution dist, int n, int dk, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = dk;
  opt.num_crowd = 1;
  opt.distribution = dist;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

TEST(PruningTest, LevelsMonotoneOnIndependentData) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset ds = Make(DataDistribution::kIndependent, 300, 4, seed);
    const int64_t exhaustive =
        Questions(ds, PruningConfig::DSetExhaustive());
    const int64_t dset = Questions(ds, PruningConfig::DSetOnly());
    const int64_t p1 = Questions(ds, PruningConfig::P1());
    const int64_t p12 = Questions(ds, PruningConfig::P1P2());
    const int64_t all = Questions(ds, PruningConfig::All());
    EXPECT_LT(dset, exhaustive) << seed;
    EXPECT_LT(p1, dset) << seed;
    EXPECT_LE(p12, p1) << seed;
    // Probing can trade a few extra probe questions for Q(t) savings; on
    // independent data the net effect is small either way (Figure 6).
    EXPECT_LE(all, p12 + p12 / 8 + 5) << seed;
  }
}

TEST(PruningTest, FullPruningBeatsBaselineOnIndependentData) {
  const Dataset ds = Make(DataDistribution::kIndependent, 500, 4, 7);
  const int64_t all = Questions(ds, PruningConfig::All());
  const int64_t baseline = BaselineQuestions(ds);
  // The paper reports ~10x on IND; require at least 3x at this small n.
  EXPECT_LT(all * 3, baseline);
}

TEST(PruningTest, DSetBeatsBaselineOnIndButNotAnt) {
  // Figure 6(a) vs 7(a): DSet alone wins on IND and loses on ANT — the
  // anti-correlated skyline explodes, so every newly-confirmed skyline
  // tuple pays its full dominating set and the total exceeds the sort's
  // n log n.
  const Dataset ind = Make(DataDistribution::kIndependent, 600, 4, 9);
  EXPECT_LT(Questions(ind, PruningConfig::DSetOnly()),
            BaselineQuestions(ind));
  const Dataset ant = Make(DataDistribution::kAntiCorrelated, 1500, 4, 9);
  EXPECT_GT(Questions(ant, PruningConfig::DSetOnly()),
            BaselineQuestions(ant));
}

TEST(PruningTest, P2EffectiveOnAntiCorrelatedData) {
  const Dataset ds = Make(DataDistribution::kAntiCorrelated, 300, 4, 11);
  const int64_t p1 = Questions(ds, PruningConfig::P1());
  const int64_t p12 = Questions(ds, PruningConfig::P1P2());
  EXPECT_LT(p12, p1);
}

TEST(PruningTest, QuestionsDecreaseWithMoreKnownAttributes) {
  // Figure 6(b): dominating sets shrink as |AK| grows.
  const int64_t q2 =
      Questions(Make(DataDistribution::kIndependent, 400, 2, 13),
                PruningConfig::All());
  const int64_t q5 =
      Questions(Make(DataDistribution::kIndependent, 400, 5, 13),
                PruningConfig::All());
  EXPECT_NE(q2, 0);
  EXPECT_LT(q5, q2 * 3);  // weak form; absolute counts vary with skyline size
}

TEST(PruningTest, QuestionsGrowWithCrowdAttributes) {
  // Figure 6(c): each pair-ask costs |AC| questions and incomparability
  // within AC weakens pruning.
  GeneratorOptions opt;
  opt.cardinality = 300;
  opt.num_known = 4;
  opt.seed = 15;
  opt.num_crowd = 1;
  const Dataset one = GenerateDataset(opt).ValueOrDie();
  opt.num_crowd = 3;
  const Dataset three = GenerateDataset(opt).ValueOrDie();
  EXPECT_GT(Questions(three, PruningConfig::All()),
            Questions(one, PruningConfig::All()));
}

TEST(PruningTest, QuestionsGrowWithCardinality) {
  const int64_t small = Questions(
      Make(DataDistribution::kIndependent, 150, 4, 17), PruningConfig::All());
  const int64_t large = Questions(
      Make(DataDistribution::kIndependent, 600, 4, 17), PruningConfig::All());
  EXPECT_GT(large, small);
}

TEST(PruningTest, ProbingHelpsOnAntiCorrelatedData) {
  // Figure 7(a): P3 is most effective when many AK non-skyline tuples
  // share large dominating sets.
  int64_t with_p3 = 0, without_p3 = 0;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Dataset ds = Make(DataDistribution::kAntiCorrelated, 250, 2, seed);
    with_p3 += Questions(ds, PruningConfig::All());
    without_p3 += Questions(ds, PruningConfig::P1P2());
  }
  EXPECT_LT(with_p3, without_p3);
}

TEST(PruningTest, TransitivitySavesQuestionsWithoutP2) {
  // With P2 on, transitive knowledge is consumed as dominating-set
  // reductions; with only DSet + the tree, it surfaces as free lookups.
  const Dataset ds = Make(DataDistribution::kIndependent, 300, 3, 19);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  CrowdSkyOptions options;
  options.pruning = PruningConfig::DSetOnly();
  options.pruning.use_transitivity = true;
  const AlgoResult r = RunCrowdSky(ds, &session, options);
  EXPECT_GT(r.free_lookups, 0);
}

}  // namespace
}  // namespace crowdsky
