// End-to-end robustness: the CrowdSky-family drivers on a marketplace
// with an active FaultPlan. The contract under test: no abort, a
// best-effort skyline with a consistent CompletenessReport, deterministic
// replay from the same seed, and bit-identical behaviour when the plan is
// disabled.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/engine.h"
#include "data/generator.h"

namespace crowdsky {
namespace {

Dataset Make(int n, uint64_t seed = 11) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 3;
  opt.num_crowd = 1;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

FaultPlan ModeratePlan() {
  FaultPlan plan;
  plan.transient_error_rate = 0.1;
  plan.hit_expiration_rate = 0.05;
  plan.hit_expiration_rounds = 2;
  plan.worker_no_show_rate = 0.15;
  plan.straggler_rate = 0.1;
  return plan;
}

EngineOptions FaultyOptions(Algorithm algorithm) {
  EngineOptions opts;
  opts.algorithm = algorithm;
  opts.oracle = OracleKind::kMarketplace;
  opts.seed = 31;
  opts.marketplace.faults = ModeratePlan();
  opts.crowdsky.audit = true;  // any broken invariant aborts the test
  return opts;
}

void ExpectConsistentCompleteness(const AlgoResult& r, int num_tuples) {
  const CompletenessReport& c = r.completeness;
  EXPECT_EQ(c.complete, c.undetermined_tuples.empty());
  EXPECT_EQ(r.incomplete_tuples,
            static_cast<int64_t>(c.undetermined_tuples.size()));
  EXPECT_EQ(c.determined_tuples +
                static_cast<int64_t>(c.undetermined_tuples.size()),
            num_tuples);
  EXPECT_EQ(c.resolved_questions,
            r.questions - r.retries - c.unresolved_questions);
  EXPECT_EQ(c.retries_exhausted, c.unresolved_questions > 0);
  EXPECT_FALSE(c.ToString().empty());
}

TEST(RobustnessTest, AllDriversSurviveFaultsUnderAudit) {
  const Dataset ds = Make(60);
  for (const Algorithm algorithm :
       {Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet,
        Algorithm::kParallelSL}) {
    const EngineResult r =
        RunSkylineQuery(ds, FaultyOptions(algorithm)).ValueOrDie();
    ExpectConsistentCompleteness(r.algo, ds.size());
    EXPECT_GT(r.algo.questions, 0);
    EXPECT_GT(r.algo.failed_attempts, 0);  // the plan actually bit
    EXPECT_GE(r.algo.retries, 0);
    EXPECT_GT(r.cost_usd, 0.0);
  }
}

TEST(RobustnessTest, SameSeedReplaysTheIdenticalRun) {
  const Dataset ds = Make(70, 23);
  const EngineOptions opts = FaultyOptions(Algorithm::kParallelSL);
  const EngineResult a = RunSkylineQuery(ds, opts).ValueOrDie();
  const EngineResult b = RunSkylineQuery(ds, opts).ValueOrDie();
  EXPECT_EQ(a.algo.skyline, b.algo.skyline);
  EXPECT_EQ(a.algo.questions, b.algo.questions);
  EXPECT_EQ(a.algo.rounds, b.algo.rounds);
  EXPECT_EQ(a.algo.retries, b.algo.retries);
  EXPECT_EQ(a.algo.failed_attempts, b.algo.failed_attempts);
  EXPECT_EQ(a.algo.degraded_quorum, b.algo.degraded_quorum);
  EXPECT_EQ(a.algo.backoff_rounds, b.algo.backoff_rounds);
  EXPECT_EQ(a.algo.questions_per_round, b.algo.questions_per_round);
  EXPECT_EQ(a.algo.completeness.undetermined_tuples,
            b.algo.completeness.undetermined_tuples);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
}

TEST(RobustnessTest, DisabledPlanIsBitIdenticalToNoPlan) {
  const Dataset ds = Make(60, 29);
  EngineOptions plain;
  plain.algorithm = Algorithm::kParallelSL;
  plain.oracle = OracleKind::kMarketplace;
  plain.seed = 17;
  plain.crowdsky.audit = true;
  EngineOptions zeroed = plain;
  zeroed.marketplace.faults = FaultPlan{};  // explicit all-zero plan
  const EngineResult a = RunSkylineQuery(ds, plain).ValueOrDie();
  const EngineResult b = RunSkylineQuery(ds, zeroed).ValueOrDie();
  EXPECT_EQ(a.algo.skyline, b.algo.skyline);
  EXPECT_EQ(a.algo.questions, b.algo.questions);
  EXPECT_EQ(a.algo.questions_per_round, b.algo.questions_per_round);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  // No robustness machinery fires on a fault-free run.
  EXPECT_EQ(b.algo.retries, 0);
  EXPECT_EQ(b.algo.failed_attempts, 0);
  EXPECT_EQ(b.algo.degraded_quorum, 0);
  EXPECT_EQ(b.algo.backoff_rounds, 0);
  EXPECT_TRUE(b.algo.completeness.complete);
  EXPECT_EQ(b.algo.completeness.unresolved_questions, 0);
}

TEST(RobustnessTest, RetriesRecoverQuestionsTheNoRetryPolicyLosesTo) {
  const Dataset ds = Make(80, 37);
  EngineOptions opts = FaultyOptions(Algorithm::kParallelSL);
  opts.marketplace.faults.transient_error_rate = 0.3;
  opts.retry.max_retries = 0;
  const EngineResult none = RunSkylineQuery(ds, opts).ValueOrDie();
  opts.retry.max_retries = 4;
  const EngineResult four = RunSkylineQuery(ds, opts).ValueOrDie();
  ASSERT_GT(none.algo.failed_attempts, 0);
  EXPECT_GT(none.algo.completeness.unresolved_questions, 0);
  EXPECT_EQ(none.algo.retries, 0);
  EXPECT_GT(four.algo.retries, 0);
  EXPECT_LT(four.algo.completeness.unresolved_questions,
            none.algo.completeness.unresolved_questions);
}

TEST(RobustnessTest, BudgetPlusFaultsYieldsBestEffortResult) {
  const Dataset ds = Make(80, 41);
  EngineOptions opts = FaultyOptions(Algorithm::kParallelSL);
  opts.max_questions = 30;
  const EngineResult r = RunSkylineQuery(ds, opts).ValueOrDie();
  ExpectConsistentCompleteness(r.algo, ds.size());
  EXPECT_LE(r.algo.questions, 30);
  EXPECT_FALSE(r.algo.completeness.complete);
  EXPECT_TRUE(r.algo.completeness.budget_exhausted);
  // Undetermined tuples stay in the skyline (in-by-default, Section 2.3).
  for (const int t : r.algo.completeness.undetermined_tuples) {
    EXPECT_TRUE(std::find(r.algo.skyline.begin(), r.algo.skyline.end(), t) !=
                r.algo.skyline.end())
        << t;
  }
}

TEST(RobustnessTest, SerialAndDSetDriversDegradeGracefullyToo) {
  const Dataset ds = Make(60, 43);
  for (const Algorithm algorithm :
       {Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet}) {
    EngineOptions opts = FaultyOptions(algorithm);
    opts.marketplace.faults.transient_error_rate = 0.4;
    opts.retry.max_retries = 1;
    const EngineResult r = RunSkylineQuery(ds, opts).ValueOrDie();
    ExpectConsistentCompleteness(r.algo, ds.size());
  }
}

TEST(RobustnessTest, FaultsRequireTheMarketplaceOracle) {
  const Dataset ds = Make(30);
  EngineOptions opts;
  opts.algorithm = Algorithm::kParallelSL;
  opts.oracle = OracleKind::kSimulated;
  opts.marketplace.faults = ModeratePlan();
  EXPECT_FALSE(RunSkylineQuery(ds, opts).ok());
}

TEST(RobustnessTest, FaultsRequireACrowdSkyFamilyAlgorithm) {
  const Dataset ds = Make(30);
  EngineOptions opts;
  opts.algorithm = Algorithm::kBaselineSort;
  opts.oracle = OracleKind::kMarketplace;
  opts.marketplace.faults = ModeratePlan();
  EXPECT_FALSE(RunSkylineQuery(ds, opts).ok());
}

}  // namespace
}  // namespace crowdsky
