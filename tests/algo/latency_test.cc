// Latency (round count) properties of Section 4 / Figures 8-9.
#include <gtest/gtest.h>

#include "algo/baseline_sort.h"
#include "algo/crowdsky_algorithm.h"
#include "algo/parallel_dset.h"
#include "algo/parallel_sl.h"
#include "crowd/oracle.h"
#include "data/generator.h"

namespace crowdsky {
namespace {

struct Rounds {
  int64_t baseline;
  int64_t serial;
  int64_t pdset;
  int64_t psl;
};

Rounds MeasureRounds(const Dataset& ds) {
  Rounds r{};
  {
    PerfectOracle o(ds);
    CrowdSession s(&o);
    r.baseline = RunBaselineSort(ds, &s).rounds;
  }
  {
    PerfectOracle o(ds);
    CrowdSession s(&o);
    r.serial = RunCrowdSky(ds, &s, {}).rounds;
  }
  {
    PerfectOracle o(ds);
    CrowdSession s(&o);
    r.pdset = RunParallelDSet(ds, &s, {}).rounds;
  }
  {
    PerfectOracle o(ds);
    CrowdSession s(&o);
    r.psl = RunParallelSL(ds, &s, {}).rounds;
  }
  return r;
}

Dataset Make(DataDistribution dist, int n, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 4;
  opt.num_crowd = 1;
  opt.distribution = dist;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

TEST(LatencyTest, Figure8OrderingHolds) {
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    const Dataset ds = Make(dist, 500, 3);
    const Rounds r = MeasureRounds(ds);
    // Baseline > Serial > ParallelDSet > ParallelSL.
    EXPECT_GT(r.baseline, r.serial) << DataDistributionName(dist);
    EXPECT_GT(r.serial, r.pdset) << DataDistributionName(dist);
    EXPECT_GT(r.pdset, r.psl) << DataDistributionName(dist);
  }
}

TEST(LatencyTest, ParallelSLRoundsStayTiny) {
  // The paper reports ~20-30 rounds regardless of cardinality.
  for (const int n : {300, 900}) {
    const Dataset ds = Make(DataDistribution::kIndependent, n, 5);
    PerfectOracle o(ds);
    CrowdSession s(&o);
    const AlgoResult r = RunParallelSL(ds, &s, {});
    EXPECT_LE(r.rounds, 60) << n;
    EXPECT_GE(r.rounds, 1) << n;
  }
}

TEST(LatencyTest, ParallelSLRoundsGrowSlowlyWithCardinality) {
  const Dataset small = Make(DataDistribution::kIndependent, 200, 7);
  const Dataset large = Make(DataDistribution::kIndependent, 1200, 7);
  PerfectOracle o1(small), o2(large);
  CrowdSession s1(&o1), s2(&o2);
  const int64_t r_small = RunParallelSL(small, &s1, {}).rounds;
  const int64_t r_large = RunParallelSL(large, &s2, {}).rounds;
  // 6x the data should cost far less than 6x the rounds.
  EXPECT_LT(r_large, 3 * r_small + 20);
}

TEST(LatencyTest, SerialRoundsEqualQuestions) {
  const Dataset ds = Make(DataDistribution::kIndependent, 250, 9);
  PerfectOracle o(ds);
  CrowdSession s(&o);
  const AlgoResult r = RunCrowdSky(ds, &s, {});
  EXPECT_EQ(r.rounds, r.questions);
}

TEST(LatencyTest, RoundsDecreaseWithMoreKnownAttributes) {
  // Figure 9: the degree of parallelization grows with |AK| for the
  // parallel variants.
  GeneratorOptions opt;
  opt.cardinality = 600;
  opt.num_crowd = 1;
  opt.seed = 11;
  opt.num_known = 2;
  const Dataset d2 = GenerateDataset(opt).ValueOrDie();
  opt.num_known = 5;
  const Dataset d5 = GenerateDataset(opt).ValueOrDie();
  PerfectOracle o1(d2), o2(d5);
  CrowdSession s1(&o1), s2(&o2);
  const int64_t r2 = RunParallelSL(d2, &s1, {}).rounds;
  const int64_t r5 = RunParallelSL(d5, &s2, {}).rounds;
  EXPECT_LT(r5, r2 + 15);
}

TEST(LatencyTest, QuestionsPerRoundSumsToQuestions) {
  const Dataset ds = Make(DataDistribution::kAntiCorrelated, 300, 13);
  using Runner = AlgoResult (*)(const Dataset&, CrowdSession*);
  const Runner runners[] = {
      [](const Dataset& d, CrowdSession* s) {
        return RunParallelSL(d, s, {});
      },
      [](const Dataset& d, CrowdSession* s) {
        return RunParallelDSet(d, s, {});
      }};
  for (const Runner runner : runners) {
    PerfectOracle o(ds);
    CrowdSession s(&o);
    const AlgoResult r = runner(ds, &s);
    int64_t total = 0;
    for (const int64_t q : r.questions_per_round) total += q;
    EXPECT_EQ(total, r.questions);
    EXPECT_EQ(static_cast<int64_t>(r.questions_per_round.size()), r.rounds);
  }
}

}  // namespace
}  // namespace crowdsky
