#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace crowdsky {
namespace {

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  std::vector<int> seen;
  pool.ParallelFor(3, 11, 2, [&](size_t begin, size_t end) {
    // threads=1 must make exactly one call covering the whole range, on
    // the calling thread — this is the determinism fallback.
    EXPECT_EQ(begin, 3u);
    EXPECT_EQ(end, 11u);
    for (size_t i = begin; i < end; ++i) seen.push_back(static_cast<int>(i));
  });
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ThreadPoolTest, ZeroAndEmptyRanges) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 0, 1, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
  pool.ParallelFor(7, 3, 1, [&](size_t, size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPoolTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const size_t n = 100003;
  std::vector<std::atomic<int>> hits(n);
  pool.ParallelFor(0, n, 64, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (size_t i = 0; i < n; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, GrainLargerThanRangeRunsInline) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, 10, 100, [&](size_t begin, size_t end) {
    ++calls;
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 10u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ExceptionPropagatesAndPoolStaysUsable) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(0, 1000, 8,
                       [&](size_t begin, size_t) {
                         if (begin == 0) {
                           throw std::runtime_error("boom");
                         }
                       }),
      std::runtime_error);
  // The pool must drain the failed job completely and accept new work.
  std::atomic<size_t> total{0};
  pool.ParallelFor(0, 1000, 8, [&](size_t begin, size_t end) {
    total.fetch_add(end - begin, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 1000u);
}

TEST(ThreadPoolTest, NestedParallelForRunsInlineWithoutDeadlock) {
  ThreadPool pool(2);
  std::atomic<size_t> inner_total{0};
  pool.ParallelFor(0, 8, 1, [&](size_t begin, size_t end) {
    for (size_t i = begin; i < end; ++i) {
      // A worker (or the participating caller) re-entering ParallelFor
      // must run the nested body inline rather than wait on the pool.
      pool.ParallelFor(0, 10, 1, [&](size_t b, size_t e) {
        inner_total.fetch_add(e - b, std::memory_order_relaxed);
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 80u);
}

TEST(ThreadPoolTest, SubmitAndWaitIdle) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int i = 0; i < 50; ++i) {
    pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, NestedSubmitFromWorkerCompletes) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 8; ++i) {
    pool.Submit([&] {
      count.fetch_add(1, std::memory_order_relaxed);
      pool.Submit([&] { count.fetch_add(1, std::memory_order_relaxed); });
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPoolTest, DefaultThreadsHonorsEnvOverride) {
  ::setenv("CROWDSKY_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::DefaultThreads(), 3);
  ::setenv("CROWDSKY_THREADS", " 42", 1);  // leading blanks are fine
  EXPECT_EQ(ThreadPool::DefaultThreads(), 42);
  ::unsetenv("CROWDSKY_THREADS");
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolDeathTest, RejectsInvalidEnvOverride) {
  // A set-but-broken override must abort loudly, not silently fall back
  // to hardware_concurrency (the user believes they pinned the count).
  for (const char* bad : {"0", "-2", "fast", "1.5", "3threads", "",
                          "99999999999999999999"}) {
    ::setenv("CROWDSKY_THREADS", bad, 1);
    EXPECT_DEATH(ThreadPool::DefaultThreads(), "CROWDSKY_THREADS") << bad;
  }
  ::unsetenv("CROWDSKY_THREADS");
}

TEST(ThreadPoolTest, ScopedThreadsOverridesAndRestoresGlobal) {
  const int before = ThreadPool::Global().num_threads();
  {
    ScopedThreads scoped(3);
    EXPECT_EQ(ThreadPool::Global().num_threads(), 3);
    std::atomic<size_t> total{0};
    ParallelFor(0, 500, 16, [&](size_t begin, size_t end) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
    EXPECT_EQ(total.load(), 500u);
  }
  EXPECT_EQ(ThreadPool::Global().num_threads(), before);
}

TEST(ThreadPoolTest, ManyConcurrentParallelForsFromOneCaller) {
  ThreadPool pool(4);
  std::vector<int64_t> results(64, 0);
  for (int round = 0; round < 64; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(0, 10000, 128, [&](size_t begin, size_t end) {
      int64_t local = 0;
      for (size_t i = begin; i < end; ++i) {
        local += static_cast<int64_t>(i);
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    results[static_cast<size_t>(round)] = sum.load();
  }
  const int64_t expected = 10000LL * 9999 / 2;
  for (const int64_t r : results) EXPECT_EQ(r, expected);
}

}  // namespace
}  // namespace crowdsky
