#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

namespace crowdsky {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
}

TEST(ResultTest, ValueOrFallback) {
  Result<int> ok(7);
  Result<int> err = Status::IOError("x");
  EXPECT_EQ(ok.ValueOr(-1), 7);
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::vector<int>> r(std::vector<int>{1, 2, 3});
  std::vector<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(v.size(), 3u);
}

TEST(ResultTest, MoveOnlyType) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 5);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 10;
  };
  auto consume = [&](bool fail) -> Result<int> {
    CROWDSKY_ASSIGN_OR_RETURN(int v, produce(fail));
    return v * 2;
  };
  EXPECT_EQ(consume(false).ValueOrDie(), 20);
  EXPECT_TRUE(consume(true).status().IsOutOfRange());
}

TEST(ResultDeathTest, ValueOrDieOnErrorAborts) {
  Result<int> r = Status::IOError("fatal");
  EXPECT_DEATH({ (void)r.ValueOrDie(); }, "IO error");
}

TEST(ResultDeathTest, ConstructingFromOkStatusAborts) {
  EXPECT_DEATH({ Result<int> r{Status::OK()}; (void)r; }, "OK status");
}

}  // namespace
}  // namespace crowdsky
