#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace crowdsky {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ZeroSeedWorks) {
  Rng r(0);
  std::set<uint64_t> values;
  for (int i = 0; i < 32; ++i) values.insert(r.Next());
  EXPECT_GT(values.size(), 30u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = r.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng r(11);
  double sum = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, NextBoundedCoversRangeUniformly) {
  Rng r(17);
  std::vector<int> counts(10, 0);
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    ++counts[r.NextBounded(10)];
  }
  for (const int c : counts) {
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN / 10.0 * 0.1);
  }
}

TEST(RngTest, NextBoundedOne) {
  Rng r(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.NextBounded(1), 0u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(23);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = r.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliExtremes) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng r(31);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += r.Bernoulli(0.8) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.8, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng r(37);
  const int kN = 200000;
  double sum = 0, sq = 0;
  for (int i = 0; i < kN; ++i) {
    const double v = r.Gaussian(2.0, 3.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sq / kN - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(41);
  Rng child = a.Fork();
  // The fork must not replay the parent's stream.
  Rng b(41);
  b.Next();  // parent consumed one value to fork
  EXPECT_EQ(a.Next(), b.Next());
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.Next() == a.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, SplitMix64KnownValues) {
  // Reference values from the SplitMix64 specification (seed 0).
  uint64_t state = 0;
  EXPECT_EQ(SplitMix64(&state), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(SplitMix64(&state), 0x6e789e6aa1b965f4ULL);
}

TEST(RngTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Rng::min() == 0);
  static_assert(Rng::max() == ~0ULL);
  Rng r(43);
  EXPECT_NE(r(), r());
}

}  // namespace
}  // namespace crowdsky
