#include "common/bitset.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <span>

#include "common/random.h"

namespace crowdsky {
namespace {

TEST(DynamicBitsetTest, EmptyBitset) {
  DynamicBitset b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.None());
  EXPECT_EQ(b.Count(), 0u);
  EXPECT_EQ(b.FindFirst(), 0u);
}

TEST(DynamicBitsetTest, SetTestReset) {
  DynamicBitset b(130);
  EXPECT_FALSE(b.Test(0));
  b.Set(0);
  b.Set(64);
  b.Set(129);
  EXPECT_TRUE(b.Test(0));
  EXPECT_TRUE(b.Test(64));
  EXPECT_TRUE(b.Test(129));
  EXPECT_FALSE(b.Test(63));
  EXPECT_EQ(b.Count(), 3u);
  b.Reset(64);
  EXPECT_FALSE(b.Test(64));
  EXPECT_EQ(b.Count(), 2u);
}

TEST(DynamicBitsetTest, SetTo) {
  DynamicBitset b(10);
  b.SetTo(3, true);
  EXPECT_TRUE(b.Test(3));
  b.SetTo(3, false);
  EXPECT_FALSE(b.Test(3));
}

TEST(DynamicBitsetTest, SetAllRespectsPadding) {
  DynamicBitset b(70);
  b.SetAll();
  EXPECT_EQ(b.Count(), 70u);
  b.ClearAll();
  EXPECT_TRUE(b.None());
}

TEST(DynamicBitsetTest, ExactWordBoundary) {
  DynamicBitset b(64);
  b.SetAll();
  EXPECT_EQ(b.Count(), 64u);
  EXPECT_TRUE(b.Test(63));
}

TEST(DynamicBitsetTest, ResizeKeepsBitsAndClearsPadding) {
  DynamicBitset b(10);
  b.Set(3);
  b.Set(9);
  b.Resize(100);
  EXPECT_TRUE(b.Test(3));
  EXPECT_TRUE(b.Test(9));
  EXPECT_EQ(b.Count(), 2u);
  b.SetAll();
  b.Resize(65);
  EXPECT_EQ(b.Count(), 65u);
}

TEST(DynamicBitsetTest, OrWith) {
  DynamicBitset a(128), b(128);
  a.Set(1);
  b.Set(100);
  a.OrWith(b);
  EXPECT_TRUE(a.Test(1));
  EXPECT_TRUE(a.Test(100));
  EXPECT_EQ(a.Count(), 2u);
}

TEST(DynamicBitsetTest, AndWith) {
  DynamicBitset a(128), b(128);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  b.Set(3);
  a.AndWith(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(2));
}

TEST(DynamicBitsetTest, AndNotWith) {
  DynamicBitset a(128), b(128);
  a.Set(1);
  a.Set(2);
  b.Set(2);
  a.AndNotWith(b);
  EXPECT_EQ(a.Count(), 1u);
  EXPECT_TRUE(a.Test(1));
}

TEST(DynamicBitsetTest, Intersects) {
  DynamicBitset a(200), b(200);
  a.Set(150);
  EXPECT_FALSE(a.Intersects(b));
  b.Set(150);
  EXPECT_TRUE(a.Intersects(b));
}

TEST(DynamicBitsetTest, IntersectionCount) {
  DynamicBitset a(256), b(256);
  for (size_t i = 0; i < 256; i += 2) a.Set(i);
  for (size_t i = 0; i < 256; i += 3) b.Set(i);
  size_t expected = 0;
  for (size_t i = 0; i < 256; i += 6) ++expected;
  EXPECT_EQ(a.IntersectionCount(b), expected);
}

TEST(DynamicBitsetTest, IsSubsetOf) {
  DynamicBitset a(100), b(100);
  a.Set(5);
  b.Set(5);
  b.Set(6);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  DynamicBitset empty(100);
  EXPECT_TRUE(empty.IsSubsetOf(a));
}

TEST(DynamicBitsetTest, FindFirstAndNext) {
  DynamicBitset b(300);
  EXPECT_EQ(b.FindFirst(), 300u);
  b.Set(13);
  b.Set(64);
  b.Set(299);
  EXPECT_EQ(b.FindFirst(), 13u);
  EXPECT_EQ(b.FindNext(13), 13u);
  EXPECT_EQ(b.FindNext(14), 64u);
  EXPECT_EQ(b.FindNext(65), 299u);
  EXPECT_EQ(b.FindNext(300), 300u);
}

TEST(DynamicBitsetTest, ForEachSetBitInOrder) {
  DynamicBitset b(500);
  const std::set<size_t> expected = {0, 63, 64, 65, 127, 128, 400, 499};
  for (const size_t i : expected) b.Set(i);
  std::vector<size_t> seen;
  b.ForEachSetBit([&seen](size_t i) { seen.push_back(i); });
  EXPECT_EQ(seen.size(), expected.size());
  EXPECT_TRUE(std::is_sorted(seen.begin(), seen.end()));
  for (const size_t i : seen) EXPECT_TRUE(expected.count(i));
}

TEST(DynamicBitsetTest, ToVector) {
  DynamicBitset b(80);
  b.Set(2);
  b.Set(79);
  const std::vector<int> v = b.ToVector();
  ASSERT_EQ(v.size(), 2u);
  EXPECT_EQ(v[0], 2);
  EXPECT_EQ(v[1], 79);
}

TEST(DynamicBitsetTest, Equality) {
  DynamicBitset a(64), b(64), c(65);
  a.Set(3);
  b.Set(3);
  EXPECT_TRUE(a == b);
  b.Set(4);
  EXPECT_FALSE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(DynamicBitsetTest, RandomizedAgainstStdSet) {
  Rng rng(99);
  const size_t kBits = 777;
  DynamicBitset b(kBits);
  std::set<size_t> reference;
  for (int op = 0; op < 5000; ++op) {
    const auto i = static_cast<size_t>(rng.NextBounded(kBits));
    if (rng.Bernoulli(0.6)) {
      b.Set(i);
      reference.insert(i);
    } else {
      b.Reset(i);
      reference.erase(i);
    }
  }
  EXPECT_EQ(b.Count(), reference.size());
  for (size_t i = 0; i < kBits; ++i) {
    EXPECT_EQ(b.Test(i), reference.count(i) > 0) << i;
  }
}

TEST(DynamicBitsetTest, RandomizedBulkOpsAgainstReference) {
  Rng rng(123);
  const size_t kBits = 321;
  for (int trial = 0; trial < 20; ++trial) {
    DynamicBitset a(kBits), b(kBits);
    std::set<size_t> ra, rb;
    for (int i = 0; i < 100; ++i) {
      const auto x = static_cast<size_t>(rng.NextBounded(kBits));
      const auto y = static_cast<size_t>(rng.NextBounded(kBits));
      a.Set(x);
      ra.insert(x);
      b.Set(y);
      rb.insert(y);
    }
    size_t inter = 0;
    for (const size_t x : ra) inter += rb.count(x);
    EXPECT_EQ(a.IntersectionCount(b), inter);
    EXPECT_EQ(a.Intersects(b), inter > 0);
    DynamicBitset u = a;
    u.OrWith(b);
    std::set<size_t> ru = ra;
    ru.insert(rb.begin(), rb.end());
    EXPECT_EQ(u.Count(), ru.size());
  }
}

TEST(DynamicBitsetTest, OrWithCountMatchesOrWithPlusCount) {
  Rng rng(77);
  const size_t kBits = 517;
  for (int trial = 0; trial < 10; ++trial) {
    DynamicBitset a(kBits), b(kBits);
    for (int i = 0; i < 120; ++i) {
      a.Set(static_cast<size_t>(rng.NextBounded(kBits)));
      b.Set(static_cast<size_t>(rng.NextBounded(kBits)));
    }
    DynamicBitset expected = a;
    expected.OrWith(b);
    DynamicBitset fused = a;
    const size_t count = fused.OrWithCount(b);
    EXPECT_EQ(count, expected.Count());
    for (size_t i = 0; i < kBits; ++i) {
      ASSERT_EQ(fused.Test(i), expected.Test(i)) << "bit " << i;
    }
  }
}

TEST(DynamicBitsetTest, AndNotCountMatchesSetDifference) {
  Rng rng(78);
  const size_t kBits = 200;
  for (int trial = 0; trial < 10; ++trial) {
    DynamicBitset a(kBits), b(kBits);
    std::set<size_t> ra, rb;
    for (int i = 0; i < 80; ++i) {
      const auto x = static_cast<size_t>(rng.NextBounded(kBits));
      const auto y = static_cast<size_t>(rng.NextBounded(kBits));
      a.Set(x);
      ra.insert(x);
      b.Set(y);
      rb.insert(y);
    }
    size_t diff = 0;
    for (const size_t x : ra) diff += 1 - rb.count(x);
    EXPECT_EQ(a.AndNotCount(b), diff);
    EXPECT_EQ(b.AndNotCount(b), 0u);
    EXPECT_EQ(a.AndNotCount(DynamicBitset(kBits)), a.Count());
  }
}

TEST(DynamicBitsetTest, WordSpanConstructor) {
  DynamicBitset src(130);
  src.Set(0);
  src.Set(64);
  src.Set(129);
  const DynamicBitset copy(130, src.words(), src.word_count());
  EXPECT_EQ(copy.Count(), 3u);
  EXPECT_TRUE(copy.Test(0));
  EXPECT_TRUE(copy.Test(64));
  EXPECT_TRUE(copy.Test(129));
  // A shorter target truncates and clears padding past `size`.
  const DynamicBitset narrow(65, src.words(), src.word_count());
  EXPECT_EQ(narrow.Count(), 2u);
  EXPECT_TRUE(narrow.Test(0));
  EXPECT_TRUE(narrow.Test(64));
  // Fewer source words than the target zero-fills the tail.
  const DynamicBitset padded(130, src.words(), 1);
  EXPECT_EQ(padded.Count(), 1u);
  EXPECT_TRUE(padded.Test(0));
  EXPECT_FALSE(padded.Test(64));
}

TEST(DynamicBitsetTest, MutableWordsWritesAreVisible) {
  DynamicBitset b(128);
  b.words()[1] = DynamicBitset::Word{1} << 5;
  EXPECT_TRUE(b.Test(64 + 5));
  EXPECT_EQ(b.Count(), 1u);
}

TEST(DynamicBitsetTest, SpanOverloadMatchesPointerConstructor) {
  DynamicBitset src(200);
  src.Set(3);
  src.Set(100);
  src.Set(199);
  const DynamicBitset via_span(
      200, std::span<const DynamicBitset::Word>(src.words(),
                                                src.word_count()));
  const DynamicBitset via_ptr(200, src.words(), src.word_count());
  EXPECT_EQ(via_span, via_ptr);
  EXPECT_EQ(via_span, src);
}

TEST(DynamicBitsetTest, AssignAndNotComputesDifferenceInOnePass) {
  DynamicBitset a(150);
  DynamicBitset b(150);
  for (size_t i = 0; i < 150; i += 3) a.Set(i);
  for (size_t i = 0; i < 150; i += 5) b.Set(i);
  DynamicBitset out(7);  // wrong size on purpose: must adopt a's size
  out.AssignAndNot(a, b);
  EXPECT_EQ(out.size(), 150u);
  for (size_t i = 0; i < 150; ++i) {
    EXPECT_EQ(out.Test(i), a.Test(i) && !b.Test(i)) << i;
  }
  DynamicBitset expected = a;
  expected.AndNotWith(b);
  EXPECT_EQ(out, expected);
}

TEST(DynamicBitsetTest, OrAndNotWithFusesOrAndDifference) {
  DynamicBitset self(130);
  DynamicBitset or_src(130);
  DynamicBitset minus(130);
  self.Set(1);
  or_src.Set(2);
  or_src.Set(3);
  or_src.Set(129);
  minus.Set(3);
  minus.Set(1);  // removing a bit already in self must NOT clear it
  self.OrAndNotWith(or_src, minus);
  EXPECT_TRUE(self.Test(1));
  EXPECT_TRUE(self.Test(2));
  EXPECT_FALSE(self.Test(3));
  EXPECT_TRUE(self.Test(129));
  EXPECT_EQ(self.Count(), 3u);
}

TEST(DynamicBitsetTest, OrWithAndSetAbsorbsRowAndOwner) {
  DynamicBitset self(70);
  DynamicBitset other(70);
  other.Set(0);
  other.Set(69);
  self.OrWithAndSet(other, 33);
  EXPECT_TRUE(self.Test(0));
  EXPECT_TRUE(self.Test(33));
  EXPECT_TRUE(self.Test(69));
  EXPECT_EQ(self.Count(), 3u);
}

TEST(DynamicBitsetTest, CountWordRangeMatchesManualSlices) {
  DynamicBitset b(64 * 9 + 17);
  for (size_t i = 0; i < b.size(); i += 7) b.Set(i);
  EXPECT_EQ(b.CountWordRange(0, b.word_count()), b.Count());
  EXPECT_EQ(b.CountWordRange(2, 2), 0u);
  size_t total = 0;
  for (size_t w = 0; w < b.word_count(); ++w) {
    total += b.CountWordRange(w, w + 1);
  }
  EXPECT_EQ(total, b.Count());
  // An interior slice counted manually.
  size_t expected = 0;
  for (size_t i = 64 * 3; i < 64 * 7; ++i) {
    if (b.Test(i)) ++expected;
  }
  EXPECT_EQ(b.CountWordRange(3, 7), expected);
}

TEST(DynamicBitsetTest, Transpose64x64MatchesNaiveBitTranspose) {
  DynamicBitset::Word w[64];
  DynamicBitset::Word orig[64];
  DynamicBitset::Word x = 0x9E3779B97F4A7C15ULL;  // xorshift-filled rows
  for (auto& row : w) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    row = x;
  }
  std::copy(std::begin(w), std::end(w), std::begin(orig));
  Transpose64x64(w);
  for (size_t r = 0; r < 64; ++r) {
    for (size_t c = 0; c < 64; ++c) {
      ASSERT_EQ((w[r] >> c) & 1u, (orig[c] >> r) & 1u)
          << "r=" << r << " c=" << c;
    }
  }
  // Involution: transposing again restores the original block.
  Transpose64x64(w);
  EXPECT_TRUE(std::equal(std::begin(w), std::end(w), std::begin(orig)));
}

}  // namespace
}  // namespace crowdsky
