#include "common/logging.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(LoggingTest, DefaultLevelIsInfo) {
  EXPECT_EQ(GetLogLevel(), LogLevel::kInfo);
}

TEST(LoggingTest, SetAndGetLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, MacroEmitsToStderr) {
  testing::internal::CaptureStderr();
  CROWDSKY_LOG(Warning) << "watch out " << 42;
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("WARN"), std::string::npos);
  EXPECT_NE(out.find("watch out 42"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST(LoggingTest, SuppressedBelowMinimumLevel) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  CROWDSKY_LOG(Info) << "should not appear";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_EQ(out, "");
  SetLogLevel(original);
}

TEST(LoggingTest, ErrorAlwaysEmits) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  testing::internal::CaptureStderr();
  CROWDSKY_LOG(Error) << "critical";
  const std::string out = testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("ERROR"), std::string::npos);
  SetLogLevel(original);
}

}  // namespace
}  // namespace crowdsky
