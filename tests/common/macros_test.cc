// Death tests for the CROWDSKY_CHECK family: the invariant machinery the
// auditor escalates through must itself abort with a useful message.
#include "common/macros.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(CheckTest, PassingConditionIsSilent) {
  CROWDSKY_CHECK(1 + 1 == 2);
  CROWDSKY_CHECK_MSG(true, "never printed");
}

TEST(CheckDeathTest, FailedCheckAbortsWithExpression) {
  EXPECT_DEATH(CROWDSKY_CHECK(2 < 1),
               "CROWDSKY_CHECK failed at .*macros_test.cc:[0-9]+: 2 < 1");
}

TEST(CheckDeathTest, FailedCheckMsgIncludesMessage) {
  EXPECT_DEATH(CROWDSKY_CHECK_MSG(false, "round accounting corrupt"),
               "round accounting corrupt");
}

TEST(CheckDeathTest, MessageMayBeRuntimeString) {
  const std::string detail = "violation #42";
  EXPECT_DEATH(CROWDSKY_CHECK_MSG(false, detail.c_str()), "violation #42");
}

TEST(CheckOpTest, PassingComparisonsAreSilent) {
  CROWDSKY_CHECK_EQ(3, 3);
  CROWDSKY_CHECK_NE(3, 4);
  CROWDSKY_CHECK_LT(3, 4);
  CROWDSKY_CHECK_LE(3, 3);
  CROWDSKY_CHECK_GT(4, 3);
  CROWDSKY_CHECK_GE(4, 4);
}

TEST(CheckOpTest, OperandsAreEvaluatedExactlyOnce) {
  int calls = 0;
  const auto next = [&calls] { return ++calls; };
  CROWDSKY_CHECK_LE(next(), 10);
  EXPECT_EQ(calls, 1);
}

TEST(CheckOpDeathTest, EqPrintsBothValues) {
  const int64_t rounds = 3;
  const int64_t recorded = 4;
  EXPECT_DEATH(
      CROWDSKY_CHECK_EQ(rounds, recorded),
      "CROWDSKY_CHECK_EQ failed at .*: rounds == recorded \\(3 vs. 4\\)");
}

TEST(CheckOpDeathTest, NePrintsBothValues) {
  EXPECT_DEATH(CROWDSKY_CHECK_NE(7, 7), "7 != 7 \\(7 vs. 7\\)");
}

TEST(CheckOpDeathTest, LtPrintsBothValues) {
  EXPECT_DEATH(CROWDSKY_CHECK_LT(5, 5),
               "CROWDSKY_CHECK_LT failed.*\\(5 vs. 5\\)");
}

TEST(CheckOpDeathTest, LePrintsBothValues) {
  EXPECT_DEATH(CROWDSKY_CHECK_LE(6, 5),
               "CROWDSKY_CHECK_LE failed.*\\(6 vs. 5\\)");
}

TEST(CheckOpDeathTest, GtPrintsBothValues) {
  EXPECT_DEATH(CROWDSKY_CHECK_GT(5, 5),
               "CROWDSKY_CHECK_GT failed.*\\(5 vs. 5\\)");
}

TEST(CheckOpDeathTest, GePrintsBothValues) {
  EXPECT_DEATH(CROWDSKY_CHECK_GE(4, 5),
               "CROWDSKY_CHECK_GE failed.*\\(4 vs. 5\\)");
}

TEST(CheckOpDeathTest, StreamableOperandsArePrinted) {
  const std::string got = "abc";
  const std::string want = "abd";
  EXPECT_DEATH(CROWDSKY_CHECK_EQ(got, want), "\\(abc vs. abd\\)");
}

TEST(DcheckTest, MatchesBuildType) {
#ifdef NDEBUG
  CROWDSKY_DCHECK(false);  // compiled out in release builds
#else
  EXPECT_DEATH(CROWDSKY_DCHECK(false), "CROWDSKY_CHECK failed");
#endif
}

}  // namespace
}  // namespace crowdsky
