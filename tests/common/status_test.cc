#include "common/status.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "Invalid argument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::BudgetExhausted("x").IsBudgetExhausted());
  EXPECT_TRUE(Status::Contradiction("x").IsContradiction());
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::Unknown("x").code(), StatusCode::kUnknown);
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::IOError("disk gone");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "disk gone");
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_FALSE(b.ok());
}

TEST(StatusTest, MoveSemantics) {
  Status a = Status::NotFound("gone");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsNotFound());
  Status c;
  c = std::move(b);
  EXPECT_TRUE(c.IsNotFound());
}

TEST(StatusTest, SelfAssignmentIsSafe) {
  Status a = Status::NotFound("gone");
  Status& alias = a;
  a = alias;
  EXPECT_TRUE(a.IsNotFound());
  EXPECT_EQ(a.message(), "gone");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
  EXPECT_EQ(Status::OK(), Status());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status { return Status::IOError("boom"); };
  auto wrapper = [&]() -> Status {
    CROWDSKY_RETURN_NOT_OK(fails());
    return Status::OK();
  };
  EXPECT_TRUE(wrapper().IsIOError());
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto ok = []() -> Status { return Status::OK(); };
  auto wrapper = [&]() -> Status {
    CROWDSKY_RETURN_NOT_OK(ok());
    return Status::NotFound("reached end");
  };
  EXPECT_TRUE(wrapper().IsNotFound());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kContradiction), "Contradiction");
}

}  // namespace
}  // namespace crowdsky
