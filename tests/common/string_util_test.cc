#include "common/string_util.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(SplitStringTest, Basic) {
  const auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  const auto parts = SplitString(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, NoDelimiter) {
  const auto parts = SplitString("plain", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "plain");
}

TEST(SplitStringTest, EmptyInput) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimWhitespaceTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(TrimWhitespace("nochange"), "nochange");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" a b "), "a b");
}

TEST(ParseDoubleTest, ValidInputs) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").ValueOrDie(), -2000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("  7 ").ValueOrDie(), 7.0);
  EXPECT_DOUBLE_EQ(ParseDouble("0").ValueOrDie(), 0.0);
}

TEST(ParseDoubleTest, InvalidInputs) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
  EXPECT_FALSE(ParseDouble("1e999999").ok());
}

TEST(ParseInt64Test, ValidInputs) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-17").ValueOrDie(), -17);
  EXPECT_EQ(ParseInt64(" 0 ").ValueOrDie(), 0);
}

TEST(ParseInt64Test, InvalidInputs) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("4.2").ok());
  EXPECT_FALSE(ParseInt64("999999999999999999999999").ok());
}

TEST(JoinStringsTest, Basic) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringFormatTest, FormatsLikePrintf) {
  EXPECT_EQ(StringFormat("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(StringFormat("%s", "plain"), "plain");
  EXPECT_EQ(StringFormat("empty"), "empty");
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("prefix_rest", "prefix"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_FALSE(StartsWith("ab", "abc"));
  EXPECT_FALSE(StartsWith("xbc", "ab"));
}

}  // namespace
}  // namespace crowdsky
