// Cross-subsystem composition: the service under fault plans, governor
// caps and cancellation. The property throughout is *blast-radius zero*:
// a capped, faulty or cancelled query degrades alone — its siblings in
// the same service run stay bit-identical to their isolated runs.
#include "service/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/service_test_util.h"

namespace crowdsky::service {
namespace {

using crowdsky::service::testing::AddFaultPlan;
using crowdsky::service::testing::ExpectSameEngineResult;

ServiceOptions AuditedOptions() {
  ServiceOptions options;
  options.audit = true;
  options.obs_level = obs::ObsLevel::kCounters;
  return options;
}

Dataset MakeDataset(int cardinality, uint64_t seed, int num_crowd = 1) {
  GeneratorOptions gen;
  gen.cardinality = cardinality;
  gen.num_known = 2;
  gen.num_crowd = num_crowd;
  gen.seed = seed;
  return GenerateDataset(gen).ValueOrDie();
}

ServiceQuery HealthyQuery(const Dataset* dataset, Algorithm algorithm,
                          uint64_t seed, const std::string& label) {
  ServiceQuery query;
  query.dataset = dataset;
  query.options.algorithm = algorithm;
  query.options.oracle = OracleKind::kPerfect;
  query.options.seed = seed;
  query.options.export_answers = true;
  query.label = label;
  return query;
}

void ExpectSiblingsUnperturbed(const ServiceReport& report,
                               const std::vector<ServiceQuery>& queries,
                               const std::vector<size_t>& healthy) {
  for (const size_t i : healthy) {
    const QueryOutcome& outcome = report.queries[i];
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    const auto r = RunSkylineQuery(*queries[i].dataset, queries[i].options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameEngineResult(*r, outcome.result, "sibling " + outcome.label);
  }
}

TEST(ServiceChaosTest, FaultyQueryDegradesAlone) {
  // Query 1 runs on a faulty marketplace with no retries: attempts fail
  // and degrade for real. Queries 0 and 2 are clean perfect-oracle runs
  // and must come out exactly as if they had run alone.
  const Dataset d0 = MakeDataset(24, 0x10);
  const Dataset d1 = MakeDataset(30, 0x11, 2);
  const Dataset d2 = MakeDataset(26, 0x12);

  std::vector<ServiceQuery> queries;
  queries.push_back(HealthyQuery(&d0, Algorithm::kParallelSL, 7, "clean0"));
  ServiceQuery faulty =
      HealthyQuery(&d1, Algorithm::kCrowdSkySerial, 8, "faulty");
  AddFaultPlan(&faulty.options);
  faulty.options.retry.max_retries = 0;  // give up on first failure
  queries.push_back(faulty);
  queries.push_back(HealthyQuery(&d2, Algorithm::kParallelDSet, 9, "clean1"));

  const auto service = RunService(queries, AuditedOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const ServiceReport& report = *service;
  EXPECT_EQ(report.completed, 3);
  EXPECT_EQ(report.failed, 0);

  const QueryOutcome& hurt = report.queries[1];
  ASSERT_TRUE(hurt.status.ok()) << hurt.status.ToString();
  // The fault plan actually bit: failures happened (and with zero retries
  // anything unresolved stays unresolved).
  EXPECT_GT(hurt.result.algo.failed_attempts, 0);
  EXPECT_EQ(hurt.result.algo.retries, 0);

  ExpectSiblingsUnperturbed(report, queries, {0, 2});
}

TEST(ServiceChaosTest, GovernorCappedQueryDegradesAlone) {
  // Query 0 carries its own tight governor dollar cap and terminates on
  // kDollarCap; its sibling is uncapped and unperturbed. No service-wide
  // budget in play — the cap is the query's own configuration.
  const Dataset d0 = MakeDataset(32, 0x20);
  const Dataset d1 = MakeDataset(24, 0x21);

  std::vector<ServiceQuery> queries;
  ServiceQuery capped =
      HealthyQuery(&d0, Algorithm::kCrowdSkySerial, 3, "capped");
  capped.options.governor.max_cost_usd = 0.2;  // two HITs, then stop
  queries.push_back(capped);
  queries.push_back(HealthyQuery(&d1, Algorithm::kParallelSL, 4, "free"));

  const auto service = RunService(queries, AuditedOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const ServiceReport& report = *service;

  const QueryOutcome& hurt = report.queries[0];
  ASSERT_TRUE(hurt.status.ok()) << hurt.status.ToString();
  EXPECT_TRUE(hurt.result.algo.termination.governed);
  EXPECT_EQ(hurt.result.algo.termination.reason,
            TerminationReason::kDollarCap);
  EXPECT_LE(hurt.result.algo.termination.cost_spent_usd, 0.2);
  EXPECT_FALSE(hurt.result.algo.completeness.complete);

  ExpectSiblingsUnperturbed(report, queries, {1});

  // The packing ledger stays internally consistent with a partial
  // participant: the capped query's slots are exactly what it paid for.
  int64_t paid = 0;
  for (const int64_t q : hurt.result.algo.questions_per_round) paid += q;
  EXPECT_EQ(hurt.slots, paid);
}

TEST(ServiceChaosTest, PreCancelledQueryDoesNotPerturbSiblings) {
  // Query 1's cancellation token is flipped before submission: it stops
  // at its first governor checkpoint having bought nothing (or nearly
  // nothing), while both siblings run to their isolated results.
  const Dataset d0 = MakeDataset(22, 0x30);
  const Dataset d1 = MakeDataset(28, 0x31);
  const Dataset d2 = MakeDataset(25, 0x32);

  CancellationToken cancel;
  cancel.Cancel();

  std::vector<ServiceQuery> queries;
  queries.push_back(HealthyQuery(&d0, Algorithm::kParallelDSet, 5, "left"));
  ServiceQuery doomed =
      HealthyQuery(&d1, Algorithm::kParallelSL, 6, "cancelled");
  doomed.options.governor.cancel = &cancel;
  queries.push_back(doomed);
  queries.push_back(HealthyQuery(&d2, Algorithm::kCrowdSkySerial, 7, "right"));

  ServiceOptions options = AuditedOptions();
  options.max_concurrent = 2;  // the cancelled slot frees up for "right"
  const auto service = RunService(queries, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const ServiceReport& report = *service;

  const QueryOutcome& hurt = report.queries[1];
  ASSERT_TRUE(hurt.status.ok()) << hurt.status.ToString();
  EXPECT_EQ(hurt.result.algo.termination.reason,
            TerminationReason::kCancelled);
  EXPECT_EQ(hurt.result.algo.questions, 0);

  ExpectSiblingsUnperturbed(report, queries, {0, 2});
}

TEST(ServiceChaosTest, EverythingAtOnce) {
  // Fault plan × per-query governor cap × service budget slicing × a
  // bounded queue, all in one run, with the service auditor on. The run
  // must complete, the ledger must balance (the auditor proves it), and
  // the one clean uncapped query must still match its isolated result
  // under the same budget slice.
  const Dataset d0 = MakeDataset(26, 0x40);
  const Dataset d1 = MakeDataset(30, 0x41, 2);
  const Dataset d2 = MakeDataset(24, 0x42);
  const Dataset d3 = MakeDataset(28, 0x43);

  std::vector<ServiceQuery> queries;
  ServiceQuery faulty = HealthyQuery(&d0, Algorithm::kParallelSL, 1, "faulty");
  AddFaultPlan(&faulty.options);
  faulty.options.retry.max_retries = 1;
  queries.push_back(faulty);
  ServiceQuery capped =
      HealthyQuery(&d1, Algorithm::kCrowdSkySerial, 2, "capped");
  capped.options.governor.max_cost_usd = 0.3;
  queries.push_back(capped);
  queries.push_back(HealthyQuery(&d2, Algorithm::kParallelDSet, 3, "clean"));
  queries.push_back(HealthyQuery(&d3, Algorithm::kParallelSL, 4, "queued"));

  ServiceOptions options = AuditedOptions();
  options.max_concurrent = 3;
  options.max_queue = 2;
  options.total_budget_usd = 4.0;  // $1 slice: loose for these sizes
  const auto service = RunService(queries, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const ServiceReport& report = *service;

  EXPECT_EQ(report.completed, 4);
  EXPECT_EQ(report.rejected, 0);
  // The capped query's effective cap is min(own 0.3, slice 1.0) = 0.3.
  EXPECT_DOUBLE_EQ(report.queries[1].result.algo.termination.cost_cap_usd,
                   0.3);

  // Clean queries ran under the slice: compare against isolated runs with
  // the same cap applied by hand.
  for (const size_t i : {size_t{2}, size_t{3}}) {
    EngineOptions sliced = queries[i].options;
    sliced.governor.max_cost_usd = 1.0;
    const auto r = RunSkylineQuery(*queries[i].dataset, sliced);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameEngineResult(*r, report.queries[i].result,
                           "sliced sibling " + report.queries[i].label);
  }

  EXPECT_LE(report.packing.packed_hits, report.packing.isolated_hits);
  EXPECT_GE(report.packing.cost_saved_usd, -1e-9);
}

}  // namespace
}  // namespace crowdsky::service
