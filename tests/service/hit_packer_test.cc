// Unit tests for the cross-query HitPacker and the service.* audit rules.
// The packer tests pin the greedy arithmetic and the interleaving
// invariance; the audit tests fabricate the violations the scheduler
// makes unrepresentable by construction.
#include "service/hit_packer.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/service_audit.h"

namespace crowdsky::service {
namespace {

AmtCostModel Pricing(double reward, int omega, int qph) {
  AmtCostModel pricing;
  pricing.reward_per_hit = reward;
  pricing.workers_per_question = omega;
  pricing.questions_per_hit = qph;
  return pricing;
}

TEST(HitPackerTest, SharedEpochPaysOneCeiling) {
  HitPacker packer;
  const AmtCostModel amt = Pricing(0.02, 5, 5);
  // Three queries contribute 1 + 2 + 1 = 4 slots: one shared HIT instead
  // of three isolated ones.
  packer.RegisterSlot(0, amt);
  packer.RegisterSlot(1, amt);
  packer.RegisterSlot(1, amt);
  packer.RegisterSlot(2, amt);
  EXPECT_TRUE(packer.open_epoch_nonempty());
  EXPECT_EQ(packer.CloseEpoch(), 1);

  ASSERT_EQ(packer.spans().size(), 1u);
  const EpochClassSpan& span = packer.spans()[0];
  EXPECT_EQ(span.epoch, 0);
  EXPECT_EQ(span.slots, 4);
  EXPECT_EQ(span.packed_hits, 1);
  EXPECT_EQ(span.isolated_hits, 3);
  const std::vector<std::pair<int, int64_t>> expected = {{0, 1}, {1, 2},
                                                         {2, 1}};
  EXPECT_EQ(span.query_slots, expected);
  EXPECT_EQ(packer.epochs(), 1);
  EXPECT_EQ(packer.packed_hits(), 1);
  EXPECT_EQ(packer.isolated_hits(), 3);
  EXPECT_DOUBLE_EQ(packer.packed_cost_usd(), 0.02 * 5 * 1);
  EXPECT_DOUBLE_EQ(packer.isolated_cost_usd(), 0.02 * 5 * 3);
}

TEST(HitPackerTest, DifferentPricingNeverSharesAHit) {
  HitPacker packer;
  const AmtCostModel cheap = Pricing(0.02, 5, 5);
  const AmtCostModel premium = Pricing(0.05, 5, 5);
  const AmtCostModel fewer_workers = Pricing(0.02, 3, 5);
  packer.RegisterSlot(0, cheap);
  packer.RegisterSlot(1, premium);
  packer.RegisterSlot(2, fewer_workers);
  // Three pack classes, one slot each: no sharing possible.
  EXPECT_EQ(packer.CloseEpoch(), 3);
  EXPECT_EQ(packer.spans().size(), 3u);
  for (const EpochClassSpan& span : packer.spans()) {
    EXPECT_EQ(span.packed_hits, 1);
    EXPECT_EQ(span.isolated_hits, 1);
  }
}

TEST(HitPackerTest, EmptyEpochLeavesNoTrace) {
  HitPacker packer;
  EXPECT_FALSE(packer.open_epoch_nonempty());
  EXPECT_EQ(packer.CloseEpoch(), 0);
  EXPECT_EQ(packer.epochs(), 0);
  EXPECT_TRUE(packer.spans().empty());

  packer.RegisterSlot(0, Pricing(0.02, 5, 5));
  packer.CloseEpoch();
  EXPECT_EQ(packer.CloseEpoch(), 0);  // barrier fired with nothing pending
  EXPECT_EQ(packer.epochs(), 1);
}

TEST(HitPackerTest, RegistrationInterleavingDoesNotChangeThePacking) {
  // The same per-query slot counts registered in two different arrival
  // orders — the scheduler's thread-timing degree of freedom — must
  // produce byte-identical spans.
  const AmtCostModel amt = Pricing(0.02, 5, 5);
  HitPacker forward;
  for (const int qid : {0, 0, 1, 2, 2, 2}) forward.RegisterSlot(qid, amt);
  forward.CloseEpoch();

  HitPacker shuffled;
  for (const int qid : {2, 1, 0, 2, 0, 2}) shuffled.RegisterSlot(qid, amt);
  shuffled.CloseEpoch();

  ASSERT_EQ(forward.spans().size(), shuffled.spans().size());
  for (size_t i = 0; i < forward.spans().size(); ++i) {
    EXPECT_EQ(forward.spans()[i].query_slots,
              shuffled.spans()[i].query_slots);
    EXPECT_EQ(forward.spans()[i].packed_hits, shuffled.spans()[i].packed_hits);
    EXPECT_EQ(forward.spans()[i].isolated_hits,
              shuffled.spans()[i].isolated_hits);
  }
}

TEST(HitPackerTest, PerQueryLedgers) {
  HitPacker packer;
  const AmtCostModel amt = Pricing(0.02, 5, 5);
  packer.RegisterSlot(3, amt);
  packer.RouteAnswer(3);
  packer.RegisterSlot(3, amt);
  packer.RouteAnswer(3);
  packer.RegisterSlot(7, amt);
  packer.CloseEpoch();
  EXPECT_EQ(packer.slots_for_query(3), 2);
  EXPECT_EQ(packer.routed_for_query(3), 2);
  EXPECT_EQ(packer.slots_for_query(7), 1);
  EXPECT_EQ(packer.routed_for_query(7), 0);  // answer still in flight
  EXPECT_EQ(packer.slots_for_query(99), 0);
  EXPECT_EQ(packer.routed_for_query(99), 0);
}

// --- service.* audit rules on fabricated snapshots ------------------------

/// A consistent two-query, two-epoch snapshot every corruption test
/// starts from (queries ask 1 and 2 questions per round, ω=5, $0.02, 5
/// questions per HIT).
audit::ServicePackingSnapshot ConsistentSnapshot() {
  const AmtCostModel amt = Pricing(0.02, 5, 5);
  audit::ServicePackingSnapshot snapshot;

  audit::ServicePackingSnapshot::Query q0;
  q0.query_id = 0;
  q0.cost_model = amt;
  q0.questions_per_round = {1, 1};
  q0.reported_cost_usd = amt.Cost({1, 1});
  q0.slots = 2;
  q0.routed_answers = 2;
  snapshot.queries.push_back(q0);

  audit::ServicePackingSnapshot::Query q1;
  q1.query_id = 1;
  q1.cost_model = amt;
  q1.questions_per_round = {2, 2};
  q1.reported_cost_usd = amt.Cost({2, 2});
  q1.slots = 4;
  q1.routed_answers = 4;
  snapshot.queries.push_back(q1);

  for (int epoch = 0; epoch < 2; ++epoch) {
    audit::ServicePackingSnapshot::EpochSpan span;
    span.epoch = epoch;
    span.pricing = amt;
    span.query_slots = {{0, 1}, {1, 2}};
    span.slots = 3;
    span.packed_hits = 1;
    span.isolated_hits = 2;
    snapshot.spans.push_back(span);
  }
  snapshot.epochs = 2;
  snapshot.slots = 6;
  snapshot.packed_hits = 2;
  snapshot.isolated_hits = 4;
  snapshot.cost_packed_usd = 0.02 * 5 * 2;
  snapshot.cost_isolated_usd = 0.02 * 5 * 4;
  snapshot.cost_saved_usd = 0.02 * 5 * 2;
  snapshot.submitted = 2;
  snapshot.admitted = 2;
  snapshot.completed = 2;
  return snapshot;
}

/// True iff some violation's invariant name equals `invariant`.
bool Violated(const audit::AuditReport& report, const std::string& invariant) {
  for (const auto& violation : report.violations) {
    if (violation.invariant == invariant) return true;
  }
  return false;
}

TEST(ServiceAuditTest, ConsistentSnapshotPasses) {
  audit::AuditReport report;
  audit::AuditServicePacking(ConsistentSnapshot(), &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 0);
}

TEST(ServiceAuditTest, FlagsMisreportedQueryCost) {
  auto snapshot = ConsistentSnapshot();
  snapshot.queries[0].reported_cost_usd += 0.02;  // one phantom HIT
  audit::AuditReport report;
  audit::AuditServicePacking(snapshot, &report);
  EXPECT_TRUE(Violated(report, "service.query_cost")) << report.ToString();
}

TEST(ServiceAuditTest, FlagsLostAnswer) {
  auto snapshot = ConsistentSnapshot();
  snapshot.queries[1].routed_answers -= 1;  // an answer never came back
  audit::AuditReport report;
  audit::AuditServicePacking(snapshot, &report);
  EXPECT_TRUE(Violated(report, "service.routing")) << report.ToString();
}

TEST(ServiceAuditTest, FlagsRoundEpochMisalignment) {
  auto snapshot = ConsistentSnapshot();
  // Query 0's two 1-question rounds smeared into one 2-question epoch:
  // slots still sum, but the round-to-epoch mapping is broken.
  snapshot.spans[0].query_slots = {{0, 2}, {1, 2}};
  snapshot.spans[0].slots = 4;
  snapshot.spans[0].isolated_hits = 2;
  snapshot.spans[1].query_slots = {{1, 2}};
  snapshot.spans[1].slots = 2;
  snapshot.spans[1].isolated_hits = 1;
  snapshot.isolated_hits = 3;
  snapshot.cost_isolated_usd = 0.02 * 5 * 3;
  snapshot.cost_saved_usd = snapshot.cost_isolated_usd - 0.02 * 5 * 2;
  audit::AuditReport report;
  audit::AuditServicePacking(snapshot, &report);
  EXPECT_TRUE(Violated(report, "service.round_alignment"))
      << report.ToString();
}

TEST(ServiceAuditTest, FlagsBrokenSpanArithmetic) {
  auto snapshot = ConsistentSnapshot();
  snapshot.spans[0].packed_hits = 2;  // != ceil(3 / 5)
  snapshot.packed_hits = 3;
  snapshot.cost_packed_usd = 0.02 * 5 * 3;
  snapshot.cost_saved_usd = snapshot.cost_isolated_usd - 0.02 * 5 * 3;
  audit::AuditReport report;
  audit::AuditServicePacking(snapshot, &report);
  EXPECT_TRUE(Violated(report, "service.epoch_arithmetic"))
      << report.ToString();
}

TEST(ServiceAuditTest, FlagsLedgerDrift) {
  auto snapshot = ConsistentSnapshot();
  snapshot.cost_saved_usd += 0.01;  // claims more saving than the spans
  audit::AuditReport report;
  audit::AuditServicePacking(snapshot, &report);
  EXPECT_TRUE(Violated(report, "service.ledger")) << report.ToString();
}

TEST(ServiceAuditTest, FlagsCounterDrift) {
  auto snapshot = ConsistentSnapshot();
  snapshot.counters = {{"service.slots", snapshot.slots + 1}};
  audit::AuditReport report;
  audit::AuditServicePacking(snapshot, &report);
  EXPECT_TRUE(Violated(report, "service.obs")) << report.ToString();
}

TEST(ServiceAuditTest, FlagsUnknownServiceCounter) {
  auto snapshot = ConsistentSnapshot();
  snapshot.counters = {{"service.mystery_metric", 1}};
  audit::AuditReport report;
  audit::AuditServicePacking(snapshot, &report);
  EXPECT_TRUE(Violated(report, "service.obs")) << report.ToString();
}

}  // namespace
}  // namespace crowdsky::service
