// Schedule-perturbation property suite: the service's determinism
// contract says per-query results never depend on admission order, thread
// count or run repetition, and the packing ledger is a pure function of
// the submission list. Each property is checked under seeded shuffles and
// CROWDSKY_THREADS ∈ {1, 4}; the suite also runs under the TSan CI leg,
// where the epoch barrier and the dispatch path get race-checked for real.
#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "service/service_test_util.h"

namespace crowdsky::service {
namespace {

using crowdsky::service::testing::ExpectSameEngineResult;
using crowdsky::service::testing::MixedQueries;

ServiceOptions AuditedOptions() {
  ServiceOptions options;
  options.audit = true;
  options.obs_level = obs::ObsLevel::kCounters;
  return options;
}

/// Seeded Fisher-Yates permutation of 0..n-1.
std::vector<size_t> Permutation(size_t n, uint64_t seed) {
  std::vector<size_t> perm(n);
  for (size_t i = 0; i < n; ++i) perm[i] = i;
  Rng rng(seed);
  for (size_t i = n; i > 1; --i) {
    const size_t j =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

class ServiceScheduleTest : public ::testing::TestWithParam<int> {};

TEST_P(ServiceScheduleTest, ResultsInvariantUnderSubmissionPermutation) {
  const int threads = GetParam();
  ScopedThreads scoped(threads);

  std::vector<Dataset> datasets;
  const std::vector<ServiceQuery> queries = MixedQueries(5, &datasets);

  // Baseline: submission order as constructed, generous concurrency.
  ServiceOptions options = AuditedOptions();
  options.max_concurrent = static_cast<int>(queries.size());
  const auto baseline = RunService(queries, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (const uint64_t shuffle_seed :
       {uint64_t{0x1}, uint64_t{0x2a}, uint64_t{0x3cc}}) {
    const std::vector<size_t> perm =
        Permutation(queries.size(), shuffle_seed);
    std::vector<ServiceQuery> shuffled;
    for (const size_t p : perm) shuffled.push_back(queries[p]);

    const auto permuted = RunService(shuffled, options);
    ASSERT_TRUE(permuted.ok()) << permuted.status().ToString();

    // Per-query results are invariant: outcome at the new position is
    // bit-identical to the same query's outcome in the baseline order.
    for (size_t pos = 0; pos < perm.size(); ++pos) {
      const QueryOutcome& got = permuted->queries[pos];
      const QueryOutcome& want = baseline->queries[perm[pos]];
      EXPECT_EQ(got.label, want.label);
      ASSERT_TRUE(got.status.ok()) << got.status.ToString();
      ExpectSameEngineResult(want.result, got.result,
                             "shuffle " + std::to_string(shuffle_seed) +
                                 " query " + got.label);
      EXPECT_EQ(got.slots, want.slots);
      EXPECT_EQ(got.isolated_hits, want.isolated_hits);
    }

    // With every query admitted up front, all epochs carry the same slot
    // multiset regardless of order: ledger totals are invariant too.
    EXPECT_EQ(permuted->packing.epochs, baseline->packing.epochs);
    EXPECT_EQ(permuted->packing.slots, baseline->packing.slots);
    EXPECT_EQ(permuted->packing.packed_hits, baseline->packing.packed_hits);
    EXPECT_EQ(permuted->packing.isolated_hits,
              baseline->packing.isolated_hits);
    EXPECT_DOUBLE_EQ(permuted->packing.cost_saved_usd,
                     baseline->packing.cost_saved_usd);
  }
}

TEST_P(ServiceScheduleTest, RepeatedRunsProduceIdenticalReports) {
  const int threads = GetParam();
  ScopedThreads scoped(threads);

  std::vector<Dataset> datasets;
  const std::vector<ServiceQuery> queries = MixedQueries(4, &datasets);
  ServiceOptions options = AuditedOptions();
  options.max_concurrent = 2;  // queueing + mid-run admissions in play

  const auto first = RunService(queries, options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  const auto second = RunService(queries, options);
  ASSERT_TRUE(second.ok()) << second.status().ToString();

  ASSERT_EQ(first->queries.size(), second->queries.size());
  for (size_t i = 0; i < first->queries.size(); ++i) {
    ExpectSameEngineResult(first->queries[i].result,
                           second->queries[i].result,
                           "repeat query " + std::to_string(i));
    EXPECT_EQ(first->queries[i].slots, second->queries[i].slots);
  }

  // The whole audit trail is reproducible: same spans, byte for byte.
  ASSERT_EQ(first->spans.size(), second->spans.size());
  for (size_t s = 0; s < first->spans.size(); ++s) {
    EXPECT_EQ(first->spans[s].epoch, second->spans[s].epoch);
    EXPECT_EQ(first->spans[s].query_slots, second->spans[s].query_slots);
    EXPECT_EQ(first->spans[s].packed_hits, second->spans[s].packed_hits);
    EXPECT_EQ(first->spans[s].isolated_hits, second->spans[s].isolated_hits);
  }
  EXPECT_EQ(first->packing.epochs, second->packing.epochs);
  EXPECT_EQ(first->packing.packed_hits, second->packing.packed_hits);
  EXPECT_DOUBLE_EQ(first->packing.cost_saved_usd,
                   second->packing.cost_saved_usd);
  EXPECT_EQ(first->counters, second->counters);
}

TEST_P(ServiceScheduleTest, ThrottledAdmissionKeepsPerQueryResultsInvariant) {
  // With max_concurrent < n the epoch composition DOES depend on the
  // admission schedule — but per-query results still must not. Sweep the
  // concurrency knob and permute, pinning per-query bit-identity.
  const int threads = GetParam();
  ScopedThreads scoped(threads);

  std::vector<Dataset> datasets;
  const std::vector<ServiceQuery> queries = MixedQueries(4, &datasets);

  std::map<std::string, EngineResult> reference;
  for (const ServiceQuery& query : queries) {
    const auto r = RunSkylineQuery(*query.dataset, query.options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    reference.emplace(query.label, *r);
  }

  for (const int max_concurrent : {1, 2, 3}) {
    ServiceOptions options = AuditedOptions();
    options.max_concurrent = max_concurrent;
    std::vector<ServiceQuery> shuffled;
    for (const size_t p :
         Permutation(queries.size(),
                     uint64_t{0x77} + static_cast<uint64_t>(max_concurrent))) {
      shuffled.push_back(queries[p]);
    }
    const auto service = RunService(shuffled, options);
    ASSERT_TRUE(service.ok()) << service.status().ToString();
    for (const QueryOutcome& outcome : service->queries) {
      ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
      ExpectSameEngineResult(reference.at(outcome.label), outcome.result,
                             "max_concurrent=" +
                                 std::to_string(max_concurrent) + " query " +
                                 outcome.label);
    }
    EXPECT_LE(service->packing.packed_hits, service->packing.isolated_hits);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ServiceScheduleTest, ::testing::Values(1, 4),
                         [](const ::testing::TestParamInfo<int>& param_info) {
                           return "threads" + std::to_string(param_info.param);
                         });

}  // namespace
}  // namespace crowdsky::service
