// Shared helpers for the multi-query service test suites: field-by-field
// bit-identity comparison of engine results (several report structs have
// no operator==) and the standard query mix the suites submit.
#pragma once

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "core/crowdsky.h"
#include "service/service.h"

namespace crowdsky::service::testing {

inline std::vector<std::tuple<int, int, int, Answer>> AnswerTuples(
    const std::vector<ImportedAnswer>& answers) {
  std::vector<std::tuple<int, int, int, Answer>> tuples;
  tuples.reserve(answers.size());
  for (const ImportedAnswer& a : answers) {
    tuples.emplace_back(a.attr, a.u, a.v, a.answer);
  }
  return tuples;
}

/// Asserts `got` is bit-identical to `want`, down to the vote transcript
/// (exported_answers) and the termination report. `tag` prefixes every
/// failure message.
inline void ExpectSameEngineResult(const EngineResult& want,
                                   const EngineResult& got,
                                   const std::string& tag) {
  SCOPED_TRACE(tag);
  const AlgoResult& w = want.algo;
  const AlgoResult& g = got.algo;
  EXPECT_EQ(g.skyline, w.skyline);
  EXPECT_EQ(g.incomplete_tuples, w.incomplete_tuples);
  EXPECT_EQ(g.seeded_relations, w.seeded_relations);
  EXPECT_EQ(g.questions, w.questions);
  EXPECT_EQ(g.rounds, w.rounds);
  EXPECT_EQ(g.free_lookups, w.free_lookups);
  EXPECT_EQ(g.worker_answers, w.worker_answers);
  EXPECT_EQ(g.contradictions, w.contradictions);
  EXPECT_EQ(g.questions_per_round, w.questions_per_round);
  EXPECT_EQ(g.retries, w.retries);
  EXPECT_EQ(g.degraded_quorum, w.degraded_quorum);
  EXPECT_EQ(g.failed_attempts, w.failed_attempts);
  EXPECT_EQ(g.backoff_rounds, w.backoff_rounds);

  EXPECT_EQ(g.completeness.complete, w.completeness.complete);
  EXPECT_EQ(g.completeness.determined_tuples, w.completeness.determined_tuples);
  EXPECT_EQ(g.completeness.undetermined_tuples,
            w.completeness.undetermined_tuples);
  EXPECT_EQ(g.completeness.resolved_questions,
            w.completeness.resolved_questions);
  EXPECT_EQ(g.completeness.unresolved_questions,
            w.completeness.unresolved_questions);
  EXPECT_EQ(g.completeness.budget_exhausted, w.completeness.budget_exhausted);
  EXPECT_EQ(g.completeness.retries_exhausted, w.completeness.retries_exhausted);

  EXPECT_EQ(g.termination.governed, w.termination.governed);
  EXPECT_EQ(g.termination.reason, w.termination.reason);
  EXPECT_EQ(g.termination.rounds, w.termination.rounds);
  EXPECT_DOUBLE_EQ(g.termination.cost_spent_usd, w.termination.cost_spent_usd);
  EXPECT_EQ(g.termination.denied_questions, w.termination.denied_questions);
  EXPECT_EQ(g.termination.unresolved, w.termination.unresolved);

  EXPECT_EQ(got.skyline_labels, want.skyline_labels);
  EXPECT_DOUBLE_EQ(got.accuracy.precision, want.accuracy.precision);
  EXPECT_DOUBLE_EQ(got.accuracy.recall, want.accuracy.recall);
  EXPECT_DOUBLE_EQ(got.accuracy.f1, want.accuracy.f1);
  EXPECT_EQ(got.accuracy.truth_new, want.accuracy.truth_new);
  EXPECT_EQ(got.accuracy.retrieved_new, want.accuracy.retrieved_new);
  EXPECT_EQ(got.accuracy.correct_new, want.accuracy.correct_new);
  EXPECT_DOUBLE_EQ(got.cost_usd, want.cost_usd);
  EXPECT_EQ(AnswerTuples(got.exported_answers),
            AnswerTuples(want.exported_answers));
}

/// Applies the fault-plan cell trick from the differential sweep:
/// perfectly accurate workers on a faulty platform, so retry/degradation
/// paths run while resolved answers stay exact.
inline void AddFaultPlan(EngineOptions* options) {
  options->oracle = OracleKind::kMarketplace;
  options->marketplace.pool_size = 40;
  options->marketplace.population.p_correct = 1.0;
  options->marketplace.faults.transient_error_rate = 0.10;
  options->marketplace.faults.hit_expiration_rate = 0.05;
  options->marketplace.faults.worker_no_show_rate = 0.10;
  options->marketplace.faults.straggler_rate = 0.05;
  options->retry.max_retries = 4;
}

/// The standard mixed submission every suite uses: `n` queries cycling
/// through drivers, distributions, schema widths and seeds. Datasets are
/// appended to `datasets` (stable storage the ServiceQuery pointers
/// reference — reserve enough or never reallocate past `n`).
inline std::vector<ServiceQuery> MixedQueries(int n,
                                              std::vector<Dataset>* datasets) {
  static constexpr Algorithm kDrivers[] = {Algorithm::kCrowdSkySerial,
                                           Algorithm::kParallelDSet,
                                           Algorithm::kParallelSL};
  static constexpr DataDistribution kDists[] = {
      DataDistribution::kIndependent, DataDistribution::kAntiCorrelated,
      DataDistribution::kCorrelated};
  datasets->reserve(datasets->size() + static_cast<size_t>(n));
  std::vector<ServiceQuery> queries;
  for (int i = 0; i < n; ++i) {
    GeneratorOptions gen;
    gen.cardinality = 18 + 5 * i;
    gen.num_known = 2;
    gen.num_crowd = 1 + i % 2;
    gen.distribution = kDists[i % 3];
    gen.seed = uint64_t{0xabcd} + static_cast<uint64_t>(i) * 977;
    datasets->push_back(GenerateDataset(gen).ValueOrDie());

    ServiceQuery query;
    query.dataset = &datasets->back();
    query.options.algorithm = kDrivers[i % 3];
    query.options.oracle = OracleKind::kPerfect;
    query.options.seed = gen.seed ^ 0x5eedULL;
    query.options.export_answers = true;
    if (i % 3 == 1) AddFaultPlan(&query.options);
    query.label = "mixed" + std::to_string(i);
    queries.push_back(query);
  }
  return queries;
}

}  // namespace crowdsky::service::testing
