// Differential suite for the multi-query service: the same queries run
// packed (RunService) and isolated (RunSkylineQuery one by one) must
// produce bit-identical per-query results — skylines, question streams,
// vote transcripts, dollars — while the packed run posts at most as many
// HITs in total, with the saving exactly what the service ledger claims.
#include "service/service.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "service/service_test_util.h"

namespace crowdsky::service {
namespace {

using crowdsky::service::testing::ExpectSameEngineResult;
using crowdsky::service::testing::MixedQueries;

ServiceOptions AuditedOptions() {
  ServiceOptions options;
  options.audit = true;
  options.obs_level = obs::ObsLevel::kCounters;
  return options;
}

TEST(ServiceDifferentialTest, PackedRunIsBitIdenticalToIsolatedRuns) {
  std::vector<Dataset> datasets;
  const std::vector<ServiceQuery> queries = MixedQueries(6, &datasets);

  std::vector<EngineResult> isolated;
  for (const ServiceQuery& query : queries) {
    const auto r = RunSkylineQuery(*query.dataset, query.options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    isolated.push_back(*r);
  }

  ServiceOptions options = AuditedOptions();
  options.max_concurrent = 3;  // exercise queueing + mid-run admission
  const auto service = RunService(queries, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const ServiceReport& report = *service;

  ASSERT_EQ(report.queries.size(), queries.size());
  EXPECT_EQ(report.completed, 6);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.rejected, 0);

  int64_t isolated_hits_sum = 0;
  double isolated_cost_sum = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryOutcome& outcome = report.queries[i];
    EXPECT_EQ(outcome.query_id, static_cast<int>(i));
    EXPECT_EQ(outcome.label, queries[i].label);
    EXPECT_TRUE(outcome.admitted);
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    ExpectSameEngineResult(isolated[i], outcome.result,
                           "query " + outcome.label);

    // The outcome's packing ledger agrees with the query's own run.
    int64_t questions = 0;
    for (const int64_t q : outcome.result.algo.questions_per_round) {
      questions += q;
    }
    EXPECT_EQ(outcome.slots, questions);
    AmtCostModel pricing = queries[i].options.cost_model;
    pricing.workers_per_question = queries[i].options.workers_per_question;
    EXPECT_EQ(outcome.isolated_hits,
              pricing.PackedHitCount(outcome.result.algo.questions_per_round));
    isolated_hits_sum += outcome.isolated_hits;
    isolated_cost_sum += pricing.reward_per_hit *
                         pricing.workers_per_question *
                         static_cast<double>(outcome.isolated_hits);
  }

  // Service ledger vs the sum of the isolated runs: packing never loses.
  EXPECT_EQ(report.packing.isolated_hits, isolated_hits_sum);
  EXPECT_LE(report.packing.packed_hits, report.packing.isolated_hits);
  EXPECT_NEAR(report.packing.cost_isolated_usd, isolated_cost_sum, 1e-9);
  EXPECT_NEAR(report.packing.cost_saved_usd,
              report.packing.cost_isolated_usd - report.packing.cost_packed_usd,
              1e-9);
  EXPECT_GE(report.packing.cost_saved_usd, -1e-9);
  EXPECT_FALSE(report.spans.empty());
}

TEST(ServiceDifferentialTest, ConcurrentSerialQueriesSaveStrictly) {
  // Two serial CrowdSky queries ask one question per round each: isolated
  // they pay a whole HIT per round per query, packed their same-epoch
  // questions share one HIT — the packed total must be *strictly* lower.
  std::vector<Dataset> datasets;
  datasets.reserve(2);
  std::vector<ServiceQuery> queries;
  for (int i = 0; i < 2; ++i) {
    GeneratorOptions gen;
    gen.cardinality = 20;
    gen.num_known = 2;
    gen.num_crowd = 1;
    gen.seed = uint64_t{0xfeed} + static_cast<uint64_t>(i);
    datasets.push_back(GenerateDataset(gen).ValueOrDie());
    ServiceQuery query;
    query.dataset = &datasets.back();
    query.options.algorithm = Algorithm::kCrowdSkySerial;
    query.options.oracle = OracleKind::kPerfect;
    query.options.seed = gen.seed;
    queries.push_back(query);
  }

  const auto service = RunService(queries, AuditedOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const PackingLedger& packing = service->packing;
  EXPECT_GT(packing.slots, 0);
  EXPECT_LT(packing.packed_hits, packing.isolated_hits);
  EXPECT_GT(packing.cost_saved_usd, 0.0);
  // Both queries ran for > 1 round, so at least the shared rounds halve.
  EXPECT_GE(packing.isolated_hits - packing.packed_hits,
            std::min(service->queries[0].result.algo.rounds,
                     service->queries[1].result.algo.rounds));
}

TEST(ServiceDifferentialTest, QueueOverflowRejectsInSubmissionOrder) {
  std::vector<Dataset> datasets;
  const std::vector<ServiceQuery> queries = MixedQueries(4, &datasets);

  ServiceOptions options = AuditedOptions();
  options.max_concurrent = 1;
  options.max_queue = 1;  // 1 running + 1 queued; submissions 2,3 rejected
  const auto service = RunService(queries, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  const ServiceReport& report = *service;

  EXPECT_EQ(report.completed, 2);
  EXPECT_EQ(report.rejected, 2);
  EXPECT_EQ(report.failed, 0);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(report.queries[static_cast<size_t>(i)].admitted);
    EXPECT_TRUE(report.queries[static_cast<size_t>(i)].status.ok());
  }
  for (int i = 2; i < 4; ++i) {
    const QueryOutcome& outcome = report.queries[static_cast<size_t>(i)];
    EXPECT_FALSE(outcome.admitted);
    EXPECT_EQ(outcome.status.code(), StatusCode::kBudgetExhausted)
        << outcome.status.ToString();
    EXPECT_EQ(outcome.slots, 0);
    EXPECT_TRUE(outcome.result.algo.skyline.empty());
  }

  // The admitted pair still matches its isolated runs exactly.
  for (int i = 0; i < 2; ++i) {
    const auto r = RunSkylineQuery(*queries[static_cast<size_t>(i)].dataset,
                                   queries[static_cast<size_t>(i)].options);
    ASSERT_TRUE(r.ok());
    ExpectSameEngineResult(*r, report.queries[static_cast<size_t>(i)].result,
                           "admitted query " + std::to_string(i));
  }
}

TEST(ServiceDifferentialTest, BudgetSlicesMatchExplicitlyCappedRuns) {
  // A service-wide budget splits evenly across admitted queries; each
  // CrowdSky-family query then runs exactly as if its governor dollar cap
  // had been set to the slice by hand.
  std::vector<Dataset> datasets;
  std::vector<ServiceQuery> queries = MixedQueries(3, &datasets);

  ServiceOptions options = AuditedOptions();
  options.total_budget_usd = 1.2;  // slice = $0.40 per query
  const auto service = RunService(queries, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();

  for (size_t i = 0; i < queries.size(); ++i) {
    const QueryOutcome& outcome = service->queries[i];
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_DOUBLE_EQ(outcome.budget_slice_usd, 0.4);
    EXPECT_TRUE(outcome.result.algo.termination.governed);
    EXPECT_DOUBLE_EQ(outcome.result.algo.termination.cost_cap_usd, 0.4);

    EngineOptions capped = queries[i].options;
    capped.governor.max_cost_usd = 0.4;
    const auto r = RunSkylineQuery(*queries[i].dataset, capped);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ExpectSameEngineResult(*r, outcome.result,
                           "sliced query " + std::to_string(i));
  }
}

TEST(ServiceDifferentialTest, TightBudgetSliceTripsTheDollarCap) {
  std::vector<Dataset> datasets;
  std::vector<ServiceQuery> queries = MixedQueries(2, &datasets);

  ServiceOptions options = AuditedOptions();
  options.total_budget_usd = 0.3;  // $0.15 each: one HIT, then the cap
  const auto service = RunService(queries, options);
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  for (const QueryOutcome& outcome : service->queries) {
    ASSERT_TRUE(outcome.status.ok()) << outcome.status.ToString();
    EXPECT_EQ(outcome.result.algo.termination.reason,
              TerminationReason::kDollarCap);
    EXPECT_LE(outcome.result.algo.termination.cost_spent_usd, 0.15);
  }
}

TEST(ServiceDifferentialTest, ValidatesSubmissions) {
  std::vector<Dataset> datasets;
  std::vector<ServiceQuery> queries = MixedQueries(1, &datasets);

  {
    ServiceOptions options;
    options.max_concurrent = 0;
    EXPECT_FALSE(RunService(queries, options).ok());
  }
  {
    ServiceOptions options;
    options.total_budget_usd = -1.0;
    EXPECT_FALSE(RunService(queries, options).ok());
  }
  {
    auto bad = queries;
    bad[0].dataset = nullptr;
    EXPECT_FALSE(RunService(bad).ok());
  }
  {
    auto bad = queries;
    bad[0].options.wrap_oracle = [](std::unique_ptr<CrowdOracle> oracle) {
      return oracle;
    };
    EXPECT_FALSE(RunService(bad).ok());
  }
  {
    auto bad = queries;
    bad[0].options.durability.dir = "/tmp/service_forbidden";
    EXPECT_FALSE(RunService(bad).ok());
  }
}

TEST(ServiceDifferentialTest, EmptySubmissionYieldsEmptyReport) {
  const auto service = RunService({}, AuditedOptions());
  ASSERT_TRUE(service.ok()) << service.status().ToString();
  EXPECT_TRUE(service->queries.empty());
  EXPECT_EQ(service->packing.slots, 0);
  EXPECT_EQ(service->packing.epochs, 0);
  EXPECT_TRUE(service->spans.empty());
}

}  // namespace
}  // namespace crowdsky::service
