// Property test: the incremental-closure PreferenceGraph must agree with a
// brute-force reference (Floyd-Warshall over explicit relations) on random
// operation sequences, including equivalence merges and contradictions.
#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "prefgraph/preference_graph.h"

namespace crowdsky {
namespace {

/// Naive reference implementation: keeps the accepted facts and recomputes
/// the transitive closure from scratch with Floyd-Warshall on every query,
/// applying the same kFirstWins accept/reject rule as the real graph.
class ReferenceOrder {
 public:
  explicit ReferenceOrder(int n) : n_(n), cls_(static_cast<size_t>(n)) {
    for (int i = 0; i < n; ++i) cls_[static_cast<size_t>(i)] = i;
  }

  bool Prefers(int u, int v) const {
    if (Equivalent(u, v)) return false;
    const std::vector<bool> reach = Closure();
    return reach[Index(Cls(u), Cls(v))];
  }
  bool Equivalent(int u, int v) const { return Cls(u) == Cls(v); }

  /// Bulk variant for the cross-check loop: one closure, all pairs.
  std::vector<bool> PrefersMatrix() const {
    const std::vector<bool> reach = Closure();
    std::vector<bool> out(static_cast<size_t>(n_) * static_cast<size_t>(n_),
                          false);
    for (int u = 0; u < n_; ++u) {
      for (int v = 0; v < n_; ++v) {
        if (u != v && !Equivalent(u, v)) {
          out[Index(u, v)] = reach[Index(Cls(u), Cls(v))];
        }
      }
    }
    return out;
  }

  void AddPreference(int u, int v) {
    if (Equivalent(u, v) || Prefers(v, u)) return;  // contradiction dropped
    strict_edges_.emplace_back(u, v);
  }

  void AddEquivalence(int u, int v) {
    if (Equivalent(u, v)) return;
    if (Prefers(u, v) || Prefers(v, u)) return;  // contradiction dropped
    const int keep = Cls(u);
    const int gone = Cls(v);
    for (int& c : cls_) {
      if (c == gone) c = keep;
    }
  }

 private:
  int Cls(int x) const { return cls_[static_cast<size_t>(x)]; }
  size_t Index(int a, int b) const {
    return static_cast<size_t>(a) * static_cast<size_t>(n_) +
           static_cast<size_t>(b);
  }
  std::vector<bool> Closure() const {
    std::vector<bool> reach(static_cast<size_t>(n_) *
                                static_cast<size_t>(n_),
                            false);
    for (const auto& [u, v] : strict_edges_) {
      reach[Index(Cls(u), Cls(v))] = true;
    }
    for (int k = 0; k < n_; ++k) {
      for (int i = 0; i < n_; ++i) {
        if (!reach[Index(i, k)]) continue;
        for (int j = 0; j < n_; ++j) {
          if (reach[Index(k, j)]) reach[Index(i, j)] = true;
        }
      }
    }
    return reach;
  }

  int n_;
  std::vector<std::pair<int, int>> strict_edges_;
  std::vector<int> cls_;
};

class PrefGraphPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PrefGraphPropertyTest, MatchesReferenceOnRandomOps) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 24;
  PreferenceGraph graph(n, ContradictionPolicy::kFirstWins);
  ReferenceOrder ref(n);
  for (int op = 0; op < 250; ++op) {
    const int u = static_cast<int>(rng.NextBounded(n));
    int v = static_cast<int>(rng.NextBounded(n));
    if (u == v) continue;
    if (rng.Bernoulli(0.85)) {
      // Mirror the graph's accept/reject decision in the reference by
      // applying the same kFirstWins rule.
      ref.AddPreference(u, v);
      ASSERT_TRUE(graph.AddPreference(u, v).ok());
    } else {
      ref.AddEquivalence(u, v);
      ASSERT_TRUE(graph.AddEquivalence(u, v).ok());
    }
    // Full cross-check every few operations (it is O(n^2)).
    if (op % 10 == 0 || op == 249) {
      const std::vector<bool> expected = ref.PrefersMatrix();
      for (int a = 0; a < n; ++a) {
        for (int b = 0; b < n; ++b) {
          if (a == b) continue;
          ASSERT_EQ(graph.Prefers(a, b),
                    static_cast<bool>(expected[static_cast<size_t>(a) * n +
                                               static_cast<size_t>(b)]))
              << "op " << op << " pair " << a << "," << b;
          ASSERT_EQ(graph.Equivalent(a, b), ref.Equivalent(a, b))
              << "op " << op << " pair " << a << "," << b;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefGraphPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

TEST(PrefGraphPropertyTest, StrictOrderIsAlwaysAcyclic) {
  Rng rng(777);
  const int n = 40;
  PreferenceGraph g(n);
  for (int op = 0; op < 2000; ++op) {
    const int u = static_cast<int>(rng.NextBounded(n));
    const int v = static_cast<int>(rng.NextBounded(n));
    if (u == v) continue;
    ASSERT_TRUE(g.AddPreference(u, v).ok());
  }
  for (int a = 0; a < n; ++a) {
    EXPECT_FALSE(g.Prefers(a, a));
    for (int b = 0; b < n; ++b) {
      EXPECT_FALSE(g.Prefers(a, b) && g.Prefers(b, a));
    }
  }
}

TEST(PrefGraphPropertyTest, TotalOrderChainClosureComplete) {
  const int n = 128;
  PreferenceGraph g(n);
  for (int i = 0; i + 1 < n; ++i) {
    ASSERT_TRUE(g.AddPreference(i, i + 1).ok());
  }
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      EXPECT_TRUE(g.Prefers(a, b));
      EXPECT_FALSE(g.Prefers(b, a));
    }
  }
}

TEST(PrefGraphPropertyTest, ReverseInsertionOrderChain) {
  // Insert edges from the tail of the chain backwards — exercises the
  // ancestor-side propagation of the closure update.
  const int n = 100;
  PreferenceGraph g(n);
  for (int i = n - 2; i >= 0; --i) {
    ASSERT_TRUE(g.AddPreference(i, i + 1).ok());
  }
  EXPECT_TRUE(g.Prefers(0, n - 1));
  EXPECT_TRUE(g.Prefers(25, 75));
}

}  // namespace
}  // namespace crowdsky
