#include "prefgraph/preference_graph.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(PreferenceGraphTest, EmptyGraphKnowsNothing) {
  PreferenceGraph g(5);
  EXPECT_EQ(g.size(), 5);
  for (int u = 0; u < 5; ++u) {
    for (int v = 0; v < 5; ++v) {
      if (u == v) continue;
      EXPECT_FALSE(g.Prefers(u, v));
      EXPECT_FALSE(g.Equivalent(u, v));
      EXPECT_FALSE(g.Comparable(u, v));
    }
  }
}

TEST(PreferenceGraphTest, DirectEdge) {
  PreferenceGraph g(3);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  EXPECT_TRUE(g.Prefers(0, 1));
  EXPECT_FALSE(g.Prefers(1, 0));
  EXPECT_TRUE(g.WeaklyPrefers(0, 1));
  EXPECT_TRUE(g.Comparable(0, 1));
  EXPECT_FALSE(g.Comparable(0, 2));
  EXPECT_EQ(g.edge_count(), 1);
}

TEST(PreferenceGraphTest, TransitivityThroughChain) {
  PreferenceGraph g(5);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  ASSERT_TRUE(g.AddPreference(1, 2).ok());
  ASSERT_TRUE(g.AddPreference(2, 3).ok());
  EXPECT_TRUE(g.Prefers(0, 3));
  EXPECT_TRUE(g.Prefers(0, 2));
  EXPECT_TRUE(g.Prefers(1, 3));
  EXPECT_FALSE(g.Prefers(3, 0));
  EXPECT_FALSE(g.Comparable(0, 4));
}

TEST(PreferenceGraphTest, ImpliedEdgeIsNotCountedTwice) {
  PreferenceGraph g(3);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  ASSERT_TRUE(g.AddPreference(1, 2).ok());
  ASSERT_TRUE(g.AddPreference(0, 2).ok());  // already implied
  EXPECT_EQ(g.edge_count(), 2);
}

TEST(PreferenceGraphTest, CycleRejectedFirstWins) {
  PreferenceGraph g(3, ContradictionPolicy::kFirstWins);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  ASSERT_TRUE(g.AddPreference(1, 2).ok());
  ASSERT_TRUE(g.AddPreference(2, 0).ok());  // would close a cycle; dropped
  EXPECT_EQ(g.contradiction_count(), 1);
  EXPECT_TRUE(g.Prefers(0, 2));
  EXPECT_FALSE(g.Prefers(2, 0));
}

TEST(PreferenceGraphTest, CycleFailsUnderFailPolicy) {
  PreferenceGraph g(3, ContradictionPolicy::kFail);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  ASSERT_TRUE(g.AddPreference(1, 2).ok());
  EXPECT_TRUE(g.AddPreference(2, 0).IsContradiction());
}

TEST(PreferenceGraphTest, EquivalenceBasics) {
  PreferenceGraph g(4);
  ASSERT_TRUE(g.AddEquivalence(0, 1).ok());
  EXPECT_TRUE(g.Equivalent(0, 1));
  EXPECT_TRUE(g.WeaklyPrefers(0, 1));
  EXPECT_TRUE(g.WeaklyPrefers(1, 0));
  EXPECT_FALSE(g.Prefers(0, 1));
  EXPECT_EQ(g.merge_count(), 1);
  EXPECT_EQ(g.representative(0), g.representative(1));
}

TEST(PreferenceGraphTest, EquivalenceIsTransitive) {
  PreferenceGraph g(4);
  ASSERT_TRUE(g.AddEquivalence(0, 1).ok());
  ASSERT_TRUE(g.AddEquivalence(1, 2).ok());
  EXPECT_TRUE(g.Equivalent(0, 2));
  ASSERT_TRUE(g.AddEquivalence(0, 2).ok());  // no-op
  EXPECT_EQ(g.merge_count(), 2);
}

TEST(PreferenceGraphTest, EquivalenceInheritsPreferences) {
  PreferenceGraph g(5);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  ASSERT_TRUE(g.AddPreference(2, 3).ok());
  ASSERT_TRUE(g.AddEquivalence(1, 2).ok());
  // 0 < 1 ~ 2 < 3 implies 0 < 3.
  EXPECT_TRUE(g.Prefers(0, 3));
  EXPECT_TRUE(g.Prefers(0, 2));  // 0 < 1 ~ 2
  EXPECT_TRUE(g.Prefers(1, 3));  // 1 ~ 2 < 3
}

TEST(PreferenceGraphTest, EquivalenceConflictsWithStrictOrder) {
  PreferenceGraph g(3, ContradictionPolicy::kFail);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  EXPECT_TRUE(g.AddEquivalence(0, 1).IsContradiction());
  EXPECT_TRUE(g.AddEquivalence(1, 0).IsContradiction());

  PreferenceGraph h(3, ContradictionPolicy::kFirstWins);
  ASSERT_TRUE(h.AddPreference(0, 1).ok());
  ASSERT_TRUE(h.AddEquivalence(0, 1).ok());
  EXPECT_EQ(h.contradiction_count(), 1);
  EXPECT_TRUE(h.Prefers(0, 1));
  EXPECT_FALSE(h.Equivalent(0, 1));
}

TEST(PreferenceGraphTest, StrictEdgeWithinClassIsContradiction) {
  PreferenceGraph g(3, ContradictionPolicy::kFail);
  ASSERT_TRUE(g.AddEquivalence(0, 1).ok());
  EXPECT_TRUE(g.AddPreference(0, 1).IsContradiction());
  EXPECT_TRUE(g.AddPreference(1, 0).IsContradiction());
}

TEST(PreferenceGraphTest, TransitiveConnectionThroughMerge) {
  // x -> a, b -> y, then a ~ b must give x -> y.
  PreferenceGraph g(4);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());  // x=0 -> a=1
  ASSERT_TRUE(g.AddPreference(2, 3).ok());  // b=2 -> y=3
  ASSERT_TRUE(g.AddEquivalence(1, 2).ok());
  EXPECT_TRUE(g.Prefers(0, 3));
  EXPECT_FALSE(g.Prefers(3, 0));
}

TEST(PreferenceGraphTest, AnyStrictlyPrefers) {
  PreferenceGraph g(6);
  ASSERT_TRUE(g.AddPreference(0, 1).ok());
  ASSERT_TRUE(g.AddPreference(1, 2).ok());
  DynamicBitset mask(6);
  mask.Set(0);
  mask.Set(4);
  EXPECT_TRUE(g.AnyStrictlyPrefers(mask, 2));   // 0 -> 2 transitively
  EXPECT_TRUE(g.AnyStrictlyPrefers(mask, 1));   // 0 -> 1
  EXPECT_FALSE(g.AnyStrictlyPrefers(mask, 0));  // nothing precedes 0
  EXPECT_FALSE(g.AnyStrictlyPrefers(mask, 5));
}

TEST(PreferenceGraphTest, AnyStrictlyPrefersAfterMerges) {
  PreferenceGraph g(6);
  ASSERT_TRUE(g.AddEquivalence(0, 3).ok());
  ASSERT_TRUE(g.AddPreference(3, 2).ok());
  DynamicBitset mask(6);
  mask.Set(0);  // 0 ~ 3 and 3 -> 2, so "0" strictly precedes 2
  EXPECT_TRUE(g.AnyStrictlyPrefers(mask, 2));
  EXPECT_FALSE(g.AnyStrictlyPrefers(mask, 4));
}

TEST(PreferenceGraphTest, AnyWeaklyPrefersCountsEquivalents) {
  PreferenceGraph g(6);
  ASSERT_TRUE(g.AddEquivalence(1, 2).ok());
  DynamicBitset mask(6);
  mask.Set(1);
  EXPECT_TRUE(g.AnyWeaklyPrefers(mask, 2));   // 1 ~ 2
  EXPECT_FALSE(g.AnyWeaklyPrefers(mask, 1));  // only 1 itself... not in mask
  mask.Set(2);
  EXPECT_TRUE(g.AnyWeaklyPrefers(mask, 2));  // 1 is another member
}

TEST(PreferenceGraphTest, ZeroAndOneNodeGraphs) {
  PreferenceGraph g0(0);
  EXPECT_EQ(g0.size(), 0);
  PreferenceGraph g1(1);
  EXPECT_TRUE(g1.Equivalent(0, 0));  // reflexive
  EXPECT_TRUE(g1.Comparable(0, 0));
  EXPECT_FALSE(g1.Prefers(0, 0));
}

}  // namespace
}  // namespace crowdsky
