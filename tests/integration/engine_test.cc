#include "core/engine.h"

#include <gtest/gtest.h>

#include "core/crowdsky.h"

namespace crowdsky {
namespace {

Dataset Small(uint64_t seed = 1) {
  GeneratorOptions opt;
  opt.cardinality = 120;
  opt.num_known = 3;
  opt.num_crowd = 1;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

TEST(EngineTest, RejectsDatasetWithoutCrowdAttribute) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 0), {{1, 2}});
  ds.status().CheckOK();
  EXPECT_TRUE(RunSkylineQuery(*ds).status().IsInvalidArgument());
}

TEST(EngineTest, RejectsEmptyDataset) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1), {});
  ds.status().CheckOK();
  EXPECT_TRUE(RunSkylineQuery(*ds).status().IsInvalidArgument());
}

TEST(EngineTest, RejectsEvenWorkerCount) {
  EngineOptions opt;
  opt.workers_per_question = 4;
  EXPECT_TRUE(RunSkylineQuery(Small(), opt).status().IsInvalidArgument());
}

TEST(EngineTest, RejectsDynamicVotingWithOneWorker) {
  EngineOptions opt;
  opt.workers_per_question = 1;
  opt.dynamic_voting = true;
  EXPECT_TRUE(RunSkylineQuery(Small(), opt).status().IsInvalidArgument());
}

TEST(EngineTest, PerfectOracleGivesPerfectAccuracy) {
  for (const Algorithm algo :
       {Algorithm::kBaselineSort, Algorithm::kBitonicSort,
        Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet,
        Algorithm::kParallelSL, Algorithm::kUnary}) {
    EngineOptions opt;
    opt.algorithm = algo;
    opt.oracle = OracleKind::kPerfect;
    const auto r = RunSkylineQuery(Small(), opt);
    ASSERT_TRUE(r.ok()) << AlgorithmName(algo);
    EXPECT_DOUBLE_EQ(r->accuracy.precision, 1.0) << AlgorithmName(algo);
    EXPECT_DOUBLE_EQ(r->accuracy.recall, 1.0) << AlgorithmName(algo);
    EXPECT_GT(r->cost_usd, 0.0) << AlgorithmName(algo);
  }
}

TEST(EngineTest, SimulatedCrowdIsDefaultAndDeterministic) {
  EngineOptions opt;
  opt.algorithm = Algorithm::kParallelSL;
  opt.seed = 77;
  const auto a = RunSkylineQuery(Small(), opt);
  const auto b = RunSkylineQuery(Small(), opt);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->algo.skyline, b->algo.skyline);
  EXPECT_DOUBLE_EQ(a->cost_usd, b->cost_usd);
}

TEST(EngineTest, DynamicVotingRuns) {
  EngineOptions opt;
  opt.dynamic_voting = true;
  opt.worker.p_correct = 0.8;
  const auto r = RunSkylineQuery(Small(), opt);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->algo.worker_answers, r->algo.questions);
}

TEST(EngineTest, LabelsFollowSkyline) {
  const Dataset movies = MakeMoviesDataset();
  EngineOptions opt;
  opt.oracle = OracleKind::kPerfect;
  opt.algorithm = Algorithm::kCrowdSkySerial;
  const auto r = RunSkylineQuery(movies, opt);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->skyline_labels.size(), r->algo.skyline.size());
  for (size_t i = 0; i < r->algo.skyline.size(); ++i) {
    EXPECT_EQ(r->skyline_labels[i],
              movies.tuple(r->algo.skyline[i]).label);
  }
}

TEST(EngineTest, CostUsesConfiguredModel) {
  EngineOptions opt;
  opt.oracle = OracleKind::kPerfect;
  opt.algorithm = Algorithm::kCrowdSkySerial;
  const auto base = RunSkylineQuery(Small(), opt);
  ASSERT_TRUE(base.ok());
  opt.cost_model.reward_per_hit = 0.04;
  const auto pricier = RunSkylineQuery(Small(), opt);
  ASSERT_TRUE(pricier.ok());
  EXPECT_NEAR(pricier->cost_usd, 2.0 * base->cost_usd, 1e-9);
}

TEST(EngineTest, AlgorithmNames) {
  EXPECT_STREQ(AlgorithmName(Algorithm::kBaselineSort), "Baseline");
  EXPECT_STREQ(AlgorithmName(Algorithm::kCrowdSkySerial), "CrowdSky");
  EXPECT_STREQ(AlgorithmName(Algorithm::kParallelSL), "ParallelSL");
  EXPECT_STREQ(AlgorithmName(Algorithm::kUnary), "Unary");
}

TEST(EngineTest, UmbrellaHeaderCompiles) {
  // crowdsky.h is included above; touch a few symbols from each module.
  const Dataset toy = MakeToyDataset();
  EXPECT_EQ(toy.size(), 12);
  EXPECT_EQ(ComputeGroundTruthSkyline(toy).size(), 7u);
  AmtCostModel cost;
  EXPECT_DOUBLE_EQ(cost.Cost({5}), 0.1);  // one HIT, 5 workers, $0.02
}

}  // namespace
}  // namespace crowdsky
