// Cross-subsystem chaos suite: governor limits x fault plans x kill
// points x resume, across all three CrowdSky drivers.
//
// Each scenario runs the engine as a real child process (re-exec'd via
// /proc/self/exe, like tests/persist/kill_point_test.cc) with auditing on,
// so every invariant-auditor rule — cost_spent <= cap, reason/ledger
// consistency, journal epilogue placement — is enforced inside the
// workload itself; a violation crashes the child and fails the test. The
// parent then asserts the governed/killed/resumed runs converge to the
// uninterrupted baseline bit-for-bit, and that every scenario is exactly
// reproducible from its seed.
//
// This binary owns main(): with --crowdsky_child it IS the workload;
// otherwise it runs the gtest suite.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/generator.h"
#include "testing/temp_dir.h"

namespace crowdsky {

// Not in the anonymous namespace: main() below re-enters here in child
// mode.
int RunChaosChildMode(int argc, char** argv);

namespace {

constexpr uint64_t kOffsetSeed = 0xBADC0DE5EEDULL;
constexpr int kCardinality = 40;
constexpr int kKillExitCode = 137;

Algorithm AlgorithmFromName(const std::string& name) {
  if (name == "serial") return Algorithm::kCrowdSkySerial;
  if (name == "dset") return Algorithm::kParallelDSet;
  CROWDSKY_CHECK_MSG(name == "sl", "unknown child algorithm");
  return Algorithm::kParallelSL;
}

}  // namespace

// The child workload: one durable, audited, optionally governed engine
// run that prints a single machine-parseable RESULT line.
int RunChaosChildMode(int argc, char** argv) {
  CROWDSKY_CHECK_MSG(
      argc == 9,
      "--crowdsky_child <algo> <dir> <seed> <fault> <resume> <cap> <rounds>");
  const std::string algo_name = argv[2];
  const std::string dir = argv[3];
  const uint64_t seed = std::strtoull(argv[4], nullptr, 10);
  const double fault_rate = std::atof(argv[5]);
  const bool resume = std::atoi(argv[6]) != 0;
  const double max_cost_usd = std::atof(argv[7]);
  const int64_t max_rounds = std::atoll(argv[8]);

  GeneratorOptions gen;
  gen.cardinality = kCardinality;
  gen.num_known = 2;
  gen.num_crowd = 2;
  gen.seed = seed;
  const Dataset data = GenerateDataset(gen).ValueOrDie();

  EngineOptions opt;
  opt.algorithm = AlgorithmFromName(algo_name);
  opt.seed = seed * 2654435761u + 1;
  opt.crowdsky.audit = true;  // auditor violations crash the child
  opt.durability.dir = dir;
  opt.durability.resume = resume;
  opt.durability.sync = persist::SyncMode::kFlush;
  opt.durability.checkpoint_every_rounds = 3;
  opt.governor.max_cost_usd = max_cost_usd;
  opt.governor.max_rounds = max_rounds;
  if (fault_rate > 0.0) {
    opt.oracle = OracleKind::kMarketplace;
    opt.marketplace.faults.transient_error_rate = fault_rate;
    opt.marketplace.faults.hit_expiration_rate = fault_rate / 2;
    opt.marketplace.faults.worker_no_show_rate = fault_rate;
    opt.marketplace.faults.straggler_rate = fault_rate / 2;
  }

  const auto r = RunSkylineQuery(data, opt);
  if (!r.ok()) {
    std::fprintf(stderr, "child run failed: %s\n",
                 r.status().ToString().c_str());
    return 3;
  }
  std::string skyline;
  for (const int t : r->algo.skyline) {
    if (!skyline.empty()) skyline += ',';
    skyline += std::to_string(t);
  }
  const TerminationReport& term = r->algo.termination;
  std::printf(
      "RESULT skyline=%s questions=%lld rounds=%lld retries=%lld "
      "cost=%.17g spent=%.17g reason=%s denied=%lld incomplete=%lld "
      "replayed=%lld records=%lld term=%d\n",
      skyline.c_str(), static_cast<long long>(r->algo.questions),
      static_cast<long long>(r->algo.rounds),
      static_cast<long long>(r->algo.retries), r->cost_usd,
      term.cost_spent_usd, TerminationReasonName(term.reason),
      static_cast<long long>(term.denied_questions),
      static_cast<long long>(r->algo.incomplete_tuples),
      static_cast<long long>(r->durability.replayed_pair_attempts),
      static_cast<long long>(r->durability.journal_records),
      r->durability.truncated_termination ? 1 : 0);
  return 0;
}

namespace {

struct ChildRun {
  int exit_code = -1;          ///< WEXITSTATUS, or -signal when signalled
  std::map<std::string, std::string> result;  ///< parsed RESULT k=v pairs
  std::string output;
};

struct Limits {
  double cap = 0.0;      ///< governor dollar cap (0 = off)
  int64_t rounds = 0;    ///< governor round cap (0 = off)
};

std::string ResultField(const ChildRun& run, const std::string& key) {
  const auto it = run.result.find(key);
  return it == run.result.end() ? std::string() : it->second;
}

ChildRun RunChild(const std::string& algo, const std::string& dir,
                  uint64_t seed, double fault_rate, bool resume,
                  Limits limits = {}, long kill_after = 0) {
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  CROWDSKY_CHECK(len > 0);
  exe[len] = '\0';
  char cap[64];
  std::snprintf(cap, sizeof(cap), "%.17g", limits.cap);
  std::string cmd = "CROWDSKY_JOURNAL_KILL_AFTER=" +
                    std::to_string(kill_after) + " '" + std::string(exe) +
                    "' --crowdsky_child " + algo + " '" + dir + "' " +
                    std::to_string(seed) + " " + std::to_string(fault_rate) +
                    " " + (resume ? "1" : "0") + " " + cap + " " +
                    std::to_string(limits.rounds) + " 2>&1";
  ChildRun out;
  FILE* pipe = popen(cmd.c_str(), "r");
  CROWDSKY_CHECK(pipe != nullptr);
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    out.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.exit_code = -WTERMSIG(status);
  }
  const size_t pos = out.output.rfind("RESULT ");
  if (pos != std::string::npos) {
    const size_t end = out.output.find('\n', pos);
    std::istringstream line(out.output.substr(pos + 7, end - pos - 7));
    std::string token;
    while (line >> token) {
      const size_t eq = token.find('=');
      if (eq != std::string::npos) {
        out.result[token.substr(0, eq)] = token.substr(eq + 1);
      }
    }
  }
  return out;
}

std::string FreshDir(const std::string& name) {
  return crowdsky::testing::FreshTempDir(name);
}

/// `count` distinct seeded kill offsets in [1, records - 1].
std::vector<long> SeededOffsets(uint64_t seed, long records, int count) {
  CROWDSKY_CHECK(records > count);
  uint64_t state = seed;
  std::set<long> offsets;
  while (static_cast<int>(offsets.size()) < count) {
    offsets.insert(1 + static_cast<long>(
                           SplitMix64(&state) %
                           static_cast<uint64_t>(records - 1)));
  }
  return {offsets.begin(), offsets.end()};
}

void ExpectSameResult(const ChildRun& base, const ChildRun& got) {
  for (const char* key : {"skyline", "questions", "rounds", "retries",
                          "cost", "reason", "incomplete"}) {
    EXPECT_EQ(ResultField(got, key), ResultField(base, key)) << key;
  }
}

class ChaosTest
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

// Dollar-capped run -> reproducibility repeat -> resume under an
// effectively unlimited cap -> bit-identical to the ungoverned baseline,
// with every capped-run question replayed from the journal.
TEST_P(ChaosTest, CappedRunExtendsToUngovernedBaseline) {
  const auto [algo, fault_rate] = GetParam();
  const uint64_t seed = 23;
  const ChildRun baseline = RunChild(
      algo, FreshDir(std::string("chaos_base_") + algo), seed, fault_rate,
      /*resume=*/false);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.output;
  ASSERT_EQ(ResultField(baseline, "reason"), "completed");
  const double full_cost = std::atof(ResultField(baseline, "cost").c_str());
  const Limits cap{/*cap=*/0.5, /*rounds=*/0};
  ASSERT_GT(full_cost, cap.cap) << "cap would not bind";

  const std::string dir = FreshDir(std::string("chaos_cap_") + algo);
  const ChildRun capped =
      RunChild(algo, dir, seed, fault_rate, /*resume=*/false, cap);
  ASSERT_EQ(capped.exit_code, 0) << capped.output;
  EXPECT_EQ(ResultField(capped, "reason"), "dollar_cap");
  EXPECT_LE(std::atof(ResultField(capped, "spent").c_str()),
            cap.cap + 1e-9);
  EXPECT_GT(std::atoi(ResultField(capped, "incomplete").c_str()), 0);

  // Bit-exact reproducibility: the same seed and limits in a fresh
  // directory produce the same capped run, byte for byte.
  const ChildRun repeat = RunChild(
      algo, FreshDir(std::string("chaos_rep_") + algo), seed, fault_rate,
      /*resume=*/false, cap);
  ASSERT_EQ(repeat.exit_code, 0) << repeat.output;
  EXPECT_EQ(repeat.result, capped.result);

  const ChildRun resumed =
      RunChild(algo, dir, seed, fault_rate, /*resume=*/true);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  EXPECT_EQ(ResultField(resumed, "term"), "1")
      << "resume should truncate the termination epilogue";
  EXPECT_GT(std::atol(ResultField(resumed, "replayed").c_str()), 0);
  ExpectSameResult(baseline, resumed);
}

// A process kill inside a governed run: the journal ends mid-flight
// (possibly before the governor ever tripped), and a resume under a
// larger cap must still converge to the ungoverned baseline.
TEST_P(ChaosTest, KillInsideGovernedRunStillConverges) {
  const auto [algo, fault_rate] = GetParam();
  const uint64_t seed = 29;
  const ChildRun baseline = RunChild(
      algo, FreshDir(std::string("chaos_kb_") + algo), seed, fault_rate,
      /*resume=*/false);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.output;

  const Limits cap{/*cap=*/0.5, /*rounds=*/0};
  const std::string probe_dir =
      FreshDir(std::string("chaos_kp_probe_") + algo);
  const ChildRun probe =
      RunChild(algo, probe_dir, seed, fault_rate, /*resume=*/false, cap);
  ASSERT_EQ(probe.exit_code, 0) << probe.output;
  const long records = std::atol(ResultField(probe, "records").c_str());
  ASSERT_GT(records, 3) << probe.output;

  for (const long offset : SeededOffsets(kOffsetSeed ^ seed, records, 2)) {
    SCOPED_TRACE(std::string(algo) + ": kill after record " +
                 std::to_string(offset));
    const std::string dir = FreshDir(std::string("chaos_kp_") + algo + "_" +
                                     std::to_string(offset));
    const ChildRun killed = RunChild(algo, dir, seed, fault_rate,
                                     /*resume=*/false, cap, offset);
    EXPECT_EQ(killed.exit_code, kKillExitCode) << killed.output;
    EXPECT_TRUE(killed.result.empty()) << "killed child printed a result";

    const ChildRun resumed =
        RunChild(algo, dir, seed, fault_rate, /*resume=*/true);
    ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
    EXPECT_GT(std::atol(ResultField(resumed, "replayed").c_str()), 0);
    ExpectSameResult(baseline, resumed);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDrivers, ChaosTest,
    ::testing::Values(std::pair<const char*, double>{"serial", 0.0},
                      std::pair<const char*, double>{"dset", 0.06},
                      std::pair<const char*, double>{"sl", 0.0},
                      std::pair<const char*, double>{"sl", 0.06}),
    [](const ::testing::TestParamInfo<std::pair<const char*, double>>&
           param) {
      return std::string(param.param.first) +
             (param.param.second > 0 ? "_faulty" : "");
    });

// Chained extensions: $0.30 -> stop -> $0.60 -> stop -> unlimited. Each
// resume truncates the previous termination epilogue, re-admits the
// journal, and spends only the delta; the last one matches the baseline.
TEST(ChaosEdgeTest, ChainedCapExtensionsConverge) {
  const uint64_t seed = 31;
  const ChildRun baseline =
      RunChild("serial", FreshDir("chaos_chain_base"), seed, 0.0, false);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.output;

  const std::string dir = FreshDir("chaos_chain");
  const ChildRun first = RunChild("serial", dir, seed, 0.0, /*resume=*/false,
                                  Limits{0.3, 0});
  ASSERT_EQ(first.exit_code, 0) << first.output;
  EXPECT_EQ(ResultField(first, "reason"), "dollar_cap");

  const ChildRun second = RunChild("serial", dir, seed, 0.0, /*resume=*/true,
                                   Limits{0.6, 0});
  ASSERT_EQ(second.exit_code, 0) << second.output;
  EXPECT_EQ(ResultField(second, "reason"), "dollar_cap");
  EXPECT_LE(std::atof(ResultField(second, "spent").c_str()), 0.6 + 1e-9);
  EXPECT_GT(std::atoll(ResultField(second, "questions").c_str()),
            std::atoll(ResultField(first, "questions").c_str()));

  const ChildRun last = RunChild("serial", dir, seed, 0.0, /*resume=*/true);
  ASSERT_EQ(last.exit_code, 0) << last.output;
  ExpectSameResult(baseline, last);
}

// Round caps across all three drivers under faults: the run stops at the
// cap with an audited partial result and resumes to the baseline.
TEST(ChaosEdgeTest, RoundCapAcrossDriversResumes) {
  const uint64_t seed = 37;
  for (const char* algo : {"serial", "dset", "sl"}) {
    SCOPED_TRACE(algo);
    const ChildRun baseline = RunChild(
        algo, FreshDir(std::string("chaos_rc_base_") + algo), seed, 0.05,
        /*resume=*/false);
    ASSERT_EQ(baseline.exit_code, 0) << baseline.output;
    ASSERT_GT(std::atoll(ResultField(baseline, "rounds").c_str()), 2);

    const std::string dir = FreshDir(std::string("chaos_rc_") + algo);
    const ChildRun capped = RunChild(algo, dir, seed, 0.05,
                                     /*resume=*/false, Limits{0.0, 2});
    ASSERT_EQ(capped.exit_code, 0) << capped.output;
    EXPECT_EQ(ResultField(capped, "reason"), "round_cap");
    EXPECT_EQ(ResultField(capped, "rounds"), "2");

    const ChildRun resumed =
        RunChild(algo, dir, seed, 0.05, /*resume=*/true);
    ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
    ExpectSameResult(baseline, resumed);
  }
}

// In-process scenario: a token cancelled before the run starts stops the
// engine before the first paid question, even with a faulty marketplace,
// and the auditor accepts the all-undecided partial result.
TEST(ChaosEdgeTest, PreCancelledFaultyRunDegradesGracefully) {
  GeneratorOptions gen;
  gen.cardinality = kCardinality;
  gen.num_known = 2;
  gen.num_crowd = 2;
  gen.seed = 41;
  const Dataset data = GenerateDataset(gen).ValueOrDie();

  CancellationToken token;
  token.Cancel();
  EngineOptions opt;
  opt.algorithm = Algorithm::kParallelSL;
  opt.crowdsky.audit = true;
  opt.oracle = OracleKind::kMarketplace;
  opt.marketplace.faults.transient_error_rate = 0.1;
  opt.governor.cancel = &token;
  const auto r = RunSkylineQuery(data, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algo.questions, 0);
  EXPECT_EQ(r->algo.termination.reason, TerminationReason::kCancelled);
  EXPECT_GT(r->algo.incomplete_tuples, 0);
}

}  // namespace
}  // namespace crowdsky

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--crowdsky_child") == 0) {
    return crowdsky::RunChaosChildMode(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
