// Metamorphic properties of the engine: transformations of the input with
// a known effect on the output. Unlike the differential sweep (which needs
// a brute-force reference), these relations hold by construction, so they
// also cross-check the reference itself.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "common/random.h"
#include "core/crowdsky.h"

namespace crowdsky {
namespace {

Dataset MakeData(int n, uint64_t seed, int num_crowd = 1) {
  GeneratorOptions gen;
  gen.cardinality = n;
  gen.num_known = 3;
  gen.num_crowd = num_crowd;
  gen.seed = seed;
  return GenerateDataset(gen).ValueOrDie();
}

EngineOptions PerfectOptions(Algorithm algorithm) {
  EngineOptions options;
  options.algorithm = algorithm;
  options.oracle = OracleKind::kPerfect;
  options.crowdsky.audit = true;
  options.obs.level = obs::ObsLevel::kCounters;
  return options;
}

/// Rebuilds a dataset from explicit rows (same schema).
Dataset FromRows(const Schema& schema,
                 std::vector<std::vector<double>> rows) {
  return Dataset::Make(schema, std::move(rows)).ValueOrDie();
}

std::vector<std::vector<double>> Rows(const Dataset& ds) {
  std::vector<std::vector<double>> rows;
  rows.reserve(static_cast<size_t>(ds.size()));
  for (const Tuple& t : ds.tuples()) rows.push_back(t.values);
  return rows;
}

class MetamorphicTest : public ::testing::TestWithParam<Algorithm> {};

// Permuting the tuples permutes the skyline: membership is a property of
// the tuple's values, never of its position in the relation.
TEST_P(MetamorphicTest, PermutationInvariance) {
  const Dataset base = MakeData(70, 21);
  const auto base_run = RunSkylineQuery(base, PerfectOptions(GetParam()));
  ASSERT_TRUE(base_run.ok());

  // perm[new_id] = old_id, seeded shuffle.
  std::vector<int> perm(static_cast<size_t>(base.size()));
  std::iota(perm.begin(), perm.end(), 0);
  Rng rng(91);
  for (size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  const std::vector<std::vector<double>> base_rows = Rows(base);
  std::vector<std::vector<double>> shuffled;
  shuffled.reserve(perm.size());
  for (const int old_id : perm) {
    shuffled.push_back(base_rows[static_cast<size_t>(old_id)]);
  }
  const Dataset permuted = FromRows(base.schema(), std::move(shuffled));
  const auto perm_run =
      RunSkylineQuery(permuted, PerfectOptions(GetParam()));
  ASSERT_TRUE(perm_run.ok());

  std::vector<int> mapped;
  for (const int new_id : perm_run->algo.skyline) {
    mapped.push_back(perm[static_cast<size_t>(new_id)]);
  }
  std::sort(mapped.begin(), mapped.end());
  EXPECT_EQ(mapped, base_run->algo.skyline);
}

// Appending a tuple that every existing tuple dominates changes nothing:
// the skyline is the same id set, and the loser is excluded.
TEST_P(MetamorphicTest, UniversallyDominatedTupleIsFree) {
  const Dataset base = MakeData(60, 33);
  const auto base_run = RunSkylineQuery(base, PerfectOptions(GetParam()));
  ASSERT_TRUE(base_run.ok());

  // All-MIN schema: a row strictly worse than every value everywhere is
  // dominated by every tuple, known attributes included.
  std::vector<std::vector<double>> rows = Rows(base);
  rows.emplace_back(
      std::vector<double>(static_cast<size_t>(base.schema().num_attributes()),
                          1e6));
  const Dataset extended = FromRows(base.schema(), std::move(rows));
  const auto ext_run =
      RunSkylineQuery(extended, PerfectOptions(GetParam()));
  ASSERT_TRUE(ext_run.ok());

  EXPECT_EQ(ext_run->algo.skyline, base_run->algo.skyline);
  EXPECT_FALSE(std::binary_search(ext_run->algo.skyline.begin(),
                                  ext_run->algo.skyline.end(),
                                  extended.size() - 1));
}

// An exact duplicate of an existing tuple cannot evict anyone: every
// original skyline id is still in the skyline (equal tuples never dominate
// each other), and the result still matches brute force.
TEST_P(MetamorphicTest, ExactDuplicateKeepsOriginals) {
  const Dataset base = MakeData(50, 47, 2);
  const auto base_run = RunSkylineQuery(base, PerfectOptions(GetParam()));
  ASSERT_TRUE(base_run.ok());

  std::vector<std::vector<double>> rows = Rows(base);
  rows.push_back(rows[0]);
  const Dataset extended = FromRows(base.schema(), std::move(rows));
  const auto ext_run =
      RunSkylineQuery(extended, PerfectOptions(GetParam()));
  ASSERT_TRUE(ext_run.ok());

  EXPECT_EQ(ext_run->algo.skyline, ComputeGroundTruthSkyline(extended));
  for (const int id : base_run->algo.skyline) {
    EXPECT_TRUE(std::binary_search(ext_run->algo.skyline.begin(),
                                   ext_run->algo.skyline.end(), id))
        << "duplicate insertion evicted original skyline tuple " << id;
  }
}

// The reported dollar cost is exactly the paper's AMT formula applied to
// the reported per-round question counts — and the observability gauge
// carries the same number.
TEST_P(MetamorphicTest, CostMatchesAmtFormula) {
  const Dataset base = MakeData(80, 55);
  EngineOptions options = PerfectOptions(GetParam());
  const auto r = RunSkylineQuery(base, options);
  ASSERT_TRUE(r.ok());

  const AmtCostModel& model = options.cost_model;
  int64_t hits = 0;
  for (const int64_t q : r->algo.questions_per_round) {
    hits += (q + model.questions_per_hit - 1) / model.questions_per_hit;
  }
  EXPECT_DOUBLE_EQ(r->cost_usd, model.reward_per_hit *
                                    model.workers_per_question *
                                    static_cast<double>(hits));
  EXPECT_EQ(r->obs.CounterOr("crowdsky.hits_paid"), hits);
  double gauge = -1.0;
  for (const auto& [name, value] : r->obs.gauges) {
    if (name == "crowdsky.cost_usd") gauge = value;
  }
  EXPECT_DOUBLE_EQ(gauge, r->cost_usd);
}

INSTANTIATE_TEST_SUITE_P(
    AllDrivers, MetamorphicTest,
    ::testing::Values(Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet,
                      Algorithm::kParallelSL),
    [](const auto& pinfo) { return AlgorithmName(pinfo.param); });

}  // namespace
}  // namespace crowdsky
