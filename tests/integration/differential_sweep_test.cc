// Randomized differential sweep: 64 seeded configuration cells, each run
// through all three CrowdSky drivers with counters and auditing on, checked
// against the brute-force skyline and against each other. Every cell varies
// cardinality, distribution, schema width, thread count, fault plan and
// durability, so a regression in any driver/feature interaction shows up as
// a differential mismatch rather than only under a hand-picked config.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "core/crowdsky.h"
#include "testing/temp_dir.h"

namespace crowdsky {
namespace {

constexpr Algorithm kDrivers[] = {Algorithm::kCrowdSkySerial,
                                  Algorithm::kParallelDSet,
                                  Algorithm::kParallelSL};

/// Everything one sweep cell varies, decoded deterministically from the
/// cell index so the sweep is reproducible and each cell is independent.
struct SweepCell {
  GeneratorOptions gen;
  int threads = 1;
  bool faults = false;
  bool durable = false;
  MultiAttributeStrategy multi_attr = MultiAttributeStrategy::kAllAtOnce;
};

SweepCell DecodeCell(int index) {
  Rng rng(uint64_t{0xd1ffe7e57} + static_cast<uint64_t>(index));
  SweepCell cell;
  cell.gen.cardinality = static_cast<int>(rng.UniformInt(24, 60));
  cell.gen.num_known = static_cast<int>(rng.UniformInt(2, 3));
  cell.gen.num_crowd = static_cast<int>(rng.UniformInt(1, 2));
  const DataDistribution kDists[] = {DataDistribution::kIndependent,
                                     DataDistribution::kAntiCorrelated,
                                     DataDistribution::kCorrelated};
  cell.gen.distribution = kDists[rng.UniformInt(0, 2)];
  cell.gen.seed = rng.Next();
  const int kThreadChoices[] = {1, 2, 4};
  cell.threads = kThreadChoices[rng.UniformInt(0, 2)];
  cell.faults = rng.Bernoulli(0.5);
  cell.durable = rng.Bernoulli(0.33);
  cell.multi_attr = rng.Bernoulli(0.5) ? MultiAttributeStrategy::kAllAtOnce
                                       : MultiAttributeStrategy::kRoundRobin;
  return cell;
}

EngineOptions CellOptions(const SweepCell& cell, Algorithm driver,
                          const std::string& journal_dir) {
  EngineOptions options;
  options.algorithm = driver;
  options.crowdsky.multi_attr = cell.multi_attr;
  // Counters on + audit on: the engine cross-checks every crowdsky.* /
  // journal.* counter against the session and journal ledgers and aborts
  // on any mismatch, so each cell is also an observability proof.
  options.crowdsky.audit = true;
  options.obs.level = obs::ObsLevel::kCounters;
  options.seed = cell.gen.seed ^ 0x5eedULL;
  if (cell.faults) {
    // Perfectly accurate workers on a faulty platform: resolved answers
    // are always right, so correctness checks stay exact while the retry
    // and degradation paths get exercised.
    options.oracle = OracleKind::kMarketplace;
    options.marketplace.pool_size = 40;
    options.marketplace.population.p_correct = 1.0;
    options.marketplace.faults.transient_error_rate = 0.10;
    options.marketplace.faults.hit_expiration_rate = 0.05;
    options.marketplace.faults.worker_no_show_rate = 0.10;
    options.marketplace.faults.straggler_rate = 0.05;
    options.retry.max_retries = 4;
  } else {
    options.oracle = OracleKind::kPerfect;
  }
  if (cell.durable) {
    options.durability.dir = journal_dir;
    options.durability.checkpoint_every_rounds = 4;
  }
  return options;
}

/// True iff `subset` (sorted) is contained in `superset` (sorted).
bool SortedContains(const std::vector<int>& superset,
                    const std::vector<int>& subset) {
  return std::includes(superset.begin(), superset.end(), subset.begin(),
                       subset.end());
}

class DifferentialSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialSweepTest, DriversAgreeWithBruteForce) {
  const int index = GetParam();
  const SweepCell cell = DecodeCell(index);
  SCOPED_TRACE("cell " + std::to_string(index) + ": n=" +
               std::to_string(cell.gen.cardinality) + " dist=" +
               DataDistributionName(cell.gen.distribution) + " known=" +
               std::to_string(cell.gen.num_known) + " crowd=" +
               std::to_string(cell.gen.num_crowd) + " threads=" +
               std::to_string(cell.threads) +
               (cell.faults ? " faults" : "") +
               (cell.durable ? " durable" : ""));

  const Dataset ds = GenerateDataset(cell.gen).ValueOrDie();
  const std::vector<int> truth = ComputeGroundTruthSkyline(ds);
  ScopedThreads threads(cell.threads);

  std::vector<EngineResult> results;
  for (const Algorithm driver : kDrivers) {
    const std::string dir = crowdsky::testing::FreshTempDir(
        std::string("sweep_") + AlgorithmName(driver));
    const auto r = RunSkylineQuery(ds, CellOptions(cell, driver, dir));
    ASSERT_TRUE(r.ok()) << AlgorithmName(driver) << ": "
                        << r.status().ToString();
    results.push_back(*r);

    const AlgoResult& a = r->algo;
    if (a.completeness.complete) {
      // Perfectly accurate answers: the exact skyline, regardless of the
      // fault plan, thread count or durability mode.
      EXPECT_EQ(a.skyline, truth) << AlgorithmName(driver);
    } else {
      // Retry caps ran dry: undetermined tuples stay in by default, so
      // the result must still cover the true skyline.
      EXPECT_TRUE(SortedContains(a.skyline, truth)) << AlgorithmName(driver);
      EXPECT_GT(a.completeness.unresolved_questions, 0);
    }

    // Deterministic counters mirror the run's own ledgers. (The in-run
    // auditor already proved them equal to the *session* ledgers; this
    // checks the externally visible AlgoResult agrees too.)
    const EngineResult::ObsInfo& o = r->obs;
    EXPECT_TRUE(o.enabled);
    EXPECT_FALSE(o.tracing);
    EXPECT_EQ(o.trace_events, 0);
    EXPECT_EQ(o.CounterOr("crowdsky.rounds"), a.rounds);
    EXPECT_EQ(o.CounterOr("crowdsky.round_questions_count"), a.rounds);
    EXPECT_EQ(o.CounterOr("crowdsky.round_questions_sum"), a.questions);
    EXPECT_EQ(o.CounterOr("crowdsky.worker_answers"), a.worker_answers);
    EXPECT_EQ(o.CounterOr("crowdsky.free_lookups"), a.free_lookups);
    EXPECT_EQ(o.CounterOr("crowdsky.retries"), a.retries);
    EXPECT_EQ(o.CounterOr("crowdsky.degraded_quorum"), a.degraded_quorum);
    EXPECT_EQ(o.CounterOr("crowdsky.failed_attempts"), a.failed_attempts);
    EXPECT_EQ(o.CounterOr("crowdsky.backoff_rounds"), a.backoff_rounds);
    EXPECT_EQ(o.CounterOr("crowdsky.unresolved_questions"),
              a.completeness.unresolved_questions);
    if (cell.durable) {
      EXPECT_EQ(o.CounterOr("journal.records_appended"),
                r->durability.new_records);
      EXPECT_EQ(o.CounterOr("journal.records_total"),
                r->durability.journal_records);
      EXPECT_GT(o.CounterOr("journal.bytes_appended"), 0);
    } else {
      EXPECT_EQ(o.CounterOr("journal.records_appended"), 0);
      EXPECT_EQ(o.CounterOr("journal.records_total"), -1);
    }
  }

  // Differential core: when every driver resolved everything they must
  // return the same skyline (all equal the brute-force one, checked above;
  // this keeps the property visible even if `truth` ever drifted).
  for (size_t i = 1; i < results.size(); ++i) {
    if (results[0].algo.completeness.complete &&
        results[i].algo.completeness.complete) {
      EXPECT_EQ(results[i].algo.skyline, results[0].algo.skyline);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, DifferentialSweepTest,
                         ::testing::Range(0, 64));

}  // namespace
}  // namespace crowdsky
