// Cross-cutting accounting invariants that must hold for every algorithm,
// oracle and configuration: question/round/worker/cost bookkeeping is the
// library's core deliverable, so it gets its own adversarial suite.
#include <gtest/gtest.h>

#include <numeric>

#include "core/crowdsky.h"

namespace crowdsky {
namespace {

Dataset Make(int n, int mc, uint64_t seed,
             DataDistribution dist = DataDistribution::kIndependent) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 3;
  opt.num_crowd = mc;
  opt.distribution = dist;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

class StatsInvariantsTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(StatsInvariantsTest, BookkeepingConsistency) {
  const Algorithm algo = GetParam();
  for (const int mc : {1, 2}) {
    for (const auto dist : {DataDistribution::kIndependent,
                            DataDistribution::kAntiCorrelated}) {
      const Dataset ds = Make(120, mc, 5, dist);
      EngineOptions options;
      options.algorithm = algo;
      options.worker.p_correct = 0.85;
      options.seed = 17;
      // The CrowdSky-family drivers double-check their own bookkeeping
      // with the invariant auditor (ignored by the sort/unary baselines).
      options.crowdsky.audit = true;
      const auto r = RunSkylineQuery(ds, options);
      ASSERT_TRUE(r.ok());
      const AlgoResult& a = r->algo;

      // Per-round counts sum to the total number of questions.
      const int64_t per_round_total =
          std::accumulate(a.questions_per_round.begin(),
                          a.questions_per_round.end(), int64_t{0});
      EXPECT_EQ(per_round_total, a.questions) << AlgorithmName(algo);
      EXPECT_EQ(static_cast<int64_t>(a.questions_per_round.size()),
                a.rounds)
          << AlgorithmName(algo);
      for (const int64_t q : a.questions_per_round) EXPECT_GT(q, 0);

      // Worker accounting: static voting with omega=5 assigns exactly 5
      // workers per paid question.
      EXPECT_EQ(a.worker_answers, 5 * a.questions) << AlgorithmName(algo);

      // Cost equals the model applied to the per-round counts.
      AmtCostModel model;
      EXPECT_DOUBLE_EQ(r->cost_usd, model.Cost(a.questions_per_round));

      // The skyline is a sorted duplicate-free subset of the ids.
      EXPECT_TRUE(std::is_sorted(a.skyline.begin(), a.skyline.end()));
      EXPECT_TRUE(std::adjacent_find(a.skyline.begin(), a.skyline.end()) ==
                  a.skyline.end());
      for (const int id : a.skyline) {
        EXPECT_GE(id, 0);
        EXPECT_LT(id, ds.size());
      }
      // The AK skyline is always contained in the result (complete
      // skyline tuples are never questioned away).
      for (const int id :
           ComputeSkylineSFS(PreferenceMatrix::FromKnown(ds))) {
        EXPECT_TRUE(
            std::binary_search(a.skyline.begin(), a.skyline.end(), id))
            << AlgorithmName(algo) << " lost AK-skyline tuple " << id;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, StatsInvariantsTest,
    ::testing::Values(Algorithm::kBaselineSort, Algorithm::kBitonicSort,
                      Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet,
                      Algorithm::kParallelSL, Algorithm::kUnary),
    [](const auto& pinfo) { return AlgorithmName(pinfo.param); });

TEST(StatsInvariantsTest, DynamicVotingWorkerCountsWithinBands) {
  const Dataset ds = Make(200, 1, 9);
  EngineOptions options;
  options.algorithm = Algorithm::kCrowdSkySerial;
  options.dynamic_voting = true;
  options.workers_per_question = 5;
  const auto r = RunSkylineQuery(ds, options);
  ASSERT_TRUE(r.ok());
  // Every question uses 3, 5 or 7 workers.
  EXPECT_GE(r->algo.worker_answers, 3 * r->algo.questions);
  EXPECT_LE(r->algo.worker_answers, 7 * r->algo.questions);
}

TEST(StatsInvariantsTest, MarketplaceOracleThroughEngine) {
  const Dataset ds = Make(100, 1, 11);
  EngineOptions options;
  options.algorithm = Algorithm::kParallelSL;
  options.oracle = OracleKind::kMarketplace;
  options.marketplace.pool_size = 60;
  options.marketplace.population.p_correct = 0.95;
  const auto r = RunSkylineQuery(ds, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algo.worker_answers, 5 * r->algo.questions);
  EXPECT_GT(r->accuracy.f1, 0.5);
}

TEST(StatsInvariantsTest, PerfectOracleIdempotentAcrossCalls) {
  const Dataset ds = Make(150, 1, 13);
  EngineOptions options;
  options.algorithm = Algorithm::kParallelDSet;
  options.oracle = OracleKind::kPerfect;
  const auto a = RunSkylineQuery(ds, options);
  const auto b = RunSkylineQuery(ds, options);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->algo.skyline, b->algo.skyline);
  EXPECT_EQ(a->algo.questions, b->algo.questions);
  EXPECT_EQ(a->algo.rounds, b->algo.rounds);
  EXPECT_EQ(a->algo.questions_per_round, b->algo.questions_per_round);
}

TEST(StatsInvariantsTest, SeededRelationsOnlyWithMasks) {
  const Dataset ds = Make(80, 1, 15);
  EngineOptions options;
  options.oracle = OracleKind::kPerfect;
  options.algorithm = Algorithm::kCrowdSkySerial;
  const auto plain = RunSkylineQuery(ds, options);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->algo.seeded_relations, 0);

  std::vector<DynamicBitset> masks(1, DynamicBitset(80));
  for (size_t i = 0; i < 40; ++i) masks[0].Set(i);
  options.crowdsky.known_crowd_values = &masks;
  const auto seeded = RunSkylineQuery(ds, options);
  ASSERT_TRUE(seeded.ok());
  EXPECT_EQ(seeded->algo.seeded_relations, 39);
  EXPECT_LE(seeded->algo.questions, plain->algo.questions);
  EXPECT_EQ(seeded->algo.skyline, plain->algo.skyline);
}

}  // namespace
}  // namespace crowdsky
