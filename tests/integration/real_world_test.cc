// End-to-end reproduction of the Section 6.2 AMT experiments with the
// simulated crowd: Q1 (rectangles), Q2 (movies), Q3 (MLB pitchers).
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "core/crowdsky.h"

namespace crowdsky {
namespace {

std::set<std::string> Labels(const Dataset& ds, const std::vector<int>& ids) {
  std::set<std::string> out;
  for (const int id : ids) out.insert(ds.tuple(id).label);
  return out;
}

EngineOptions ReliableCrowd(Algorithm algo) {
  // AMT Masters workers are highly reliable; with omega = 5 voting the
  // aggregated answers are near-perfect.
  EngineOptions opt;
  opt.algorithm = algo;
  opt.worker.p_correct = 0.95;
  opt.workers_per_question = 5;
  opt.seed = 2016;
  return opt;
}

TEST(RealWorldTest, Q1RectanglesPerfectPrecisionAndRecall) {
  const Dataset ds = MakeRectanglesDataset();
  const auto r =
      RunSkylineQuery(ds, ReliableCrowd(Algorithm::kCrowdSkySerial));
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->accuracy.precision, 1.0);
  EXPECT_DOUBLE_EQ(r->accuracy.recall, 1.0);
}

TEST(RealWorldTest, Q2MoviesSkylineMatchesPaper) {
  const Dataset ds = MakeMoviesDataset();
  const auto r = RunSkylineQuery(ds, ReliableCrowd(Algorithm::kParallelSL));
  ASSERT_TRUE(r.ok());
  const std::set<std::string> expected = {
      "Avatar",
      "The Avengers",
      "Inception",
      "The Lord of the Rings: The Fellowship of the Ring",
      "The Dark Knight Rises",
  };
  EXPECT_EQ(Labels(ds, r->algo.skyline), expected);
}

TEST(RealWorldTest, Q3PitchersSkylineIsCyYoungCandidates) {
  const Dataset ds = MakeMlbPitchersDataset();
  const auto r = RunSkylineQuery(ds, ReliableCrowd(Algorithm::kParallelSL));
  ASSERT_TRUE(r.ok());
  const std::set<std::string> expected = {
      "Clayton Kershaw", "Bartolo Colon", "Yu Darvish", "Max Scherzer"};
  EXPECT_EQ(Labels(ds, r->algo.skyline), expected);
}

TEST(RealWorldTest, CrowdSkyCheaperThanBaselineOnAllThreeQueries) {
  // Figure 12(a): CrowdSky saves 3-4x on every query.
  const Dataset queries[] = {MakeRectanglesDataset(), MakeMoviesDataset(),
                             MakeMlbPitchersDataset()};
  for (const Dataset& ds : queries) {
    const auto baseline =
        RunSkylineQuery(ds, ReliableCrowd(Algorithm::kBaselineSort));
    const auto crowdsky =
        RunSkylineQuery(ds, ReliableCrowd(Algorithm::kParallelSL));
    ASSERT_TRUE(baseline.ok());
    ASSERT_TRUE(crowdsky.ok());
    EXPECT_LT(2.0 * crowdsky->cost_usd, baseline->cost_usd);
  }
}

TEST(RealWorldTest, RoundOrderingOnAllThreeQueries) {
  // Figure 12(b): Baseline >> ParallelDSet > ParallelSL.
  const Dataset queries[] = {MakeRectanglesDataset(), MakeMoviesDataset(),
                             MakeMlbPitchersDataset()};
  for (const Dataset& ds : queries) {
    const auto baseline =
        RunSkylineQuery(ds, ReliableCrowd(Algorithm::kBaselineSort));
    const auto pdset =
        RunSkylineQuery(ds, ReliableCrowd(Algorithm::kParallelDSet));
    const auto psl =
        RunSkylineQuery(ds, ReliableCrowd(Algorithm::kParallelSL));
    ASSERT_TRUE(baseline.ok() && pdset.ok() && psl.ok());
    EXPECT_GT(baseline->algo.rounds, 80);
    EXPECT_LT(pdset->algo.rounds, 60);
    EXPECT_LE(psl->algo.rounds, pdset->algo.rounds);
    EXPECT_LT(psl->algo.rounds, 30);
  }
}

TEST(RealWorldTest, CsvRoundTripThenQuery) {
  // A downstream user saves a dataset to CSV, reloads it and queries it.
  const Dataset original = MakeMoviesDataset();
  const std::string path = ::testing::TempDir() + "/movies.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  const Dataset reloaded = ReadCsvFile(path).ValueOrDie();
  EngineOptions opt = ReliableCrowd(Algorithm::kCrowdSkySerial);
  opt.oracle = OracleKind::kPerfect;
  const auto r = RunSkylineQuery(reloaded, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->accuracy.f1, 1.0);
}

}  // namespace
}  // namespace crowdsky
