// Cross-product of option combinations: every CrowdSky driver must return
// the ground-truth skyline under a perfect oracle no matter how the
// feature flags are combined (pruning level x multi-attr strategy x
// partial knowledge x driver).
#include <gtest/gtest.h>

#include <tuple>

#include "core/crowdsky.h"

namespace crowdsky {
namespace {

enum class Driver { kSerial, kPDSet, kPSL };

const char* DriverName(Driver d) {
  switch (d) {
    case Driver::kSerial:
      return "Serial";
    case Driver::kPDSet:
      return "PDSet";
    case Driver::kPSL:
      return "PSL";
  }
  return "?";
}

using Param = std::tuple<Driver, int /*pruning level*/,
                         MultiAttributeStrategy, bool /*partial knowledge*/>;

class OptionMatrixTest : public ::testing::TestWithParam<Param> {};

TEST_P(OptionMatrixTest, AlwaysMatchesGroundTruth) {
  const auto [driver, level, strategy, partial] = GetParam();
  const PruningConfig kLevels[] = {PruningConfig::DSetOnly(),
                                   PruningConfig::P1(),
                                   PruningConfig::P1P2(),
                                   PruningConfig::All()};
  GeneratorOptions gen;
  gen.cardinality = 90;
  gen.num_known = 3;
  gen.num_crowd = 2;
  gen.seed = 5;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();

  std::vector<DynamicBitset> masks(
      2, DynamicBitset(static_cast<size_t>(ds.size())));
  if (partial) {
    for (size_t i = 0; i < 45; ++i) {
      masks[0].Set(i);
      masks[1].Set(i * 2);
    }
  }

  CrowdSkyOptions options;
  options.pruning = kLevels[level];
  options.multi_attr = strategy;
  if (partial) options.known_crowd_values = &masks;
  // Every option combination must also survive the invariant auditor
  // (violations abort the run).
  options.audit = true;

  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  AlgoResult r;
  switch (driver) {
    case Driver::kSerial:
      r = RunCrowdSky(ds, &session, options);
      break;
    case Driver::kPDSet:
      r = RunParallelDSet(ds, &session, options);
      break;
    case Driver::kPSL:
      r = RunParallelSL(ds, &session, options);
      break;
  }
  EXPECT_EQ(r.skyline, ComputeGroundTruthSkyline(ds));
  EXPECT_EQ(r.incomplete_tuples, 0);
  if (partial) {
    EXPECT_GT(r.seeded_relations, 0);
  } else {
    EXPECT_EQ(r.seeded_relations, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, OptionMatrixTest,
    ::testing::Combine(
        ::testing::Values(Driver::kSerial, Driver::kPDSet, Driver::kPSL),
        ::testing::Range(0, 4),
        ::testing::Values(MultiAttributeStrategy::kAllAtOnce,
                          MultiAttributeStrategy::kRoundRobin),
        ::testing::Bool()),
    [](const auto& pinfo) {
      return std::string(DriverName(std::get<0>(pinfo.param))) + "_L" +
             std::to_string(std::get<1>(pinfo.param)) +
             (std::get<2>(pinfo.param) ==
                      MultiAttributeStrategy::kRoundRobin
                  ? "_rr"
                  : "_aao") +
             (std::get<3>(pinfo.param) ? "_partial" : "_missing");
    });

}  // namespace
}  // namespace crowdsky
