// Engine-level observability: the obs block on EngineResult, file exports,
// option validation, and the guarantee that turning observability on does
// not change any deterministic output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "core/crowdsky.h"
#include "testing/temp_dir.h"

namespace crowdsky {
namespace {

Dataset MakeData(int n, uint64_t seed) {
  GeneratorOptions gen;
  gen.cardinality = n;
  gen.num_known = 3;
  gen.num_crowd = 1;
  gen.seed = seed;
  return GenerateDataset(gen).ValueOrDie();
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

TEST(ObservabilityTest, DisabledByDefault) {
  const Dataset ds = MakeData(60, 3);
  const auto r = RunSkylineQuery(ds);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->obs.enabled);
  EXPECT_FALSE(r->obs.tracing);
  EXPECT_TRUE(r->obs.counters.empty());
  EXPECT_TRUE(r->obs.gauges.empty());
  EXPECT_EQ(r->obs.trace_events, 0);
  EXPECT_EQ(r->obs.CounterOr("crowdsky.rounds"), -1);
}

TEST(ObservabilityTest, EnablingObsDoesNotChangeDeterministicOutputs) {
  const Dataset ds = MakeData(100, 7);
  EngineOptions off;
  off.algorithm = Algorithm::kParallelSL;
  off.worker.p_correct = 0.9;
  off.seed = 11;
  EngineOptions counters = off;
  counters.obs.level = obs::ObsLevel::kCounters;
  EngineOptions full = off;
  full.obs.level = obs::ObsLevel::kFull;

  const auto a = RunSkylineQuery(ds, off);
  const auto b = RunSkylineQuery(ds, counters);
  const auto c = RunSkylineQuery(ds, full);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  for (const auto* r : {&*b, &*c}) {
    EXPECT_EQ(r->algo.skyline, a->algo.skyline);
    EXPECT_EQ(r->algo.questions, a->algo.questions);
    EXPECT_EQ(r->algo.rounds, a->algo.rounds);
    EXPECT_EQ(r->algo.questions_per_round, a->algo.questions_per_round);
    EXPECT_EQ(r->algo.worker_answers, a->algo.worker_answers);
    EXPECT_DOUBLE_EQ(r->cost_usd, a->cost_usd);
    EXPECT_EQ(r->accuracy.f1, a->accuracy.f1);
  }
  // The crowdsky.* counter values are themselves deterministic: both
  // observed runs saw the identical question stream. (pool.* counters are
  // scheduling-dependent, so they are excluded.)
  const auto deterministic = [](const EngineResult& r) {
    std::vector<std::pair<std::string, int64_t>> kept;
    for (const auto& sample : r.obs.counters) {
      if (sample.first.rfind("pool.", 0) != 0) kept.push_back(sample);
    }
    return kept;
  };
  EXPECT_EQ(deterministic(*b), deterministic(*c));
  // Tracing only happens at kFull, and a run records at least the run /
  // setup / algorithm spans.
  EXPECT_EQ(b->obs.trace_events, 0);
  EXPECT_GE(c->obs.trace_events, 4);
}

TEST(ObservabilityTest, CountersMirrorAlgoResult) {
  const Dataset ds = MakeData(90, 13);
  EngineOptions options;
  options.algorithm = Algorithm::kParallelDSet;
  options.obs.level = obs::ObsLevel::kCounters;
  options.crowdsky.audit = true;  // auditor proves counters == ledgers
  const auto r = RunSkylineQuery(ds, options);
  ASSERT_TRUE(r.ok());
  const AlgoResult& a = r->algo;
  EXPECT_EQ(r->obs.CounterOr("crowdsky.rounds"), a.rounds);
  EXPECT_EQ(r->obs.CounterOr("crowdsky.round_questions_sum"), a.questions);
  EXPECT_EQ(r->obs.CounterOr("crowdsky.worker_answers"), a.worker_answers);
  EXPECT_EQ(r->obs.CounterOr("crowdsky.free_lookups"), a.free_lookups);
  EXPECT_EQ(r->obs.CounterOr("crowdsky.unary_questions"), 0);
  // pool.* counters exist but are scheduling-dependent; only presence is
  // guaranteed.
  EXPECT_GE(r->obs.CounterOr("pool.tasks_submitted"), 0);
}

TEST(ObservabilityTest, WritesTraceAndMetricsFiles) {
  const Dataset ds = MakeData(60, 17);
  EngineOptions options;
  options.obs.level = obs::ObsLevel::kFull;
  options.obs.trace_path = crowdsky::testing::FreshTempPath("trace.json");
  options.obs.metrics_path =
      crowdsky::testing::FreshTempPath("metrics.prom");
  const auto r = RunSkylineQuery(ds, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->obs.tracing);

  const std::string trace = Slurp(options.obs.trace_path);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"run\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"algorithm\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\": \"crowd.ask_pair\""), std::string::npos);

  const std::string prom = Slurp(options.obs.metrics_path);
  EXPECT_NE(prom.find("# TYPE crowdsky_rounds counter"), std::string::npos);
  EXPECT_NE(prom.find("# TYPE crowdsky_round_questions histogram"),
            std::string::npos);
  EXPECT_NE(prom.find("# TYPE crowdsky_cost_usd gauge"), std::string::npos);
}

TEST(ObservabilityTest, RejectsPathsWithoutMatchingLevel) {
  const Dataset ds = MakeData(40, 19);
  EngineOptions trace_without_full;
  trace_without_full.obs.level = obs::ObsLevel::kCounters;
  trace_without_full.obs.trace_path = "/tmp/never-written.json";
  EXPECT_FALSE(RunSkylineQuery(ds, trace_without_full).ok());

  EngineOptions metrics_while_disabled;
  metrics_while_disabled.obs.metrics_path = "/tmp/never-written.prom";
  EXPECT_FALSE(RunSkylineQuery(ds, metrics_while_disabled).ok());
}

TEST(ObservabilityTest, ResumeCountsReplayedWork) {
  const Dataset ds = MakeData(80, 23);
  const std::string dir = crowdsky::testing::FreshTempDir("obs_resume");
  EngineOptions options;
  options.algorithm = Algorithm::kCrowdSkySerial;
  options.obs.level = obs::ObsLevel::kCounters;
  options.crowdsky.audit = true;
  options.durability.dir = dir;
  // Journal-only durability: the resume must replay every paid question.
  options.durability.checkpoint_every_rounds = 0;
  const auto fresh = RunSkylineQuery(ds, options);
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->obs.CounterOr("journal.replayed_pair_attempts"), 0);
  EXPECT_EQ(fresh->obs.CounterOr("journal.records_appended"),
            fresh->durability.new_records);
  EXPECT_GT(fresh->durability.new_records, 0);

  options.durability.resume = true;
  const auto resumed = RunSkylineQuery(ds, options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->algo.skyline, fresh->algo.skyline);
  EXPECT_EQ(resumed->obs.CounterOr("journal.replayed_pair_attempts"),
            resumed->durability.replayed_pair_attempts);
  EXPECT_GT(resumed->obs.CounterOr("journal.replayed_pair_attempts"), 0);
  // Nothing is re-paid on the resume, so no new journal records appear.
  EXPECT_EQ(resumed->obs.CounterOr("journal.records_appended"),
            resumed->durability.new_records);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace crowdsky
