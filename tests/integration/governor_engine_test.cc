// Engine-level governor behavior: governed runs that finish are identical
// to ungoverned ones, capped runs stop with an auditable partial result,
// and a capped run resumed under a larger cap completes bit-identically to
// an uninterrupted run without re-paying a single question.
#include "core/engine.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "audit/invariant_auditor.h"
#include "core/crowdsky.h"
#include "skyline/algorithms.h"
#include "testing/temp_dir.h"

namespace crowdsky {
namespace {

Dataset Small(uint64_t seed = 1) {
  GeneratorOptions opt;
  opt.cardinality = 120;
  opt.num_known = 3;
  opt.num_crowd = 1;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

EngineOptions Governed(Algorithm algo) {
  EngineOptions opt;
  opt.algorithm = algo;
  opt.oracle = OracleKind::kPerfect;
  opt.crowdsky.audit = true;
  return opt;
}

void ExpectSkylineSupersetOfTruth(const Dataset& ds,
                                  const std::vector<int>& skyline) {
  for (const int t : ComputeGroundTruthSkyline(ds)) {
    EXPECT_TRUE(std::binary_search(skyline.begin(), skyline.end(), t)) << t;
  }
}

TEST(GovernorEngineTest, HugeCapsMatchUngovernedBitForBit) {
  const Dataset ds = Small();
  for (const Algorithm algo :
       {Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet,
        Algorithm::kParallelSL}) {
    const auto plain = RunSkylineQuery(ds, Governed(algo));
    ASSERT_TRUE(plain.ok()) << AlgorithmName(algo);
    EXPECT_FALSE(plain->algo.termination.governed);

    EngineOptions opt = Governed(algo);
    opt.governor.max_rounds = 1000000;
    opt.governor.max_cost_usd = 1e9;
    opt.governor.stall_rounds = 1000000;
    const auto governed = RunSkylineQuery(ds, opt);
    ASSERT_TRUE(governed.ok()) << AlgorithmName(algo);
    EXPECT_EQ(governed->algo.skyline, plain->algo.skyline);
    EXPECT_EQ(governed->algo.questions, plain->algo.questions);
    EXPECT_EQ(governed->algo.rounds, plain->algo.rounds);
    EXPECT_DOUBLE_EQ(governed->cost_usd, plain->cost_usd);
    EXPECT_TRUE(governed->algo.termination.governed);
    EXPECT_EQ(governed->algo.termination.reason,
              TerminationReason::kCompleted);
    EXPECT_EQ(governed->algo.termination.denied_questions, 0);
  }
}

TEST(GovernorEngineTest, RoundCapYieldsAuditedPartialResult) {
  const Dataset ds = Small(3);
  EngineOptions opt = Governed(Algorithm::kParallelSL);
  opt.governor.max_rounds = 2;
  const auto r = RunSkylineQuery(ds, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algo.termination.reason, TerminationReason::kRoundCap);
  EXPECT_EQ(r->algo.termination.rounds, 2);
  EXPECT_GT(r->algo.termination.denied_questions, 0);
  EXPECT_GT(r->algo.incomplete_tuples, 0);
  ExpectSkylineSupersetOfTruth(ds, r->algo.skyline);
}

TEST(GovernorEngineTest, DollarCapNeverOverspends) {
  const Dataset ds = Small(5);
  for (const double cap : {0.1, 0.5, 2.0}) {
    EngineOptions opt = Governed(Algorithm::kCrowdSkySerial);
    opt.governor.max_cost_usd = cap;
    const auto r = RunSkylineQuery(ds, opt);
    ASSERT_TRUE(r.ok()) << cap;
    EXPECT_EQ(r->algo.termination.reason, TerminationReason::kDollarCap)
        << cap;
    EXPECT_LE(r->algo.termination.cost_spent_usd, cap + 1e-9) << cap;
    ExpectSkylineSupersetOfTruth(ds, r->algo.skyline);
  }
}

// The flagship contract: cap a run, then resume it under a larger cap.
// The resume replays every already-paid question from the journal (zero
// re-paid) and the final result is bit-identical to a never-capped run.
TEST(GovernorEngineTest, CappedRunResumesUnderLargerCapBitIdentically) {
  const Dataset ds = Small(7);
  const std::string dir = testing::FreshTempDir("governor_resume");

  EngineOptions base = Governed(Algorithm::kCrowdSkySerial);
  const auto full = RunSkylineQuery(ds, base);
  ASSERT_TRUE(full.ok());

  // Serial driver: one question per round, one $0.10 HIT per round.
  EngineOptions capped = base;
  capped.durability.dir = dir;
  capped.governor.max_cost_usd = 0.5;
  const auto partial = RunSkylineQuery(ds, capped);
  ASSERT_TRUE(partial.ok());
  ASSERT_EQ(partial->algo.termination.reason, TerminationReason::kDollarCap);
  EXPECT_EQ(partial->algo.questions, 5);  // 5 rounds * 1 HIT = the cap
  EXPECT_DOUBLE_EQ(partial->algo.termination.cost_spent_usd, 0.5);
  ASSERT_LT(partial->algo.questions, full->algo.questions);

  EngineOptions resumed = capped;
  resumed.durability.resume = true;
  resumed.governor.max_cost_usd = 1000.0;
  const auto r = RunSkylineQuery(ds, resumed);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->durability.resumed);
  EXPECT_TRUE(r->durability.truncated_termination);
  // Zero re-paid questions: every question the capped run paid for came
  // back from the journal (perfect oracle: one attempt per question).
  EXPECT_EQ(r->durability.replayed_pair_attempts, partial->algo.questions);
  EXPECT_EQ(r->algo.termination.reason, TerminationReason::kCompleted);
  EXPECT_EQ(r->algo.skyline, full->algo.skyline);
  EXPECT_EQ(r->algo.questions, full->algo.questions);
  EXPECT_EQ(r->algo.rounds, full->algo.rounds);
  EXPECT_EQ(r->algo.incomplete_tuples, 0);
  EXPECT_DOUBLE_EQ(r->cost_usd, full->cost_usd);

  // The partial-to-resumed pair satisfies the auditor's extension rules
  // (skyline shrinks only by undetermined tuples, ledgers grow, the
  // partial round history is a prefix of the resumed one).
  audit::AuditReport report;
  const audit::InvariantAuditor auditor;
  auditor.AuditResumeExtension(partial->algo, r->algo, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Same round trip through a parallel driver, where the dollar cap binds
// mid-round: the truncated final round of the capped journal must replay
// as an open tail and the resumed run must still match the uncapped one.
TEST(GovernorEngineTest, ParallelCappedResumeMatchesUncapped) {
  const Dataset ds = Small(9);
  const std::string dir = testing::FreshTempDir("governor_resume_sl");

  EngineOptions base = Governed(Algorithm::kParallelSL);
  const auto full = RunSkylineQuery(ds, base);
  ASSERT_TRUE(full.ok());

  EngineOptions capped = base;
  capped.durability.dir = dir;
  capped.governor.max_cost_usd = 0.5;
  const auto partial = RunSkylineQuery(ds, capped);
  ASSERT_TRUE(partial.ok());
  ASSERT_EQ(partial->algo.termination.reason, TerminationReason::kDollarCap);
  ASSERT_LT(partial->algo.questions, full->algo.questions);

  EngineOptions resumed = capped;
  resumed.durability.resume = true;
  resumed.governor.max_cost_usd = 1000.0;
  const auto r = RunSkylineQuery(ds, resumed);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->durability.resumed);
  EXPECT_EQ(r->durability.replayed_pair_attempts, partial->algo.questions);
  EXPECT_EQ(r->algo.skyline, full->algo.skyline);
  EXPECT_EQ(r->algo.questions, full->algo.questions);
  EXPECT_EQ(r->algo.rounds, full->algo.rounds);

  audit::AuditReport report;
  const audit::InvariantAuditor auditor;
  auditor.AuditResumeExtension(partial->algo, r->algo, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(GovernorEngineTest, ResumeUnderTooSmallCapIsRefused) {
  const Dataset ds = Small(7);
  const std::string dir = testing::FreshTempDir("governor_refuse");

  EngineOptions capped = Governed(Algorithm::kCrowdSkySerial);
  capped.durability.dir = dir;
  capped.governor.max_cost_usd = 0.5;
  ASSERT_TRUE(RunSkylineQuery(ds, capped).ok());

  // The journaled rounds alone already cost $0.50: a $0.30 resume could
  // never even re-admit the replayed questions, so the engine refuses it
  // up front instead of letting the auditor find cost_spent > cap later.
  EngineOptions resumed = capped;
  resumed.durability.resume = true;
  resumed.governor.max_cost_usd = 0.3;
  const auto r = RunSkylineQuery(ds, resumed);
  EXPECT_TRUE(r.status().IsFailedPrecondition()) << r.status().ToString();

  // An ungoverned resume of the same journal is fine (caps may be lifted).
  EngineOptions lifted = capped;
  lifted.durability.resume = true;
  lifted.governor = GovernorOptions{};
  EXPECT_TRUE(RunSkylineQuery(ds, lifted).ok());
}

TEST(GovernorEngineTest, PreCancelledTokenStopsBeforeTheFirstQuestion) {
  const Dataset ds = Small();
  CancellationToken token;
  token.Cancel();
  EngineOptions opt = Governed(Algorithm::kParallelSL);
  opt.governor.cancel = &token;
  const auto r = RunSkylineQuery(ds, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->algo.questions, 0);
  EXPECT_EQ(r->algo.termination.reason, TerminationReason::kCancelled);
  EXPECT_GT(r->algo.termination.denied_questions, 0);
  EXPECT_GT(r->algo.incomplete_tuples, 0);
  ExpectSkylineSupersetOfTruth(ds, r->algo.skyline);
}

TEST(GovernorEngineTest, GovernorRequiresCrowdSkyFamily) {
  const Dataset ds = Small();
  for (const Algorithm algo : {Algorithm::kBaselineSort,
                               Algorithm::kBitonicSort, Algorithm::kUnary}) {
    EngineOptions opt;
    opt.algorithm = algo;
    opt.governor.max_rounds = 5;
    EXPECT_TRUE(RunSkylineQuery(ds, opt).status().IsInvalidArgument())
        << AlgorithmName(algo);
  }
}

TEST(GovernorEngineTest, DeadlineWithoutWallClockOptInIsRejected) {
  EngineOptions opt = Governed(Algorithm::kParallelSL);
  opt.governor.deadline_seconds = 5.0;
  EXPECT_TRUE(RunSkylineQuery(Small(), opt).status().IsInvalidArgument());
}

TEST(GovernorEngineTest, NegativeLimitsAreRejected) {
  const Dataset ds = Small();
  EngineOptions opt = Governed(Algorithm::kParallelSL);
  opt.governor.max_cost_usd = -1.0;
  EXPECT_TRUE(RunSkylineQuery(ds, opt).status().IsInvalidArgument());
  opt = Governed(Algorithm::kParallelSL);
  opt.governor.max_rounds = -2;
  EXPECT_TRUE(RunSkylineQuery(ds, opt).status().IsInvalidArgument());
  opt = Governed(Algorithm::kParallelSL);
  opt.governor.deadline_seconds = -0.5;
  EXPECT_TRUE(RunSkylineQuery(ds, opt).status().IsInvalidArgument());
}

TEST(GovernorEngineTest, GovernorCountersSurfaceInObservability) {
  const Dataset ds = Small(3);
  EngineOptions opt = Governed(Algorithm::kParallelSL);
  opt.governor.max_rounds = 2;
  opt.obs.level = obs::ObsLevel::kCounters;
  const auto r = RunSkylineQuery(ds, opt);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->obs.CounterOr("governor.rounds_observed"), 2);
  EXPECT_EQ(r->obs.CounterOr("governor.stops"), 1);
  EXPECT_GT(r->obs.CounterOr("governor.denied_questions"), 0);
  const auto& gauges = r->obs.gauges;
  EXPECT_TRUE(std::any_of(gauges.begin(), gauges.end(), [](const auto& g) {
    return g.first == "governor.cost_spent_usd";
  }));
}

}  // namespace
}  // namespace crowdsky
