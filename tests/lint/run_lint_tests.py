#!/usr/bin/env python3
"""Test harness for scripts/crowdsky_lint.py.

Two modes, both registered with ctest (tests/lint/CMakeLists.txt):

  --fixtures DIR   Run the linter over every fixture in DIR and assert
                   that EXACTLY the rules named by its '// expect-lint:'
                   directive fire ('none' = the fixture must be clean).
                   Each fixture carries a '// lint-path:' directive giving
                   the virtual repo path the rules scope against.

  --repo           Run the linter over the real tree (via the build's
                   compile_commands.json) with --strict and assert zero
                   violations outside the allowlist. This is the same
                   invocation CI's static-analysis job uses, so a local
                   ctest run catches lint regressions before push.
"""

import argparse
import glob
import json
import os
import re
import subprocess
import sys
import tempfile

EXPECT_RE = re.compile(r"//\s*expect-lint:\s*(.+)$")


def parse_expectations(path):
    expected = None
    with open(path, encoding="utf-8") as f:
        for line in list(f)[:10]:
            m = EXPECT_RE.search(line)
            if m:
                spec = m.group(1).strip()
                expected = (set() if spec == "none" else
                            {s.strip() for s in spec.split(",") if s.strip()})
                break
    if expected is None:
        raise SystemExit(f"FAIL: {path} has no '// expect-lint:' directive")
    return expected


def run_linter(linter, extra):
    proc = subprocess.run(
        [sys.executable, linter] + extra,
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    return proc


def check_fixtures(linter, fixtures_dir):
    fixtures = sorted(glob.glob(os.path.join(fixtures_dir, "*.cc")))
    if not fixtures:
        print(f"FAIL: no fixtures found under {fixtures_dir}")
        return 1
    failures = 0
    for fixture in fixtures:
        expected = parse_expectations(fixture)
        proc = run_linter(linter, ["--files", fixture, "--fixture-mode",
                                   "--no-allowlist", "--format", "json"])
        if proc.returncode not in (0, 1):
            print(f"FAIL: {os.path.basename(fixture)}: linter exited "
                  f"{proc.returncode}:\n{proc.stderr}")
            failures += 1
            continue
        fired = {f["rule"] for f in json.loads(proc.stdout)["findings"]}
        if fired != expected:
            print(f"FAIL: {os.path.basename(fixture)}: expected "
                  f"{sorted(expected) or ['none']}, got "
                  f"{sorted(fired) or ['none']}")
            for f in json.loads(proc.stdout)["findings"]:
                print(f"    {f['path']}:{f['line']}: [{f['rule']}] "
                      f"{f['message']}")
            failures += 1
        else:
            print(f"ok: {os.path.basename(fixture)} -> "
                  f"{sorted(fired) or ['clean']}")
    print(f"{len(fixtures) - failures}/{len(fixtures)} fixtures passed")
    return 1 if failures else 0


def check_scoped_allowlist(linter, fixtures_dir):
    """Asserts the ':token' scoped-entry contract: a scoped allowlist
    entry suppresses exactly the finding that names its token and leaves
    every other finding in the same file live."""
    fixture = os.path.join(fixtures_dir, "flt009_scoped_two_accumulators.cc")
    fd, allow = tempfile.mkstemp(suffix=".txt", text=True)
    try:
        with os.fdopen(fd, "w") as f:
            f.write("CS-FLT009 src/skyline/dominance_scores.cc:score"
                    "  # fixture: the score accumulator is blessed\n")
        proc = run_linter(linter, ["--files", fixture, "--fixture-mode",
                                   "--allowlist", allow, "--format", "json"])
        if proc.returncode != 1:
            print(f"FAIL: scoped allowlist: linter exited "
                  f"{proc.returncode} (want 1, 'drift' must stay live):\n"
                  f"{proc.stderr}")
            return 1
        doc = json.loads(proc.stdout)
        live = [f["message"] for f in doc["findings"]]
        if (doc["suppressed"] != 1 or len(live) != 1
                or "'drift'" not in live[0]):
            print(f"FAIL: scoped allowlist: want exactly 'score' "
                  f"suppressed and 'drift' live, got suppressed="
                  f"{doc['suppressed']}, live={live}")
            return 1
        print("ok: scoped allowlist entry suppresses only its token")
        return 0
    finally:
        os.unlink(allow)


def check_repo(linter, compile_commands):
    proc = run_linter(linter, ["--compile-commands", compile_commands,
                               "--strict"])
    sys.stdout.write(proc.stdout)
    sys.stderr.write(proc.stderr)
    if proc.returncode != 0:
        print(f"FAIL: strict repo lint exited {proc.returncode}")
        return 1
    print("ok: repo is lint-clean under --strict")
    return 0


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--linter", required=True)
    parser.add_argument("--fixtures")
    parser.add_argument("--repo", action="store_true")
    parser.add_argument("--compile-commands")
    args = parser.parse_args()
    if args.fixtures:
        rc = check_fixtures(args.linter, args.fixtures)
        return check_scoped_allowlist(args.linter, args.fixtures) or rc
    if args.repo:
        if not args.compile_commands:
            raise SystemExit("--repo needs --compile-commands")
        return check_repo(args.linter, args.compile_commands)
    raise SystemExit("pass --fixtures DIR or --repo")


if __name__ == "__main__":
    sys.exit(main())
