// lint-path: src/sched/dispatch_queue_guarded.h
// expect-lint: none

#include <deque>
#include <functional>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace crowdsky {

class DispatchQueue {
 public:
  void Push(std::function<void()> fn) {
    MutexLock lock(mutex_);
    items_.push_back(std::move(fn));
  }

 private:
  Mutex mutex_;
  std::deque<std::function<void()>> items_ CROWDSKY_GUARDED_BY(mutex_);
};

}  // namespace crowdsky
