// lint-path: src/common/thread_pool.cc
// expect-lint: none
//
// The pool is the one sanctioned home of raw threads.

#include <thread>
#include <vector>

namespace crowdsky {

class ThreadPool {
 private:
  std::vector<std::thread> workers_;
};

}  // namespace crowdsky
