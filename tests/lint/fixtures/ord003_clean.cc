// lint-path: src/audit/ledger_report_sorted.cc
// expect-lint: none
//
// Point lookups into an unordered map are fine — only iteration is
// order-dependent. Ordered iteration goes through std::map.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace crowdsky::audit {

std::vector<std::string> DescribeCounts(
    const std::vector<std::string>& keys) {
  std::unordered_map<std::string, int64_t> counts;
  std::map<std::string, int64_t> ordered;
  for (const auto& key : keys) {
    ordered[key] = counts.count(key) ? counts.at(key) : 0;
  }
  std::vector<std::string> lines;
  for (const auto& [key, value] : ordered) {
    lines.push_back(key + "=" + std::to_string(value));
  }
  return lines;
}

}  // namespace crowdsky::audit
