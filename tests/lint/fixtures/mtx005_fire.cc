// lint-path: src/crowd/answer_box.h
// expect-lint: CS-MTX005

#include <condition_variable>

namespace crowdsky {

class AnswerBox {
 private:
  // Raw std::condition_variable_any is invisible to -Wthread-safety;
  // crowdsky::CondVar (common/mutex.h) is the annotated wrapper.
  std::condition_variable_any cv_;
};

}  // namespace crowdsky
