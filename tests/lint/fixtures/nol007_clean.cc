// lint-path: src/skyline/dominance_justified.cc
// expect-lint: none

namespace crowdsky {

int Compare(int a, int b) {
  int r = a - b;  // NOLINT(bugprone-narrowing-conversions): ranks fit in 16 bits
  return r;
}

int Widen(short v) {
  // The product of two shorts fits comfortably in int here.
  // NOLINTNEXTLINE(bugprone-misplaced-widening-cast): see above
  return (int)(v * 2);
}

}  // namespace crowdsky
