// lint-path: src/dist/coordinator.cc
// expect-lint: CS-CLK002
//
// The supervisor allowlist entry is scoped to src/dist/supervisor.cc (and
// to the one 'system_clock' token there); a wall-clock read anywhere else
// in src/dist/ must still fail the build — the coordinator and the merge
// are on the deterministic path.

#include <chrono>
#include <cstdint>

namespace crowdsky::dist {

int64_t CoordinatorWallClockNs() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace crowdsky::dist
