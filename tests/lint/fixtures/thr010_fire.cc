// lint-path: src/crowd/batch_runner.cc
// expect-lint: CS-THR010

#include <thread>

namespace crowdsky {

void RunDetached(void (*fn)()) {
  std::thread t(fn);
  t.detach();
}

}  // namespace crowdsky
