// lint-path: src/common/mutex.h
// expect-lint: none
//
// src/common/mutex.h is the one sanctioned home of the raw std types —
// the wrappers have to wrap something.

#include <condition_variable>
#include <mutex>

namespace crowdsky {

class Mutex {
 private:
  std::mutex mu_;
};

}  // namespace crowdsky
