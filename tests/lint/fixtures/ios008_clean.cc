// lint-path: bench/loader_debug_main.cc
// expect-lint: none
//
// CS-IOS008 polices library code only: bench/ mains print to stdout by
// design.

#include <iostream>

int main() {
  std::cout << "rows loaded\n";
  return 0;
}
