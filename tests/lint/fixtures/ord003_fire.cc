// lint-path: src/audit/ledger_report.cc
// expect-lint: CS-ORD003

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace crowdsky::audit {

std::vector<std::string> DescribeCounts() {
  std::unordered_map<std::string, int64_t> counts;
  counts["paid"] = 3;
  std::vector<std::string> lines;
  // Hash order leaks straight into the report: the bug CS-ORD003 exists
  // to catch.
  for (const auto& [key, value] : counts) {
    lines.push_back(key + "=" + std::to_string(value));
  }
  return lines;
}

}  // namespace crowdsky::audit
