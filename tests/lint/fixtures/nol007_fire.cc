// lint-path: src/skyline/dominance_extra.cc
// expect-lint: CS-NOL007

namespace crowdsky {

int Compare(int a, int b) {
  int r = a - b;  // NOLINT
  return r;
}

int Widen(short v) {
  // NOLINTNEXTLINE(bugprone-misplaced-widening-cast)
  return (int)(v * 2);
}

}  // namespace crowdsky
