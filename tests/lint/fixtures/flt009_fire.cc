// lint-path: src/persist/cost_ledger.cc
// expect-lint: CS-FLT009

#include <vector>

namespace crowdsky::persist {

double TotalSpend(const std::vector<double>& payments) {
  double total = 0.0;
  for (double p : payments) {
    total += p;  // accumulated rounding error drifts the audited ledger
  }
  return total;
}

}  // namespace crowdsky::persist
