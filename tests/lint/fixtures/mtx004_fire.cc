// lint-path: src/sched/dispatch_queue.h
// expect-lint: CS-MTX004

#include <deque>
#include <functional>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace crowdsky {

class DispatchQueue {
 public:
  void Push(std::function<void()> fn) {
    MutexLock lock(mutex_);
    items_.push_back(std::move(fn));
  }

 private:
  // No CROWDSKY_GUARDED_BY names mutex_ anywhere in this file, so the
  // capability analysis has nothing to enforce: CS-MTX004 fires.
  Mutex mutex_;
  std::deque<std::function<void()>> items_;
};

}  // namespace crowdsky
