// lint-path: src/obs/trace.cc
// expect-lint: none
//
// The trace collector owns wall-clock reads; CS-CLK002 exempts
// src/obs/trace.{h,cc}. steady_clock elsewhere is also fine: the rule
// targets wall-clock sources, not monotonic ones.

#include <chrono>
#include <cstdint>

namespace crowdsky::obs {

int64_t WallStartNanos() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace crowdsky::obs
