// lint-path: src/crowd/worker_sim.cc
// expect-lint: CS-RNG001

#include <random>

namespace crowdsky {

int FlipWorkerCoin(double error_rate) {
  static std::mt19937 gen(42);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(gen) < error_rate ? 0 : 1;
}

}  // namespace crowdsky
