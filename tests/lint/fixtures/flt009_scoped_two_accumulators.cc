// lint-path: src/skyline/dominance_scores.cc
// expect-lint: CS-FLT009
//
// Companion to the scoped-allowlist check in run_lint_tests.py: that
// check blesses the 'score' accumulator with a 'path:score' entry and
// asserts 'drift' still fires. Under the plain fixture sweep
// (--no-allowlist) both accumulators fire, which is what the
// expect-lint directive above asserts.

#include <vector>

namespace crowdsky {

double ScoreRow(const std::vector<double>& row) {
  double score = 0.0;
  for (const double v : row) score += v;  // monotone sort key, not a ledger
  return score;
}

double DriftRow(const std::vector<double>& row) {
  double drift = 0.0;
  for (const double v : row) drift += v;
  return drift;
}

}  // namespace crowdsky
