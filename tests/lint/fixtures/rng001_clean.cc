// lint-path: src/common/random.h
// expect-lint: none
//
// The sanctioned home of the stdlib engine: CS-RNG001 exempts exactly
// this file.

#include <cstdint>
#include <random>

namespace crowdsky {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}
  uint64_t Next() { return engine_(); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace crowdsky
