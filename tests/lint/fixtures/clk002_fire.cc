// lint-path: src/persist/journal_meta.cc
// expect-lint: CS-CLK002

#include <chrono>
#include <cstdint>

namespace crowdsky::persist {

int64_t StampRecord() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace crowdsky::persist
