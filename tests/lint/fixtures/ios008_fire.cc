// lint-path: src/data/loader_debug.cc
// expect-lint: CS-IOS008

#include <iostream>

namespace crowdsky::data {

void DumpRow(int id) { std::cout << "row " << id << "\n"; }

}  // namespace crowdsky::data
