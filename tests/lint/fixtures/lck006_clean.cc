// lint-path: src/obs/metrics_locked.cc
// expect-lint: none

#include "common/mutex.h"

namespace crowdsky::obs {

class Registry {
 public:
  void Bump() {
    MutexLock lock(mutex_);
    ++count_;
  }

 private:
  Mutex mutex_;
  long count_ CROWDSKY_GUARDED_BY(mutex_) = 0;
};

}  // namespace crowdsky::obs
