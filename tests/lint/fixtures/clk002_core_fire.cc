// lint-path: src/core/engine.cc
// expect-lint: CS-CLK002
//
// The governor allowlist entry is scoped to src/core/governor.cc (and to
// the one 'system_clock' token there); a wall-clock read anywhere else in
// src/core/ must still fail the build.

#include <chrono>
#include <cstdint>

namespace crowdsky {

int64_t EngineWallClockNs() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             now.time_since_epoch())
      .count();
}

}  // namespace crowdsky
