// lint-path: src/obs/metrics_extra.cc
// expect-lint: CS-LCK006

#include "common/mutex.h"

namespace crowdsky::obs {

class Registry {
 public:
  void Bump() {
    // std::scoped_lock over a crowdsky::Mutex still compiles (the wrapper
    // is BasicLockable) but the acquisition bypasses the annotated
    // MutexLock, so the analysis cannot see it.
    std::scoped_lock lock(mutex_);
    ++count_;
  }

 private:
  Mutex mutex_;
  long count_ CROWDSKY_GUARDED_BY(mutex_) = 0;
};

}  // namespace crowdsky::obs
