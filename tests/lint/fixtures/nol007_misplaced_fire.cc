// lint-path: src/skyline/dominance_misplaced.cc
// expect-lint: CS-NOL007

namespace crowdsky {

int Widen(short v) {
  // NOLINTNEXTLINE(bugprone-misplaced-widening-cast): the product fits —
  // this suppression never reaches the cast because the rationale
  // continues on the line below it, which is what clang-tidy suppresses.
  return (int)(v * 2);
}

}  // namespace crowdsky
