// lint-path: src/crowd/cost_model.h
// expect-lint: none
//
// cost_model.h is the one sanctioned home of dollar arithmetic: the
// ledger counts integers and converts exactly once, here.

#include <cstdint>

namespace crowdsky {

class AmtCostModel {
 public:
  double TotalDollars(int64_t questions) const {
    double total = 0.0;
    total += static_cast<double>(questions) * price_per_question_;
    return total;
  }

 private:
  double price_per_question_ = 0.05;
};

}  // namespace crowdsky
