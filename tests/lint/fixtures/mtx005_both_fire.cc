// lint-path: src/crowd/answer_box_mutex.h
// expect-lint: CS-MTX004, CS-MTX005
//
// A raw std::mutex member trips both rules at once: it is the wrong type
// (CS-MTX005) and it guards nothing on paper (CS-MTX004). The runner
// asserts the exact set, so this fixture proves multi-rule reporting.

#include <mutex>

namespace crowdsky {

class AnswerBox {
 private:
  std::mutex mu_;
};

}  // namespace crowdsky
