#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/observer.h"
#include "testing/temp_dir.h"

namespace crowdsky::obs {
namespace {

TEST(CounterTest, AddsAndReads) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(CounterTest, ConcurrentAddsAllLand) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), int64_t{kThreads} * kPerThread);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge g;
  g.Set(3.25);
  g.Set(-1.5);
  EXPECT_EQ(g.value(), -1.5);
}

TEST(HistogramTest, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(Histogram::BucketIndex(0), 0);
  EXPECT_EQ(Histogram::BucketIndex(1), 0);
  EXPECT_EQ(Histogram::BucketIndex(2), 1);
  EXPECT_EQ(Histogram::BucketIndex(3), 2);
  EXPECT_EQ(Histogram::BucketIndex(4), 2);
  EXPECT_EQ(Histogram::BucketIndex(5), 3);
  // Past the last finite bound everything lands in the +Inf bucket.
  EXPECT_EQ(Histogram::BucketIndex(int64_t{1} << 40),
            Histogram::kBuckets - 1);
}

TEST(HistogramTest, CountSumAndBuckets) {
  Histogram h;
  h.Observe(1);
  h.Observe(1);
  h.Observe(5);
  h.Observe(-7);  // clamped to 0
  EXPECT_EQ(h.count(), 4);
  EXPECT_EQ(h.sum(), 7);
  EXPECT_EQ(h.bucket(0), 3);  // 1, 1, 0
  EXPECT_EQ(h.bucket(3), 1);  // 5 -> le 8
}

TEST(MetricRegistryTest, FindOrCreateReturnsStablePointers) {
  MetricRegistry reg;
  Counter* a = reg.FindOrCreateCounter("crowdsky.rounds");
  // Force rebalancing-ish growth; node-based map keeps pointers stable.
  for (int i = 0; i < 100; ++i) {
    reg.FindOrCreateCounter("c." + std::to_string(i));
  }
  EXPECT_EQ(reg.FindOrCreateCounter("crowdsky.rounds"), a);
  a->Add(3);
  EXPECT_EQ(reg.CounterValue("crowdsky.rounds"), 3);
  EXPECT_TRUE(reg.HasCounter("crowdsky.rounds"));
  EXPECT_FALSE(reg.HasCounter("crowdsky.missing"));
  EXPECT_EQ(reg.CounterValue("crowdsky.missing"), 0);
}

TEST(MetricRegistryTest, SamplesAreSortedAndFlattenHistograms) {
  MetricRegistry reg;
  reg.FindOrCreateCounter("b.counter")->Add(2);
  reg.FindOrCreateCounter("a.counter")->Add(1);
  Histogram* h = reg.FindOrCreateHistogram("a.hist");
  h->Observe(3);
  h->Observe(5);
  const auto samples = reg.CounterSamples();
  ASSERT_EQ(samples.size(), 4u);
  EXPECT_EQ(samples[0].first, "a.counter");
  EXPECT_EQ(samples[1].first, "a.hist_count");
  EXPECT_EQ(samples[1].second, 2);
  EXPECT_EQ(samples[2].first, "a.hist_sum");
  EXPECT_EQ(samples[2].second, 8);
  EXPECT_EQ(samples[3].first, "b.counter");
}

TEST(MetricRegistryTest, ConcurrentFindOrCreateIsSafe) {
  MetricRegistry reg;
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg] {
      for (int i = 0; i < 500; ++i) {
        reg.FindOrCreateCounter("shared.counter")->Increment();
        reg.FindOrCreateCounter("k." + std::to_string(i % 17));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(reg.CounterValue("shared.counter"), kThreads * 500);
}

TEST(MetricRegistryTest, PrometheusTextFormat) {
  MetricRegistry reg;
  reg.FindOrCreateCounter("crowdsky.pair_attempts")->Add(7);
  reg.FindOrCreateGauge("crowdsky.cost_usd")->Set(1.25);
  Histogram* h = reg.FindOrCreateHistogram("crowdsky.round_questions");
  h->Observe(1);
  h->Observe(3);
  const std::string text = reg.PrometheusText();
  // Names sanitized to [a-zA-Z0-9_:], one TYPE line per metric.
  EXPECT_NE(text.find("# TYPE crowdsky_pair_attempts counter"),
            std::string::npos);
  EXPECT_NE(text.find("crowdsky_pair_attempts 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crowdsky_cost_usd gauge"), std::string::npos);
  EXPECT_NE(text.find("crowdsky_cost_usd 1.25"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crowdsky_round_questions histogram"),
            std::string::npos);
  // Cumulative le buckets: the le="2" bucket holds both observations, and
  // the +Inf bucket equals the count.
  EXPECT_NE(text.find("crowdsky_round_questions_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("crowdsky_round_questions_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("crowdsky_round_questions_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("crowdsky_round_questions_count 2"),
            std::string::npos);
  EXPECT_NE(text.find("crowdsky_round_questions_sum 4"), std::string::npos);
}

TEST(MetricRegistryTest, PrometheusDumpIsDeterministic) {
  auto build = [] {
    auto reg = std::make_unique<MetricRegistry>();
    reg->FindOrCreateCounter("z.last")->Add(1);
    reg->FindOrCreateCounter("a.first")->Add(2);
    reg->FindOrCreateGauge("m.gauge")->Set(0.5);
    return reg;
  };
  EXPECT_EQ(build()->PrometheusText(), build()->PrometheusText());
}

TEST(MetricRegistryTest, WritePrometheusTextRoundTrips) {
  MetricRegistry reg;
  reg.FindOrCreateCounter("crowdsky.rounds")->Add(5);
  const std::string path =
      crowdsky::testing::FreshTempPath("metrics.prom");
  ASSERT_TRUE(WritePrometheusText(path, reg).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, reg.PrometheusText());
}

TEST(MetricRegistryTest, WritePrometheusTextFailsOnBadPath) {
  MetricRegistry reg;
  EXPECT_FALSE(
      WritePrometheusText("/nonexistent-dir/x/metrics.prom", reg).ok());
}

TEST(NullSafeHelpersTest, NoOpOnNull) {
  Add(static_cast<Counter*>(nullptr), 5);           // must not crash
  Observe(static_cast<Histogram*>(nullptr), 5);     // must not crash
  Counter c;
  Add(&c, 5);
  EXPECT_EQ(c.value(), 5);
  Histogram h;
  Observe(&h, 2);
  EXPECT_EQ(h.count(), 1);
}

TEST(RunObserverTest, DisabledHandsOutNullHandles) {
  RunObserver obs(ObsLevel::kDisabled);
  EXPECT_FALSE(obs.counters_enabled());
  EXPECT_FALSE(obs.tracing_enabled());
  EXPECT_EQ(obs.counter("crowdsky.rounds"), nullptr);
  EXPECT_EQ(obs.histogram("crowdsky.round_questions"), nullptr);
  EXPECT_EQ(obs.gauge("crowdsky.cost_usd"), nullptr);
  EXPECT_TRUE(obs.metrics().CounterSamples().empty());
}

TEST(RunObserverTest, CountersLevelCountsButDoesNotTrace) {
  RunObserver obs(ObsLevel::kCounters);
  EXPECT_TRUE(obs.counters_enabled());
  EXPECT_FALSE(obs.tracing_enabled());
  Counter* c = obs.counter("crowdsky.rounds");
  ASSERT_NE(c, nullptr);
  c->Add(2);
  EXPECT_EQ(obs.metrics().CounterValue("crowdsky.rounds"), 2);
  {
    TraceSpan span = obs.Span("should.not.record");
  }
  EXPECT_EQ(obs.trace().event_count(), 0);
}

TEST(RunObserverTest, FullLevelTraces) {
  RunObserver obs(ObsLevel::kFull);
  EXPECT_TRUE(obs.tracing_enabled());
  {
    TraceSpan span = obs.Span("work");
  }
  EXPECT_EQ(obs.trace().event_count(), 1);
}

TEST(ObsLevelTest, Names) {
  EXPECT_STREQ(ObsLevelName(ObsLevel::kDisabled), "disabled");
  EXPECT_STREQ(ObsLevelName(ObsLevel::kCounters), "counters");
  EXPECT_STREQ(ObsLevelName(ObsLevel::kFull), "full");
}

}  // namespace
}  // namespace crowdsky::obs
