#include "obs/trace.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "testing/temp_dir.h"

namespace crowdsky::obs {
namespace {

TEST(TraceSpanTest, DefaultConstructedIsNoOp) {
  {
    TraceSpan span;           // disabled-mode span: no collector
    span.AddArg("ignored", 1);
    span.End();
    span.End();               // idempotent
  }
  SUCCEED();
}

TEST(TraceSpanTest, RecordsOneEventWithDuration) {
  TraceCollector collector;
  {
    TraceSpan span(&collector, "work");
    span.AddArg("items", 42);
  }
  const std::vector<TraceEvent> events = collector.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_GE(events[0].start_ns, 0);
  EXPECT_GE(events[0].dur_ns, 0);
  EXPECT_EQ(events[0].args_json, "\"items\": 42");
}

TEST(TraceSpanTest, ExplicitEndStopsTheClock) {
  TraceCollector collector;
  TraceSpan span(&collector, "early");
  span.End();
  EXPECT_EQ(collector.event_count(), 1);
  span.End();  // second End records nothing
  EXPECT_EQ(collector.event_count(), 1);
}

TEST(TraceSpanTest, MoveTransfersOwnership) {
  TraceCollector collector;
  {
    TraceSpan outer;
    {
      TraceSpan inner(&collector, "moved");
      outer = std::move(inner);
    }  // inner destroyed moved-from: no event yet
    EXPECT_EQ(collector.event_count(), 0);
  }
  EXPECT_EQ(collector.event_count(), 1);
}

TEST(TraceCollectorTest, NestedSpansOrderedByStart) {
  TraceCollector collector;
  {
    TraceSpan run(&collector, "run");
    {
      TraceSpan phase(&collector, "phase");
      TraceSpan rpc(&collector, "rpc");
    }
  }
  const std::vector<TraceEvent> events = collector.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  // Sorted by (start, -dur): the enclosing span comes first.
  EXPECT_EQ(events[0].name, "run");
  EXPECT_GE(events[0].dur_ns, events[1].dur_ns);
  EXPECT_LE(events[0].start_ns, events[1].start_ns);
  EXPECT_LE(events[1].start_ns, events[2].start_ns);
}

TEST(TraceCollectorTest, PerThreadBuffersGetDistinctTids) {
  TraceCollector collector;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&collector] {
      for (int i = 0; i < 100; ++i) {
        TraceSpan span(&collector, "threaded");
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(collector.event_count(), 400);
  const std::vector<TraceEvent> events = collector.Snapshot();
  bool multiple_tids = false;
  for (const TraceEvent& e : events) {
    if (e.tid != events[0].tid) multiple_tids = true;
  }
  EXPECT_TRUE(multiple_tids);
}

TEST(TraceCollectorTest, TwoCollectorsOnOneThreadDoNotMix) {
  TraceCollector a;
  TraceCollector b;
  { TraceSpan span(&a, "into_a"); }
  { TraceSpan span(&b, "into_b"); }
  { TraceSpan span(&a, "into_a"); }
  EXPECT_EQ(a.event_count(), 2);
  EXPECT_EQ(b.event_count(), 1);
}

TEST(ChromeTraceJsonTest, EmitsCompleteEvents) {
  TraceCollector collector;
  {
    TraceSpan span(&collector, "algorithm");
    span.AddArg("n", 10);
  }
  const std::string json = ChromeTraceJson(collector);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"algorithm\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": "), std::string::npos);
  EXPECT_NE(json.find("\"dur\": "), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"args\": {\"n\": 10}"), std::string::npos);
}

TEST(ChromeTraceJsonTest, EscapesNames) {
  TraceCollector collector;
  collector.Record("quo\"te\\slash", 0, 10, "");
  const std::string json = ChromeTraceJson(collector);
  EXPECT_NE(json.find("quo\\\"te\\\\slash"), std::string::npos);
}

TEST(ChromeTraceJsonTest, EmptyCollectorIsValidJson) {
  TraceCollector collector;
  const std::string json = ChromeTraceJson(collector);
  EXPECT_NE(json.find("\"traceEvents\": []"), std::string::npos);
}

TEST(WriteChromeTraceTest, WritesFile) {
  TraceCollector collector;
  { TraceSpan span(&collector, "io"); }
  const std::string path = crowdsky::testing::FreshTempPath("trace.json");
  ASSERT_TRUE(WriteChromeTrace(path, collector).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, ChromeTraceJson(collector));
}

TEST(WriteChromeTraceTest, FailsOnBadPath) {
  TraceCollector collector;
  EXPECT_FALSE(
      WriteChromeTrace("/nonexistent-dir/x/trace.json", collector).ok());
}

}  // namespace
}  // namespace crowdsky::obs
