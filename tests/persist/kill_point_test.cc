// Kill-point replay harness: each CrowdSky driver runs as a real child
// process whose journal writer _Exit(137)s after a seeded number of
// durable records (CROWDSKY_JOURNAL_KILL_AFTER). The parent then resumes
// the run from the half-written directory and asserts the final skyline,
// paid-question count, round history, and cost are bit-identical to an
// uninterrupted run — with nothing re-paid and the invariant auditor's
// journal rules holding on the resumed half.
//
// This binary owns main(): with --crowdsky_child it IS the workload
// (re-exec'd via /proc/self/exe); otherwise it runs the gtest suite.
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/generator.h"
#include "testing/temp_dir.h"

namespace crowdsky {

// Not in the anonymous namespace: main() below re-enters here in child
// mode.
int RunChildMode(int argc, char** argv);

namespace {

constexpr uint64_t kOffsetSeed = 0xC0FFEE5EEDULL;
constexpr int kCardinality = 40;
constexpr int kKillExitCode = 137;

Algorithm AlgorithmFromName(const std::string& name) {
  if (name == "serial") return Algorithm::kCrowdSkySerial;
  if (name == "dset") return Algorithm::kParallelDSet;
  CROWDSKY_CHECK_MSG(name == "sl", "unknown child algorithm");
  return Algorithm::kParallelSL;
}

}  // namespace

// The child workload: one durable engine run that prints a single
// machine-parseable RESULT line and exits 0 (unless the kill hook fires
// first).
int RunChildMode(int argc, char** argv) {
  CROWDSKY_CHECK_MSG(argc == 7,
                     "--crowdsky_child <algo> <dir> <seed> <fault> <resume>");
  const std::string algo_name = argv[2];
  const std::string dir = argv[3];
  const uint64_t seed = std::strtoull(argv[4], nullptr, 10);
  const double fault_rate = std::atof(argv[5]);
  const bool resume = std::atoi(argv[6]) != 0;

  GeneratorOptions gen;
  gen.cardinality = kCardinality;
  gen.num_known = 2;
  gen.num_crowd = 2;
  gen.seed = seed;
  const Dataset data = GenerateDataset(gen).ValueOrDie();

  EngineOptions opt;
  opt.algorithm = AlgorithmFromName(algo_name);
  opt.seed = seed * 2654435761u + 1;
  opt.crowdsky.audit = true;  // journal/ledger rules checked at the end
  opt.durability.dir = dir;
  opt.durability.resume = resume;
  opt.durability.sync = persist::SyncMode::kFlush;
  opt.durability.checkpoint_every_rounds = 3;
  if (fault_rate > 0.0) {
    opt.oracle = OracleKind::kMarketplace;
    opt.marketplace.faults.transient_error_rate = fault_rate;
    opt.marketplace.faults.hit_expiration_rate = fault_rate / 2;
    opt.marketplace.faults.worker_no_show_rate = fault_rate;
    opt.marketplace.faults.straggler_rate = fault_rate / 2;
  }

  const auto r = RunSkylineQuery(data, opt);
  if (!r.ok()) {
    std::fprintf(stderr, "child run failed: %s\n",
                 r.status().ToString().c_str());
    return 3;
  }
  std::string skyline;
  for (const int t : r->algo.skyline) {
    if (!skyline.empty()) skyline += ',';
    skyline += std::to_string(t);
  }
  std::printf(
      "RESULT skyline=%s questions=%lld rounds=%lld retries=%lld "
      "cost=%.17g replayed=%lld records=%lld torn=%d ckpt=%d\n",
      skyline.c_str(), static_cast<long long>(r->algo.questions),
      static_cast<long long>(r->algo.rounds),
      static_cast<long long>(r->algo.retries), r->cost_usd,
      static_cast<long long>(r->durability.replayed_pair_attempts),
      static_cast<long long>(r->durability.journal_records),
      r->durability.recovered_torn_tail ? 1 : 0,
      r->durability.used_checkpoint ? 1 : 0);
  return 0;
}

namespace {

struct ChildRun {
  int exit_code = -1;          ///< WEXITSTATUS, or -signal when signalled
  std::map<std::string, std::string> result;  ///< parsed RESULT k=v pairs
  std::string output;
};

std::string ResultField(const ChildRun& run, const std::string& key) {
  const auto it = run.result.find(key);
  return it == run.result.end() ? std::string() : it->second;
}

ChildRun RunChild(const std::string& algo, const std::string& dir,
                  uint64_t seed, double fault_rate, bool resume,
                  long kill_after = 0, long kill_tear = 0) {
  char exe[4096];
  const ssize_t len = readlink("/proc/self/exe", exe, sizeof(exe) - 1);
  CROWDSKY_CHECK(len > 0);
  exe[len] = '\0';
  std::string cmd = "CROWDSKY_JOURNAL_KILL_AFTER=" +
                    std::to_string(kill_after) +
                    " CROWDSKY_JOURNAL_KILL_TEAR=" +
                    std::to_string(kill_tear) + " '" + std::string(exe) +
                    "' --crowdsky_child " + algo + " '" + dir + "' " +
                    std::to_string(seed) + " " + std::to_string(fault_rate) +
                    " " + (resume ? "1" : "0") + " 2>&1";
  ChildRun out;
  FILE* pipe = popen(cmd.c_str(), "r");
  CROWDSKY_CHECK(pipe != nullptr);
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    out.output += buffer;
  }
  const int status = pclose(pipe);
  if (WIFEXITED(status)) {
    out.exit_code = WEXITSTATUS(status);
  } else if (WIFSIGNALED(status)) {
    out.exit_code = -WTERMSIG(status);
  }
  const size_t pos = out.output.rfind("RESULT ");
  if (pos != std::string::npos) {
    const size_t end = out.output.find('\n', pos);
    std::istringstream line(out.output.substr(pos + 7, end - pos - 7));
    std::string token;
    while (line >> token) {
      const size_t eq = token.find('=');
      if (eq != std::string::npos) {
        out.result[token.substr(0, eq)] = token.substr(eq + 1);
      }
    }
  }
  return out;
}

// ctest runs each parameterized instance as its own process, in
// parallel; folding the running test's unique name into the directory
// keeps concurrent instances (e.g. sl vs sl_faulty, which share the
// algo string) from stomping each other's journals.
std::string FreshDir(const std::string& name) {
  return crowdsky::testing::FreshTempDir(name);
}

/// `count` distinct seeded kill offsets in [1, records - 1].
std::vector<long> SeededOffsets(uint64_t seed, long records, int count) {
  CROWDSKY_CHECK(records > count);
  uint64_t state = seed;
  std::set<long> offsets;
  while (static_cast<int>(offsets.size()) < count) {
    offsets.insert(1 + static_cast<long>(
                           SplitMix64(&state) %
                           static_cast<uint64_t>(records - 1)));
  }
  return {offsets.begin(), offsets.end()};
}

void ExpectSameResult(const ChildRun& base, const ChildRun& got) {
  for (const char* key :
       {"skyline", "questions", "rounds", "retries", "cost", "records"}) {
    EXPECT_EQ(ResultField(got, key), ResultField(base, key)) << key;
  }
}

class KillPointTest
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(KillPointTest, SeededKillsResumeBitIdentically) {
  const auto [algo, fault_rate] = GetParam();
  const uint64_t seed = 5;
  const ChildRun baseline = RunChild(
      algo, FreshDir(std::string("kp_base_") + algo), seed, fault_rate,
      /*resume=*/false);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.output;
  const long records = std::atol(ResultField(baseline, "records").c_str());
  ASSERT_GT(records, 4) << baseline.output;

  for (const long offset : SeededOffsets(kOffsetSeed, records, 3)) {
    SCOPED_TRACE(std::string(algo) + ": kill after record " +
                 std::to_string(offset));
    const std::string dir =
        FreshDir(std::string("kp_") + algo + "_" + std::to_string(offset));
    const ChildRun killed = RunChild(algo, dir, seed, fault_rate,
                                     /*resume=*/false, offset);
    EXPECT_EQ(killed.exit_code, kKillExitCode) << killed.output;
    EXPECT_TRUE(killed.result.empty()) << "killed child printed a result";

    const ChildRun resumed =
        RunChild(algo, dir, seed, fault_rate, /*resume=*/true);
    ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
    ExpectSameResult(baseline, resumed);
    EXPECT_GT(std::atol(ResultField(resumed, "replayed").c_str()), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDrivers, KillPointTest,
    ::testing::Values(std::pair<const char*, double>{"serial", 0.0},
                      std::pair<const char*, double>{"dset", 0.0},
                      std::pair<const char*, double>{"sl", 0.0},
                      std::pair<const char*, double>{"sl", 0.08}),
    [](const ::testing::TestParamInfo<std::pair<const char*, double>>&
           param) {
      return std::string(param.param.first) +
             (param.param.second > 0 ? "_faulty" : "");
    });

TEST(KillPointEdgeTest, DoubleKillStillConverges) {
  const uint64_t seed = 11;
  const ChildRun baseline =
      RunChild("dset", FreshDir("kp_double_base"), seed, 0.0, false);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.output;
  const std::string dir = FreshDir("kp_double");
  const ChildRun first = RunChild("dset", dir, seed, 0.0, false,
                                  /*kill_after=*/4);
  EXPECT_EQ(first.exit_code, kKillExitCode) << first.output;
  // The resumed process is killed too — after it appends 3 *new* records.
  const ChildRun second = RunChild("dset", dir, seed, 0.0, true,
                                   /*kill_after=*/3);
  EXPECT_EQ(second.exit_code, kKillExitCode) << second.output;
  const ChildRun final_run = RunChild("dset", dir, seed, 0.0, true);
  ASSERT_EQ(final_run.exit_code, 0) << final_run.output;
  ExpectSameResult(baseline, final_run);
}

TEST(KillPointEdgeTest, TornInFlightRecordIsDiscardedOnResume) {
  const uint64_t seed = 17;
  const ChildRun baseline =
      RunChild("sl", FreshDir("kp_torn_base"), seed, 0.0, false);
  ASSERT_EQ(baseline.exit_code, 0) << baseline.output;
  const std::string dir = FreshDir("kp_torn");
  // Die with 23 garbage bytes of a half-written record on disk.
  const ChildRun killed = RunChild("sl", dir, seed, 0.0, false,
                                   /*kill_after=*/5, /*kill_tear=*/23);
  EXPECT_EQ(killed.exit_code, kKillExitCode) << killed.output;
  const ChildRun resumed = RunChild("sl", dir, seed, 0.0, true);
  ASSERT_EQ(resumed.exit_code, 0) << resumed.output;
  ExpectSameResult(baseline, resumed);
  EXPECT_EQ(ResultField(resumed, "torn"), "1");
}

}  // namespace
}  // namespace crowdsky

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--crowdsky_child") == 0) {
    return crowdsky::RunChildMode(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
