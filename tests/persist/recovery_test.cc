// End-to-end crash/resume tests that run entirely in-process: a full
// durable run is performed, its journal is truncated to a prefix (the
// crash), and a resumed engine run must reproduce the uninterrupted
// result bit-identically without re-paying any question. The kill-point
// harness (kill_point_test.cc) covers the real-process variant.
#include "persist/recovery.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/generator.h"
#include "persist/checkpoint.h"
#include "persist/journal.h"
#include "testing/temp_dir.h"

namespace crowdsky {
namespace {

Dataset SmallDataset(uint64_t seed = 3) {
  GeneratorOptions opt;
  opt.cardinality = 40;
  opt.num_known = 2;
  opt.num_crowd = 2;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

// ctest runs each parameterized instance as its own process, in
// parallel; folding the running test's unique name into the directory
// keeps concurrent instances from stomping each other's journals.
std::string FreshDir(const std::string& name) {
  return crowdsky::testing::FreshTempDir(name);
}

EngineOptions DurableOptions(Algorithm algo, const std::string& dir,
                             bool with_faults = false) {
  EngineOptions opt;
  opt.algorithm = algo;
  opt.seed = 99;
  opt.crowdsky.audit = true;
  opt.durability.dir = dir;
  opt.durability.checkpoint_every_rounds = 2;
  if (with_faults) {
    opt.oracle = OracleKind::kMarketplace;
    opt.marketplace.faults.transient_error_rate = 0.08;
    opt.marketplace.faults.hit_expiration_rate = 0.04;
    opt.marketplace.faults.worker_no_show_rate = 0.1;
    opt.marketplace.faults.straggler_rate = 0.05;
  }
  return opt;
}

// Physically truncates the journal to its first `keep` records, as if the
// process had died right after the keep-th append.
void CrashAfter(const std::string& dir, size_t keep) {
  const std::string path = persist::JournalPath(dir);
  auto recovered = persist::ReadJournal(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_LE(keep, recovered->records.size());
  int64_t bytes = 24;  // header
  for (size_t i = 0; i < keep; ++i) {
    bytes +=
        static_cast<int64_t>(persist::EncodeRecord(recovered->records[i])
                                 .size());
  }
  ASSERT_TRUE(persist::TruncateJournal(path, bytes).ok());
}

void ExpectSameOutcome(const EngineResult& base, const EngineResult& got) {
  EXPECT_EQ(got.algo.skyline, base.algo.skyline);
  EXPECT_EQ(got.algo.questions, base.algo.questions);
  EXPECT_EQ(got.algo.rounds, base.algo.rounds);
  EXPECT_EQ(got.algo.retries, base.algo.retries);
  EXPECT_EQ(got.algo.failed_attempts, base.algo.failed_attempts);
  EXPECT_EQ(got.algo.degraded_quorum, base.algo.degraded_quorum);
  EXPECT_EQ(got.algo.questions_per_round, base.algo.questions_per_round);
  EXPECT_EQ(got.cost_usd, base.cost_usd);  // bit-identical, not NEAR
  EXPECT_EQ(got.accuracy.precision, base.accuracy.precision);
  EXPECT_EQ(got.accuracy.recall, base.accuracy.recall);
}

class RecoveryTest : public ::testing::TestWithParam<Algorithm> {};

TEST_P(RecoveryTest, DurableRunMatchesPlainRun) {
  const Dataset data = SmallDataset();
  EngineOptions durable =
      DurableOptions(GetParam(), FreshDir("recovery_plain"));
  EngineOptions plain = durable;
  plain.durability = {};
  const auto base = RunSkylineQuery(data, plain);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const auto with_journal = RunSkylineQuery(data, durable);
  ASSERT_TRUE(with_journal.ok()) << with_journal.status().ToString();
  ExpectSameOutcome(*base, *with_journal);
  EXPECT_TRUE(with_journal->durability.enabled);
  EXPECT_FALSE(with_journal->durability.resumed);
  EXPECT_GT(with_journal->durability.journal_records, 0);
}

TEST_P(RecoveryTest, ResumeFromTruncatedJournalIsBitIdentical) {
  const Dataset data = SmallDataset();
  const std::string dir = FreshDir("recovery_truncate");
  EngineOptions opt = DurableOptions(GetParam(), dir);
  const auto base = RunSkylineQuery(data, opt);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  const int64_t total = base->durability.journal_records;
  ASSERT_GT(total, 4);

  // Crash at several distinct journal offsets, resuming each time.
  for (const int64_t keep :
       {int64_t{1}, total / 3, total / 2, total - 1}) {
    SCOPED_TRACE("crash after record " + std::to_string(keep));
    // Re-run fresh (overwrites the journal), then cut it.
    const auto fresh = RunSkylineQuery(data, opt);
    ASSERT_TRUE(fresh.ok());
    CrashAfter(dir, static_cast<size_t>(keep));
    EngineOptions resume_opt = opt;
    resume_opt.durability.resume = true;
    const auto resumed = RunSkylineQuery(data, resume_opt);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    ExpectSameOutcome(*base, *resumed);
    EXPECT_TRUE(resumed->durability.resumed);
    // Nothing re-paid: the rebuilt journal is exactly as long as the
    // uninterrupted one (the final audit also checks one record per
    // question).
    EXPECT_EQ(resumed->durability.journal_records, total);
  }
}

TEST_P(RecoveryTest, ResumeUnderFaultsReplaysTheFaultTrace) {
  const Dataset data = SmallDataset(7);
  const std::string dir = FreshDir("recovery_faults");
  EngineOptions opt = DurableOptions(GetParam(), dir, /*with_faults=*/true);
  const auto base = RunSkylineQuery(data, opt);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  ASSERT_GT(base->algo.retries + base->algo.failed_attempts, 0)
      << "fault plan produced no faults; test is vacuous";
  const int64_t total = base->durability.journal_records;
  const auto fresh = RunSkylineQuery(data, opt);
  ASSERT_TRUE(fresh.ok());
  CrashAfter(dir, static_cast<size_t>(total / 2));
  EngineOptions resume_opt = opt;
  resume_opt.durability.resume = true;
  const auto resumed = RunSkylineQuery(data, resume_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameOutcome(*base, *resumed);
  EXPECT_GT(resumed->durability.replayed_pair_attempts, 0);
}

TEST_P(RecoveryTest, JournalOnlyResumeWorksWithoutCheckpoints) {
  const Dataset data = SmallDataset();
  const std::string dir = FreshDir("recovery_nockpt");
  EngineOptions opt = DurableOptions(GetParam(), dir);
  opt.durability.checkpoint_every_rounds = 0;  // journal-only durability
  const auto base = RunSkylineQuery(data, opt);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  EXPECT_FALSE(
      std::filesystem::exists(persist::CheckpointPath(dir)));
  CrashAfter(dir, static_cast<size_t>(base->durability.journal_records / 2));
  EngineOptions resume_opt = opt;
  resume_opt.durability.resume = true;
  const auto resumed = RunSkylineQuery(data, resume_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameOutcome(*base, *resumed);
  EXPECT_FALSE(resumed->durability.used_checkpoint);
  EXPECT_GT(resumed->durability.replayed_pair_attempts, 0);
}

TEST_P(RecoveryTest, CheckpointSkipsTheFoldedPrefix) {
  const Dataset data = SmallDataset();
  const std::string dir = FreshDir("recovery_ckpt");
  EngineOptions opt = DurableOptions(GetParam(), dir);
  opt.durability.checkpoint_every_rounds = 1;
  const auto base = RunSkylineQuery(data, opt);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  auto ckpt = persist::ReadCheckpoint(persist::CheckpointPath(dir));
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  ASSERT_GT(ckpt->journal_records, 0);
  ASSERT_LE(ckpt->journal_records, base->durability.journal_records);
  // Crash right at the checkpoint's coverage so the resume can use it
  // (the last checkpoint of a *completed* run typically covers the whole
  // journal; mid-run checkpoints are exercised by the kill-point
  // harness, where the crash interrupts the run for real).
  CrashAfter(dir, static_cast<size_t>(ckpt->journal_records));
  EngineOptions resume_opt = opt;
  resume_opt.durability.resume = true;
  const auto resumed = RunSkylineQuery(data, resume_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameOutcome(*base, *resumed);
  EXPECT_TRUE(resumed->durability.used_checkpoint);
}

TEST_P(RecoveryTest, TornTailIsRecoveredOnResume) {
  const Dataset data = SmallDataset();
  const std::string dir = FreshDir("recovery_torn");
  EngineOptions opt = DurableOptions(GetParam(), dir);
  const auto base = RunSkylineQuery(data, opt);
  ASSERT_TRUE(base.ok()) << base.status().ToString();
  CrashAfter(dir, static_cast<size_t>(base->durability.journal_records / 2));
  {
    // A record that was in flight when the process died.
    std::ofstream out(persist::JournalPath(dir),
                      std::ios::binary | std::ios::app);
    out.write("\x13\x37\x00\xff", 4);
  }
  EngineOptions resume_opt = opt;
  resume_opt.durability.resume = true;
  const auto resumed = RunSkylineQuery(data, resume_opt);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ExpectSameOutcome(*base, *resumed);
  EXPECT_TRUE(resumed->durability.recovered_torn_tail);
}

INSTANTIATE_TEST_SUITE_P(
    AllDrivers, RecoveryTest,
    ::testing::Values(Algorithm::kCrowdSkySerial, Algorithm::kParallelDSet,
                      Algorithm::kParallelSL),
    [](const ::testing::TestParamInfo<Algorithm>& param) {
      return std::string(AlgorithmName(param.param));
    });

TEST(RecoveryGuardTest, ResumeWithoutJournalFails) {
  EngineOptions opt =
      DurableOptions(Algorithm::kParallelSL, FreshDir("recovery_nofile"));
  opt.durability.resume = true;
  EXPECT_FALSE(RunSkylineQuery(SmallDataset(), opt).ok());
}

TEST(RecoveryGuardTest, ResumeRequiresADirectory) {
  EngineOptions opt;
  opt.durability.resume = true;
  EXPECT_TRUE(RunSkylineQuery(SmallDataset(), opt)
                  .status()
                  .IsInvalidArgument());
}

TEST(RecoveryGuardTest, ForeignFingerprintIsRefused) {
  const Dataset data = SmallDataset();
  const std::string dir = FreshDir("recovery_fingerprint");
  EngineOptions opt = DurableOptions(Algorithm::kParallelSL, dir);
  ASSERT_TRUE(RunSkylineQuery(data, opt).ok());
  EngineOptions other = opt;
  other.durability.resume = true;
  other.seed = opt.seed + 1;  // a different question/answer stream
  EXPECT_TRUE(
      RunSkylineQuery(data, other).status().IsFailedPrecondition());
  // The audit flag and the durability knobs are excluded from the
  // fingerprint: flipping them must not block the resume.
  EngineOptions relaxed = opt;
  relaxed.durability.resume = true;
  relaxed.crowdsky.audit = false;
  relaxed.durability.checkpoint_every_rounds = 1;
  relaxed.durability.sync = persist::SyncMode::kBuffered;
  EXPECT_TRUE(RunSkylineQuery(data, relaxed).ok());
}

TEST(RecoveryGuardTest, FingerprintCoversDatasetAndSeed) {
  const Dataset a = SmallDataset(1);
  const Dataset b = SmallDataset(2);
  EngineOptions opt;
  EXPECT_NE(RunFingerprint(a, opt), RunFingerprint(b, opt));
  EngineOptions reseeded = opt;
  reseeded.seed = opt.seed + 1;
  EXPECT_NE(RunFingerprint(a, opt), RunFingerprint(a, reseeded));
  EngineOptions audited = opt;
  audited.crowdsky.audit = true;
  audited.durability.dir = "/somewhere/else";
  EXPECT_EQ(RunFingerprint(a, opt), RunFingerprint(a, audited));
}

}  // namespace
}  // namespace crowdsky
