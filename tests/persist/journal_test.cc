#include "persist/journal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "testing/temp_dir.h"

namespace crowdsky::persist {
namespace {

constexpr uint64_t kFingerprint = 0x5eedf00dcafe1234ULL;
constexpr int64_t kHeaderBytes = 24;

std::string TempPath(const std::string& name) {
  return crowdsky::testing::FreshTempPath(name);
}

JournalRecord PairRecord(int attr, int first, int second, bool resolved) {
  JournalRecord r;
  r.kind = JournalRecord::Kind::kPairAsk;
  r.question = PairQuestion{attr, first, second};
  r.freq = 7;
  r.resolved = resolved;
  r.answer = Answer::kSecondPreferred;
  AttemptOutcome failed;
  failed.status = AttemptOutcome::kFailed;
  failed.transient_error = true;
  failed.extra_latency_rounds = 2;
  failed.votes_expected = 5;
  failed.votes_counted = 1;
  failed.no_shows = 3;
  failed.stragglers = 1;
  r.attempts.push_back(failed);
  if (resolved) {
    AttemptOutcome ok;
    ok.status = AttemptOutcome::kDegradedQuorum;
    ok.votes_expected = 5;
    ok.votes_counted = 3;
    ok.no_shows = 2;
    r.attempts.push_back(ok);
  }
  r.fault_attempt_draws = 11;
  r.fault_vote_draws = 55;
  return r;
}

JournalRecord UnaryRecord() {
  JournalRecord r;
  r.kind = JournalRecord::Kind::kUnary;
  r.unary_id = 4;
  r.unary_attr = 1;
  r.unary_value = 3.25;
  r.freq = 9;
  r.fault_attempt_draws = 12;
  r.fault_vote_draws = 64;
  return r;
}

JournalRecord RoundRecord(int64_t questions) {
  JournalRecord r;
  r.kind = JournalRecord::Kind::kRoundEnd;
  r.round_questions = questions;
  r.fault_attempt_draws = 12;
  r.fault_vote_draws = 64;
  return r;
}

void ExpectRecordsEqual(const JournalRecord& a, const JournalRecord& b) {
  EXPECT_EQ(a.kind, b.kind);
  EXPECT_EQ(a.question, b.question);
  EXPECT_EQ(a.freq, b.freq);
  EXPECT_EQ(a.resolved, b.resolved);
  EXPECT_EQ(a.answer, b.answer);
  EXPECT_EQ(a.attempts, b.attempts);
  EXPECT_EQ(a.unary_id, b.unary_id);
  EXPECT_EQ(a.unary_attr, b.unary_attr);
  EXPECT_DOUBLE_EQ(a.unary_value, b.unary_value);
  EXPECT_EQ(a.round_questions, b.round_questions);
  EXPECT_EQ(a.fault_attempt_draws, b.fault_attempt_draws);
  EXPECT_EQ(a.fault_vote_draws, b.fault_vote_draws);
}

std::vector<JournalRecord> SampleRecords() {
  return {PairRecord(0, 1, 5, true), UnaryRecord(),
          PairRecord(1, 2, 3, false), RoundRecord(4)};
}

TEST(JournalTest, RoundTripsEveryField) {
  const std::string path = TempPath("journal_roundtrip.bin");
  auto writer = JournalWriter::Create(path, kFingerprint, SyncMode::kFlush);
  ASSERT_TRUE(writer.ok()) << writer.status().ToString();
  const std::vector<JournalRecord> records = SampleRecords();
  for (const JournalRecord& r : records) {
    ASSERT_TRUE((*writer)->Append(r).ok());
  }
  EXPECT_EQ((*writer)->records_appended(), 4);
  EXPECT_EQ((*writer)->records_total(), 4);
  ASSERT_TRUE((*writer)->Sync().ok());

  auto recovered = ReadJournal(path);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->fingerprint, kFingerprint);
  EXPECT_FALSE(recovered->torn_tail);
  EXPECT_EQ(recovered->torn_bytes, 0);
  ASSERT_EQ(recovered->records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    SCOPED_TRACE(i);
    ExpectRecordsEqual(recovered->records[i], records[i]);
  }
}

TEST(JournalTest, BufferedModeIsDurableAfterSync) {
  const std::string path = TempPath("journal_buffered.bin");
  auto writer =
      JournalWriter::Create(path, kFingerprint, SyncMode::kBuffered);
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Append(RoundRecord(1)).ok());
  ASSERT_TRUE((*writer)->Sync().ok());
  auto recovered = ReadJournal(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->records.size(), 1u);
}

TEST(JournalTest, MissingFileFailsToOpen) {
  EXPECT_FALSE(ReadJournal(TempPath("journal_missing.bin")).ok());
}

TEST(JournalTest, TornTailIsDetectedAndTruncatable) {
  const std::string path = TempPath("journal_torn.bin");
  {
    auto writer =
        JournalWriter::Create(path, kFingerprint, SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
    for (const JournalRecord& r : SampleRecords()) {
      ASSERT_TRUE((*writer)->Append(r).ok());
    }
  }
  {
    // Simulate a record that was mid-write when the process died.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out.write("\xde\xad\xbe\xef\x42", 5);
  }
  auto recovered = ReadJournal(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_EQ(recovered->torn_bytes, 5);
  EXPECT_EQ(recovered->records.size(), 4u);

  ASSERT_TRUE(TruncateJournal(path, recovered->valid_bytes).ok());
  auto clean = ReadJournal(path);
  ASSERT_TRUE(clean.ok());
  EXPECT_FALSE(clean->torn_tail);
  EXPECT_EQ(clean->records.size(), 4u);
}

TEST(JournalTest, CorruptRecordStopsParsingAtTheFault) {
  const std::string path = TempPath("journal_corrupt.bin");
  std::vector<std::string> frames;
  {
    auto writer =
        JournalWriter::Create(path, kFingerprint, SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
    for (const JournalRecord& r : SampleRecords()) {
      frames.push_back(EncodeRecord(r));
      ASSERT_TRUE((*writer)->Append(r).ok());
    }
  }
  // Flip one payload byte inside the third record.
  const int64_t offset =
      kHeaderBytes + static_cast<int64_t>(frames[0].size()) +
      static_cast<int64_t>(frames[1].size()) + 10;
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(offset);
    char byte = 0;
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(offset);
    f.write(&byte, 1);
  }
  auto recovered = ReadJournal(path);
  ASSERT_TRUE(recovered.ok());
  EXPECT_TRUE(recovered->torn_tail);
  EXPECT_EQ(recovered->records.size(), 2u);
  EXPECT_EQ(recovered->valid_bytes,
            kHeaderBytes + static_cast<int64_t>(frames[0].size()) +
                static_cast<int64_t>(frames[1].size()));
}

TEST(JournalTest, CorruptHeaderIsRejected) {
  const std::string path = TempPath("journal_badheader.bin");
  {
    auto writer =
        JournalWriter::Create(path, kFingerprint, SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
  }
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(0);
    f.write("XXXX", 4);
  }
  EXPECT_FALSE(ReadJournal(path).ok());
}

TEST(JournalTest, OpenForAppendContinuesTheFile) {
  const std::string path = TempPath("journal_append.bin");
  {
    auto writer =
        JournalWriter::Create(path, kFingerprint, SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->Append(PairRecord(0, 0, 1, true)).ok());
  }
  {
    auto writer = JournalWriter::OpenForAppend(path, kFingerprint,
                                               SyncMode::kFlush,
                                               /*existing_records=*/1);
    ASSERT_TRUE(writer.ok()) << writer.status().ToString();
    EXPECT_EQ((*writer)->records_appended(), 0);
    EXPECT_EQ((*writer)->records_total(), 1);
    ASSERT_TRUE((*writer)->Append(RoundRecord(1)).ok());
    EXPECT_EQ((*writer)->records_total(), 2);
  }
  auto recovered = ReadJournal(path);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ(recovered->records.size(), 2u);
  EXPECT_EQ(recovered->records[1].kind, JournalRecord::Kind::kRoundEnd);
}

TEST(JournalTest, OpenForAppendRejectsForeignFingerprint) {
  const std::string path = TempPath("journal_foreign.bin");
  {
    auto writer =
        JournalWriter::Create(path, kFingerprint, SyncMode::kFlush);
    ASSERT_TRUE(writer.ok());
  }
  EXPECT_FALSE(JournalWriter::OpenForAppend(path, kFingerprint + 1,
                                            SyncMode::kFlush, 0)
                   .ok());
}

TEST(JournalTest, EncodeRecordFramesWithSizeAndCrc) {
  const std::string frame = EncodeRecord(RoundRecord(3));
  // u32 size + u32 crc + payload.
  ASSERT_GT(frame.size(), 8u);
  uint32_t size = 0;
  std::memcpy(&size, frame.data(), sizeof(size));
  EXPECT_EQ(static_cast<size_t>(size), frame.size() - 8);
}

TEST(JournalTest, SyncModeNames) {
  EXPECT_STREQ(SyncModeName(SyncMode::kBuffered), "buffered");
  EXPECT_STREQ(SyncModeName(SyncMode::kFlush), "flush");
  EXPECT_STREQ(SyncModeName(SyncMode::kFsync), "fsync");
}

}  // namespace
}  // namespace crowdsky::persist
