#include "persist/checkpoint.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "testing/temp_dir.h"

namespace crowdsky::persist {
namespace {

std::string TempPath(const std::string& name) {
  return crowdsky::testing::FreshTempPath(name);
}

CheckpointData Sample() {
  CheckpointData data;
  data.fingerprint = 0xfeedface12345678ULL;
  data.journal_records = 42;
  data.num_tuples = 6;
  data.complete = {1, 1, 0, 1, 0, 0};
  data.nonskyline = {0, 1, 0, 0, 0, 0};
  data.skyline = {0, 3};
  data.undetermined = {3};
  data.pending = {5, 2, 4};
  data.free_lookups = 17;
  data.cache_hits = 9;
  return data;
}

TEST(CheckpointTest, RoundTripsEveryField) {
  const std::string path = TempPath("checkpoint_roundtrip.bin");
  ASSERT_TRUE(WriteCheckpoint(path, Sample()).ok());
  auto read = ReadCheckpoint(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  const CheckpointData expected = Sample();
  EXPECT_EQ(read->fingerprint, expected.fingerprint);
  EXPECT_EQ(read->journal_records, expected.journal_records);
  EXPECT_EQ(read->num_tuples, expected.num_tuples);
  EXPECT_EQ(read->complete, expected.complete);
  EXPECT_EQ(read->nonskyline, expected.nonskyline);
  EXPECT_EQ(read->skyline, expected.skyline);
  EXPECT_EQ(read->undetermined, expected.undetermined);
  EXPECT_EQ(read->pending, expected.pending);
  EXPECT_EQ(read->free_lookups, expected.free_lookups);
  EXPECT_EQ(read->cache_hits, expected.cache_hits);
}

TEST(CheckpointTest, MissingFileIsNotFound) {
  EXPECT_TRUE(ReadCheckpoint(TempPath("checkpoint_missing.bin"))
                  .status()
                  .IsNotFound());
}

TEST(CheckpointTest, RewriteReplacesAtomically) {
  const std::string path = TempPath("checkpoint_rewrite.bin");
  ASSERT_TRUE(WriteCheckpoint(path, Sample()).ok());
  CheckpointData next = Sample();
  next.journal_records = 99;
  next.skyline = {1, 2, 3};
  ASSERT_TRUE(WriteCheckpoint(path, next).ok());
  auto read = ReadCheckpoint(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->journal_records, 99);
  EXPECT_EQ(read->skyline, next.skyline);
}

TEST(CheckpointTest, CorruptionIsRejected) {
  const std::string path = TempPath("checkpoint_corrupt.bin");
  ASSERT_TRUE(WriteCheckpoint(path, Sample()).ok());
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(30);
    f.write("\x5a", 1);
  }
  EXPECT_FALSE(ReadCheckpoint(path).ok());
}

TEST(CheckpointTest, TruncationIsRejected) {
  const std::string path = TempPath("checkpoint_truncated.bin");
  ASSERT_TRUE(WriteCheckpoint(path, Sample()).ok());
  std::filesystem::resize_file(
      path, std::filesystem::file_size(path) / 2);
  EXPECT_FALSE(ReadCheckpoint(path).ok());
}

}  // namespace
}  // namespace crowdsky::persist
