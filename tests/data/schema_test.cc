#include "data/schema.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(SchemaTest, MakeValid) {
  auto schema = Schema::Make({
      {"price", Direction::kMin, AttributeKind::kKnown},
      {"quality", Direction::kMax, AttributeKind::kCrowd},
  });
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 2);
  EXPECT_EQ(schema->num_known(), 1);
  EXPECT_EQ(schema->num_crowd(), 1);
  EXPECT_EQ(schema->attribute(0).name, "price");
  EXPECT_EQ(schema->attribute(1).direction, Direction::kMax);
}

TEST(SchemaTest, RejectsEmpty) {
  EXPECT_TRUE(Schema::Make({}).status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsEmptyName) {
  auto schema = Schema::Make({{"", Direction::kMin, AttributeKind::kKnown}});
  EXPECT_TRUE(schema.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsDuplicateNames) {
  auto schema = Schema::Make({
      {"a", Direction::kMin, AttributeKind::kKnown},
      {"a", Direction::kMin, AttributeKind::kCrowd},
  });
  EXPECT_EQ(schema.status().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, IndexPartition) {
  auto schema = Schema::Make({
      {"k1", Direction::kMin, AttributeKind::kKnown},
      {"c1", Direction::kMin, AttributeKind::kCrowd},
      {"k2", Direction::kMin, AttributeKind::kKnown},
      {"c2", Direction::kMin, AttributeKind::kCrowd},
  });
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->known_indices(), (std::vector<int>{0, 2}));
  EXPECT_EQ(schema->crowd_indices(), (std::vector<int>{1, 3}));
}

TEST(SchemaTest, IndexOf) {
  auto schema = Schema::Make({
      {"k1", Direction::kMin, AttributeKind::kKnown},
      {"c1", Direction::kMin, AttributeKind::kCrowd},
  });
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->IndexOf("c1").ValueOrDie(), 1);
  EXPECT_TRUE(schema->IndexOf("missing").status().IsNotFound());
}

TEST(SchemaTest, MakeSynthetic) {
  const Schema schema = Schema::MakeSynthetic(4, 2);
  EXPECT_EQ(schema.num_known(), 4);
  EXPECT_EQ(schema.num_crowd(), 2);
  EXPECT_EQ(schema.attribute(0).name, "K1");
  EXPECT_EQ(schema.attribute(4).name, "C1");
  EXPECT_EQ(schema.attribute(5).kind, AttributeKind::kCrowd);
  for (const AttributeSpec& a : schema.attributes()) {
    EXPECT_EQ(a.direction, Direction::kMin);
  }
}

TEST(SchemaTest, Equality) {
  const Schema a = Schema::MakeSynthetic(2, 1);
  const Schema b = Schema::MakeSynthetic(2, 1);
  const Schema c = Schema::MakeSynthetic(2, 2);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace crowdsky
