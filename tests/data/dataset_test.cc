#include "data/dataset.h"

#include <gtest/gtest.h>

#include <limits>

namespace crowdsky {
namespace {

Schema TwoPlusOne() { return Schema::MakeSynthetic(2, 1); }

TEST(DatasetTest, MakeAssignsIds) {
  auto ds = Dataset::Make(TwoPlusOne(), {{1, 2, 3}, {4, 5, 6}});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2);
  EXPECT_EQ(ds->tuple(0).id, 0);
  EXPECT_EQ(ds->tuple(1).id, 1);
  EXPECT_DOUBLE_EQ(ds->value(1, 2), 6.0);
}

TEST(DatasetTest, EmptyDatasetIsValid) {
  auto ds = Dataset::Make(TwoPlusOne(), {});
  ASSERT_TRUE(ds.ok());
  EXPECT_TRUE(ds->empty());
}

TEST(DatasetTest, RejectsWrongArity) {
  auto ds = Dataset::Make(TwoPlusOne(), {{1, 2}});
  EXPECT_TRUE(ds.status().IsInvalidArgument());
}

TEST(DatasetTest, RejectsNonFiniteValues) {
  auto ds = Dataset::Make(
      TwoPlusOne(), {{1, 2, std::numeric_limits<double>::quiet_NaN()}});
  EXPECT_TRUE(ds.status().IsInvalidArgument());
  auto ds2 = Dataset::Make(
      TwoPlusOne(), {{std::numeric_limits<double>::infinity(), 2, 3}});
  EXPECT_TRUE(ds2.status().IsInvalidArgument());
}

TEST(DatasetTest, LabelsAttachToTuples) {
  auto ds = Dataset::Make(TwoPlusOne(), {{1, 2, 3}, {4, 5, 6}}, {"x", "y"});
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->tuple(0).label, "x");
  EXPECT_EQ(ds->tuple(1).label, "y");
}

TEST(DatasetTest, RejectsLabelCountMismatch) {
  auto ds = Dataset::Make(TwoPlusOne(), {{1, 2, 3}}, {"a", "b"});
  EXPECT_TRUE(ds.status().IsInvalidArgument());
}

TEST(DatasetTest, ProjectReassignsIds) {
  auto ds = Dataset::Make(TwoPlusOne(), {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
                          {"a", "b", "c"});
  ASSERT_TRUE(ds.ok());
  const Dataset sub = ds->Project({2, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_EQ(sub.tuple(0).id, 0);
  EXPECT_EQ(sub.tuple(0).label, "c");
  EXPECT_DOUBLE_EQ(sub.value(0, 0), 7.0);
  EXPECT_EQ(sub.tuple(1).label, "a");
}

}  // namespace
}  // namespace crowdsky
