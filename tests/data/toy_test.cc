// Asserts that the embedded toy datasets reproduce the paper's Figure 1 /
// Figure 3 worked examples: AK values, the AK skyline, the full skyline,
// and every preference-tree edge the paper derives.
#include "data/toy.h"

#include <gtest/gtest.h>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace crowdsky {
namespace {

std::vector<int> Ids(const std::string& labels) {
  std::vector<int> out;
  for (const char c : labels) out.push_back(ToyId(c));
  std::sort(out.begin(), out.end());
  return out;
}

TEST(ToyDatasetTest, ShapeAndLabels) {
  const Dataset toy = MakeToyDataset();
  EXPECT_EQ(toy.size(), 12);
  EXPECT_EQ(toy.schema().num_known(), 2);
  EXPECT_EQ(toy.schema().num_crowd(), 1);
  EXPECT_EQ(toy.tuple(ToyId('e')).label, "e");
}

TEST(ToyDatasetTest, KnownValuesMatchFigure1) {
  const Dataset toy = MakeToyDataset();
  EXPECT_DOUBLE_EQ(toy.value(ToyId('a'), 0), 2.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('a'), 1), 8.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('l'), 0), 9.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('l'), 1), 1.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('e'), 0), 4.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('e'), 1), 4.0);
}

TEST(ToyDatasetTest, KnownSkylineIsBEIL) {
  const Dataset toy = MakeToyDataset();
  EXPECT_EQ(ComputeSkylineSFS(PreferenceMatrix::FromKnown(toy)),
            Ids("beil"));
}

TEST(ToyDatasetTest, GroundTruthSkylineMatchesExample2) {
  const Dataset toy = MakeToyDataset();
  EXPECT_EQ(ComputeGroundTruthSkyline(toy), Ids("befhikl"));
}

TEST(ToyDatasetTest, HiddenPreferencesMatchPaperEdges) {
  const Dataset toy = MakeToyDataset();
  const PreferenceMatrix crowd = PreferenceMatrix::FromCrowd(toy);
  auto prefers = [&](char u, char v) {
    return crowd.value(ToyId(u), 0) < crowd.value(ToyId(v), 0);
  };
  // Example 2 and Figures 2/4(b).
  EXPECT_TRUE(prefers('b', 'a'));
  EXPECT_TRUE(prefers('e', 'b'));
  EXPECT_TRUE(prefers('e', 'c'));
  EXPECT_TRUE(prefers('e', 'd'));
  EXPECT_TRUE(prefers('e', 'g'));
  EXPECT_TRUE(prefers('f', 'b'));
  EXPECT_TRUE(prefers('f', 'e'));
  EXPECT_TRUE(prefers('f', 'j'));
  EXPECT_TRUE(prefers('h', 'e'));
  EXPECT_TRUE(prefers('h', 'i'));
  EXPECT_TRUE(prefers('i', 'l'));
  EXPECT_TRUE(prefers('k', 'i'));
}

TEST(AntiCorrelatedToyTest, ShapeAndKnownValues) {
  const Dataset toy = MakeAntiCorrelatedToyDataset();
  EXPECT_EQ(toy.size(), 10);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('b'), 0), 2.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('b'), 1), 5.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('h'), 0), 10.0);
  EXPECT_DOUBLE_EQ(toy.value(ToyId('h'), 1), 5.0);
}

TEST(AntiCorrelatedToyTest, KnownSkylineIsBEIJ) {
  const Dataset toy = MakeAntiCorrelatedToyDataset();
  EXPECT_EQ(ComputeSkylineSFS(PreferenceMatrix::FromKnown(toy)),
            Ids("beij"));
}

TEST(AntiCorrelatedToyTest, EDominatesEverythingInAC) {
  const Dataset toy = MakeAntiCorrelatedToyDataset();
  const PreferenceMatrix crowd = PreferenceMatrix::FromCrowd(toy);
  for (int id = 0; id < toy.size(); ++id) {
    if (id == ToyId('e')) continue;
    EXPECT_LT(crowd.value(ToyId('e'), 0), crowd.value(id, 0));
  }
}

TEST(ToyIdTest, MapsLabels) {
  EXPECT_EQ(ToyId('a'), 0);
  EXPECT_EQ(ToyId('l'), 11);
}

}  // namespace
}  // namespace crowdsky
