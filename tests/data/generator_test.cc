#include "data/generator.h"

#include <gtest/gtest.h>

#include <cmath>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace crowdsky {
namespace {

TEST(GeneratorTest, RejectsBadOptions) {
  GeneratorOptions opt;
  opt.cardinality = 0;
  EXPECT_TRUE(GenerateDataset(opt).status().IsInvalidArgument());
  opt.cardinality = 10;
  opt.num_known = 0;
  opt.num_crowd = 0;
  EXPECT_TRUE(GenerateDataset(opt).status().IsInvalidArgument());
}

TEST(GeneratorTest, ShapeMatchesOptions) {
  GeneratorOptions opt;
  opt.cardinality = 100;
  opt.num_known = 3;
  opt.num_crowd = 2;
  auto ds = GenerateDataset(opt);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 100);
  EXPECT_EQ(ds->schema().num_known(), 3);
  EXPECT_EQ(ds->schema().num_crowd(), 2);
}

TEST(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions opt;
  opt.cardinality = 50;
  opt.seed = 99;
  const auto a = GenerateDataset(opt).ValueOrDie();
  const auto b = GenerateDataset(opt).ValueOrDie();
  for (int i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.tuple(i).values, b.tuple(i).values);
  }
  opt.seed = 100;
  const auto c = GenerateDataset(opt).ValueOrDie();
  EXPECT_NE(a.tuple(0).values, c.tuple(0).values);
}

class GeneratorDistributionTest
    : public ::testing::TestWithParam<DataDistribution> {};

TEST_P(GeneratorDistributionTest, ValuesInUnitInterval) {
  GeneratorOptions opt;
  opt.cardinality = 500;
  opt.distribution = GetParam();
  opt.num_known = 4;
  opt.num_crowd = 1;
  const auto ds = GenerateDataset(opt).ValueOrDie();
  for (const Tuple& t : ds.tuples()) {
    for (const double v : t.values) {
      EXPECT_GE(v, 0.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, GeneratorDistributionTest,
                         ::testing::Values(DataDistribution::kIndependent,
                                           DataDistribution::kAntiCorrelated,
                                           DataDistribution::kCorrelated),
                         [](const auto& pinfo) {
                           return DataDistributionName(pinfo.param);
                         });

TEST(GeneratorTest, AntiCorrelatedHasLargerSkylineThanIndependent) {
  GeneratorOptions opt;
  opt.cardinality = 2000;
  opt.num_known = 4;
  opt.num_crowd = 1;
  opt.seed = 7;
  opt.distribution = DataDistribution::kIndependent;
  const auto ind = GenerateDataset(opt).ValueOrDie();
  opt.distribution = DataDistribution::kAntiCorrelated;
  const auto ant = GenerateDataset(opt).ValueOrDie();
  opt.distribution = DataDistribution::kCorrelated;
  const auto cor = GenerateDataset(opt).ValueOrDie();
  const auto sky_size = [](const Dataset& ds) {
    return ComputeSkylineSFS(PreferenceMatrix::FromKnown(ds)).size();
  };
  EXPECT_GT(sky_size(ant), 2 * sky_size(ind));
  EXPECT_LE(sky_size(cor), sky_size(ind));
}

TEST(GeneratorTest, AntiCorrelatedCoordinatesAnticorrelate) {
  GeneratorOptions opt;
  opt.cardinality = 5000;
  opt.num_known = 2;
  opt.num_crowd = 0;
  opt.distribution = DataDistribution::kAntiCorrelated;
  const auto ds = GenerateDataset(opt).ValueOrDie();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const auto n = static_cast<double>(ds.size());
  for (const Tuple& t : ds.tuples()) {
    sx += t.values[0];
    sy += t.values[1];
    sxx += t.values[0] * t.values[0];
    syy += t.values[1] * t.values[1];
    sxy += t.values[0] * t.values[1];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double corr = cov / std::sqrt((sxx / n - sx / n * (sx / n)) *
                                      (syy / n - sy / n * (sy / n)));
  EXPECT_LT(corr, -0.3);
}

TEST(GeneratorTest, CorrelatedCoordinatesCorrelate) {
  GeneratorOptions opt;
  opt.cardinality = 5000;
  opt.num_known = 2;
  opt.num_crowd = 0;
  opt.distribution = DataDistribution::kCorrelated;
  const auto ds = GenerateDataset(opt).ValueOrDie();
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  const auto n = static_cast<double>(ds.size());
  for (const Tuple& t : ds.tuples()) {
    sx += t.values[0];
    sy += t.values[1];
    sxx += t.values[0] * t.values[0];
    syy += t.values[1] * t.values[1];
    sxy += t.values[0] * t.values[1];
  }
  const double cov = sxy / n - (sx / n) * (sy / n);
  const double corr = cov / std::sqrt((sxx / n - sx / n * (sx / n)) *
                                      (syy / n - sy / n * (sy / n)));
  EXPECT_GT(corr, 0.3);
}

TEST(GeneratorTest, DistributionNames) {
  EXPECT_STREQ(DataDistributionName(DataDistribution::kIndependent), "IND");
  EXPECT_STREQ(DataDistributionName(DataDistribution::kAntiCorrelated),
               "ANT");
  EXPECT_STREQ(DataDistributionName(DataDistribution::kCorrelated), "COR");
}

}  // namespace
}  // namespace crowdsky
