#include "data/csv.h"

#include <gtest/gtest.h>

#include <sstream>

#include "data/generator.h"
#include "data/real_datasets.h"

namespace crowdsky {
namespace {

TEST(CsvTest, ReadBasic) {
  std::istringstream in(
      "width:known:max,height:known:max,area:crowd:max\n"
      "1,2,2\n"
      "3,4,12\n");
  auto ds = ReadCsv(in);
  ASSERT_TRUE(ds.ok()) << ds.status().ToString();
  EXPECT_EQ(ds->size(), 2);
  EXPECT_EQ(ds->schema().num_known(), 2);
  EXPECT_EQ(ds->schema().num_crowd(), 1);
  EXPECT_EQ(ds->schema().attribute(0).direction, Direction::kMax);
  EXPECT_DOUBLE_EQ(ds->value(1, 2), 12.0);
}

TEST(CsvTest, ReadWithLabels) {
  std::istringstream in(
      "a:known:min,c:crowd:min,label\n"
      "1,2,first\n"
      "3,4,second\n");
  auto ds = ReadCsv(in);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->tuple(0).label, "first");
  EXPECT_EQ(ds->tuple(1).label, "second");
}

TEST(CsvTest, SkipsBlankLines) {
  std::istringstream in("a:known:min\n1\n\n2\n");
  auto ds = ReadCsv(in);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2);
}

TEST(CsvTest, RejectsEmptyInput) {
  std::istringstream in("");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsBadHeaderField) {
  std::istringstream in("a:known\n1\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalidArgument());
  std::istringstream in2("a:human:min\n1\n");
  EXPECT_TRUE(ReadCsv(in2).status().IsInvalidArgument());
  std::istringstream in3("a:known:sideways\n1\n");
  EXPECT_TRUE(ReadCsv(in3).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsLabelNotLast) {
  std::istringstream in("label,a:known:min\nx,1\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsWrongFieldCount) {
  std::istringstream in("a:known:min,b:known:min\n1\n");
  EXPECT_TRUE(ReadCsv(in).status().IsInvalidArgument());
}

TEST(CsvTest, RejectsNonNumericValue) {
  std::istringstream in("a:known:min\nfoo\n");
  auto r = ReadCsv(in);
  EXPECT_TRUE(r.status().IsInvalidArgument());
}

TEST(CsvTest, RoundTripPreservesEverything) {
  GeneratorOptions opt;
  opt.cardinality = 20;
  opt.num_known = 3;
  opt.num_crowd = 2;
  const Dataset original = GenerateDataset(opt).ValueOrDie();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out).ok());
  std::istringstream in(out.str());
  const Dataset reread = ReadCsv(in).ValueOrDie();
  ASSERT_TRUE(reread.schema() == original.schema());
  ASSERT_EQ(reread.size(), original.size());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread.tuple(i).values, original.tuple(i).values) << i;
  }
}

TEST(CsvTest, RoundTripWithLabelsAndMixedDirections) {
  const Dataset original = MakeMoviesDataset();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(original, out).ok());
  std::istringstream in(out.str());
  const Dataset reread = ReadCsv(in).ValueOrDie();
  ASSERT_TRUE(reread.schema() == original.schema());
  ASSERT_EQ(reread.size(), original.size());
  for (int i = 0; i < original.size(); ++i) {
    EXPECT_EQ(reread.tuple(i).label, original.tuple(i).label);
    EXPECT_EQ(reread.tuple(i).values, original.tuple(i).values);
  }
}

TEST(CsvTest, RoundTripPreservesTheHeaderLineExactly) {
  std::istringstream in(
      "width:known:max,height:known:min,area:crowd:max,label\n"
      "1,2,2,box\n");
  const Dataset ds = ReadCsv(in).ValueOrDie();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(ds, out).ok());
  const std::string written = out.str();
  EXPECT_EQ(written.substr(0, written.find('\n')),
            "width:known:max,height:known:min,area:crowd:max,label");
  // And the re-read schema is identical, spec by spec.
  std::istringstream again(written);
  const Dataset reread = ReadCsv(again).ValueOrDie();
  EXPECT_TRUE(reread.schema() == ds.schema());
}

TEST(CsvTest, LabelsWithCommasRoundTrip) {
  // The label is everything after the last numeric field, so commas
  // inside it need no quoting ("Monsters, Inc.").
  auto ds = Dataset::Make(Schema::MakeSynthetic(1, 1),
                          {{1, 2}, {3, 4}},
                          {"Monsters, Inc.", "plain"});
  ds.status().CheckOK();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*ds, out).ok());
  std::istringstream in(out.str());
  const Dataset reread = ReadCsv(in).ValueOrDie();
  EXPECT_EQ(reread.tuple(0).label, "Monsters, Inc.");
  EXPECT_EQ(reread.tuple(1).label, "plain");
}

TEST(CsvTest, QuoteCharactersInLabelsAreLiteral) {
  // No quoting layer exists by design: quote characters are label bytes
  // and survive a round trip untouched.
  auto ds = Dataset::Make(Schema::MakeSynthetic(1, 1), {{1, 2}},
                          {"the \"best\" option"});
  ds.status().CheckOK();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*ds, out).ok());
  std::istringstream in(out.str());
  const Dataset reread = ReadCsv(in).ValueOrDie();
  EXPECT_EQ(reread.tuple(0).label, "the \"best\" option");
}

TEST(CsvTest, ExtremeValuesSurviveTheRoundTrip) {
  // %.17g output must re-parse to the identical doubles.
  auto ds = Dataset::Make(
      Schema::MakeSynthetic(1, 1),
      {{0.1, 1.0 / 3.0}, {1e-300, 123456789.123456789}});
  ds.status().CheckOK();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(*ds, out).ok());
  std::istringstream in(out.str());
  const Dataset reread = ReadCsv(in).ValueOrDie();
  for (int i = 0; i < ds->size(); ++i) {
    EXPECT_EQ(reread.tuple(i).values, ds->tuple(i).values) << i;
  }
}

TEST(CsvTest, FileRoundTrip) {
  const Dataset original = MakeRectanglesDataset();
  const std::string path = ::testing::TempDir() + "/crowdsky_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(original, path).ok());
  const Dataset reread = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(reread.size(), original.size());
}

TEST(CsvTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadCsvFile("/nonexistent/nope.csv").status().IsIOError());
}

}  // namespace
}  // namespace crowdsky
