// Validates that the embedded real-life datasets reproduce the paper's
// Section 6.2 ground truths.
#include "data/real_datasets.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace crowdsky {
namespace {

std::set<std::string> SkylineLabels(const Dataset& ds) {
  std::set<std::string> out;
  for (const int id : ComputeGroundTruthSkyline(ds)) {
    out.insert(ds.tuple(id).label);
  }
  return out;
}

TEST(RectanglesTest, FiftyRectanglesWithPaperSizes) {
  const Dataset ds = MakeRectanglesDataset();
  ASSERT_EQ(ds.size(), 50);
  EXPECT_EQ(ds.schema().num_known(), 2);
  EXPECT_EQ(ds.schema().num_crowd(), 1);
  for (int i = 0; i < 50; ++i) {
    const double w = 30.0 + 3.0 * i;
    const double h = 40.0 + 5.0 * i;
    EXPECT_DOUBLE_EQ(ds.value(i, 2), w * h) << i;
    // The rotated bounding box contains the rectangle.
    EXPECT_GE(ds.value(i, 0) + 1e-9, std::min(w, h));
    EXPECT_GE(ds.value(i, 1) + 1e-9, std::min(w, h));
  }
}

TEST(RectanglesTest, RotationMakesSkylineNontrivial) {
  const Dataset ds = MakeRectanglesDataset();
  const auto sky = ComputeGroundTruthSkyline(ds);
  EXPECT_GE(sky.size(), 2u);
  // The largest rectangle has the largest area, so it is always skyline.
  EXPECT_TRUE(std::find(sky.begin(), sky.end(), 49) != sky.end());
}

TEST(RectanglesTest, SeedChangesRotations) {
  const Dataset a = MakeRectanglesDataset(1);
  const Dataset b = MakeRectanglesDataset(2);
  EXPECT_NE(a.value(0, 0), b.value(0, 0));
  // Areas are rotation-invariant.
  EXPECT_DOUBLE_EQ(a.value(0, 2), b.value(0, 2));
}

TEST(MoviesTest, FiftyMovies) {
  const Dataset ds = MakeMoviesDataset();
  ASSERT_EQ(ds.size(), 50);
  EXPECT_EQ(ds.schema().num_known(), 2);
  EXPECT_EQ(ds.schema().num_crowd(), 1);
  for (const Tuple& t : ds.tuples()) {
    EXPECT_GE(t.values[1], 2000);  // release year range of the query
    EXPECT_LE(t.values[1], 2012);
    EXPECT_GT(t.values[0], 0);  // box office
    EXPECT_GE(t.values[2], 1.0);  // rating range
    EXPECT_LE(t.values[2], 10.0);
  }
}

TEST(MoviesTest, SkylineMatchesPaperQ2) {
  const Dataset ds = MakeMoviesDataset();
  const std::set<std::string> expected = {
      "Avatar",
      "The Avengers",
      "Inception",
      "The Lord of the Rings: The Fellowship of the Ring",
      "The Dark Knight Rises",
  };
  EXPECT_EQ(SkylineLabels(ds), expected);
}

TEST(MoviesTest, KnownSkylineIsAvatarAndAvengers) {
  const Dataset ds = MakeMoviesDataset();
  std::set<std::string> known;
  for (const int id :
       ComputeSkylineSFS(PreferenceMatrix::FromKnown(ds))) {
    known.insert(ds.tuple(id).label);
  }
  EXPECT_EQ(known, (std::set<std::string>{"Avatar", "The Avengers"}));
}

TEST(MoviesTest, PaperRatingAverageClaim) {
  // "the average rating of three skyline movies [not in the AK skyline]
  // is very high (i.e., 8.7 out of 10.0)".
  const Dataset ds = MakeMoviesDataset();
  double sum = 0;
  int count = 0;
  for (const Tuple& t : ds.tuples()) {
    if (t.label == "Inception" || t.label == "The Dark Knight Rises" ||
        t.label ==
            "The Lord of the Rings: The Fellowship of the Ring") {
      sum += t.values[2];
      ++count;
    }
  }
  ASSERT_EQ(count, 3);
  EXPECT_NEAR(sum / 3.0, 8.7, 0.05);
}

TEST(MlbTest, FortyPitchers) {
  const Dataset ds = MakeMlbPitchersDataset();
  ASSERT_EQ(ds.size(), 40);
  EXPECT_EQ(ds.schema().num_known(), 3);
  EXPECT_EQ(ds.schema().num_crowd(), 1);
  EXPECT_EQ(ds.schema().attribute(2).direction, Direction::kMin);  // ERA
}

TEST(MlbTest, SkylineIsTheCyYoungCandidates) {
  const Dataset ds = MakeMlbPitchersDataset();
  const std::set<std::string> expected = {
      "Clayton Kershaw", "Bartolo Colon", "Yu Darvish", "Max Scherzer"};
  EXPECT_EQ(SkylineLabels(ds), expected);
}

TEST(MlbTest, KnownSkylineEqualsFullSkyline) {
  // For Q3 the four candidates are already the AK skyline; the crowd's job
  // is to confirm that no other pitcher's perceived value rescues them.
  const Dataset ds = MakeMlbPitchersDataset();
  std::set<std::string> known;
  for (const int id :
       ComputeSkylineSFS(PreferenceMatrix::FromKnown(ds))) {
    known.insert(ds.tuple(id).label);
  }
  EXPECT_EQ(known, SkylineLabels(ds));
}

}  // namespace
}  // namespace crowdsky
