// The auditor must (a) pass clean runs of every driver and (b) report each
// deliberately-planted corruption: broken partial-order axioms, mismatched
// dominance structures, double-charged sessions, duplicated paid pairs and
// completion-state regressions.
#include "audit/invariant_auditor.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algo/crowdsky_algorithm.h"
#include "algo/evaluator.h"
#include "algo/parallel_dset.h"
#include "algo/parallel_sl.h"
#include "core/engine.h"
#include "crowd/oracle.h"
#include "crowd/session.h"
#include "data/generator.h"
#include "data/toy.h"

namespace crowdsky {
namespace audit {
namespace {

bool HasViolation(const AuditReport& report, const std::string& invariant) {
  return std::any_of(report.violations.begin(), report.violations.end(),
                     [&invariant](const AuditViolation& v) {
                       return v.invariant == invariant;
                     });
}

RelationSnapshot EmptySnapshot(int n) {
  RelationSnapshot snap;
  snap.n = n;
  snap.strict.assign(static_cast<size_t>(n),
                     DynamicBitset(static_cast<size_t>(n)));
  snap.rep.resize(static_cast<size_t>(n));
  for (int v = 0; v < n; ++v) snap.rep[static_cast<size_t>(v)] = v;
  return snap;
}

// ---------------------------------------------------------------------------
// Preference-graph relation axioms.

TEST(RelationAuditTest, CleanGraphPasses) {
  PreferenceGraph graph(5);
  graph.AddPreference(0, 1).CheckOK();
  graph.AddPreference(1, 2).CheckOK();
  graph.AddEquivalence(2, 3).CheckOK();
  graph.AddPreference(3, 4).CheckOK();
  AuditReport report;
  InvariantAuditor().AuditPreferenceGraph(graph, "test", &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 0);
}

TEST(RelationAuditTest, GraphStaysAuditableUnderContradictions) {
  PreferenceGraph graph(4, ContradictionPolicy::kFirstWins);
  graph.AddPreference(0, 1).CheckOK();
  graph.AddPreference(1, 2).CheckOK();
  graph.AddPreference(2, 0).CheckOK();   // cycle attempt, rejected
  graph.AddEquivalence(0, 2).CheckOK();  // contradicts 0 -> 2, rejected
  EXPECT_EQ(graph.contradiction_count(), 2);
  AuditReport report;
  InvariantAuditor().AuditPreferenceGraph(graph, "noisy", &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(RelationAuditTest, ReportsReflexiveEdge) {
  RelationSnapshot snap = EmptySnapshot(3);
  snap.strict[0].Set(0);
  AuditReport report;
  InvariantAuditor().AuditRelationSnapshot(snap, "t", &report);
  EXPECT_TRUE(HasViolation(report, "prefgraph.irreflexive"))
      << report.ToString();
}

TEST(RelationAuditTest, ReportsAntisymmetryViolation) {
  RelationSnapshot snap = EmptySnapshot(3);
  snap.strict[0].Set(1);
  snap.strict[1].Set(0);
  AuditReport report;
  InvariantAuditor().AuditRelationSnapshot(snap, "t", &report);
  EXPECT_TRUE(HasViolation(report, "prefgraph.antisymmetry"))
      << report.ToString();
}

TEST(RelationAuditTest, ReportsClosureGap) {
  RelationSnapshot snap = EmptySnapshot(3);
  snap.strict[0].Set(1);  // 0 < 1 and 1 < 2, but 0 < 2 is missing:
  snap.strict[1].Set(2);  // the closure is not transitively closed.
  AuditReport report;
  InvariantAuditor().AuditRelationSnapshot(snap, "t", &report);
  EXPECT_TRUE(HasViolation(report, "prefgraph.closure")) << report.ToString();
}

TEST(RelationAuditTest, ReportsStrictEdgeInsideEquivalenceClass) {
  RelationSnapshot snap = EmptySnapshot(3);
  snap.rep[1] = 0;        // {0, 1} is one class...
  snap.strict[0].Set(1);  // ...yet 0 is strictly preferred over 1.
  AuditReport report;
  InvariantAuditor().AuditRelationSnapshot(snap, "t", &report);
  EXPECT_TRUE(HasViolation(report, "prefgraph.class_strict"))
      << report.ToString();
}

TEST(RelationAuditTest, ReportsClassMembersWithDifferentRows) {
  RelationSnapshot snap = EmptySnapshot(4);
  snap.rep[1] = 0;        // {0, 1} is one class...
  snap.strict[0].Set(2);  // ...but only 0 is preferred over 2.
  AuditReport report;
  InvariantAuditor().AuditRelationSnapshot(snap, "t", &report);
  EXPECT_TRUE(HasViolation(report, "prefgraph.class_rows"))
      << report.ToString();
}

TEST(RelationAuditTest, ReportsDanglingRepresentative) {
  RelationSnapshot snap = EmptySnapshot(3);
  snap.rep[2] = 1;
  snap.rep[1] = 0;  // rep[2] is not itself a representative
  AuditReport report;
  InvariantAuditor().AuditRelationSnapshot(snap, "t", &report);
  EXPECT_TRUE(HasViolation(report, "prefgraph.representative"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Dominance structure vs. brute force.

TEST(DominanceAuditTest, CleanStructurePasses) {
  GeneratorOptions gen;
  gen.cardinality = 120;
  gen.num_known = 3;
  gen.num_crowd = 1;
  gen.seed = 11;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();
  const PreferenceMatrix known = PreferenceMatrix::FromKnown(ds);
  const DominanceStructure structure(known);
  AuditReport report;
  InvariantAuditor().AuditDominanceStructure(structure, known, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 0);
}

TEST(DominanceAuditTest, ReportsStructureBuiltFromDifferentData) {
  GeneratorOptions gen;
  gen.cardinality = 60;
  gen.num_known = 3;
  gen.num_crowd = 1;
  gen.seed = 11;
  const Dataset ds_a = GenerateDataset(gen).ValueOrDie();
  gen.seed = 12;
  const Dataset ds_b = GenerateDataset(gen).ValueOrDie();
  // The structure of dataset A audited against dataset B's raw matrix
  // must disagree on dominating sets.
  const DominanceStructure structure(PreferenceMatrix::FromKnown(ds_a));
  AuditReport report;
  InvariantAuditor().AuditDominanceStructure(
      structure, PreferenceMatrix::FromKnown(ds_b), &report);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(HasViolation(report, "dominance.dominators") ||
              HasViolation(report, "dominance.dominatees"))
      << report.ToString();
}

TEST(DominanceAuditTest, ReportsSizeMismatch) {
  GeneratorOptions gen;
  gen.cardinality = 20;
  gen.num_known = 2;
  gen.num_crowd = 1;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();
  gen.cardinality = 21;
  const Dataset bigger = GenerateDataset(gen).ValueOrDie();
  const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
  AuditReport report;
  InvariantAuditor().AuditDominanceStructure(
      structure, PreferenceMatrix::FromKnown(bigger), &report);
  EXPECT_TRUE(HasViolation(report, "dominance.shape")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Session accounting.

class SessionAuditTest : public ::testing::Test {
 protected:
  SessionAuditTest() : toy_(MakeToyDataset()), oracle_(toy_) {}

  Dataset toy_;
  PerfectOracle oracle_;
};

TEST_F(SessionAuditTest, CleanSessionPasses) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.Ask(0, 2, 3);
  session.EndRound();
  session.Ask(0, 1, 0);  // cache hit, free
  session.Ask(0, 4, 5);
  session.EndRound();
  AuditReport report;
  InvariantAuditor().AuditSession(session, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(SessionAuditTest, ReportsDoubleChargedRound) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  // Charge the same round twice: history says two rounds of one question
  // each, but only one question was ever paid for.
  snap.questions_per_round.push_back(1);
  snap.rounds = 2;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.round_sum"))
      << report.ToString();
}

TEST_F(SessionAuditTest, ReportsDuplicatePaidPair) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.Ask(0, 2, 3);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  // Pay the first pair a second time (keep the counters consistent so the
  // duplicate itself is the only corruption).
  snap.paid_pairs.push_back(snap.paid_pairs.front());
  snap.pair_questions += 1;
  snap.questions_per_round.back() += 1;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.no_repay")) << report.ToString();
}

TEST_F(SessionAuditTest, DuplicatePaidPairWithRecordedRetryPasses) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  // A second paid attempt is legitimate exactly when a retry justifies it.
  snap.paid_pairs.push_back(snap.paid_pairs.front());
  snap.pair_questions += 1;
  snap.questions_per_round.back() += 1;
  snap.retry_pairs.push_back(snap.paid_pairs.front());
  snap.retries += 1;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(SessionAuditTest, ReportsRetryForNeverPaidPair) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  snap.retry_pairs.push_back(PairQuestion{0, 2, 3});  // never paid for
  snap.retries += 1;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.retry_unpaid"))
      << report.ToString();
}

TEST_F(SessionAuditTest, ReportsRetryCounterMismatch) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  snap.retry_pairs.push_back(snap.paid_pairs.front());
  // The counter was not bumped alongside the log.
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.retry_log"))
      << report.ToString();
}

TEST_F(SessionAuditTest, ReportsUnresolvedCounterMismatch) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  snap.unresolved_pairs.push_back(snap.paid_pairs.front());
  // stats.unresolved_questions still says zero.
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.unresolved_log"))
      << report.ToString();
}

TEST_F(SessionAuditTest, ReportsUnresolvedPairThatWasNeverPaid) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  snap.unresolved_pairs.push_back(PairQuestion{0, 4, 5});
  snap.unresolved += 1;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.unresolved_unpaid"))
      << report.ToString();
}

TEST_F(SessionAuditTest, ReportsPaidLogCounterMismatch) {
  CrowdSession session(&oracle_);
  session.Ask(0, 0, 1);
  session.EndRound();
  SessionSnapshot snap = SnapshotSession(session);
  snap.paid_pairs.clear();  // log lost a paid question
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.paid_log")) << report.ToString();
}

TEST_F(SessionAuditTest, ReportsNonCanonicalLogEntry) {
  SessionSnapshot snap;
  snap.paid_pairs.push_back(PairQuestion{0, 5, 2});  // first > second
  snap.pair_questions = 1;
  snap.questions_per_round = {1};
  snap.rounds = 1;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.canonical_log"))
      << report.ToString();
}

TEST_F(SessionAuditTest, ReportsEmptyRoundInHistory) {
  SessionSnapshot snap;
  snap.questions_per_round = {0};
  snap.rounds = 1;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.rounds")) << report.ToString();
}

TEST_F(SessionAuditTest, ReportsBudgetOverrun) {
  SessionSnapshot snap;
  snap.paid_pairs.push_back(PairQuestion{0, 0, 1});
  snap.paid_pairs.push_back(PairQuestion{0, 0, 2});
  snap.pair_questions = 2;
  snap.questions_per_round = {2};
  snap.rounds = 1;
  snap.budget = 1;
  AuditReport report;
  InvariantAuditor().AuditSessionSnapshot(snap, &report);
  EXPECT_TRUE(HasViolation(report, "session.budget")) << report.ToString();
}

TEST_F(SessionAuditTest, RespectedBudgetPasses) {
  CrowdSession session(&oracle_);
  session.SetQuestionBudget(2);
  session.Ask(0, 0, 1);
  session.Ask(0, 2, 3);
  session.EndRound();
  EXPECT_FALSE(session.CanAsk());
  AuditReport report;
  InvariantAuditor().AuditSession(session, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// ---------------------------------------------------------------------------
// AMT cost formula.

TEST(CostAuditTest, DefaultModelMatchesFormula) {
  AuditReport report;
  InvariantAuditor().AuditCostModel(AmtCostModel{}, {7, 5, 1, 10}, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(CostAuditTest, ReportsDegenerateModel) {
  AmtCostModel model;
  model.questions_per_hit = 0;
  AuditReport report;
  InvariantAuditor().AuditCostModel(model, {1}, &report);
  EXPECT_TRUE(HasViolation(report, "cost.model")) << report.ToString();
}

// ---------------------------------------------------------------------------
// Completion-state monotonicity.

TEST(CompletionMonitorTest, MonotoneProgressPasses) {
  CompletionState state(4);
  CompletionMonitor monitor(4);
  AuditReport report;
  monitor.Observe(state, &report);
  state.MarkSkyline(0);
  monitor.Observe(state, &report);
  state.MarkNonSkyline(1);
  monitor.Observe(state, &report);
  state.MarkNonSkyline(2);
  state.MarkSkyline(3);
  monitor.Observe(state, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(monitor.observations(), 4);
}

TEST(CompletionMonitorTest, ReportsLostCompleteMark) {
  CompletionState state(3);
  CompletionMonitor monitor(3);
  AuditReport report;
  state.MarkSkyline(0);
  monitor.Observe(state, &report);
  state.complete.Reset(0);  // corruption: completion regressed
  monitor.Observe(state, &report);
  EXPECT_TRUE(HasViolation(report, "completion.monotone_complete"))
      << report.ToString();
}

TEST(CompletionMonitorTest, ReportsNonSkylineWithoutComplete) {
  CompletionState state(3);
  CompletionMonitor monitor(3);
  AuditReport report;
  state.nonskyline.Set(1);  // corruption: fate without completion
  monitor.Observe(state, &report);
  EXPECT_TRUE(HasViolation(report, "completion.nonskyline_subset"))
      << report.ToString();
}

TEST(CompletionMonitorTest, ReportsSkylineFateFlip) {
  CompletionState state(3);
  CompletionMonitor monitor(3);
  AuditReport report;
  state.MarkSkyline(0);  // 0 completes as a skyline tuple...
  monitor.Observe(state, &report);
  state.MarkNonSkyline(0);  // ...then flips to non-skyline.
  monitor.Observe(state, &report);
  EXPECT_TRUE(HasViolation(report, "completion.fate_flip"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Result consistency.

TEST(ResultAuditTest, ReportsSkylineDisagreeingWithCompletion) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  CrowdSession session(&oracle);
  CompletionState completion(3);
  completion.MarkSkyline(0);
  completion.MarkNonSkyline(1);
  completion.MarkSkyline(2);
  AlgoResult result;
  result.skyline = {0, 1};  // 1 is complete non-skyline; 2 is missing
  AuditReport report;
  InvariantAuditor().AuditResult(result, session, 3, completion, &report);
  EXPECT_TRUE(HasViolation(report, "result.skyline_set"))
      << report.ToString();
}

TEST(ResultAuditTest, ReportsQuestionCounterMismatch) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  CrowdSession session(&oracle);
  session.Ask(0, 0, 1);
  session.EndRound();
  CompletionState completion(2);
  completion.MarkSkyline(0);
  completion.MarkNonSkyline(1);
  AlgoResult result;
  result.skyline = {0};
  result.questions = 0;  // the session paid for one
  result.rounds = 1;
  result.questions_per_round = {1};
  AuditReport report;
  InvariantAuditor().AuditResult(result, session, 2, completion, &report);
  EXPECT_TRUE(HasViolation(report, "result.questions"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// End-to-end: every driver under CrowdSkyOptions::audit.

class AuditedRunTest : public ::testing::Test {
 protected:
  static Dataset Make(uint64_t seed) {
    GeneratorOptions gen;
    gen.cardinality = 80;
    gen.num_known = 3;
    gen.num_crowd = 2;
    gen.seed = seed;
    return GenerateDataset(gen).ValueOrDie();
  }
};

TEST_F(AuditedRunTest, AllDriversPassUnderPerfectOracle) {
  const Dataset ds = Make(7);
  CrowdSkyOptions options;
  options.audit = true;
  for (int driver = 0; driver < 3; ++driver) {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    AlgoResult result;
    switch (driver) {
      case 0:
        result = RunCrowdSky(ds, &session, options);
        break;
      case 1:
        result = RunParallelDSet(ds, &session, options);
        break;
      default:
        result = RunParallelSL(ds, &session, options);
        break;
    }
    EXPECT_FALSE(result.skyline.empty());
  }
}

TEST_F(AuditedRunTest, EngineRunsAuditedWithNoisyWorkers) {
  const Dataset ds = Make(9);
  EngineOptions options;
  options.algorithm = Algorithm::kParallelSL;
  options.oracle = OracleKind::kSimulated;
  options.worker.p_correct = 0.8;
  options.crowdsky.audit = true;
  const auto result = RunSkylineQuery(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->algo.skyline.empty());
}

TEST_F(AuditedRunTest, AuditedBudgetRunStaysConsistent) {
  const Dataset ds = Make(13);
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(10);
  CrowdSkyOptions options;
  options.audit = true;
  const AlgoResult result = RunCrowdSky(ds, &session, options);
  EXPECT_LE(result.questions, 10);
}

// ---------------------------------------------------------------------------
// Journal / durability ledger.

class JournalAuditTest : public ::testing::Test {
 protected:
  JournalAuditTest() : toy_(MakeToyDataset()) {}

  /// A resolved single-attempt pair record, the shape a fault-free ask
  /// journals.
  static persist::JournalRecord PairRec(int attr, int first, int second) {
    persist::JournalRecord r;
    r.kind = persist::JournalRecord::Kind::kPairAsk;
    r.question = PairQuestion{attr, first, second};
    r.resolved = true;
    r.answer = Answer::kFirstPreferred;
    r.attempts.push_back(persist::AttemptOutcome{});
    return r;
  }

  static persist::JournalRecord RoundRec(int64_t questions) {
    persist::JournalRecord r;
    r.kind = persist::JournalRecord::Kind::kRoundEnd;
    r.round_questions = questions;
    return r;
  }

  /// Two paid asks + one closed round on session_, with the matching
  /// journal.
  void AskTwo(std::vector<persist::JournalRecord>* records) {
    session_.Ask(0, 0, 1);
    session_.Ask(0, 2, 3);
    session_.EndRound();
    *records = {PairRec(0, 0, 1), PairRec(0, 2, 3), RoundRec(2)};
  }

  Dataset toy_;
  PerfectOracle oracle_{toy_};
  CrowdSession session_{&oracle_};
};

TEST_F(JournalAuditTest, CleanJournalPasses) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(JournalAuditTest, LiveSessionWithRealJournalPasses) {
  const std::string path =
      ::testing::TempDir() + "/audit_journal_live.bin";
  std::remove(path.c_str());
  auto writer =
      persist::JournalWriter::Create(path, 1, persist::SyncMode::kFlush);
  ASSERT_TRUE(writer.ok());
  CrowdSession session(&oracle_);
  session.AttachJournal(writer->get());
  session.Ask(0, 0, 1);
  session.Ask(0, 2, 3);
  session.EndRound();
  session.Ask(0, 1, 0);  // cache hit: must not reach the journal
  session.Ask(0, 4, 5);
  session.EndRound();
  ASSERT_TRUE((*writer)->Sync().ok());
  auto recovered = persist::ReadJournal(path);
  ASSERT_TRUE(recovered.ok());
  AuditReport report;
  InvariantAuditor().AuditJournal(recovered->records, session, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST_F(JournalAuditTest, ReportsPaidQuestionWithoutDurableRecord) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  // The second ask never made it to disk.
  records.erase(records.begin() + 1);
  records.back().round_questions = 1;
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(HasViolation(report, "journal.paid_log")) << report.ToString();
}

TEST_F(JournalAuditTest, ReportsSecondDurableRecordForOneQuestion) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  // Re-pay the first question behind the session's back.
  records[1] = records[0];
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(HasViolation(report, "journal.one_record"))
      << report.ToString();
}

TEST_F(JournalAuditTest, ReportsRoundPartitionMismatch) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  records.back().round_questions = 5;
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(HasViolation(report, "journal.round_partition"))
      << report.ToString();
}

TEST_F(JournalAuditTest, ReportsResolvedRecordEndingInFailure) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  records[0].attempts.back().status = persist::AttemptOutcome::kFailed;
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(HasViolation(report, "journal.record_shape"))
      << report.ToString();
}

TEST_F(JournalAuditTest, ReportsUnjournaledRetry) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  // An extra successful attempt inside one record: the journal now
  // implies a retry the session never recorded (and a mid-record
  // non-failed attempt).
  records[0].attempts.push_back(persist::AttemptOutcome{});
  records.back().round_questions = 3;
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(HasViolation(report, "journal.retries")) << report.ToString();
  EXPECT_TRUE(HasViolation(report, "journal.record_shape"))
      << report.ToString();
}

TEST_F(JournalAuditTest, ReportsFaultCursorRegression) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  records[0].fault_attempt_draws = 9;
  records[0].fault_vote_draws = 45;  // later records stay at 0
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(HasViolation(report, "journal.fault_cursor"))
      << report.ToString();
}

TEST_F(JournalAuditTest, ReportsOpenRoundTailMismatch) {
  std::vector<persist::JournalRecord> records;
  AskTwo(&records);
  // A question journaled past the last round end that the session never
  // paid for in its open round.
  records.push_back(PairRec(0, 6, 7));
  AuditReport report;
  InvariantAuditor().AuditJournalSnapshot(records,
                                          SnapshotSession(session_), &report);
  EXPECT_TRUE(HasViolation(report, "journal.open_round"))
      << report.ToString();
}

// ---------------------------------------------------------------------------
// Observability counters vs. the ledgers they mirror.

class ObsAuditTest : public ::testing::Test {
 protected:
  ObsAuditTest() : observer_(obs::ObsLevel::kCounters) {
    GeneratorOptions gen;
    gen.cardinality = 50;
    gen.num_known = 3;
    gen.num_crowd = 1;
    gen.seed = 29;
    dataset_ = GenerateDataset(gen).ValueOrDie();
  }

  /// Runs the serial driver with counters attached and performs the same
  /// end-of-run scrape the engine does, leaving a registry that must pass
  /// AuditObservability untouched.
  void RunInstrumented() {
    oracle_ = std::make_unique<PerfectOracle>(dataset_);
    session_ = std::make_unique<CrowdSession>(oracle_.get());
    session_->AttachObserver(&observer_);
    CrowdSkyOptions options;
    options.obs = &observer_;
    result_ = RunCrowdSky(dataset_, session_.get(), options);

    obs::MetricRegistry& metrics = observer_.metrics();
    metrics.FindOrCreateCounter("crowdsky.worker_answers")
        ->Add(session_->oracle_stats().worker_answers);
    metrics.FindOrCreateCounter("crowdsky.free_lookups")
        ->Add(result_.free_lookups);
    metrics.FindOrCreateCounter("crowdsky.hits_paid")
        ->Add(model_.Hits(session_->questions_per_round()));
    metrics.FindOrCreateGauge("crowdsky.cost_usd")
        ->Set(model_.Cost(session_->questions_per_round()));
  }

  AuditReport Audit() {
    AuditReport report;
    InvariantAuditor().AuditObservability(observer_.metrics(), *session_,
                                          result_, model_, &report);
    return report;
  }

  Dataset dataset_ = Dataset::Make(Schema::MakeSynthetic(1, 1),
                                   {{0.0, 0.0}})
                         .ValueOrDie();
  obs::RunObserver observer_;
  std::unique_ptr<PerfectOracle> oracle_;
  std::unique_ptr<CrowdSession> session_;
  AlgoResult result_;
  AmtCostModel model_;
};

TEST_F(ObsAuditTest, CleanInstrumentedRunPasses) {
  RunInstrumented();
  const AuditReport report = Audit();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 0);
}

TEST_F(ObsAuditTest, ReportsCounterDriftingFromLedger) {
  RunInstrumented();
  observer_.metrics().FindOrCreateCounter("crowdsky.rounds")->Add(1);
  const AuditReport report = Audit();
  EXPECT_TRUE(HasViolation(report, "obs.counter_ledger"))
      << report.ToString();
}

TEST_F(ObsAuditTest, ReportsUnknownCounterUnderDeterministicPrefix) {
  RunInstrumented();
  observer_.metrics()
      .FindOrCreateCounter("crowdsky.not_in_catalog")
      ->Add(1);
  const AuditReport report = Audit();
  EXPECT_TRUE(HasViolation(report, "obs.counter_known"))
      << report.ToString();
}

TEST_F(ObsAuditTest, ReportsMissingCatalogCounter) {
  // A session that never had an observer publishes nothing, so every
  // catalog counter is reported missing.
  oracle_ = std::make_unique<PerfectOracle>(dataset_);
  session_ = std::make_unique<CrowdSession>(oracle_.get());
  result_ = RunCrowdSky(dataset_, session_.get(), CrowdSkyOptions{});
  const AuditReport report = Audit();
  EXPECT_TRUE(HasViolation(report, "obs.counter_present"))
      << report.ToString();
}

TEST_F(ObsAuditTest, ReportsCostGaugeMismatch) {
  RunInstrumented();
  observer_.metrics().FindOrCreateGauge("crowdsky.cost_usd")->Set(-1.0);
  const AuditReport report = Audit();
  EXPECT_TRUE(HasViolation(report, "obs.cost_gauge")) << report.ToString();
}

}  // namespace
}  // namespace audit
}  // namespace crowdsky
