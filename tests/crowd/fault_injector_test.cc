#include "crowd/fault_injector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"

namespace crowdsky {
namespace {

FaultPlan ModeratePlan() {
  FaultPlan plan;
  plan.transient_error_rate = 0.3;
  plan.hit_expiration_rate = 0.2;
  plan.worker_no_show_rate = 0.25;
  plan.straggler_rate = 0.1;
  return plan;
}

TEST(FaultPlanTest, DefaultPlanIsDisabled) {
  const FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  EXPECT_EQ(FaultPlanSummary(plan), "faults disabled");
}

TEST(FaultPlanTest, AnyNonZeroRateEnablesThePlan) {
  FaultPlan plan;
  plan.straggler_rate = 0.01;
  EXPECT_TRUE(plan.enabled());
  EXPECT_NE(FaultPlanSummary(plan), "faults disabled");
}

TEST(FaultInjectorTest, SameSeedReplaysTheSameFaultTrace) {
  FaultInjector a(ModeratePlan(), 42);
  FaultInjector b(ModeratePlan(), 42);
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(a.NextAttemptFault(), b.NextAttemptFault());
    EXPECT_EQ(a.NextVoteFault(), b.NextVoteFault());
  }
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  FaultInjector a(ModeratePlan(), 42);
  FaultInjector b(ModeratePlan(), 43);
  int disagreements = 0;
  for (int i = 0; i < 500; ++i) {
    disagreements += a.NextAttemptFault() != b.NextAttemptFault();
  }
  EXPECT_GT(disagreements, 0);
}

TEST(FaultInjectorTest, RatesShapeTheDrawFrequencies) {
  FaultPlan plan;
  plan.transient_error_rate = 0.5;
  plan.worker_no_show_rate = 0.25;
  FaultInjector injector(plan, 7);
  int transient = 0, no_show = 0;
  const int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    transient += injector.NextAttemptFault() == AttemptFault::kTransientError;
    no_show += injector.NextVoteFault() == VoteFault::kNoShow;
  }
  EXPECT_NEAR(static_cast<double>(transient) / kDraws, 0.5, 0.05);
  EXPECT_NEAR(static_cast<double>(no_show) / kDraws, 0.25, 0.05);
}

TEST(FaultInjectorTest, DisabledPlanNeverFaults) {
  FaultInjector injector(FaultPlan{}, 99);
  EXPECT_FALSE(injector.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.NextAttemptFault(), AttemptFault::kNone);
    EXPECT_EQ(injector.NextVoteFault(), VoteFault::kOnTime);
  }
}

// The determinism contract hinges on Bernoulli(0) consuming no RNG state:
// a disabled fault class must leave the random stream untouched so a
// fault-free run is bit-identical to one without fault injection at all.
TEST(FaultInjectorTest, ZeroRateBernoulliConsumesNoRandomness) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(a.Bernoulli(0.0));
  }
  EXPECT_EQ(a.Next(), b.Next());
}

TEST(FaultInjectorDeathTest, RejectsOutOfRangeRates) {
  FaultPlan plan;
  plan.transient_error_rate = 1.5;
  EXPECT_DEATH(FaultInjector(plan, 1), "probabilities");
}

TEST(FaultInjectorDeathTest, RejectsNegativeDelayRounds) {
  FaultPlan plan;
  plan.straggler_delay_rounds = -1;
  EXPECT_DEATH(FaultInjector(plan, 1), "");
}

}  // namespace
}  // namespace crowdsky
