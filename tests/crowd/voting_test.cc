#include "crowd/voting.h"

#include <gtest/gtest.h>

#include "common/random.h"
#include "data/generator.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {
namespace {

TEST(MajorityCorrectProbabilityTest, SingleWorkerIsP) {
  EXPECT_DOUBLE_EQ(MajorityCorrectProbability(1, 0.8), 0.8);
  EXPECT_DOUBLE_EQ(MajorityCorrectProbability(1, 0.3), 0.3);
}

TEST(MajorityCorrectProbabilityTest, ThreeWorkersClosedForm) {
  // P = p^3 + 3 p^2 (1-p).
  const double p = 0.8;
  EXPECT_NEAR(MajorityCorrectProbability(3, p),
              p * p * p + 3 * p * p * (1 - p), 1e-12);
}

TEST(MajorityCorrectProbabilityTest, FiveWorkersPaperDefault) {
  // omega = 5, p = 0.8 -> ~0.94208.
  EXPECT_NEAR(MajorityCorrectProbability(5, 0.8), 0.94208, 1e-5);
}

TEST(MajorityCorrectProbabilityTest, MoreWorkersHelpWhenPAboveHalf) {
  for (int omega = 1; omega <= 9; omega += 2) {
    EXPECT_LT(MajorityCorrectProbability(omega, 0.8),
              MajorityCorrectProbability(omega + 2, 0.8));
  }
}

TEST(MajorityCorrectProbabilityTest, MoreWorkersHurtWhenPBelowHalf) {
  EXPECT_GT(MajorityCorrectProbability(3, 0.4),
            MajorityCorrectProbability(5, 0.4));
}

TEST(MajorityCorrectProbabilityTest, FairCoinStaysHalf) {
  for (int omega = 1; omega <= 7; omega += 2) {
    EXPECT_NEAR(MajorityCorrectProbability(omega, 0.5), 0.5, 1e-12);
  }
}

TEST(VotingPolicyTest, StaticAlwaysSame) {
  const VotingPolicy p = VotingPolicy::MakeStatic(5);
  EXPECT_FALSE(p.is_dynamic());
  EXPECT_EQ(p.WorkersFor(0), 5);
  EXPECT_EQ(p.WorkersFor(1000), 5);
}

TEST(VotingPolicyTest, DynamicThresholds) {
  const VotingPolicy p = VotingPolicy::MakeDynamicWithThresholds(5, 10, 100);
  EXPECT_TRUE(p.is_dynamic());
  EXPECT_EQ(p.WorkersFor(0), 3);
  EXPECT_EQ(p.WorkersFor(9), 3);
  EXPECT_EQ(p.WorkersFor(10), 5);
  EXPECT_EQ(p.WorkersFor(99), 5);
  EXPECT_EQ(p.WorkersFor(100), 7);
  EXPECT_EQ(p.WorkersFor(100000), 7);
}

TEST(VotingPolicyTest, DynamicFromStructureOrdersThresholds) {
  GeneratorOptions opt;
  opt.cardinality = 300;
  opt.num_known = 2;
  opt.num_crowd = 1;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  const DominanceStructure s(PreferenceMatrix::FromKnown(ds));
  Rng rng(5);
  const VotingPolicy p = VotingPolicy::MakeDynamic(5, s, &rng, 0.3, 0.7);
  EXPECT_TRUE(p.is_dynamic());
  EXPECT_LE(p.alpha(), p.beta());
  EXPECT_GE(p.alpha(), 1u);
  // Extremes of the frequency range get the extreme worker counts.
  EXPECT_EQ(p.WorkersFor(0), 3);
  EXPECT_EQ(p.WorkersFor(1u << 30), 7);
}

TEST(VotingPolicyTest, DegenerateDominanceFreeData) {
  // A pure anti-chain: nothing dominates anything, all freqs are 0.
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1),
                          {{1, 4, 0.1}, {2, 3, 0.2}, {3, 2, 0.3}, {4, 1, 0.4}});
  ds.status().CheckOK();
  const DominanceStructure s(PreferenceMatrix::FromKnown(*ds));
  Rng rng(5);
  const VotingPolicy p = VotingPolicy::MakeDynamic(5, s, &rng);
  EXPECT_EQ(p.WorkersFor(0), 3);
  EXPECT_EQ(p.WorkersFor(1), 7);
}

TEST(VotingPolicyDeathTest, RejectsEvenWorkers) {
  EXPECT_DEATH(VotingPolicy::MakeStatic(4), "odd");
  EXPECT_DEATH(VotingPolicy::MakeStatic(0), "odd");
}

TEST(VotingPolicyDeathTest, DynamicNeedsThreeWorkers) {
  EXPECT_DEATH(VotingPolicy::MakeDynamicWithThresholds(1, 1, 2), "");
}

}  // namespace
}  // namespace crowdsky
