#include "crowd/marketplace.h"

#include <gtest/gtest.h>

#include <set>

#include "data/generator.h"
#include "data/toy.h"

namespace crowdsky {
namespace {

MarketplaceOptions BaseOptions() {
  MarketplaceOptions opt;
  opt.pool_size = 100;
  opt.population.p_correct = 0.8;
  opt.population.p_stddev = 0.1;
  opt.seed = 7;
  return opt;
}

TEST(MarketplaceTest, PoolIsBuiltDeterministically) {
  const Dataset toy = MakeToyDataset();
  CrowdMarketplace a(toy, BaseOptions(), VotingPolicy::MakeStatic(5));
  CrowdMarketplace b(toy, BaseOptions(), VotingPolicy::MakeStatic(5));
  ASSERT_EQ(a.pool_size(), 100);
  for (int i = 0; i < a.pool_size(); ++i) {
    EXPECT_DOUBLE_EQ(a.workers()[static_cast<size_t>(i)].p_correct,
                     b.workers()[static_cast<size_t>(i)].p_correct);
  }
  EXPECT_EQ(a.AnswerPair({0, 0, 1}, {}), b.AnswerPair({0, 0, 1}, {}));
}

TEST(MarketplaceTest, NoQualificationAdmitsEveryone) {
  const Dataset toy = MakeToyDataset();
  CrowdMarketplace m(toy, BaseOptions(), VotingPolicy::MakeStatic(5));
  EXPECT_EQ(m.qualified_count(), m.pool_size());
}

TEST(MarketplaceTest, QualificationRaisesPoolReliability) {
  const Dataset toy = MakeToyDataset();
  MarketplaceOptions open = BaseOptions();
  open.population.spammer_fraction = 0.3;
  CrowdMarketplace unfiltered(toy, open, VotingPolicy::MakeStatic(5));

  MarketplaceOptions masters = open;
  masters.gold_questions = 40;
  masters.qualification_threshold = 0.75;
  CrowdMarketplace filtered(toy, masters, VotingPolicy::MakeStatic(5));

  EXPECT_LT(filtered.qualified_count(), filtered.pool_size());
  EXPECT_GT(filtered.QualifiedPoolReliability(),
            unfiltered.QualifiedPoolReliability() + 0.05);
}

TEST(MarketplaceTest, QualificationFiltersSpammers) {
  const Dataset toy = MakeToyDataset();
  MarketplaceOptions opt = BaseOptions();
  opt.pool_size = 400;
  opt.population.spammer_fraction = 0.25;
  opt.gold_questions = 60;
  opt.qualification_threshold = 0.7;
  CrowdMarketplace m(toy, opt, VotingPolicy::MakeStatic(5));
  int qualified_spammers = 0, total_spammers = 0;
  for (const Worker& w : m.workers()) {
    if (!w.spammer) continue;
    ++total_spammers;
    qualified_spammers += w.qualified ? 1 : 0;
  }
  ASSERT_GT(total_spammers, 50);
  // A spammer passes a 60-question gold test at threshold 0.7 with
  // probability ~ 0.1%; essentially none should survive.
  EXPECT_LE(qualified_spammers, total_spammers / 20);
}

TEST(MarketplaceTest, AnswersTrackWorkerHistory) {
  const Dataset toy = MakeToyDataset();
  CrowdMarketplace m(toy, BaseOptions(), VotingPolicy::MakeStatic(5));
  m.AnswerPair({0, 0, 1}, {});
  m.AnswerPair({0, 2, 3}, {});
  EXPECT_EQ(m.stats().pair_questions, 2);
  EXPECT_EQ(m.stats().worker_answers, 10);
  int64_t total = 0;
  for (const Worker& w : m.workers()) total += w.answers_given;
  EXPECT_EQ(total, 10);
}

TEST(MarketplaceTest, TinyPoolAssignsEveryoneOnce) {
  const Dataset toy = MakeToyDataset();
  MarketplaceOptions opt = BaseOptions();
  opt.pool_size = 3;
  CrowdMarketplace m(toy, opt, VotingPolicy::MakeStatic(5));
  m.AnswerPair({0, 0, 1}, {});
  // Only 3 qualified workers exist, so 3 answers, not 5.
  EXPECT_EQ(m.stats().worker_answers, 3);
  for (const Worker& w : m.workers()) {
    EXPECT_EQ(w.answers_given, 1);
  }
}

TEST(MarketplaceTest, ReliablePoolAnswersAccurately) {
  GeneratorOptions gen;
  gen.cardinality = 60;
  gen.num_known = 1;
  gen.num_crowd = 1;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();
  MarketplaceOptions opt = BaseOptions();
  opt.population.p_correct = 0.95;
  opt.population.p_stddev = 0.0;
  CrowdMarketplace m(ds, opt, VotingPolicy::MakeStatic(5));
  PerfectOracle reference(ds);
  int correct = 0, total = 0;
  for (int u = 0; u < ds.size(); ++u) {
    for (int v = u + 1; v < ds.size(); v += 6) {
      const Answer truth = reference.AnswerPair({0, u, v}, {});
      correct += m.AnswerPair({0, u, v}, {}) == truth;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(correct) / total, 0.97);
}

TEST(MarketplaceTest, UnaryAnswersCenterOnTruth) {
  const Dataset toy = MakeToyDataset();
  MarketplaceOptions opt = BaseOptions();
  opt.population.unary_sigma = 0.05;
  CrowdMarketplace m(toy, opt, VotingPolicy::MakeStatic(5));
  double sum = 0;
  const int kTrials = 100;
  for (int i = 0; i < kTrials; ++i) sum += m.AnswerUnary(ToyId('e'), 0, {});
  EXPECT_NEAR(sum / kTrials, 4.0, 0.2);
}

TEST(MarketplaceDeathTest, ImpossibleQualificationAborts) {
  const Dataset toy = MakeToyDataset();
  MarketplaceOptions opt = BaseOptions();
  opt.pool_size = 5;
  opt.population.p_correct = 0.55;
  opt.population.p_stddev = 0.0;
  opt.gold_questions = 100;
  opt.qualification_threshold = 0.99;
  EXPECT_DEATH(CrowdMarketplace(toy, opt, VotingPolicy::MakeStatic(5)),
               "rejected every worker");
}

TEST(MarketplaceTest, WeightedVotesBeatUniformOnHeterogeneousPool) {
  GeneratorOptions gen;
  gen.cardinality = 60;
  gen.num_known = 1;
  gen.num_crowd = 1;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();
  MarketplaceOptions base;
  base.pool_size = 120;
  base.population.p_correct = 0.72;
  base.population.p_stddev = 0.15;
  base.gold_questions = 60;           // accurate quality estimates
  base.qualification_threshold = 0.0; // admit everyone; weights decide
  base.seed = 19;
  MarketplaceOptions weighted = base;
  weighted.weighted_votes = true;

  PerfectOracle reference(ds);
  int uniform_correct = 0, weighted_correct = 0, total = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    MarketplaceOptions b = base, w = weighted;
    b.seed = w.seed = seed * 131;
    CrowdMarketplace uniform_pool(ds, b, VotingPolicy::MakeStatic(5));
    CrowdMarketplace weighted_pool(ds, w, VotingPolicy::MakeStatic(5));
    for (int u = 0; u < ds.size(); ++u) {
      for (int v = u + 1; v < ds.size(); v += 4) {
        const Answer truth = reference.AnswerPair({0, u, v}, {});
        uniform_correct += uniform_pool.AnswerPair({0, u, v}, {}) == truth;
        weighted_correct += weighted_pool.AnswerPair({0, u, v}, {}) == truth;
        ++total;
      }
    }
  }
  EXPECT_GT(weighted_correct, uniform_correct);
}

// All three quality knobs at once: spammers in the population, a gold-
// question qualification gate, and log-odds vote weighting. The pipeline
// has to compose — qualification filters the spammers, the weights favour
// the demonstrably good workers, and aggregation still yields a majority
// answer that tracks the truth.
TEST(MarketplaceIntegrationTest, AllQualityKnobsComposeEndToEnd) {
  GeneratorOptions gen;
  gen.cardinality = 60;
  gen.num_known = 1;
  gen.num_crowd = 1;
  gen.seed = 5;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();
  MarketplaceOptions open;
  open.pool_size = 200;
  open.population.p_correct = 0.8;
  open.population.p_stddev = 0.1;
  open.population.spammer_fraction = 0.3;
  open.seed = 23;
  MarketplaceOptions knobs = open;
  knobs.gold_questions = 50;
  knobs.qualification_threshold = 0.7;
  knobs.weighted_votes = true;
  CrowdMarketplace unfiltered(ds, open, VotingPolicy::MakeStatic(5));
  CrowdMarketplace filtered(ds, knobs, VotingPolicy::MakeStatic(5));

  // Qualification rejected (at least) the spammers but kept a usable pool.
  EXPECT_LT(filtered.qualified_count(), filtered.pool_size());
  EXPECT_GT(filtered.qualified_count(), filtered.pool_size() / 3);
  EXPECT_GT(filtered.QualifiedPoolReliability(),
            unfiltered.QualifiedPoolReliability() + 0.05);

  // Weighted aggregation over the qualified pool still returns a majority
  // answer, and a mostly-correct one.
  PerfectOracle reference(ds);
  int correct = 0, total = 0;
  for (int u = 0; u < ds.size(); ++u) {
    for (int v = u + 1; v < ds.size(); v += 6) {
      const Answer truth = reference.AnswerPair({0, u, v}, {});
      correct += filtered.AnswerPair({0, u, v}, {}) == truth;
      ++total;
    }
  }
  ASSERT_GT(total, 100);
  EXPECT_GT(static_cast<double>(correct) / total, 0.9);
}

TEST(MarketplaceIntegrationTest, QualifiedPoolBeatsOpenPool) {
  GeneratorOptions gen;
  gen.cardinality = 200;
  gen.num_known = 4;
  gen.num_crowd = 1;
  gen.seed = 3;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();
  MarketplaceOptions open;
  open.pool_size = 150;
  open.population.p_correct = 0.8;
  open.population.p_stddev = 0.12;
  open.population.spammer_fraction = 0.25;
  open.seed = 11;
  MarketplaceOptions masters = open;
  masters.gold_questions = 50;
  masters.qualification_threshold = 0.75;
  CrowdMarketplace m_open(ds, open, VotingPolicy::MakeStatic(5));
  CrowdMarketplace m_masters(ds, masters, VotingPolicy::MakeStatic(5));
  EXPECT_GT(m_masters.QualifiedPoolReliability(),
            m_open.QualifiedPoolReliability());
}

}  // namespace
}  // namespace crowdsky
