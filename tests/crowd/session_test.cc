#include "crowd/session.h"

#include <gtest/gtest.h>

#include "data/toy.h"

namespace crowdsky {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : toy_(MakeToyDataset()), oracle_(toy_), session_(&oracle_) {}

  Dataset toy_;
  PerfectOracle oracle_;
  CrowdSession session_;
};

TEST_F(SessionTest, AskOrientsAnswerToCaller) {
  // f preferred over e.
  EXPECT_EQ(session_.Ask(0, ToyId('f'), ToyId('e')),
            Answer::kFirstPreferred);
  EXPECT_EQ(session_.Ask(0, ToyId('e'), ToyId('f')),
            Answer::kSecondPreferred);
}

TEST_F(SessionTest, SymmetricQuestionsShareCacheEntry) {
  session_.Ask(0, ToyId('a'), ToyId('b'));
  EXPECT_EQ(session_.stats().questions, 1);
  session_.Ask(0, ToyId('b'), ToyId('a'));
  EXPECT_EQ(session_.stats().questions, 1);
  EXPECT_EQ(session_.stats().cache_hits, 1);
  EXPECT_EQ(oracle_.stats().pair_questions, 1);
}

TEST_F(SessionTest, IsCachedIsSymmetric) {
  EXPECT_FALSE(session_.IsCached(0, 1, 2));
  session_.Ask(0, 2, 1);
  EXPECT_TRUE(session_.IsCached(0, 1, 2));
  EXPECT_TRUE(session_.IsCached(0, 2, 1));
}

TEST_F(SessionTest, RoundAccounting) {
  session_.Ask(0, 0, 1);
  session_.Ask(0, 2, 3);
  session_.EndRound();
  EXPECT_EQ(session_.stats().rounds, 1);
  session_.Ask(0, 4, 5);
  session_.EndRound();
  EXPECT_EQ(session_.stats().rounds, 2);
  ASSERT_EQ(session_.questions_per_round().size(), 2u);
  EXPECT_EQ(session_.questions_per_round()[0], 2);
  EXPECT_EQ(session_.questions_per_round()[1], 1);
}

TEST_F(SessionTest, EmptyRoundsAreNotCounted) {
  session_.EndRound();
  session_.EndRound();
  EXPECT_EQ(session_.stats().rounds, 0);
  // Cache hits do not occupy round capacity either.
  session_.Ask(0, 0, 1);
  session_.EndRound();
  session_.Ask(0, 1, 0);
  session_.EndRound();
  EXPECT_EQ(session_.stats().rounds, 1);
}

TEST_F(SessionTest, OpenRoundQuestionCount) {
  EXPECT_EQ(session_.open_round_questions(), 0);
  session_.Ask(0, 0, 1);
  EXPECT_EQ(session_.open_round_questions(), 1);
  session_.EndRound();
  EXPECT_EQ(session_.open_round_questions(), 0);
}

TEST_F(SessionTest, UnaryQuestionsCounted) {
  session_.AskUnary(3, 0);
  session_.AskUnary(4, 0);
  session_.EndRound();
  EXPECT_EQ(session_.stats().unary_questions, 2);
  EXPECT_EQ(session_.stats().rounds, 1);
  EXPECT_EQ(session_.questions_per_round()[0], 2);
}

TEST_F(SessionTest, DifferentAttributesAreDifferentQuestions) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(1, 2),
                          {{1, 0.1, 0.9}, {2, 0.2, 0.8}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  CrowdSession session(&oracle);
  EXPECT_EQ(session.Ask(0, 0, 1), Answer::kFirstPreferred);
  EXPECT_EQ(session.Ask(1, 0, 1), Answer::kSecondPreferred);
  EXPECT_EQ(session.stats().questions, 2);
}

TEST_F(SessionTest, CachedAnswerIsStable) {
  const Answer first = session_.Ask(0, ToyId('b'), ToyId('e'));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(session_.Ask(0, ToyId('b'), ToyId('e')), first);
  }
}

TEST(SessionDeathTest, SelfPairRejected) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  CrowdSession session(&oracle);
  EXPECT_DEATH(session.Ask(0, 3, 3), "distinct");
}

// Budget and retry policy are part of the run's identity: the journal
// fingerprint, the governor's worst-case reservation, and the auditor's
// ledger checks all assume they were fixed before the first paid ask.
// Reconfiguring mid-run must die, not silently fork the run's semantics.
TEST(SessionDeathTest, BudgetChangeAfterAskRejected) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  CrowdSession session(&oracle);
  session.Ask(0, ToyId('a'), ToyId('b'));
  EXPECT_DEATH(session.SetQuestionBudget(10), "fresh-session-only");
}

TEST(SessionDeathTest, RetryPolicyChangeAfterUnaryAskRejected) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  CrowdSession session(&oracle);
  session.AskUnary(3, 0);
  EXPECT_DEATH(session.SetRetryPolicy(RetryPolicy{}), "fresh-session-only");
}

// The flip side: both setters are fine on a session that has priced
// nothing yet, including after a cache-only lookup path (no paid asks).
TEST(SessionDeathTest, FreshSessionReconfigureAllowed) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  CrowdSession session(&oracle);
  session.SetQuestionBudget(25);
  session.SetRetryPolicy(RetryPolicy{});
  session.SetQuestionBudget(-1);  // still fresh: no question asked yet
  SUCCEED();
}

}  // namespace
}  // namespace crowdsky
