// The resilient asking layer of CrowdSession: retry/requeue of failed
// attempts, capped retries, degraded quorums, and the accounting ledger
// (every attempt paid, every repeat justified by a retry event).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.h"
#include "crowd/oracle.h"
#include "crowd/session.h"

namespace crowdsky {
namespace {

PairOutcome Ok(Answer answer) {
  PairOutcome out;
  out.answer = answer;
  return out;
}

PairOutcome Degraded(Answer answer) {
  PairOutcome out;
  out.status = PairOutcome::Status::kDegradedQuorum;
  out.answer = answer;
  out.votes_expected = 5;
  out.votes_counted = 3;
  return out;
}

PairOutcome TransientFailure() {
  PairOutcome out;
  out.status = PairOutcome::Status::kFailed;
  out.transient_error = true;
  return out;
}

PairOutcome ExpiredHit(int rounds) {
  PairOutcome out;
  out.status = PairOutcome::Status::kFailed;
  out.hit_expired = true;
  out.extra_latency_rounds = rounds;
  return out;
}

/// Oracle whose attempt outcomes follow a fixed script (the last entry
/// repeats forever), so tests control exactly which attempts fail.
class ScriptedOracle : public CrowdOracle {
 public:
  explicit ScriptedOracle(std::vector<PairOutcome> script)
      : script_(std::move(script)) {}

  Answer AnswerPair(const PairQuestion&, const AskContext&) override {
    return Answer::kFirstPreferred;
  }
  double AnswerUnary(int, int, const AskContext&) override { return 0.0; }

  PairOutcome AnswerPairOutcome(const PairQuestion&,
                                const AskContext&) override {
    ++stats_.pair_questions;
    const size_t idx = next_ < script_.size() ? next_ : script_.size() - 1;
    ++next_;
    const PairOutcome& out = script_[idx];
    if (out.status == PairOutcome::Status::kFailed) ++stats_.failed_attempts;
    return out;
  }

 private:
  std::vector<PairOutcome> script_;
  size_t next_ = 0;
};

TEST(ResilienceTest, RetryRecoversFromTransientFailure) {
  ScriptedOracle oracle({TransientFailure(), Ok(Answer::kFirstPreferred)});
  CrowdSession session(&oracle);
  const CrowdSession::AskResult res = session.TryAsk(0, 0, 1);
  EXPECT_EQ(res.status, AskStatus::kAnswered);
  EXPECT_EQ(res.answer, Answer::kFirstPreferred);
  EXPECT_TRUE(res.paid);
  EXPECT_EQ(session.stats().questions, 2);  // the retry is a paid question
  EXPECT_EQ(session.stats().retries, 1);
  EXPECT_EQ(session.stats().failed_attempts, 1);
  EXPECT_EQ(session.stats().unresolved_questions, 0);
  ASSERT_EQ(session.retry_events().size(), 1u);
  const RetryEvent& event = session.retry_events().front();
  EXPECT_EQ(event.attempt, 1);
  EXPECT_EQ(event.reason, RetryEvent::Reason::kTransientError);
  EXPECT_EQ(event.question, (PairQuestion{0, 0, 1}));
  // The recovered answer is cached; re-asking is free.
  const CrowdSession::AskResult again = session.TryAsk(0, 0, 1);
  EXPECT_FALSE(again.paid);
  EXPECT_EQ(session.stats().questions, 2);
  EXPECT_EQ(session.stats().cache_hits, 1);
}

TEST(ResilienceTest, AnswerOrientationSurvivesRetries) {
  ScriptedOracle oracle({TransientFailure(), Ok(Answer::kFirstPreferred)});
  CrowdSession session(&oracle);
  // Asking the flipped pair (1, 0): canonical first-preferred means tuple
  // 0, so the caller-oriented answer is second-preferred.
  const CrowdSession::AskResult res = session.TryAsk(0, 1, 0);
  EXPECT_EQ(res.status, AskStatus::kAnswered);
  EXPECT_EQ(res.answer, Answer::kSecondPreferred);
}

TEST(ResilienceTest, RetryCapExhaustionMarksQuestionUnresolved) {
  ScriptedOracle oracle({TransientFailure()});
  CrowdSession session(&oracle);
  RetryPolicy policy;
  policy.max_retries = 2;
  session.SetRetryPolicy(policy);
  const CrowdSession::AskResult res = session.TryAsk(0, 0, 1);
  EXPECT_EQ(res.status, AskStatus::kUnresolved);
  EXPECT_TRUE(res.paid);
  EXPECT_EQ(session.stats().questions, 3);  // initial + 2 retries
  EXPECT_EQ(session.stats().retries, 2);
  EXPECT_EQ(session.stats().failed_attempts, 3);
  EXPECT_EQ(session.stats().unresolved_questions, 1);
  EXPECT_TRUE(session.IsUnresolved(0, 0, 1));
  EXPECT_TRUE(session.IsUnresolved(0, 1, 0));
  EXPECT_FALSE(session.IsCached(0, 0, 1));
  // Asking again never spends more money on a given-up question.
  const CrowdSession::AskResult again = session.TryAsk(0, 0, 1);
  EXPECT_EQ(again.status, AskStatus::kUnresolved);
  EXPECT_FALSE(again.paid);
  EXPECT_EQ(session.stats().questions, 3);
  ASSERT_EQ(session.unresolved_questions().size(), 1u);
  EXPECT_EQ(session.unresolved_questions().front(), (PairQuestion{0, 0, 1}));
}

TEST(ResilienceDeathTest, StrictAskAbortsOnUnresolvedQuestion) {
  ScriptedOracle oracle({TransientFailure()});
  CrowdSession session(&oracle);
  RetryPolicy policy;
  policy.max_retries = 0;
  session.SetRetryPolicy(policy);
  EXPECT_DEATH(session.Ask(0, 0, 1), "unresolved");
}

TEST(ResilienceTest, DegradedQuorumIsAcceptedAndCounted) {
  ScriptedOracle oracle({Degraded(Answer::kSecondPreferred)});
  CrowdSession session(&oracle);
  const CrowdSession::AskResult res = session.TryAsk(0, 0, 1);
  EXPECT_EQ(res.status, AskStatus::kAnswered);
  EXPECT_EQ(res.answer, Answer::kSecondPreferred);
  EXPECT_EQ(session.stats().degraded_quorum, 1);
  EXPECT_EQ(session.stats().retries, 0);
}

TEST(ResilienceTest, BudgetCapsTheRetryLoop) {
  ScriptedOracle oracle({TransientFailure()});
  CrowdSession session(&oracle);
  session.SetQuestionBudget(2);
  RetryPolicy policy;
  policy.max_retries = 10;
  session.SetRetryPolicy(policy);
  const CrowdSession::AskResult res = session.TryAsk(0, 0, 1);
  EXPECT_EQ(res.status, AskStatus::kUnresolved);
  EXPECT_EQ(session.stats().questions, 2);  // never exceeds the budget
  EXPECT_EQ(session.stats().retries, 1);
  EXPECT_FALSE(session.CanAsk());
}

TEST(ResilienceTest, BackoffAndExpirationAreLatencyOnly) {
  ScriptedOracle oracle({ExpiredHit(2), TransientFailure(),
                         TransientFailure(), TransientFailure(),
                         Ok(Answer::kEqual)});
  CrowdSession session(&oracle);
  RetryPolicy policy;
  policy.max_retries = 4;
  policy.backoff_base_rounds = 1;
  policy.max_backoff_rounds = 8;
  session.SetRetryPolicy(policy);
  const CrowdSession::AskResult res = session.TryAsk(0, 0, 1);
  EXPECT_EQ(res.status, AskStatus::kAnswered);
  EXPECT_EQ(session.stats().questions, 5);
  EXPECT_EQ(session.stats().retries, 4);
  // 2 rounds waiting out the expired HIT plus the exponential requeue
  // backoff 1 + 2 + 4 + 8 (capped).
  EXPECT_EQ(session.stats().backoff_rounds, 2 + 1 + 2 + 4 + 8);
  // Money is untouched by backoff: no rounds were closed, and the open
  // round holds exactly the paid attempts.
  EXPECT_EQ(session.stats().rounds, 0);
  EXPECT_EQ(session.open_round_questions(), 5);
  ASSERT_EQ(session.retry_events().size(), 4u);
  EXPECT_EQ(session.retry_events()[0].reason,
            RetryEvent::Reason::kHitExpired);
  EXPECT_EQ(session.retry_events()[1].reason,
            RetryEvent::Reason::kTransientError);
}

TEST(ResilienceTest, AuditorAcceptsARetriedSession) {
  ScriptedOracle oracle({TransientFailure(), Ok(Answer::kFirstPreferred),
                         Degraded(Answer::kEqual), TransientFailure(),
                         TransientFailure(), TransientFailure(),
                         TransientFailure()});
  CrowdSession session(&oracle);
  session.TryAsk(0, 0, 1);  // fails once, then answers
  session.TryAsk(0, 2, 3);  // degraded quorum
  session.TryAsk(0, 4, 5);  // exhausts the default 3-retry cap
  session.EndRound();
  EXPECT_EQ(session.stats().questions, 7);
  EXPECT_EQ(session.stats().retries, 4);
  EXPECT_EQ(session.stats().unresolved_questions, 1);
  audit::AuditReport report;
  audit::InvariantAuditor().AuditSession(session, &report);
  EXPECT_TRUE(report.ok()) << report.ToString();
}

TEST(ResilienceTest, BackoffShiftIsClampedAtTheCapBoundary) {
  RetryPolicy policy;
  policy.backoff_base_rounds = 1;
  policy.max_backoff_rounds = 8;
  // Exact doubling below the cap, then flat — including shift counts far
  // past 63, which would be UB on a raw `base << attempt`.
  EXPECT_EQ(RetryBackoffRounds(policy, 0), 1);
  EXPECT_EQ(RetryBackoffRounds(policy, 1), 2);
  EXPECT_EQ(RetryBackoffRounds(policy, 2), 4);
  EXPECT_EQ(RetryBackoffRounds(policy, 3), 8);
  EXPECT_EQ(RetryBackoffRounds(policy, 4), 8);
  EXPECT_EQ(RetryBackoffRounds(policy, 63), 8);
  EXPECT_EQ(RetryBackoffRounds(policy, 1000000), 8);
}

TEST(ResilienceTest, HugeRetryCapsCannotOverflowTheBackoff) {
  RetryPolicy policy;
  policy.backoff_base_rounds = std::numeric_limits<int>::max();
  policy.max_backoff_rounds = std::numeric_limits<int>::max();
  // base << 30 is ~2^61: representable, then clamped to the cap. No
  // signed overflow anywhere, for any attempt number.
  for (const int attempt : {0, 1, 29, 30, 31, 62, 1 << 30}) {
    EXPECT_EQ(RetryBackoffRounds(policy, attempt),
              std::numeric_limits<int>::max())
        << attempt;
  }
  // Below the cap the clamped shift is exact: 3 << 29 < INT_MAX.
  policy.backoff_base_rounds = 3;
  EXPECT_EQ(RetryBackoffRounds(policy, 29), int64_t{3} << 29);
  EXPECT_EQ(RetryBackoffRounds(policy, 62),
            std::numeric_limits<int>::max());  // 3 << 30 hits the cap
}

TEST(ResilienceTest, SaturatingAddClampsAtTheLimits) {
  constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
  constexpr int64_t kMin = std::numeric_limits<int64_t>::min();
  EXPECT_EQ(SaturatingAdd(1, 2), 3);
  EXPECT_EQ(SaturatingAdd(kMax, 0), kMax);
  EXPECT_EQ(SaturatingAdd(kMax, 1), kMax);
  EXPECT_EQ(SaturatingAdd(kMax, kMax), kMax);
  EXPECT_EQ(SaturatingAdd(kMin, -1), kMin);
  EXPECT_EQ(SaturatingAdd(kMax, kMin), -1);
}

TEST(ResilienceTest, LatencyAccumulatorSaturatesInsteadOfWrapping) {
  // Four failures under an extreme policy: each requeue charges
  // INT_MAX backoff rounds and the accumulator must clamp, not wrap into
  // a negative latency.
  ScriptedOracle oracle({TransientFailure()});  // fails forever
  CrowdSession session(&oracle);
  RetryPolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_rounds = std::numeric_limits<int>::max();
  policy.max_backoff_rounds = std::numeric_limits<int>::max();
  session.SetRetryPolicy(policy);
  const CrowdSession::AskResult res = session.TryAsk(0, 0, 1);
  EXPECT_EQ(res.status, AskStatus::kUnresolved);
  EXPECT_EQ(session.stats().backoff_rounds,
            3 * int64_t{std::numeric_limits<int>::max()});
  EXPECT_GE(session.stats().backoff_rounds, 0);  // no wraparound
}

TEST(ResilienceDeathTest, NegativeRetryPolicyIsRejected) {
  ScriptedOracle oracle({Ok(Answer::kEqual)});
  CrowdSession session(&oracle);
  RetryPolicy policy;
  policy.max_retries = -1;
  EXPECT_DEATH(session.SetRetryPolicy(policy), "");
}

}  // namespace
}  // namespace crowdsky
