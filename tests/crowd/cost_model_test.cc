#include "crowd/cost_model.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(AmtCostModelTest, PaperFormula) {
  // cost = 0.02 * 5 * sum ceil(|Qi| / 5)
  AmtCostModel model;
  EXPECT_EQ(model.Hits({5}), 1);
  EXPECT_EQ(model.Hits({6}), 2);
  EXPECT_EQ(model.Hits({1, 1, 1}), 3);
  EXPECT_DOUBLE_EQ(model.Cost({5}), 0.02 * 5 * 1);
  EXPECT_DOUBLE_EQ(model.Cost({12, 3}), 0.02 * 5 * (3 + 1));
}

TEST(AmtCostModelTest, EmptyRunCostsNothing) {
  AmtCostModel model;
  EXPECT_DOUBLE_EQ(model.Cost({}), 0.0);
  EXPECT_EQ(model.Hits({}), 0);
  EXPECT_EQ(model.Hits({0}), 0);
}

TEST(AmtCostModelTest, RoundsCannotShareHits) {
  AmtCostModel model;
  // 10 questions in one round = 2 HITs; spread over 10 rounds = 10 HITs.
  EXPECT_EQ(model.Hits({10}), 2);
  EXPECT_EQ(model.Hits(std::vector<int64_t>(10, 1)), 10);
}

TEST(AmtCostModelTest, CustomParameters) {
  AmtCostModel model;
  model.reward_per_hit = 0.1;
  model.workers_per_question = 3;
  model.questions_per_hit = 2;
  EXPECT_EQ(model.Hits({5}), 3);
  EXPECT_DOUBLE_EQ(model.Cost({5}), 0.1 * 3 * 3);
}

TEST(AmtCostModelTest, PackedHitCountBoundarySizes) {
  // The packer/auditor shared arithmetic at the ⌈q/5⌉ boundaries. ω scales
  // dollars, never HIT counts — the same span sizes must pack identically
  // for every worker multiplicity.
  for (const int omega : {1, 3, 5}) {
    AmtCostModel model;
    model.workers_per_question = omega;
    EXPECT_EQ(model.PackedHitCount(0), 0) << "omega=" << omega;
    EXPECT_EQ(model.PackedHitCount(1), 1) << "omega=" << omega;
    EXPECT_EQ(model.PackedHitCount(5), 1) << "omega=" << omega;
    EXPECT_EQ(model.PackedHitCount(6), 2) << "omega=" << omega;
    // Dollars do scale with ω: one HIT costs reward * ω.
    EXPECT_DOUBLE_EQ(model.Cost({1}), 0.02 * omega);
  }
}

TEST(AmtCostModelTest, PackedHitCountHonorsQuestionsPerHit) {
  AmtCostModel model;
  model.questions_per_hit = 3;
  EXPECT_EQ(model.PackedHitCount(0), 0);
  EXPECT_EQ(model.PackedHitCount(1), 1);
  EXPECT_EQ(model.PackedHitCount(3), 1);
  EXPECT_EQ(model.PackedHitCount(4), 2);
  model.questions_per_hit = 1;
  EXPECT_EQ(model.PackedHitCount(7), 7);
}

TEST(AmtCostModelTest, PackedHitCountSpansMatchesHits) {
  // The spans overload is the Σ⌈·⌉ the per-round Hits() always computed:
  // the packer and the cost model cannot drift because they are the same
  // function.
  AmtCostModel model;
  const std::vector<int64_t> spans = {0, 1, 5, 6, 12, 3};
  EXPECT_EQ(model.PackedHitCount(spans), model.Hits(spans));
  EXPECT_EQ(model.PackedHitCount(spans), 0 + 1 + 1 + 2 + 3 + 1);
  // Packing the same questions into one span only ever helps.
  int64_t total = 0;
  for (const int64_t q : spans) total += q;
  EXPECT_LE(model.PackedHitCount(total), model.PackedHitCount(spans));
}

TEST(AmtCostModelTest, BaselineVsCrowdSkyShape) {
  // Sanity-check the Figure 12(a) arithmetic: ~245 questions in one-shot
  // batches vs ~50 for CrowdSky gives roughly a 5x saving.
  AmtCostModel model;
  const double baseline = model.Cost({245});
  const double crowdsky = model.Cost({50});
  EXPECT_NEAR(baseline, 4.9, 1e-9);
  EXPECT_NEAR(crowdsky, 1.0, 1e-9);
}

}  // namespace
}  // namespace crowdsky
