#include "crowd/cost_model.h"

#include <gtest/gtest.h>

namespace crowdsky {
namespace {

TEST(AmtCostModelTest, PaperFormula) {
  // cost = 0.02 * 5 * sum ceil(|Qi| / 5)
  AmtCostModel model;
  EXPECT_EQ(model.Hits({5}), 1);
  EXPECT_EQ(model.Hits({6}), 2);
  EXPECT_EQ(model.Hits({1, 1, 1}), 3);
  EXPECT_DOUBLE_EQ(model.Cost({5}), 0.02 * 5 * 1);
  EXPECT_DOUBLE_EQ(model.Cost({12, 3}), 0.02 * 5 * (3 + 1));
}

TEST(AmtCostModelTest, EmptyRunCostsNothing) {
  AmtCostModel model;
  EXPECT_DOUBLE_EQ(model.Cost({}), 0.0);
  EXPECT_EQ(model.Hits({}), 0);
  EXPECT_EQ(model.Hits({0}), 0);
}

TEST(AmtCostModelTest, RoundsCannotShareHits) {
  AmtCostModel model;
  // 10 questions in one round = 2 HITs; spread over 10 rounds = 10 HITs.
  EXPECT_EQ(model.Hits({10}), 2);
  EXPECT_EQ(model.Hits(std::vector<int64_t>(10, 1)), 10);
}

TEST(AmtCostModelTest, CustomParameters) {
  AmtCostModel model;
  model.reward_per_hit = 0.1;
  model.workers_per_question = 3;
  model.questions_per_hit = 2;
  EXPECT_EQ(model.Hits({5}), 3);
  EXPECT_DOUBLE_EQ(model.Cost({5}), 0.1 * 3 * 3);
}

TEST(AmtCostModelTest, BaselineVsCrowdSkyShape) {
  // Sanity-check the Figure 12(a) arithmetic: ~245 questions in one-shot
  // batches vs ~50 for CrowdSky gives roughly a 5x saving.
  AmtCostModel model;
  const double baseline = model.Cost({245});
  const double crowdsky = model.Cost({50});
  EXPECT_NEAR(baseline, 4.9, 1e-9);
  EXPECT_NEAR(crowdsky, 1.0, 1e-9);
}

}  // namespace
}  // namespace crowdsky
