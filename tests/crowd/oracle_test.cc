#include "crowd/oracle.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/toy.h"

namespace crowdsky {
namespace {

TEST(PerfectOracleTest, AnswersMatchGroundTruth) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  // f (A3 = 1) preferred over e (A3 = 4); MIN direction.
  EXPECT_EQ(oracle.AnswerPair({0, ToyId('f'), ToyId('e')}, {}),
            Answer::kFirstPreferred);
  EXPECT_EQ(oracle.AnswerPair({0, ToyId('e'), ToyId('f')}, {}),
            Answer::kSecondPreferred);
  EXPECT_EQ(oracle.stats().pair_questions, 2);
  EXPECT_EQ(oracle.stats().worker_answers, 2);
}

TEST(PerfectOracleTest, RespectsMaxDirection) {
  auto schema = Schema::Make({
      {"k", Direction::kMin, AttributeKind::kKnown},
      {"c", Direction::kMax, AttributeKind::kCrowd},
  });
  schema.status().CheckOK();
  auto ds = Dataset::Make(std::move(schema).ValueOrDie(),
                          {{1, 10.0}, {2, 20.0}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  // Larger crowd value preferred under MAX.
  EXPECT_EQ(oracle.AnswerPair({0, 0, 1}, {}), Answer::kSecondPreferred);
}

TEST(PerfectOracleTest, EqualValuesGiveEqual) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(1, 1),
                          {{1, 0.5}, {2, 0.5}});
  ds.status().CheckOK();
  PerfectOracle oracle(*ds);
  EXPECT_EQ(oracle.AnswerPair({0, 0, 1}, {}), Answer::kEqual);
}

TEST(PerfectOracleTest, UnaryReturnsTrueValue) {
  const Dataset toy = MakeToyDataset();
  PerfectOracle oracle(toy);
  EXPECT_DOUBLE_EQ(oracle.AnswerUnary(ToyId('f'), 0, {}), 1.0);
  EXPECT_EQ(oracle.stats().unary_questions, 1);
}

TEST(SimulatedCrowdTest, PerfectWorkersAreAlwaysRight) {
  const Dataset toy = MakeToyDataset();
  WorkerModel worker;
  worker.p_correct = 1.0;
  SimulatedCrowd crowd(toy, worker, VotingPolicy::MakeStatic(1), 1);
  PerfectOracle reference(toy);
  for (int u = 0; u < toy.size(); ++u) {
    for (int v = u + 1; v < toy.size(); ++v) {
      EXPECT_EQ(crowd.AnswerPair({0, u, v}, {}),
                reference.AnswerPair({0, u, v}, {}));
    }
  }
}

TEST(SimulatedCrowdTest, SingleWorkerErrorRateNearP) {
  GeneratorOptions opt;
  opt.cardinality = 60;
  opt.num_known = 1;
  opt.num_crowd = 1;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  WorkerModel worker;
  worker.p_correct = 0.8;
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(1), 17);
  PerfectOracle reference(ds);
  int correct = 0, total = 0;
  for (int trial = 0; trial < 30; ++trial) {
    for (int u = 0; u < ds.size(); ++u) {
      for (int v = u + 1; v < ds.size(); v += 7) {
        const Answer truth = reference.AnswerPair({0, u, v}, {});
        if (crowd.AnswerPair({0, u, v}, {}) == truth) ++correct;
        ++total;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(correct) / total, 0.8, 0.02);
}

TEST(SimulatedCrowdTest, MajorityVotingMatchesBinomialFormula) {
  GeneratorOptions opt;
  opt.cardinality = 40;
  opt.num_known = 1;
  opt.num_crowd = 1;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  WorkerModel worker;
  worker.p_correct = 0.8;
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5), 23);
  PerfectOracle reference(ds);
  int correct = 0, total = 0;
  for (int trial = 0; trial < 50; ++trial) {
    for (int u = 0; u < ds.size(); ++u) {
      for (int v = u + 1; v < ds.size(); v += 5) {
        const Answer truth = reference.AnswerPair({0, u, v}, {});
        if (crowd.AnswerPairWithWorkers({0, u, v}, 5) == truth) ++correct;
        ++total;
      }
    }
  }
  EXPECT_NEAR(static_cast<double>(correct) / total,
              MajorityCorrectProbability(5, 0.8), 0.02);
}

TEST(SimulatedCrowdTest, WorkerAnswersAccounting) {
  const Dataset toy = MakeToyDataset();
  WorkerModel worker;
  SimulatedCrowd crowd(toy, worker, VotingPolicy::MakeStatic(5), 3);
  crowd.AnswerPair({0, 0, 1}, {});
  EXPECT_EQ(crowd.stats().pair_questions, 1);
  EXPECT_EQ(crowd.stats().worker_answers, 5);
  crowd.AnswerPairWithWorkers({0, 2, 3}, 7);
  EXPECT_EQ(crowd.stats().worker_answers, 12);
}

TEST(SimulatedCrowdTest, DynamicVotingUsesFreq) {
  const Dataset toy = MakeToyDataset();
  WorkerModel worker;
  SimulatedCrowd crowd(toy, worker,
                       VotingPolicy::MakeDynamicWithThresholds(5, 2, 4), 3);
  crowd.AnswerPair({0, 0, 1}, {0});  // low importance -> 3 workers
  EXPECT_EQ(crowd.stats().worker_answers, 3);
  crowd.AnswerPair({0, 2, 3}, {10});  // high importance -> 7 workers
  EXPECT_EQ(crowd.stats().worker_answers, 10);
}

TEST(SimulatedCrowdTest, SpammersDegradeAccuracy) {
  GeneratorOptions opt;
  opt.cardinality = 50;
  opt.num_known = 1;
  opt.num_crowd = 1;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  WorkerModel clean;
  clean.p_correct = 0.95;
  WorkerModel spammy = clean;
  spammy.spammer_fraction = 0.8;
  SimulatedCrowd good(ds, clean, VotingPolicy::MakeStatic(1), 29);
  SimulatedCrowd bad(ds, spammy, VotingPolicy::MakeStatic(1), 29);
  PerfectOracle reference(ds);
  int good_correct = 0, bad_correct = 0, total = 0;
  for (int trial = 0; trial < 20; ++trial) {
    for (int u = 0; u < ds.size(); ++u) {
      for (int v = u + 1; v < ds.size(); v += 9) {
        const Answer truth = reference.AnswerPair({0, u, v}, {});
        good_correct += good.AnswerPair({0, u, v}, {}) == truth;
        bad_correct += bad.AnswerPair({0, u, v}, {}) == truth;
        ++total;
      }
    }
  }
  EXPECT_GT(good_correct - bad_correct, total / 10);
}

TEST(SimulatedCrowdTest, UnaryEstimatesCenterOnTruth) {
  const Dataset toy = MakeToyDataset();
  WorkerModel worker;
  worker.unary_sigma = 0.1;
  SimulatedCrowd crowd(toy, worker, VotingPolicy::MakeStatic(5), 31);
  double sum = 0;
  const int kTrials = 200;
  for (int i = 0; i < kTrials; ++i) {
    sum += crowd.AnswerUnary(ToyId('e'), 0, {});
  }
  // True normalized value of e on A3 is 4 (MIN direction, unchanged).
  EXPECT_NEAR(sum / kTrials, 4.0, 0.1);
  EXPECT_EQ(crowd.stats().unary_questions, kTrials);
  EXPECT_EQ(crowd.stats().worker_answers, kTrials * 5);
}

TEST(SimulatedCrowdTest, DeterministicForSeed) {
  const Dataset toy = MakeToyDataset();
  WorkerModel worker;
  worker.p_correct = 0.6;
  SimulatedCrowd a(toy, worker, VotingPolicy::MakeStatic(3), 5);
  SimulatedCrowd b(toy, worker, VotingPolicy::MakeStatic(3), 5);
  for (int u = 0; u < toy.size(); ++u) {
    for (int v = u + 1; v < toy.size(); ++v) {
      EXPECT_EQ(a.AnswerPair({0, u, v}, {}), b.AnswerPair({0, u, v}, {}));
    }
  }
}

}  // namespace
}  // namespace crowdsky
