// Process-level chaos suite for sharded execution: shard kills, torn
// journal tails, hangs, stragglers, permanent deaths and whole-run resume,
// crossed with crowd faults and governor caps.
//
// Every scenario asserts the recovery invariant of the shard supervisor:
// a killed-and-restarted shard resumes from its journal and the whole
// sharded run converges to the never-killed run bit-for-bit — same
// skyline, same question ledger, same dollars (zero re-paid questions).
// Auditing is on everywhere, so the in-driver rules run inside every
// shard child and the shard.* rules run in the coordinator; a violation
// crashes the run rather than surviving to the equality checks.
//
// This binary owns main(): with --crowdsky_shard it IS a shard child;
// otherwise it runs the gtest suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/generator.h"
#include "dist/coordinator.h"
#include "dist/shard_runner.h"
#include "testing/temp_dir.h"

namespace crowdsky::dist {
namespace {

constexpr int kCardinality = 24;

Dataset MakeData(uint64_t seed) {
  GeneratorOptions gen;
  gen.cardinality = kCardinality;
  gen.num_known = 2;
  gen.num_crowd = 2;
  gen.seed = seed;
  return GenerateDataset(gen).ValueOrDie();
}

EngineOptions PerfectEngine(Algorithm algorithm) {
  EngineOptions engine;
  engine.algorithm = algorithm;
  engine.oracle = OracleKind::kPerfect;
  engine.crowdsky.audit = true;
  return engine;
}

DistOptions MakeDist(const EngineOptions& engine, int k,
                     const std::string& dir_tag) {
  DistOptions options;
  options.shards = k;
  options.engine = engine;
  options.run_dir = crowdsky::testing::FreshTempDir(dir_tag);
  // Fast restarts: chaos scenarios restart on purpose and repeatedly.
  options.supervisor.restart_backoff_base_seconds = 0.01;
  options.supervisor.restart_backoff_max_seconds = 0.1;
  return options;
}

DistResult RunOk(const Dataset& data, const DistOptions& options) {
  const Result<DistResult> result = RunShardedSkylineQuery(data, options);
  CROWDSKY_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.ValueOrDie();
}

/// The recovery invariant: two runs converged to the same answer AND the
/// same ledgers — questions, rounds and dollars, per shard and in total.
/// Restart bookkeeping (resumed, replayed, journal size) may differ.
void ExpectSameOutcome(const DistResult& a, const DistResult& b,
                       const std::string& tag) {
  EXPECT_EQ(a.skyline, b.skyline) << tag;
  EXPECT_EQ(a.skyline_labels, b.skyline_labels) << tag;
  EXPECT_EQ(a.total_questions, b.total_questions) << tag;
  EXPECT_EQ(a.rounds, b.rounds) << tag;
  EXPECT_EQ(a.total_cost_usd, b.total_cost_usd) << tag;
  EXPECT_EQ(a.merge.questions, b.merge.questions) << tag;
  EXPECT_EQ(a.merge.imported_answers, b.merge.imported_answers) << tag;
  EXPECT_EQ(a.completeness.undetermined_tuples,
            b.completeness.undetermined_tuples)
      << tag;
  ASSERT_EQ(a.shards.size(), b.shards.size()) << tag;
  for (size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].candidates, b.shards[i].candidates) << tag;
    EXPECT_EQ(a.shards[i].questions, b.shards[i].questions) << tag;
    EXPECT_EQ(a.shards[i].rounds, b.shards[i].rounds) << tag;
    EXPECT_EQ(a.shards[i].cost_usd, b.shards[i].cost_usd) << tag;
  }
}

constexpr Algorithm kDrivers[] = {Algorithm::kCrowdSkySerial,
                                  Algorithm::kParallelDSet,
                                  Algorithm::kParallelSL};

// The headline scenario: kill each shard at two round offsets, per driver.
// The restarted incarnation must resume from its journal (replaying paid
// answers as credits, re-paying nothing) and the run must converge to the
// never-killed k-shard run and the k = 1 run.
TEST(ShardChaosTest, KillAndRestartConvergesBitIdenticalAcrossDrivers) {
  const Dataset data = MakeData(31);
  for (const Algorithm algorithm : kDrivers) {
    const EngineOptions engine = PerfectEngine(algorithm);
    const std::string name = AlgorithmName(algorithm);
    const DistResult clean =
        RunOk(data, MakeDist(engine, 2, "sc_clean_" + name));
    const DistResult single =
        RunOk(data, MakeDist(engine, 1, "sc_k1_" + name));
    EXPECT_EQ(clean.skyline, single.skyline) << name;

    for (const int shard : {0, 1}) {
      for (const int64_t offset : {int64_t{1}, int64_t{2}}) {
        const std::string tag = "sc_kill_" + name + "_s" +
                                std::to_string(shard) + "_r" +
                                std::to_string(offset);
        DistOptions options = MakeDist(engine, 2, tag);
        options.faults.push_back({.shard = shard,
                                  .kind = ShardFaultKind::kKillAtRound,
                                  .value = offset});
        const DistResult faulted = RunOk(data, options);
        ExpectSameOutcome(faulted, clean, tag);
        EXPECT_EQ(faulted.restarts_total, 1) << tag;
        EXPECT_EQ(faulted.shards_dead, 0) << tag;
        const ShardReport& killed =
            faulted.shards[static_cast<size_t>(shard)];
        EXPECT_EQ(killed.restarts, 1) << tag;
        EXPECT_TRUE(killed.resumed) << tag;
        // Zero re-paid questions: the ledgers already matched the clean
        // run above, and the journal replay is what paid for the rounds
        // the first incarnation had finished.
        EXPECT_GT(killed.replayed_pair_attempts, 0) << tag;
      }
    }
  }
}

TEST(ShardChaosTest, TornJournalTailRecoversBitIdentical) {
  const Dataset data = MakeData(37);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelSL);
  const DistResult clean = RunOk(data, MakeDist(engine, 2, "sc_torn_clean"));

  DistOptions options = MakeDist(engine, 2, "sc_torn");
  options.faults.push_back({.shard = 0,
                            .kind = ShardFaultKind::kTornTailAtRecord,
                            .value = 4,
                            .tear_bytes = 9});
  const DistResult faulted = RunOk(data, options);
  ExpectSameOutcome(faulted, clean, "torn");
  EXPECT_EQ(faulted.restarts_total, 1);
  EXPECT_TRUE(faulted.shards[0].resumed);
}

TEST(ShardChaosTest, HangBeforeHelloIsDetectedAndRestarted) {
  const Dataset data = MakeData(41);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelDSet);
  const DistResult clean = RunOk(data, MakeDist(engine, 2, "sc_hang0_clean"));

  DistOptions options = MakeDist(engine, 2, "sc_hang0");
  options.supervisor.heartbeat_timeout_seconds = 1.0;
  options.faults.push_back(
      {.shard = 1, .kind = ShardFaultKind::kHangAtStart});
  const DistResult faulted = RunOk(data, options);
  ExpectSameOutcome(faulted, clean, "hang_at_start");
  EXPECT_EQ(faulted.restarts_total, 1);
  // Hung before doing any work: nothing journaled, so the restart is a
  // fresh start, not a resume.
  EXPECT_FALSE(faulted.shards[1].resumed);
}

TEST(ShardChaosTest, MidRunHangIsKilledAndResumed) {
  const Dataset data = MakeData(43);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelSL);
  const DistResult clean = RunOk(data, MakeDist(engine, 2, "sc_hang1_clean"));

  DistOptions options = MakeDist(engine, 2, "sc_hang1");
  options.supervisor.heartbeat_timeout_seconds = 1.0;
  options.faults.push_back(
      {.shard = 0, .kind = ShardFaultKind::kHangAtRound, .value = 1});
  const DistResult faulted = RunOk(data, options);
  ExpectSameOutcome(faulted, clean, "hang_at_round");
  EXPECT_EQ(faulted.restarts_total, 1);
  // The hang fires after round 1's journal boundary is durable, so the
  // restarted incarnation resumes past it.
  EXPECT_TRUE(faulted.shards[0].resumed);
  EXPECT_GT(faulted.shards[0].replayed_pair_attempts, 0);
}

TEST(ShardChaosTest, PermanentlyDeadShardDegradesGracefully) {
  const Dataset data = MakeData(47);
  const EngineOptions engine = PerfectEngine(Algorithm::kCrowdSkySerial);
  DistOptions options = MakeDist(engine, 2, "sc_dead");
  options.supervisor.max_restarts = 1;
  // Every incarnation of shard 0 dies at round 1: generation 1 resumes,
  // replays round 1, and the kill hook fires again during replay.
  for (const int generation : {0, 1}) {
    options.faults.push_back({.shard = 0,
                              .kind = ShardFaultKind::kKillAtRound,
                              .value = 1,
                              .generation = generation});
  }
  const DistResult result = RunOk(data, options);

  EXPECT_EQ(result.shards_dead, 1);
  EXPECT_EQ(result.shards[0].state, ShardReport::State::kDead);
  EXPECT_EQ(result.shards[0].termination_reason, "dead");
  EXPECT_TRUE(result.shards[0].candidates.empty());
  EXPECT_EQ(result.shards[1].state, ShardReport::State::kCompleted);

  // The dead slice is a gap, not a set of tentative members: excluded
  // from the skyline, reported undetermined, money surfaced as lost.
  EXPECT_FALSE(result.completeness.complete);
  EXPECT_EQ(result.completeness.undetermined_tuples,
            result.shards[0].tuple_ids);
  for (const int id : result.skyline) {
    EXPECT_TRUE(std::binary_search(result.shards[1].tuple_ids.begin(),
                                   result.shards[1].tuple_ids.end(), id))
        << "skyline tuple " << id << " not owned by the surviving shard";
  }
  // Round 1 was journaled before each death, so the journal proves spend.
  EXPECT_GT(result.cost_lost_usd, 0.0);
  EXPECT_EQ(result.cost_lost_usd, result.shards[0].cost_lost_usd);
  // Survivors' answers still merge into a self-consistent (audited —
  // RunOk would have crashed on a shard.* violation) partial result.
  EXPECT_FALSE(result.skyline.empty());
}

TEST(ShardChaosTest, EveryShardDeadFailsInsteadOfLying) {
  const Dataset data = MakeData(53);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelSL);
  DistOptions options = MakeDist(engine, 2, "sc_alldead");
  options.supervisor.max_restarts = 0;
  for (const int shard : {0, 1}) {
    options.faults.push_back({.shard = shard,
                              .kind = ShardFaultKind::kKillAtRound,
                              .value = 1});
  }
  const Result<DistResult> result = RunShardedSkylineQuery(data, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST(ShardChaosTest, CrowdFaultsGovernorCapAndShardKillCompose) {
  const Dataset data = MakeData(59);
  EngineOptions engine = PerfectEngine(Algorithm::kParallelSL);
  engine.oracle = OracleKind::kMarketplace;
  engine.marketplace.faults.transient_error_rate = 0.15;
  engine.marketplace.faults.worker_no_show_rate = 0.10;
  engine.governor.max_cost_usd = 50.0;  // capped, but not binding
  engine.seed = 4242;

  const DistResult clean = RunOk(data, MakeDist(engine, 2, "sc_cross_clean"));

  DistOptions options = MakeDist(engine, 2, "sc_cross_a");
  options.faults.push_back(
      {.shard = 1, .kind = ShardFaultKind::kKillAtRound, .value = 2});
  const DistResult faulted = RunOk(data, options);
  ExpectSameOutcome(faulted, clean, "cross");
  EXPECT_EQ(faulted.restarts_total, 1);
  EXPECT_TRUE(faulted.shards[1].resumed);

  // Seeded determinism: the whole faulted scenario replays exactly.
  DistOptions repeat = options;
  repeat.run_dir = crowdsky::testing::FreshTempDir("sc_cross_b");
  const DistResult again = RunOk(data, repeat);
  ExpectSameOutcome(again, faulted, "cross_repeat");
  EXPECT_EQ(again.restarts_total, faulted.restarts_total);
}

TEST(ShardChaosTest, SlowShardIsFlaggedStragglerNotKilled) {
  const Dataset data = MakeData(61);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelSL);
  const DistResult clean = RunOk(data, MakeDist(engine, 3, "sc_slow_clean"));

  DistOptions options = MakeDist(engine, 3, "sc_slow");
  options.supervisor.straggler_factor = 1.5;
  options.faults.push_back({.shard = 2,
                            .kind = ShardFaultKind::kSlowStart,
                            .value = 2500});
  const DistResult result = RunOk(data, options);
  ExpectSameOutcome(result, clean, "slow");
  EXPECT_EQ(result.restarts_total, 0);
  EXPECT_EQ(result.shards_dead, 0);
  EXPECT_TRUE(result.shards[2].straggler);
  EXPECT_EQ(result.stragglers, 1);
  EXPECT_EQ(result.shards[2].state, ShardReport::State::kCompleted);
}

TEST(ShardChaosTest, WholeRunResumeRepaysNothing) {
  const Dataset data = MakeData(67);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelDSet);
  DistOptions options = MakeDist(engine, 2, "sc_resume");
  const DistResult first = RunOk(data, options);

  // Second run over the same run_dir with resume: every shard and the
  // merge replay their complete journals; the journals do not grow.
  options.resume = true;
  const DistResult second = RunOk(data, options);
  ExpectSameOutcome(second, first, "whole_run_resume");
  ASSERT_TRUE(second.merge.ran);
  EXPECT_TRUE(second.merge.resumed);
  for (size_t i = 0; i < second.shards.size(); ++i) {
    EXPECT_TRUE(second.shards[i].resumed) << "shard " << i;
    EXPECT_GT(second.shards[i].replayed_pair_attempts, 0) << "shard " << i;
    EXPECT_EQ(second.shards[i].journal_records,
              first.shards[i].journal_records)
        << "shard " << i;
  }
}

}  // namespace
}  // namespace crowdsky::dist

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--crowdsky_shard") == 0) {
    return crowdsky::dist::RunShardChildMode(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
