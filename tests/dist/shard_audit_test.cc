// Fabricated-violation tests for the shard.* rules: the coordinator can
// never produce these snapshots, so each rule is driven directly.
#include "audit/shard_audit.h"

#include <gtest/gtest.h>

#include <string>

namespace crowdsky::audit {
namespace {

/// A fully consistent 2-shard snapshot over 6 tuples: shard 0 owns the
/// even ids, shard 1 the odd ids; one merge round of 2 questions.
ShardMergeSnapshot CleanSnapshot() {
  ShardMergeSnapshot s;
  s.num_tuples = 6;
  s.cost_model = AmtCostModel{};  // $0.02 * 5 workers, 5 questions per HIT

  ShardMergeSnapshot::Shard shard0;
  shard0.tuple_ids = {0, 2, 4};
  shard0.candidates = {0, 4};
  shard0.questions_per_round = {2, 1};
  shard0.questions = 3;
  shard0.cost_usd = s.cost_model.Cost(shard0.questions_per_round);

  ShardMergeSnapshot::Shard shard1;
  shard1.tuple_ids = {1, 3, 5};
  shard1.candidates = {3};
  shard1.questions_per_round = {3};
  shard1.questions = 3;
  shard1.cost_usd = s.cost_model.Cost(shard1.questions_per_round);

  s.shards = {shard0, shard1};
  s.merged_skyline = {0, 3};
  s.merge_questions_per_round = {2};
  s.merge_questions = 2;
  s.merge_cost_usd = s.cost_model.Cost(s.merge_questions_per_round);
  s.total_questions = 8;
  s.total_cost_usd =
      shard0.cost_usd + shard1.cost_usd + s.merge_cost_usd;
  s.cost_cap_usd = 10.0;
  s.complete = true;
  return s;
}

AuditReport Audit(const ShardMergeSnapshot& snapshot) {
  AuditReport report;
  AuditShardMerge(snapshot, &report);
  return report;
}

bool Violates(const AuditReport& report, const std::string& rule) {
  for (const AuditViolation& v : report.violations) {
    if (v.invariant == rule) return true;
  }
  return false;
}

TEST(ShardAuditTest, CleanSnapshotPasses) {
  const AuditReport report = Audit(CleanSnapshot());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GT(report.checks, 0);
}

TEST(ShardAuditTest, DoubleOwnedTupleViolatesPartition) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[1].tuple_ids = {1, 3, 4};  // 4 also owned by shard 0
  EXPECT_TRUE(Violates(Audit(s), "shard.partition"));
}

TEST(ShardAuditTest, UncoveredTupleViolatesPartition) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[1].tuple_ids = {1, 3};  // 5 owned by nobody
  EXPECT_TRUE(Violates(Audit(s), "shard.partition"));
}

TEST(ShardAuditTest, ForeignCandidateViolatesOwnership) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[0].candidates = {0, 3};  // 3 belongs to shard 1
  EXPECT_TRUE(Violates(Audit(s), "shard.candidate_ownership"));
}

TEST(ShardAuditTest, DeadShardWithCandidatesViolatesOwnership) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[1].dead = true;
  // Candidates left in place despite death; fix the books elsewhere so
  // only ownership (and attribution for its skyline tuple) can fire.
  EXPECT_TRUE(Violates(Audit(s), "shard.candidate_ownership"));
}

TEST(ShardAuditTest, SkylineTupleNobodyContributedViolatesAttribution) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.merged_skyline = {0, 2, 3};  // 2 is no shard's candidate
  const AuditReport report = Audit(s);
  EXPECT_TRUE(Violates(report, "shard.attribution"));
  EXPECT_TRUE(Violates(report, "shard.merge_membership"));
}

TEST(ShardAuditTest, QuestionsRoundsMismatchViolatesConservation) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[0].questions = 5;  // rounds still sum to 3
  EXPECT_TRUE(Violates(Audit(s), "shard.question_conservation"));
}

TEST(ShardAuditTest, TotalQuestionsMismatchViolatesConservation) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.total_questions += 1;
  EXPECT_TRUE(Violates(Audit(s), "shard.question_conservation"));
}

TEST(ShardAuditTest, CostNotDerivableFromRoundsViolatesConservation) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[0].cost_usd += 0.01;
  EXPECT_TRUE(Violates(Audit(s), "shard.cost_conservation"));
}

TEST(ShardAuditTest, LostCostOutsideTotalViolatesConservation) {
  ShardMergeSnapshot s = CleanSnapshot();
  // A dead incarnation's journaled spend must show up in the total.
  s.shards[0].cost_lost_usd = 0.10;
  EXPECT_TRUE(Violates(Audit(s), "shard.cost_conservation"));
  s.total_cost_usd += 0.10;
  EXPECT_FALSE(Violates(Audit(s), "shard.cost_conservation"));
}

TEST(ShardAuditTest, DeadSliceNotReportedViolatesCompleteness) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[1].dead = true;
  s.shards[1].candidates.clear();
  s.merged_skyline = {0, 4};
  s.undetermined = {1, 3};  // 5 missing
  s.complete = false;
  EXPECT_TRUE(Violates(Audit(s), "shard.completeness"));
  s.undetermined = {1, 3, 5};
  EXPECT_FALSE(Violates(Audit(s), "shard.completeness"));
}

TEST(ShardAuditTest, CompleteFlagDespiteDeadShardViolatesCompleteness) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.shards[1].dead = true;
  s.shards[1].candidates.clear();
  s.merged_skyline = {0, 4};
  s.undetermined = {1, 3, 5};
  s.complete = true;  // lies
  EXPECT_TRUE(Violates(Audit(s), "shard.completeness"));
}

TEST(ShardAuditTest, OverspendViolatesBudget) {
  ShardMergeSnapshot s = CleanSnapshot();
  s.cost_cap_usd = s.total_cost_usd / 2;
  EXPECT_TRUE(Violates(Audit(s), "shard.budget"));
  s.cost_cap_usd = 0.0;  // uncapped: rule does not apply
  EXPECT_FALSE(Violates(Audit(s), "shard.budget"));
}

}  // namespace
}  // namespace crowdsky::audit
