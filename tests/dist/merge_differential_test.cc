// Differential suite for the sharded coordinator: on fault-free inputs the
// k-shard merged skyline must equal the single-process (k = 1 and direct
// engine) skyline, for every CrowdSky driver x data distribution x schema x
// partition scheme. Every run audits itself (in-driver rules inside the
// shard children, shard.* rules in the coordinator), so a conservation
// violation crashes the run rather than slipping past the equality checks.
//
// This binary owns main(): with --crowdsky_shard it IS a shard child;
// otherwise it runs the gtest suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.h"
#include "data/generator.h"
#include "dist/coordinator.h"
#include "dist/shard_runner.h"
#include "testing/temp_dir.h"

namespace crowdsky::dist {
namespace {

constexpr int kCardinality = 24;

Dataset MakeData(DataDistribution distribution, int num_known, int num_crowd,
                 uint64_t seed) {
  GeneratorOptions gen;
  gen.cardinality = kCardinality;
  gen.num_known = num_known;
  gen.num_crowd = num_crowd;
  gen.distribution = distribution;
  gen.seed = seed;
  return GenerateDataset(gen).ValueOrDie();
}

EngineOptions PerfectEngine(Algorithm algorithm) {
  EngineOptions engine;
  engine.algorithm = algorithm;
  engine.oracle = OracleKind::kPerfect;
  engine.crowdsky.audit = true;
  return engine;
}

DistResult RunDist(const Dataset& data, const EngineOptions& engine, int k,
                   const std::string& dir_tag,
                   PartitionScheme partition = PartitionScheme::kRoundRobin) {
  DistOptions options;
  options.shards = k;
  options.partition = partition;
  options.engine = engine;
  options.run_dir = crowdsky::testing::FreshTempDir(dir_tag);
  const Result<DistResult> result = RunShardedSkylineQuery(data, options);
  CROWDSKY_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.ValueOrDie();
}

constexpr Algorithm kDrivers[] = {Algorithm::kCrowdSkySerial,
                                  Algorithm::kParallelDSet,
                                  Algorithm::kParallelSL};

TEST(MergeDifferentialTest, MatchesSingleProcessAcrossDriversAndDistributions) {
  constexpr DataDistribution kDistributions[] = {
      DataDistribution::kIndependent, DataDistribution::kAntiCorrelated,
      DataDistribution::kCorrelated};
  for (const Algorithm algorithm : kDrivers) {
    for (const DataDistribution distribution : kDistributions) {
      const Dataset data = MakeData(distribution, 2, 1, 7);
      const EngineOptions engine = PerfectEngine(algorithm);
      const EngineResult direct =
          RunSkylineQuery(data, engine).ValueOrDie();
      for (const int k : {1, 2, 4}) {
        const std::string tag = std::string("mdiff_") +
                                AlgorithmName(algorithm) + "_" +
                                DataDistributionName(distribution) + "_k" +
                                std::to_string(k);
        const DistResult sharded = RunDist(data, engine, k, tag);
        EXPECT_EQ(sharded.skyline, direct.algo.skyline) << tag;
        EXPECT_EQ(sharded.skyline_labels, direct.skyline_labels) << tag;
        EXPECT_TRUE(sharded.completeness.complete) << tag;
        EXPECT_TRUE(sharded.completeness.undetermined_tuples.empty()) << tag;
        EXPECT_EQ(sharded.shards_dead, 0) << tag;
        EXPECT_EQ(sharded.restarts_total, 0) << tag;
        EXPECT_EQ(sharded.merge.ran, k > 1) << tag;
      }
    }
  }
}

TEST(MergeDifferentialTest, MatchesSingleProcessAcrossSchemas) {
  struct Schema {
    int num_known;
    int num_crowd;
  };
  constexpr Schema kSchemas[] = {{3, 1}, {2, 2}};
  for (const Algorithm algorithm : kDrivers) {
    for (const Schema schema : kSchemas) {
      const Dataset data = MakeData(DataDistribution::kIndependent,
                                    schema.num_known, schema.num_crowd, 11);
      const EngineOptions engine = PerfectEngine(algorithm);
      const EngineResult direct =
          RunSkylineQuery(data, engine).ValueOrDie();
      const std::string tag = std::string("mschema_") +
                              AlgorithmName(algorithm) + "_" +
                              std::to_string(schema.num_known) + "k" +
                              std::to_string(schema.num_crowd) + "c";
      const DistResult sharded = RunDist(data, engine, 2, tag);
      EXPECT_EQ(sharded.skyline, direct.algo.skyline) << tag;
      EXPECT_TRUE(sharded.completeness.complete) << tag;
    }
  }
}

TEST(MergeDifferentialTest, PartitionSchemeDoesNotChangeTheSkyline) {
  const Dataset data = MakeData(DataDistribution::kIndependent, 2, 1, 13);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelSL);
  const EngineResult direct = RunSkylineQuery(data, engine).ValueOrDie();
  for (const PartitionScheme scheme :
       {PartitionScheme::kRoundRobin, PartitionScheme::kBlock,
        PartitionScheme::kHash}) {
    const std::string tag =
        std::string("mpart_") + PartitionSchemeName(scheme);
    const DistResult sharded = RunDist(data, engine, 3, tag, scheme);
    EXPECT_EQ(sharded.skyline, direct.algo.skyline) << tag;
    EXPECT_TRUE(sharded.completeness.complete) << tag;
  }
}

TEST(MergeDifferentialTest, MergeReusesShardAnswersAndConservesAccounting) {
  const Dataset data = MakeData(DataDistribution::kIndependent, 2, 1, 17);
  const EngineOptions engine = PerfectEngine(Algorithm::kParallelSL);
  const DistResult sharded = RunDist(data, engine, 2, "mreuse");

  ASSERT_TRUE(sharded.merge.ran);
  // Shards export their resolved candidate answers; with two shards over
  // one dataset there is always at least one intra-shard candidate pair.
  EXPECT_GT(sharded.merge.imported_answers, 0);
  EXPECT_GT(sharded.merge.candidates, 0);

  int64_t shard_questions = 0;
  double shard_cost = 0.0;
  for (const ShardReport& shard : sharded.shards) {
    EXPECT_EQ(shard.state, ShardReport::State::kCompleted);
    EXPECT_EQ(shard.restarts, 0);
    EXPECT_FALSE(shard.resumed);
    shard_questions += shard.questions;
    shard_cost += shard.cost_usd + shard.cost_lost_usd;
  }
  EXPECT_EQ(sharded.total_questions,
            shard_questions + sharded.merge.questions);
  EXPECT_NEAR(sharded.total_cost_usd, shard_cost + sharded.merge.cost_usd,
              1e-9);
  EXPECT_EQ(sharded.cost_lost_usd, 0.0);
  // Latency model: shards run concurrently, the merge rounds are the
  // bounded extra.
  int64_t max_rounds = 0;
  for (const ShardReport& shard : sharded.shards) {
    max_rounds = std::max(max_rounds, shard.rounds);
  }
  EXPECT_EQ(sharded.rounds, max_rounds + sharded.merge.rounds);
}

TEST(MergeDifferentialTest, NoisyOracleRunsAreSeedDeterministic) {
  const Dataset data = MakeData(DataDistribution::kAntiCorrelated, 2, 1, 19);
  EngineOptions engine = PerfectEngine(Algorithm::kParallelDSet);
  engine.oracle = OracleKind::kSimulated;
  engine.worker.p_correct = 0.85;
  engine.seed = 1234;

  const DistResult a = RunDist(data, engine, 2, "mdet_a");
  const DistResult b = RunDist(data, engine, 2, "mdet_b");
  EXPECT_EQ(a.skyline, b.skyline);
  EXPECT_EQ(a.total_questions, b.total_questions);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.total_cost_usd, b.total_cost_usd);
  EXPECT_EQ(a.merge.questions, b.merge.questions);
  EXPECT_EQ(a.merge.imported_answers, b.merge.imported_answers);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (size_t i = 0; i < a.shards.size(); ++i) {
    EXPECT_EQ(a.shards[i].questions, b.shards[i].questions);
    EXPECT_EQ(a.shards[i].candidates, b.shards[i].candidates);
  }
}

TEST(MergeDifferentialTest, RejectsOptionsTheCoordinatorCannotHonor) {
  const Dataset data = MakeData(DataDistribution::kIndependent, 2, 1, 23);
  DistOptions options;
  options.engine = PerfectEngine(Algorithm::kParallelSL);
  options.run_dir = crowdsky::testing::FreshTempDir("mreject");

  DistOptions no_dir = options;
  no_dir.run_dir.clear();
  EXPECT_FALSE(RunShardedSkylineQuery(data, no_dir).ok());

  DistOptions too_many = options;
  too_many.shards = kCardinality + 1;
  EXPECT_FALSE(RunShardedSkylineQuery(data, too_many).ok());

  DistOptions baseline_algo = options;
  baseline_algo.engine.algorithm = Algorithm::kBaselineSort;
  EXPECT_FALSE(RunShardedSkylineQuery(data, baseline_algo).ok());

  DistOptions own_durability = options;
  own_durability.engine.durability.dir = options.run_dir;
  EXPECT_FALSE(RunShardedSkylineQuery(data, own_durability).ok());

  DistOptions bad_fault = options;
  bad_fault.faults.push_back(
      {.shard = 9, .kind = ShardFaultKind::kKillAtRound, .value = 1});
  EXPECT_FALSE(RunShardedSkylineQuery(data, bad_fault).ok());
}

}  // namespace
}  // namespace crowdsky::dist

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--crowdsky_shard") == 0) {
    return crowdsky::dist::RunShardChildMode(argc, argv);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
