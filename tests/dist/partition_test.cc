#include "dist/partition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "dist/coordinator.h"

namespace crowdsky::dist {
namespace {

constexpr PartitionScheme kSchemes[] = {PartitionScheme::kRoundRobin,
                                        PartitionScheme::kBlock,
                                        PartitionScheme::kHash};

TEST(PartitionTest, DisjointCoverForEverySchemeAndShape) {
  for (const PartitionScheme scheme : kSchemes) {
    for (const int n : {1, 2, 7, 40, 101}) {
      for (const int k : {1, 2, 3, 8}) {
        std::vector<int> owner(static_cast<size_t>(n), -1);
        for (int shard = 0; shard < k; ++shard) {
          const std::vector<int> ids = ShardTupleIds(n, k, shard, scheme);
          EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
          for (const int id : ids) {
            ASSERT_GE(id, 0);
            ASSERT_LT(id, n);
            EXPECT_EQ(owner[static_cast<size_t>(id)], -1)
                << "tuple " << id << " double-owned, scheme "
                << PartitionSchemeName(scheme) << " n=" << n << " k=" << k;
            owner[static_cast<size_t>(id)] = shard;
          }
        }
        EXPECT_EQ(std::count(owner.begin(), owner.end(), -1), 0)
            << "uncovered tuple, scheme " << PartitionSchemeName(scheme)
            << " n=" << n << " k=" << k;
      }
    }
  }
}

TEST(PartitionTest, RoundRobinInterleaves) {
  EXPECT_EQ(ShardTupleIds(7, 3, 0, PartitionScheme::kRoundRobin),
            (std::vector<int>{0, 3, 6}));
  EXPECT_EQ(ShardTupleIds(7, 3, 1, PartitionScheme::kRoundRobin),
            (std::vector<int>{1, 4}));
  EXPECT_EQ(ShardTupleIds(7, 3, 2, PartitionScheme::kRoundRobin),
            (std::vector<int>{2, 5}));
}

TEST(PartitionTest, BlockIsContiguousAndBalanced) {
  for (const int n : {10, 11, 12}) {
    size_t min_size = static_cast<size_t>(n);
    size_t max_size = 0;
    int expected_begin = 0;
    for (int shard = 0; shard < 4; ++shard) {
      const std::vector<int> ids =
          ShardTupleIds(n, 4, shard, PartitionScheme::kBlock);
      ASSERT_FALSE(ids.empty());
      EXPECT_EQ(ids.front(), expected_begin);
      EXPECT_EQ(ids.back(), expected_begin + static_cast<int>(ids.size()) - 1);
      expected_begin += static_cast<int>(ids.size());
      min_size = std::min(min_size, ids.size());
      max_size = std::max(max_size, ids.size());
    }
    EXPECT_EQ(expected_begin, n);
    EXPECT_LE(max_size - min_size, 1u) << "n=" << n;
  }
}

TEST(PartitionTest, DeterministicAcrossCalls) {
  for (const PartitionScheme scheme : kSchemes) {
    EXPECT_EQ(ShardTupleIds(64, 4, 2, scheme),
              ShardTupleIds(64, 4, 2, scheme));
  }
}

TEST(PartitionTest, SchemeNamesAreStable) {
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kRoundRobin),
               "round_robin");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kBlock), "block");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kHash), "hash");
}

TEST(ShardSeedTest, DistinctPerShardAndDeterministic) {
  std::vector<uint64_t> seeds;
  for (int shard = 0; shard <= 8; ++shard) {
    seeds.push_back(ShardSeed(42, shard));
    EXPECT_EQ(seeds.back(), ShardSeed(42, shard));
  }
  std::sort(seeds.begin(), seeds.end());
  EXPECT_EQ(std::adjacent_find(seeds.begin(), seeds.end()), seeds.end());
  EXPECT_NE(ShardSeed(42, 0), ShardSeed(43, 0));
}

}  // namespace
}  // namespace crowdsky::dist
