#include "dist/wire.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "testing/temp_dir.h"

namespace crowdsky::dist {
namespace {

TEST(WireTest, ShardSpecRoundTrip) {
  ShardSpec spec;
  spec.shard = 3;
  spec.shards = 8;
  spec.generation = 2;
  spec.partition = PartitionScheme::kHash;
  spec.dataset_csv = "/tmp/run/dataset.csv";
  spec.shard_dir = "/tmp/run/shard_3";
  spec.heartbeat_fd = 17;
  spec.engine.algorithm = Algorithm::kParallelDSet;
  spec.engine.oracle = OracleKind::kMarketplace;
  spec.engine.worker.p_correct = 0.8125;
  spec.engine.workers_per_question = 7;
  spec.engine.dynamic_voting = true;
  spec.engine.seed = 0xfeedbeef;
  spec.engine.max_questions = 321;
  spec.engine.marketplace.pool_size = 33;
  spec.engine.marketplace.population.p_correct = 0.75;
  spec.engine.marketplace.faults.transient_error_rate = 0.125;
  spec.engine.marketplace.faults.worker_no_show_rate = 0.0625;
  spec.engine.marketplace.seed = 99;
  spec.engine.retry.max_retries = 5;
  spec.engine.cost_model.reward_per_hit = 0.04;
  spec.engine.governor.max_rounds = 11;
  spec.engine.governor.max_cost_usd = 1.5;
  spec.engine.durability.resume = true;
  spec.engine.durability.checkpoint_every_rounds = 3;
  spec.engine.crowdsky.pruning.use_p2 = false;
  spec.engine.crowdsky.audit = true;
  spec.kill_at_round = 4;
  spec.kill_at_record = 9;
  spec.tear_bytes = 13;
  spec.hang_at_start = true;
  spec.hang_at_round = 6;
  spec.slow_start_ms = 250;

  const Result<ShardSpec> decoded = DecodeShardSpec(EncodeShardSpec(spec));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ShardSpec& d = decoded.ValueOrDie();
  EXPECT_EQ(d.shard, spec.shard);
  EXPECT_EQ(d.shards, spec.shards);
  EXPECT_EQ(d.generation, spec.generation);
  EXPECT_EQ(d.partition, spec.partition);
  EXPECT_EQ(d.dataset_csv, spec.dataset_csv);
  EXPECT_EQ(d.shard_dir, spec.shard_dir);
  EXPECT_EQ(d.heartbeat_fd, spec.heartbeat_fd);
  EXPECT_EQ(d.engine.algorithm, spec.engine.algorithm);
  EXPECT_EQ(d.engine.oracle, spec.engine.oracle);
  EXPECT_EQ(d.engine.worker.p_correct, spec.engine.worker.p_correct);
  EXPECT_EQ(d.engine.workers_per_question, spec.engine.workers_per_question);
  EXPECT_EQ(d.engine.dynamic_voting, spec.engine.dynamic_voting);
  EXPECT_EQ(d.engine.seed, spec.engine.seed);
  EXPECT_EQ(d.engine.max_questions, spec.engine.max_questions);
  EXPECT_EQ(d.engine.marketplace.pool_size, spec.engine.marketplace.pool_size);
  EXPECT_EQ(d.engine.marketplace.population.p_correct,
            spec.engine.marketplace.population.p_correct);
  EXPECT_EQ(d.engine.marketplace.faults.transient_error_rate,
            spec.engine.marketplace.faults.transient_error_rate);
  EXPECT_EQ(d.engine.marketplace.faults.worker_no_show_rate,
            spec.engine.marketplace.faults.worker_no_show_rate);
  EXPECT_EQ(d.engine.marketplace.seed, spec.engine.marketplace.seed);
  EXPECT_EQ(d.engine.retry.max_retries, spec.engine.retry.max_retries);
  EXPECT_EQ(d.engine.cost_model.reward_per_hit,
            spec.engine.cost_model.reward_per_hit);
  EXPECT_EQ(d.engine.governor.max_rounds, spec.engine.governor.max_rounds);
  EXPECT_EQ(d.engine.governor.max_cost_usd,
            spec.engine.governor.max_cost_usd);
  // The journal directory is derived from the shard dir, not transmitted.
  EXPECT_EQ(d.engine.durability.dir, spec.shard_dir);
  EXPECT_EQ(d.engine.durability.resume, spec.engine.durability.resume);
  EXPECT_EQ(d.engine.durability.checkpoint_every_rounds,
            spec.engine.durability.checkpoint_every_rounds);
  EXPECT_EQ(d.engine.crowdsky.pruning.use_p2,
            spec.engine.crowdsky.pruning.use_p2);
  EXPECT_TRUE(d.engine.crowdsky.pruning.use_p1);
  EXPECT_EQ(d.engine.crowdsky.audit, spec.engine.crowdsky.audit);
  EXPECT_EQ(d.kill_at_round, spec.kill_at_round);
  EXPECT_EQ(d.kill_at_record, spec.kill_at_record);
  EXPECT_EQ(d.tear_bytes, spec.tear_bytes);
  EXPECT_EQ(d.hang_at_start, spec.hang_at_start);
  EXPECT_EQ(d.hang_at_round, spec.hang_at_round);
  EXPECT_EQ(d.slow_start_ms, spec.slow_start_ms);
}

TEST(WireTest, ShardResultRoundTrip) {
  ShardResult r;
  r.ok = true;
  r.skyline = {0, 4, 9};
  r.undetermined = {4};
  r.questions = 42;
  r.rounds = 7;
  r.questions_per_round = {10, 10, 10, 5, 3, 2, 2};
  r.free_lookups = 12;
  r.retries = 1;
  r.cost_usd = 0.34;
  r.incomplete_tuples = 1;
  r.resolved_questions = 41;
  r.unresolved_questions = 1;
  r.budget_exhausted = true;
  r.resumed = true;
  r.used_checkpoint = true;
  r.replayed_pair_attempts = 17;
  r.journal_records = 60;
  r.termination_reason = "dollar_cap";
  r.answers = {{0, 0, 4, Answer::kFirstPreferred},
               {1, 4, 9, Answer::kSecondPreferred},
               {1, 0, 9, Answer::kEqual}};

  const Result<ShardResult> decoded =
      DecodeShardResult(EncodeShardResult(r));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const ShardResult& d = decoded.ValueOrDie();
  EXPECT_TRUE(d.ok);
  EXPECT_EQ(d.skyline, r.skyline);
  EXPECT_EQ(d.undetermined, r.undetermined);
  EXPECT_EQ(d.questions, r.questions);
  EXPECT_EQ(d.rounds, r.rounds);
  EXPECT_EQ(d.questions_per_round, r.questions_per_round);
  EXPECT_EQ(d.free_lookups, r.free_lookups);
  EXPECT_EQ(d.retries, r.retries);
  EXPECT_EQ(d.cost_usd, r.cost_usd);
  EXPECT_EQ(d.incomplete_tuples, r.incomplete_tuples);
  EXPECT_EQ(d.resolved_questions, r.resolved_questions);
  EXPECT_EQ(d.unresolved_questions, r.unresolved_questions);
  EXPECT_EQ(d.budget_exhausted, r.budget_exhausted);
  EXPECT_EQ(d.retries_exhausted, r.retries_exhausted);
  EXPECT_EQ(d.resumed, r.resumed);
  EXPECT_EQ(d.used_checkpoint, r.used_checkpoint);
  EXPECT_EQ(d.replayed_pair_attempts, r.replayed_pair_attempts);
  EXPECT_EQ(d.journal_records, r.journal_records);
  EXPECT_EQ(d.termination_reason, r.termination_reason);
  ASSERT_EQ(d.answers.size(), r.answers.size());
  for (size_t i = 0; i < r.answers.size(); ++i) {
    EXPECT_EQ(d.answers[i].attr, r.answers[i].attr);
    EXPECT_EQ(d.answers[i].u, r.answers[i].u);
    EXPECT_EQ(d.answers[i].v, r.answers[i].v);
    EXPECT_EQ(d.answers[i].answer, r.answers[i].answer);
  }
}

TEST(WireTest, ErrorResultRoundTrip) {
  ShardResult r;
  r.ok = false;
  r.error = "engine failed:\nmulti-line detail";
  const Result<ShardResult> decoded =
      DecodeShardResult(EncodeShardResult(r));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_FALSE(decoded.ValueOrDie().ok);
  EXPECT_EQ(decoded.ValueOrDie().error, "engine failed: multi-line detail");
}

TEST(WireTest, RejectsForeignAndCorruptInput) {
  EXPECT_FALSE(DecodeShardSpec("format=something-else\n").ok());
  EXPECT_FALSE(DecodeShardResult("").ok());
  ShardSpec spec;
  std::string text = EncodeShardSpec(spec);
  text += "seed=notanumber\n";
  EXPECT_FALSE(DecodeShardSpec(text).ok());
  ShardResult r;
  r.ok = true;
  std::string rtext = EncodeShardResult(r);
  rtext += "answers=1:2:3:9\n";
  EXPECT_FALSE(DecodeShardResult(rtext).ok());
}

TEST(WireTest, WriteFileAtomicLeavesNoTmpAndRoundTrips) {
  const std::string path = crowdsky::testing::FreshTempPath("wire.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "hello\nworld\n").ok());
  const Result<std::string> back = ReadFileToString(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.ValueOrDie(), "hello\nworld\n");
  EXPECT_FALSE(ReadFileToString(path + ".tmp").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_EQ(ReadFileToString(path).ValueOrDie(), "second");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace crowdsky::dist
