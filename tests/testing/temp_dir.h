// Shared per-test temp-path helpers. Every test that touches the
// filesystem previously carried its own copy of these; they live here so a
// name collision between two tests (or two parameterized instances of one)
// cannot silently share state through a stale file.
#pragma once

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

namespace crowdsky::testing {

/// `name` made unique per running test by appending the gtest suite and
/// test name (parameterized instances included), with '/' sanitized.
inline std::string UniqueTestName(const std::string& name) {
  std::string unique = name;
  if (const ::testing::TestInfo* info =
          ::testing::UnitTest::GetInstance()->current_test_info()) {
    unique += std::string("_") + info->test_suite_name() + "_" +
              info->name();
  }
  for (char& c : unique) {
    if (c == '/') c = '_';
  }
  return unique;
}

/// A per-test temp *directory* path, guaranteed not to exist on return
/// (anything left by a previous run is removed). Not created — callers
/// that need it existing create it themselves, matching code under test
/// that expects to create its own directory.
inline std::string FreshTempDir(const std::string& name) {
  const std::string dir =
      ::testing::TempDir() + "/" + UniqueTestName(name);
  std::filesystem::remove_all(dir);
  return dir;
}

/// A per-test temp *file* path, guaranteed not to exist on return.
inline std::string FreshTempPath(const std::string& name) {
  const std::string path =
      ::testing::TempDir() + "/" + UniqueTestName(name);
  std::filesystem::remove(path);
  return path;
}

}  // namespace crowdsky::testing
