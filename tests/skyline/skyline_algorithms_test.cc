#include "skyline/algorithms.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/bitset.h"
#include "data/generator.h"
#include "data/toy.h"

namespace crowdsky {
namespace {

/// Brute-force reference skyline.
std::vector<int> ReferenceSkyline(const PreferenceMatrix& m) {
  std::vector<int> out;
  for (int t = 0; t < m.size(); ++t) {
    bool dominated = false;
    for (int s = 0; s < m.size() && !dominated; ++s) {
      dominated = m.Dominates(s, t);
    }
    if (!dominated) out.push_back(t);
  }
  return out;
}

TEST(SkylineAlgorithmsTest, EmptyInput) {
  const PreferenceMatrix m = PreferenceMatrix::FromRaw(0, 2, {});
  EXPECT_TRUE(ComputeSkylineBNL(m).empty());
  EXPECT_TRUE(ComputeSkylineSFS(m).empty());
}

TEST(SkylineAlgorithmsTest, SingleTuple) {
  const PreferenceMatrix m = PreferenceMatrix::FromRaw(1, 2, {1, 2});
  EXPECT_EQ(ComputeSkylineBNL(m), std::vector<int>{0});
  EXPECT_EQ(ComputeSkylineSFS(m), std::vector<int>{0});
}

TEST(SkylineAlgorithmsTest, AllDuplicatesStay) {
  const PreferenceMatrix m =
      PreferenceMatrix::FromRaw(3, 2, {1, 2, 1, 2, 1, 2});
  EXPECT_EQ(ComputeSkylineBNL(m), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(ComputeSkylineSFS(m), (std::vector<int>{0, 1, 2}));
}

TEST(SkylineAlgorithmsTest, TotalOrderChainGivesSingleton) {
  const PreferenceMatrix m =
      PreferenceMatrix::FromRaw(4, 2, {4, 4, 3, 3, 2, 2, 1, 1});
  EXPECT_EQ(ComputeSkylineSFS(m), std::vector<int>{3});
  EXPECT_EQ(ComputeSkylineBNL(m), std::vector<int>{3});
}

TEST(SkylineAlgorithmsTest, PureAntichainKeepsEverything) {
  const PreferenceMatrix m =
      PreferenceMatrix::FromRaw(4, 2, {1, 4, 2, 3, 3, 2, 4, 1});
  EXPECT_EQ(ComputeSkylineSFS(m), (std::vector<int>{0, 1, 2, 3}));
}

TEST(SkylineAlgorithmsTest, ToyDatasetKnownSkyline) {
  const Dataset toy = MakeToyDataset();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(toy);
  const std::vector<int> expected = {ToyId('b'), ToyId('e'), ToyId('i'),
                                     ToyId('l')};
  EXPECT_EQ(ComputeSkylineBNL(m), expected);
  EXPECT_EQ(ComputeSkylineSFS(m), expected);
}

using SweepParam = std::tuple<DataDistribution, int, int>;

class SkylineSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SkylineSweepTest, BnlSfsAndBruteForceAgree) {
  const auto [dist, n, d] = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    GeneratorOptions opt;
    opt.cardinality = n;
    opt.num_known = d;
    opt.num_crowd = 0;
    opt.distribution = dist;
    opt.seed = seed;
    const Dataset ds = GenerateDataset(opt).ValueOrDie();
    const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
    const std::vector<int> reference = ReferenceSkyline(m);
    EXPECT_EQ(ComputeSkylineBNL(m), reference) << "seed " << seed;
    EXPECT_EQ(ComputeSkylineSFS(m), reference) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, SkylineSweepTest,
    ::testing::Combine(
        ::testing::Values(DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated,
                          DataDistribution::kCorrelated),
        ::testing::Values(30, 120, 400),
        ::testing::Values(2, 3, 5)),
    [](const auto& pinfo) {
      return std::string(DataDistributionName(std::get<0>(pinfo.param))) +
             "_n" + std::to_string(std::get<1>(pinfo.param)) + "_d" +
             std::to_string(std::get<2>(pinfo.param));
    });

TEST(SkylineAlgorithmsTest, SkylineMembersNeverDominateEachOther) {
  GeneratorOptions opt;
  opt.cardinality = 300;
  opt.num_known = 3;
  opt.num_crowd = 0;
  opt.distribution = DataDistribution::kAntiCorrelated;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  const std::vector<int> sky = ComputeSkylineSFS(m);
  for (const int a : sky) {
    for (const int b : sky) {
      EXPECT_FALSE(m.Dominates(a, b));
    }
  }
}

TEST(SkylineAlgorithmsTest, NonSkylineTuplesAreDominatedBySkylineMember) {
  GeneratorOptions opt;
  opt.cardinality = 300;
  opt.num_known = 3;
  opt.num_crowd = 0;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  const std::vector<int> sky = ComputeSkylineSFS(m);
  DynamicBitset in_sky(static_cast<size_t>(m.size()));
  for (const int s : sky) in_sky.Set(static_cast<size_t>(s));
  for (int t = 0; t < m.size(); ++t) {
    if (in_sky.Test(static_cast<size_t>(t))) continue;
    bool dominated_by_sky = false;
    for (const int s : sky) {
      if (m.Dominates(s, t)) {
        dominated_by_sky = true;
        break;
      }
    }
    EXPECT_TRUE(dominated_by_sky) << t;
  }
}

TEST(SkylineAlgorithmsTest, GroundTruthUsesAllAttributes) {
  const Dataset toy = MakeToyDataset();
  const std::vector<int> truth = ComputeGroundTruthSkyline(toy);
  // {b, e, f, h, i, k, l} from Example 2.
  const std::vector<int> expected = {ToyId('b'), ToyId('e'), ToyId('f'),
                                     ToyId('h'), ToyId('i'), ToyId('k'),
                                     ToyId('l')};
  EXPECT_EQ(truth, expected);
}

}  // namespace
}  // namespace crowdsky
