#include "skyline/dominance_kernels.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "data/generator.h"
#include "skyline/algorithms.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {
namespace {

// Backends runnable on this machine. Legacy and scalar always exist; the
// AVX2 cells are added only when the CPU reports support (the CI kernels
// job prints a skip notice for the avx2 leg on such runners).
std::vector<KernelBackend> TestableBackends() {
  std::vector<KernelBackend> backends = {KernelBackend::kLegacy,
                                         KernelBackend::kScalar};
  if (CpuSupportsAvx2()) backends.push_back(KernelBackend::kAvx2);
  return backends;
}

Dataset MakeData(int n, int num_known, DataDistribution dist, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = num_known;
  opt.num_crowd = 2;
  opt.distribution = dist;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

/// Brute-force reference skyline.
std::vector<int> ReferenceSkyline(const PreferenceMatrix& m) {
  std::vector<int> out;
  for (int t = 0; t < m.size(); ++t) {
    bool dominated = false;
    for (int s = 0; s < m.size() && !dominated; ++s) {
      dominated = m.Dominates(s, t);
    }
    if (!dominated) out.push_back(t);
  }
  return out;
}

void ExpectStructuresIdentical(const DominanceStructure& ref,
                               const DominanceStructure& got,
                               const char* label) {
  ASSERT_EQ(ref.size(), got.size()) << label;
  for (int t = 0; t < ref.size(); ++t) {
    EXPECT_EQ(ref.dominator_bits(t), got.dominator_bits(t))
        << label << " dominators of " << t;
    EXPECT_EQ(ref.dominatees(t), got.dominatees(t))
        << label << " dominatees of " << t;
    EXPECT_EQ(ref.dominating_set_size(t), got.dominating_set_size(t))
        << label << " |DS| of " << t;
  }
  EXPECT_EQ(ref.evaluation_order(), got.evaluation_order()) << label;
  EXPECT_EQ(ref.known_skyline(), got.known_skyline()) << label;
}

// The tentpole invariant: every backend × thread-count cell produces
// bit-identical dominance structures and identical skylines. The n values
// cover the padding edge cases n % 64 in {0, 1, 63} on both sides of one
// word, plus the degenerate n=1; three distributions × two dimensionalities
// give 36 seeded cells before the backend/thread fan-out.
TEST(DominanceKernelsDifferentialTest, AllBackendsAndThreadsBitIdentical) {
  const std::vector<DataDistribution> dists = {DataDistribution::kIndependent,
                                               DataDistribution::kAntiCorrelated,
                                               DataDistribution::kCorrelated};
  const std::vector<int> sizes = {1, 63, 64, 65, 127, 128};
  const std::vector<KernelBackend> backends = TestableBackends();
  uint64_t seed = 1;
  for (const DataDistribution dist : dists) {
    for (const int n : sizes) {
      for (const int d : {2, 4}) {
        const Dataset ds = MakeData(n, d, dist, seed++);
        const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
        const std::vector<int> ref_sky = ReferenceSkyline(m);
        ScopedThreads serial(1);
        const DominanceStructure reference(m, KernelBackend::kLegacy);
        for (const KernelBackend backend : backends) {
          for (const int threads : {1, 4}) {
            ScopedThreads scope(threads);
            const std::string label =
                std::string(DataDistributionName(dist)) + " n=" +
                std::to_string(n) + " d=" + std::to_string(d) + " " +
                KernelBackendName(backend) + " threads=" +
                std::to_string(threads);
            const DominanceStructure got(m, backend);
            ExpectStructuresIdentical(reference, got, label.c_str());
            EXPECT_EQ(ComputeSkylineSFS(m, backend), ref_sky) << label;
            EXPECT_EQ(ComputeSkylineBNL(m, backend), ref_sky) << label;
          }
        }
      }
    }
  }
}

// Larger cells cross the parallel-path threshold (seed filter, block
// partition, whole-pool merge) and the structure's chunked kernel fill.
TEST(DominanceKernelsDifferentialTest, LargeCellsCrossParallelThreshold) {
  const std::vector<KernelBackend> backends = TestableBackends();
  for (const DataDistribution dist : {DataDistribution::kIndependent,
                                      DataDistribution::kAntiCorrelated}) {
    const Dataset ds = MakeData(1500, 4, dist, 77);
    const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
    const std::vector<int> ref_sky = ReferenceSkyline(m);
    ScopedThreads serial(1);
    const DominanceStructure reference(m, KernelBackend::kLegacy);
    for (const KernelBackend backend : backends) {
      for (const int threads : {1, 4}) {
        ScopedThreads scope(threads);
        const std::string label = std::string(KernelBackendName(backend)) +
                                  " threads=" + std::to_string(threads);
        const DominanceStructure got(m, backend);
        ExpectStructuresIdentical(reference, got, label.c_str());
        EXPECT_EQ(ComputeSkylineSFS(m, backend), ref_sky) << label;
        EXPECT_EQ(ComputeSkylineBNL(m, backend), ref_sky) << label;
      }
    }
  }
}

TEST(DominanceKernelsTest, PointDominatesTailMatchesBruteForce) {
  const Dataset ds = MakeData(130, 3, DataDistribution::kIndependent, 9);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  const SoAMatrix soa(m);  // id order: candidate j == tuple j
  const size_t n = static_cast<size_t>(m.size());
  const size_t words = (n + 63) / 64;
  for (const KernelBackend backend : TestableBackends()) {
    if (backend == KernelBackend::kLegacy) continue;
    for (const size_t begin : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                               size_t{65}, size_t{129}}) {
      std::vector<DynamicBitset::Word> out(words, 0);
      PointDominatesTail(soa.view(), m.row(7), begin, backend, out.data());
      for (size_t j = begin; j < n; ++j) {
        const bool bit = (out[j / 64] >> (j % 64)) & 1u;
        EXPECT_EQ(bit, m.Dominates(7, static_cast<int>(j)))
            << KernelBackendName(backend) << " begin=" << begin
            << " j=" << j;
      }
      // Bits below `begin` in the first written word must be masked off.
      const DynamicBitset::Word lead_mask =
          (begin % 64) == 0
              ? 0
              : ~(~DynamicBitset::Word{0} << (begin % 64));
      EXPECT_EQ(out[begin / 64] & lead_mask, 0u)
          << KernelBackendName(backend) << " begin=" << begin;
    }
  }
}

TEST(DominanceKernelsTest, AnyDominatesPointMatchesBruteForce) {
  const Dataset ds = MakeData(200, 3, DataDistribution::kAntiCorrelated, 11);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  // Window of every third tuple — deliberately not a multiple of 64 so the
  // +inf growth slack is exercised.
  SoABlock block(m.dims());
  std::vector<int> members;
  for (int t = 0; t < m.size(); t += 3) {
    block.Append(m.row(t), t);
    members.push_back(t);
  }
  for (const KernelBackend backend : TestableBackends()) {
    if (backend == KernelBackend::kLegacy) continue;
    for (int t = 0; t < m.size(); ++t) {
      bool expected = false;
      for (const int s : members) {
        if (m.Dominates(s, t)) {
          expected = true;
          break;
        }
      }
      EXPECT_EQ(AnyDominatesPoint(block.view(), m.row(t), backend), expected)
          << KernelBackendName(backend) << " t=" << t;
    }
  }
}

TEST(DominanceKernelsTest, SoAMatrixPadsWithMinusInfinity) {
  const PreferenceMatrix m =
      PreferenceMatrix::FromRaw(3, 2, {1, 2, 3, 4, 5, 6});
  const SoAMatrix soa(m);
  ASSERT_EQ(soa.count(), 3u);
  const double inf = std::numeric_limits<double>::infinity();
  for (int k = 0; k < soa.dims(); ++k) {
    for (size_t j = soa.count(); j < PaddedCount(soa.count()); ++j) {
      EXPECT_EQ(soa.column(k)[j], -inf) << "k=" << k << " j=" << j;
    }
  }
}

TEST(DominanceKernelsTest, TileMinCornerIsComponentwiseMinimum) {
  const PreferenceMatrix m =
      PreferenceMatrix::FromRaw(4, 2, {3, 9, 1, 7, 5, 2, 4, 4});
  const std::vector<int> order = {2, 0, 3, 1};
  std::vector<double> corner(2);
  TileMinCorner(m, order, 1, 4, corner.data());  // tuples 0, 3, 1
  EXPECT_EQ(corner[0], 1.0);
  EXPECT_EQ(corner[1], 4.0);
}

TEST(DominanceKernelsTest, BackendNames) {
  EXPECT_STREQ(KernelBackendName(KernelBackend::kLegacy), "legacy");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kScalar), "scalar");
  EXPECT_STREQ(KernelBackendName(KernelBackend::kAvx2), "avx2");
}

// Satellite regression: the presort is stable with ties broken by id, and
// the cached scores match a fresh row sum.
TEST(ScoreSortedOrderTest, TiesBrokenByAscendingId) {
  // Rows 0..3 all sum to 10; rows 4 and 5 sum to 4 and 20.
  const PreferenceMatrix m = PreferenceMatrix::FromRaw(
      6, 2, {7, 3, 5, 5, 9, 1, 1, 9, 2, 2, 15, 5});
  const std::vector<int> order = ScoreSortedOrder(m);
  EXPECT_EQ(order, (std::vector<int>{4, 0, 1, 2, 3, 5}));
}

TEST(ScoreSortedOrderTest, CachedScoreMatchesRowSum) {
  const Dataset ds = MakeData(97, 4, DataDistribution::kCorrelated, 21);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  ASSERT_EQ(m.scores().size(), static_cast<size_t>(m.size()));
  for (int t = 0; t < m.size(); ++t) {
    double sum = 0.0;
    for (int k = 0; k < m.dims(); ++k) sum += m.value(t, k);
    EXPECT_EQ(m.Score(t), sum) << "t=" << t;
  }
}

}  // namespace
}  // namespace crowdsky
