#include "skyline/dominance.h"

#include <gtest/gtest.h>

#include "data/generator.h"
#include "data/toy.h"

namespace crowdsky {
namespace {

Dataset SmallMixed() {
  auto schema = Schema::Make({
      {"min_attr", Direction::kMin, AttributeKind::kKnown},
      {"max_attr", Direction::kMax, AttributeKind::kKnown},
      {"crowd_min", Direction::kMin, AttributeKind::kCrowd},
  });
  schema.status().CheckOK();
  auto ds = Dataset::Make(std::move(schema).ValueOrDie(), {
                                                              {1, 9, 0.5},
                                                              {2, 9, 0.7},
                                                              {1, 5, 0.2},
                                                              {2, 4, 0.7},
                                                          });
  ds.status().CheckOK();
  return std::move(ds).ValueOrDie();
}

TEST(PreferenceMatrixTest, NormalizesMaxAttributes) {
  const Dataset ds = SmallMixed();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  EXPECT_EQ(m.size(), 4);
  EXPECT_EQ(m.dims(), 2);
  EXPECT_DOUBLE_EQ(m.value(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.value(0, 1), -9.0);  // MAX negated
}

TEST(PreferenceMatrixTest, DominatesRespectsDirections) {
  const Dataset ds = SmallMixed();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  // Tuple 0 = (1 min, 9 max) dominates tuple 1 = (2, 9) and 2 = (1, 5).
  EXPECT_TRUE(m.Dominates(0, 1));
  EXPECT_TRUE(m.Dominates(0, 2));
  EXPECT_FALSE(m.Dominates(1, 0));
  // 2 vs 3: (1,5) vs (2,4): 2 better on both.
  EXPECT_TRUE(m.Dominates(2, 3));
  // 1 vs 2: (2,9) vs (1,5): incomparable.
  EXPECT_FALSE(m.Dominates(1, 2));
  EXPECT_FALSE(m.Dominates(2, 1));
}

TEST(PreferenceMatrixTest, CompareClassifications) {
  const Dataset ds = SmallMixed();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  EXPECT_EQ(m.Compare(0, 1), PartialOrder::kDominates);
  EXPECT_EQ(m.Compare(1, 0), PartialOrder::kDominatedBy);
  EXPECT_EQ(m.Compare(1, 2), PartialOrder::kIncomparable);
  EXPECT_EQ(m.Compare(0, 0), PartialOrder::kEqual);
}

TEST(PreferenceMatrixTest, SelfNeverDominates) {
  const Dataset ds = SmallMixed();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  for (int i = 0; i < m.size(); ++i) {
    EXPECT_FALSE(m.Dominates(i, i));
  }
}

TEST(PreferenceMatrixTest, EqualRowsDoNotDominate) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 0),
                          {{1, 2}, {1, 2}});
  ds.status().CheckOK();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(*ds);
  EXPECT_FALSE(m.Dominates(0, 1));
  EXPECT_FALSE(m.Dominates(1, 0));
  EXPECT_TRUE(m.EqualRows(0, 1));
}

TEST(PreferenceMatrixTest, FromCrowdSelectsCrowdAttrs) {
  const Dataset ds = SmallMixed();
  const PreferenceMatrix c = PreferenceMatrix::FromCrowd(ds);
  EXPECT_EQ(c.dims(), 1);
  EXPECT_DOUBLE_EQ(c.value(2, 0), 0.2);
}

TEST(PreferenceMatrixTest, FromAllIncludesEverything) {
  const Dataset ds = SmallMixed();
  const PreferenceMatrix a = PreferenceMatrix::FromAll(ds);
  EXPECT_EQ(a.dims(), 3);
}

TEST(PreferenceMatrixTest, FromRaw) {
  const PreferenceMatrix m =
      PreferenceMatrix::FromRaw(2, 2, {1.0, 2.0, 0.5, 3.0});
  EXPECT_EQ(m.size(), 2);
  EXPECT_EQ(m.Compare(0, 1), PartialOrder::kIncomparable);
}

TEST(PreferenceMatrixTest, ScoreIsMonotoneUnderDominance) {
  GeneratorOptions opt;
  opt.cardinality = 200;
  opt.num_known = 3;
  opt.num_crowd = 0;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  for (int s = 0; s < m.size(); ++s) {
    for (int t = 0; t < m.size(); ++t) {
      if (m.Dominates(s, t)) {
        EXPECT_LT(m.Score(s), m.Score(t));
      }
    }
  }
}

TEST(DominancePropertyTest, TransitivityOnRandomData) {
  GeneratorOptions opt;
  opt.cardinality = 60;
  opt.num_known = 2;
  opt.num_crowd = 0;
  opt.distribution = DataDistribution::kAntiCorrelated;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  for (int a = 0; a < m.size(); ++a) {
    for (int b = 0; b < m.size(); ++b) {
      if (!m.Dominates(a, b)) continue;
      EXPECT_FALSE(m.Dominates(b, a)) << "antisymmetry";
      for (int c = 0; c < m.size(); ++c) {
        if (m.Dominates(b, c)) {
          EXPECT_TRUE(m.Dominates(a, c)) << "transitivity";
        }
      }
    }
  }
}

TEST(DominanceToyTest, PaperExampleRelations) {
  const Dataset toy = MakeToyDataset();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(toy);
  EXPECT_TRUE(m.Dominates(ToyId('b'), ToyId('a')));
  EXPECT_TRUE(m.Dominates(ToyId('e'), ToyId('g')));
  EXPECT_TRUE(m.Dominates(ToyId('d'), ToyId('f')));
  EXPECT_FALSE(m.Dominates(ToyId('a'), ToyId('d')));
  EXPECT_FALSE(m.Dominates(ToyId('d'), ToyId('a')));
}

}  // namespace
}  // namespace crowdsky
