// The tentpole guarantee of the parallel substrate: every thread count
// produces bit-identical results. DominanceStructure construction, the
// partition/merge skylines, and the bench sweep cells must all match the
// threads=1 serial path exactly.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/crowdsky.h"
#include "questions_sweep.h"
#include "rounds_sweep.h"

namespace crowdsky {
namespace {

Dataset MakeData(int n, DataDistribution dist, uint64_t seed) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = 4;
  opt.num_crowd = 1;
  opt.distribution = dist;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

void ExpectIdenticalStructures(const DominanceStructure& a,
                               const DominanceStructure& b) {
  ASSERT_EQ(a.size(), b.size());
  const int n = a.size();
  for (int t = 0; t < n; ++t) {
    ASSERT_EQ(a.dominating_set_size(t), b.dominating_set_size(t)) << t;
    ASSERT_EQ(a.DominatorsOf(t), b.DominatorsOf(t)) << t;
    ASSERT_EQ(a.dominatees(t).ToVector(), b.dominatees(t).ToVector()) << t;
    ASSERT_EQ(a.layer_of(t), b.layer_of(t)) << t;
    ASSERT_EQ(a.direct_dominators(t), b.direct_dominators(t)) << t;
  }
  EXPECT_EQ(a.evaluation_order(), b.evaluation_order());
  EXPECT_EQ(a.known_skyline(), b.known_skyline());
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (int l = 1; l <= a.num_layers(); ++l) {
    EXPECT_EQ(a.layer(l), b.layer(l)) << "layer " << l;
  }
}

TEST(ParallelDeterminismTest, DominanceStructureIdenticalAcrossThreadCounts) {
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    const Dataset ds = MakeData(600, dist, 42);
    const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
    std::unique_ptr<DominanceStructure> serial;
    {
      ScopedThreads one(1);
      serial = std::make_unique<DominanceStructure>(m);
    }
    for (const int threads : {2, 4, 7}) {
      ScopedThreads scoped(threads);
      const DominanceStructure parallel_built(m);
      ExpectIdenticalStructures(*serial, parallel_built);
    }
  }
}

TEST(ParallelDeterminismTest, MachineSkylinesIdenticalAboveThreshold) {
  // 600 > the 256-tuple parallel threshold, so threads>1 takes the
  // partition/merge path; the skyline set is unique, so outputs (both
  // sorted) must match exactly.
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    const Dataset ds = MakeData(600, dist, 7);
    const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
    std::vector<int> bnl_serial, sfs_serial;
    {
      ScopedThreads one(1);
      bnl_serial = ComputeSkylineBNL(m);
      sfs_serial = ComputeSkylineSFS(m);
    }
    EXPECT_EQ(bnl_serial, sfs_serial);
    for (const int threads : {2, 4}) {
      ScopedThreads scoped(threads);
      EXPECT_EQ(ComputeSkylineBNL(m), bnl_serial) << threads;
      EXPECT_EQ(ComputeSkylineSFS(m), sfs_serial) << threads;
    }
  }
}

TEST(ParallelDeterminismTest, QuestionSweepCellsIdentical) {
  // One fig6-style cell: same dataset seed, same methods, measured under
  // threads=1 and threads=4 must give identical question/round/cost
  // numbers (the crowd simulation RNG is owned per cell).
  const auto measure = [](const bench::MethodSpec& method) {
    const Dataset ds = MakeData(300, DataDistribution::kIndependent, 1000);
    const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
    return bench::MeasureQuestionCell(ds, structure, method);
  };
  for (const bench::MethodSpec& method : bench::QuestionMethods()) {
    bench::CellMetrics serial_cell, parallel_cell;
    {
      ScopedThreads one(1);
      serial_cell = measure(method);
    }
    {
      ScopedThreads four(4);
      parallel_cell = measure(method);
    }
    EXPECT_EQ(serial_cell.questions, parallel_cell.questions) << method.name;
    EXPECT_EQ(serial_cell.rounds, parallel_cell.rounds) << method.name;
    EXPECT_EQ(serial_cell.cost, parallel_cell.cost) << method.name;
  }
}

TEST(ParallelDeterminismTest, RoundsSweepCellsIdentical) {
  const auto measure = [](size_t method) {
    const Dataset ds =
        MakeData(300, DataDistribution::kAntiCorrelated, 2000);
    const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
    return bench::MeasureRoundsCell(ds, structure, method);
  };
  for (size_t method = 0; method < bench::RoundsMethods().size(); ++method) {
    bench::CellMetrics serial_cell, parallel_cell;
    {
      ScopedThreads one(1);
      serial_cell = measure(method);
    }
    {
      ScopedThreads four(4);
      parallel_cell = measure(method);
    }
    const std::string& name = bench::RoundsMethods()[method];
    EXPECT_EQ(serial_cell.questions, parallel_cell.questions) << name;
    EXPECT_EQ(serial_cell.rounds, parallel_cell.rounds) << name;
    EXPECT_EQ(serial_cell.cost, parallel_cell.cost) << name;
  }
}

TEST(ParallelDeterminismTest, CrowdSkyEndToEndIdentical) {
  const Dataset ds = MakeData(400, DataDistribution::kIndependent, 99);
  const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
  const auto run = [&] {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    return RunCrowdSky(ds, structure, &session, {});
  };
  int64_t serial_questions = 0, serial_rounds = 0;
  std::vector<int> serial_skyline;
  {
    ScopedThreads one(1);
    const AlgoResult r = run();
    serial_questions = r.questions;
    serial_rounds = r.rounds;
    serial_skyline = r.skyline;
  }
  {
    ScopedThreads four(4);
    const AlgoResult r = run();
    EXPECT_EQ(r.questions, serial_questions);
    EXPECT_EQ(r.rounds, serial_rounds);
    EXPECT_EQ(r.skyline, serial_skyline);
  }
}

}  // namespace
}  // namespace crowdsky
