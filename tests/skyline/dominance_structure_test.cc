#include "skyline/dominance_structure.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/generator.h"
#include "data/toy.h"
#include "skyline/algorithms.h"

namespace crowdsky {
namespace {

DominanceStructure ToyStructure() {
  return DominanceStructure(PreferenceMatrix::FromKnown(MakeToyDataset()));
}

std::set<char> Labels(const std::vector<int>& ids) {
  std::set<char> out;
  for (const int id : ids) out.insert(static_cast<char>('a' + id));
  return out;
}

TEST(DominanceStructureToyTest, Table1DominatingSets) {
  const DominanceStructure s = ToyStructure();
  const std::map<char, std::set<char>> expected = {
      {'a', {'b'}},
      {'c', {'a', 'b', 'e'}},
      {'d', {'b', 'e'}},
      {'f', {'a', 'b', 'd', 'e'}},
      {'g', {'e'}},
      {'h', {'b', 'd', 'e', 'g', 'i'}},
      {'j', {'a', 'b', 'd', 'e', 'f', 'g', 'h', 'i'}},
      {'k', {'i', 'l'}},
  };
  for (const auto& [label, ds] : expected) {
    EXPECT_EQ(Labels(s.DominatorsOf(ToyId(label))), ds) << label;
  }
  // Skyline tuples have empty dominating sets.
  for (const char label : {'b', 'e', 'i', 'l'}) {
    EXPECT_EQ(s.dominating_set_size(ToyId(label)), 0) << label;
  }
}

TEST(DominanceStructureToyTest, Example3TotalQuestionCount) {
  // Sum of |DS(t)| = 26 questions for the DSet-only method.
  const DominanceStructure s = ToyStructure();
  int total = 0;
  for (int t = 0; t < s.size(); ++t) total += s.dominating_set_size(t);
  EXPECT_EQ(total, 26);
}

TEST(DominanceStructureToyTest, KnownSkyline) {
  const DominanceStructure s = ToyStructure();
  EXPECT_EQ(Labels(s.known_skyline()), (std::set<char>{'b', 'e', 'i', 'l'}));
}

TEST(DominanceStructureToyTest, EvaluationOrderSortedBySize) {
  const DominanceStructure s = ToyStructure();
  const std::vector<int>& order = s.evaluation_order();
  ASSERT_EQ(order.size(), 12u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LE(s.dominating_set_size(order[i - 1]),
              s.dominating_set_size(order[i]));
  }
  // Table 2(a) ordering: skyline tuples first, then a,g | d,k | c | f | h | j.
  EXPECT_EQ(order[4], ToyId('a'));
  EXPECT_EQ(order[5], ToyId('g'));
  EXPECT_EQ(order[6], ToyId('d'));
  EXPECT_EQ(order[7], ToyId('k'));
  EXPECT_EQ(order[8], ToyId('c'));
  EXPECT_EQ(order[9], ToyId('f'));
  EXPECT_EQ(order[10], ToyId('h'));
  EXPECT_EQ(order[11], ToyId('j'));
}

TEST(DominanceStructureToyTest, Figure5SkylineLayers) {
  const DominanceStructure s = ToyStructure();
  EXPECT_EQ(s.num_layers(), 4);
  EXPECT_EQ(Labels(s.layer(1)), (std::set<char>{'b', 'e', 'i', 'l'}));
  EXPECT_EQ(Labels(s.layer(2)), (std::set<char>{'a', 'd', 'g', 'k'}));
  EXPECT_EQ(Labels(s.layer(3)), (std::set<char>{'c', 'f', 'h'}));
  EXPECT_EQ(Labels(s.layer(4)), (std::set<char>{'j'}));
}

TEST(DominanceStructureToyTest, Table3DirectDominators) {
  const DominanceStructure s = ToyStructure();
  const std::map<char, std::set<char>> expected = {
      {'a', {'b'}},      {'g', {'e'}},           {'d', {'b', 'e'}},
      {'k', {'i', 'l'}}, {'c', {'a', 'e'}},      {'f', {'a', 'd'}},
      {'h', {'d', 'g', 'i'}},                    {'j', {'f', 'h'}},
  };
  for (const auto& [label, c] : expected) {
    EXPECT_EQ(Labels(s.direct_dominators(ToyId(label))), c) << label;
  }
}

TEST(DominanceStructureToyTest, FrequencyExamples) {
  const DominanceStructure s = ToyStructure();
  // freq(u, v) = common dominatees in AK. b dominates {a,c,d,f,h,j};
  // e dominates {c,d,f,g,h,j}; intersection {c,d,f,h,j} = 5.
  EXPECT_EQ(s.Frequency(ToyId('b'), ToyId('e')), 5u);
  EXPECT_EQ(s.Frequency(ToyId('i'), ToyId('l')), 1u);  // both dominate k
  EXPECT_EQ(s.Frequency(ToyId('b'), ToyId('l')), 0u);
  // Symmetry.
  EXPECT_EQ(s.Frequency(ToyId('e'), ToyId('b')), 5u);
}

TEST(DominanceStructureTest, RandomizedInvariants) {
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    GeneratorOptions opt;
    opt.cardinality = 250;
    opt.num_known = 3;
    opt.num_crowd = 1;
    opt.distribution = dist;
    opt.seed = 11;
    const Dataset ds = GenerateDataset(opt).ValueOrDie();
    const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
    const DominanceStructure s(m);

    for (int t = 0; t < s.size(); ++t) {
      // Dominator/dominatee bitsets are transposes of each other.
      s.dominator_bits(t).ForEachSetBit([&](size_t u) {
        EXPECT_TRUE(s.dominatees(static_cast<int>(u))
                        .Test(static_cast<size_t>(t)));
        EXPECT_TRUE(m.Dominates(static_cast<int>(u), t));
      });
      EXPECT_EQ(s.dominator_bits(t).Count(),
                static_cast<size_t>(s.dominating_set_size(t)));
      EXPECT_FALSE(s.Dominates(t, t));

      // Lemma 3: s in DS(t) implies |DS(s)| < |DS(t)|.
      for (const int u : s.DominatorsOf(t)) {
        EXPECT_LT(s.dominating_set_size(u), s.dominating_set_size(t));
      }

      // Layer of t is one more than the max layer among dominators.
      int max_layer = 0;
      for (const int u : s.DominatorsOf(t)) {
        max_layer = std::max(max_layer, s.layer_of(u));
      }
      EXPECT_EQ(s.layer_of(t), max_layer + 1);

      // Direct dominators: dominate t with no dominator strictly between.
      for (const int u : s.direct_dominators(t)) {
        EXPECT_TRUE(m.Dominates(u, t));
        for (const int w : s.DominatorsOf(t)) {
          EXPECT_FALSE(u != w && m.Dominates(u, w))
              << "direct dominator " << u << " has intermediate " << w;
        }
      }
      EXPECT_EQ(s.direct_dominators(t).empty(),
                s.dominating_set_size(t) == 0);
    }

    // Layers partition R and layer 1 is the known skyline.
    size_t layer_total = 0;
    for (int l = 1; l <= s.num_layers(); ++l) layer_total += s.layer(l).size();
    EXPECT_EQ(layer_total, static_cast<size_t>(s.size()));
    EXPECT_EQ(s.layer(1), s.known_skyline());
    EXPECT_EQ(s.known_skyline(), ComputeSkylineSFS(m));

    // No intra-layer dominance.
    for (int l = 1; l <= s.num_layers(); ++l) {
      const auto& layer = s.layer(l);
      for (const int a : layer) {
        for (const int b : layer) {
          EXPECT_FALSE(m.Dominates(a, b));
        }
      }
    }
  }
}

TEST(DominanceStructureTest, FrequencyMatchesBruteForce) {
  GeneratorOptions opt;
  opt.cardinality = 80;
  opt.num_known = 2;
  opt.num_crowd = 0;
  const Dataset ds = GenerateDataset(opt).ValueOrDie();
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  const DominanceStructure s(m);
  for (int u = 0; u < s.size(); u += 7) {
    for (int v = u + 1; v < s.size(); v += 5) {
      size_t expected = 0;
      for (int x = 0; x < s.size(); ++x) {
        if (m.Dominates(u, x) && m.Dominates(v, x)) ++expected;
      }
      EXPECT_EQ(s.Frequency(u, v), expected);
    }
  }
}

TEST(DominanceStructureTest, DuplicateRowsDoNotDominate) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1),
                          {{1, 1, 0.1}, {1, 1, 0.9}, {2, 2, 0.5}});
  ds.status().CheckOK();
  const DominanceStructure s(PreferenceMatrix::FromKnown(*ds));
  EXPECT_FALSE(s.Dominates(0, 1));
  EXPECT_FALSE(s.Dominates(1, 0));
  EXPECT_TRUE(s.Dominates(0, 2));
  EXPECT_TRUE(s.Dominates(1, 2));
  EXPECT_EQ(s.dominating_set_size(2), 2);
}

TEST(DominanceStructureTest, SingleTuple) {
  auto ds = Dataset::Make(Schema::MakeSynthetic(2, 1), {{1, 2, 3}});
  ds.status().CheckOK();
  const DominanceStructure s(PreferenceMatrix::FromKnown(*ds));
  EXPECT_EQ(s.size(), 1);
  EXPECT_EQ(s.num_layers(), 1);
  EXPECT_EQ(s.known_skyline(), std::vector<int>{0});
}

}  // namespace
}  // namespace crowdsky
