#!/usr/bin/env bash
# Benchmark regression driver for CrowdSky.
#
# Builds the release preset (if needed), runs every paper-figure bench
# binary plus the google-benchmark micro-benchmarks, and collects one
# machine-readable JSON report per binary in the output directory:
#
#   BENCH_<name>.json        one per figure binary (schema_version 1:
#                            bench, git_rev, threads, runs, scale,
#                            wall_seconds, cells[], num_cells)
#   BENCH_micro.json         google-benchmark JSON ("benchmarks" array)
#
# Usage:
#   scripts/run_benchmarks.sh [--smoke] [--out-dir DIR] [--build-dir DIR]
#                             [--threads N] [--only NAME[,NAME...]] [--list]
#
#   --smoke      fast CI mode: CROWDSKY_BENCH_RUNS=1,
#                CROWDSKY_BENCH_SCALE=0.05, and micro benches capped with
#                --benchmark_min_time. Validates the same schema.
#   --out-dir    where BENCH_*.json land (default: bench-results)
#   --build-dir  build tree to use (default: build/release)
#   --threads    sets CROWDSKY_THREADS for every binary
#   --only       comma-separated subset of bench names to run (see --list)
#   --list       print the available bench names and exit
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

smoke=0
out_dir="bench-results"
build_dir="build/release"
threads=""
only=""
list_only=0
while [[ $# -gt 0 ]]; do
  case "$1" in
    --smoke) smoke=1; shift ;;
    --out-dir) out_dir="$2"; shift 2 ;;
    --build-dir) build_dir="$2"; shift 2 ;;
    --threads) threads="$2"; shift 2 ;;
    --only) only="$2"; shift 2 ;;
    --list) list_only=1; shift ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) echo "error: unknown argument: $1" >&2; exit 2 ;;
  esac
done

benches=(toy_walkthrough fig6_questions_ind fig7_questions_ant
         fig8_rounds_cardinality fig9_rounds_dimensionality
         fig10_voting_accuracy fig11_accuracy_comparison
         fig12_real_datasets ablations robustness_sweep durability_sweep
         obs_overhead hotpath_sweep governor_sweep service_sweep
         distributed_sweep)

if [[ ${list_only} -eq 1 ]]; then
  printf '%s\n' "${benches[@]}" micro | LC_ALL=C sort
  exit 0
fi

# Reject unknown --only names up front; a typo would otherwise run nothing
# and fail later with a confusing "no reports produced" error.
if [[ -n "${only}" ]]; then
  IFS=',' read -r -a only_names <<< "${only}"
  for name in "${only_names[@]}"; do
    known=0
    for bench in "${benches[@]}" micro; do
      [[ "${name}" == "${bench}" ]] && known=1
    done
    if [[ ${known} -eq 0 ]]; then
      echo "error: unknown bench name '${name}' in --only;" \
           "run with --list to see the available names" >&2
      exit 2
    fi
  done
fi
if [[ ${smoke} -eq 1 ]]; then
  export CROWDSKY_BENCH_RUNS=1
  export CROWDSKY_BENCH_SCALE="${CROWDSKY_BENCH_SCALE:-0.05}"
fi
if [[ -n "${threads}" ]]; then
  export CROWDSKY_THREADS="${threads}"
fi

if [[ ! -x "${build_dir}/bench/micro_benchmarks" ]]; then
  if [[ "${build_dir}" == "build/release" ]]; then
    echo "== configuring and building (${build_dir}) =="
    cmake --preset release >/dev/null
    cmake --build --preset release -j "$(nproc)" >/dev/null
  elif [[ ! -d "${build_dir}" ]]; then
    echo "error: build directory '${build_dir}' does not exist;" \
         "configure and build it first (e.g. cmake --preset release &&" \
         "cmake --build --preset release)" >&2
    exit 2
  else
    echo "error: '${build_dir}' has no bench binaries; build it first." >&2
    exit 2
  fi
fi

mkdir -p "${out_dir}"
export CROWDSKY_BENCH_OUT_DIR="${out_dir}"
CROWDSKY_GIT_REV="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
export CROWDSKY_GIT_REV

selected() {
  [[ -z "${only}" ]] && return 0
  [[ ",${only}," == *",$1,"* ]]
}

failures=0
for bench in "${benches[@]}"; do
  selected "${bench}" || continue
  bin="${build_dir}/bench/${bench}"
  if [[ ! -x "${bin}" ]]; then
    echo "error: missing bench binary ${bin}" >&2
    failures=$((failures + 1))
    continue
  fi
  echo "== ${bench} =="
  bench_args=()
  # hotpath_sweep owns its cell sizes (up to 10^6 tuples); in smoke mode it
  # takes an explicit flag instead of the env scale so CI runs CI-sized
  # cells rather than a scaled-down million-tuple sweep.
  if [[ "${bench}" == "hotpath_sweep" && ${smoke} -eq 1 ]]; then
    bench_args+=(--smoke)
  fi
  if ! "${bin}" "${bench_args[@]}" > "${out_dir}/${bench}.log" 2>&1; then
    echo "error: ${bench} failed; tail of log:" >&2
    tail -20 "${out_dir}/${bench}.log" >&2
    failures=$((failures + 1))
  fi
done

if selected micro; then
  echo "== micro_benchmarks =="
  micro_args=(--benchmark_format=console
              "--benchmark_out=${out_dir}/BENCH_micro.json"
              --benchmark_out_format=json)
  if [[ ${smoke} -eq 1 ]]; then
    micro_args+=(--benchmark_min_time=0.01
                 --benchmark_filter='BM_(DominanceStructureBuild|BitsetOrWithCount|BitsetAndNotCount)')
  fi
  if ! "${build_dir}/bench/micro_benchmarks" "${micro_args[@]}" \
      > "${out_dir}/micro_benchmarks.log" 2>&1; then
    echo "error: micro_benchmarks failed; tail of log:" >&2
    tail -20 "${out_dir}/micro_benchmarks.log" >&2
    failures=$((failures + 1))
  fi
fi

echo "== validating JSON reports =="
validate_with_python() {
  python3 - "$@" <<'EOF'
import json, sys
failures = 0
for path in sys.argv[1:]:
    try:
        with open(path) as f:
            doc = json.load(f)
    except Exception as e:  # noqa: BLE001 - report any parse failure
        print(f"INVALID {path}: {e}")
        failures += 1
        continue
    if path.endswith("BENCH_micro.json"):
        ok = isinstance(doc.get("benchmarks"), list) and doc["benchmarks"]
        detail = "google-benchmark 'benchmarks' array"
    else:
        ok = (doc.get("schema_version") == 1
              and isinstance(doc.get("bench"), str)
              and isinstance(doc.get("threads"), int)
              and isinstance(doc.get("cells"), list)
              and doc.get("num_cells") == len(doc["cells"])
              and all(isinstance(c.get("metrics"), dict) for c in doc["cells"]))
        detail = "schema_version-1 cell report"
    if ok:
        print(f"ok {path} ({detail})")
    else:
        print(f"INVALID {path}: does not match {detail}")
        failures += 1
sys.exit(1 if failures else 0)
EOF
}

validate_with_grep() {
  # Degraded validation when python3 is unavailable: look for the
  # load-bearing keys so a truncated or empty report still fails.
  local rc=0
  for path in "$@"; do
    if [[ "${path}" == *BENCH_micro.json ]]; then
      grep -q '"benchmarks"' "${path}" || { echo "INVALID ${path}" >&2; rc=1; }
    else
      grep -q '"schema_version": 1' "${path}" &&
        grep -q '"cells"' "${path}" || { echo "INVALID ${path}" >&2; rc=1; }
    fi
  done
  return "${rc}"
}

shopt -s nullglob
reports=("${out_dir}"/BENCH_*.json)
shopt -u nullglob
if [[ ${#reports[@]} -eq 0 ]]; then
  echo "error: no BENCH_*.json reports were produced in ${out_dir}" >&2
  exit 1
fi
if command -v python3 >/dev/null 2>&1; then
  validate_with_python "${reports[@]}" || failures=$((failures + 1))
else
  validate_with_grep "${reports[@]}" || failures=$((failures + 1))
fi

if [[ ${failures} -gt 0 ]]; then
  echo "run_benchmarks: ${failures} failure(s)" >&2
  exit 1
fi
echo "run_benchmarks: all reports written to ${out_dir}"
