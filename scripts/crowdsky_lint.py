#!/usr/bin/env python3
"""CrowdSky project linter: determinism & concurrency law as named rules.

The paper reproduction's guarantees — bit-identical runs at any thread
count, crash-exact resume, a cost ledger audited to the cent — die by a
thousand innocent-looking cuts: an unseeded RNG here, a wall-clock read
there, a hash-map iteration feeding an export. clang-tidy cannot express
these project-specific contracts, and the default CI image has no clang at
all, so this linter encodes them as ~10 plain-text rules that run anywhere
python3 runs.

Driven by compile_commands.json (the same database clang-tidy uses): the
translation units under the scanned roots come from the database — and a
database entry whose file no longer exists on disk is a hard error, not a
silent skip — plus every header found under those roots.

Usage:
  crowdsky_lint.py [--build-dir DIR | --compile-commands PATH]
                   [--roots DIR ...] [--files FILE ...]
                   [--allowlist PATH | --no-allowlist]
                   [--only RULE[,RULE...]] [--list-rules]
                   [--strict] [--format text|json] [--fixture-mode]

Exit codes: 0 clean, 1 violations, 2 usage/config error, 3 stale
compile_commands entries.

Suppressions live in the allowlist file (default
scripts/lint_allowlist.txt), one per line:

  CS-ORD003 src/crowd/session.h  # sorted immediately after collection

An entry may be scoped to a single finding inside the file by appending
':token' to the path; it then only suppresses findings whose message
names 'token' (e.g. the accumulator variable for CS-FLT009), so one
intentional pattern cannot blanket-silence the rest of the file:

  CS-FLT009 src/skyline/dominance.cc:sum  # Score cache: monotone sort key

The justification after '#' is mandatory, and --strict fails on allowlist
entries that no longer suppress anything (stale suppressions rot).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import re
import sys
from dataclasses import dataclass, field


# --------------------------------------------------------------------------
# Source preprocessing
# --------------------------------------------------------------------------

def strip_comments_and_strings(text: str) -> str:
    """Returns `text` with comments, string and char literals blanked out
    (replaced by spaces), preserving line structure so match offsets still
    map to the original line numbers. Rules that inspect *code* run on this
    view; CS-NOL007 inspects the raw text (NOLINT lives in comments)."""
    out = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # R"(...)" raw strings: skip to the matching delimiter.
                if out and out[-1] == "R":
                    m = re.match(r'R"([^(\s]*)\(', text[i - 1:])
                    if m:
                        delim = ")" + m.group(1) + '"'
                        end = text.find(delim, i)
                        end = n if end < 0 else end + len(delim)
                        out.append(" " * (end - i))
                        i = end
                        continue
                state = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append("\n")
            else:
                out.append(" ")
            i += 1
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
        else:  # string or char literal
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == quote:
                state = "code"
                out.append(" ")
                i += 1
            else:
                out.append("\n" if c == "\n" else " ")
                i += 1
    return "".join(out)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# --------------------------------------------------------------------------
# Rule machinery
# --------------------------------------------------------------------------

@dataclass
class Finding:
    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str


@dataclass
class Rule:
    rule_id: str
    title: str
    hint: str
    # Path predicates, on repo-relative forward-slash paths.
    applies: "callable"
    check: "callable"  # (rule, path, raw, code) -> list[Finding]


def in_src(path: str) -> bool:
    return path.startswith("src/")


def _findall_lines(pattern: re.Pattern, code: str):
    for m in pattern.finditer(code):
        yield m, line_of(code, m.start())


# --- CS-RNG001 ------------------------------------------------------------

RNG_PATTERN = re.compile(
    r"\bstd::rand\b|\bsrand\s*\(|\brandom_device\b|\bmt19937(?:_64)?\b"
    r"|\bdefault_random_engine\b|\bminstd_rand0?\b")


def check_rng(rule: Rule, path: str, raw: str, code: str):
    return [Finding(rule.rule_id, path, line,
                    f"stdlib RNG '{m.group(0).strip()}'")
            for m, line in _findall_lines(RNG_PATTERN, code)]


# --- CS-CLK002 ------------------------------------------------------------

CLOCK_PATTERN = re.compile(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|\bclock\s*\(\s*\)"
    r"|(?<![\w:.])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\blocaltime\b|\bgmtime\b|\bstrftime\b")


def check_clock(rule: Rule, path: str, raw: str, code: str):
    return [Finding(rule.rule_id, path, line,
                    f"wall-clock source '{m.group(0).strip()}'")
            for m, line in _findall_lines(CLOCK_PATTERN, code)]


# --- CS-ORD003 ------------------------------------------------------------

UNORDERED_DECL = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
IDENT_AFTER = re.compile(r"\s*(\w+)\s*[;={(,)]")


def unordered_names(code: str):
    """Names declared (members, locals, params) with an unordered type in
    this file. Parses past the template argument list by depth-counting."""
    names = set()
    for m in UNORDERED_DECL.finditer(code):
        i = code.find("<", m.end())
        if i < 0 or code[m.end():i].strip():
            continue
        depth, i = 1, i + 1
        while i < len(code) and depth:
            depth += {"<": 1, ">": -1}.get(code[i], 0)
            i += 1
        # Skip refs/pointers between the closing '>' and the name.
        j = i
        while j < len(code) and code[j] in " &*\n\t":
            j += 1
        ident = re.match(r"(\w+)\s*[;={(]", code[j:])
        if ident and ident.group(1) not in ("const",):
            names.add(ident.group(1))
    return names


def check_unordered_iter(rule: Rule, path: str, raw: str, code: str):
    findings = []
    names = unordered_names(code)
    for name in sorted(names):
        for pat, what in (
            (re.compile(r"for\s*\([^;)]*:\s*(?:this->)?" + re.escape(name)
                        + r"\s*\)"), "range-for over"),
            (re.compile(r"\b" + re.escape(name) + r"\.c?begin\s*\("),
             "iterator over"),
        ):
            for m, line in _findall_lines(pat, code):
                findings.append(Finding(
                    rule.rule_id, path, line,
                    f"{what} unordered container '{name}'"))
    return findings


# --- CS-MTX004 ------------------------------------------------------------

MUTEX_MEMBER = re.compile(
    r"\b(?:crowdsky::)?Mutex\s+(\w+)\s*;|\bstd::mutex\s+(\w+)\s*;")
ANNOTATION_USES = (
    "CROWDSKY_GUARDED_BY", "CROWDSKY_PT_GUARDED_BY", "CROWDSKY_REQUIRES",
    "CROWDSKY_ACQUIRE", "CROWDSKY_RELEASE", "CROWDSKY_EXCLUDES",
    "CROWDSKY_TRY_ACQUIRE", "CROWDSKY_ASSERT_CAPABILITY",
    "CROWDSKY_RETURN_CAPABILITY")


def check_mutex_annotated(rule: Rule, path: str, raw: str, code: str):
    findings = []
    for m in MUTEX_MEMBER.finditer(code):
        name = m.group(1) or m.group(2)
        line = line_of(code, m.start())
        used = re.compile(
            r"\bCROWDSKY_(?:GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|"
            r"RELEASE|EXCLUDES|TRY_ACQUIRE|ASSERT_CAPABILITY|"
            r"RETURN_CAPABILITY)\s*\([^)]*\b" + re.escape(name) + r"\b")
        if not used.search(code):
            findings.append(Finding(
                rule.rule_id, path, line,
                f"mutex '{name}' has no CROWDSKY_GUARDED_BY/REQUIRES "
                "annotation naming it in this file"))
    return findings


# --- CS-MTX005 / CS-LCK006 ------------------------------------------------

RAW_SYNC = re.compile(
    r"\bstd::mutex\b|\bstd::recursive_mutex\b|\bstd::shared_mutex\b"
    r"|\bstd::condition_variable(?:_any)?\b|\bstd::timed_mutex\b")
RAW_LOCK = re.compile(
    r"\bstd::lock_guard\b|\bstd::unique_lock\b|\bstd::scoped_lock\b"
    r"|\bstd::shared_lock\b")


def check_raw_sync(rule: Rule, path: str, raw: str, code: str):
    return [Finding(rule.rule_id, path, line,
                    f"raw '{m.group(0)}' (invisible to -Wthread-safety)")
            for m, line in _findall_lines(RAW_SYNC, code)]


def check_raw_lock(rule: Rule, path: str, raw: str, code: str):
    return [Finding(rule.rule_id, path, line, f"raw '{m.group(0)}'")
            for m, line in _findall_lines(RAW_LOCK, code)]


# --- CS-NOL007 ------------------------------------------------------------

NOLINT_TOKEN = re.compile(
    r"NOLINT(?:NEXTLINE|BEGIN|END)?(?P<qual>\([^)\n]*\))?")


def check_nolint(rule: Rule, path: str, raw: str, code: str):
    findings = []
    lines = raw.splitlines()
    for idx, text in enumerate(lines):
        for m in NOLINT_TOKEN.finditer(text):
            if "expect-lint" in text:
                continue  # fixture expectation directives, not suppressions
            qual = m.group("qual")
            line = idx + 1
            if not qual or not qual.strip("() \t"):
                findings.append(Finding(
                    rule.rule_id, path, line,
                    "naked NOLINT (no (check-name) qualifier)"))
                continue
            trailing = text[m.end():].strip(" :.-")
            prev = lines[idx - 1].strip() if idx else ""
            has_rationale = (len(re.sub(r"\W", "", trailing)) >= 3
                             or prev.startswith("//"))
            if not has_rationale:
                findings.append(Finding(
                    rule.rule_id, path, line,
                    f"NOLINT{qual} carries no rationale"))
            if "NOLINTNEXTLINE" in m.group(0):
                after = lines[idx + 1].strip() if idx + 1 < len(lines) else ""
                if after.startswith("//") or after.startswith("/*"):
                    findings.append(Finding(
                        rule.rule_id, path, line,
                        "NOLINTNEXTLINE is followed by a comment, so the "
                        "suppression never reaches the code: make it the "
                        "last comment line before the statement"))
    return findings


# --- CS-IOS008 ------------------------------------------------------------

IOSTREAM_INCLUDE = re.compile(r"#\s*include\s*<iostream>")


def check_iostream(rule: Rule, path: str, raw: str, code: str):
    return [Finding(rule.rule_id, path, line, "#include <iostream>")
            for m, line in _findall_lines(IOSTREAM_INCLUDE, code)]


# --- CS-FLT009 ------------------------------------------------------------

FLOAT_DECL = re.compile(r"\b(?:float|double)\s+(\w+)\s*[;={]")


def check_float_accumulation(rule: Rule, path: str, raw: str, code: str):
    findings = []
    for name in sorted({m.group(1) for m in FLOAT_DECL.finditer(code)}):
        pat = re.compile(r"\b" + re.escape(name) + r"\s*[+\-*/]=")
        for m, line in _findall_lines(pat, code):
            findings.append(Finding(
                rule.rule_id, path, line,
                f"floating-point accumulation into '{name}'"))
    return findings


# --- CS-THR010 ------------------------------------------------------------

RAW_THREAD = re.compile(
    r"\bstd::thread\b|\bstd::jthread\b|\bpthread_create\s*\(")


def check_raw_thread(rule: Rule, path: str, raw: str, code: str):
    return [Finding(rule.rule_id, path, line, f"raw '{m.group(0).strip()}'")
            for m, line in _findall_lines(RAW_THREAD, code)]


# --------------------------------------------------------------------------
# The rule catalog
# --------------------------------------------------------------------------

def _src_except(*exceptions):
    def applies(path: str) -> bool:
        return in_src(path) and path not in exceptions
    return applies


def _ledger_files(path: str) -> bool:
    if path == "src/crowd/cost_model.h":
        return False  # the one place dollar arithmetic is allowed
    # The dominance kernels/scores are deliberate double arithmetic; they
    # are in scope so every accumulator there needs a *scoped*
    # 'path:variable' allowlist entry instead of a blanket NOLINT.
    return (path.startswith("src/audit/") or path.startswith("src/persist/")
            or path.startswith("src/crowd/session.")
            or path.startswith("src/skyline/dominance"))


def _everywhere(path: str) -> bool:
    return path.startswith(("src/", "bench/", "tests/", "examples/"))


RULES = [
    Rule("CS-RNG001",
         "stdlib RNG outside common/random.h",
         "seed a crowdsky::Rng (common/random.h) from the run "
         "configuration; unseeded stdlib generators break replay",
         _src_except("src/common/random.h"), check_rng),
    Rule("CS-CLK002",
         "wall-clock source outside obs/trace",
         "wall-clock belongs to the trace collector; deterministic code "
         "derives time from rounds and ledgers, never from the host clock",
         _src_except("src/obs/trace.h", "src/obs/trace.cc"), check_clock),
    Rule("CS-ORD003",
         "iteration over an unordered container",
         "hash iteration order is seed-dependent and leaks into results, "
         "journals and exports: sort the keys first or use std::map",
         in_src, check_unordered_iter),
    Rule("CS-MTX004",
         "mutex member without a capability annotation",
         "state what the mutex guards: member CROWDSKY_GUARDED_BY(<mutex>) "
         "or function CROWDSKY_REQUIRES(<mutex>) (common/thread_annotations.h)",
         _src_except("src/common/mutex.h"), check_mutex_annotated),
    Rule("CS-MTX005",
         "raw std::mutex / std::condition_variable",
         "use crowdsky::Mutex / CondVar (common/mutex.h); the std types "
         "carry no capability annotations, so -Wthread-safety cannot see "
         "what they protect",
         _src_except("src/common/mutex.h"), check_raw_sync),
    Rule("CS-LCK006",
         "raw std::lock_guard / std::unique_lock",
         "use crowdsky::MutexLock (common/mutex.h) so the acquisition is "
         "visible to the thread-safety analysis",
         _src_except("src/common/mutex.h"), check_raw_lock),
    Rule("CS-NOL007",
         "unqualified or rationale-free NOLINT",
         "write '// NOLINT(<check-name>): <why this finding is wrong "
         "here>' — a suppression nobody can audit is a latent bug",
         _everywhere, check_nolint),
    Rule("CS-IOS008",
         "#include <iostream> in library code",
         "library code reports through Status/logging.h; <iostream> drags "
         "in global constructors and static destruction order",
         in_src, check_iostream),
    Rule("CS-FLT009",
         "floating-point accumulation in ledger code",
         "ledgers count integers (questions, HITs, records); dollars are "
         "computed once, in AmtCostModel (crowd/cost_model.h)",
         _ledger_files, check_float_accumulation),
    Rule("CS-THR010",
         "raw thread creation outside the pool",
         "all parallelism flows through ThreadPool (work stealing, "
         "deterministic threads=1 fallback); raw threads bypass both",
         _src_except("src/common/thread_pool.h", "src/common/thread_pool.cc"),
         check_raw_thread),
]

RULES_BY_ID = {r.rule_id: r for r in RULES}


# --------------------------------------------------------------------------
# Allowlist
# --------------------------------------------------------------------------

@dataclass
class AllowEntry:
    rule: str
    path: str
    justification: str
    lineno: int
    token: str = ""  # empty = whole-file scope
    used: int = 0

    def matches(self, finding) -> bool:
        if self.rule != finding.rule or self.path != finding.path:
            return False
        # Scoped entries only suppress the finding that names their token
        # (rule messages quote the offending identifier), so one blessed
        # pattern cannot blanket-silence the rest of the file.
        return not self.token or f"'{self.token}'" in finding.message


def parse_allowlist(path: str):
    entries = []
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            m = re.match(r"(\S+)\s+(\S+)\s*#\s*(.+)$", line)
            if not m:
                raise SystemExit(
                    f"error: {path}:{lineno}: allowlist entries are "
                    "'RULE-ID path[:token]  # justification' "
                    "(justification mandatory)")
            rule, target, why = m.groups()
            if rule not in RULES_BY_ID:
                raise SystemExit(
                    f"error: {path}:{lineno}: unknown rule id '{rule}'")
            target, _, token = target.partition(":")
            entries.append(AllowEntry(rule, target, why.strip(), lineno,
                                      token))
    return entries


# --------------------------------------------------------------------------
# File discovery
# --------------------------------------------------------------------------

def files_from_compile_commands(db_path: str, repo_root: str, roots):
    try:
        with open(db_path, encoding="utf-8") as f:
            db = json.load(f)
    except (OSError, ValueError) as e:
        raise SystemExit(f"error: cannot read {db_path}: {e}")
    prefixes = tuple(os.path.join(repo_root, r) + os.sep for r in roots)
    wanted, stale = [], []
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry["directory"], entry["file"]))
        if not path.startswith(prefixes):
            continue
        if not os.path.exists(path):
            stale.append(path)
        elif path not in wanted:
            wanted.append(path)
    if stale:
        print(f"error: {db_path} lists {len(stale)} file(s) that no longer "
              "exist on disk (stale database — re-run cmake):",
              file=sys.stderr)
        for p in stale:
            print(f"  {p}", file=sys.stderr)
        sys.exit(3)
    for root in roots:
        for ext in ("h", "hpp", "inl"):
            pattern = os.path.join(repo_root, root, "**", f"*.{ext}")
            for p in sorted(glob.glob(pattern, recursive=True)):
                if p not in wanted:
                    wanted.append(p)
    return wanted


FIXTURE_PATH_DIRECTIVE = re.compile(r"//\s*lint-path:\s*(\S+)")


def lint_file(abs_path: str, rel_path: str, rules, fixture_mode: bool):
    try:
        with open(abs_path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
    except OSError as e:
        raise SystemExit(f"error: cannot read {abs_path}: {e}")
    if fixture_mode:
        for line in raw.splitlines()[:10]:
            m = FIXTURE_PATH_DIRECTIVE.search(line)
            if m:
                rel_path = m.group(1)
                break
    code = strip_comments_and_strings(raw)
    findings = []
    for rule in rules:
        if rule.applies(rel_path):
            findings.extend(rule.check(rule, rel_path, raw, code))
    return findings


# --------------------------------------------------------------------------
# Main
# --------------------------------------------------------------------------

def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--repo-root", default=None)
    parser.add_argument("--build-dir", default=None)
    parser.add_argument("--compile-commands", default=None)
    parser.add_argument("--roots", nargs="*", default=["src"])
    parser.add_argument("--files", nargs="*", default=None,
                        help="lint exactly these files (skips the database)")
    parser.add_argument("--allowlist", default=None)
    parser.add_argument("--no-allowlist", action="store_true")
    parser.add_argument("--only", default=None,
                        help="comma-separated rule ids to run")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--strict", action="store_true",
                        help="also fail on unused allowlist entries")
    parser.add_argument("--format", choices=("text", "json"), default="text")
    parser.add_argument("--fixture-mode", action="store_true",
                        help="honor '// lint-path:' directives (test "
                             "fixtures only)")
    args = parser.parse_args()

    if args.list_rules:
        for rule in RULES:
            print(f"{rule.rule_id}  {rule.title}")
            print(f"           fix: {rule.hint}")
        return 0

    rules = RULES
    if args.only:
        chosen = [s.strip() for s in args.only.split(",") if s.strip()]
        unknown = [s for s in chosen if s not in RULES_BY_ID]
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)}; "
                  "run with --list-rules to see the catalog",
                  file=sys.stderr)
            return 2
        rules = [RULES_BY_ID[s] for s in chosen]

    repo_root = os.path.abspath(
        args.repo_root
        or os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))

    if args.files is not None:
        targets = [os.path.abspath(f) for f in args.files]
        missing = [t for t in targets if not os.path.exists(t)]
        if missing:
            print("error: no such file(s): " + ", ".join(missing),
                  file=sys.stderr)
            return 2
    else:
        db = args.compile_commands
        if db is None:
            candidates = ([args.build_dir] if args.build_dir else
                          ["build", "build/release", "build/asan-ubsan"])
            for c in candidates:
                probe = os.path.join(repo_root, c, "compile_commands.json")
                if os.path.exists(probe):
                    db = probe
                    break
            if db is None:
                print("error: no compile_commands.json found; configure "
                      "first (e.g. cmake --preset release) or pass "
                      "--compile-commands", file=sys.stderr)
                return 2
        targets = files_from_compile_commands(db, repo_root, args.roots)

    allow = []
    if not args.no_allowlist and args.files is None:
        allow_path = args.allowlist or os.path.join(
            repo_root, "scripts", "lint_allowlist.txt")
        if os.path.exists(allow_path):
            allow = parse_allowlist(allow_path)
    elif args.allowlist:
        allow = parse_allowlist(args.allowlist)

    findings = []
    for abs_path in targets:
        rel = os.path.relpath(abs_path, repo_root).replace(os.sep, "/")
        findings.extend(lint_file(abs_path, rel, rules, args.fixture_mode))

    kept = []
    for f in findings:
        suppressed = False
        for entry in allow:
            if entry.matches(f):
                entry.used += 1
                suppressed = True
                break
        if not suppressed:
            kept.append(f)
    kept.sort(key=lambda f: (f.path, f.line, f.rule))

    unused = [e for e in allow if e.used == 0]

    if args.format == "json":
        print(json.dumps(
            {"findings": [vars(f) for f in kept],
             "suppressed": sum(e.used for e in allow),
             "unused_allowlist_entries": [
                 f"{e.rule} {e.path}" + (f":{e.token}" if e.token else "")
                 for e in unused]},
            indent=2))
    else:
        for f in kept:
            rule = RULES_BY_ID[f.rule]
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
            print(f"    fix: {rule.hint}")
        suppressed_total = sum(e.used for e in allow)
        summary = (f"crowdsky_lint: {len(targets)} file(s), "
                   f"{len(kept)} violation(s), {suppressed_total} "
                   f"allowlisted")
        print(summary if not kept else summary, file=sys.stderr)
        for e in unused:
            scope = f":{e.token}" if e.token else ""
            print(f"warning: unused allowlist entry "
                  f"({e.rule} {e.path}{scope}) — "
                  "remove it", file=sys.stderr)

    if kept:
        return 1
    if args.strict and unused:
        print("error: --strict: stale allowlist entries", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
