#!/usr/bin/env bash
# Static-analysis driver for CrowdSky. Two prongs, both gating:
#
#   1. clang-tidy (config: repo-root .clang-tidy) over every translation
#      unit in compile_commands.json under the requested source
#      directories. When clang-tidy is not installed -- the default CI
#      image only ships gcc -- it degrades to a strict `g++ -fsyntax-only`
#      replay of the same compilation database so the script still gates
#      on real front-end diagnostics instead of silently passing.
#   2. scripts/crowdsky_lint.py --strict: the project-law linter
#      (determinism, lock discipline, NOLINT hygiene; CS-* rule ids).
#
# A compile_commands.json entry whose file no longer exists on disk is a
# hard error (exit 3): a stale database silently analyzes the wrong tree.
#
# Usage:
#   scripts/run_static_analysis.sh [--list-rules] [--only RULE[,RULE...]]
#                                  [build-dir] [dir ...]
#
#   --list-rules  print the crowdsky_lint rule catalog and exit
#   --only        run only the named CS-* lint rules (skips clang-tidy);
#                 unknown rule ids are rejected up front
#   build-dir     directory holding compile_commands.json
#                 (default: build, then build/release)
#   dir ...       source subtrees to analyze (default: src tests bench
#                 examples; the lint prong always scopes to src)
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

lint="scripts/crowdsky_lint.py"
only=""
while [[ $# -gt 0 ]]; do
  case "$1" in
    --list-rules) exec python3 "${lint}" --list-rules ;;
    --only) only="$2"; shift 2 ;;
    -h|--help) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    --*) echo "error: unknown argument: $1" >&2; exit 2 ;;
    *) break ;;
  esac
done

# Reject unknown --only rule ids up front; a typo would otherwise gate on
# nothing. (--list-rules prints one "CS-XXXNNN  title" line per rule.)
if [[ -n "${only}" ]]; then
  valid="$(python3 "${lint}" --list-rules | awk '/^CS-/{print $1}')"
  IFS=',' read -r -a requested <<< "${only}"
  for rule in "${requested[@]}"; do
    if ! grep -qx "${rule}" <<< "${valid}"; then
      echo "error: unknown rule id: ${rule}" >&2
      echo "Available rules:" >&2
      python3 "${lint}" --list-rules | sed 's/^/  /' >&2
      exit 2
    fi
  done
fi

build_dir="${1:-}"
if [[ -n "${build_dir}" ]]; then
  shift
else
  for candidate in build build/release build/asan-ubsan; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: no compile_commands.json found." >&2
  echo "Configure first, e.g.: cmake --preset release" >&2
  exit 2
fi

dirs=("$@")
if [[ ${#dirs[@]} -eq 0 ]]; then
  dirs=(src tests bench examples)
fi

# --only: run just the requested project-law rules and stop. clang-tidy
# has no notion of CS-* ids, so the tidy prong is skipped here; --strict
# is also off because allowlist entries for deselected rules would read
# as stale.
if [[ -n "${only}" ]]; then
  exec python3 "${lint}" --compile-commands "${build_dir}/compile_commands.json" \
       --only "${only}"
fi

# Collect the translation units under the requested subtrees, refusing to
# proceed when the database references files that no longer exist.
sources_raw="$(python3 - "${build_dir}/compile_commands.json" "${dirs[@]}" <<'PY'
import json
import os
import sys

db_path, roots = sys.argv[1], sys.argv[2:]
repo = os.getcwd()
prefixes = tuple(os.path.join(repo, r) + os.sep for r in roots)
seen, stale = [], []
for entry in json.load(open(db_path)):
    path = os.path.normpath(
        os.path.join(entry["directory"], entry["file"]))
    if not path.startswith(prefixes):
        continue
    if not os.path.exists(path):
        stale.append(path)
    elif path not in seen:
        seen.append(path)
if stale:
    print(f"error: {db_path} lists {len(stale)} file(s) missing on disk "
          "(stale database -- re-run cmake):", file=sys.stderr)
    for p in stale:
        print(f"  {p}", file=sys.stderr)
    sys.exit(3)
print("\n".join(seen))
PY
)"
collect_status=$?
if [[ ${collect_status} -ne 0 ]]; then
  exit "${collect_status}"
fi
mapfile -t sources <<< "${sources_raw}"

if [[ ${#sources[@]} -eq 0 || -z "${sources[0]}" ]]; then
  echo "error: compile_commands.json has no entries under: ${dirs[*]}" >&2
  exit 2
fi

echo "Analyzing ${#sources[@]} translation units (database: ${build_dir})"

# Prefer a real clang-tidy, including versioned installs.
clang_tidy=""
for cand in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
  if command -v "${cand}" >/dev/null 2>&1; then
    clang_tidy="${cand}"
    break
  fi
done

status=0
if [[ -n "${clang_tidy}" ]]; then
  echo "Using $("${clang_tidy}" --version | head -n1)"
  jobs="$(nproc 2>/dev/null || echo 4)"
  printf '%s\0' "${sources[@]}" |
    xargs -0 -n 8 -P "${jobs}" \
      "${clang_tidy}" -p "${build_dir}" --quiet --warnings-as-errors='*' ||
    status=$?
else
  echo "clang-tidy not found; falling back to g++ -fsyntax-only replay."
  # Replay each database entry with its recorded flags so include paths,
  # defines and the language standard match the real build exactly.
  while IFS= read -r line; do
    src="${line%%$'\t'*}"
    args="${line#*$'\t'}"
    # shellcheck disable=SC2086  # args is a pre-tokenized flag string.
    if ! g++ -fsyntax-only -Werror ${args} "${src}"; then
      echo "FAILED: ${src}" >&2
      status=1
    fi
  done < <(python3 - "${build_dir}/compile_commands.json" "${sources[@]}" <<'PY'
import json
import os
import shlex
import sys

db_path, wanted = sys.argv[1], set(sys.argv[2:])
for entry in json.load(open(db_path)):
    path = os.path.normpath(
        os.path.join(entry["directory"], entry["file"]))
    if path not in wanted:
        continue
    argv = (shlex.split(entry["command"])
            if "command" in entry else entry["arguments"])
    keep = []
    skip_next = False
    for arg in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-c"):
            skip_next = arg == "-o"
            continue
        if path == os.path.normpath(os.path.join(entry["directory"], arg)):
            continue
        if arg.startswith(("-I", "-isystem")) or arg.startswith("-"):
            # Re-anchor relative include paths at the build directory.
            if arg.startswith("-I") and not os.path.isabs(arg[2:]):
                arg = "-I" + os.path.join(entry["directory"], arg[2:])
            keep.append(arg)
    print(path + "\t" + " ".join(shlex.quote(a) for a in keep))
PY
)
fi

echo "Running project-law linter (crowdsky_lint.py --strict)"
if ! python3 "${lint}" \
     --compile-commands "${build_dir}/compile_commands.json" --strict; then
  lint_status=$?
  status=$(( status == 0 ? lint_status : status ))
fi

if [[ ${status} -eq 0 ]]; then
  echo "Static analysis clean."
else
  echo "Static analysis found problems (exit ${status})." >&2
fi
exit "${status}"
