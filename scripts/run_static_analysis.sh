#!/usr/bin/env bash
# Static-analysis driver for CrowdSky.
#
# Runs clang-tidy (config: repo-root .clang-tidy) over every translation
# unit in compile_commands.json that lives under the requested source
# directories. When clang-tidy is not installed -- the default CI image
# only ships gcc -- it degrades to a strict `g++ -fsyntax-only` replay of
# the same compilation database so the script still gates on real
# front-end diagnostics instead of silently passing.
#
# Usage:
#   scripts/run_static_analysis.sh [build-dir] [dir ...]
#
#   build-dir  directory holding compile_commands.json
#              (default: build, then build/release)
#   dir ...    source subtrees to analyze (default: src tests bench examples)
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
cd "${repo_root}"

build_dir="${1:-}"
if [[ -n "${build_dir}" ]]; then
  shift
else
  for candidate in build build/release build/asan-ubsan; do
    if [[ -f "${candidate}/compile_commands.json" ]]; then
      build_dir="${candidate}"
      break
    fi
  done
fi

if [[ -z "${build_dir}" || ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "error: no compile_commands.json found." >&2
  echo "Configure first, e.g.: cmake --preset release" >&2
  exit 2
fi

dirs=("$@")
if [[ ${#dirs[@]} -eq 0 ]]; then
  dirs=(src tests bench examples)
fi

# Collect the translation units under the requested subtrees.
mapfile -t sources < <(python3 - "${build_dir}/compile_commands.json" "${dirs[@]}" <<'PY'
import json
import os
import sys

db_path, roots = sys.argv[1], sys.argv[2:]
repo = os.getcwd()
prefixes = tuple(os.path.join(repo, r) + os.sep for r in roots)
seen = []
for entry in json.load(open(db_path)):
    path = os.path.normpath(
        os.path.join(entry["directory"], entry["file"]))
    if path.startswith(prefixes) and path not in seen:
        seen.append(path)
print("\n".join(seen))
PY
)

if [[ ${#sources[@]} -eq 0 || -z "${sources[0]}" ]]; then
  echo "error: compile_commands.json has no entries under: ${dirs[*]}" >&2
  exit 2
fi

echo "Analyzing ${#sources[@]} translation units (database: ${build_dir})"

# Prefer a real clang-tidy, including versioned installs.
clang_tidy=""
for cand in clang-tidy clang-tidy-{20,19,18,17,16,15,14}; do
  if command -v "${cand}" >/dev/null 2>&1; then
    clang_tidy="${cand}"
    break
  fi
done

status=0
if [[ -n "${clang_tidy}" ]]; then
  echo "Using $("${clang_tidy}" --version | head -n1)"
  jobs="$(nproc 2>/dev/null || echo 4)"
  printf '%s\0' "${sources[@]}" |
    xargs -0 -n 8 -P "${jobs}" \
      "${clang_tidy}" -p "${build_dir}" --quiet --warnings-as-errors='*' ||
    status=$?
else
  echo "clang-tidy not found; falling back to g++ -fsyntax-only replay."
  # Replay each database entry with its recorded flags so include paths,
  # defines and the language standard match the real build exactly.
  while IFS= read -r line; do
    src="${line%%$'\t'*}"
    args="${line#*$'\t'}"
    # shellcheck disable=SC2086  # args is a pre-tokenized flag string.
    if ! g++ -fsyntax-only -Werror ${args} "${src}"; then
      echo "FAILED: ${src}" >&2
      status=1
    fi
  done < <(python3 - "${build_dir}/compile_commands.json" "${sources[@]}" <<'PY'
import json
import os
import shlex
import sys

db_path, wanted = sys.argv[1], set(sys.argv[2:])
for entry in json.load(open(db_path)):
    path = os.path.normpath(
        os.path.join(entry["directory"], entry["file"]))
    if path not in wanted:
        continue
    argv = (shlex.split(entry["command"])
            if "command" in entry else entry["arguments"])
    keep = []
    skip_next = False
    for arg in argv[1:]:
        if skip_next:
            skip_next = False
            continue
        if arg in ("-o", "-c"):
            skip_next = arg == "-o"
            continue
        if path == os.path.normpath(os.path.join(entry["directory"], arg)):
            continue
        if arg.startswith(("-I", "-isystem")) or arg.startswith("-"):
            # Re-anchor relative include paths at the build directory.
            if arg.startswith("-I") and not os.path.isabs(arg[2:]):
                arg = "-I" + os.path.join(entry["directory"], arg[2:])
            keep.append(arg)
    print(path + "\t" + " ".join(shlex.quote(a) for a in keep))
PY
)
fi

if [[ ${status} -eq 0 ]]; then
  echo "Static analysis clean."
else
  echo "Static analysis found problems (exit ${status})." >&2
fi
exit "${status}"
