// Governor sweep: result quality as a function of the money (and time)
// the governor allows a run to spend.
//
//  * dollar cap — precision/recall/F1 of the partial skyline for each
//    CrowdSky driver as the cap rises from a fraction of the uncapped
//    spend to above it (the paper's cost formula, Section 6.2 pricing),
//  * round cap — the same curve against the latency budget,
//  * deadline — wall-clock deadlines through the opt-in nondeterministic
//    path (cells vary with machine speed; recorded for the schema and the
//    termination-reason accounting, not for regression comparison).
//
// Under a perfect oracle recall stays 1.0 at every cap (the governor only
// leaves undecided tuples *in* the skyline, never evicts true ones), so
// the quality curve is precision climbing toward 1.0 as the cap covers
// more of the question stream. Emits BENCH_governor.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"
#include "data/generator.h"

namespace {

using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode

Dataset SweepDataset(uint64_t seed) {
  GeneratorOptions gen;
  gen.cardinality = Scaled(300);
  gen.num_known = 2;
  gen.num_crowd = 2;
  gen.seed = seed;
  return GenerateDataset(gen).ValueOrDie();
}

EngineOptions BaseOptions(Algorithm algo) {
  EngineOptions opt;
  opt.algorithm = algo;
  opt.oracle = OracleKind::kPerfect;
  return opt;
}

struct CellResult {
  double spent = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  int64_t questions = 0;
  int64_t rounds = 0;
  int64_t incomplete = 0;
  TerminationReason reason = TerminationReason::kCompleted;
};

CellResult RunCell(const Dataset& data, const EngineOptions& opt) {
  const auto r = RunSkylineQuery(data, opt);
  r.status().CheckOK();
  CellResult out;
  out.spent = r->algo.termination.governed
                  ? r->algo.termination.cost_spent_usd
                  : r->cost_usd;
  out.precision = r->accuracy.precision;
  out.recall = r->accuracy.recall;
  out.f1 = r->accuracy.f1;
  out.questions = r->algo.questions;
  out.rounds = r->algo.rounds;
  out.incomplete = r->algo.incomplete_tuples;
  out.reason = r->algo.termination.reason;
  return out;
}

void RecordCell(const std::string& section, const std::string& setting,
                const char* method, int run, const CellResult& cell) {
  BenchReport::Get().AddCell(
      section, setting, method, run,
      {{"spent_usd", cell.spent},
       {"precision", cell.precision},
       {"recall", cell.recall},
       {"f1", cell.f1},
       {"questions", static_cast<double>(cell.questions)},
       {"rounds", static_cast<double>(cell.rounds)},
       {"incomplete", static_cast<double>(cell.incomplete)},
       {"stopped", cell.reason == TerminationReason::kCompleted ? 0.0
                                                                : 1.0}});
}

}  // namespace

int main() {
  JsonReportScope report("governor");
  const int runs = Runs();
  const Dataset data = SweepDataset(42);
  const std::vector<Algorithm> drivers = {Algorithm::kCrowdSkySerial,
                                          Algorithm::kParallelDSet,
                                          Algorithm::kParallelSL};

  // Anchor the cap grid to the real uncapped spend of the recommended
  // driver so the sweep crosses the knee at every scale.
  const CellResult uncapped =
      RunCell(data, BaseOptions(Algorithm::kParallelSL));
  const double full_cost = uncapped.spent;
  std::printf("uncapped ParallelSL spend: $%.2f (%lld questions)\n",
              full_cost, static_cast<long long>(uncapped.questions));

  Section("skyline quality vs dollar cap");
  Table table({"driver", "cap $", "spent $", "precision", "recall",
               "questions", "stopped"});
  table.PrintHeader();
  const std::vector<double> cap_fractions = {0.05, 0.1, 0.25, 0.5,
                                             0.75, 1.0, 1.5};
  for (const Algorithm algo : drivers) {
    for (const double fraction : cap_fractions) {
      const double cap = fraction * full_cost;
      CellResult cell;
      for (int run = 0; run < runs; ++run) {
        EngineOptions opt = BaseOptions(algo);
        opt.governor.max_cost_usd = cap;
        cell = RunCell(data, opt);
        RecordCell("dollar_cap",
                   "cap_usd=" + std::to_string(cap), AlgorithmName(algo),
                   run, cell);
      }
      table.PrintCell(AlgorithmName(algo));
      table.PrintCell(cap, 2);
      table.PrintCell(cell.spent, 2);
      table.PrintCell(cell.precision);
      table.PrintCell(cell.recall);
      table.PrintCell(cell.questions);
      table.PrintCell(static_cast<int64_t>(
          cell.reason == TerminationReason::kCompleted ? 0 : 1));
      table.EndRow();
    }
  }

  Section("skyline quality vs round cap");
  Table rtable({"driver", "rounds cap", "rounds", "precision", "recall",
                "questions", "stopped"});
  rtable.PrintHeader();
  const std::vector<int64_t> round_caps = {1, 2, 4, 8, 16, 64};
  for (const Algorithm algo : drivers) {
    for (const int64_t cap : round_caps) {
      CellResult cell;
      for (int run = 0; run < runs; ++run) {
        EngineOptions opt = BaseOptions(algo);
        opt.governor.max_rounds = cap;
        cell = RunCell(data, opt);
        RecordCell("round_cap", "max_rounds=" + std::to_string(cap),
                   AlgorithmName(algo), run, cell);
      }
      rtable.PrintCell(AlgorithmName(algo));
      rtable.PrintCell(cap);
      rtable.PrintCell(cell.rounds);
      rtable.PrintCell(cell.precision);
      rtable.PrintCell(cell.recall);
      rtable.PrintCell(cell.questions);
      rtable.PrintCell(static_cast<int64_t>(
          cell.reason == TerminationReason::kCompleted ? 0 : 1));
      rtable.EndRow();
    }
  }

  // Wall-clock deadlines (opt-in nondeterminism): these cells depend on
  // machine speed and are excluded from regression comparison by their
  // section name; the stable claim is only that a deadline run terminates
  // and keeps recall at 1.0.
  Section("skyline quality vs wall-clock deadline (nondeterministic)");
  Table dtable({"deadline s", "precision", "recall", "questions",
                "stopped"});
  dtable.PrintHeader();
  for (const double deadline : {0.0005, 0.005, 0.05}) {
    CellResult cell;
    for (int run = 0; run < runs; ++run) {
      EngineOptions opt = BaseOptions(Algorithm::kParallelSL);
      opt.governor.deadline_seconds = deadline;
      opt.governor.allow_wall_clock = true;
      cell = RunCell(data, opt);
      RecordCell("deadline", "deadline_s=" + std::to_string(deadline),
                 AlgorithmName(Algorithm::kParallelSL), run, cell);
    }
    dtable.PrintCell(deadline, 4);
    dtable.PrintCell(cell.precision);
    dtable.PrintCell(cell.recall);
    dtable.PrintCell(cell.questions);
    dtable.PrintCell(static_cast<int64_t>(
        cell.reason == TerminationReason::kCompleted ? 0 : 1));
    dtable.EndRow();
  }

  return 0;
}
