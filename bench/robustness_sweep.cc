// Robustness sweep: best-effort skyline quality and cost under a faulty
// marketplace, over fault-rate x retry-policy cells. Shows what the
// resilient asking layer buys — with retries disabled a moderate fault
// rate leaves many pairs unresolved (undetermined tuples, recall-heavy
// skylines); a small retry cap recovers almost all of them for a bounded
// extra question spend. Emits BENCH_robustness.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace {

crowdsky::FaultPlan PlanFor(double rate) {
  crowdsky::FaultPlan plan;
  plan.transient_error_rate = rate * 0.5;
  plan.hit_expiration_rate = rate * 0.25;
  plan.hit_expiration_rounds = 2;
  plan.worker_no_show_rate = rate;
  plan.straggler_rate = rate * 0.5;
  plan.straggler_delay_rounds = 1;
  return plan;
}

}  // namespace

int main() {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  JsonReportScope report("robustness");
  const int runs = Runs();
  const int card = Scaled(300);
  std::printf(
      "Robustness sweep: ParallelSL on a faulty marketplace "
      "(n=%d, omega=5, %d runs per cell)\n",
      card, runs);
  Table table({"fault rate", "policy", "questions", "retries", "failed",
               "degraded", "unresolved", "undet.", "precision", "recall",
               "cost"});
  table.PrintHeader();

  struct Policy {
    const char* name;
    int max_retries;
  };
  const Policy policies[] = {{"no-retry", 0}, {"retry2", 2}, {"retry4", 4}};

  for (const double rate : {0.0, 0.05, 0.15, 0.3}) {
    for (const Policy& policy : policies) {
      double questions = 0, retries = 0, failed = 0, degraded = 0;
      double unresolved = 0, undetermined = 0, rounds = 0, backoff = 0;
      double precision = 0, recall = 0, cost = 0;
      for (int run = 0; run < runs; ++run) {
        GeneratorOptions gen;
        gen.cardinality = card;
        gen.num_known = 4;
        gen.num_crowd = 1;
        gen.seed = 9000 + static_cast<uint64_t>(run) * 131;
        const Dataset ds = GenerateDataset(gen).ValueOrDie();

        EngineOptions opts;
        opts.algorithm = Algorithm::kParallelSL;
        opts.oracle = OracleKind::kMarketplace;
        opts.seed = gen.seed * 13 + 5;
        opts.marketplace.faults = PlanFor(rate);
        opts.retry.max_retries = policy.max_retries;
        const EngineResult r = RunSkylineQuery(ds, opts).ValueOrDie();

        questions += static_cast<double>(r.algo.questions);
        retries += static_cast<double>(r.algo.retries);
        failed += static_cast<double>(r.algo.failed_attempts);
        degraded += static_cast<double>(r.algo.degraded_quorum);
        unresolved +=
            static_cast<double>(r.algo.completeness.unresolved_questions);
        undetermined += static_cast<double>(r.algo.incomplete_tuples);
        rounds += static_cast<double>(r.algo.rounds);
        backoff += static_cast<double>(r.algo.backoff_rounds);
        precision += r.accuracy.precision;
        recall += r.accuracy.recall;
        cost += r.cost_usd;
      }
      const double d = runs;
      char setting[32];
      std::snprintf(setting, sizeof(setting), "rate=%.2f", rate);
      table.PrintCell(setting);
      table.PrintCell(policy.name);
      table.PrintCell(static_cast<int64_t>(questions / d + 0.5));
      table.PrintCell(static_cast<int64_t>(retries / d + 0.5));
      table.PrintCell(static_cast<int64_t>(failed / d + 0.5));
      table.PrintCell(static_cast<int64_t>(degraded / d + 0.5));
      table.PrintCell(static_cast<int64_t>(unresolved / d + 0.5));
      table.PrintCell(static_cast<int64_t>(undetermined / d + 0.5));
      table.PrintCell(precision / d);
      table.PrintCell(recall / d);
      table.PrintCell(cost / d, 2);
      table.EndRow();
      BenchReport::Get().AddCell("robustness", setting, policy.name, 0,
                                 {{"questions", questions / d},
                                  {"retries", retries / d},
                                  {"failed_attempts", failed / d},
                                  {"degraded_quorum", degraded / d},
                                  {"unresolved_questions", unresolved / d},
                                  {"undetermined_tuples", undetermined / d},
                                  {"rounds", rounds / d},
                                  {"backoff_rounds", backoff / d},
                                  {"precision", precision / d},
                                  {"recall", recall / d},
                                  {"cost", cost / d}});
    }
  }
  std::printf(
      "\n(Retries are paid questions; the backoff and expired-HIT delays "
      "are latency-only. Undetermined tuples stay\n in the skyline by the "
      "in-by-default rule, which is why recall degrades more slowly than "
      "precision.)\n");
  return 0;
}
