// Reproduces the paper's worked example (Tables 1-3, Examples 3-8) on the
// Figure 1 toy dataset and prints every intermediate artifact.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace {

using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode

std::string LabelSet(const Dataset& ds, const std::vector<int>& ids) {
  std::string out = "{";
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ", ";
    out += ds.tuple(ids[i]).label;
  }
  return out + "}";
}

void PrintDominatingSets(const Dataset& toy,
                         const DominanceStructure& structure) {
  bench::Section("Table 1(a): dominating sets");
  int total = 0;
  for (const int t : structure.evaluation_order()) {
    if (structure.dominating_set_size(t) == 0) continue;
    std::printf("  DS(%s) = %s\n", toy.tuple(t).label.c_str(),
                LabelSet(toy, structure.DominatorsOf(t)).c_str());
    total += structure.dominating_set_size(t);
  }
  std::printf("  total questions for DSet-only (Example 3): %d\n", total);
}

void PrintLayers(const Dataset& toy, const DominanceStructure& structure) {
  bench::Section("Figure 5: skyline layers");
  for (int l = 1; l <= structure.num_layers(); ++l) {
    std::printf("  SL%d = %s\n", l,
                LabelSet(toy, structure.layer(l)).c_str());
  }
  bench::Section("Direct dominators c(t) (Table 3, column 2)");
  for (const int t : structure.evaluation_order()) {
    if (structure.dominating_set_size(t) == 0) continue;
    std::printf("  c(%s) = %s\n", toy.tuple(t).label.c_str(),
                LabelSet(toy, structure.direct_dominators(t)).c_str());
  }
}

void RunAlgorithms(const Dataset& toy) {
  struct Row {
    const char* name;
    PruningConfig pruning;
  };
  const Row rows[] = {
      {"DSet exhaustive (Ex. 3)", PruningConfig::DSetExhaustive()},
      {"DSet", PruningConfig::DSetOnly()},
      {"P1 (Ex. 4)", PruningConfig::P1()},
      {"P1+P2", PruningConfig::P1P2()},
      {"P1+P2+P3 (Ex. 6)", PruningConfig::All()},
  };
  bench::Section("Serial CrowdSky at each pruning level");
  bench::Table table({"method", "questions", "rounds", "skyline"});
  table.PrintHeader();
  for (const Row& row : rows) {
    PerfectOracle oracle(toy);
    CrowdSession session(&oracle);
    CrowdSkyOptions options;
    options.pruning = row.pruning;
    const AlgoResult r = RunCrowdSky(toy, &session, options);
    table.PrintCell(std::string(row.name));
    table.PrintCell(r.questions);
    table.PrintCell(r.rounds);
    table.PrintCell(LabelSet(toy, r.skyline));
    table.EndRow();
    bench::BenchReport::Get().AddCell(
        "serial pruning levels", "toy", row.name, 0,
        {{"questions", static_cast<double>(r.questions)},
         {"rounds", static_cast<double>(r.rounds)}});
  }

  bench::Section("Parallelization (Examples 7-8 / Table 3)");
  bench::Table ptable({"method", "questions", "rounds"});
  ptable.PrintHeader();
  {
    PerfectOracle oracle(toy);
    CrowdSession session(&oracle);
    const AlgoResult r = RunParallelDSet(toy, &session, {});
    ptable.PrintCell(std::string("ParallelDSet"));
    ptable.PrintCell(r.questions);
    ptable.PrintCell(r.rounds);
    ptable.EndRow();
    bench::BenchReport::Get().AddCell(
        "parallelization", "toy", "ParallelDSet", 0,
        {{"questions", static_cast<double>(r.questions)},
         {"rounds", static_cast<double>(r.rounds)}});
  }
  {
    PerfectOracle oracle(toy);
    CrowdSession session(&oracle);
    const AlgoResult r = RunParallelSL(toy, &session, {});
    ptable.PrintCell(std::string("ParallelSL"));
    ptable.PrintCell(r.questions);
    ptable.PrintCell(r.rounds);
    ptable.EndRow();
    bench::BenchReport::Get().AddCell(
        "parallelization", "toy", "ParallelSL", 0,
        {{"questions", static_cast<double>(r.questions)},
         {"rounds", static_cast<double>(r.rounds)}});
    std::printf("  ParallelSL questions per round:");
    for (const int64_t q : r.questions_per_round) {
      std::printf(" %lld", static_cast<long long>(q));
    }
    std::printf("   (Table 3: 4 3 2 1 1 1)\n");
  }
}

}  // namespace

int main() {
  bench::JsonReportScope report("toy_walkthrough");
  const Dataset toy = MakeToyDataset();
  std::printf("CrowdSky toy walkthrough (Figure 1 dataset, 12 tuples)\n");
  const DominanceStructure structure(PreferenceMatrix::FromKnown(toy));
  PrintDominatingSets(toy, structure);
  PrintLayers(toy, structure);
  RunAlgorithms(toy);

  bench::Section("Section 3.4 anti-correlated example (Figure 3)");
  const Dataset ant = MakeAntiCorrelatedToyDataset();
  {
    PerfectOracle oracle(ant);
    CrowdSession session(&oracle);
    CrowdSkyOptions no_probe;
    no_probe.pruning = PruningConfig::P1P2();
    const AlgoResult r = RunCrowdSky(ant, &session, no_probe);
    std::printf("  without probing (P1+P2): %lld questions\n",
                static_cast<long long>(r.questions));
  }
  {
    PerfectOracle oracle(ant);
    CrowdSession session(&oracle);
    const AlgoResult r = RunCrowdSky(ant, &session, {});
    std::printf("  with probing (P1+P2+P3): %lld questions (paper: 9)\n",
                static_cast<long long>(r.questions));
  }
  return 0;
}
