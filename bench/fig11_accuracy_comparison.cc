// Figure 11: precision/recall of Baseline (tournament sort), Unary (the
// [12] simulation) and CrowdSky (with dynamic voting) over varying
// cardinality on independent data.
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/crowdsky.h"

int main() {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  JsonReportScope report("fig11_accuracy_comparison");
  const int runs = Runs() * 2;
  std::printf(
      "Figure 11: accuracy of Baseline vs Unary [12] vs CrowdSky (IND, "
      "omega=5, p=0.8; %d runs)\n",
      runs);
  Table table({"cardinality", "Baseline P", "Baseline R", "Unary P",
               "Unary R", "CrowdSky P", "CrowdSky R"});
  table.PrintHeader();
  for (const int n : {200, 400, 600, 800, 1000}) {
    const int card = Scaled(n);
    double bp = 0, br = 0, up = 0, ur = 0, cp = 0, cr = 0;
    for (int run = 0; run < runs; ++run) {
      GeneratorOptions gen;
      gen.cardinality = card;
      gen.num_known = 4;
      gen.num_crowd = 1;
      gen.seed = 4000 + static_cast<uint64_t>(run) * 59;
      const Dataset ds = GenerateDataset(gen).ValueOrDie();
      const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
      WorkerModel worker;
      worker.p_correct = 0.8;
      {
        SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5),
                             gen.seed + 1);
        CrowdSession session(&crowd);
        const AccuracyMetrics m = EvaluateNewSkylineAccuracy(
            ds, RunBaselineSort(ds, &session).skyline);
        bp += m.precision;
        br += m.recall;
      }
      {
        SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5),
                             gen.seed + 1);
        CrowdSession session(&crowd);
        const AccuracyMetrics m =
            EvaluateNewSkylineAccuracy(ds, RunUnary(ds, &session).skyline);
        up += m.precision;
        ur += m.recall;
      }
      {
        Rng rng(gen.seed);
        SimulatedCrowd crowd(ds, worker,
                             VotingPolicy::MakeDynamic(5, structure, &rng),
                             gen.seed + 1);
        CrowdSession session(&crowd);
        // P1+P2 for accuracy, as in Figure 10 (see the comment there).
        CrowdSkyOptions algo_options;
        algo_options.pruning = PruningConfig::P1P2();
        const AccuracyMetrics m = EvaluateNewSkylineAccuracy(
            ds, RunCrowdSky(ds, structure, &session, algo_options).skyline);
        cp += m.precision;
        cr += m.recall;
      }
    }
    table.PrintCell("n=" + std::to_string(card));
    table.PrintCell(bp / runs);
    table.PrintCell(br / runs);
    table.PrintCell(up / runs);
    table.PrintCell(ur / runs);
    table.PrintCell(cp / runs);
    table.PrintCell(cr / runs);
    table.EndRow();
    const std::string label = "n=" + std::to_string(card);
    BenchReport::Get().AddCell(
        "accuracy comparison", label, "Baseline", 0,
        {{"precision", bp / runs}, {"recall", br / runs}});
    BenchReport::Get().AddCell(
        "accuracy comparison", label, "Unary", 0,
        {{"precision", up / runs}, {"recall", ur / runs}});
    BenchReport::Get().AddCell(
        "accuracy comparison", label, "CrowdSky", 0,
        {{"precision", cp / runs}, {"recall", cr / runs}});
  }

  // Sensitivity of the Unary baseline to the absolute-rating noise sigma
  // (the paper does not state theirs; sigma ~ 0.15 reproduces its
  // "Unary above Baseline" ordering, sigma ~ 0.3 models raters without
  // global knowledge of the value distribution).
  Section("Unary [12] accuracy vs rating noise (n=600)");
  Table stable({"unary sigma", "precision", "recall", "F1"});
  stable.PrintHeader();
  for (const double sigma : {0.05, 0.1, 0.15, 0.2, 0.3, 0.5}) {
    double p = 0, r = 0, f = 0;
    for (int run = 0; run < runs; ++run) {
      GeneratorOptions gen;
      gen.cardinality = Scaled(600);
      gen.num_known = 4;
      gen.num_crowd = 1;
      gen.seed = 6000 + static_cast<uint64_t>(run) * 67;
      const Dataset ds = GenerateDataset(gen).ValueOrDie();
      WorkerModel worker;
      worker.p_correct = 0.8;
      worker.unary_sigma = sigma;
      SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5),
                           gen.seed + 1);
      CrowdSession session(&crowd);
      const AccuracyMetrics m =
          EvaluateNewSkylineAccuracy(ds, RunUnary(ds, &session).skyline);
      p += m.precision;
      r += m.recall;
      f += m.f1;
    }
    stable.PrintCell(sigma, 2);
    stable.PrintCell(p / runs);
    stable.PrintCell(r / runs);
    stable.PrintCell(f / runs);
    stable.EndRow();
    BenchReport::Get().AddCell(
        "unary sigma sensitivity", "sigma=" + std::to_string(sigma), "Unary",
        0,
        {{"precision", p / runs}, {"recall", r / runs}, {"f1", f / runs}});
  }
  return 0;
}
