// Multi-query service sweep: what cross-query HIT packing saves, and what
// the service sustains, as a function of
//
//  * concurrent-query count — more simultaneous queries mean fuller
//    shared HITs; with serial CrowdSky queries (one question per round)
//    every query beyond the first rides almost free,
//  * questions per HIT — the paper fixes 5 (Section 6.2); sweeping it
//    shows packing is exactly the ⌈·⌉ rounding recovered (at 1 question
//    per HIT, packing can save nothing).
//
// Each cell reports the packed/isolated HIT and dollar ledgers plus
// queries/sec (wall-clock, machine-dependent — recorded for trend, not
// for exact regression comparison). Emits BENCH_service.json.
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/generator.h"
#include "service/service.h"

namespace {

using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode

std::vector<Dataset> SweepDatasets(int count) {
  std::vector<Dataset> datasets;
  datasets.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    GeneratorOptions gen;
    gen.cardinality = Scaled(80) + 7 * i;
    gen.num_known = 2;
    gen.num_crowd = 1;
    gen.seed = uint64_t{0x5e671ce} + static_cast<uint64_t>(i);
    datasets.push_back(GenerateDataset(gen).ValueOrDie());
  }
  return datasets;
}

std::vector<service::ServiceQuery> SweepQueries(
    const std::vector<Dataset>& datasets, int questions_per_hit) {
  std::vector<service::ServiceQuery> queries;
  for (size_t i = 0; i < datasets.size(); ++i) {
    service::ServiceQuery query;
    query.dataset = &datasets[i];
    // Serial CrowdSky is the packing-friendly extreme: one question per
    // round, so in isolation every round pays a whole HIT.
    query.options.algorithm = Algorithm::kCrowdSkySerial;
    query.options.oracle = OracleKind::kPerfect;
    query.options.seed = uint64_t{0xbeef} + i;
    query.options.cost_model.questions_per_hit = questions_per_hit;
    char label[32];
    std::snprintf(label, sizeof(label), "q%zu", i);
    query.label = label;
    queries.push_back(query);
  }
  return queries;
}

struct CellResult {
  service::PackingLedger packing;
  int completed = 0;
  double wall_seconds = 0.0;
};

CellResult RunCell(const std::vector<service::ServiceQuery>& queries) {
  service::ServiceOptions options;
  options.max_concurrent = static_cast<int>(queries.size());
  const auto start = std::chrono::steady_clock::now();
  const auto report = service::RunService(queries, options);
  report.status().CheckOK();
  CellResult out;
  out.packing = report->packing;
  out.completed = report->completed;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return out;
}

void RecordCell(const std::string& section, const std::string& setting,
                int run, size_t queries, const CellResult& cell) {
  const double qps = cell.wall_seconds > 0.0
                         ? static_cast<double>(cell.completed) /
                               cell.wall_seconds
                         : 0.0;
  BenchReport::Get().AddCell(
      section, setting, "service", run,
      {{"queries", static_cast<double>(queries)},
       {"completed", static_cast<double>(cell.completed)},
       {"epochs", static_cast<double>(cell.packing.epochs)},
       {"slots", static_cast<double>(cell.packing.slots)},
       {"packed_hits", static_cast<double>(cell.packing.packed_hits)},
       {"isolated_hits", static_cast<double>(cell.packing.isolated_hits)},
       {"cost_packed_usd", cell.packing.cost_packed_usd},
       {"cost_isolated_usd", cell.packing.cost_isolated_usd},
       {"saved_usd", cell.packing.cost_saved_usd},
       {"queries_per_sec", qps},
       {"wall_seconds", cell.wall_seconds}});
}

}  // namespace

int main() {
  JsonReportScope report("service");
  const int runs = Runs();

  Section("packing saving vs concurrent-query count (5 questions/HIT)");
  Table table({"queries", "slots", "packed", "isolated", "saved $",
               "queries/s"});
  table.PrintHeader();
  for (const int concurrency : {1, 2, 4, 8}) {
    const std::vector<Dataset> datasets = SweepDatasets(concurrency);
    const auto queries = SweepQueries(datasets, 5);
    CellResult cell;
    for (int run = 0; run < runs; ++run) {
      cell = RunCell(queries);
      RecordCell("concurrency", "queries=" + std::to_string(concurrency),
                 run, queries.size(), cell);
    }
    table.PrintCell(static_cast<int64_t>(concurrency));
    table.PrintCell(cell.packing.slots);
    table.PrintCell(cell.packing.packed_hits);
    table.PrintCell(cell.packing.isolated_hits);
    table.PrintCell(cell.packing.cost_saved_usd, 2);
    table.PrintCell(cell.wall_seconds > 0.0
                        ? static_cast<double>(cell.completed) /
                              cell.wall_seconds
                        : 0.0,
                    1);
    table.EndRow();
  }

  Section("packing saving vs questions per HIT (4 concurrent queries)");
  Table qtable({"q/HIT", "slots", "packed", "isolated", "saved $"});
  qtable.PrintHeader();
  const std::vector<Dataset> datasets = SweepDatasets(4);
  for (const int qph : {1, 3, 5, 10}) {
    const auto queries = SweepQueries(datasets, qph);
    CellResult cell;
    for (int run = 0; run < runs; ++run) {
      cell = RunCell(queries);
      RecordCell("questions_per_hit", "qph=" + std::to_string(qph), run,
                 queries.size(), cell);
    }
    qtable.PrintCell(static_cast<int64_t>(qph));
    qtable.PrintCell(cell.packing.slots);
    qtable.PrintCell(cell.packing.packed_hits);
    qtable.PrintCell(cell.packing.isolated_hits);
    qtable.PrintCell(cell.packing.cost_saved_usd, 2);
    qtable.EndRow();
  }

  return 0;
}
