// Shared helpers for the experiment harnesses in bench/: paper-style table
// printing and environment-driven scaling so the full suite stays fast on
// small machines.
//
// Environment variables:
//   CROWDSKY_BENCH_RUNS   number of repetitions averaged per cell
//                         (default 3; the paper uses 10)
//   CROWDSKY_BENCH_SCALE  multiplier applied to cardinalities (default 1.0;
//                         use 1.0 to reproduce the paper's 2K-10K sweep)
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace crowdsky::bench {

inline int Runs() {
  if (const char* env = std::getenv("CROWDSKY_BENCH_RUNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

inline double Scale() {
  if (const char* env = std::getenv("CROWDSKY_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

inline int Scaled(int cardinality) {
  const double s = Scale();
  const int v = static_cast<int>(cardinality * s);
  return v < 2 ? 2 : v;
}

/// Fixed-width table printer for paper-style outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const std::string& h : headers_) {
      std::printf("%*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void PrintCell(const std::string& value) const {
    std::printf("%*s", width_, value.c_str());
  }
  void PrintCell(int64_t value) const {
    std::printf("%*lld", width_, static_cast<long long>(value));
  }
  void PrintCell(double value, int precision = 3) const {
    std::printf("%*.*f", width_, precision, value);
  }
  void EndRow() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace crowdsky::bench
