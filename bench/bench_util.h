// Shared helpers for the experiment harnesses in bench/: paper-style table
// printing, environment-driven scaling, and the machine-readable benchmark
// regression harness (every bench binary emits a BENCH_<name>.json with
// its wall time, thread count, and per-cell metrics — see
// scripts/run_benchmarks.sh, which collects the files into the repo-level
// perf trajectory).
//
// Environment variables:
//   CROWDSKY_BENCH_RUNS     number of repetitions averaged per cell
//                           (default 3; the paper uses 10)
//   CROWDSKY_BENCH_SCALE    multiplier applied to cardinalities (default
//                           1.0; use 1.0 to reproduce the paper's 2K-10K
//                           sweep)
//   CROWDSKY_THREADS        thread count of the shared pool (see
//                           common/thread_pool.h); sweep cells and the
//                           machine-side substrates parallelize over it
//   CROWDSKY_BENCH_OUT_DIR  directory for BENCH_<name>.json (default ".")
//   CROWDSKY_GIT_REV        git revision recorded in the JSON (set by
//                           scripts/run_benchmarks.sh; "unknown" if unset)
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"

namespace crowdsky::bench {

inline int Runs() {
  if (const char* env = std::getenv("CROWDSKY_BENCH_RUNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v;
  }
  return 3;
}

inline double Scale() {
  if (const char* env = std::getenv("CROWDSKY_BENCH_SCALE")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 1.0;
}

inline int Scaled(int cardinality) {
  const double s = Scale();
  const int v = static_cast<int>(cardinality * s);
  return v < 2 ? 2 : v;
}

/// Thread count of the shared pool (CROWDSKY_THREADS override included).
inline int Threads() { return ThreadPool::Global().num_threads(); }

/// Fixed-width table printer for paper-style outputs.
class Table {
 public:
  explicit Table(std::vector<std::string> headers, int width = 14)
      : headers_(std::move(headers)), width_(width) {}

  void PrintHeader() const {
    for (const std::string& h : headers_) {
      std::printf("%*s", width_, h.c_str());
    }
    std::printf("\n");
    for (size_t i = 0; i < headers_.size(); ++i) {
      for (int j = 0; j < width_; ++j) std::printf("-");
    }
    std::printf("\n");
  }

  void PrintCell(const std::string& value) const {
    std::printf("%*s", width_, value.c_str());
  }
  void PrintCell(int64_t value) const {
    std::printf("%*lld", width_, static_cast<long long>(value));
  }
  void PrintCell(double value, int precision = 3) const {
    std::printf("%*.*f", width_, precision, value);
  }
  void EndRow() const { std::printf("\n"); }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline void Section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

// ---------------------------------------------------------------------------
// Machine-readable regression report (BENCH_<name>.json, schema_version 1):
//
//   {
//     "bench": "fig6_questions_ind", "schema_version": 1,
//     "git_rev": "...", "threads": 8, "runs": 3, "scale": 1.0,
//     "wall_seconds": 12.345,
//     "cells": [
//       {"section": "...", "setting": "n=2000", "method": "DSet",
//        "run": 0, "metrics": {"questions": 123, "rounds": 4,
//                              "cost": 1.9}},
//       ...
//     ]
//   }
//
// One cell per (section x setting x method x run); aggregation across runs
// is left to the consumer so regressions in variance are visible too.
// ---------------------------------------------------------------------------

/// Collects cells for the current bench binary and writes the JSON file.
class BenchReport {
 public:
  using Metrics = std::vector<std::pair<std::string, double>>;

  static BenchReport& Get() {
    static BenchReport report;
    return report;
  }

  /// Names the report and starts the wall clock. Called once by
  /// JsonReportScope at the top of main().
  void Begin(const std::string& name) {
    std::lock_guard<std::mutex> lk(mutex_);
    name_ = name;
    cells_.clear();
    start_ = std::chrono::steady_clock::now();
  }

  /// Records one cell. Thread-safe, but for a deterministic file prefer
  /// calling from the serial print loop in the original cell order.
  void AddCell(const std::string& section, const std::string& setting,
               const std::string& method, int run, const Metrics& metrics) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (name_.empty()) return;  // bench did not opt into reporting
    cells_.push_back({section, setting, method, run, metrics});
  }

  /// Writes BENCH_<name>.json into CROWDSKY_BENCH_OUT_DIR (default ".").
  /// No-op when Begin() was never called.
  void Write() {
    std::lock_guard<std::mutex> lk(mutex_);
    if (name_.empty()) return;
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::string dir = ".";
    if (const char* env = std::getenv("CROWDSKY_BENCH_OUT_DIR")) dir = env;
    const char* rev = std::getenv("CROWDSKY_GIT_REV");
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchReport: cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": %s,\n", Quoted(name_).c_str());
    std::fprintf(f, "  \"schema_version\": 1,\n");
    std::fprintf(f, "  \"git_rev\": %s,\n",
                 Quoted(rev != nullptr ? rev : "unknown").c_str());
    std::fprintf(f, "  \"threads\": %d,\n", Threads());
    std::fprintf(f, "  \"runs\": %d,\n", Runs());
    std::fprintf(f, "  \"scale\": %s,\n", Number(Scale()).c_str());
    std::fprintf(f, "  \"wall_seconds\": %s,\n", Number(wall).c_str());
    std::fprintf(f, "  \"cells\": [");
    for (size_t i = 0; i < cells_.size(); ++i) {
      const Cell& c = cells_[i];
      std::fprintf(f, "%s\n    {\"section\": %s, \"setting\": %s, "
                      "\"method\": %s, \"run\": %d, \"metrics\": {",
                   i == 0 ? "" : ",", Quoted(c.section).c_str(),
                   Quoted(c.setting).c_str(), Quoted(c.method).c_str(),
                   c.run);
      for (size_t m = 0; m < c.metrics.size(); ++m) {
        std::fprintf(f, "%s%s: %s", m == 0 ? "" : ", ",
                     Quoted(c.metrics[m].first).c_str(),
                     Number(c.metrics[m].second).c_str());
      }
      std::fprintf(f, "}}");
    }
    std::fprintf(f, "%s],\n", cells_.empty() ? "" : "\n  ");
    std::fprintf(f, "  \"num_cells\": %zu\n", cells_.size());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\n[bench] wrote %s (%zu cells, %.2fs wall, %d threads)\n",
                path.c_str(), cells_.size(), wall, Threads());
    name_.clear();
  }

 private:
  struct Cell {
    std::string section, setting, method;
    int run;
    Metrics metrics;
  };

  static std::string Quoted(const std::string& s) {
    std::string out = "\"";
    for (const char ch : s) {
      switch (ch) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(ch) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(ch));
            out += buf;
          } else {
            out += ch;
          }
      }
    }
    out += '"';
    return out;
  }

  // JSON number: plain integers stay integral, everything else keeps
  // enough digits to round-trip a double.
  static std::string Number(double v) {
    const auto as_int = static_cast<long long>(v);
    char buf[40];
    if (static_cast<double>(as_int) == v && v > -1e15 && v < 1e15) {
      std::snprintf(buf, sizeof(buf), "%lld", as_int);
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
  }

  std::mutex mutex_;
  std::string name_;
  std::vector<Cell> cells_;
  std::chrono::steady_clock::time_point start_;
};

/// RAII wrapper used by every bench main(): names the report on entry and
/// writes BENCH_<name>.json on scope exit.
class JsonReportScope {
 public:
  explicit JsonReportScope(const std::string& name) {
    BenchReport::Get().Begin(name);
  }
  ~JsonReportScope() { BenchReport::Get().Write(); }
  CROWDSKY_DISALLOW_COPY(JsonReportScope);
};

}  // namespace crowdsky::bench
