// Ablations beyond the paper's figures, for the design choices DESIGN.md
// calls out:
//   A. accuracy vs pruning level under noisy workers — quantifies the
//      robustness/cost trade-off behind running the accuracy experiments
//      with P1+P2 (see the note in fig10_voting_accuracy.cc);
//   B. round-robin vs all-at-once multi-attribute asking (|AC| sweep);
//   C. tournament vs bitonic baselines (question/round trade-off);
//   D. question budgets: best-effort accuracy as the budget grows (the
//      fixed-budget setting of Lofi et al. [12]).
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace {

using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode

Dataset Make(int n, int dk, int mc, uint64_t seed,
             DataDistribution dist = DataDistribution::kIndependent) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = dk;
  opt.num_crowd = mc;
  opt.distribution = dist;
  opt.seed = seed;
  return GenerateDataset(opt).ValueOrDie();
}

void PruningUnderNoise() {
  Section("A. accuracy vs pruning level (IND n=400, omega=5, p=0.8)");
  struct Level {
    const char* name;
    PruningConfig pruning;
  };
  const Level levels[] = {
      {"P1", PruningConfig::P1()},
      {"P1+P2", PruningConfig::P1P2()},
      {"P1+P2+P3", PruningConfig::All()},
  };
  Table table({"level", "questions", "precision", "recall", "F1"});
  table.PrintHeader();
  const int runs = Runs() * 3;
  for (const Level& level : levels) {
    double q = 0, p = 0, r = 0, f = 0;
    for (int run = 0; run < runs; ++run) {
      const Dataset ds = Make(Scaled(400), 4, 1, 7000 + static_cast<uint64_t>(run));
      WorkerModel worker;
      worker.p_correct = 0.8;
      SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5),
                           9000 + static_cast<uint64_t>(run));
      CrowdSession session(&crowd);
      CrowdSkyOptions options;
      options.pruning = level.pruning;
      const AlgoResult result = RunCrowdSky(ds, &session, options);
      const AccuracyMetrics m = EvaluateNewSkylineAccuracy(ds, result.skyline);
      q += static_cast<double>(result.questions);
      p += m.precision;
      r += m.recall;
      f += m.f1;
    }
    table.PrintCell(std::string(level.name));
    table.PrintCell(static_cast<int64_t>(q / runs + 0.5));
    table.PrintCell(p / runs);
    table.PrintCell(r / runs);
    table.PrintCell(f / runs);
    table.EndRow();
    BenchReport::Get().AddCell("pruning under noise", "n=400", level.name, 0,
                               {{"questions", q / runs},
                                {"precision", p / runs},
                                {"recall", r / runs},
                                {"f1", f / runs}});
  }
  std::printf(
      "  (More pruning = fewer questions but fewer redundant checks; one\n"
      "   wrong answer reaches further through the preference tree.)\n");
}

void RoundRobinSweep() {
  Section("B. multi-attribute strategy (IND n=300, perfect answers)");
  Table table({"|AC|", "all-at-once Q", "round-robin Q", "aao rounds",
               "rr rounds"});
  table.PrintHeader();
  for (const int mc : {1, 2, 3}) {
    double qa = 0, qr = 0, ra = 0, rr_rounds = 0;
    const int runs = Runs();
    for (int run = 0; run < runs; ++run) {
      const Dataset ds = Make(Scaled(300), 3, mc, 7100 + static_cast<uint64_t>(run));
      {
        PerfectOracle oracle(ds);
        CrowdSession session(&oracle);
        const AlgoResult r = RunCrowdSky(ds, &session, {});
        qa += static_cast<double>(r.questions);
        ra += static_cast<double>(r.rounds);
      }
      {
        PerfectOracle oracle(ds);
        CrowdSession session(&oracle);
        CrowdSkyOptions options;
        options.multi_attr = MultiAttributeStrategy::kRoundRobin;
        const AlgoResult r = RunCrowdSky(ds, &session, options);
        qr += static_cast<double>(r.questions);
        rr_rounds += static_cast<double>(r.rounds);
      }
    }
    table.PrintCell("|AC|=" + std::to_string(mc));
    table.PrintCell(static_cast<int64_t>(qa / runs + 0.5));
    table.PrintCell(static_cast<int64_t>(qr / runs + 0.5));
    table.PrintCell(static_cast<int64_t>(ra / runs + 0.5));
    table.PrintCell(static_cast<int64_t>(rr_rounds / runs + 0.5));
    table.EndRow();
    const std::string label = "|AC|=" + std::to_string(mc);
    BenchReport::Get().AddCell("multi-attribute strategy", label,
                               "all-at-once", 0,
                               {{"questions", qa / runs}, {"rounds", ra / runs}});
    BenchReport::Get().AddCell(
        "multi-attribute strategy", label, "round-robin", 0,
        {{"questions", qr / runs}, {"rounds", rr_rounds / runs}});
  }
}

void SortBaselines() {
  Section("C. tournament vs bitonic baseline (IND, perfect answers)");
  Table table({"n", "tourn. Q", "tourn. rounds", "bitonic Q",
               "bitonic rounds"});
  table.PrintHeader();
  for (const int n : {256, 1024, 4096}) {
    const Dataset ds = Make(Scaled(n), 4, 1, 7300);
    PerfectOracle o1(ds), o2(ds);
    CrowdSession s1(&o1), s2(&o2);
    const BaselineResult tournament = RunBaselineSort(ds, &s1);
    const BaselineResult bitonic = RunBitonicBaseline(ds, &s2);
    table.PrintCell("n=" + std::to_string(ds.size()));
    table.PrintCell(tournament.questions);
    table.PrintCell(tournament.rounds);
    table.PrintCell(bitonic.questions);
    table.PrintCell(bitonic.rounds);
    table.EndRow();
    const std::string label = "n=" + std::to_string(ds.size());
    BenchReport::Get().AddCell(
        "sort baselines", label, "tournament", 0,
        {{"questions", static_cast<double>(tournament.questions)},
         {"rounds", static_cast<double>(tournament.rounds)}});
    BenchReport::Get().AddCell(
        "sort baselines", label, "bitonic", 0,
        {{"questions", static_cast<double>(bitonic.questions)},
         {"rounds", static_cast<double>(bitonic.rounds)}});
  }
}

void BudgetSweep() {
  Section("D. best-effort skyline under question budgets (IND n=400)");
  Table table({"budget", "questions", "incomplete", "precision", "recall"});
  table.PrintHeader();
  const int runs = Runs();
  for (const int64_t budget : {25, 100, 400, 1600, 0}) {
    double q = 0, inc = 0, p = 0, r = 0;
    for (int run = 0; run < runs; ++run) {
      const Dataset ds = Make(Scaled(400), 4, 1, 7400 + static_cast<uint64_t>(run));
      PerfectOracle oracle(ds);
      CrowdSession session(&oracle);
      if (budget > 0) session.SetQuestionBudget(budget);
      const AlgoResult result = RunCrowdSky(ds, &session, {});
      const AccuracyMetrics m = EvaluateNewSkylineAccuracy(ds, result.skyline);
      q += static_cast<double>(result.questions);
      inc += static_cast<double>(result.incomplete_tuples);
      p += m.precision;
      r += m.recall;
    }
    table.PrintCell(budget == 0 ? std::string("unlimited")
                                : std::to_string(budget));
    table.PrintCell(static_cast<int64_t>(q / runs + 0.5));
    table.PrintCell(static_cast<int64_t>(inc / runs + 0.5));
    table.PrintCell(p / runs);
    table.PrintCell(r / runs);
    table.EndRow();
    BenchReport::Get().AddCell(
        "question budgets",
        budget == 0 ? std::string("unlimited") : std::to_string(budget),
        "CrowdSky", 0,
        {{"questions", q / runs},
         {"incomplete", inc / runs},
         {"precision", p / runs},
         {"recall", r / runs}});
  }
  std::printf(
      "  (Recall stays 1.0 under correct answers — budgets only leave\n"
      "   non-skyline tuples unconfirmed, so precision climbs with budget.)\n");
}

}  // namespace

int main() {
  crowdsky::bench::JsonReportScope report("ablations");
  std::printf("CrowdSky ablations (beyond the paper's figures)\n");
  PruningUnderNoise();
  RoundRobinSweep();
  SortBaselines();
  BudgetSweep();
  return 0;
}
