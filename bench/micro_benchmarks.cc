// google-benchmark micro-benchmarks of the substrates: dominance tests,
// machine skylines, dominance-structure construction, preference-graph
// closure maintenance, and full algorithm runs at a fixed size.
#include <benchmark/benchmark.h>

#include "common/thread_pool.h"
#include "core/crowdsky.h"

namespace crowdsky {
namespace {

// state.range holding a thread count: 0 means "use DefaultThreads()" (i.e.
// CROWDSKY_THREADS or hardware_concurrency), any other value is literal.
int ResolveThreads(int64_t range) {
  return range == 0 ? ThreadPool::DefaultThreads()
                    : static_cast<int>(range);
}

Dataset MakeData(int n, DataDistribution dist, int dk = 4, int mc = 1) {
  GeneratorOptions opt;
  opt.cardinality = n;
  opt.num_known = dk;
  opt.num_crowd = mc;
  opt.distribution = dist;
  opt.seed = 12345;
  return GenerateDataset(opt).ValueOrDie();
}

void BM_DominanceCompare(benchmark::State& state) {
  const Dataset ds =
      MakeData(1000, DataDistribution::kIndependent,
               static_cast<int>(state.range(0)), 0);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  int i = 0, j = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(m.Compare(i, j));
    i = (i + 1) % 1000;
    j = (j + 7) % 1000;
  }
}
BENCHMARK(BM_DominanceCompare)->Arg(2)->Arg(4)->Arg(8);

void BM_SkylineBNL(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<int>(state.range(0)),
                              DataDistribution::kAntiCorrelated, 4, 0);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkylineBNL(m));
  }
}
BENCHMARK(BM_SkylineBNL)->Arg(1000)->Arg(4000);

void BM_SkylineSFS(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<int>(state.range(0)),
                              DataDistribution::kAntiCorrelated, 4, 0);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkylineSFS(m));
  }
}
BENCHMARK(BM_SkylineSFS)->Arg(1000)->Arg(4000);

// Args: {cardinality, threads} — threads=0 means DefaultThreads(). The
// 1-thread rows are the serial baseline for the regression harness; the
// 0 rows show the parallel build at whatever the machine offers.
void BM_DominanceStructureBuild(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<int>(state.range(0)),
                              DataDistribution::kIndependent);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  const ScopedThreads threads(ResolveThreads(state.range(1)));
  for (auto _ : state) {
    DominanceStructure s(m);
    benchmark::DoNotOptimize(s.size());
  }
  state.counters["threads"] =
      static_cast<double>(ThreadPool::Global().num_threads());
}
BENCHMARK(BM_DominanceStructureBuild)
    ->Args({1000, 1})
    ->Args({1000, 0})
    ->Args({4000, 1})
    ->Args({4000, 0})
    ->Args({10000, 1})
    ->Args({10000, 0});

void BM_ParallelSkylineBNL(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<int>(state.range(0)),
                              DataDistribution::kAntiCorrelated, 4, 0);
  const PreferenceMatrix m = PreferenceMatrix::FromKnown(ds);
  const ScopedThreads threads(ResolveThreads(state.range(1)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSkylineBNL(m));
  }
  state.counters["threads"] =
      static_cast<double>(ThreadPool::Global().num_threads());
}
BENCHMARK(BM_ParallelSkylineBNL)->Args({4000, 1})->Args({4000, 0});

void BM_BitsetOrWithCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DynamicBitset a(n), b(n);
  for (size_t i = 0; i < n; i += 3) a.Set(i);
  for (size_t i = 0; i < n; i += 5) b.Set(i);
  for (auto _ : state) {
    DynamicBitset acc = a;
    benchmark::DoNotOptimize(acc.OrWithCount(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitsetOrWithCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitsetAndNotCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DynamicBitset a(n), b(n);
  for (size_t i = 0; i < n; i += 3) a.Set(i);
  for (size_t i = 0; i < n; i += 5) b.Set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.AndNotCount(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitsetAndNotCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_BitsetIntersectionCount(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  DynamicBitset a(n), b(n);
  for (size_t i = 0; i < n; i += 3) a.Set(i);
  for (size_t i = 0; i < n; i += 5) b.Set(i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.IntersectionCount(b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_BitsetIntersectionCount)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_PreferenceGraphChainInsert(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PreferenceGraph g(n);
    for (int i = 0; i + 1 < n; ++i) {
      g.AddPreference(i, i + 1).CheckOK();
    }
    benchmark::DoNotOptimize(g.edge_count());
  }
  state.SetItemsProcessed(state.iterations() * (n - 1));
}
BENCHMARK(BM_PreferenceGraphChainInsert)->Arg(256)->Arg(1024);

void BM_PreferenceGraphReachability(benchmark::State& state) {
  const int n = 2048;
  PreferenceGraph g(n);
  Rng rng(3);
  for (int e = 0; e < 4 * n; ++e) {
    const int u = static_cast<int>(rng.NextBounded(n));
    const int v = static_cast<int>(rng.NextBounded(n));
    if (u != v) g.AddPreference(u, v).CheckOK();
  }
  int u = 0, v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Prefers(u, v));
    u = (u + 13) % n;
    v = (v + 29) % n;
  }
}
BENCHMARK(BM_PreferenceGraphReachability);

void BM_FrequencyQuery(benchmark::State& state) {
  const Dataset ds = MakeData(4000, DataDistribution::kIndependent);
  const DominanceStructure s(PreferenceMatrix::FromKnown(ds));
  int u = 0, v = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.Frequency(u, v));
    u = (u + 17) % 4000;
    v = (v + 31) % 4000;
  }
}
BENCHMARK(BM_FrequencyQuery);

void BM_CrowdSkyEndToEnd(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<int>(state.range(0)),
                              DataDistribution::kIndependent);
  const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
  for (auto _ : state) {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    benchmark::DoNotOptimize(
        RunCrowdSky(ds, structure, &session, {}).questions);
  }
}
BENCHMARK(BM_CrowdSkyEndToEnd)->Arg(500)->Arg(2000);

void BM_ParallelSLEndToEnd(benchmark::State& state) {
  const Dataset ds = MakeData(static_cast<int>(state.range(0)),
                              DataDistribution::kIndependent);
  const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
  for (auto _ : state) {
    PerfectOracle oracle(ds);
    CrowdSession session(&oracle);
    benchmark::DoNotOptimize(
        RunParallelSL(ds, structure, &session, {}).questions);
  }
}
BENCHMARK(BM_ParallelSLEndToEnd)->Arg(500)->Arg(2000);

void BM_SimulatedCrowdAnswer(benchmark::State& state) {
  const Dataset ds = MakeData(1000, DataDistribution::kIndependent);
  WorkerModel worker;
  SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5), 7);
  int u = 0, v = 500;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crowd.AnswerPair({0, u, v}, {}));
    u = (u + 3) % 1000;
    v = (v + 11) % 1000;
    if (u == v) v = (v + 1) % 1000;
  }
}
BENCHMARK(BM_SimulatedCrowdAnswer);

}  // namespace
}  // namespace crowdsky
