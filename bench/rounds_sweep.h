// Shared harness for Figures 8 and 9: number of rounds for Baseline,
// Serial, ParallelDSet and ParallelSL.
//
// Like questions_sweep.h, the (run x method) cells of each setting are
// independent and run concurrently on the shared thread pool; the printed
// averages accumulate in the historical serial order so output is
// identical for every CROWDSKY_THREADS value.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/crowdsky.h"
#include "questions_sweep.h"

namespace crowdsky::bench {

inline const std::vector<std::string>& RoundsMethods() {
  static const std::vector<std::string> kMethods = {
      "Baseline", "Serial", "ParallelDSet", "ParallelSL"};
  return kMethods;
}

inline CellMetrics MeasureRoundsCell(const Dataset& ds,
                                     const DominanceStructure& structure,
                                     size_t method) {
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  AlgoResult r;
  switch (method) {
    case 0: r = RunBaselineSort(ds, &session); break;
    case 1: r = RunCrowdSky(ds, structure, &session, {}); break;
    case 2: r = RunParallelDSet(ds, structure, &session, {}); break;
    default: r = RunParallelSL(ds, structure, &session, {}); break;
  }
  return {r.questions, r.rounds, AmtCostModel{}.Cost(r.questions_per_round)};
}

inline void RoundsSweep(const std::string& title, DataDistribution dist,
                        const std::vector<GeneratorOptions>& settings,
                        const std::vector<std::string>& labels) {
  Section(title);
  const std::vector<std::string>& methods = RoundsMethods();
  std::vector<std::string> headers = {"setting"};
  for (const auto& m : methods) headers.push_back(m);
  Table table(headers);
  table.PrintHeader();
  const auto runs = static_cast<size_t>(Runs());
  const size_t num_methods = methods.size();
  for (size_t i = 0; i < settings.size(); ++i) {
    std::vector<std::unique_ptr<Dataset>> datasets(runs);
    std::vector<std::unique_ptr<DominanceStructure>> structures(runs);
    ParallelFor(0, runs, 1, [&](size_t lo, size_t hi) {
      for (size_t run = lo; run < hi; ++run) {
        GeneratorOptions opt = settings[i];
        opt.distribution = dist;
        opt.seed = 2000 + static_cast<uint64_t>(run) * 41;
        datasets[run] =
            std::make_unique<Dataset>(GenerateDataset(opt).ValueOrDie());
        structures[run] = std::make_unique<DominanceStructure>(
            PreferenceMatrix::FromKnown(*datasets[run]));
      }
    });
    std::vector<CellMetrics> cells(runs * num_methods);
    ParallelFor(0, cells.size(), 1, [&](size_t lo, size_t hi) {
      for (size_t idx = lo; idx < hi; ++idx) {
        const size_t run = idx / num_methods;
        const size_t m = idx % num_methods;
        cells[idx] = MeasureRoundsCell(*datasets[run], *structures[run], m);
      }
    });
    std::vector<double> sums(num_methods, 0.0);
    for (size_t run = 0; run < runs; ++run) {
      for (size_t m = 0; m < num_methods; ++m) {
        sums[m] += static_cast<double>(cells[run * num_methods + m].rounds);
      }
    }
    table.PrintCell(labels[i]);
    for (const double sum : sums) {
      table.PrintCell(
          static_cast<int64_t>(sum / static_cast<double>(runs) + 0.5));
    }
    table.EndRow();
    for (size_t run = 0; run < runs; ++run) {
      for (size_t m = 0; m < num_methods; ++m) {
        const CellMetrics& c = cells[run * num_methods + m];
        BenchReport::Get().AddCell(
            title, labels[i], methods[m], static_cast<int>(run),
            {{"questions", static_cast<double>(c.questions)},
             {"rounds", static_cast<double>(c.rounds)},
             {"cost", c.cost}});
      }
    }
  }
}

}  // namespace crowdsky::bench
