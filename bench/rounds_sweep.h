// Shared harness for Figures 8 and 9: number of rounds for Baseline,
// Serial, ParallelDSet and ParallelSL.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace crowdsky::bench {

inline void RoundsSweep(const std::string& title, DataDistribution dist,
                        const std::vector<GeneratorOptions>& settings,
                        const std::vector<std::string>& labels) {
  Section(title);
  const std::vector<std::string> methods = {"Baseline", "Serial",
                                            "ParallelDSet", "ParallelSL"};
  std::vector<std::string> headers = {"setting"};
  for (const auto& m : methods) headers.push_back(m);
  Table table(headers);
  table.PrintHeader();
  const int runs = Runs();
  for (size_t i = 0; i < settings.size(); ++i) {
    std::vector<double> sums(methods.size(), 0.0);
    for (int run = 0; run < runs; ++run) {
      GeneratorOptions opt = settings[i];
      opt.distribution = dist;
      opt.seed = 2000 + static_cast<uint64_t>(run) * 41;
      const Dataset ds = GenerateDataset(opt).ValueOrDie();
      const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
      {
        PerfectOracle oracle(ds);
        CrowdSession session(&oracle);
        sums[0] +=
            static_cast<double>(RunBaselineSort(ds, &session).rounds);
      }
      {
        PerfectOracle oracle(ds);
        CrowdSession session(&oracle);
        sums[1] += static_cast<double>(
            RunCrowdSky(ds, structure, &session, {}).rounds);
      }
      {
        PerfectOracle oracle(ds);
        CrowdSession session(&oracle);
        sums[2] += static_cast<double>(
            RunParallelDSet(ds, structure, &session, {}).rounds);
      }
      {
        PerfectOracle oracle(ds);
        CrowdSession session(&oracle);
        sums[3] += static_cast<double>(
            RunParallelSL(ds, structure, &session, {}).rounds);
      }
    }
    table.PrintCell(labels[i]);
    for (const double sum : sums) {
      table.PrintCell(static_cast<int64_t>(sum / runs + 0.5));
    }
    table.EndRow();
  }
}

}  // namespace crowdsky::bench
