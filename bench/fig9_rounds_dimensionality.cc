// Figure 9: number of rounds over varying |AK| (IND and ANT).
#include "rounds_sweep.h"

int main() {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  JsonReportScope report("fig9_rounds_dimensionality");
  std::printf("Figure 9: number of rounds over varying |AK|\n");
  std::printf("(averaged over %d runs; CROWDSKY_BENCH_SCALE=%.2f)\n", Runs(),
              Scale());
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int dk : {2, 3, 4, 5}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(4000);
      opt.num_known = dk;
      opt.num_crowd = 1;
      settings.push_back(opt);
      labels.push_back("|AK|=" + std::to_string(dk));
    }
    RoundsSweep(std::string("Figure 9(") +
                    (dist == DataDistribution::kIndependent ? "a): IND"
                                                            : "b): ANT"),
                dist, settings, labels);
  }
  return 0;
}
