// Figure 8: number of rounds over varying cardinality (IND and ANT).
#include "rounds_sweep.h"

int main() {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  JsonReportScope report("fig8_rounds_cardinality");
  std::printf("Figure 8: number of rounds over varying cardinality\n");
  std::printf("(averaged over %d runs; CROWDSKY_BENCH_SCALE=%.2f)\n", Runs(),
              Scale());
  for (const auto dist : {DataDistribution::kIndependent,
                          DataDistribution::kAntiCorrelated}) {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int n : {2000, 4000, 6000, 8000, 10000}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(n);
      opt.num_known = 4;
      opt.num_crowd = 1;
      settings.push_back(opt);
      labels.push_back("n=" + std::to_string(opt.cardinality));
    }
    RoundsSweep(std::string("Figure 8(") +
                    (dist == DataDistribution::kIndependent ? "a): IND"
                                                            : "b): ANT"),
                dist, settings, labels);
  }
  return 0;
}
