// Figure 6: number of questions over the independent distribution.
#include "questions_sweep.h"

int main() {
  crowdsky::bench::JsonReportScope report("fig6_questions_ind");
  crowdsky::bench::QuestionsFigure("Figure 6",
                                   crowdsky::DataDistribution::kIndependent);
  return 0;
}
