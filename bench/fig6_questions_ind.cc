// Figure 6: number of questions over the independent distribution.
#include "questions_sweep.h"

int main() {
  crowdsky::bench::QuestionsFigure("Figure 6",
                                   crowdsky::DataDistribution::kIndependent);
  return 0;
}
