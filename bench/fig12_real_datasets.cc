// Figure 12 and the Section 6.2 accuracy discussion: the three real-life
// queries Q1 (rectangles), Q2 (movies), Q3 (MLB pitchers) with a simulated
// Masters-grade crowd — monetary cost (Baseline vs CrowdSky), rounds
// (Baseline vs ParallelDSet vs ParallelSL) and result quality.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace {

using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode

EngineOptions Options(Algorithm algo, uint64_t seed) {
  EngineOptions opt;
  opt.algorithm = algo;
  opt.worker.p_correct = 0.95;  // AMT Masters workers
  opt.workers_per_question = 5;
  opt.seed = seed;
  return opt;
}

void RunQuery(const char* name, const Dataset& ds) {
  Section(std::string(name));
  Table table({"method", "questions", "rounds", "HITs", "cost($)",
               "precision", "recall"});
  table.PrintHeader();
  const Algorithm algos[] = {Algorithm::kBaselineSort,
                             Algorithm::kCrowdSkySerial,
                             Algorithm::kParallelDSet, Algorithm::kParallelSL};
  const int runs = Runs();
  for (const Algorithm algo : algos) {
    double questions = 0, rounds = 0, hits = 0, cost = 0, precision = 0,
           recall = 0;
    for (int run = 0; run < runs; ++run) {
      const auto r = RunSkylineQuery(
          ds, Options(algo, 5000 + static_cast<uint64_t>(run) * 61));
      r.status().CheckOK();
      questions += static_cast<double>(r->algo.questions);
      rounds += static_cast<double>(r->algo.rounds);
      AmtCostModel cost_model;
      hits += static_cast<double>(
          cost_model.Hits(r->algo.questions_per_round));
      cost += r->cost_usd;
      precision += r->accuracy.precision;
      recall += r->accuracy.recall;
    }
    table.PrintCell(std::string(AlgorithmName(algo)));
    table.PrintCell(static_cast<int64_t>(questions / runs + 0.5));
    table.PrintCell(static_cast<int64_t>(rounds / runs + 0.5));
    table.PrintCell(static_cast<int64_t>(hits / runs + 0.5));
    table.PrintCell(cost / runs, 2);
    table.PrintCell(precision / runs);
    table.PrintCell(recall / runs);
    table.EndRow();
    BenchReport::Get().AddCell("real queries", name,
                               std::string(AlgorithmName(algo)), 0,
                               {{"questions", questions / runs},
                                {"rounds", rounds / runs},
                                {"hits", hits / runs},
                                {"cost_usd", cost / runs},
                                {"precision", precision / runs},
                                {"recall", recall / runs}});
  }
}

void PrintSkyline(const char* title, const Dataset& ds) {
  const auto r = RunSkylineQuery(ds, Options(Algorithm::kParallelSL, 2016));
  r.status().CheckOK();
  std::printf("\n%s crowdsourced skyline:\n", title);
  for (const std::string& label : r->skyline_labels) {
    std::printf("  - %s\n", label.c_str());
  }
}

}  // namespace

int main() {
  crowdsky::bench::JsonReportScope report("fig12_real_datasets");
  std::printf(
      "Figure 12: real-life queries with a simulated AMT crowd "
      "(omega=5, $0.02/question, 5 questions per HIT; %d runs)\n",
      Runs());
  const Dataset q1 = MakeRectanglesDataset();
  const Dataset q2 = MakeMoviesDataset();
  const Dataset q3 = MakeMlbPitchersDataset();
  RunQuery("Q1: rectangles (AK={bbox w,h}, AC={area})", q1);
  RunQuery("Q2: movies (AK={box office, year}, AC={rating})", q2);
  RunQuery("Q3: MLB pitchers (AK={W, SO, ERA}, AC={value})", q3);
  PrintSkyline("Q2 (movies)", q2);
  PrintSkyline("Q3 (pitchers)", q3);
  return 0;
}
