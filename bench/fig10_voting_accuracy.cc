// Figure 10: precision/recall of StaticVoting vs DynamicVoting in CrowdSky
// over varying cardinality (IND, omega = 5, p = 0.8).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/crowdsky.h"

int main() {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  JsonReportScope report("fig10_voting_accuracy");
  const int runs = Runs() * 2;  // accuracy needs more averaging
  std::printf(
      "Figure 10: accuracy of static vs dynamic voting (IND, omega=5, "
      "p=0.8; %d runs)\n",
      runs);
  Table table({"cardinality", "static P", "static R", "dynamic P",
               "dynamic R", "static W", "dynamic W"});
  table.PrintHeader();
  for (const int n : {200, 400, 600, 800, 1000}) {
    const int card = Scaled(n);
    double sp = 0, sr = 0, dp = 0, dr = 0;
    double sw = 0, dw = 0;
    for (int run = 0; run < runs; ++run) {
      GeneratorOptions gen;
      gen.cardinality = card;
      gen.num_known = 4;
      gen.num_crowd = 1;
      gen.seed = 3000 + static_cast<uint64_t>(run) * 53;
      const Dataset ds = GenerateDataset(gen).ValueOrDie();
      const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
      WorkerModel worker;
      worker.p_correct = 0.8;
      // Accuracy experiments run P1+P2: probing (P3) maximizes question
      // savings under correct answers, but its dense preference tree lets
      // single wrong answers eliminate the true best dominator of many
      // tuples at once, inverting the paper's precision/recall profile.
      // P1+P2 reproduces the published shape (precision above recall).
      CrowdSkyOptions algo_options;
      algo_options.pruning = PruningConfig::P1P2();
      {
        SimulatedCrowd crowd(ds, worker, VotingPolicy::MakeStatic(5),
                             gen.seed * 7 + 1);
        CrowdSession session(&crowd);
        const AlgoResult r =
            RunCrowdSky(ds, structure, &session, algo_options);
        const AccuracyMetrics m = EvaluateNewSkylineAccuracy(ds, r.skyline);
        sp += m.precision;
        sr += m.recall;
        sw += static_cast<double>(r.worker_answers);
      }
      {
        Rng rng(gen.seed);
        SimulatedCrowd crowd(ds, worker,
                             VotingPolicy::MakeDynamic(5, structure, &rng),
                             gen.seed * 7 + 1);
        CrowdSession session(&crowd);
        const AlgoResult r =
            RunCrowdSky(ds, structure, &session, algo_options);
        const AccuracyMetrics m = EvaluateNewSkylineAccuracy(ds, r.skyline);
        dp += m.precision;
        dr += m.recall;
        dw += static_cast<double>(r.worker_answers);
      }
    }
    table.PrintCell("n=" + std::to_string(card));
    table.PrintCell(sp / runs);
    table.PrintCell(sr / runs);
    table.PrintCell(dp / runs);
    table.PrintCell(dr / runs);
    table.PrintCell(static_cast<int64_t>(sw / runs + 0.5));
    table.PrintCell(static_cast<int64_t>(dw / runs + 0.5));
    table.EndRow();
    const std::string label = "n=" + std::to_string(card);
    BenchReport::Get().AddCell("voting accuracy", label, "static", 0,
                               {{"precision", sp / runs},
                                {"recall", sr / runs},
                                {"worker_answers", sw / runs}});
    BenchReport::Get().AddCell("voting accuracy", label, "dynamic", 0,
                               {{"precision", dp / runs},
                                {"recall", dr / runs},
                                {"worker_answers", dw / runs}});
  }
  std::printf(
      "\n(The W columns report total worker assignments: the dynamic policy "
      "stays near the static budget,\n as in the paper's fair-comparison "
      "setup.)\n");
  return 0;
}
