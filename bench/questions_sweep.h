// Shared harness for Figures 6 and 7: number of questions for Baseline,
// DSet, P1, P1+P2, P1+P2+P3 over (a) cardinality, (b) |AK|, (c) |AC|.
//
// Cells are independent (every run re-generates its dataset from its own
// seed and PerfectOracle is deterministic), so the harness runs the
// (run x method) grid of each setting concurrently on the shared thread
// pool and then accumulates/prints in the historical serial order — the
// printed tables and the emitted JSON cells are identical for every
// CROWDSKY_THREADS value.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace crowdsky::bench {

struct MethodSpec {
  std::string name;
  bool baseline = false;
  PruningConfig pruning;
};

inline std::vector<MethodSpec> QuestionMethods() {
  return {
      {"Baseline", true, {}},
      {"DSet", false, PruningConfig::DSetOnly()},
      {"P1", false, PruningConfig::P1()},
      {"P1+P2", false, PruningConfig::P1P2()},
      {"P1+P2+P3", false, PruningConfig::All()},
  };
}

/// Per-cell record for the JSON regression report.
struct CellMetrics {
  int64_t questions = 0;
  int64_t rounds = 0;
  double cost = 0.0;
};

inline CellMetrics MeasureQuestionCell(const Dataset& ds,
                                       const DominanceStructure& structure,
                                       const MethodSpec& method) {
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  AlgoResult r;
  if (method.baseline) {
    r = RunBaselineSort(ds, &session);
  } else {
    CrowdSkyOptions options;
    options.pruning = method.pruning;
    r = RunCrowdSky(ds, structure, &session, options);
  }
  return {r.questions, r.rounds, AmtCostModel{}.Cost(r.questions_per_round)};
}

inline int64_t MeasureQuestions(const Dataset& ds,
                                const DominanceStructure& structure,
                                const MethodSpec& method) {
  return MeasureQuestionCell(ds, structure, method).questions;
}

/// Runs one sweep dimension: all (run x method) cells of each setting in
/// parallel, then a paper-style series table plus JSON cells.
inline void QuestionsSweep(const std::string& title, DataDistribution dist,
                           const std::vector<GeneratorOptions>& settings,
                           const std::vector<std::string>& labels) {
  Section(title);
  const std::vector<MethodSpec> methods = QuestionMethods();
  std::vector<std::string> headers = {"setting"};
  for (const MethodSpec& m : methods) headers.push_back(m.name);
  Table table(headers);
  table.PrintHeader();
  const auto runs = static_cast<size_t>(Runs());
  const size_t num_methods = methods.size();
  for (size_t i = 0; i < settings.size(); ++i) {
    // Phase A: one dataset + dominance structure per run, in parallel.
    std::vector<std::unique_ptr<Dataset>> datasets(runs);
    std::vector<std::unique_ptr<DominanceStructure>> structures(runs);
    ParallelFor(0, runs, 1, [&](size_t lo, size_t hi) {
      for (size_t run = lo; run < hi; ++run) {
        GeneratorOptions opt = settings[i];
        opt.distribution = dist;
        opt.seed = 1000 + static_cast<uint64_t>(run) * 37;
        datasets[run] =
            std::make_unique<Dataset>(GenerateDataset(opt).ValueOrDie());
        structures[run] = std::make_unique<DominanceStructure>(
            PreferenceMatrix::FromKnown(*datasets[run]));
      }
    });
    // Phase B: every (run x method) cell concurrently; each cell owns its
    // oracle/session and only reads the shared immutable structures.
    std::vector<CellMetrics> cells(runs * num_methods);
    ParallelFor(0, cells.size(), 1, [&](size_t lo, size_t hi) {
      for (size_t idx = lo; idx < hi; ++idx) {
        const size_t run = idx / num_methods;
        const size_t m = idx % num_methods;
        cells[idx] =
            MeasureQuestionCell(*datasets[run], *structures[run], methods[m]);
      }
    });
    // Serial accumulation in the historical run-major order keeps the
    // floating-point sums (and thus the printed table) bit-identical.
    std::vector<double> sums(num_methods, 0.0);
    for (size_t run = 0; run < runs; ++run) {
      for (size_t m = 0; m < num_methods; ++m) {
        sums[m] += static_cast<double>(cells[run * num_methods + m].questions);
      }
    }
    table.PrintCell(labels[i]);
    for (const double sum : sums) {
      table.PrintCell(
          static_cast<int64_t>(sum / static_cast<double>(runs) + 0.5));
    }
    table.EndRow();
    for (size_t run = 0; run < runs; ++run) {
      for (size_t m = 0; m < num_methods; ++m) {
        const CellMetrics& c = cells[run * num_methods + m];
        BenchReport::Get().AddCell(
            title, labels[i], methods[m].name, static_cast<int>(run),
            {{"questions", static_cast<double>(c.questions)},
             {"rounds", static_cast<double>(c.rounds)},
             {"cost", c.cost}});
      }
    }
  }
}

/// All three panels of Figure 6/7 for one distribution.
inline void QuestionsFigure(const char* figure, DataDistribution dist) {
  std::printf("%s: number of questions over %s distribution\n", figure,
              DataDistributionName(dist));
  std::printf(
      "(averaged over %d runs; CROWDSKY_BENCH_SCALE=%.2f, %d threads)\n",
      Runs(), Scale(), Threads());

  {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int n : {2000, 4000, 6000, 8000, 10000}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(n);
      opt.num_known = 4;
      opt.num_crowd = 1;
      settings.push_back(opt);
      labels.push_back("n=" + std::to_string(opt.cardinality));
    }
    QuestionsSweep(std::string(figure) + "(a): varying cardinality", dist,
                   settings, labels);
  }
  {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int dk : {2, 3, 4, 5}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(4000);
      opt.num_known = dk;
      opt.num_crowd = 1;
      settings.push_back(opt);
      labels.push_back("|AK|=" + std::to_string(dk));
    }
    QuestionsSweep(std::string(figure) + "(b): varying |AK|", dist,
                   settings, labels);
  }
  {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int mc : {1, 2, 3}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(4000);
      opt.num_known = 4;
      opt.num_crowd = mc;
      settings.push_back(opt);
      labels.push_back("|AC|=" + std::to_string(mc));
    }
    QuestionsSweep(std::string(figure) + "(c): varying |AC|", dist,
                   settings, labels);
  }
}

}  // namespace crowdsky::bench
