// Shared harness for Figures 6 and 7: number of questions for Baseline,
// DSet, P1, P1+P2, P1+P2+P3 over (a) cardinality, (b) |AK|, (c) |AC|.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace crowdsky::bench {

struct MethodSpec {
  std::string name;
  bool baseline = false;
  PruningConfig pruning;
};

inline std::vector<MethodSpec> QuestionMethods() {
  return {
      {"Baseline", true, {}},
      {"DSet", false, PruningConfig::DSetOnly()},
      {"P1", false, PruningConfig::P1()},
      {"P1+P2", false, PruningConfig::P1P2()},
      {"P1+P2+P3", false, PruningConfig::All()},
  };
}

inline int64_t MeasureQuestions(const Dataset& ds,
                                const DominanceStructure& structure,
                                const MethodSpec& method) {
  PerfectOracle oracle(ds);
  CrowdSession session(&oracle);
  if (method.baseline) {
    return RunBaselineSort(ds, &session).questions;
  }
  CrowdSkyOptions options;
  options.pruning = method.pruning;
  return RunCrowdSky(ds, structure, &session, options).questions;
}

/// Runs one sweep dimension and prints a paper-style series table.
inline void QuestionsSweep(const std::string& title, DataDistribution dist,
                           const std::vector<GeneratorOptions>& settings,
                           const std::vector<std::string>& labels) {
  Section(title);
  const std::vector<MethodSpec> methods = QuestionMethods();
  std::vector<std::string> headers = {"setting"};
  for (const MethodSpec& m : methods) headers.push_back(m.name);
  Table table(headers);
  table.PrintHeader();
  const int runs = Runs();
  for (size_t i = 0; i < settings.size(); ++i) {
    std::vector<double> sums(methods.size(), 0.0);
    for (int run = 0; run < runs; ++run) {
      GeneratorOptions opt = settings[i];
      opt.distribution = dist;
      opt.seed = 1000 + static_cast<uint64_t>(run) * 37;
      const Dataset ds = GenerateDataset(opt).ValueOrDie();
      const DominanceStructure structure(PreferenceMatrix::FromKnown(ds));
      for (size_t m = 0; m < methods.size(); ++m) {
        sums[m] += static_cast<double>(
            MeasureQuestions(ds, structure, methods[m]));
      }
    }
    table.PrintCell(labels[i]);
    for (const double sum : sums) {
      table.PrintCell(static_cast<int64_t>(sum / runs + 0.5));
    }
    table.EndRow();
  }
}

/// All three panels of Figure 6/7 for one distribution.
inline void QuestionsFigure(const char* figure, DataDistribution dist) {
  std::printf("%s: number of questions over %s distribution\n", figure,
              DataDistributionName(dist));
  std::printf("(averaged over %d runs; CROWDSKY_BENCH_SCALE=%.2f)\n",
              Runs(), Scale());

  {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int n : {2000, 4000, 6000, 8000, 10000}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(n);
      opt.num_known = 4;
      opt.num_crowd = 1;
      settings.push_back(opt);
      labels.push_back("n=" + std::to_string(opt.cardinality));
    }
    QuestionsSweep(std::string(figure) + "(a): varying cardinality", dist,
                   settings, labels);
  }
  {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int dk : {2, 3, 4, 5}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(4000);
      opt.num_known = dk;
      opt.num_crowd = 1;
      settings.push_back(opt);
      labels.push_back("|AK|=" + std::to_string(dk));
    }
    QuestionsSweep(std::string(figure) + "(b): varying |AK|", dist,
                   settings, labels);
  }
  {
    std::vector<GeneratorOptions> settings;
    std::vector<std::string> labels;
    for (const int mc : {1, 2, 3}) {
      GeneratorOptions opt;
      opt.cardinality = Scaled(4000);
      opt.num_known = 4;
      opt.num_crowd = mc;
      settings.push_back(opt);
      labels.push_back("|AC|=" + std::to_string(mc));
    }
    QuestionsSweep(std::string(figure) + "(c): varying |AC|", dist,
                   settings, labels);
  }
}

}  // namespace crowdsky::bench
