// Durability sweep: what crash safety costs. Runs ParallelSL with the
// answer journal off / buffered / flush(write-per-record) / fsync and
// measures wall time, journal size and record count, then times the
// resume path (replaying a completed journal instead of re-asking the
// crowd). Per-record fsync dominates everything else, which is why
// kFlush — durable across process death, the kill-point tests' threat
// model — is the default. Emits BENCH_durability.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  namespace fs = std::filesystem;
  JsonReportScope report("durability");
  const int runs = Runs();
  const int card = Scaled(200);
  std::printf(
      "Durability sweep: ParallelSL with the answer journal off vs on "
      "(n=%d, omega=5, %d runs per cell)\n",
      card, runs);

  const fs::path root =
      fs::temp_directory_path() / "crowdsky_durability_sweep";
  std::error_code ec;
  fs::remove_all(root, ec);
  fs::create_directories(root);

  struct Mode {
    const char* name;
    bool durable;
    persist::SyncMode sync;
  };
  const Mode modes[] = {{"off", false, persist::SyncMode::kBuffered},
                        {"buffered", true, persist::SyncMode::kBuffered},
                        {"flush", true, persist::SyncMode::kFlush},
                        {"fsync", true, persist::SyncMode::kFsync}};

  Table table({"journal", "wall ms", "resume ms", "records", "bytes",
               "questions", "rounds", "cost"});
  table.PrintHeader();

  for (const Mode& mode : modes) {
    double wall_ms = 0, resume_ms = 0, records = 0, bytes = 0;
    double questions = 0, rounds = 0, replayed = 0, cost = 0;
    for (int run = 0; run < runs; ++run) {
      GeneratorOptions gen;
      gen.cardinality = card;
      gen.num_known = 2;
      gen.num_crowd = 2;
      gen.seed = 7100 + static_cast<uint64_t>(run) * 97;
      const Dataset ds = GenerateDataset(gen).ValueOrDie();

      const fs::path dir =
          root / (std::string(mode.name) + "_" + std::to_string(run));
      fs::create_directories(dir);

      EngineOptions opts;
      opts.algorithm = Algorithm::kParallelSL;
      opts.oracle = OracleKind::kSimulated;
      opts.seed = gen.seed * 31 + 7;
      if (mode.durable) {
        opts.durability.dir = dir.string();
        opts.durability.sync = mode.sync;
        opts.durability.checkpoint_every_rounds = 8;
      }

      const auto fresh_start = std::chrono::steady_clock::now();
      const EngineResult r = RunSkylineQuery(ds, opts).ValueOrDie();
      wall_ms += MillisSince(fresh_start);
      questions += static_cast<double>(r.algo.questions);
      rounds += static_cast<double>(r.algo.rounds);
      cost += r.cost_usd;
      records += static_cast<double>(r.durability.journal_records);

      if (mode.durable) {
        bytes += static_cast<double>(
            fs::file_size(dir / "journal.bin", ec));
        // Resume over the completed journal: every paid question replays
        // from disk, none is re-paid — this times the recovery path.
        opts.durability.resume = true;
        const auto resume_start = std::chrono::steady_clock::now();
        const EngineResult again = RunSkylineQuery(ds, opts).ValueOrDie();
        resume_ms += MillisSince(resume_start);
        replayed +=
            static_cast<double>(again.durability.replayed_pair_attempts +
                                again.durability.replayed_unary_questions);
        if (again.durability.new_records != 0 ||
            again.cost_usd != r.cost_usd) {
          std::fprintf(stderr,
                       "durability_sweep: resume re-paid questions in mode "
                       "%s run %d\n",
                       mode.name, run);
          return 1;
        }
      }
    }
    const double d = runs;
    table.PrintCell(mode.name);
    table.PrintCell(wall_ms / d, 2);
    if (mode.durable) {
      table.PrintCell(resume_ms / d, 2);
    } else {
      table.PrintCell("-");
    }
    table.PrintCell(static_cast<int64_t>(records / d + 0.5));
    table.PrintCell(static_cast<int64_t>(bytes / d + 0.5));
    table.PrintCell(static_cast<int64_t>(questions / d + 0.5));
    table.PrintCell(static_cast<int64_t>(rounds / d + 0.5));
    table.PrintCell(cost / d, 2);
    table.EndRow();
    BenchReport::Get().AddCell(
        "durability", mode.name, "ParallelSL", 0,
        {{"wall_ms", wall_ms / d},
         {"resume_ms", mode.durable ? resume_ms / d : 0.0},
         {"journal_records", records / d},
         {"journal_bytes", bytes / d},
         {"replayed", replayed / d},
         {"questions", questions / d},
         {"rounds", rounds / d},
         {"cost", cost / d}});
  }

  fs::remove_all(root, ec);
  std::printf(
      "\n(The resume column replays the whole completed journal without "
      "asking the oracle; new_records stays 0, i.e. nothing is re-paid. "
      "kFlush is the default: it survives process death, which is the "
      "kill-point tests' crash model.)\n");
  return 0;
}
