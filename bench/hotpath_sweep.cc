// Hot-path speed sweep: the machine-side dominance work that every crowd
// driver pays before (and between) crowd questions, measured across the
// kernel backends of skyline/dominance_kernels.h.
//
//  * structure — DominanceStructure construction (the O(n^2) fill that
//    dominates preprocessing) at n up to 10^5, legacy per-pair Compare vs
//    the batched scalar and AVX2 kernels,
//  * skyline — sort-filter skyline (ComputeSkylineSFS) at n up to 10^6,
//    including the anti-correlated worst case and a dimensionality sweep.
//
// Every cell cross-checks its result against the legacy backend before it
// is recorded, so a speedup number can never come from a wrong answer.
// Emits BENCH_hotpath.json. `--smoke` shrinks to CI-sized cells.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "data/generator.h"
#include "skyline/algorithms.h"
#include "skyline/dominance_kernels.h"
#include "skyline/dominance_structure.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  JsonReportScope report("hotpath");
  const int runs = Runs();

  std::vector<KernelBackend> backends = {KernelBackend::kLegacy,
                                         KernelBackend::kScalar};
  if (CpuSupportsAvx2()) {
    backends.push_back(KernelBackend::kAvx2);
  } else {
    std::printf("note: CPU lacks AVX2; avx2 cells skipped\n");
  }

  const auto make_known = [](int n, int d, DataDistribution dist,
                             uint64_t seed) {
    GeneratorOptions gen;
    gen.cardinality = n;
    gen.num_known = d;
    gen.num_crowd = 0;
    gen.distribution = dist;
    gen.seed = seed;
    return PreferenceMatrix::FromKnown(GenerateDataset(gen).ValueOrDie());
  };

  // -------------------------------------------------------------------
  // Section 1: DominanceStructure construction.
  // -------------------------------------------------------------------
  Section("DominanceStructure build (d=4, independent)");
  Table stable({"n", "threads", "backend", "wall ms", "Mpairs/s",
                "speedup vs legacy"});
  stable.PrintHeader();
  struct StructCell {
    int n;
    int threads;
  };
  std::vector<StructCell> struct_cells;
  if (smoke) {
    struct_cells = {{2000, 1}};
  } else {
    struct_cells = {{10000, 1}, {10000, 4}, {100000, 1}};
  }
  for (const StructCell& cell : struct_cells) {
    const PreferenceMatrix m =
        make_known(cell.n, 4, DataDistribution::kIndependent, 42);
    const double pairs =
        0.5 * static_cast<double>(cell.n) * static_cast<double>(cell.n - 1);
    double legacy_ms = 0;
    size_t reference_skyline = 0;
    for (const KernelBackend backend : backends) {
      ScopedThreads scope(cell.threads);
      double wall_ms = 0;
      size_t skyline_size = 0;
      for (int run = 0; run < runs; ++run) {
        const auto start = std::chrono::steady_clock::now();
        const DominanceStructure structure(m, backend);
        const double ms = MillisSince(start);
        wall_ms += ms;
        skyline_size = structure.known_skyline().size();
        BenchReport::Get().AddCell(
            "structure",
            "n=" + std::to_string(cell.n) +
                " threads=" + std::to_string(cell.threads),
            KernelBackendName(backend), run,
            {{"wall_ms", ms},
             {"mpairs_per_s", pairs / ms / 1e3},
             {"skyline_size", static_cast<double>(skyline_size)}});
      }
      wall_ms /= runs;
      if (backend == KernelBackend::kLegacy) {
        legacy_ms = wall_ms;
        reference_skyline = skyline_size;
      } else {
        // A speedup from a wrong answer is no speedup: the known skyline
        // (and by the differential tests, every bit) must match legacy.
        CROWDSKY_CHECK(skyline_size == reference_skyline);
      }
      stable.PrintCell(static_cast<int64_t>(cell.n));
      stable.PrintCell(static_cast<int64_t>(cell.threads));
      stable.PrintCell(KernelBackendName(backend));
      stable.PrintCell(wall_ms);
      stable.PrintCell(pairs / wall_ms / 1e3);
      stable.PrintCell(legacy_ms / wall_ms);
      stable.EndRow();
    }
  }

  // -------------------------------------------------------------------
  // Section 2: sort-filter skyline.
  // -------------------------------------------------------------------
  Section("Skyline SFS sweep");
  Table sktable({"dist", "n", "d", "threads", "backend", "wall ms",
                 "skyline", "speedup vs legacy"});
  sktable.PrintHeader();
  struct SkyCell {
    DataDistribution dist;
    int n;
    int d;
    int threads;
  };
  std::vector<SkyCell> sky_cells;
  if (smoke) {
    sky_cells = {{DataDistribution::kIndependent, 5000, 4, 1},
                 {DataDistribution::kAntiCorrelated, 5000, 4, 1}};
  } else {
    sky_cells = {
        {DataDistribution::kIndependent, 10000, 4, 1},
        {DataDistribution::kIndependent, 100000, 4, 1},
        {DataDistribution::kIndependent, 100000, 4, 4},
        {DataDistribution::kIndependent, 1000000, 4, 1},
        {DataDistribution::kIndependent, 1000000, 4, 4},
        {DataDistribution::kIndependent, 100000, 2, 1},
        {DataDistribution::kIndependent, 100000, 8, 1},
        {DataDistribution::kAntiCorrelated, 10000, 4, 1},
        {DataDistribution::kAntiCorrelated, 100000, 4, 1},
        {DataDistribution::kAntiCorrelated, 100000, 4, 4},
    };
  }
  for (const SkyCell& cell : sky_cells) {
    const PreferenceMatrix m = make_known(cell.n, cell.d, cell.dist, 42);
    double legacy_ms = 0;
    std::vector<int> reference;
    for (const KernelBackend backend : backends) {
      ScopedThreads scope(cell.threads);
      double wall_ms = 0;
      std::vector<int> skyline;
      for (int run = 0; run < runs; ++run) {
        const auto start = std::chrono::steady_clock::now();
        skyline = ComputeSkylineSFS(m, backend);
        const double ms = MillisSince(start);
        wall_ms += ms;
        BenchReport::Get().AddCell(
            "skyline",
            std::string(DataDistributionName(cell.dist)) +
                " n=" + std::to_string(cell.n) +
                " d=" + std::to_string(cell.d) +
                " threads=" + std::to_string(cell.threads),
            KernelBackendName(backend), run,
            {{"wall_ms", ms},
             {"skyline_size", static_cast<double>(skyline.size())}});
      }
      wall_ms /= runs;
      if (backend == KernelBackend::kLegacy) {
        legacy_ms = wall_ms;
        reference = skyline;
      } else {
        CROWDSKY_CHECK(skyline == reference);
      }
      sktable.PrintCell(DataDistributionName(cell.dist));
      sktable.PrintCell(static_cast<int64_t>(cell.n));
      sktable.PrintCell(static_cast<int64_t>(cell.d));
      sktable.PrintCell(static_cast<int64_t>(cell.threads));
      sktable.PrintCell(KernelBackendName(backend));
      sktable.PrintCell(wall_ms);
      sktable.PrintCell(static_cast<int64_t>(skyline.size()));
      sktable.PrintCell(legacy_ms / wall_ms);
      sktable.EndRow();
    }
  }
  return 0;
}
