// Observability overhead: what the obs layer costs when it is off,
// counting, and tracing. Runs ParallelSL over a mid-sized synthetic
// dataset at each ObsLevel and measures wall time plus the recorded
// counter/trace volume. The disabled level must be free (the instrumented
// sites reduce to one null check), counters should cost low single-digit
// percent, and full tracing buys the Chrome timeline for a modest
// wall-clock premium. Emits BENCH_observability.json.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "core/crowdsky.h"

namespace {

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main() {
  using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
  JsonReportScope report("observability");
  const int runs = Runs();
  const int card = Scaled(400);
  std::printf(
      "Observability overhead: ParallelSL at each obs level (n=%d, "
      "%d runs per cell, %d threads)\n",
      card, runs, Threads());

  GeneratorOptions gen;
  gen.cardinality = card;
  gen.num_known = 3;
  gen.num_crowd = 2;
  gen.seed = 7;
  const Dataset ds = GenerateDataset(gen).ValueOrDie();

  const obs::ObsLevel levels[] = {obs::ObsLevel::kDisabled,
                                  obs::ObsLevel::kCounters,
                                  obs::ObsLevel::kFull};

  Table table({"level", "wall ms", "questions", "rounds", "counters",
               "trace events"});
  table.PrintHeader();

  for (const obs::ObsLevel level : levels) {
    double wall_ms = 0;
    int64_t questions = 0, rounds = 0, counters = 0, trace_events = 0;
    for (int run = 0; run < runs; ++run) {
      EngineOptions options;
      options.algorithm = Algorithm::kParallelSL;
      options.obs.level = level;
      const auto start = std::chrono::steady_clock::now();
      const auto r = RunSkylineQuery(ds, options);
      const double ms = MillisSince(start);
      r.status().CheckOK();
      wall_ms += ms;
      questions = r->algo.questions;
      rounds = r->algo.rounds;
      counters = static_cast<int64_t>(r->obs.counters.size());
      trace_events = r->obs.trace_events;
      BenchReport::Get().AddCell(
          "observability", std::string("n=") + std::to_string(card),
          obs::ObsLevelName(level), run,
          {{"wall_ms", ms},
           {"questions", static_cast<double>(r->algo.questions)},
           {"rounds", static_cast<double>(r->algo.rounds)},
           {"counters", static_cast<double>(counters)},
           {"trace_events", static_cast<double>(r->obs.trace_events)}});
    }
    table.PrintCell(obs::ObsLevelName(level));
    table.PrintCell(wall_ms / runs);
    table.PrintCell(questions);
    table.PrintCell(rounds);
    table.PrintCell(counters);
    table.PrintCell(trace_events);
    table.EndRow();
  }
  return 0;
}
