// Figure 7: number of questions over the anti-correlated distribution.
#include "questions_sweep.h"

int main() {
  crowdsky::bench::JsonReportScope report("fig7_questions_ant");
  crowdsky::bench::QuestionsFigure(
      "Figure 7", crowdsky::DataDistribution::kAntiCorrelated);
  return 0;
}
