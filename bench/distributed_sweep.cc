// Distributed sweep: what sharded execution buys (crowd-round latency) and
// what it costs (merge questions, recovery overhead) as shard count,
// data distribution and fault pressure vary.
//
//  * scaling — k ∈ {1,2,4,8} × {IND, ANT, COR} under a perfect oracle:
//    total questions stay flat (the merge imports shard-paid answers, so
//    only cross-shard pairs are paid again — the "cost saved" column is
//    the merge's free lookups), while rounds drop toward
//    max(shard rounds) + merge rounds,
//  * recovery — k = 4 with 0..4 shards killed at a round boundary: a
//    restarted shard resumes from its journal, so questions and dollars
//    are identical to the clean run and the overhead is wall time only,
//  * crowd faults — k ∈ {1,2,4,8} × marketplace transient-error rate:
//    shard restarts compose with the session-level retry path.
//
// Wall-clock cells vary with machine speed and are recorded for the
// trajectory, not for bit-exact regression comparison; every deterministic
// column (questions, rounds, dollars) is stable per seed. Emits
// BENCH_distributed.json.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_util.h"
#include "data/generator.h"
#include "dist/coordinator.h"
#include "dist/shard_runner.h"

namespace {

using namespace crowdsky;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode
using namespace crowdsky::bench;  // NOLINT(google-build-using-namespace): bench mains read like paper pseudocode

Dataset SweepDataset(DataDistribution distribution, uint64_t seed) {
  GeneratorOptions gen;
  gen.cardinality = Scaled(160);
  gen.num_known = 2;
  gen.num_crowd = 2;
  gen.distribution = distribution;
  gen.seed = seed;
  return GenerateDataset(gen).ValueOrDie();
}

/// Scratch root for every cell of this process; cells use disjoint
/// subdirectories and the whole tree is removed on exit.
const std::string& SweepRoot() {
  static const std::string root =
      (std::filesystem::temp_directory_path() /
       ("crowdsky_distributed_sweep." + std::to_string(getpid())))
          .string();
  return root;
}

dist::DistOptions BaseOptions(int k, const std::string& cell_tag) {
  dist::DistOptions opt;
  opt.shards = k;
  opt.engine.algorithm = Algorithm::kParallelSL;
  opt.engine.oracle = OracleKind::kPerfect;
  opt.engine.crowdsky.audit = true;  // shard.* rules run in every cell
  opt.run_dir = SweepRoot() + "/" + cell_tag;
  opt.supervisor.restart_backoff_base_seconds = 0.02;
  opt.supervisor.restart_backoff_max_seconds = 0.2;
  return opt;
}

struct CellResult {
  double wall_seconds = 0.0;
  int64_t questions = 0;
  int64_t rounds = 0;
  int64_t merge_questions = 0;
  int64_t merge_rounds = 0;
  int64_t merge_imported = 0;
  double cost_usd = 0.0;
  double cost_lost_usd = 0.0;
  int restarts = 0;
  int dead = 0;
};

CellResult RunCell(const Dataset& data, const dist::DistOptions& opt) {
  std::filesystem::remove_all(opt.run_dir);
  const auto start = std::chrono::steady_clock::now();
  const auto r = dist::RunShardedSkylineQuery(data, opt);
  r.status().CheckOK();
  CellResult out;
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  out.questions = r->total_questions;
  out.rounds = r->rounds;
  out.merge_questions = r->merge.questions;
  out.merge_rounds = r->merge.rounds;
  out.merge_imported = r->merge.imported_answers;
  out.cost_usd = r->total_cost_usd;
  out.cost_lost_usd = r->cost_lost_usd;
  out.restarts = r->restarts_total;
  out.dead = r->shards_dead;
  std::filesystem::remove_all(opt.run_dir);
  return out;
}

void RecordCell(const std::string& section, const std::string& setting,
                const std::string& method, int run, const CellResult& cell,
                int64_t baseline_questions) {
  BenchReport::Get().AddCell(
      section, setting, method, run,
      {{"wall_seconds", cell.wall_seconds},
       {"questions", static_cast<double>(cell.questions)},
       {"extra_questions_vs_k1",
        static_cast<double>(cell.questions - baseline_questions)},
       {"rounds", static_cast<double>(cell.rounds)},
       {"merge_questions", static_cast<double>(cell.merge_questions)},
       {"merge_rounds", static_cast<double>(cell.merge_rounds)},
       {"merge_imported", static_cast<double>(cell.merge_imported)},
       {"cost_usd", cell.cost_usd},
       {"cost_lost_usd", cell.cost_lost_usd},
       {"restarts", static_cast<double>(cell.restarts)},
       {"shards_dead", static_cast<double>(cell.dead)}});
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "--crowdsky_shard") {
    return crowdsky::dist::RunShardChildMode(argc, argv);
  }
  JsonReportScope report("distributed");
  const int runs = Runs();
  const std::vector<int> shard_counts = {1, 2, 4, 8};

  Section("shard count x distribution (perfect oracle, fault-free)");
  Table table({"dist", "k", "questions", "rounds", "merge q", "imported",
               "cost $", "wall s"});
  table.PrintHeader();
  const std::vector<DataDistribution> distributions = {
      DataDistribution::kIndependent, DataDistribution::kAntiCorrelated,
      DataDistribution::kCorrelated};
  for (const DataDistribution distribution : distributions) {
    const Dataset data = SweepDataset(distribution, 42);
    const char* dist_name = DataDistributionName(distribution);
    int64_t baseline_questions = 0;
    for (const int k : shard_counts) {
      CellResult cell;
      for (int run = 0; run < runs; ++run) {
        const dist::DistOptions opt = BaseOptions(
            k, std::string("scaling_") + dist_name + "_k" +
                   std::to_string(k) + "_r" + std::to_string(run));
        cell = RunCell(data, opt);
        if (k == 1) baseline_questions = cell.questions;
        RecordCell("scaling", "k=" + std::to_string(k), dist_name, run,
                   cell, baseline_questions);
      }
      table.PrintCell(dist_name);
      table.PrintCell(static_cast<int64_t>(k));
      table.PrintCell(cell.questions);
      table.PrintCell(cell.rounds);
      table.PrintCell(cell.merge_questions);
      table.PrintCell(cell.merge_imported);
      table.PrintCell(cell.cost_usd, 2);
      table.PrintCell(cell.wall_seconds, 3);
      table.EndRow();
    }
  }

  Section("recovery overhead (k=4, shards killed at a round boundary)");
  Table rtable({"killed", "restarts", "questions", "cost $", "lost $",
                "wall s"});
  rtable.PrintHeader();
  {
    const Dataset data = SweepDataset(DataDistribution::kIndependent, 42);
    int64_t clean_questions = 0;
    for (const int killed : {0, 1, 2, 4}) {
      CellResult cell;
      for (int run = 0; run < runs; ++run) {
        dist::DistOptions opt = BaseOptions(
            4, "recovery_f" + std::to_string(killed) + "_r" +
                   std::to_string(run));
        for (int shard = 0; shard < killed; ++shard) {
          opt.faults.push_back({shard, dist::ShardFaultKind::kKillAtRound,
                                /*value=*/1, /*tear_bytes=*/8,
                                /*generation=*/0});
        }
        cell = RunCell(data, opt);
        if (killed == 0) clean_questions = cell.questions;
        RecordCell("recovery", "killed=" + std::to_string(killed),
                   "ParallelSL", run, cell, clean_questions);
      }
      rtable.PrintCell(static_cast<int64_t>(killed));
      rtable.PrintCell(static_cast<int64_t>(cell.restarts));
      rtable.PrintCell(cell.questions);
      rtable.PrintCell(cell.cost_usd, 2);
      rtable.PrintCell(cell.cost_lost_usd, 2);
      rtable.PrintCell(cell.wall_seconds, 3);
      rtable.EndRow();
    }
  }

  Section("crowd fault rate x shard count (marketplace oracle)");
  Table ftable({"rate", "k", "questions", "rounds", "cost $", "restarts",
                "wall s"});
  ftable.PrintHeader();
  {
    const Dataset data = SweepDataset(DataDistribution::kIndependent, 42);
    for (const double rate : {0.0, 0.1, 0.25}) {
      int64_t baseline_questions = 0;
      for (const int k : shard_counts) {
        CellResult cell;
        for (int run = 0; run < runs; ++run) {
          dist::DistOptions opt = BaseOptions(
              k, "faults_" + std::to_string(rate) + "_k" +
                     std::to_string(k) + "_r" + std::to_string(run));
          opt.engine.oracle = OracleKind::kMarketplace;
          opt.engine.marketplace.faults.transient_error_rate = rate;
          opt.engine.marketplace.faults.worker_no_show_rate = rate / 2;
          opt.engine.retry.max_retries = 8;
          cell = RunCell(data, opt);
          if (k == 1) baseline_questions = cell.questions;
          RecordCell("crowd_faults",
                     "rate=" + std::to_string(rate) +
                         ",k=" + std::to_string(k),
                     "ParallelSL", run, cell, baseline_questions);
        }
        ftable.PrintCell(rate, 2);
        ftable.PrintCell(static_cast<int64_t>(k));
        ftable.PrintCell(cell.questions);
        ftable.PrintCell(cell.rounds);
        ftable.PrintCell(cell.cost_usd, 2);
        ftable.PrintCell(static_cast<int64_t>(cell.restarts));
        ftable.PrintCell(cell.wall_seconds, 3);
        ftable.EndRow();
      }
    }
  }

  std::filesystem::remove_all(SweepRoot());
  return 0;
}
