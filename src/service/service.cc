#include "service/service.h"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "audit/service_audit.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/engine.h"
#include "crowd/oracle.h"
#include "obs/observer.h"
#include "service/hit_packer.h"

namespace crowdsky::service {
namespace {

bool IsCrowdSkyFamily(Algorithm algorithm) {
  return algorithm == Algorithm::kCrowdSkySerial ||
         algorithm == Algorithm::kParallelDSet ||
         algorithm == Algorithm::kParallelSL;
}

std::size_t Idx(int i) { return static_cast<std::size_t>(i); }

/// The query's configured label, or "q<id>".
std::string QueryLabel(const ServiceQuery& query, int id) {
  if (!query.label.empty()) return query.label;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "q%d", id);
  return buf;
}

/// The pricing a query's questions are packed (and its engine run is
/// billed) under: the configured cost model with ω folded in, exactly as
/// the engine computes EngineResult::cost_usd.
AmtCostModel EffectivePricing(const EngineOptions& options) {
  AmtCostModel pricing = options.cost_model;
  pricing.workers_per_question = options.workers_per_question;
  return pricing;
}

/// \brief The scheduler behind one RunService call.
///
/// Epoch barrier protocol: every *active* query contributes exactly one
/// closed crowd round per epoch. A driver arriving at the barrier (from
/// the engine's round_callback) blocks until the epoch closes; the epoch
/// closes when every active query has either arrived or finished. A
/// finishing query therefore counts as an arrival — epoch E cannot close
/// while a query that will finish during E is still running — which makes
/// the epoch at which each query finishes (and hence each admission from
/// the queue, and hence the entire packing ledger) a pure function of the
/// submission list, independent of thread timing.
class Scheduler {
 public:
  Scheduler(const std::vector<ServiceQuery>& queries,
            const ServiceOptions& options, obs::RunObserver* observer)
      : queries_(queries), options_(options), observer_(observer) {}
  CROWDSKY_DISALLOW_COPY(Scheduler);

  Status Run(ServiceReport* report);

  // Dispatch-wrapper callbacks, invoked synchronously from query driver
  // threads on every paid question.
  void RegisterSlot(int query_id, const AmtCostModel& pricing) {
    MutexLock lock(mutex_);
    packer_.RegisterSlot(query_id, pricing);
  }
  void RouteAnswer(int query_id) {
    MutexLock lock(mutex_);
    packer_.RouteAnswer(query_id);
  }

  /// Round-callback hook: the calling query closed one crowd round.
  void ArriveAtRoundBarrier();

 private:
  /// Thread body of one admitted query.
  void RunQuery(int query_id);
  void FinishQuery(int query_id, Result<EngineResult> run);
  void AdmitLocked(int query_id) CROWDSKY_REQUIRES(mutex_);
  void CloseEpochLocked() CROWDSKY_REQUIRES(mutex_);

  void FillLedger(ServiceReport* report);
  Status AuditRun(const ServiceReport& report);

  const std::vector<ServiceQuery>& queries_;
  const ServiceOptions& options_;
  obs::RunObserver* observer_;  // null at ObsLevel::kDisabled

  /// Written before any thread is spawned, immutable afterwards.
  double budget_slice_usd_ = 0.0;
  int admitted_total_ = 0;
  ServiceReport* report_ = nullptr;

  Mutex mutex_;
  CondVar cv_;
  HitPacker packer_ CROWDSKY_GUARDED_BY(mutex_);
  std::deque<int> queue_ CROWDSKY_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_ CROWDSKY_GUARDED_BY(mutex_);
  int64_t epoch_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  int active_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  int arrived_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  int finished_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  int completed_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  int failed_ CROWDSKY_GUARDED_BY(mutex_) = 0;
  int rejected_ CROWDSKY_GUARDED_BY(mutex_) = 0;
};

/// \brief Transparent per-query dispatch wrapper (EngineOptions::
/// wrap_oracle contract): forwards every call to the query's own oracle
/// unchanged and synchronously, mirrors its stats, and reports each paid
/// question to the scheduler as a HIT slot plus a routed answer. It holds
/// no answer state of its own, so it cannot change what the query
/// computes — only what the service knows about it.
class PackedDispatchOracle : public CrowdOracle {
 public:
  PackedDispatchOracle(std::unique_ptr<CrowdOracle> inner,
                       Scheduler* scheduler, int query_id,
                       const AmtCostModel& pricing)
      : inner_(std::move(inner)),
        scheduler_(scheduler),
        query_id_(query_id),
        pricing_(pricing) {}

  Answer AnswerPair(const PairQuestion& q, const AskContext& ctx) override {
    // Paid attempts go through AnswerPairOutcome (the CrowdSession
    // contract); plain AnswerPair stays a transparent forward for any
    // other caller.
    const Answer answer = inner_->AnswerPair(q, ctx);
    stats_ = inner_->stats();
    return answer;
  }

  PairOutcome AnswerPairOutcome(const PairQuestion& q,
                                const AskContext& ctx) override {
    scheduler_->RegisterSlot(query_id_, pricing_);
    PairOutcome outcome = inner_->AnswerPairOutcome(q, ctx);
    stats_ = inner_->stats();
    scheduler_->RouteAnswer(query_id_);
    return outcome;
  }

  double AnswerUnary(int id, int attr, const AskContext& ctx) override {
    scheduler_->RegisterSlot(query_id_, pricing_);
    const double value = inner_->AnswerUnary(id, attr, ctx);
    stats_ = inner_->stats();
    scheduler_->RouteAnswer(query_id_);
    return value;
  }

  const FaultInjector* fault_injector() const override {
    return inner_->fault_injector();
  }

 private:
  std::unique_ptr<CrowdOracle> inner_;
  Scheduler* scheduler_;
  int query_id_;
  AmtCostModel pricing_;
};

void Scheduler::ArriveAtRoundBarrier() {
  MutexLock lock(mutex_);
  const int64_t my_epoch = epoch_;
  ++arrived_;
  if (arrived_ == active_) {
    CloseEpochLocked();
  } else {
    while (epoch_ == my_epoch) cv_.Wait(mutex_);
  }
}

void Scheduler::CloseEpochLocked() {
  packer_.CloseEpoch();
  arrived_ = 0;
  ++epoch_;
  cv_.NotifyAll();
}

void Scheduler::AdmitLocked(int query_id) {
  ++active_;
  report_->queries[Idx(query_id)].admitted = true;
  threads_.emplace_back(&Scheduler::RunQuery, this, query_id);
}

void Scheduler::RunQuery(int query_id) {
  const ServiceQuery& query = queries_[Idx(query_id)];
  QueryOutcome& outcome = report_->queries[Idx(query_id)];

  EngineOptions options = query.options;
  const AmtCostModel pricing = EffectivePricing(options);
  if (budget_slice_usd_ > 0.0 && IsCrowdSkyFamily(options.algorithm)) {
    const double own_cap = options.governor.max_cost_usd;
    options.governor.max_cost_usd =
        own_cap > 0.0 ? std::min(own_cap, budget_slice_usd_)
                      : budget_slice_usd_;
    outcome.budget_slice_usd = options.governor.max_cost_usd;
  }
  options.wrap_oracle = [this, query_id,
                         pricing](std::unique_ptr<CrowdOracle> inner)
      -> std::unique_ptr<CrowdOracle> {
    return std::make_unique<PackedDispatchOracle>(std::move(inner), this,
                                                  query_id, pricing);
  };
  const std::function<void(int64_t)> user_callback =
      query.options.round_callback;
  options.round_callback = [this, user_callback](int64_t rounds) {
    if (user_callback) user_callback(rounds);
    ArriveAtRoundBarrier();
  };

  auto span = obs::SpanIf(observer_, "service.query");
  Result<EngineResult> run = RunSkylineQuery(*query.dataset, options);
  span.End();
  FinishQuery(query_id, std::move(run));
}

void Scheduler::FinishQuery(int query_id, Result<EngineResult> run) {
  MutexLock lock(mutex_);
  QueryOutcome& outcome = report_->queries[Idx(query_id)];
  if (run.ok()) {
    outcome.result = std::move(run).ValueOrDie();
    outcome.status = Status::OK();
    // Every paid question of the run was packed, one slot per attempt:
    // the per-round ledger and the packer must agree exactly.
    int64_t asked = 0;
    for (const int64_t q : outcome.result.algo.questions_per_round) {
      asked += q;
    }
    CROWDSKY_CHECK_MSG(packer_.slots_for_query(query_id) == asked,
                       "service packer lost or invented question slots");
    ++completed_;
  } else {
    outcome.status = run.status();
    ++failed_;
  }
  --active_;
  ++finished_;
  if (!queue_.empty()) {
    const int next = queue_.front();
    queue_.pop_front();
    AdmitLocked(next);
  }
  // This finish may have been the arrival the open epoch was waiting for.
  if (active_ > 0 && arrived_ == active_) CloseEpochLocked();
  cv_.NotifyAll();
}

Status Scheduler::Run(ServiceReport* report) {
  report_ = report;
  const int n = static_cast<int>(queries_.size());
  report->queries.resize(Idx(n));
  for (int i = 0; i < n; ++i) {
    QueryOutcome& outcome = report->queries[Idx(i)];
    outcome.query_id = i;
    outcome.label = QueryLabel(queries_[Idx(i)], i);
  }

  auto run_span = obs::SpanIf(observer_, "service.run");
  {
    MutexLock lock(mutex_);
    const int admit_now = std::min(options_.max_concurrent, n);
    for (int i = admit_now; i < n; ++i) {
      if (options_.max_queue < 0 ||
          static_cast<int>(queue_.size()) < options_.max_queue) {
        queue_.push_back(i);
      } else {
        report->queries[Idx(i)].status = Status::BudgetExhausted(
            "service admission queue full (max_concurrent=" +
            std::to_string(options_.max_concurrent) +
            ", max_queue=" + std::to_string(options_.max_queue) + ")");
        ++rejected_;
      }
    }
    // Every non-rejected query is eventually admitted (each finish drains
    // the queue head), so the budget denominator is known up front.
    admitted_total_ = n - rejected_;
    if (options_.total_budget_usd > 0.0 && admitted_total_ > 0) {
      budget_slice_usd_ = options_.total_budget_usd / admitted_total_;
    }
    for (int i = 0; i < admit_now; ++i) AdmitLocked(i);
    while (finished_ < admitted_total_) cv_.Wait(mutex_);
    // Drivers close their final round at the barrier before returning, so
    // the packer is normally flush; a query that died mid-round must not
    // strand its siblings' open slots.
    if (packer_.open_epoch_nonempty()) CloseEpochLocked();
    for (std::thread& thread : threads_) thread.join();
  }
  run_span.End();

  FillLedger(report);
  if (options_.audit) CROWDSKY_RETURN_NOT_OK(AuditRun(*report));
  return Status::OK();
}

void Scheduler::FillLedger(ServiceReport* report) {
  MutexLock lock(mutex_);
  PackingLedger& ledger = report->packing;
  ledger.epochs = packer_.epochs();
  ledger.slots = packer_.slots_total();
  ledger.packed_hits = packer_.packed_hits();
  ledger.isolated_hits = packer_.isolated_hits();
  ledger.cost_packed_usd = packer_.packed_cost_usd();
  ledger.cost_isolated_usd = packer_.isolated_cost_usd();
  ledger.cost_saved_usd = ledger.cost_isolated_usd - ledger.cost_packed_usd;
  report->spans = packer_.spans();
  report->completed = completed_;
  report->failed = failed_;
  report->rejected = rejected_;

  for (QueryOutcome& outcome : report->queries) {
    outcome.slots = packer_.slots_for_query(outcome.query_id);
    if (outcome.admitted && outcome.status.ok()) {
      outcome.isolated_hits =
          EffectivePricing(queries_[Idx(outcome.query_id)].options)
              .PackedHitCount(outcome.result.algo.questions_per_round);
    }
  }

  if (observer_ != nullptr) {
    obs::Add(observer_->counter("service.queries_submitted"),
             static_cast<int64_t>(report->queries.size()));
    obs::Add(observer_->counter("service.queries_admitted"), admitted_total_);
    obs::Add(observer_->counter("service.queries_rejected"), rejected_);
    obs::Add(observer_->counter("service.queries_completed"), completed_);
    obs::Add(observer_->counter("service.queries_failed"), failed_);
    obs::Add(observer_->counter("service.epochs"), ledger.epochs);
    obs::Add(observer_->counter("service.slots"), ledger.slots);
    obs::Add(observer_->counter("service.packed_hits"), ledger.packed_hits);
    obs::Add(observer_->counter("service.isolated_hits"),
             ledger.isolated_hits);
    observer_->gauge("service.cost_packed_usd")->Set(ledger.cost_packed_usd);
    observer_->gauge("service.cost_isolated_usd")
        ->Set(ledger.cost_isolated_usd);
    observer_->gauge("service.cost_saved_usd")->Set(ledger.cost_saved_usd);
    report->counters = observer_->metrics().CounterSamples();
    report->gauges = observer_->metrics().GaugeSamples();
  }
}

Status Scheduler::AuditRun(const ServiceReport& report) {
  audit::ServicePackingSnapshot snapshot;
  for (const QueryOutcome& outcome : report.queries) {
    if (!outcome.admitted) {
      CROWDSKY_CHECK_MSG(outcome.slots == 0,
                         "rejected query reached the packer");
      continue;
    }
    if (!outcome.status.ok()) continue;  // failed at validation, no slots
    audit::ServicePackingSnapshot::Query query;
    query.query_id = outcome.query_id;
    query.cost_model = EffectivePricing(queries_[Idx(outcome.query_id)].options);
    query.questions_per_round = outcome.result.algo.questions_per_round;
    query.reported_cost_usd = outcome.result.cost_usd;
    query.slots = outcome.slots;
    query.routed_answers = [&] {
      MutexLock lock(mutex_);
      return packer_.routed_for_query(outcome.query_id);
    }();
    snapshot.queries.push_back(std::move(query));
  }
  for (const EpochClassSpan& span : report.spans) {
    audit::ServicePackingSnapshot::EpochSpan out;
    out.epoch = span.epoch;
    out.pricing = span.pricing;
    out.query_slots = span.query_slots;
    out.slots = span.slots;
    out.packed_hits = span.packed_hits;
    out.isolated_hits = span.isolated_hits;
    snapshot.spans.push_back(std::move(out));
  }
  snapshot.epochs = report.packing.epochs;
  snapshot.slots = report.packing.slots;
  snapshot.packed_hits = report.packing.packed_hits;
  snapshot.isolated_hits = report.packing.isolated_hits;
  snapshot.cost_packed_usd = report.packing.cost_packed_usd;
  snapshot.cost_isolated_usd = report.packing.cost_isolated_usd;
  snapshot.cost_saved_usd = report.packing.cost_saved_usd;
  snapshot.submitted = static_cast<int64_t>(report.queries.size());
  snapshot.admitted = admitted_total_;
  snapshot.rejected = report.rejected;
  snapshot.completed = report.completed;
  snapshot.failed = report.failed;
  snapshot.counters = report.counters;

  audit::AuditReport audit_report;
  audit::AuditServicePacking(snapshot, &audit_report);
  if (!audit_report.ok()) {
    return Status::FailedPrecondition("service audit failed: " +
                                      audit_report.ToString());
  }
  return Status::OK();
}

Status ValidateService(const std::vector<ServiceQuery>& queries,
                       const ServiceOptions& options) {
  if (options.max_concurrent < 1) {
    return Status::InvalidArgument("max_concurrent must be at least 1");
  }
  if (options.total_budget_usd < 0.0) {
    return Status::InvalidArgument("total_budget_usd must be >= 0");
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const std::string tag = "query " + std::to_string(i) + ": ";
    if (queries[i].dataset == nullptr) {
      return Status::InvalidArgument(tag + "dataset must not be null");
    }
    if (queries[i].options.wrap_oracle) {
      return Status::InvalidArgument(
          tag + "wrap_oracle is owned by the service dispatch path");
    }
    if (!queries[i].options.durability.dir.empty()) {
      return Status::InvalidArgument(
          tag + "durability is not supported under the service: a journal "
                "resume re-drives the oracle and would register phantom "
                "HIT slots through the dispatch wrapper");
    }
  }
  return Status::OK();
}

}  // namespace

Result<ServiceReport> RunService(const std::vector<ServiceQuery>& queries,
                                 const ServiceOptions& options) {
  CROWDSKY_RETURN_NOT_OK(ValidateService(queries, options));
  std::unique_ptr<obs::RunObserver> observer;
  if (options.obs_level != obs::ObsLevel::kDisabled) {
    observer = std::make_unique<obs::RunObserver>(options.obs_level);
  }
  ServiceReport report;
  Scheduler scheduler(queries, options, observer.get());
  CROWDSKY_RETURN_NOT_OK(scheduler.Run(&report));
  return report;
}

}  // namespace crowdsky::service
