// HitPacker: the cross-query HIT assembly line of the multi-query service.
//
// The paper's cost formula (Section 6.2, cost = 0.02·ω·Σ⌈|Qᵢ|/5⌉) rounds
// *each query's* partial HIT up separately: a round with 1 question
// costs a whole HIT. When many queries run concurrently, their same-round
// questions can share HITs — the batching-across-operations trick of
// *Human-powered Sorts and Joins* — and the ceiling is paid once per
// *epoch* (the service's global round) instead of once per query.
//
// Determinism contract: the packed ledger is a pure function of the
// per-query round profiles and the admission schedule, never of thread
// timing. Slots are registered per paid attempt as (query id, arrival
// order within the query); at epoch close the packer aggregates them as
// per-query counts inside each *pack class* (identical pricing: reward,
// ω, questions_per_hit — questions with different pricing can never share
// a HIT), iterated in (pack class, query id) order. The greedy fill is
// keyed by (query id, per-query sequence), so any thread interleaving of
// registrations produces the identical packing.
//
// The packer is not thread-safe by itself: the scheduler (service.cc)
// serializes every call under its admission mutex.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "crowd/cost_model.h"

namespace crowdsky::service {

/// Strict-weak order on pricing triples, used to group questions into
/// pack classes. Two queries' questions may share a HIT iff their
/// effective pricing (ω folded in) compares equal both ways.
struct PackClassLess {
  bool operator()(const AmtCostModel& a, const AmtCostModel& b) const {
    if (a.reward_per_hit != b.reward_per_hit) {
      return a.reward_per_hit < b.reward_per_hit;
    }
    if (a.workers_per_question != b.workers_per_question) {
      return a.workers_per_question < b.workers_per_question;
    }
    return a.questions_per_hit < b.questions_per_hit;
  }
};

/// One (epoch, pack class) posting span: every question the service
/// dispatched in this epoch under this pricing, packed greedily into
/// shared HITs. The per-query slot counts are kept (ascending query id)
/// so the service auditor can re-derive both the packed and the isolated
/// HIT count from the span alone.
struct EpochClassSpan {
  int64_t epoch = 0;
  AmtCostModel pricing;
  /// (query id, slots this query contributed), ascending query id.
  std::vector<std::pair<int, int64_t>> query_slots;
  int64_t slots = 0;        ///< Σ query_slots
  int64_t packed_hits = 0;  ///< pricing.PackedHitCount(slots)
  /// Σ_q pricing.PackedHitCount(slots_q) — what the same questions cost
  /// as isolated per-query rounds; ≥ packed_hits by the ceiling inequality.
  int64_t isolated_hits = 0;
};

/// \brief Packs paid questions from concurrent queries into shared HITs.
class HitPacker {
 public:
  HitPacker() = default;
  CROWDSKY_DISALLOW_COPY(HitPacker);

  /// Registers one paid question slot (a pair attempt or a unary
  /// question) for `query_id` in the open epoch, priced by the query's
  /// effective cost model.
  void RegisterSlot(int query_id, const AmtCostModel& pricing);

  /// Records that the answer produced for a registered slot was returned
  /// to `query_id` — the demultiplex half of the dispatch. The service
  /// auditor proves routed == registered per query, so a misrouted answer
  /// is a detectable accounting violation rather than silent corruption.
  void RouteAnswer(int query_id);

  /// Closes the open epoch: greedily fills HITs per pack class and
  /// appends one EpochClassSpan per non-empty class. An epoch with no
  /// registered slots closes without a trace (free barrier generations —
  /// e.g. every remaining query finishing mid-epoch — cost nothing).
  /// Returns the HITs packed in this epoch.
  int64_t CloseEpoch();

  /// True iff slots were registered since the last CloseEpoch().
  bool open_epoch_nonempty() const { return !open_.empty(); }

  // --- ledger ------------------------------------------------------------

  /// Every closed (epoch, pack class) span, in close order.
  const std::vector<EpochClassSpan>& spans() const { return spans_; }
  /// Epochs that actually carried questions.
  int64_t epochs() const { return epochs_; }
  int64_t slots_total() const { return slots_total_; }
  int64_t packed_hits() const { return packed_hits_; }
  /// What the same spans would have cost as isolated per-query rounds.
  int64_t isolated_hits() const { return isolated_hits_; }
  /// Dollar figures, computed once per call from the integer HIT ledgers
  /// (one multiply per span — no running dollar accumulation in the
  /// packing hot path).
  double packed_cost_usd() const;
  double isolated_cost_usd() const;

  /// Slots registered for one query across all epochs (0 if unknown id).
  int64_t slots_for_query(int query_id) const;
  /// Answers routed back to one query.
  int64_t routed_for_query(int query_id) const;

 private:
  /// Open epoch: pack class -> query id -> slots. std::map keeps every
  /// iteration deterministic regardless of registration interleaving.
  std::map<AmtCostModel, std::map<int, int64_t>, PackClassLess> open_;
  std::vector<EpochClassSpan> spans_;
  std::map<int, int64_t> slots_per_query_;
  std::map<int, int64_t> routed_per_query_;
  int64_t epochs_ = 0;
  int64_t slots_total_ = 0;
  int64_t packed_hits_ = 0;
  int64_t isolated_hits_ = 0;
};

}  // namespace crowdsky::service
