// Configuration and report types of the multi-query crowd service.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/engine.h"
#include "obs/observer.h"
#include "service/hit_packer.h"

namespace crowdsky::service {

/// One query submitted to the service: a dataset plus the full per-query
/// engine configuration (algorithm, oracle, seed, governor, ...). The
/// dataset must outlive RunService. `options.wrap_oracle`,
/// `options.round_callback` and `options.durability` must be unset — the
/// service owns the dispatch seam and the round barrier, and a resumed
/// journal replay cannot pass through a packing wrapper (the engine
/// rejects that combination).
struct ServiceQuery {
  const Dataset* dataset = nullptr;
  EngineOptions options;
  /// Display label for reports and spans ("q3" when empty).
  std::string label;
};

/// Service-level knobs (per-query knobs live in ServiceQuery::options).
struct ServiceOptions {
  /// Queries running at once; each active query gets a dedicated driver
  /// thread that blocks at the epoch barrier between crowd rounds.
  int max_concurrent = 4;
  /// Submissions beyond max_concurrent wait in an admission queue of this
  /// length; once it is full, further submissions are *rejected* in
  /// submission order (their QueryOutcome carries a BudgetExhausted
  /// status and no result). Negative = unbounded queue, never reject.
  int max_queue = -1;
  /// When positive, a service-wide dollar budget divided evenly across
  /// admitted queries: each CrowdSky-family query's governor dollar cap is
  /// tightened to min(its own cap, slice). Baseline/unary queries do not
  /// support governing and keep their configured options.
  double total_budget_usd = 0.0;
  /// Run the service.* invariant audit over the packing ledger after every
  /// run and fail the report on violation.
  bool audit = false;
  /// Service-level observability (per-query obs stays per-query). With
  /// kCounters the service.* counter catalog is collected; kFull adds
  /// wall-clock spans per query and per run.
  obs::ObsLevel obs_level = obs::ObsLevel::kDisabled;
};

/// What happened to one submitted query. Outcomes are indexed by query id
/// == position in the submission vector, independent of completion order.
struct QueryOutcome {
  int query_id = -1;
  std::string label;
  /// False iff the admission queue overflowed (status explains).
  bool admitted = false;
  /// OK iff the engine run succeeded; rejected or failed queries carry
  /// the reason here and a default-constructed result.
  Status status;
  EngineResult result;
  /// The governor dollar cap this query ran under after budget slicing
  /// (0 = no cap applied).
  double budget_slice_usd = 0.0;
  /// Paid question slots this query contributed to packed HITs (== its
  /// Σ questions_per_round when the run succeeded).
  int64_t slots = 0;
  /// HITs this query's rounds would have cost in isolation.
  int64_t isolated_hits = 0;
};

/// The service-wide packing ledger: what the shared HITs cost versus what
/// the same questions would have cost as isolated per-query rounds.
struct PackingLedger {
  int64_t epochs = 0;         ///< epochs that carried questions
  int64_t slots = 0;          ///< total paid question slots dispatched
  int64_t packed_hits = 0;    ///< HITs actually posted (shared)
  int64_t isolated_hits = 0;  ///< Σ per-query per-round ⌈·⌉ HITs
  double cost_packed_usd = 0.0;
  double cost_isolated_usd = 0.0;
  /// cost_isolated_usd - cost_packed_usd (≥ 0 by the ceiling inequality).
  double cost_saved_usd = 0.0;
};

/// Output of one RunService call.
struct ServiceReport {
  /// One outcome per submitted query, by submission index.
  std::vector<QueryOutcome> queries;
  PackingLedger packing;
  /// Every closed (epoch, pack class) span — the audit trail behind the
  /// ledger totals.
  std::vector<EpochClassSpan> spans;
  int completed = 0;  ///< queries that ran to an OK EngineResult
  int failed = 0;     ///< admitted queries whose engine run failed
  int rejected = 0;   ///< queries turned away at admission
  /// Service-level observability dump (empty at kDisabled), same shape as
  /// EngineResult::ObsInfo counters/gauges: sorted by name.
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
};

}  // namespace crowdsky::service
