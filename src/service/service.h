// Multi-query crowd service: many concurrent skyline queries, one shared
// crowd, cross-query HIT packing.
//
// RunService admits up to ServiceOptions::max_concurrent queries at once
// (the rest wait in a bounded queue), runs each on a dedicated driver
// thread through the ordinary engine, and intercepts every paid question
// at the oracle boundary with a transparent dispatch wrapper. Between
// crowd rounds the drivers meet at an *epoch barrier*: all questions the
// active queries asked in the epoch are packed into shared HITs (per pack
// class — identical effective pricing), and the service ledger records
// what the sharing saved versus isolated per-query rounds.
//
// Determinism: per-query results are bit-identical to running the same
// query alone — each query keeps its own oracle, random streams and
// session, and the wrapper forwards synchronously on the query's own
// thread — and the packing ledger itself is a pure function of the
// submission list and ServiceOptions, independent of thread interleaving
// (see DESIGN.md "Multi-query service & HIT packing" for the argument).
#pragma once

#include <vector>

#include "common/result.h"
#include "service/options.h"

namespace crowdsky::service {

/// Runs every submitted query to completion (or rejection) and returns
/// the per-query outcomes plus the service packing ledger. Fails on
/// invalid service options or on a query that pre-configures the
/// engine seams the service owns (wrap_oracle, durability).
Result<ServiceReport> RunService(const std::vector<ServiceQuery>& queries,
                                 const ServiceOptions& options = {});

}  // namespace crowdsky::service
