#include "service/hit_packer.h"

#include "common/macros.h"

namespace crowdsky::service {

void HitPacker::RegisterSlot(int query_id, const AmtCostModel& pricing) {
  CROWDSKY_CHECK(query_id >= 0);
  CROWDSKY_CHECK(pricing.questions_per_hit > 0);
  ++open_[pricing][query_id];
  ++slots_per_query_[query_id];
  ++slots_total_;
}

void HitPacker::RouteAnswer(int query_id) {
  CROWDSKY_CHECK(query_id >= 0);
  ++routed_per_query_[query_id];
}

int64_t HitPacker::CloseEpoch() {
  if (open_.empty()) return 0;
  int64_t epoch_hits = 0;
  for (const auto& [pricing, per_query] : open_) {
    EpochClassSpan span;
    span.epoch = epochs_;
    span.pricing = pricing;
    span.query_slots.reserve(per_query.size());
    for (const auto& [query_id, slots] : per_query) {
      CROWDSKY_CHECK(slots > 0);
      span.query_slots.emplace_back(query_id, slots);
      span.slots += slots;
      span.isolated_hits += pricing.PackedHitCount(slots);
    }
    span.packed_hits = pricing.PackedHitCount(span.slots);
    CROWDSKY_CHECK(span.packed_hits <= span.isolated_hits);
    epoch_hits += span.packed_hits;
    packed_hits_ += span.packed_hits;
    isolated_hits_ += span.isolated_hits;
    spans_.push_back(std::move(span));
  }
  open_.clear();
  ++epochs_;
  return epoch_hits;
}

double HitPacker::packed_cost_usd() const {
  double usd = 0.0;
  for (const EpochClassSpan& span : spans_) {
    usd += span.pricing.reward_per_hit * span.pricing.workers_per_question *
           static_cast<double>(span.packed_hits);
  }
  return usd;
}

double HitPacker::isolated_cost_usd() const {
  double usd = 0.0;
  for (const EpochClassSpan& span : spans_) {
    usd += span.pricing.reward_per_hit * span.pricing.workers_per_question *
           static_cast<double>(span.isolated_hits);
  }
  return usd;
}

int64_t HitPacker::slots_for_query(int query_id) const {
  const auto it = slots_per_query_.find(query_id);
  return it == slots_per_query_.end() ? 0 : it->second;
}

int64_t HitPacker::routed_for_query(int query_id) const {
  const auto it = routed_per_query_.find(query_id);
  return it == routed_per_query_.end() ? 0 : it->second;
}

}  // namespace crowdsky::service
