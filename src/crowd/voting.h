// Majority voting over multiple workers per question (Section 5).
//
// StaticVoting assigns the same ω workers to every question. DynamicVoting
// assigns ω+2 / ω / ω−2 workers depending on where the question's
// freq(u,v) falls relative to two thresholds α < β derived from the
// dataset's pair-frequency distribution — more workers for the questions
// whose (possibly wrong) answers would propagate furthest through the
// preference tree.
#pragma once

#include <cstddef>
#include <vector>

#include "common/macros.h"

namespace crowdsky {

class DominanceStructure;
class Rng;

/// How the number of workers per question is chosen.
class VotingPolicy {
 public:
  /// ω workers for every question. ω must be a positive odd number.
  static VotingPolicy MakeStatic(int workers);

  /// Dynamic assignment per Section 5: given the distribution of positive
  /// pair frequencies of `structure` (estimated by sampling), questions
  /// with freq below the `alpha_quantile` get ω−2 workers, above the
  /// `beta_quantile` get ω+2, and ω otherwise. The default quantiles are
  /// calibrated so that a CrowdSky run consumes the same total worker
  /// budget as static voting (the adaptive question mix skews toward
  /// high-frequency pairs, so the quantiles sit above the naive 0.3/0.7).
  static VotingPolicy MakeDynamic(int workers,
                                  const DominanceStructure& structure,
                                  Rng* rng, double alpha_quantile = 0.5,
                                  double beta_quantile = 0.9);

  /// Dynamic assignment with explicit thresholds (freq < alpha → ω−2,
  /// freq >= beta → ω+2).
  static VotingPolicy MakeDynamicWithThresholds(int workers, size_t alpha,
                                                size_t beta);

  /// Number of workers to assign to a question of the given importance.
  int WorkersFor(size_t freq) const;

  bool is_dynamic() const { return dynamic_; }
  int base_workers() const { return base_workers_; }
  size_t alpha() const { return alpha_; }
  size_t beta() const { return beta_; }

 private:
  VotingPolicy(int workers, bool dynamic, size_t alpha, size_t beta);

  int base_workers_;
  bool dynamic_;
  size_t alpha_ = 0;
  size_t beta_ = 0;
};

/// Probability that a majority vote of `omega` independent workers, each
/// correct with probability p, yields the correct answer (the binomial
/// expression of Section 5). `omega` must be positive and odd.
double MajorityCorrectProbability(int omega, double p);

}  // namespace crowdsky
