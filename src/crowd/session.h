// CrowdSession: the bookkeeping layer every crowd-enabled algorithm talks
// through. It owns
//
//  * the question cache — a (attr, u, v) -> answer memo guaranteeing that
//    no pair-wise question is ever paid for twice (tournament replays,
//    transitivity lookups, overlapping evaluators in ParallelSL),
//  * round accounting — questions asked between two EndRound() calls share
//    one crowd round (Section 2.1's latency model: a round is a fixed
//    amount of wall-clock time in which any number of *independent*
//    questions run in parallel),
//  * the per-round question counts that the AMT cost model consumes.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crowd/oracle.h"
#include "crowd/question.h"

namespace crowdsky {

/// Session-side counters (complementing OracleStats).
struct SessionStats {
  int64_t questions = 0;    ///< distinct pair questions sent to the crowd
  int64_t cache_hits = 0;   ///< asks answered from the memo (free)
  int64_t rounds = 0;       ///< crowd rounds consumed
  int64_t unary_questions = 0;
};

/// \brief Cache + round accounting wrapper around a CrowdOracle.
class CrowdSession {
 public:
  /// The session does not own the oracle.
  explicit CrowdSession(CrowdOracle* oracle) : oracle_(oracle) {
    CROWDSKY_CHECK(oracle != nullptr);
  }
  CROWDSKY_DISALLOW_COPY(CrowdSession);

  /// Caps the number of paid questions (pair + unary). Asking past the
  /// budget is a programming error; callers must check CanAsk() first.
  /// A negative budget (the default) means unlimited.
  void SetQuestionBudget(int64_t budget) { budget_ = budget; }
  /// True iff at least one more paid question fits the budget. Cached
  /// answers are always free.
  bool CanAsk() const {
    return budget_ < 0 ||
           stats_.questions + stats_.unary_questions < budget_;
  }

  /// Asks the pair-wise question (u, v) on crowd attribute `attr`
  /// (canonicalized internally; the returned answer is oriented so that
  /// kFirstPreferred means `u` preferred). Cached answers are returned
  /// without contacting the crowd and consume no round capacity.
  Answer Ask(int attr, int u, int v, const AskContext& ctx = {});

  /// True iff the question is already answered in the cache.
  bool IsCached(int attr, int u, int v) const;

  /// Asks a unary question (value estimate); not cached (each tuple is
  /// asked once by construction in the unary baseline).
  double AskUnary(int id, int attr, const AskContext& ctx = {});

  /// Closes the current round if any questions were asked in it. Serial
  /// drivers call this after every ask; parallel drivers after each batch.
  void EndRound();

  const SessionStats& stats() const { return stats_; }
  const OracleStats& oracle_stats() const { return oracle_->stats(); }
  /// Number of questions in each closed round, in order.
  const std::vector<int64_t>& questions_per_round() const {
    return questions_per_round_;
  }
  /// Questions asked in the currently open round.
  int64_t open_round_questions() const { return open_round_questions_; }

  /// Every *paid* pair question in ask order, canonical orientation.
  /// Consumed by the invariant auditor ("no pair is ever paid for twice");
  /// cache hits and unary questions are not recorded here.
  const std::vector<PairQuestion>& paid_questions() const {
    return paid_questions_;
  }
  /// The configured question budget (negative = unlimited).
  int64_t question_budget() const { return budget_; }

 private:
  CrowdOracle* oracle_;
  std::unordered_map<PairQuestion, Answer, PairQuestionHash> cache_;
  SessionStats stats_;
  std::vector<int64_t> questions_per_round_;
  std::vector<PairQuestion> paid_questions_;
  int64_t open_round_questions_ = 0;
  int64_t budget_ = -1;
};

}  // namespace crowdsky
