// CrowdSession: the bookkeeping layer every crowd-enabled algorithm talks
// through. It owns
//
//  * the question cache — a (attr, u, v) -> answer memo guaranteeing that
//    no pair-wise question is ever paid for twice (tournament replays,
//    transitivity lookups, overlapping evaluators in ParallelSL),
//  * round accounting — questions asked between two EndRound() calls share
//    one crowd round (Section 2.1's latency model: a round is a fixed
//    amount of wall-clock time in which any number of *independent*
//    questions run in parallel),
//  * the per-round question counts that the AMT cost model consumes,
//  * the resilient asking layer — a failed attempt (transient platform
//    error, expired HIT, vote set below the majority floor) is requeued
//    with a capped retry count and round-based backoff; each retry is a
//    *paid* attempt, logged as a RetryEvent so the invariant auditor can
//    verify that no question is paid twice without a recorded retry,
//  * optional durability — with a journal attached (AttachJournal) every
//    resolved question, unary ask and closed round is appended to the
//    write-ahead answer journal the moment it happens; after a crash,
//    RestoreFromJournal folds the checkpointed prefix of the recovered
//    journal straight back into this state and queues the tail as
//    *credits*: the resumed run re-executes deterministically, and each
//    ask that the dead process already paid for draws its attempt
//    outcomes from the matching credit instead of the oracle — same
//    accounting code path, no oracle call, nothing paid twice, nothing
//    re-appended.
#pragma once

#include <algorithm>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/governor.h"
#include "crowd/oracle.h"
#include "crowd/question.h"
#include "obs/observer.h"
#include "persist/journal.h"

namespace crowdsky {

/// Session-side counters (complementing OracleStats). Everything below
/// `unary_questions` stays 0 on a fault-free run.
struct SessionStats {
  int64_t questions = 0;    ///< paid pair-question attempts (retries incl.)
  int64_t cache_hits = 0;   ///< asks answered from the memo (free)
  int64_t rounds = 0;       ///< crowd rounds consumed
  int64_t unary_questions = 0;
  int64_t retries = 0;            ///< failed attempts that were re-asked
  int64_t degraded_quorum = 0;    ///< answers accepted below full quorum
  int64_t failed_attempts = 0;    ///< paid attempts yielding no answer
  int64_t unresolved_questions = 0;  ///< questions given up on (retry cap
                                     ///< or budget mid-retry)
  int64_t backoff_rounds = 0;  ///< latency-only rounds lost to retry
                               ///< backoff and expired HITs
};

/// How the session reacts to a failed question attempt.
struct RetryPolicy {
  /// Extra paid attempts allowed per question after the first one fails.
  int max_retries = 3;
  /// Requeue latency before retry k: backoff_base_rounds << (k-1), capped
  /// at max_backoff_rounds. Accounted in SessionStats::backoff_rounds
  /// (pure latency — empty rounds cost nothing under the AMT model).
  int backoff_base_rounds = 1;
  int max_backoff_rounds = 8;
};

/// int64 addition that clamps at the numeric limits instead of wrapping.
inline int64_t SaturatingAdd(int64_t a, int64_t b) {
  int64_t out;
  if (__builtin_add_overflow(a, b, &out)) {
    return b > 0 ? std::numeric_limits<int64_t>::max()
                 : std::numeric_limits<int64_t>::min();
  }
  return out;
}

/// Latency rounds charged for requeueing after failed attempt
/// `failed_attempt` (0-based): backoff_base_rounds << failed_attempt,
/// capped at max_backoff_rounds. The shift is bounded so that arbitrarily
/// large retry caps cannot overflow (base < 2^31 and shift <= 30 keep the
/// raw product below 2^61 before the cap applies).
inline int64_t RetryBackoffRounds(const RetryPolicy& policy,
                                  int failed_attempt) {
  const int shift = std::min(failed_attempt, 30);
  const int64_t raw = static_cast<int64_t>(policy.backoff_base_rounds)
                      << shift;
  return std::min<int64_t>(raw, policy.max_backoff_rounds);
}

/// One recorded retry: attempt `attempt` (1-based) of `question` was paid
/// for because the previous attempt failed for `reason`.
struct RetryEvent {
  enum class Reason {
    kTransientError,
    kHitExpired,
    kInsufficientQuorum,
  };
  PairQuestion question;  ///< canonical orientation
  int attempt = 0;
  Reason reason = Reason::kInsufficientQuorum;
};

/// Outcome of a best-effort ask.
enum class AskStatus {
  kAnswered,    ///< answer available (cached or freshly aggregated)
  kUnresolved,  ///< retry cap / budget exhausted; no answer exists
};

/// \brief Cache + round accounting + retry wrapper around a CrowdOracle.
class CrowdSession {
 public:
  /// The session does not own the oracle.
  explicit CrowdSession(CrowdOracle* oracle) : oracle_(oracle) {
    CROWDSKY_CHECK(oracle != nullptr);
  }
  CROWDSKY_DISALLOW_COPY(CrowdSession);

  /// Caps the number of paid questions (pair attempts + unary). Asking
  /// past the budget is a programming error; callers must check CanAsk()
  /// first. A negative budget (the default) means unlimited.
  ///
  /// The budget's unit is *questions*, not worker answers: dynamic voting
  /// (Section 5) assigns ω+2 workers to high-frequency questions, so one
  /// paid question can consume more worker-answers than the static ω
  /// suggests. This matches the AMT cost model, which prices per-question
  /// HITs with a fixed ω multiplier — budgets therefore stay comparable
  /// across voting policies, and worker_answers may legitimately exceed
  /// budget * ω. Failed attempts and retries each consume one unit.
  ///
  /// Fresh-session-only: changing the budget after any crowd activity
  /// (including a journal restore) would invalidate CanAsk() decisions
  /// the run already acted on.
  void SetQuestionBudget(int64_t budget) {
    CROWDSKY_CHECK_MSG(FreshSession(),
                       "SetQuestionBudget is fresh-session-only: set the "
                       "budget before any question is asked or replayed");
    budget_ = budget;
  }
  /// True iff the next paid question is both within the budget and funded
  /// by the governor (if one is attached). Cached answers are always
  /// free, and journal credits — questions the crashed run already paid
  /// for — are consumed without consulting the governor: replay spends no
  /// new money, and an uninterruptible replay is what keeps the on-disk
  /// record stream a clean prefix across governed resumes.
  bool CanAsk() const {
    return BudgetCanAsk() &&
           (governor_ == nullptr || !credits_.empty() ||
            governor_->CanFundQuestion(open_round_questions_));
  }

  /// Configures the retry/requeue behaviour for failed attempts.
  /// Fresh-session-only, like SetQuestionBudget: the retry cap shapes
  /// journal records and the governor's worst-case reservation, so it
  /// cannot change once either has observed it.
  void SetRetryPolicy(const RetryPolicy& policy) {
    CROWDSKY_CHECK(policy.max_retries >= 0 &&
                   policy.backoff_base_rounds >= 0 &&
                   policy.max_backoff_rounds >= 0);
    CROWDSKY_CHECK_MSG(FreshSession(),
                       "SetRetryPolicy is fresh-session-only: set the "
                       "policy before any question is asked or replayed");
    retry_ = policy;
  }
  const RetryPolicy& retry_policy() const { return retry_; }

  struct AskResult {
    AskStatus status = AskStatus::kAnswered;
    Answer answer = Answer::kEqual;  ///< valid iff status == kAnswered
    bool paid = false;  ///< at least one paid attempt happened in this call
  };

  /// Best-effort ask of the pair-wise question (u, v) on crowd attribute
  /// `attr` (canonicalized internally; the returned answer is oriented so
  /// that kFirstPreferred means `u` preferred). Cached answers are
  /// returned without contacting the crowd and consume no round capacity.
  /// Failed attempts are retried up to the policy's cap; when the cap (or
  /// the question budget, mid-retry) runs out the question is marked
  /// unresolved — every later TryAsk of it returns kUnresolved for free.
  AskResult TryAsk(int attr, int u, int v, const AskContext& ctx = {});

  /// Strict ask: like TryAsk but treats an unresolved question as a
  /// programming error. The right call for fault-free oracles and for
  /// algorithms with no degraded path (the sort baselines).
  Answer Ask(int attr, int u, int v, const AskContext& ctx = {});

  /// True iff the question is already answered in the cache.
  bool IsCached(int attr, int u, int v) const;
  /// True iff the question was given up on (retry cap exhausted).
  bool IsUnresolved(int attr, int u, int v) const;

  /// Pre-seeds the answer cache with an already-known answer (oriented as
  /// asked; canonicalized internally). Seeded answers behave exactly like
  /// cache entries: later asks of the pair are free lookups, never paid
  /// and never journaled. This is how the sharded merge phase (src/dist)
  /// imports the answers the shard runs already paid for, so
  /// cross-validation only pays for genuinely new cross-shard pairs.
  /// Seeding the same pair twice with the same answer is a no-op;
  /// contradictory re-seeding is a programming error. Call before the
  /// algorithm runs (and after RestoreFromJournal on a resume — replay
  /// rebuilds the paid cache first, then the seeds are layered back in).
  void SeedAnswer(int attr, int u, int v, Answer answer);
  /// Answers seeded through SeedAnswer (free by construction).
  int64_t seeded_answers() const { return seeded_answers_; }

  /// Every cached (question, answer) pair in canonical orientation,
  /// sorted by (attr, first, second) for determinism (like
  /// unresolved_questions(), the hash-map copy is sorted before anything
  /// observes the order). Paid answers, journal-replayed answers and
  /// seeded imports all appear; the sharded coordinator uses this to
  /// export a shard's resolved pairs to the merge phase.
  std::vector<std::pair<PairQuestion, Answer>> CachedAnswers() const {
    std::vector<std::pair<PairQuestion, Answer>> out(cache_.begin(),
                                                     cache_.end());
    std::sort(out.begin(), out.end(),
              [](const std::pair<PairQuestion, Answer>& a,
                 const std::pair<PairQuestion, Answer>& b) {
                if (a.first.attr != b.first.attr)
                  return a.first.attr < b.first.attr;
                if (a.first.first != b.first.first)
                  return a.first.first < b.first.first;
                return a.first.second < b.first.second;
              });
    return out;
  }

  /// Registers a callback invoked after every round actually closed
  /// (EndRound calls with zero open questions do not fire it), with the
  /// total closed-round count. The callback must not ask questions. The
  /// shard runner (src/dist) uses it to stream progress heartbeats; it is
  /// pure observation and never feeds back into the run.
  void SetRoundCallback(std::function<void(int64_t rounds_closed)> cb) {
    round_callback_ = std::move(cb);
  }

  /// Asks a unary question (value estimate); not cached (each tuple is
  /// asked once by construction in the unary baseline).
  double AskUnary(int id, int attr, const AskContext& ctx = {});

  /// Closes the current round if any questions were asked in it. Serial
  /// drivers call this after every ask; parallel drivers after each batch.
  void EndRound();

  const SessionStats& stats() const { return stats_; }
  const OracleStats& oracle_stats() const { return oracle_->stats(); }
  /// Number of questions in each closed round, in order.
  const std::vector<int64_t>& questions_per_round() const {
    return questions_per_round_;
  }
  /// Questions asked in the currently open round.
  int64_t open_round_questions() const { return open_round_questions_; }

  /// Every *paid* pair attempt in ask order, canonical orientation. A
  /// question appears once per paid attempt, so retried questions repeat;
  /// the invariant auditor matches repeats against retry_events() ("no
  /// pair is ever paid for twice without a recorded retry"). Cache hits
  /// and unary questions are not recorded here.
  const std::vector<PairQuestion>& paid_questions() const {
    return paid_questions_;
  }
  /// Every retry in pay order (one entry per re-asked attempt).
  const std::vector<RetryEvent>& retry_events() const {
    return retry_events_;
  }
  /// The questions given up on, canonical, sorted for determinism.
  std::vector<PairQuestion> unresolved_questions() const {
    std::vector<PairQuestion> out(unresolved_.begin(), unresolved_.end());
    std::sort(out.begin(), out.end(), [](const PairQuestion& a,
                                         const PairQuestion& b) {
      if (a.attr != b.attr) return a.attr < b.attr;
      if (a.first != b.first) return a.first < b.first;
      return a.second < b.second;
    });
    return out;
  }
  /// The configured question budget (negative = unlimited).
  int64_t question_budget() const { return budget_; }
  /// The budget half of CanAsk(), with no governor consultation (and so
  /// no side effects — CanFundQuestion counts denials). Post-run
  /// reporting and the auditor use this; RunAskLoop's entry precondition
  /// and its mid-retry give-up use it because a question the governor
  /// admitted is *funded* — its worst-case retry chain was reserved up
  /// front — so the governor never interrupts an attempt sequence (which
  /// would fork the journal's record shape and break
  /// resume-under-a-larger-cap).
  bool BudgetCanAsk() const {
    return budget_ < 0 ||
           stats_.questions + stats_.unary_questions < budget_;
  }

  // --- observability ----------------------------------------------------

  /// Attaches the run's observer (not owned; must outlive the session) and
  /// resolves all counter handles once, so the ask hot path only touches
  /// pre-resolved (possibly null) pointers. The counters deliberately
  /// mirror SessionStats through an independent increment path — the
  /// invariant auditor cross-checks the two ledgers, so a missed or doubled
  /// increment on either side is a detectable bug, not silent drift.
  /// Call before RestoreFromJournal so replayed work is counted too.
  void AttachObserver(obs::RunObserver* observer);
  obs::RunObserver* observer() const { return obs_; }

  // --- governance --------------------------------------------------------

  /// Attaches the run governor (not owned; must outlive the session).
  /// Every subsequent paid ask consults it through CanAsk(), and every
  /// closed round feeds its cost/stall ledgers. Fresh-session-only and
  /// before RestoreFromJournal, so replayed rounds are metered too and a
  /// resumed run's cost ledger covers the whole run, not just the part
  /// after the crash.
  void AttachGovernor(RunGovernor* governor) {
    CROWDSKY_CHECK(governor != nullptr);
    CROWDSKY_CHECK_MSG(governor_ == nullptr, "governor already attached");
    CROWDSKY_CHECK_MSG(FreshSession(),
                       "attach the governor before any crowd activity (and "
                       "before RestoreFromJournal) so its ledgers cover the "
                       "whole run");
    governor_ = governor;
  }
  /// The attached governor (not owned), or nullptr.
  RunGovernor* governor() const { return governor_; }

  // --- durability -------------------------------------------------------

  /// Attaches the write-ahead answer journal. Not owned; must outlive the
  /// session. Every subsequently resolved question / unary ask / closed
  /// round is appended synchronously (a failed append aborts the run
  /// rather than continuing undurably).
  void AttachJournal(persist::JournalWriter* journal) {
    CROWDSKY_CHECK(journal != nullptr);
    CROWDSKY_CHECK_MSG(journal_ == nullptr, "journal already attached");
    journal_ = journal;
  }
  /// The attached journal (not owned), or nullptr. Const because the
  /// session does not own it — the auditor syncs and re-reads it through
  /// a const session reference.
  persist::JournalWriter* journal() const { return journal_; }

  /// Appends the governor's stop marker as the journal's final record.
  /// Must be called at a quiescent point — no open round, every credit
  /// consumed — so the epilogue (the preceding kRoundEnd plus this
  /// record) is exactly what PrepareResume truncates to extend the run
  /// under a larger budget. Goes through the normal append path so the
  /// durable-position and records-appended ledgers stay consistent.
  void JournalTermination(const TerminationReport& report);

  /// Rebuilds session state from a recovered journal. Must be called on a
  /// fresh session, after SetRetryPolicy/SetQuestionBudget and before the
  /// algorithm runs. `fold` (the checkpointed prefix) is re-accounted
  /// immediately — cache, stats, rounds, paid log — exactly as if the asks
  /// had just happened; `credits` (the tail) is queued and consumed
  /// in order by the re-executed remainder of the run: a TryAsk /
  /// AskUnary / EndRound that matches the front credit draws its outcome
  /// from the journal instead of the oracle and appends nothing.
  /// `checkpoint_cache_hits` restores the free-lookup ledger the skipped
  /// work accumulated (cache hits never touch the journal).
  void RestoreFromJournal(const std::vector<persist::JournalRecord>& fold,
                          std::deque<persist::JournalRecord> credits,
                          int64_t checkpoint_cache_hits);

  /// Journal records this session has accounted for: folded + consumed as
  /// credits + freshly appended. Checkpoints reference this (the journal
  /// *file* may still hold unconsumed credits beyond it).
  int64_t journal_position() const { return journal_position_; }
  /// Credits still queued (0 once the resumed run passes the crash point).
  int64_t credits_remaining() const {
    return static_cast<int64_t>(credits_.size());
  }
  /// Paid pair attempts whose outcome came from the journal, not the
  /// oracle (fold + credits).
  int64_t replayed_pair_attempts() const { return replayed_pair_attempts_; }
  /// Unary questions answered from the journal.
  int64_t replayed_unary_questions() const { return replayed_unary_; }

 private:
  /// True until the session has asked, replayed or cached anything —
  /// the precondition for every configuration setter above.
  bool FreshSession() const {
    return stats_.questions == 0 && stats_.unary_questions == 0 &&
           stats_.rounds == 0 && stats_.cache_hits == 0 &&
           journal_position_ == 0 && cache_.empty();
  }
  /// Monotone resolved-work measure for the governor's stall watchdog:
  /// distinct answered pair questions plus unary questions.
  int64_t ResolvedTotal() const {
    return static_cast<int64_t>(cache_.size()) + stats_.unary_questions;
  }
  /// Charges one paid attempt for `canonical` to the budget and logs.
  void ChargeAttempt(const PairQuestion& canonical);
  /// The retry loop shared by live asks and journal replay: when
  /// `scripted` is set, attempt outcomes come from its recorded attempts
  /// (no oracle call, no journal append) and the loop CHECKs that the
  /// re-executed control flow consumes the record exactly.
  AskResult RunAskLoop(const PairQuestion& canonical, bool flipped,
                       const AskContext& ctx,
                       const persist::JournalRecord* scripted);
  /// Stamps the fault-trace cursor and appends, aborting on I/O failure.
  void AppendToJournal(persist::JournalRecord record);
  void AppendPairRecord(const PairQuestion& canonical, const AskContext& ctx,
                        std::vector<persist::AttemptOutcome> attempts,
                        bool resolved, Answer answer);

  /// Pre-resolved metric handles (all null when no observer is attached or
  /// its level is kDisabled; obs::Add / obs::Observe are null-safe).
  struct ObsHooks {
    obs::Counter* pair_attempts = nullptr;
    obs::Counter* cache_hits = nullptr;
    obs::Counter* rounds = nullptr;
    obs::Counter* unary_questions = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* degraded_quorum = nullptr;
    obs::Counter* failed_attempts = nullptr;
    obs::Counter* unresolved_questions = nullptr;
    obs::Counter* backoff_rounds = nullptr;
    obs::Counter* journal_records = nullptr;
    obs::Counter* replayed_pair_attempts = nullptr;
    obs::Counter* replayed_unary_questions = nullptr;
    obs::Histogram* round_questions = nullptr;
  };

  /// Notes that a paid question opened the current round (trace only).
  void NoteRoundActivity();

  CrowdOracle* oracle_;
  std::unordered_map<PairQuestion, Answer, PairQuestionHash> cache_;
  std::unordered_set<PairQuestion, PairQuestionHash> unresolved_;
  SessionStats stats_;
  RetryPolicy retry_;
  std::vector<int64_t> questions_per_round_;
  std::vector<PairQuestion> paid_questions_;
  std::vector<RetryEvent> retry_events_;
  int64_t open_round_questions_ = 0;
  int64_t budget_ = -1;
  RunGovernor* governor_ = nullptr;
  persist::JournalWriter* journal_ = nullptr;
  std::deque<persist::JournalRecord> credits_;
  int64_t journal_position_ = 0;
  int64_t replayed_pair_attempts_ = 0;
  int64_t replayed_unary_ = 0;
  obs::RunObserver* obs_ = nullptr;
  ObsHooks hooks_;
  int64_t seeded_answers_ = 0;
  std::function<void(int64_t)> round_callback_;
  int64_t round_start_ns_ = -1;  ///< trace timestamp of the open round's
                                 ///< first paid question; -1 = none
};

}  // namespace crowdsky
