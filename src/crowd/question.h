// Question and answer types for the pair-wise (qualitative) micro-task
// format of Section 2.1: given two tuples, the crowd picks the preferred
// one or declares them equally preferred (ternary answer). Questions are
// symmetric: (s, t) = (t, s).
#pragma once

#include <cstdint>
#include <functional>

#include "common/macros.h"

namespace crowdsky {

/// Aggregated (majority-voted) outcome of a pair-wise question.
enum class Answer {
  kFirstPreferred,
  kSecondPreferred,
  kEqual,
};

/// Flips an answer's orientation (first <-> second).
inline Answer FlipAnswer(Answer a) {
  switch (a) {
    case Answer::kFirstPreferred:
      return Answer::kSecondPreferred;
    case Answer::kSecondPreferred:
      return Answer::kFirstPreferred;
    case Answer::kEqual:
      return Answer::kEqual;
  }
  return Answer::kEqual;
}

/// A pair-wise question on one crowd attribute. `attr` is the position of
/// the attribute within the schema's crowd_indices() (0-based), so a query
/// with |AC| = m generates m PairQuestions per tuple pair.
struct PairQuestion {
  int attr = 0;
  int first = -1;
  int second = -1;

  /// Canonical form with first < second, for cache keys.
  PairQuestion Canonical() const {
    if (first <= second) return *this;
    return PairQuestion{attr, second, first};
  }

  bool operator==(const PairQuestion& other) const {
    return attr == other.attr && first == other.first &&
           second == other.second;
  }
};

/// Hash for canonical PairQuestions.
struct PairQuestionHash {
  size_t operator()(const PairQuestion& q) const {
    uint64_t h = static_cast<uint64_t>(q.attr) *
                 uint64_t{0x9e3779b97f4a7c15};
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(q.first)) |
         (static_cast<uint64_t>(static_cast<uint32_t>(q.second)) << 32);
    h *= uint64_t{0xbf58476d1ce4e5b9};
    h ^= h >> 29;
    return static_cast<size_t>(h);
  }
};

/// Context passed along with a question so query-dependent components
/// (dynamic voting, Section 5) can see its importance.
struct AskContext {
  /// freq(u, v): number of tuples both endpoints dominate in AK.
  size_t freq = 0;
};

}  // namespace crowdsky
