#include "crowd/marketplace.h"

#include <algorithm>

namespace crowdsky {
namespace {

/// Derives the fault-injector seed from the pool seed: same inputs, same
/// fault trace, but a stream independent of the worker-vote RNG.
uint64_t FaultSeed(uint64_t seed) {
  uint64_t state = seed ^ 0x8f1e7a9b3c5d2e4fULL;
  return SplitMix64(&state);
}

}  // namespace

CrowdMarketplace::CrowdMarketplace(const Dataset& dataset,
                                   MarketplaceOptions options,
                                   VotingPolicy voting)
    : crowd_(PreferenceMatrix::FromCrowd(dataset)),
      options_(options),
      voting_(voting),
      rng_(options.seed),
      // The fault stream is derived from the pool seed but independent of
      // the worker-vote stream (rng_), so a disabled plan draws nothing
      // and the fault-free run stays bit-identical.
      fault_injector_(options.faults, FaultSeed(options.seed)) {
  CROWDSKY_CHECK_MSG(options_.pool_size > 0, "pool must not be empty");
  CROWDSKY_CHECK(options_.gold_questions >= 0);
  workers_.reserve(static_cast<size_t>(options_.pool_size));
  for (int id = 0; id < options_.pool_size; ++id) {
    Worker w;
    w.id = id;
    w.spammer = rng_.Bernoulli(options_.population.spammer_fraction);
    if (options_.population.p_stddev > 0.0) {
      w.p_correct = std::clamp(
          rng_.Gaussian(options_.population.p_correct,
                        options_.population.p_stddev),
          0.5, 1.0);
    } else {
      w.p_correct = options_.population.p_correct;
    }
    // Qualification: the worker answers gold (known-answer) questions;
    // spammers are right half the time.
    if (options_.gold_questions > 0) {
      const double p = w.spammer ? 0.5 : w.p_correct;
      int correct = 0;
      for (int g = 0; g < options_.gold_questions; ++g) {
        correct += rng_.Bernoulli(p) ? 1 : 0;
      }
      w.gold_accuracy =
          static_cast<double>(correct) / options_.gold_questions;
      w.qualified = w.gold_accuracy >= options_.qualification_threshold;
    }
    if (w.qualified) qualified_.push_back(id);
    workers_.push_back(w);
  }
  CROWDSKY_CHECK_MSG(!qualified_.empty(),
                     "qualification rejected every worker; lower the "
                     "threshold or enlarge the pool");

  value_range_.resize(static_cast<size_t>(crowd_.dims()), 1.0);
  for (int k = 0; k < crowd_.dims(); ++k) {
    double lo = 0.0, hi = 0.0;
    for (int id = 0; id < crowd_.size(); ++id) {
      const double v = crowd_.value(id, k);
      if (id == 0 || v < lo) lo = v;
      if (id == 0 || v > hi) hi = v;
    }
    value_range_[static_cast<size_t>(k)] = std::max(hi - lo, 1e-12);
  }
}

double CrowdMarketplace::QualifiedPoolReliability() const {
  double sum = 0.0;
  for (const int id : qualified_) {
    const Worker& w = workers_[static_cast<size_t>(id)];
    sum += w.spammer ? 0.5 : w.p_correct;
  }
  return sum / static_cast<double>(qualified_.size());
}

void CrowdMarketplace::SampleDistinct(int count, std::vector<int>* out) {
  out->clear();
  const auto pool = static_cast<int>(qualified_.size());
  if (count >= pool) {
    *out = qualified_;  // tiny pool: everyone answers
    return;
  }
  // Partial Fisher-Yates over a scratch copy of the qualified pool.
  sample_scratch_ = qualified_;
  for (int i = 0; i < count; ++i) {
    const auto j = i + static_cast<int>(rng_.NextBounded(
                           static_cast<uint64_t>(pool - i)));
    std::swap(sample_scratch_[static_cast<size_t>(i)],
              sample_scratch_[static_cast<size_t>(j)]);
    out->push_back(sample_scratch_[static_cast<size_t>(i)]);
  }
}

Answer CrowdMarketplace::WorkerVote(const Worker& w, const PairQuestion& q) {
  const double a = crowd_.value(q.first, q.attr);
  const double b = crowd_.value(q.second, q.attr);
  const Answer truth = a < b   ? Answer::kFirstPreferred
                       : b < a ? Answer::kSecondPreferred
                               : Answer::kEqual;
  if (w.spammer) {
    return rng_.Bernoulli(0.5) ? Answer::kFirstPreferred
                               : Answer::kSecondPreferred;
  }
  if (rng_.Bernoulli(w.p_correct)) return truth;
  if (truth == Answer::kEqual) {
    return rng_.Bernoulli(0.5) ? Answer::kFirstPreferred
                               : Answer::kSecondPreferred;
  }
  return FlipAnswer(truth);
}

double CrowdMarketplace::VoteWeight(const Worker& w) const {
  if (!options_.weighted_votes || options_.gold_questions <= 0) return 1.0;
  // Log-odds of the worker's estimated accuracy: reliable workers
  // outvote doubtful ones; a coin-flipper weighs ~0.
  const double p = std::clamp(w.gold_accuracy, 0.51, 0.99);
  const double odds = p / (1.0 - p);
  return __builtin_log(odds);
}

Answer CrowdMarketplace::Tally(const double votes[3], const PairQuestion& q) {
  if (votes[0] > votes[1] && votes[0] >= votes[2]) {
    return Answer::kFirstPreferred;
  }
  if (votes[1] > votes[0] && votes[1] >= votes[2]) {
    return Answer::kSecondPreferred;
  }
  if (votes[2] >= votes[0] && votes[2] >= votes[1]) return Answer::kEqual;
  return q.first < q.second ? Answer::kFirstPreferred
                            : Answer::kSecondPreferred;
}

Answer CrowdMarketplace::AnswerPair(const PairQuestion& q,
                                    const AskContext& ctx) {
  CROWDSKY_CHECK(q.attr >= 0 && q.attr < crowd_.dims());
  ++stats_.pair_questions;
  std::vector<int> assigned;
  SampleDistinct(voting_.WorkersFor(ctx.freq), &assigned);
  double votes[3] = {0, 0, 0};
  for (const int id : assigned) {
    Worker& w = workers_[static_cast<size_t>(id)];
    votes[static_cast<int>(WorkerVote(w, q))] += VoteWeight(w);
    ++w.answers_given;
    ++stats_.worker_answers;
  }
  return Tally(votes, q);
}

PairOutcome CrowdMarketplace::AnswerPairOutcome(const PairQuestion& q,
                                                const AskContext& ctx) {
  if (!fault_injector_.enabled()) {
    // Frictionless platform: the exact pre-fault-injection code path, so
    // question counts, RNG use, and answers stay bit-identical.
    return CrowdOracle::AnswerPairOutcome(q, ctx);
  }
  CROWDSKY_CHECK(q.attr >= 0 && q.attr < crowd_.dims());
  ++stats_.pair_questions;
  PairOutcome out;
  switch (fault_injector_.NextAttemptFault()) {
    case AttemptFault::kTransientError:
      ++stats_.transient_errors;
      ++stats_.failed_attempts;
      out.status = PairOutcome::Status::kFailed;
      out.transient_error = true;
      return out;
    case AttemptFault::kHitExpired:
      ++stats_.expired_hits;
      ++stats_.failed_attempts;
      out.status = PairOutcome::Status::kFailed;
      out.hit_expired = true;
      out.extra_latency_rounds = options_.faults.hit_expiration_rounds;
      return out;
    case AttemptFault::kNone:
      break;
  }
  std::vector<int> assigned;
  SampleDistinct(voting_.WorkersFor(ctx.freq), &assigned);
  out.votes_expected = static_cast<int>(assigned.size());
  double votes[3] = {0, 0, 0};
  for (const int id : assigned) {
    Worker& w = workers_[static_cast<size_t>(id)];
    switch (fault_injector_.NextVoteFault()) {
      case VoteFault::kNoShow:
        // The worker abandoned the HIT: no vote exists and (as on AMT)
        // no answer is paid for.
        ++out.no_shows;
        ++stats_.no_show_assignments;
        continue;
      case VoteFault::kStraggler:
        // The worker did answer — the vote consumes their attention and
        // our money — but it landed after the round closed, so it cannot
        // be aggregated into this attempt's answer.
        (void)WorkerVote(w, q);
        ++w.answers_given;
        ++stats_.worker_answers;
        ++stats_.straggler_answers;
        ++out.stragglers;
        continue;
      case VoteFault::kOnTime:
        break;
    }
    votes[static_cast<int>(WorkerVote(w, q))] += VoteWeight(w);
    ++w.answers_given;
    ++stats_.worker_answers;
    ++out.votes_counted;
  }
  // Quorum degradation: a partial vote set is still acceptable down to a
  // strict majority of the assignment (ω−2 of ω when two of five workers
  // straggle); below the majority floor the attempt fails and the session
  // decides whether to re-ask.
  const int majority_floor = out.votes_expected / 2 + 1;
  if (out.votes_counted < majority_floor) {
    ++stats_.failed_attempts;
    out.status = PairOutcome::Status::kFailed;
    return out;
  }
  out.answer = Tally(votes, q);
  if (out.votes_counted < out.votes_expected) {
    ++stats_.degraded_answers;
    out.status = PairOutcome::Status::kDegradedQuorum;
  }
  return out;
}

double CrowdMarketplace::AnswerUnary(int id, int attr,
                                     const AskContext& ctx) {
  CROWDSKY_CHECK(attr >= 0 && attr < crowd_.dims());
  ++stats_.unary_questions;
  std::vector<int> assigned;
  SampleDistinct(voting_.WorkersFor(ctx.freq), &assigned);
  const double truth = crowd_.value(id, attr);
  const double sigma = options_.population.unary_sigma *
                       value_range_[static_cast<size_t>(attr)];
  double sum = 0.0;
  for (const int wid : assigned) {
    Worker& w = workers_[static_cast<size_t>(wid)];
    // Spammers rate uniformly at random across the value range.
    if (w.spammer) {
      sum += rng_.Uniform(truth - 2 * sigma, truth + 2 * sigma);
    } else {
      sum += rng_.Gaussian(truth, sigma);
    }
    ++w.answers_given;
    ++stats_.worker_answers;
  }
  return sum / static_cast<double>(assigned.size());
}

}  // namespace crowdsky
