#include "crowd/oracle.h"

#include <algorithm>

namespace crowdsky {
namespace {

/// The objectively correct answer, from normalized hidden values
/// (smaller preferred).
Answer TrueAnswer(const PreferenceMatrix& crowd, const PairQuestion& q) {
  const double a = crowd.value(q.first, q.attr);
  const double b = crowd.value(q.second, q.attr);
  if (a < b) return Answer::kFirstPreferred;
  if (b < a) return Answer::kSecondPreferred;
  return Answer::kEqual;
}

}  // namespace

PerfectOracle::PerfectOracle(const Dataset& dataset)
    : crowd_(PreferenceMatrix::FromCrowd(dataset)) {}

Answer PerfectOracle::AnswerPair(const PairQuestion& q,
                                 const AskContext& /*ctx*/) {
  CROWDSKY_CHECK(q.attr >= 0 && q.attr < crowd_.dims());
  ++stats_.pair_questions;
  ++stats_.worker_answers;
  return TrueAnswer(crowd_, q);
}

double PerfectOracle::AnswerUnary(int id, int attr,
                                  const AskContext& /*ctx*/) {
  ++stats_.unary_questions;
  ++stats_.worker_answers;
  return crowd_.value(id, attr);
}

SimulatedCrowd::SimulatedCrowd(const Dataset& dataset, WorkerModel worker,
                               VotingPolicy voting, uint64_t seed)
    : crowd_(PreferenceMatrix::FromCrowd(dataset)),
      worker_(worker),
      voting_(voting),
      rng_(seed) {
  // Per-attribute value range, used to scale unary rating noise.
  value_range_.resize(static_cast<size_t>(crowd_.dims()), 1.0);
  for (int k = 0; k < crowd_.dims(); ++k) {
    double lo = 0.0, hi = 0.0;
    for (int id = 0; id < crowd_.size(); ++id) {
      const double v = crowd_.value(id, k);
      if (id == 0 || v < lo) lo = v;
      if (id == 0 || v > hi) hi = v;
    }
    value_range_[static_cast<size_t>(k)] = std::max(hi - lo, 1e-12);
  }
}

Answer SimulatedCrowd::WorkerVote(const PairQuestion& q) {
  if (worker_.spammer_fraction > 0.0 &&
      rng_.Bernoulli(worker_.spammer_fraction)) {
    return rng_.Bernoulli(0.5) ? Answer::kFirstPreferred
                               : Answer::kSecondPreferred;
  }
  double p = worker_.p_correct;
  if (worker_.p_stddev > 0.0) {
    p = std::clamp(rng_.Gaussian(worker_.p_correct, worker_.p_stddev), 0.5,
                   1.0);
  }
  const Answer truth = TrueAnswer(crowd_, q);
  if (rng_.Bernoulli(p)) return truth;
  // A wrong answer: for an ordered pair the worker flips the preference;
  // for a true tie the worker picks a random side.
  if (truth == Answer::kEqual) {
    return rng_.Bernoulli(0.5) ? Answer::kFirstPreferred
                               : Answer::kSecondPreferred;
  }
  return FlipAnswer(truth);
}

Answer SimulatedCrowd::AnswerPairWithWorkers(const PairQuestion& q,
                                             int workers) {
  CROWDSKY_CHECK(q.attr >= 0 && q.attr < crowd_.dims());
  CROWDSKY_CHECK(workers >= 1);
  ++stats_.pair_questions;
  int votes[3] = {0, 0, 0};
  for (int w = 0; w < workers; ++w) {
    ++votes[static_cast<int>(WorkerVote(q))];
    ++stats_.worker_answers;
  }
  // Majority; deterministic tie-break toward "equal" last so that an
  // ordered majority always wins over a split-with-equals.
  if (votes[0] > votes[1] && votes[0] >= votes[2]) {
    return Answer::kFirstPreferred;
  }
  if (votes[1] > votes[0] && votes[1] >= votes[2]) {
    return Answer::kSecondPreferred;
  }
  if (votes[2] >= votes[0] && votes[2] >= votes[1]) {
    return Answer::kEqual;
  }
  // votes[0] == votes[1] > votes[2]: a genuine split; break by canonical
  // orientation to stay deterministic.
  return q.first < q.second ? Answer::kFirstPreferred
                            : Answer::kSecondPreferred;
}

Answer SimulatedCrowd::AnswerPair(const PairQuestion& q,
                                  const AskContext& ctx) {
  return AnswerPairWithWorkers(q, voting_.WorkersFor(ctx.freq));
}

double SimulatedCrowd::AnswerUnary(int id, int attr, const AskContext& ctx) {
  CROWDSKY_CHECK(attr >= 0 && attr < crowd_.dims());
  ++stats_.unary_questions;
  const int workers = voting_.WorkersFor(ctx.freq);
  const double truth = crowd_.value(id, attr);
  const double sigma =
      worker_.unary_sigma * value_range_[static_cast<size_t>(attr)];
  double sum = 0.0;
  for (int w = 0; w < workers; ++w) {
    sum += rng_.Gaussian(truth, sigma);
    ++stats_.worker_answers;
  }
  return sum / workers;
}

}  // namespace crowdsky
