// Crowd oracles: the boundary between the machine-side algorithms and the
// (simulated) human workers.
//
// An oracle answers one pair-wise question with an *aggregated* (majority-
// voted) answer, and one unary question (for the [12] baseline) with an
// estimated value. The algorithms never see the hidden ground truth —
// only oracle answers.
#pragma once

#include <cstdint>
#include <memory>

#include "common/random.h"
#include "crowd/question.h"
#include "crowd/voting.h"
#include "crowd/worker_model.h"
#include "data/dataset.h"
#include "skyline/dominance.h"

namespace crowdsky {

class FaultInjector;

/// Cumulative oracle-side counters. The robustness counters (everything
/// below `worker_answers`) stay 0 unless the oracle injects faults.
struct OracleStats {
  int64_t pair_questions = 0;    ///< pair-wise question attempts answered
  int64_t unary_questions = 0;   ///< unary questions answered
  int64_t worker_answers = 0;    ///< individual worker answers received
  int64_t degraded_answers = 0;  ///< answers aggregated below full quorum
  int64_t failed_attempts = 0;   ///< attempts that produced no answer
  int64_t no_show_assignments = 0;  ///< assigned workers who never answered
  int64_t straggler_answers = 0;    ///< answers that arrived too late
  int64_t transient_errors = 0;     ///< attempts lost to platform errors
  int64_t expired_hits = 0;         ///< attempts lost to HIT expiration
};

/// Outcome of one *paid attempt* at a pair question, including the
/// vote-collection detail a resilient caller (CrowdSession) needs for
/// retry/requeue decisions. Fault-free oracles always return kOk.
struct PairOutcome {
  enum class Status {
    kOk,              ///< full quorum answered
    kDegradedQuorum,  ///< answer aggregated from a partial vote set (at
                      ///< least a strict majority of the assignment)
    kFailed,          ///< no usable answer; the attempt's money is spent
  };
  Status status = Status::kOk;
  Answer answer = Answer::kEqual;  ///< meaningful unless status == kFailed
  int votes_expected = 0;  ///< workers assigned (0 = oracle doesn't vote)
  int votes_counted = 0;   ///< on-time votes aggregated into `answer`
  int no_shows = 0;
  int stragglers = 0;
  bool transient_error = false;
  bool hit_expired = false;
  /// Extra latency (rounds) this attempt wasted, e.g. waiting out an
  /// expired HIT. Pure latency: it costs rounds, not money.
  int extra_latency_rounds = 0;
};

/// \brief Interface: answers crowd questions about a fixed dataset.
class CrowdOracle {
 public:
  virtual ~CrowdOracle() = default;

  /// Majority-voted answer to a pair-wise question. `ctx.freq` carries the
  /// question's importance for dynamic voting.
  virtual Answer AnswerPair(const PairQuestion& q, const AskContext& ctx) = 0;

  /// One paid attempt at a pair question, reporting how vote collection
  /// went. The default implementation wraps AnswerPair() in an always-kOk
  /// outcome, so fault-free oracles behave exactly as before; oracles that
  /// simulate platform failures (CrowdMarketplace with a FaultPlan)
  /// override it. CrowdSession drives all pair asks through this method.
  virtual PairOutcome AnswerPairOutcome(const PairQuestion& q,
                                        const AskContext& ctx) {
    PairOutcome out;
    out.answer = AnswerPair(q, ctx);
    return out;
  }

  /// Estimated (noisy) value of tuple `id` on crowd attribute `attr`
  /// (position within crowd_indices), normalized so smaller is preferred.
  /// Used only by the unary-question baseline of [12].
  virtual double AnswerUnary(int id, int attr, const AskContext& ctx) = 0;

  const OracleStats& stats() const { return stats_; }
  void ResetStats() { stats_ = OracleStats{}; }

  /// The fault injector driving this oracle's failure simulation, if any.
  /// The answer journal stamps each record with the injector's draw
  /// cursor so recovery can verify the re-driven fault stream.
  virtual const FaultInjector* fault_injector() const { return nullptr; }

 protected:
  OracleStats stats_;
};

/// \brief Always-correct oracle reading the hidden ground truth directly.
///
/// Used by the cost/latency experiments, which assume correct answers
/// (Sections 3-4), and by correctness tests. Each pair question consumes
/// one worker answer.
class PerfectOracle : public CrowdOracle {
 public:
  explicit PerfectOracle(const Dataset& dataset);

  Answer AnswerPair(const PairQuestion& q, const AskContext& ctx) override;
  double AnswerUnary(int id, int attr, const AskContext& ctx) override;

 private:
  PreferenceMatrix crowd_;  // normalized hidden values, smaller preferred
};

/// \brief Simulated AMT crowd: Bernoulli workers + majority voting.
class SimulatedCrowd : public CrowdOracle {
 public:
  SimulatedCrowd(const Dataset& dataset, WorkerModel worker,
                 VotingPolicy voting, uint64_t seed);

  Answer AnswerPair(const PairQuestion& q, const AskContext& ctx) override;
  double AnswerUnary(int id, int attr, const AskContext& ctx) override;

  /// Answer a pair question with an explicit worker count (bypasses the
  /// voting policy); used by unit tests.
  Answer AnswerPairWithWorkers(const PairQuestion& q, int workers);

 private:
  /// One simulated worker's vote on q.
  Answer WorkerVote(const PairQuestion& q);

  PreferenceMatrix crowd_;
  WorkerModel worker_;
  VotingPolicy voting_;
  Rng rng_;
  std::vector<double> value_range_;  // per crowd attr, for unary noise
};

}  // namespace crowdsky
