// AMT monetary cost model (Section 6.2): with a reward of $0.02 per
// question-bundle (HIT) per worker, ω workers per question, and HITs of 5
// questions, the paper computes
//
//     cost = 0.02 * ω * Σ_i ceil(|Q_i| / 5)
//
// where |Q_i| is the number of questions issued in round i.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace crowdsky {

/// Pricing parameters of the crowdsourcing platform.
struct AmtCostModel {
  double reward_per_hit = 0.02;  ///< USD per HIT per worker
  int workers_per_question = 5;  ///< ω
  int questions_per_hit = 5;     ///< questions bundled into one HIT

  /// Number of HITs needed for the given per-round question counts
  /// (rounds cannot share a HIT).
  int64_t Hits(const std::vector<int64_t>& questions_per_round) const {
    CROWDSKY_CHECK(questions_per_hit > 0);
    int64_t hits = 0;
    for (const int64_t q : questions_per_round) {
      CROWDSKY_CHECK(q >= 0);
      hits += (q + questions_per_hit - 1) / questions_per_hit;
    }
    return hits;
  }

  /// Total cost in USD (the paper's formula).
  double Cost(const std::vector<int64_t>& questions_per_round) const {
    return reward_per_hit * workers_per_question *
           static_cast<double>(Hits(questions_per_round));
  }
};

}  // namespace crowdsky
