// AMT monetary cost model (Section 6.2): with a reward of $0.02 per
// question-bundle (HIT) per worker, ω workers per question, and HITs of 5
// questions, the paper computes
//
//     cost = 0.02 * ω * Σ_i ceil(|Q_i| / 5)
//
// where |Q_i| is the number of questions issued in round i.
#pragma once

#include <cstdint>
#include <vector>

#include "common/macros.h"

namespace crowdsky {

/// Pricing parameters of the crowdsourcing platform.
struct AmtCostModel {
  double reward_per_hit = 0.02;  ///< USD per HIT per worker
  int workers_per_question = 5;  ///< ω
  int questions_per_hit = 5;     ///< questions bundled into one HIT

  /// HITs needed for one posting span of `questions` question-slots — one
  /// crowd round of a single query, or one packed epoch-class span of the
  /// multi-query service (src/service): ⌈questions / questions_per_hit⌉.
  /// The packer and the service auditor both price spans through this one
  /// helper, so their arithmetic cannot drift apart.
  int64_t PackedHitCount(int64_t questions) const {
    CROWDSKY_CHECK(questions_per_hit > 0);
    CROWDSKY_CHECK(questions >= 0);
    return (questions + questions_per_hit - 1) / questions_per_hit;
  }

  /// Σ ⌈|Qᵢ|/questions_per_hit⌉ over the given spans (spans cannot share
  /// a HIT).
  int64_t PackedHitCount(const std::vector<int64_t>& spans) const {
    int64_t hits = 0;
    for (const int64_t q : spans) hits += PackedHitCount(q);
    return hits;
  }

  /// Number of HITs needed for the given per-round question counts
  /// (rounds cannot share a HIT).
  int64_t Hits(const std::vector<int64_t>& questions_per_round) const {
    return PackedHitCount(questions_per_round);
  }

  /// Total cost in USD (the paper's formula).
  double Cost(const std::vector<int64_t>& questions_per_round) const {
    return reward_per_hit * workers_per_question *
           static_cast<double>(Hits(questions_per_round));
  }
};

}  // namespace crowdsky
