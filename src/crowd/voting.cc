#include "crowd/voting.h"

#include <algorithm>

#include "common/random.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

VotingPolicy::VotingPolicy(int workers, bool dynamic, size_t alpha,
                           size_t beta)
    : base_workers_(workers), dynamic_(dynamic), alpha_(alpha), beta_(beta) {
  CROWDSKY_CHECK_MSG(workers >= 1 && workers % 2 == 1,
                     "worker count must be positive and odd");
  CROWDSKY_CHECK(!dynamic || workers >= 3);
}

VotingPolicy VotingPolicy::MakeStatic(int workers) {
  return VotingPolicy(workers, /*dynamic=*/false, 0, 0);
}

VotingPolicy VotingPolicy::MakeDynamicWithThresholds(int workers,
                                                     size_t alpha,
                                                     size_t beta) {
  CROWDSKY_CHECK(alpha <= beta);
  return VotingPolicy(workers, /*dynamic=*/true, alpha, beta);
}

VotingPolicy VotingPolicy::MakeDynamic(int workers,
                                       const DominanceStructure& structure,
                                       Rng* rng, double alpha_quantile,
                                       double beta_quantile) {
  CROWDSKY_CHECK(alpha_quantile <= beta_quantile);
  const int n = structure.size();
  // Sample pair frequencies; keep positive ones (questions CrowdSky asks
  // almost always have common dominatees: probe pairs by construction,
  // Q(t) pairs because the dominator also dominates t's dominatees).
  std::vector<size_t> freqs;
  const int64_t total_pairs =
      static_cast<int64_t>(n) * (static_cast<int64_t>(n) - 1) / 2;
  const int64_t budget = 200000;
  if (n >= 2 && total_pairs <= budget) {
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        const size_t f = structure.Frequency(u, v);
        if (f > 0) freqs.push_back(f);
      }
    }
  } else if (n >= 2) {
    for (int64_t i = 0; i < budget; ++i) {
      const int u = static_cast<int>(
          rng->NextBounded(static_cast<uint64_t>(n)));
      int v = static_cast<int>(
          rng->NextBounded(static_cast<uint64_t>(n)));
      if (u == v) continue;
      const size_t f = structure.Frequency(u, v);
      if (f > 0) freqs.push_back(f);
    }
  }
  if (freqs.empty()) {
    // Degenerate dominance-free data: everything is "unimportant".
    return MakeDynamicWithThresholds(workers, 1, 1);
  }
  std::sort(freqs.begin(), freqs.end());
  auto quantile = [&freqs](double q) {
    const auto idx = static_cast<size_t>(
        q * static_cast<double>(freqs.size() - 1));
    return freqs[idx];
  };
  size_t alpha = quantile(alpha_quantile);
  size_t beta = quantile(beta_quantile);
  if (beta < alpha) beta = alpha;
  return MakeDynamicWithThresholds(workers, alpha, beta);
}

int VotingPolicy::WorkersFor(size_t freq) const {
  if (!dynamic_) return base_workers_;
  if (freq < alpha_) return base_workers_ - 2;
  if (freq >= beta_) return base_workers_ + 2;
  return base_workers_;
}

double MajorityCorrectProbability(int omega, double p) {
  CROWDSKY_CHECK(omega >= 1 && omega % 2 == 1);
  // sum_{i=ceil(omega/2)}^{omega} C(omega, i) p^i (1-p)^(omega-i)
  double total = 0.0;
  for (int i = (omega + 1) / 2; i <= omega; ++i) {
    double binom = 1.0;
    for (int k = 0; k < i; ++k) {
      binom *= static_cast<double>(omega - k) / static_cast<double>(i - k);
    }
    double term = binom;
    for (int k = 0; k < i; ++k) term *= p;
    for (int k = 0; k < omega - i; ++k) term *= (1.0 - p);
    total += term;
  }
  return total;
}

}  // namespace crowdsky
