// Deterministic fault injection for the simulated crowd marketplace.
//
// A real platform (the paper's Section 6.2 AMT deployment) is not
// frictionless: workers accept a HIT and never submit, answers straggle in
// after the round closed, whole HITs expire unanswered, and the platform
// itself occasionally drops a request. The FaultInjector turns those
// failure modes into a deterministic, seeded stream of per-attempt and
// per-assignment fates so that the same seed and FaultPlan replay the
// exact same failure trace (and the exact same retry/requeue decisions
// downstream in CrowdSession).
//
// Determinism contract: the injector owns its own RNG stream, derived from
// the marketplace seed but independent of the worker-vote stream. With
// every rate at 0 (the default plan) no random number is ever drawn, so a
// fault-free run consumes exactly the same RNG sequence as a build without
// fault injection — bit-identical results, costs, and question counts.
#pragma once

#include <cstdint>
#include <string>

#include "common/random.h"

namespace crowdsky {

/// Failure rates of the simulated platform. All rates are probabilities in
/// [0, 1]; the default (all zero) reproduces the frictionless marketplace.
struct FaultPlan {
  /// Per-attempt: the platform rejects/drops the posted question outright
  /// (a transient error — retrying is expected to succeed eventually).
  double transient_error_rate = 0.0;
  /// Per-attempt: the HIT expires before enough workers pick it up; no
  /// votes arrive and `hit_expiration_rounds` rounds of latency are lost.
  double hit_expiration_rate = 0.0;
  int hit_expiration_rounds = 2;
  /// Per-assignment: the worker accepts the question but never submits an
  /// answer (abandonment); their vote is simply missing.
  double worker_no_show_rate = 0.0;
  /// Per-assignment: the worker answers, but the answer lands
  /// `straggler_delay_rounds` rounds after the question's round closed, so
  /// it cannot be counted toward the aggregated answer.
  double straggler_rate = 0.0;
  int straggler_delay_rounds = 1;

  bool enabled() const {
    return transient_error_rate > 0.0 || hit_expiration_rate > 0.0 ||
           worker_no_show_rate > 0.0 || straggler_rate > 0.0;
  }
};

/// Fate of one paid attempt at a question, decided before any worker is
/// sampled.
enum class AttemptFault {
  kNone,            ///< the HIT runs; individual votes may still fail
  kTransientError,  ///< platform error: no workers ever see the question
  kHitExpired,      ///< HIT expired unanswered after some rounds
};

/// Fate of one worker-assignment within a running attempt.
enum class VoteFault {
  kOnTime,     ///< the vote arrives and counts
  kNoShow,     ///< the worker abandons; no vote exists
  kStraggler,  ///< the vote arrives too late to count this attempt
};

/// \brief Seeded source of marketplace failure decisions.
class FaultInjector {
 public:
  /// `seed` should be derived from (not equal to) the marketplace seed so
  /// the fault stream is independent of the worker-vote stream.
  FaultInjector(const FaultPlan& plan, uint64_t seed)
      : plan_(plan), rng_(seed) {
    CROWDSKY_CHECK_MSG(
        plan.transient_error_rate >= 0.0 && plan.transient_error_rate <= 1.0 &&
            plan.hit_expiration_rate >= 0.0 &&
            plan.hit_expiration_rate <= 1.0 &&
            plan.worker_no_show_rate >= 0.0 &&
            plan.worker_no_show_rate <= 1.0 && plan.straggler_rate >= 0.0 &&
            plan.straggler_rate <= 1.0,
        "fault rates must be probabilities in [0, 1]");
    CROWDSKY_CHECK(plan.hit_expiration_rounds >= 0 &&
                   plan.straggler_delay_rounds >= 0);
  }

  bool enabled() const { return plan_.enabled(); }
  const FaultPlan& plan() const { return plan_; }

  /// Draws the fate of the next paid attempt. Rates of zero draw nothing
  /// from the RNG (Rng::Bernoulli short-circuits), keeping disabled fault
  /// classes out of the random stream.
  AttemptFault NextAttemptFault() {
    ++attempt_draws_;
    if (rng_.Bernoulli(plan_.transient_error_rate)) {
      return AttemptFault::kTransientError;
    }
    if (rng_.Bernoulli(plan_.hit_expiration_rate)) {
      return AttemptFault::kHitExpired;
    }
    return AttemptFault::kNone;
  }

  /// Draws the fate of the next worker-assignment.
  VoteFault NextVoteFault() {
    ++vote_draws_;
    if (rng_.Bernoulli(plan_.worker_no_show_rate)) return VoteFault::kNoShow;
    if (rng_.Bernoulli(plan_.straggler_rate)) return VoteFault::kStraggler;
    return VoteFault::kOnTime;
  }

  /// Draw cursors: how many attempt/vote fates have been decided so far.
  /// The answer journal stamps each record with the cursor so recovery can
  /// verify that the re-driven fault stream reaches the same position.
  uint64_t attempt_draws() const { return attempt_draws_; }
  uint64_t vote_draws() const { return vote_draws_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  uint64_t attempt_draws_ = 0;
  uint64_t vote_draws_ = 0;
};

/// One-line human-readable description of a plan ("faults disabled" or the
/// configured rates); used by benches and logs.
std::string FaultPlanSummary(const FaultPlan& plan);

}  // namespace crowdsky
