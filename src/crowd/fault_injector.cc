#include "crowd/fault_injector.h"

#include <cstdio>
#include <string>

namespace crowdsky {

std::string FaultPlanSummary(const FaultPlan& plan) {
  if (!plan.enabled()) return "faults disabled";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "transient=%.3g expire=%.3g(%dr) no-show=%.3g straggle=%.3g"
                "(%dr)",
                plan.transient_error_rate, plan.hit_expiration_rate,
                plan.hit_expiration_rounds, plan.worker_no_show_rate,
                plan.straggler_rate, plan.straggler_delay_rounds);
  return buf;
}

}  // namespace crowdsky
