// CrowdMarketplace: a closer simulation of a real crowdsourcing platform
// than the memoryless SimulatedCrowd.
//
// The marketplace owns a persistent worker pool. Each worker has a latent
// pair-wise reliability drawn from the population model and keeps an
// answer history. Platforms like AMT restrict demanding tasks to
// qualified ("Masters") workers — the paper's Section 6.2 does exactly
// that — which is modelled with gold questions: before joining the
// qualified pool a worker answers a number of known-answer questions and
// is admitted only if accurate enough. Every paid question is answered by
// ω *distinct* qualified workers.
#pragma once

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "crowd/fault_injector.h"
#include "crowd/oracle.h"

namespace crowdsky {

/// A persistent simulated worker.
struct Worker {
  int id = -1;
  /// Latent probability of answering a pair-wise question correctly.
  double p_correct = 0.8;
  /// Spammers answer uniformly at random regardless of the question.
  bool spammer = false;
  bool qualified = true;
  /// Accuracy observed on the qualification gold questions.
  double gold_accuracy = 1.0;
  int64_t answers_given = 0;
};

/// Configuration of the simulated platform.
struct MarketplaceOptions {
  /// Number of workers registered on the platform.
  int pool_size = 200;
  /// Population model: worker reliabilities are drawn as
  /// clamp(N(p_correct, p_stddev), 0.5, 1); `spammer_fraction` of workers
  /// are spammers; `unary_sigma` scales absolute-rating noise.
  WorkerModel population;
  /// Number of known-answer questions each worker must take before
  /// acceptance (0 disables qualification — everyone is admitted).
  int gold_questions = 0;
  /// Minimum gold accuracy to join the qualified pool.
  double qualification_threshold = 0.8;
  /// Weight each worker's vote by the log-odds of their gold-question
  /// accuracy instead of counting votes equally (the query-independent
  /// quality track of CDAS [11] and friends, which the paper treats as
  /// orthogonal). Requires gold_questions > 0 to have any effect.
  bool weighted_votes = false;
  /// Platform failure model (crowd/fault_injector.h). The default plan is
  /// frictionless; any non-zero rate makes AnswerPairOutcome report
  /// degraded or failed attempts that CrowdSession retries. The fault
  /// stream is seeded from `seed` but independent of the worker-vote
  /// stream, so disabling every rate reproduces the fault-free run
  /// bit-for-bit.
  FaultPlan faults;
  uint64_t seed = 42;
};

/// \brief CrowdOracle backed by a persistent, optionally qualified pool.
class CrowdMarketplace : public CrowdOracle {
 public:
  /// Builds the pool (running qualification if configured) for answering
  /// questions about `dataset`. Aborts if qualification rejects everyone —
  /// callers control the population and threshold.
  CrowdMarketplace(const Dataset& dataset, MarketplaceOptions options,
                   VotingPolicy voting);

  Answer AnswerPair(const PairQuestion& q, const AskContext& ctx) override;
  double AnswerUnary(int id, int attr, const AskContext& ctx) override;

  /// One paid attempt under the configured FaultPlan: the attempt may be
  /// lost to a transient error or HIT expiration, and individual
  /// assignments may no-show or straggle. An answer is aggregated whenever
  /// at least a strict majority of the assigned workers voted on time
  /// (kOk at full quorum, kDegradedQuorum below it); otherwise the attempt
  /// fails and the caller decides whether to retry. With the default
  /// (disabled) plan this is exactly AnswerPair().
  PairOutcome AnswerPairOutcome(const PairQuestion& q,
                                const AskContext& ctx) override;

  const FaultInjector* fault_injector() const override {
    return &fault_injector_;
  }

  const std::vector<Worker>& workers() const { return workers_; }
  int pool_size() const { return static_cast<int>(workers_.size()); }
  int qualified_count() const { return static_cast<int>(qualified_.size()); }
  /// Mean latent reliability of the qualified pool (what qualification is
  /// supposed to raise).
  double QualifiedPoolReliability() const;

 private:
  /// Samples `count` distinct qualified worker indices.
  void SampleDistinct(int count, std::vector<int>* out);
  Answer WorkerVote(const Worker& w, const PairQuestion& q);
  /// Vote weight of a worker under the configured weighting scheme.
  double VoteWeight(const Worker& w) const;
  /// Majority answer from a weighted tally, with the deterministic
  /// tie-breaks AnswerPair has always used.
  static Answer Tally(const double votes[3], const PairQuestion& q);

  PreferenceMatrix crowd_;
  MarketplaceOptions options_;
  VotingPolicy voting_;
  Rng rng_;
  FaultInjector fault_injector_;
  std::vector<Worker> workers_;
  std::vector<int> qualified_;  // indices into workers_
  std::vector<double> value_range_;
  std::vector<int> sample_scratch_;
};

}  // namespace crowdsky
