#include "crowd/session.h"

#include <algorithm>

namespace crowdsky {
namespace {

RetryEvent::Reason ReasonFor(const PairOutcome& outcome) {
  if (outcome.transient_error) return RetryEvent::Reason::kTransientError;
  if (outcome.hit_expired) return RetryEvent::Reason::kHitExpired;
  return RetryEvent::Reason::kInsufficientQuorum;
}

}  // namespace

void CrowdSession::ChargeAttempt(const PairQuestion& canonical) {
  paid_questions_.push_back(canonical);
  ++stats_.questions;
  ++open_round_questions_;
}

CrowdSession::AskResult CrowdSession::TryAsk(int attr, int u, int v,
                                             const AskContext& ctx) {
  CROWDSKY_CHECK_MSG(u != v, "pair question needs two distinct tuples");
  const PairQuestion canonical = PairQuestion{attr, u, v}.Canonical();
  const bool flipped = canonical.first != u;
  if (auto it = cache_.find(canonical); it != cache_.end()) {
    ++stats_.cache_hits;
    return {AskStatus::kAnswered,
            flipped ? FlipAnswer(it->second) : it->second,
            /*paid=*/false};
  }
  if (unresolved_.contains(canonical)) {
    // Already given up on: stay given up (the retry cap is per question,
    // not per caller) and charge nothing.
    return {AskStatus::kUnresolved, Answer::kEqual, /*paid=*/false};
  }
  CROWDSKY_CHECK_MSG(CanAsk(), "question budget exhausted");
  for (int attempt = 0;; ++attempt) {
    ChargeAttempt(canonical);
    const PairOutcome outcome = oracle_->AnswerPairOutcome(canonical, ctx);
    if (outcome.status != PairOutcome::Status::kFailed) {
      if (outcome.status == PairOutcome::Status::kDegradedQuorum) {
        ++stats_.degraded_quorum;
      }
      cache_.emplace(canonical, outcome.answer);
      return {AskStatus::kAnswered,
              flipped ? FlipAnswer(outcome.answer) : outcome.answer,
              /*paid=*/true};
    }
    ++stats_.failed_attempts;
    stats_.backoff_rounds += outcome.extra_latency_rounds;
    if (attempt >= retry_.max_retries || !CanAsk()) {
      // Retry cap hit (or the budget cannot fund another attempt): give
      // up on this question for the rest of the session.
      unresolved_.insert(canonical);
      ++stats_.unresolved_questions;
      return {AskStatus::kUnresolved, Answer::kEqual, /*paid=*/true};
    }
    // Requeue with capped exponential round backoff before the retry.
    const int shift = std::min(attempt, 30);
    stats_.backoff_rounds +=
        std::min<int64_t>(static_cast<int64_t>(retry_.backoff_base_rounds)
                              << shift,
                          retry_.max_backoff_rounds);
    retry_events_.push_back({canonical, attempt + 1, ReasonFor(outcome)});
    ++stats_.retries;
  }
}

Answer CrowdSession::Ask(int attr, int u, int v, const AskContext& ctx) {
  const AskResult result = TryAsk(attr, u, v, ctx);
  CROWDSKY_CHECK_MSG(result.status == AskStatus::kAnswered,
                     "pair question unresolved after retries; best-effort "
                     "callers must use TryAsk()");
  return result.answer;
}

bool CrowdSession::IsCached(int attr, int u, int v) const {
  return cache_.contains(PairQuestion{attr, u, v}.Canonical());
}

bool CrowdSession::IsUnresolved(int attr, int u, int v) const {
  return unresolved_.contains(PairQuestion{attr, u, v}.Canonical());
}

double CrowdSession::AskUnary(int id, int attr, const AskContext& ctx) {
  CROWDSKY_CHECK_MSG(CanAsk(), "question budget exhausted");
  ++stats_.unary_questions;
  ++open_round_questions_;
  return oracle_->AnswerUnary(id, attr, ctx);
}

void CrowdSession::EndRound() {
  if (open_round_questions_ == 0) return;
  questions_per_round_.push_back(open_round_questions_);
  ++stats_.rounds;
  open_round_questions_ = 0;
}

}  // namespace crowdsky
