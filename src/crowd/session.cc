#include "crowd/session.h"

namespace crowdsky {

Answer CrowdSession::Ask(int attr, int u, int v, const AskContext& ctx) {
  CROWDSKY_CHECK_MSG(u != v, "pair question needs two distinct tuples");
  const PairQuestion canonical = PairQuestion{attr, u, v}.Canonical();
  const bool flipped = canonical.first != u;
  auto it = cache_.find(canonical);
  if (it != cache_.end()) {
    ++stats_.cache_hits;
    return flipped ? FlipAnswer(it->second) : it->second;
  }
  CROWDSKY_CHECK_MSG(CanAsk(), "question budget exhausted");
  const Answer canonical_answer = oracle_->AnswerPair(canonical, ctx);
  cache_.emplace(canonical, canonical_answer);
  paid_questions_.push_back(canonical);
  ++stats_.questions;
  ++open_round_questions_;
  return flipped ? FlipAnswer(canonical_answer) : canonical_answer;
}

bool CrowdSession::IsCached(int attr, int u, int v) const {
  return cache_.contains(PairQuestion{attr, u, v}.Canonical());
}

double CrowdSession::AskUnary(int id, int attr, const AskContext& ctx) {
  CROWDSKY_CHECK_MSG(CanAsk(), "question budget exhausted");
  ++stats_.unary_questions;
  ++open_round_questions_;
  return oracle_->AnswerUnary(id, attr, ctx);
}

void CrowdSession::EndRound() {
  if (open_round_questions_ == 0) return;
  questions_per_round_.push_back(open_round_questions_);
  ++stats_.rounds;
  open_round_questions_ = 0;
}

}  // namespace crowdsky
