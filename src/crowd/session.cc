#include "crowd/session.h"

#include <algorithm>
#include <utility>

#include "crowd/fault_injector.h"

namespace crowdsky {
namespace {

RetryEvent::Reason ReasonFor(const PairOutcome& outcome) {
  if (outcome.transient_error) return RetryEvent::Reason::kTransientError;
  if (outcome.hit_expired) return RetryEvent::Reason::kHitExpired;
  return RetryEvent::Reason::kInsufficientQuorum;
}

persist::AttemptOutcome SummarizeOutcome(const PairOutcome& outcome) {
  persist::AttemptOutcome out;
  switch (outcome.status) {
    case PairOutcome::Status::kOk:
      out.status = persist::AttemptOutcome::kOk;
      break;
    case PairOutcome::Status::kDegradedQuorum:
      out.status = persist::AttemptOutcome::kDegradedQuorum;
      break;
    case PairOutcome::Status::kFailed:
      out.status = persist::AttemptOutcome::kFailed;
      break;
  }
  out.transient_error = outcome.transient_error;
  out.hit_expired = outcome.hit_expired;
  out.extra_latency_rounds = outcome.extra_latency_rounds;
  out.votes_expected = outcome.votes_expected;
  out.votes_counted = outcome.votes_counted;
  out.no_shows = outcome.no_shows;
  out.stragglers = outcome.stragglers;
  return out;
}

/// Reconstructs the PairOutcome the oracle produced for attempt `index` of
/// the journaled question (the record's final answer applies to whichever
/// attempt succeeded; failed attempts never carried an answer).
PairOutcome OutcomeFromRecord(const persist::JournalRecord& record,
                              size_t index) {
  const persist::AttemptOutcome& a = record.attempts[index];
  PairOutcome out;
  switch (a.status) {
    case persist::AttemptOutcome::kOk:
      out.status = PairOutcome::Status::kOk;
      break;
    case persist::AttemptOutcome::kDegradedQuorum:
      out.status = PairOutcome::Status::kDegradedQuorum;
      break;
    default:
      out.status = PairOutcome::Status::kFailed;
      break;
  }
  if (out.status != PairOutcome::Status::kFailed) out.answer = record.answer;
  out.transient_error = a.transient_error;
  out.hit_expired = a.hit_expired;
  out.extra_latency_rounds = a.extra_latency_rounds;
  out.votes_expected = a.votes_expected;
  out.votes_counted = a.votes_counted;
  out.no_shows = a.no_shows;
  out.stragglers = a.stragglers;
  return out;
}

}  // namespace

void CrowdSession::AttachObserver(obs::RunObserver* observer) {
  CROWDSKY_CHECK(observer != nullptr);
  CROWDSKY_CHECK_MSG(obs_ == nullptr, "observer already attached");
  CROWDSKY_CHECK_MSG(stats_.questions == 0 && stats_.cache_hits == 0 &&
                         stats_.rounds == 0 && journal_position_ == 0,
                     "attach the observer before any crowd activity (and "
                     "before RestoreFromJournal) so the counters cover the "
                     "whole run");
  obs_ = observer;
  hooks_.pair_attempts = observer->counter("crowdsky.pair_attempts");
  hooks_.cache_hits = observer->counter("crowdsky.cache_hits");
  hooks_.rounds = observer->counter("crowdsky.rounds");
  hooks_.unary_questions = observer->counter("crowdsky.unary_questions");
  hooks_.retries = observer->counter("crowdsky.retries");
  hooks_.degraded_quorum = observer->counter("crowdsky.degraded_quorum");
  hooks_.failed_attempts = observer->counter("crowdsky.failed_attempts");
  hooks_.unresolved_questions =
      observer->counter("crowdsky.unresolved_questions");
  hooks_.backoff_rounds = observer->counter("crowdsky.backoff_rounds");
  hooks_.journal_records = observer->counter("journal.records_appended");
  hooks_.replayed_pair_attempts =
      observer->counter("journal.replayed_pair_attempts");
  hooks_.replayed_unary_questions =
      observer->counter("journal.replayed_unary_questions");
  hooks_.round_questions = observer->histogram("crowdsky.round_questions");
}

void CrowdSession::NoteRoundActivity() {
  ++open_round_questions_;
  if (open_round_questions_ == 1 && obs_ != nullptr &&
      obs_->tracing_enabled()) {
    round_start_ns_ = obs_->trace().NowNs();
  }
}

void CrowdSession::ChargeAttempt(const PairQuestion& canonical) {
  paid_questions_.push_back(canonical);
  ++stats_.questions;
  obs::Add(hooks_.pair_attempts, 1);
  NoteRoundActivity();
}

void CrowdSession::AppendToJournal(persist::JournalRecord record) {
  if (const FaultInjector* injector = oracle_->fault_injector();
      injector != nullptr) {
    record.fault_attempt_draws = injector->attempt_draws();
    record.fault_vote_draws = injector->vote_draws();
  }
  const Status status = journal_->Append(record);
  CROWDSKY_CHECK_MSG(status.ok(),
                     "answer journal append failed; aborting rather than "
                     "continuing undurably");
  ++journal_position_;
  obs::Add(hooks_.journal_records, 1);
}

void CrowdSession::AppendPairRecord(
    const PairQuestion& canonical, const AskContext& ctx,
    std::vector<persist::AttemptOutcome> attempts, bool resolved,
    Answer answer) {
  persist::JournalRecord record;
  record.kind = persist::JournalRecord::Kind::kPairAsk;
  record.question = canonical;
  record.freq = static_cast<uint64_t>(ctx.freq);
  record.resolved = resolved;
  record.answer = answer;
  record.attempts = std::move(attempts);
  AppendToJournal(std::move(record));
}

CrowdSession::AskResult CrowdSession::RunAskLoop(
    const PairQuestion& canonical, bool flipped, const AskContext& ctx,
    const persist::JournalRecord* scripted) {
  // The precondition is budget-only: the governor's gate was consulted by
  // the caller through CanAsk(), and a cancellation token flipping between
  // that check and this call must not abort the process — the admitted
  // question simply runs (funding is a commitment, see BudgetCanAsk()).
  CROWDSKY_CHECK_MSG(BudgetCanAsk(), "question budget exhausted");
  size_t scripted_index = 0;
  std::vector<persist::AttemptOutcome> attempts;
  for (int attempt = 0;; ++attempt) {
    ChargeAttempt(canonical);
    PairOutcome outcome;
    if (scripted != nullptr) {
      CROWDSKY_CHECK_MSG(scripted_index < scripted->attempts.size(),
                         "journal replay diverged: the resumed run paid "
                         "more attempts than the journal recorded");
      outcome = OutcomeFromRecord(*scripted, scripted_index);
      ++scripted_index;
      ++replayed_pair_attempts_;
      obs::Add(hooks_.replayed_pair_attempts, 1);
    } else {
      obs::TraceSpan span = obs::SpanIf(obs_, "crowd.ask_pair");
      span.AddArg("attr", canonical.attr);
      outcome = oracle_->AnswerPairOutcome(canonical, ctx);
      span.End();
      if (journal_ != nullptr) attempts.push_back(SummarizeOutcome(outcome));
    }
    if (outcome.status != PairOutcome::Status::kFailed) {
      if (outcome.status == PairOutcome::Status::kDegradedQuorum) {
        ++stats_.degraded_quorum;
        obs::Add(hooks_.degraded_quorum, 1);
      }
      cache_.emplace(canonical, outcome.answer);
      if (scripted != nullptr) {
        CROWDSKY_CHECK_MSG(
            scripted->resolved &&
                scripted_index == scripted->attempts.size(),
            "journal replay diverged: attempt shape mismatch on a "
            "resolved question");
      } else if (journal_ != nullptr) {
        AppendPairRecord(canonical, ctx, std::move(attempts),
                         /*resolved=*/true, outcome.answer);
      }
      return {AskStatus::kAnswered,
              flipped ? FlipAnswer(outcome.answer) : outcome.answer,
              /*paid=*/true};
    }
    ++stats_.failed_attempts;
    obs::Add(hooks_.failed_attempts, 1);
    stats_.backoff_rounds =
        SaturatingAdd(stats_.backoff_rounds, outcome.extra_latency_rounds);
    obs::Add(hooks_.backoff_rounds, outcome.extra_latency_rounds);
    if (attempt >= retry_.max_retries || !BudgetCanAsk()) {
      // Retry cap hit (or the budget cannot fund another attempt): give
      // up on this question for the rest of the session.
      unresolved_.insert(canonical);
      ++stats_.unresolved_questions;
      obs::Add(hooks_.unresolved_questions, 1);
      if (scripted != nullptr) {
        CROWDSKY_CHECK_MSG(
            !scripted->resolved &&
                scripted_index == scripted->attempts.size(),
            "journal replay diverged: attempt shape mismatch on an "
            "unresolved question");
      } else if (journal_ != nullptr) {
        AppendPairRecord(canonical, ctx, std::move(attempts),
                         /*resolved=*/false, Answer::kEqual);
      }
      return {AskStatus::kUnresolved, Answer::kEqual, /*paid=*/true};
    }
    // Requeue with capped exponential round backoff before the retry.
    const int64_t backoff = RetryBackoffRounds(retry_, attempt);
    stats_.backoff_rounds = SaturatingAdd(stats_.backoff_rounds, backoff);
    obs::Add(hooks_.backoff_rounds, backoff);
    retry_events_.push_back({canonical, attempt + 1, ReasonFor(outcome)});
    ++stats_.retries;
    obs::Add(hooks_.retries, 1);
  }
}

CrowdSession::AskResult CrowdSession::TryAsk(int attr, int u, int v,
                                             const AskContext& ctx) {
  CROWDSKY_CHECK_MSG(u != v, "pair question needs two distinct tuples");
  const PairQuestion canonical = PairQuestion{attr, u, v}.Canonical();
  const bool flipped = canonical.first != u;
  if (auto it = cache_.find(canonical); it != cache_.end()) {
    ++stats_.cache_hits;
    obs::Add(hooks_.cache_hits, 1);
    return {AskStatus::kAnswered,
            flipped ? FlipAnswer(it->second) : it->second,
            /*paid=*/false};
  }
  if (unresolved_.contains(canonical)) {
    // Already given up on: stay given up (the retry cap is per question,
    // not per caller) and charge nothing.
    return {AskStatus::kUnresolved, Answer::kEqual, /*paid=*/false};
  }
  const persist::JournalRecord* credit = nullptr;
  if (!credits_.empty()) {
    credit = &credits_.front();
    CROWDSKY_CHECK_MSG(
        credit->kind == persist::JournalRecord::Kind::kPairAsk &&
            credit->question == canonical,
        "journal replay diverged: the resumed run asked a question the "
        "original run did not ask here");
  }
  const AskResult result = RunAskLoop(canonical, flipped, ctx, credit);
  if (credit != nullptr) {
    credits_.pop_front();
    ++journal_position_;
  }
  return result;
}

Answer CrowdSession::Ask(int attr, int u, int v, const AskContext& ctx) {
  const AskResult result = TryAsk(attr, u, v, ctx);
  CROWDSKY_CHECK_MSG(result.status == AskStatus::kAnswered,
                     "pair question unresolved after retries; best-effort "
                     "callers must use TryAsk()");
  return result.answer;
}

bool CrowdSession::IsCached(int attr, int u, int v) const {
  return cache_.contains(PairQuestion{attr, u, v}.Canonical());
}

bool CrowdSession::IsUnresolved(int attr, int u, int v) const {
  return unresolved_.contains(PairQuestion{attr, u, v}.Canonical());
}

void CrowdSession::SeedAnswer(int attr, int u, int v, Answer answer) {
  PairQuestion question{attr, u, v};
  const PairQuestion canonical = question.Canonical();
  const Answer oriented =
      canonical.first == question.first ? answer : FlipAnswer(answer);
  const auto [it, inserted] = cache_.emplace(canonical, oriented);
  CROWDSKY_CHECK_MSG(it->second == oriented,
                     "SeedAnswer contradicts an existing cache entry for "
                     "the same pair");
  if (inserted) ++seeded_answers_;
}

double CrowdSession::AskUnary(int id, int attr, const AskContext& ctx) {
  // Budget-only for the same reason as RunAskLoop: the caller gated
  // through CanAsk(), and an asynchronous cancel in between must degrade
  // gracefully, not CHECK-fail.
  CROWDSKY_CHECK_MSG(BudgetCanAsk(), "question budget exhausted");
  ++stats_.unary_questions;
  obs::Add(hooks_.unary_questions, 1);
  NoteRoundActivity();
  if (!credits_.empty()) {
    const persist::JournalRecord& credit = credits_.front();
    CROWDSKY_CHECK_MSG(
        credit.kind == persist::JournalRecord::Kind::kUnary &&
            credit.unary_id == id && credit.unary_attr == attr,
        "journal replay diverged: the resumed run asked a unary question "
        "the original run did not ask here");
    const double value = credit.unary_value;
    credits_.pop_front();
    ++journal_position_;
    ++replayed_unary_;
    obs::Add(hooks_.replayed_unary_questions, 1);
    return value;
  }
  obs::TraceSpan span = obs::SpanIf(obs_, "crowd.ask_unary");
  span.AddArg("attr", attr);
  const double value = oracle_->AnswerUnary(id, attr, ctx);
  span.End();
  if (journal_ != nullptr) {
    persist::JournalRecord record;
    record.kind = persist::JournalRecord::Kind::kUnary;
    record.freq = static_cast<uint64_t>(ctx.freq);
    record.unary_id = id;
    record.unary_attr = attr;
    record.unary_value = value;
    AppendToJournal(std::move(record));
  }
  return value;
}

void CrowdSession::EndRound() {
  if (open_round_questions_ == 0) return;
  questions_per_round_.push_back(open_round_questions_);
  ++stats_.rounds;
  const int64_t closed = open_round_questions_;
  open_round_questions_ = 0;
  obs::Add(hooks_.rounds, 1);
  obs::Observe(hooks_.round_questions, closed);
  if (governor_ != nullptr) {
    governor_->OnRoundClosed(closed, ResolvedTotal());
  }
  if (round_start_ns_ >= 0) {
    obs_->trace().Record("crowd.round", round_start_ns_,
                         obs_->trace().NowNs(),
                         "\"questions\": " + std::to_string(closed));
    round_start_ns_ = -1;
  }
  if (!credits_.empty()) {
    const persist::JournalRecord& credit = credits_.front();
    CROWDSKY_CHECK_MSG(
        credit.kind == persist::JournalRecord::Kind::kRoundEnd &&
            credit.round_questions == closed,
        "journal replay diverged: round boundary mismatch");
    credits_.pop_front();
    ++journal_position_;
    if (round_callback_) round_callback_(stats_.rounds);
    return;
  }
  if (journal_ != nullptr) {
    persist::JournalRecord record;
    record.kind = persist::JournalRecord::Kind::kRoundEnd;
    record.round_questions = closed;
    AppendToJournal(std::move(record));
  }
  // After the round-end record is durable, so a kill-at-round fault
  // injected from the callback leaves a clean round boundary behind.
  if (round_callback_) round_callback_(stats_.rounds);
}

void CrowdSession::JournalTermination(const TerminationReport& report) {
  CROWDSKY_CHECK_MSG(journal_ != nullptr,
                     "JournalTermination requires an attached journal");
  CROWDSKY_CHECK_MSG(open_round_questions_ == 0,
                     "termination record inside an open round");
  CROWDSKY_CHECK_MSG(credits_.empty(),
                     "termination record with journal credits unconsumed");
  persist::JournalRecord record;
  record.kind = persist::JournalRecord::Kind::kTermination;
  record.termination_reason = static_cast<uint8_t>(report.reason);
  record.termination_rounds = report.rounds;
  record.termination_cost_spent = report.cost_spent_usd;
  record.termination_cost_cap = report.cost_cap_usd;
  AppendToJournal(std::move(record));
}

void CrowdSession::RestoreFromJournal(
    const std::vector<persist::JournalRecord>& fold,
    std::deque<persist::JournalRecord> credits,
    int64_t checkpoint_cache_hits) {
  CROWDSKY_CHECK_MSG(stats_.questions == 0 && stats_.unary_questions == 0 &&
                         stats_.rounds == 0 && stats_.cache_hits == 0 &&
                         cache_.empty() && journal_position_ == 0,
                     "RestoreFromJournal requires a fresh session");
  CROWDSKY_CHECK(checkpoint_cache_hits >= 0);
  for (const persist::JournalRecord& record : fold) {
    switch (record.kind) {
      case persist::JournalRecord::Kind::kPairAsk: {
        CROWDSKY_CHECK_MSG(record.question == record.question.Canonical(),
                           "journal pair record is not canonical");
        AskContext ctx;
        ctx.freq = static_cast<size_t>(record.freq);
        (void)RunAskLoop(record.question, /*flipped=*/false, ctx, &record);
        break;
      }
      case persist::JournalRecord::Kind::kUnary:
        ++stats_.unary_questions;
        ++open_round_questions_;
        ++replayed_unary_;
        obs::Add(hooks_.unary_questions, 1);
        obs::Add(hooks_.replayed_unary_questions, 1);
        break;
      case persist::JournalRecord::Kind::kRoundEnd:
        CROWDSKY_CHECK_MSG(open_round_questions_ == record.round_questions,
                           "journal round boundary does not match the "
                           "folded records");
        questions_per_round_.push_back(open_round_questions_);
        ++stats_.rounds;
        obs::Add(hooks_.rounds, 1);
        obs::Observe(hooks_.round_questions, open_round_questions_);
        if (governor_ != nullptr) {
          governor_->OnRoundClosed(open_round_questions_, ResolvedTotal());
        }
        open_round_questions_ = 0;
        break;
      case persist::JournalRecord::Kind::kTermination:
        // PrepareResume truncates the termination epilogue before handing
        // records to the session; reaching one here means the journal was
        // fed in unprocessed.
        CROWDSKY_CHECK_MSG(false,
                           "termination record in a folded journal prefix");
        break;
    }
    ++journal_position_;
  }
  CROWDSKY_CHECK_MSG(open_round_questions_ == 0,
                     "checkpointed journal prefix must end on a round "
                     "boundary");
  // Cache hits the skipped work produced are invisible to the journal
  // (they were free); the checkpoint carries their count.
  stats_.cache_hits = checkpoint_cache_hits;
  obs::Add(hooks_.cache_hits, checkpoint_cache_hits);
  credits_ = std::move(credits);
}

}  // namespace crowdsky
