// Statistical model of an individual crowd worker, used by the simulated
// crowd (Section 6.1 uses homogeneous Bernoulli workers with p = 0.8; the
// extra knobs support robustness experiments beyond the paper).
#pragma once

namespace crowdsky {

/// Per-worker behaviour parameters.
struct WorkerModel {
  /// Probability that a worker answers a pair-wise question correctly.
  double p_correct = 0.8;
  /// Std-dev of per-worker reliability (0 = homogeneous workers). Each
  /// sampled worker gets p ~ clamp(N(p_correct, p_stddev), 0.5, 1).
  double p_stddev = 0.0;
  /// Fraction of workers that answer uniformly at random regardless of the
  /// question (spam injection; 0 in the paper's experiments).
  double spammer_fraction = 0.0;
  /// Std-dev of a worker's *unary* rating, as a fraction of the attribute's
  /// value range (used when simulating the unary questions of [12]).
  /// Absolute judgements are much harder than relative ones — workers have
  /// no global knowledge of the value distribution (Section 2.1) — so the
  /// default is substantially larger than pair-wise error rates suggest.
  double unary_sigma = 0.3;
};

}  // namespace crowdsky
