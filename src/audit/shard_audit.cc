#include "audit/shard_audit.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <unordered_set>

namespace crowdsky::audit {
namespace {

constexpr double kDollarTolerance = 1e-9;

bool Contains(const std::vector<int>& sorted_ids, int id) {
  return std::binary_search(sorted_ids.begin(), sorted_ids.end(), id);
}

std::string ShardLabel(size_t i) {
  return "shard " + std::to_string(i);
}

}  // namespace

void AuditShardMerge(const ShardMergeSnapshot& snapshot,
                     AuditReport* report) {
  const size_t k = snapshot.shards.size();

  // shard.partition: the slices are disjoint and cover [0, n) exactly.
  {
    std::vector<int> owner(static_cast<size_t>(snapshot.num_tuples), -1);
    bool disjoint = true;
    bool in_range = true;
    std::string witness;
    for (size_t i = 0; i < k; ++i) {
      for (const int id : snapshot.shards[i].tuple_ids) {
        if (id < 0 || id >= snapshot.num_tuples) {
          in_range = false;
          witness = ShardLabel(i) + " owns out-of-range tuple " +
                    std::to_string(id);
          break;
        }
        if (owner[static_cast<size_t>(id)] != -1) {
          disjoint = false;
          witness = "tuple " + std::to_string(id) + " owned by both " +
                    ShardLabel(static_cast<size_t>(
                        owner[static_cast<size_t>(id)])) +
                    " and " + ShardLabel(i);
          break;
        }
        owner[static_cast<size_t>(id)] = static_cast<int>(i);
      }
    }
    int covered = 0;
    for (const int o : owner) covered += (o != -1) ? 1 : 0;
    const bool covers = covered == snapshot.num_tuples;
    if (witness.empty() && !covers) {
      for (size_t t = 0; t < owner.size(); ++t) {
        if (owner[t] == -1) {
          witness = "tuple " + std::to_string(t) + " owned by no shard";
          break;
        }
      }
    }
    report->Check(disjoint && in_range && covers, "shard.partition",
                  witness);

    // shard.candidate_ownership: candidates come from the owning slice;
    // a dead shard contributes none.
    for (size_t i = 0; i < k; ++i) {
      const ShardMergeSnapshot::Shard& shard = snapshot.shards[i];
      if (shard.dead) {
        report->Check(shard.candidates.empty(),
                      "shard.candidate_ownership",
                      ShardLabel(i) + " is dead but contributed " +
                          std::to_string(shard.candidates.size()) +
                          " candidates");
        continue;
      }
      bool owned = true;
      std::string detail;
      for (const int id : shard.candidates) {
        if (id < 0 || id >= snapshot.num_tuples ||
            owner[static_cast<size_t>(id)] != static_cast<int>(i)) {
          owned = false;
          detail = ShardLabel(i) + " contributed candidate " +
                   std::to_string(id) + " outside its slice";
          break;
        }
      }
      report->Check(owned, "shard.candidate_ownership", detail);
    }

    // shard.attribution: every merged skyline tuple is a candidate of
    // exactly one surviving shard — the shard that owns it.
    for (const int id : snapshot.merged_skyline) {
      int attributed_to = -1;
      int times = 0;
      for (size_t i = 0; i < k; ++i) {
        if (Contains(snapshot.shards[i].candidates, id)) {
          attributed_to = static_cast<int>(i);
          ++times;
        }
      }
      const bool owner_ok =
          times == 1 && id >= 0 && id < snapshot.num_tuples &&
          owner[static_cast<size_t>(id)] == attributed_to &&
          !snapshot.shards[static_cast<size_t>(attributed_to)].dead;
      report->Check(
          owner_ok, "shard.attribution",
          "skyline tuple " + std::to_string(id) + " is a candidate of " +
              std::to_string(times) +
              " shards (must be exactly its surviving owner)");
      if (!owner_ok) break;  // one witness is enough
    }
  }

  // shard.merge_membership: the merge picked only from the candidate
  // union (attribution implies this, but membership stays checkable when
  // attribution already failed).
  {
    std::unordered_set<int> union_candidates;
    for (const ShardMergeSnapshot::Shard& shard : snapshot.shards) {
      union_candidates.insert(shard.candidates.begin(),
                              shard.candidates.end());
    }
    bool member = true;
    std::string detail;
    for (const int id : snapshot.merged_skyline) {
      if (union_candidates.count(id) == 0) {
        member = false;
        detail = "skyline tuple " + std::to_string(id) +
                 " is no shard's candidate";
        break;
      }
    }
    report->Check(member, "shard.merge_membership", detail);
  }

  // shard.question_conservation: each ledger's question total equals the
  // sum of its per-round vector; the run total equals shards + merge.
  {
    int64_t sum_questions = 0;
    for (size_t i = 0; i < k; ++i) {
      const ShardMergeSnapshot::Shard& shard = snapshot.shards[i];
      int64_t rounds_sum = 0;
      for (const int64_t q : shard.questions_per_round) rounds_sum += q;
      report->Check(rounds_sum == shard.questions,
                    "shard.question_conservation",
                    ShardLabel(i) + " reports " +
                        std::to_string(shard.questions) +
                        " questions but its rounds sum to " +
                        std::to_string(rounds_sum));
      sum_questions += shard.questions;
    }
    int64_t merge_sum = 0;
    for (const int64_t q : snapshot.merge_questions_per_round) {
      merge_sum += q;
    }
    report->Check(merge_sum == snapshot.merge_questions,
                  "shard.question_conservation",
                  "merge reports " +
                      std::to_string(snapshot.merge_questions) +
                      " questions but its rounds sum to " +
                      std::to_string(merge_sum));
    sum_questions += snapshot.merge_questions;
    report->Check(sum_questions == snapshot.total_questions,
                  "shard.question_conservation",
                  "total_questions = " +
                      std::to_string(snapshot.total_questions) +
                      " but shards + merge = " +
                      std::to_string(sum_questions));
  }

  // shard.cost_conservation: every dollar re-derives from its per-round
  // vector under the paper's formula; the total is the sum of the ledgers.
  {
    double sum_cost = 0.0;
    for (size_t i = 0; i < k; ++i) {
      const ShardMergeSnapshot::Shard& shard = snapshot.shards[i];
      const double recomputed =
          snapshot.cost_model.Cost(shard.questions_per_round);
      report->Check(std::abs(recomputed - shard.cost_usd) < kDollarTolerance,
                    "shard.cost_conservation",
                    ShardLabel(i) + " reports $" +
                        std::to_string(shard.cost_usd) +
                        " but its rounds recompute to $" +
                        std::to_string(recomputed));
      sum_cost += shard.cost_usd + shard.cost_lost_usd;
    }
    const double merge_recomputed =
        snapshot.cost_model.Cost(snapshot.merge_questions_per_round);
    report->Check(
        std::abs(merge_recomputed - snapshot.merge_cost_usd) <
            kDollarTolerance,
        "shard.cost_conservation",
        "merge reports $" + std::to_string(snapshot.merge_cost_usd) +
            " but its rounds recompute to $" +
            std::to_string(merge_recomputed));
    sum_cost += snapshot.merge_cost_usd;
    report->Check(std::abs(sum_cost - snapshot.total_cost_usd) <
                      kDollarTolerance,
                  "shard.cost_conservation",
                  "total_cost_usd = " +
                      std::to_string(snapshot.total_cost_usd) +
                      " but ledgers sum to $" + std::to_string(sum_cost));
  }

  // shard.completeness: complete <=> no dead shard and nothing
  // undetermined; a dead shard's whole slice must be reported.
  {
    bool any_dead = false;
    bool dead_reported = true;
    std::string detail;
    for (size_t i = 0; i < k; ++i) {
      if (!snapshot.shards[i].dead) continue;
      any_dead = true;
      for (const int id : snapshot.shards[i].tuple_ids) {
        if (!Contains(snapshot.undetermined, id)) {
          dead_reported = false;
          detail = "dead " + ShardLabel(i) + "'s tuple " +
                   std::to_string(id) + " missing from undetermined";
          break;
        }
      }
    }
    report->Check(dead_reported, "shard.completeness", detail);
    const bool should_be_complete =
        !any_dead && snapshot.undetermined.empty();
    report->Check(snapshot.complete == should_be_complete,
                  "shard.completeness",
                  std::string("complete flag is ") +
                      (snapshot.complete ? "true" : "false") +
                      " but dead shards / undetermined tuples say " +
                      (should_be_complete ? "true" : "false"));
  }

  // shard.budget: with a dollar cap configured, the whole run's spend
  // (including dead shards' losses) stays within it.
  if (snapshot.cost_cap_usd > 0) {
    report->Check(
        snapshot.total_cost_usd <= snapshot.cost_cap_usd + kDollarTolerance,
        "shard.budget",
        "total spend $" + std::to_string(snapshot.total_cost_usd) +
            " exceeds the $" + std::to_string(snapshot.cost_cap_usd) +
            " cap");
  }
}

}  // namespace crowdsky::audit
