#include "audit/service_audit.h"

#include <cmath>
#include <cstdio>
#include <map>
#include <tuple>

namespace crowdsky::audit {
namespace {

constexpr double kDollarTolerance = 1e-9;

std::string QueryTag(int query_id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "query %d", query_id);
  return buf;
}

double SpanCost(const AmtCostModel& pricing, int64_t hits) {
  return pricing.reward_per_hit * pricing.workers_per_question *
         static_cast<double>(hits);
}

}  // namespace

void AuditServicePacking(const ServicePackingSnapshot& snapshot,
                         AuditReport* report) {
  // service.query_cost: each query's reported dollars re-derive from its
  // per-round counts under its own pricing — the packed dispatch never
  // changes what the query itself pays on paper.
  for (const auto& query : snapshot.queries) {
    const double recomputed =
        query.cost_model.Cost(query.questions_per_round);
    report->Check(
        std::abs(recomputed - query.reported_cost_usd) <= kDollarTolerance,
        "service.query_cost",
        QueryTag(query.query_id) + ": reported $" +
            std::to_string(query.reported_cost_usd) + " but per-round counts "
            "recompute to $" + std::to_string(recomputed));
  }

  // service.routing: slots out == answers back, per query and in total.
  int64_t slot_sum = 0;
  for (const auto& query : snapshot.queries) {
    report->Check(query.routed_answers == query.slots, "service.routing",
                  QueryTag(query.query_id) + ": " +
                      std::to_string(query.slots) + " slots registered but " +
                      std::to_string(query.routed_answers) +
                      " answers routed back");
    slot_sum += query.slots;
  }
  report->Check(slot_sum == snapshot.slots, "service.routing",
                "per-query slots sum to " + std::to_string(slot_sum) +
                    " but the ledger dispatched " +
                    std::to_string(snapshot.slots));

  // service.epoch_arithmetic: every span adds up internally. Dollar
  // re-derivation accumulates *integer* HITs per pack class here; the
  // per-class dollars are computed once each, at the ledger comparison.
  struct ClassHits {
    int64_t packed = 0;
    int64_t isolated = 0;
  };
  const auto class_key = [](const AmtCostModel& pricing) {
    return std::make_tuple(pricing.reward_per_hit,
                           pricing.workers_per_question,
                           pricing.questions_per_hit);
  };
  std::map<std::tuple<double, int, int>, ClassHits> class_hits;
  int64_t span_slots = 0;
  int64_t span_packed = 0;
  int64_t span_isolated = 0;
  int64_t prev_epoch = -1;
  std::map<int64_t, bool> epoch_seen;
  for (size_t s = 0; s < snapshot.spans.size(); ++s) {
    const auto& span = snapshot.spans[s];
    const std::string tag = "span " + std::to_string(s) + " (epoch " +
                            std::to_string(span.epoch) + ")";
    report->Check(span.epoch >= prev_epoch, "service.epoch_arithmetic",
                  tag + ": epochs must close in order");
    prev_epoch = span.epoch;
    epoch_seen[span.epoch] = true;
    int64_t slots = 0;
    int64_t isolated = 0;
    int last_query = -1;
    for (const auto& [query_id, q_slots] : span.query_slots) {
      report->Check(query_id > last_query, "service.epoch_arithmetic",
                    tag + ": query ids must be ascending and unique");
      last_query = query_id;
      report->Check(q_slots > 0, "service.epoch_arithmetic",
                    tag + ": " + QueryTag(query_id) +
                        " contributes a non-positive slot count");
      slots += q_slots;
      isolated += span.pricing.PackedHitCount(q_slots);
    }
    report->Check(slots == span.slots, "service.epoch_arithmetic",
                  tag + ": per-query slots sum to " + std::to_string(slots) +
                      ", span claims " + std::to_string(span.slots));
    report->Check(span.packed_hits == span.pricing.PackedHitCount(span.slots),
                  "service.epoch_arithmetic",
                  tag + ": packed_hits != ceil(slots / questions_per_hit)");
    report->Check(span.isolated_hits == isolated, "service.epoch_arithmetic",
                  tag + ": isolated_hits != sum of per-query ceilings");
    report->Check(span.packed_hits <= span.isolated_hits,
                  "service.epoch_arithmetic",
                  tag + ": packing cannot cost more than isolation");
    span_slots += span.slots;
    span_packed += span.packed_hits;
    span_isolated += span.isolated_hits;
    ClassHits& hits = class_hits[class_key(span.pricing)];
    hits.packed += span.packed_hits;
    hits.isolated += span.isolated_hits;
  }

  // service.round_alignment: a query's k-th crowd round rode the k-th
  // epoch it participated in — its per-epoch slot sequence (one span per
  // epoch, since a query has one pricing) is exactly questions_per_round.
  for (const auto& query : snapshot.queries) {
    std::vector<int64_t> per_epoch;
    for (const auto& span : snapshot.spans) {
      for (const auto& [query_id, q_slots] : span.query_slots) {
        if (query_id == query.query_id) per_epoch.push_back(q_slots);
      }
    }
    report->Check(per_epoch == query.questions_per_round,
                  "service.round_alignment",
                  QueryTag(query.query_id) + ": per-epoch slot sequence (" +
                      std::to_string(per_epoch.size()) +
                      " epochs) does not equal its questions_per_round (" +
                      std::to_string(query.questions_per_round.size()) +
                      " rounds)");
    int64_t round_sum = 0;
    for (const int64_t q : query.questions_per_round) round_sum += q;
    report->Check(round_sum == query.slots, "service.round_alignment",
                  QueryTag(query.query_id) + ": rounds sum to " +
                      std::to_string(round_sum) + " questions but " +
                      std::to_string(query.slots) + " slots were packed");
  }

  // service.ledger: totals equal the span sums; dollars re-derive from the
  // HIT ledgers; the saving is exactly isolated − packed and never negative.
  report->Check(span_slots == snapshot.slots, "service.ledger",
                "span slots sum to " + std::to_string(span_slots) +
                    ", ledger claims " + std::to_string(snapshot.slots));
  report->Check(span_packed == snapshot.packed_hits, "service.ledger",
                "span packed HITs sum to " + std::to_string(span_packed) +
                    ", ledger claims " + std::to_string(snapshot.packed_hits));
  report->Check(
      span_isolated == snapshot.isolated_hits, "service.ledger",
      "span isolated HITs sum to " + std::to_string(span_isolated) +
          ", ledger claims " + std::to_string(snapshot.isolated_hits));
  report->Check(static_cast<int64_t>(epoch_seen.size()) == snapshot.epochs,
                "service.ledger",
                "spans cover " + std::to_string(epoch_seen.size()) +
                    " distinct epochs, ledger claims " +
                    std::to_string(snapshot.epochs));
  double span_packed_usd = 0.0;
  double span_isolated_usd = 0.0;
  for (const auto& [key, hits] : class_hits) {
    AmtCostModel pricing;
    std::tie(pricing.reward_per_hit, pricing.workers_per_question,
             pricing.questions_per_hit) = key;
    span_packed_usd += SpanCost(pricing, hits.packed);
    span_isolated_usd += SpanCost(pricing, hits.isolated);
  }
  report->Check(std::abs(span_packed_usd - snapshot.cost_packed_usd) <=
                    kDollarTolerance,
                "service.ledger", "packed dollars do not re-derive from the "
                                  "span HIT ledger");
  report->Check(std::abs(span_isolated_usd - snapshot.cost_isolated_usd) <=
                    kDollarTolerance,
                "service.ledger", "isolated dollars do not re-derive from "
                                  "the span HIT ledger");
  report->Check(std::abs((snapshot.cost_isolated_usd -
                          snapshot.cost_packed_usd) -
                         snapshot.cost_saved_usd) <= kDollarTolerance,
                "service.ledger",
                "cost_saved_usd != cost_isolated_usd - cost_packed_usd");
  report->Check(snapshot.cost_saved_usd >= -kDollarTolerance,
                "service.ledger", "packing must never cost extra money");
  report->Check(snapshot.packed_hits <= snapshot.isolated_hits,
                "service.ledger", "packed HIT total exceeds isolated total");

  // service.obs: every service.* counter mirrors the ledger value it
  // reports; an unchecked "deterministic" counter is how drift starts.
  if (!snapshot.counters.empty()) {
    const std::map<std::string, int64_t> expected = {
        {"service.queries_submitted", snapshot.submitted},
        {"service.queries_admitted", snapshot.admitted},
        {"service.queries_rejected", snapshot.rejected},
        {"service.queries_completed", snapshot.completed},
        {"service.queries_failed", snapshot.failed},
        {"service.epochs", snapshot.epochs},
        {"service.slots", snapshot.slots},
        {"service.packed_hits", snapshot.packed_hits},
        {"service.isolated_hits", snapshot.isolated_hits},
    };
    for (const auto& [name, value] : snapshot.counters) {
      if (name.rfind("service.", 0) != 0) continue;
      const auto it = expected.find(name);
      if (!report->Check(it != expected.end(), "service.obs",
                         "unknown service counter '" + name + "'")) {
        continue;
      }
      report->Check(value == it->second, "service.obs",
                    "counter '" + name + "' = " + std::to_string(value) +
                        " but the ledger says " +
                        std::to_string(it->second));
    }
  }
}

}  // namespace crowdsky::audit
