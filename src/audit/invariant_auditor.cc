#include "audit/invariant_auditor.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <numeric>
#include <sstream>
#include <unordered_map>

#include "algo/evaluator.h"
#include "algo/run_result.h"

namespace crowdsky::audit {
namespace {

// A systematically-broken input would otherwise produce O(n^2) identical
// violations; past this many the report stops growing.
constexpr size_t kMaxViolations = 64;

std::string Pair(int u, int v) {
  // Built with append to dodge GCC 12's -Wrestrict false positive on
  // `const char* + std::string&&`.
  std::string out = "(";
  out += std::to_string(u);
  out += ", ";
  out += std::to_string(v);
  out += ")";
  return out;
}

/// The map's keys in canonical (attr, first, second) order. Hash-map
/// iteration order is seed-dependent; reports built by walking a count map
/// must not inherit that order (determinism rule CS-ORD003 — two runs of
/// the same broken input must emit violations in the same order).
std::vector<PairQuestion> SortedQuestionKeys(
    const std::unordered_map<PairQuestion, int64_t, PairQuestionHash>& map) {
  std::vector<PairQuestion> keys;
  keys.reserve(map.size());
  for (const auto& [q, count] : map) keys.push_back(q);
  std::sort(keys.begin(), keys.end(),
            [](const PairQuestion& a, const PairQuestion& b) {
              if (a.attr != b.attr) return a.attr < b.attr;
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  return keys;
}

}  // namespace

bool AuditReport::Check(bool condition, const char* invariant,
                        std::string detail) {
  ++checks;
  if (condition) return true;
  if (violations.size() < kMaxViolations) {
    violations.push_back({invariant, std::move(detail)});
  } else if (violations.size() == kMaxViolations) {
    violations.push_back(
        {"audit.suppressed", "further violations suppressed"});
  }
  return false;
}

std::string AuditReport::ToString() const {
  std::ostringstream oss;
  if (ok()) {
    oss << "audit OK (" << checks << " checks)";
    return oss.str();
  }
  oss << "invariant audit: " << violations.size() << " violation(s) in "
      << checks << " checks:";
  for (const AuditViolation& v : violations) {
    oss << "\n  [" << v.invariant << "] " << v.detail;
  }
  return oss.str();
}

RelationSnapshot SnapshotRelation(const PreferenceGraph& graph) {
  RelationSnapshot snap;
  snap.n = graph.size();
  const auto un = static_cast<size_t>(snap.n);
  snap.strict.assign(un, DynamicBitset(un));
  snap.rep.resize(un);
  for (int u = 0; u < snap.n; ++u) {
    snap.rep[static_cast<size_t>(u)] = graph.representative(u);
    DynamicBitset& row = snap.strict[static_cast<size_t>(u)];
    for (int v = 0; v < snap.n; ++v) {
      if (graph.Prefers(u, v)) row.Set(static_cast<size_t>(v));
    }
  }
  return snap;
}

SessionSnapshot SnapshotSession(const CrowdSession& session) {
  SessionSnapshot snap;
  snap.pair_questions = session.stats().questions;
  snap.unary_questions = session.stats().unary_questions;
  snap.cache_hits = session.stats().cache_hits;
  snap.rounds = session.stats().rounds;
  snap.open_round_questions = session.open_round_questions();
  snap.budget = session.question_budget();
  snap.retries = session.stats().retries;
  snap.unresolved = session.stats().unresolved_questions;
  snap.questions_per_round = session.questions_per_round();
  snap.paid_pairs = session.paid_questions();
  snap.retry_pairs.reserve(session.retry_events().size());
  for (const RetryEvent& e : session.retry_events()) {
    snap.retry_pairs.push_back(e.question);
  }
  snap.unresolved_pairs = session.unresolved_questions();
  return snap;
}

void InvariantAuditor::AuditRelationSnapshot(const RelationSnapshot& snapshot,
                                             const std::string& label,
                                             AuditReport* report) const {
  const int n = snapshot.n;
  const auto un = static_cast<size_t>(n);
  const bool shape_ok =
      report->Check(n >= 0 && snapshot.strict.size() == un &&
                        snapshot.rep.size() == un,
                    "prefgraph.shape",
                    label + ": snapshot has " +
                        std::to_string(snapshot.strict.size()) +
                        " strict rows / " +
                        std::to_string(snapshot.rep.size()) + " reps for n=" +
                        std::to_string(n));
  if (!shape_ok) return;
  for (size_t u = 0; u < un; ++u) {
    if (snapshot.strict[u].size() != un) {
      report->Check(false, "prefgraph.shape",
                    label + ": strict row " + std::to_string(u) +
                        " has wrong size");
      return;
    }
  }
  if (n > options_.max_brute_force_nodes) return;

  // Representatives: in range and idempotent; class membership masks.
  std::vector<DynamicBitset> class_mask(un, DynamicBitset(un));
  for (int u = 0; u < n; ++u) {
    const int r = snapshot.rep[static_cast<size_t>(u)];
    if (!report->Check(r >= 0 && r < n, "prefgraph.representative",
                       label + ": rep[" + std::to_string(u) + "] = " +
                           std::to_string(r) + " out of range")) {
      continue;
    }
    report->Check(snapshot.rep[static_cast<size_t>(r)] == r,
                  "prefgraph.representative",
                  label + ": rep[" + std::to_string(u) + "] = " +
                      std::to_string(r) + " is not itself a representative");
    class_mask[static_cast<size_t>(r)].Set(static_cast<size_t>(u));
  }

  for (int u = 0; u < n; ++u) {
    const auto su = static_cast<size_t>(u);
    const DynamicBitset& row = snapshot.strict[su];
    // Irreflexivity.
    report->Check(!row.Test(su), "prefgraph.irreflexive",
                  label + ": " + std::to_string(u) +
                      " strictly preferred over itself");
    const int ru = snapshot.rep[su];
    // Rows are constant within an equivalence class, and classes hold no
    // internal strict edges.
    report->Check(row == snapshot.strict[static_cast<size_t>(ru)],
                  "prefgraph.class_rows",
                  label + ": " + std::to_string(u) +
                      " disagrees with its representative " +
                      std::to_string(ru) + " on strict preferences");
    report->Check(row.IntersectionCount(
                      class_mask[static_cast<size_t>(ru)]) == 0,
                  "prefgraph.class_strict",
                  label + ": " + std::to_string(u) +
                      " strictly preferred over a member of its own "
                      "equivalence class");
    row.ForEachSetBit([&](size_t sv) {
      const int v = static_cast<int>(sv);
      // Antisymmetry.
      report->Check(!snapshot.strict[sv].Test(su), "prefgraph.antisymmetry",
                    label + ": both orientations of " + Pair(u, v) +
                        " are strict");
      // Transitive closedness: everything v precedes, u precedes too.
      report->Check(snapshot.strict[sv].IsSubsetOf(row),
                    "prefgraph.closure",
                    label + ": " + Pair(u, v) +
                        " is strict but a successor of " + std::to_string(v) +
                        " is not a successor of " + std::to_string(u));
      // Column consistency: a strict edge to v covers v's whole class.
      const int rv = snapshot.rep[sv];
      report->Check(
          class_mask[static_cast<size_t>(rv)].IsSubsetOf(row),
          "prefgraph.class_columns",
          label + ": " + Pair(u, v) + " is strict but not " +
              std::to_string(u) + " over all of " + std::to_string(v) +
              "'s equivalence class");
    });
  }
}

void InvariantAuditor::AuditPreferenceGraph(const PreferenceGraph& graph,
                                            const std::string& label,
                                            AuditReport* report) const {
  if (graph.size() > options_.max_brute_force_nodes) return;
  AuditRelationSnapshot(SnapshotRelation(graph), label, report);
}

void InvariantAuditor::AuditDominanceStructure(
    const DominanceStructure& structure, const PreferenceMatrix& known,
    AuditReport* report) const {
  const int n = structure.size();
  if (!report->Check(n == known.size(), "dominance.shape",
                     "structure size " + std::to_string(n) +
                         " != matrix size " + std::to_string(known.size()))) {
    return;
  }
  if (n > options_.max_brute_force_nodes) return;
  const auto un = static_cast<size_t>(n);

  // Independent brute-force recomputation of the dominance relation.
  std::vector<DynamicBitset> brute_dominatees(un, DynamicBitset(un));
  std::vector<DynamicBitset> brute_dominators(un, DynamicBitset(un));
  for (int s = 0; s < n; ++s) {
    for (int t = 0; t < n; ++t) {
      if (s != t && known.Dominates(s, t)) {
        brute_dominatees[static_cast<size_t>(s)].Set(static_cast<size_t>(t));
        brute_dominators[static_cast<size_t>(t)].Set(static_cast<size_t>(s));
      }
    }
  }

  std::vector<int> brute_ds_size(un, 0);
  for (int t = 0; t < n; ++t) {
    const auto st = static_cast<size_t>(t);
    brute_ds_size[st] = static_cast<int>(brute_dominators[st].Count());
    report->Check(structure.dominator_bits(t) == brute_dominators[st],
                  "dominance.dominators",
                  "DS(" + std::to_string(t) +
                      ") disagrees with brute-force dominance");
    report->Check(structure.dominatees(t) == brute_dominatees[st],
                  "dominance.dominatees",
                  "D(" + std::to_string(t) +
                      ") disagrees with brute-force dominance");
    report->Check(structure.dominating_set_size(t) == brute_ds_size[st],
                  "dominance.ds_size",
                  "|DS(" + std::to_string(t) + ")| = " +
                      std::to_string(structure.dominating_set_size(t)) +
                      " but brute force counts " +
                      std::to_string(brute_ds_size[st]));
  }

  // Evaluation order: a permutation sorted by ascending |DS|, ties by id.
  const std::vector<int>& order = structure.evaluation_order();
  if (report->Check(order.size() == un, "dominance.evaluation_order",
                    "evaluation order has " + std::to_string(order.size()) +
                        " entries for n=" + std::to_string(n))) {
    DynamicBitset seen(un);
    bool perm_ok = true;
    for (const int t : order) {
      if (t < 0 || t >= n || seen.Test(static_cast<size_t>(t))) {
        perm_ok = false;
        break;
      }
      seen.Set(static_cast<size_t>(t));
    }
    report->Check(perm_ok, "dominance.evaluation_order",
                  "evaluation order is not a permutation of the ids");
    for (size_t i = 1; perm_ok && i < order.size(); ++i) {
      const int a = order[i - 1];
      const int b = order[i];
      const int da = brute_ds_size[static_cast<size_t>(a)];
      const int db = brute_ds_size[static_cast<size_t>(b)];
      report->Check(da < db || (da == db && a < b),
                    "dominance.evaluation_order",
                    "ids " + Pair(a, b) + " with |DS| " + Pair(da, db) +
                        " are out of order");
    }
  }

  // SKY_AK: exactly the empty-DS ids, ascending.
  std::vector<int> expected_skyline;
  for (int t = 0; t < n; ++t) {
    if (brute_ds_size[static_cast<size_t>(t)] == 0) {
      expected_skyline.push_back(t);
    }
  }
  report->Check(structure.known_skyline() == expected_skyline,
                "dominance.known_skyline",
                "SKY_AK has " +
                    std::to_string(structure.known_skyline().size()) +
                    " ids, brute force finds " +
                    std::to_string(expected_skyline.size()));

  // Skyline layers: layer(t) = 1 + max layer over DS(t). Processing in
  // ascending |DS| is a valid topological order (Lemma 3).
  std::vector<int> by_ds(un);
  std::iota(by_ds.begin(), by_ds.end(), 0);
  std::sort(by_ds.begin(), by_ds.end(), [&](int a, int b) {
    return brute_ds_size[static_cast<size_t>(a)] <
           brute_ds_size[static_cast<size_t>(b)];
  });
  std::vector<int> expected_layer(un, 0);
  int expected_num_layers = 0;
  for (const int t : by_ds) {
    int layer = 1;
    brute_dominators[static_cast<size_t>(t)].ForEachSetBit([&](size_t s) {
      layer = std::max(layer, expected_layer[s] + 1);
    });
    expected_layer[static_cast<size_t>(t)] = layer;
    expected_num_layers = std::max(expected_num_layers, layer);
  }
  report->Check(structure.num_layers() == expected_num_layers,
                "dominance.layers",
                "num_layers = " + std::to_string(structure.num_layers()) +
                    ", brute force finds " +
                    std::to_string(expected_num_layers));
  for (int t = 0; t < n; ++t) {
    report->Check(
        structure.layer_of(t) == expected_layer[static_cast<size_t>(t)],
        "dominance.layers",
        "layer_of(" + std::to_string(t) + ") = " +
            std::to_string(structure.layer_of(t)) + ", brute force finds " +
            std::to_string(expected_layer[static_cast<size_t>(t)]));
  }
  if (structure.num_layers() == expected_num_layers) {
    for (int l = 1; l <= expected_num_layers; ++l) {
      std::vector<int> expected_members;
      for (int t = 0; t < n; ++t) {
        if (expected_layer[static_cast<size_t>(t)] == l) {
          expected_members.push_back(t);
        }
      }
      report->Check(structure.layer(l) == expected_members,
                    "dominance.layers",
                    "layer " + std::to_string(l) +
                        " membership disagrees with brute force");
    }
  }

  // Direct dominators: the transitive reduction — s in c(t) iff s
  // dominates t and nothing s dominates also dominates t.
  for (int t = 0; t < n; ++t) {
    const auto st = static_cast<size_t>(t);
    std::vector<int> expected_direct;
    brute_dominators[st].ForEachSetBit([&](size_t s) {
      if (brute_dominatees[s].IntersectionCount(brute_dominators[st]) == 0) {
        expected_direct.push_back(static_cast<int>(s));
      }
    });
    std::vector<int> actual = structure.direct_dominators(t);
    std::sort(actual.begin(), actual.end());
    report->Check(actual == expected_direct, "dominance.direct_dominators",
                  "c(" + std::to_string(t) +
                      ") disagrees with the brute-force transitive "
                      "reduction");
  }
}

void InvariantAuditor::AuditSessionSnapshot(const SessionSnapshot& snapshot,
                                            AuditReport* report) const {
  report->Check(snapshot.pair_questions >= 0 &&
                    snapshot.unary_questions >= 0 &&
                    snapshot.cache_hits >= 0 && snapshot.rounds >= 0 &&
                    snapshot.open_round_questions >= 0 &&
                    snapshot.retries >= 0 && snapshot.unresolved >= 0,
                "session.counters", "a session counter is negative");
  report->Check(
      snapshot.pair_questions ==
          static_cast<int64_t>(snapshot.paid_pairs.size()),
      "session.paid_log",
      "question counter " + std::to_string(snapshot.pair_questions) +
          " != paid-question log size " +
          std::to_string(snapshot.paid_pairs.size()));

  std::unordered_map<PairQuestion, int64_t, PairQuestionHash> paid_count;
  paid_count.reserve(snapshot.paid_pairs.size());
  for (const PairQuestion& q : snapshot.paid_pairs) {
    report->Check(q.attr >= 0 && q.first >= 0 && q.first < q.second,
                  "session.canonical_log",
                  "paid question attr=" + std::to_string(q.attr) + " " +
                      Pair(q.first, q.second) + " is not canonical");
    ++paid_count[q];
  }
  // The resilience ledger: a pair appears in the paid log exactly
  // 1 + (its recorded retries) times — no question is ever paid for
  // twice without a retry event justifying the extra attempt.
  std::unordered_map<PairQuestion, int64_t, PairQuestionHash> retry_count;
  retry_count.reserve(snapshot.retry_pairs.size());
  for (const PairQuestion& q : snapshot.retry_pairs) {
    ++retry_count[q];
    report->Check(paid_count.count(q) > 0, "session.retry_unpaid",
                  "retry recorded for attr=" + std::to_string(q.attr) + " " +
                      Pair(q.first, q.second) +
                      " which never appears in the paid log");
  }
  report->Check(
      snapshot.retries == static_cast<int64_t>(snapshot.retry_pairs.size()),
      "session.retry_log",
      "retry counter " + std::to_string(snapshot.retries) +
          " != retry log size " + std::to_string(snapshot.retry_pairs.size()));
  for (const PairQuestion& q : SortedQuestionKeys(paid_count)) {
    const int64_t paid = paid_count.at(q);
    const auto it = retry_count.find(q);
    const int64_t retries = it == retry_count.end() ? 0 : it->second;
    report->Check(paid == 1 + retries, "session.no_repay",
                  "pair attr=" + std::to_string(q.attr) + " " +
                      Pair(q.first, q.second) + " was paid for " +
                      std::to_string(paid) + " times with " +
                      std::to_string(retries) + " recorded retries");
  }
  report->Check(snapshot.unresolved ==
                    static_cast<int64_t>(snapshot.unresolved_pairs.size()),
                "session.unresolved_log",
                "unresolved counter " + std::to_string(snapshot.unresolved) +
                    " != unresolved set size " +
                    std::to_string(snapshot.unresolved_pairs.size()));
  for (const PairQuestion& q : snapshot.unresolved_pairs) {
    report->Check(paid_count.count(q) > 0, "session.unresolved_unpaid",
                  "unresolved pair attr=" + std::to_string(q.attr) + " " +
                      Pair(q.first, q.second) + " was never paid for");
  }

  int64_t per_round_total = 0;
  for (const int64_t q : snapshot.questions_per_round) {
    report->Check(q > 0, "session.rounds",
                  "a closed round holds " + std::to_string(q) +
                      " questions (must be positive)");
    per_round_total += q;
  }
  report->Check(
      snapshot.rounds ==
          static_cast<int64_t>(snapshot.questions_per_round.size()),
      "session.rounds",
      "round counter " + std::to_string(snapshot.rounds) +
          " != per-round history size " +
          std::to_string(snapshot.questions_per_round.size()));
  const int64_t paid_total =
      snapshot.pair_questions + snapshot.unary_questions;
  report->Check(per_round_total + snapshot.open_round_questions ==
                    paid_total,
                "session.round_sum",
                "per-round counts sum to " +
                    std::to_string(per_round_total) + " (+" +
                    std::to_string(snapshot.open_round_questions) +
                    " open) but " + std::to_string(paid_total) +
                    " questions were paid for");
  if (snapshot.budget >= 0) {
    report->Check(paid_total <= snapshot.budget, "session.budget",
                  std::to_string(paid_total) +
                      " questions paid under a budget of " +
                      std::to_string(snapshot.budget));
  }
}

void InvariantAuditor::AuditSession(const CrowdSession& session,
                                    AuditReport* report) const {
  AuditSessionSnapshot(SnapshotSession(session), report);
  for (const PairQuestion& q : session.paid_questions()) {
    const bool cached = session.IsCached(q.attr, q.first, q.second);
    const bool unresolved = session.IsUnresolved(q.attr, q.first, q.second);
    report->Check(cached || unresolved, "session.cache",
                  "paid pair attr=" + std::to_string(q.attr) + " " +
                      Pair(q.first, q.second) +
                      " is neither cached nor marked unresolved");
    report->Check(!(cached && unresolved), "session.unresolved_cached",
                  "pair attr=" + std::to_string(q.attr) + " " +
                      Pair(q.first, q.second) +
                      " is both cached and marked unresolved");
  }
}

void InvariantAuditor::AuditJournalSnapshot(
    const std::vector<persist::JournalRecord>& records,
    const SessionSnapshot& snapshot, AuditReport* report) const {
  using persist::AttemptOutcome;
  using persist::JournalRecord;

  // Re-derive every session ledger from the journal alone, then compare.
  std::vector<PairQuestion> journal_paid;
  std::vector<PairQuestion> journal_unresolved;
  std::vector<int64_t> journal_rounds;
  std::unordered_map<PairQuestion, int64_t, PairQuestionHash> record_count;
  int64_t journal_retries = 0;
  int64_t journal_unary = 0;
  int64_t open = 0;
  uint64_t prev_attempt_draws = 0;
  uint64_t prev_vote_draws = 0;
  size_t index = 0;
  for (const JournalRecord& r : records) {
    const std::string tag = "record " + std::to_string(index);
    ++index;
    report->Check(r.fault_attempt_draws >= prev_attempt_draws &&
                      r.fault_vote_draws >= prev_vote_draws,
                  "journal.fault_cursor",
                  tag + ": fault-trace cursor moved backwards");
    prev_attempt_draws = r.fault_attempt_draws;
    prev_vote_draws = r.fault_vote_draws;
    switch (r.kind) {
      case JournalRecord::Kind::kPairAsk: {
        ++record_count[r.question];
        if (!report->Check(!r.attempts.empty(), "journal.record_shape",
                           tag + ": pair record holds no attempts")) {
          break;
        }
        for (size_t a = 0; a + 1 < r.attempts.size(); ++a) {
          report->Check(
              r.attempts[a].status == AttemptOutcome::kFailed,
              "journal.record_shape",
              tag + ": attempt " + std::to_string(a) +
                  " did not fail, yet a later attempt was paid for");
        }
        const bool last_failed =
            r.attempts.back().status == AttemptOutcome::kFailed;
        report->Check(
            last_failed != r.resolved, "journal.record_shape",
            tag + (r.resolved
                       ? ": resolved record ends in a failed attempt"
                       : ": given-up record ends in a successful attempt"));
        journal_paid.insert(journal_paid.end(), r.attempts.size(),
                            r.question);
        journal_retries += static_cast<int64_t>(r.attempts.size()) - 1;
        open += static_cast<int64_t>(r.attempts.size());
        if (!r.resolved) journal_unresolved.push_back(r.question);
        break;
      }
      case JournalRecord::Kind::kUnary:
        ++journal_unary;
        ++open;
        break;
      case JournalRecord::Kind::kRoundEnd:
        report->Check(r.round_questions == open, "journal.round_partition",
                      tag + ": round-end record claims " +
                          std::to_string(r.round_questions) +
                          " questions, but " + std::to_string(open) +
                          " were journaled since the previous round end");
        journal_rounds.push_back(r.round_questions);
        open = 0;
        break;
      case JournalRecord::Kind::kTermination:
        // The governor's stop marker is only ever appended at a quiescent
        // tail: nothing may follow it, and the round it closes must have
        // been sealed first (the epilogue is kRoundEnd + kTermination).
        report->Check(index == records.size(), "journal.termination",
                      tag + ": termination record is not the journal's "
                            "last record");
        report->Check(open == 0, "journal.termination",
                      tag + ": termination record inside an open round (" +
                          std::to_string(open) + " unsealed questions)");
        break;
    }
  }

  // Exactly one durable record per paid question — a re-paid question
  // would surface here as a second record for the same canonical pair.
  for (const PairQuestion& q : SortedQuestionKeys(record_count)) {
    const int64_t count = record_count.at(q);
    report->Check(count == 1, "journal.one_record",
                  "pair attr=" + std::to_string(q.attr) + " " +
                      Pair(q.first, q.second) + " has " +
                      std::to_string(count) + " durable records");
  }
  report->Check(
      journal_paid == snapshot.paid_pairs, "journal.paid_log",
      "journal-derived paid sequence (" +
          std::to_string(journal_paid.size()) +
          " attempts) differs from the session's paid log (" +
          std::to_string(snapshot.paid_pairs.size()) + " attempts)");
  report->Check(journal_retries == snapshot.retries, "journal.retries",
                "journal implies " + std::to_string(journal_retries) +
                    " retries, session counted " +
                    std::to_string(snapshot.retries));
  report->Check(journal_unary == snapshot.unary_questions, "journal.unary",
                "journal holds " + std::to_string(journal_unary) +
                    " unary records, session counted " +
                    std::to_string(snapshot.unary_questions));
  // unresolved_questions() reports in canonical sort order; match it.
  std::sort(journal_unresolved.begin(), journal_unresolved.end(),
            [](const PairQuestion& a, const PairQuestion& b) {
              if (a.attr != b.attr) return a.attr < b.attr;
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  report->Check(
      journal_unresolved == snapshot.unresolved_pairs, "journal.unresolved",
      "journal's given-up records (" +
          std::to_string(journal_unresolved.size()) +
          ") differ from the session's unresolved set (" +
          std::to_string(snapshot.unresolved_pairs.size()) + ")");
  // Per-round equality makes the journal-replayed AMT cost equal the
  // session-derived cost under every cost model, the paper's included.
  report->Check(journal_rounds == snapshot.questions_per_round,
                "journal.rounds",
                "journal-derived per-round counts (" +
                    std::to_string(journal_rounds.size()) +
                    " rounds) differ from the session's history (" +
                    std::to_string(snapshot.questions_per_round.size()) +
                    " rounds)");
  report->Check(open == snapshot.open_round_questions, "journal.open_round",
                "journal tail holds " + std::to_string(open) +
                    " questions past the last round end, session reports " +
                    std::to_string(snapshot.open_round_questions) +
                    " open");
}

void InvariantAuditor::AuditJournal(
    const std::vector<persist::JournalRecord>& records,
    const CrowdSession& session, AuditReport* report) const {
  AuditJournalSnapshot(records, SnapshotSession(session), report);
  report->Check(
      session.journal_position() == static_cast<int64_t>(records.size()),
      "journal.position",
      "session durable position " +
          std::to_string(session.journal_position()) +
          " != journal record count " + std::to_string(records.size()));
  report->Check(session.credits_remaining() == 0, "journal.credits",
                "resumed session left " +
                    std::to_string(session.credits_remaining()) +
                    " journal credits unconsumed");
}

void InvariantAuditor::AuditCostModel(
    const AmtCostModel& model,
    const std::vector<int64_t>& questions_per_round,
    AuditReport* report) const {
  if (!report->Check(model.questions_per_hit > 0 &&
                         model.workers_per_question > 0 &&
                         model.reward_per_hit >= 0.0,
                     "cost.model", "cost-model parameters out of range")) {
    return;
  }
  // The paper's formula, recomputed from scratch:
  //   cost = reward * omega * sum_i ceil(|Q_i| / questions_per_hit)
  int64_t hits = 0;
  for (const int64_t q : questions_per_round) {
    if (!report->Check(q >= 0, "cost.rounds",
                       "negative per-round question count")) {
      return;
    }
    hits += q / model.questions_per_hit +
            (q % model.questions_per_hit != 0 ? 1 : 0);
  }
  report->Check(model.Hits(questions_per_round) == hits, "cost.hits",
                "model computes " +
                    std::to_string(model.Hits(questions_per_round)) +
                    " HITs, the formula gives " + std::to_string(hits));
  const double expected = model.reward_per_hit *
                          model.workers_per_question *
                          static_cast<double>(hits);
  const double actual = model.Cost(questions_per_round);
  report->Check(std::abs(actual - expected) <= 1e-9 * (1.0 + expected),
                "cost.formula",
                "model cost " + std::to_string(actual) +
                    " != formula cost " + std::to_string(expected));
}

void InvariantAuditor::AuditResult(const AlgoResult& result,
                                   const CrowdSession& session,
                                   int num_tuples,
                                   const CompletionState& completion,
                                   AuditReport* report) const {
  const auto un = static_cast<size_t>(num_tuples);
  if (!report->Check(completion.complete.size() == un &&
                         completion.nonskyline.size() == un,
                     "result.completion_shape",
                     "completion bitsets are not sized to the dataset")) {
    return;
  }
  report->Check(completion.complete.Count() == un, "result.all_complete",
                std::to_string(completion.complete.Count()) + " of " +
                    std::to_string(num_tuples) +
                    " tuples complete at end of run");
  report->Check(completion.nonskyline.IsSubsetOf(completion.complete),
                "result.nonskyline_subset",
                "a non-skyline mark lacks the complete mark");

  // The skyline must be exactly the sorted complement of the non-skyline
  // set (undecided tuples stay in the skyline by Section 2.3).
  bool ids_ok = true;
  DynamicBitset skyline_bits(un);
  for (size_t i = 0; i < result.skyline.size(); ++i) {
    const int t = result.skyline[i];
    if (t < 0 || t >= num_tuples ||
        (i > 0 && result.skyline[i - 1] >= t)) {
      ids_ok = false;
      break;
    }
    skyline_bits.Set(static_cast<size_t>(t));
  }
  report->Check(ids_ok, "result.skyline_ids",
                "skyline ids are not strictly ascending within range");
  if (ids_ok) {
    DynamicBitset expected(un);
    expected.SetAll();
    expected.AndNotWith(completion.nonskyline);
    report->Check(skyline_bits == expected, "result.skyline_set",
                  "skyline != complement of the non-skyline set (" +
                      std::to_string(skyline_bits.AndNotCount(expected)) +
                      " extra, " +
                      std::to_string(expected.AndNotCount(skyline_bits)) +
                      " missing ids)");
  }

  report->Check(result.incomplete_tuples >= 0 &&
                    result.incomplete_tuples <= num_tuples,
                "result.incomplete_range",
                "incomplete_tuples = " +
                    std::to_string(result.incomplete_tuples));

  // Every aggregate must mirror the session it ran through.
  const SessionStats& stats = session.stats();
  report->Check(result.questions == stats.questions + stats.unary_questions,
                "result.questions",
                "result reports " + std::to_string(result.questions) +
                    " questions, the session paid for " +
                    std::to_string(stats.questions + stats.unary_questions));
  report->Check(result.rounds == stats.rounds, "result.rounds",
                "result reports " + std::to_string(result.rounds) +
                    " rounds, the session closed " +
                    std::to_string(stats.rounds));
  report->Check(result.questions_per_round == session.questions_per_round(),
                "result.questions_per_round",
                "per-round history disagrees with the session");
  report->Check(session.open_round_questions() == 0, "result.open_round",
                std::to_string(session.open_round_questions()) +
                    " paid questions left in an unclosed round");
  report->Check(result.free_lookups >= stats.cache_hits,
                "result.free_lookups",
                "free lookups " + std::to_string(result.free_lookups) +
                    " below the session's cache hits " +
                    std::to_string(stats.cache_hits));
  report->Check(result.contradictions >= 0, "result.contradictions",
                "negative contradiction count");
  report->Check(result.retries == stats.retries, "result.retries",
                "result reports " + std::to_string(result.retries) +
                    " retries, the session recorded " +
                    std::to_string(stats.retries));
  report->Check(result.degraded_quorum == stats.degraded_quorum,
                "result.degraded_quorum",
                "result reports " + std::to_string(result.degraded_quorum) +
                    " degraded-quorum answers, the session recorded " +
                    std::to_string(stats.degraded_quorum));
  report->Check(result.failed_attempts == stats.failed_attempts,
                "result.failed_attempts",
                "result reports " + std::to_string(result.failed_attempts) +
                    " failed attempts, the session recorded " +
                    std::to_string(stats.failed_attempts));
  report->Check(result.backoff_rounds == stats.backoff_rounds,
                "result.backoff_rounds",
                "result reports " + std::to_string(result.backoff_rounds) +
                    " backoff rounds, the session recorded " +
                    std::to_string(stats.backoff_rounds));

  // Completeness report: the tuple and question ledgers must add up.
  const CompletenessReport& comp = result.completeness;
  bool undetermined_ok = true;
  for (size_t i = 0; i < comp.undetermined_tuples.size(); ++i) {
    const int t = comp.undetermined_tuples[i];
    if (t < 0 || t >= num_tuples ||
        (i > 0 && comp.undetermined_tuples[i - 1] >= t)) {
      undetermined_ok = false;
      break;
    }
  }
  report->Check(undetermined_ok, "result.undetermined_ids",
                "undetermined tuple ids are not strictly ascending within "
                "range");
  report->Check(static_cast<int64_t>(comp.undetermined_tuples.size()) ==
                    result.incomplete_tuples,
                "result.undetermined_count",
                std::to_string(comp.undetermined_tuples.size()) +
                    " undetermined ids vs incomplete_tuples = " +
                    std::to_string(result.incomplete_tuples));
  report->Check(comp.complete == comp.undetermined_tuples.empty(),
                "result.complete_flag",
                "completeness flag disagrees with the undetermined list");
  report->Check(comp.determined_tuples +
                        static_cast<int64_t>(comp.undetermined_tuples.size()) ==
                    num_tuples,
                "result.determined_sum",
                std::to_string(comp.determined_tuples) + " determined + " +
                    std::to_string(comp.undetermined_tuples.size()) +
                    " undetermined != " + std::to_string(num_tuples) +
                    " tuples");
  report->Check(comp.resolved_questions ==
                    stats.questions - stats.retries -
                        stats.unresolved_questions,
                "result.resolved_questions",
                "resolved-question count disagrees with the session's "
                "attempt/retry/unresolved ledger");
  report->Check(comp.unresolved_questions == stats.unresolved_questions,
                "result.unresolved_questions",
                "result reports " + std::to_string(comp.unresolved_questions) +
                    " unresolved questions, the session recorded " +
                    std::to_string(stats.unresolved_questions));
  report->Check(comp.retries_exhausted == (stats.unresolved_questions > 0),
                "result.retries_exhausted",
                "retries_exhausted flag disagrees with the session's "
                "unresolved count");
  // BudgetCanAsk, not CanAsk: the flag is budget-only (governor denials
  // report through the TerminationReport), and CanAsk() would count a
  // denial against the governor's ledger just by auditing.
  report->Check(!comp.budget_exhausted ||
                    (session.question_budget() >= 0 &&
                     !session.BudgetCanAsk()),
                "result.budget_exhausted",
                "budget_exhausted reported but the session can still ask");
}

void InvariantAuditor::AuditTermination(const AlgoResult& result,
                                        const CrowdSession& session,
                                        AuditReport* report) const {
  const TerminationReport& term = result.termination;
  const SessionStats& stats = session.stats();

  // The headline guarantee: a governed run never spends past its cap.
  // The tolerance matches the governor's own kCostEpsilon — cost is a sum
  // of (reward * omega) terms, one per HIT, accumulated identically on
  // both sides.
  if (term.governed && term.cost_cap_usd > 0.0) {
    report->Check(term.cost_spent_usd <= term.cost_cap_usd + 1e-9,
                  "governor.cost_cap",
                  "spent $" + std::to_string(term.cost_spent_usd) +
                      " under a cap of $" +
                      std::to_string(term.cost_cap_usd));
  }
  // The report's spend recomputes from the session's per-round history
  // under the report's own pricing — the governor metered an independent
  // HIT ledger (closed_hits_), so equality proves neither drifted.
  if (term.governed) {
    const double recomputed =
        term.cost_model.Cost(session.questions_per_round());
    report->Check(std::abs(term.cost_spent_usd - recomputed) <=
                      1e-9 * (1.0 + recomputed),
                  "governor.cost_ledger",
                  "report claims $" + std::to_string(term.cost_spent_usd) +
                      " spent, the session's rounds recompute to $" +
                      std::to_string(recomputed));
  }
  report->Check(term.rounds == stats.rounds, "governor.rounds",
                "report claims " + std::to_string(term.rounds) +
                    " rounds, the session closed " +
                    std::to_string(stats.rounds));

  // Reason/ledger consistency: each stop reason implies its cap was
  // actually configured, and the round cap was actually reached (the
  // other caps can trip between the threshold checks, so only >= style
  // facts hold for them).
  const TerminationReason reason = term.reason;
  report->Check(term.governed || reason == TerminationReason::kCompleted,
                "governor.reason",
                "ungoverned run reports stop reason '" +
                    std::string(TerminationReasonName(reason)) + "'");
  report->Check(
      term.governed || (term.cost_cap_usd == 0.0 && term.round_cap == 0 &&
                        term.stall_cap == 0),
      "governor.reason", "ungoverned run reports nonzero caps");
  if (reason == TerminationReason::kDollarCap) {
    report->Check(term.cost_cap_usd > 0.0, "governor.reason",
                  "dollar-cap stop without a configured dollar cap");
  }
  if (reason == TerminationReason::kRoundCap) {
    report->Check(term.round_cap > 0 && term.rounds >= term.round_cap,
                  "governor.reason",
                  "round-cap stop at " + std::to_string(term.rounds) +
                      " rounds under a cap of " +
                      std::to_string(term.round_cap));
  }
  if (reason == TerminationReason::kStalled) {
    report->Check(term.stall_cap > 0, "governor.reason",
                  "stall stop without a configured stall watchdog");
  }
  // Denials are only counted after the stop latched; a run that completed
  // naturally was never refused funding.
  report->Check(term.denied_questions >= 0 &&
                    (reason != TerminationReason::kCompleted ||
                     term.denied_questions == 0),
                "governor.denied",
                "completed run reports " +
                    std::to_string(term.denied_questions) +
                    " denied questions");
  report->Check(term.unresolved == session.unresolved_questions(),
                "governor.unresolved",
                "report lists " + std::to_string(term.unresolved.size()) +
                    " unresolved questions, the session holds " +
                    std::to_string(session.unresolved_questions().size()));
}

void InvariantAuditor::AuditResumeExtension(const AlgoResult& partial,
                                            const AlgoResult& resumed,
                                            AuditReport* report) const {
  // In-by-default (Section 2.3) makes the partial skyline = proven
  // skyline + undetermined tuples, so extending the run can only shrink
  // it. Both id lists are ascending (checked by AuditResult), so set
  // algebra via std::includes / set_difference is sound.
  report->Check(std::includes(partial.skyline.begin(), partial.skyline.end(),
                              resumed.skyline.begin(), resumed.skyline.end()),
                "resume.skyline_subset",
                "resumed skyline holds tuples the partial run had already "
                "excluded");
  std::vector<int> dropped;
  std::set_difference(partial.skyline.begin(), partial.skyline.end(),
                      resumed.skyline.begin(), resumed.skyline.end(),
                      std::back_inserter(dropped));
  const std::vector<int>& partial_und =
      partial.completeness.undetermined_tuples;
  const std::vector<int>& resumed_und =
      resumed.completeness.undetermined_tuples;
  report->Check(std::includes(partial_und.begin(), partial_und.end(),
                              dropped.begin(), dropped.end()),
                "resume.dropped_undetermined",
                std::to_string(dropped.size()) +
                    " tuples left the skyline on resume, but not all were "
                    "undetermined in the partial run");
  report->Check(std::includes(partial_und.begin(), partial_und.end(),
                              resumed_und.begin(), resumed_und.end()),
                "resume.undetermined_subset",
                "resume marked a tuple undetermined that the partial run "
                "had determined");

  // Paid work only grows: the resumed run replays the partial run's
  // journal as credits and then keeps going.
  report->Check(resumed.questions >= partial.questions &&
                    resumed.rounds >= partial.rounds &&
                    resumed.completeness.resolved_questions >=
                        partial.completeness.resolved_questions,
                "resume.monotone",
                "a paid-work counter shrank across the resume (questions " +
                    std::to_string(partial.questions) + " -> " +
                    std::to_string(resumed.questions) + ", rounds " +
                    std::to_string(partial.rounds) + " -> " +
                    std::to_string(resumed.rounds) + ")");

  // The capped run's per-round history is a prefix of the resumed run's,
  // except that its final round may have been cut short by the cap — the
  // resume re-opens that round and closes it at its true size.
  const std::vector<int64_t>& pr = partial.questions_per_round;
  const std::vector<int64_t>& rr = resumed.questions_per_round;
  bool prefix_ok = pr.size() <= rr.size();
  for (size_t i = 0; prefix_ok && i < pr.size(); ++i) {
    prefix_ok = i + 1 < pr.size() ? pr[i] == rr[i] : pr[i] <= rr[i];
  }
  report->Check(prefix_ok, "resume.round_prefix",
                "partial per-round history (" + std::to_string(pr.size()) +
                    " rounds) is not a prefix of the resumed history (" +
                    std::to_string(rr.size()) + " rounds)");
}

void InvariantAuditor::AuditObservability(const obs::MetricRegistry& metrics,
                                          const CrowdSession& session,
                                          const AlgoResult& result,
                                          const AmtCostModel& model,
                                          AuditReport* report) const {
  // The expected value of every deterministic counter, recomputed from the
  // ledgers the counters are supposed to mirror. The counters were
  // incremented through an independent code path (obs hooks at the same
  // sites), so equality here proves neither side silently drifted.
  // Ordered maps: the "never published" walk below emits one finding per
  // missing counter, and that order must be run-independent.
  const SessionStats& s = session.stats();
  std::map<std::string, int64_t> expected;
  expected["crowdsky.pair_attempts"] = s.questions;
  expected["crowdsky.cache_hits"] = s.cache_hits;
  expected["crowdsky.rounds"] = s.rounds;
  expected["crowdsky.unary_questions"] = s.unary_questions;
  expected["crowdsky.retries"] = s.retries;
  expected["crowdsky.degraded_quorum"] = s.degraded_quorum;
  expected["crowdsky.failed_attempts"] = s.failed_attempts;
  expected["crowdsky.unresolved_questions"] = s.unresolved_questions;
  expected["crowdsky.backoff_rounds"] = s.backoff_rounds;
  expected["crowdsky.worker_answers"] =
      session.oracle_stats().worker_answers;
  expected["crowdsky.free_lookups"] = result.free_lookups;
  expected["crowdsky.hits_paid"] = model.Hits(session.questions_per_round());
  int64_t round_sum = 0;
  for (const int64_t q : session.questions_per_round()) round_sum += q;
  expected["crowdsky.round_questions_count"] = s.rounds;
  expected["crowdsky.round_questions_sum"] = round_sum;
  expected["journal.replayed_pair_attempts"] =
      session.replayed_pair_attempts();
  expected["journal.replayed_unary_questions"] =
      session.replayed_unary_questions();
  persist::JournalWriter* journal = session.journal();
  expected["journal.records_appended"] =
      journal != nullptr ? journal->records_appended() : 0;
  if (journal != nullptr) {
    expected["journal.records_total"] = journal->records_total();
    expected["journal.bytes_appended"] = journal->bytes_appended();
    expected["journal.fsyncs"] = journal->fsyncs();
  }
  // Governor counters mirror the governor's own ledgers (which
  // AuditTermination separately reconciles against the session).
  const RunGovernor* governor = session.governor();
  if (governor != nullptr) {
    expected["governor.rounds_observed"] = governor->rounds_closed();
    expected["governor.hits_funded"] = governor->hits_closed();
    expected["governor.denied_questions"] = governor->denied_questions();
    expected["governor.stops"] = governor->stopped() ? 1 : 0;
  }

  // Every published counter under the deterministic prefixes must be a
  // known catalog name with the ledger's exact value; other prefixes
  // ("pool.", trace sizes) are scheduling-dependent and not audited.
  auto is_deterministic = [](const std::string& name) {
    return name.rfind("crowdsky.", 0) == 0 ||
           name.rfind("journal.", 0) == 0 ||
           name.rfind("governor.", 0) == 0;
  };
  std::map<std::string, int64_t> present;
  for (const auto& [name, value] : metrics.CounterSamples()) {
    if (!is_deterministic(name)) continue;
    present.emplace(name, value);
    const auto it = expected.find(name);
    if (!report->Check(it != expected.end(), "obs.counter_known",
                       "counter '" + name +
                           "' uses a deterministic prefix but is not in "
                           "the audited catalog")) {
      continue;
    }
    report->Check(value == it->second, "obs.counter_ledger",
                  "counter '" + name + "' = " + std::to_string(value) +
                      " but the ledger it mirrors says " +
                      std::to_string(it->second));
  }
  for (const auto& [name, value] : expected) {
    report->Check(present.contains(name), "obs.counter_present",
                  "catalog counter '" + name +
                      "' was never published to the registry");
  }
  // The scraped cost gauges recompute exactly (same doubles, same order).
  for (const auto& [name, value] : metrics.GaugeSamples()) {
    if (name == "crowdsky.cost_usd") {
      report->Check(value == model.Cost(session.questions_per_round()),
                    "obs.cost_gauge",
                    "cost gauge disagrees with the AMT cost model");
    }
    if (governor != nullptr && name == "governor.cost_spent_usd") {
      report->Check(value == governor->cost_spent_usd(), "obs.cost_gauge",
                    "governor spend gauge disagrees with the governor's "
                    "HIT ledger");
    }
    if (governor != nullptr && name == "governor.cost_cap_usd") {
      report->Check(value == governor->cost_cap_usd(), "obs.cost_gauge",
                    "governor cap gauge disagrees with the configured cap");
    }
  }
}

CompletionMonitor::CompletionMonitor(int n)
    : prev_complete_(static_cast<size_t>(n)),
      prev_nonskyline_(static_cast<size_t>(n)) {}

void CompletionMonitor::Observe(const CompletionState& state,
                                AuditReport* report) {
  ++observations_;
  const std::string tag = "observation " + std::to_string(observations_);
  if (!report->Check(state.complete.size() == prev_complete_.size() &&
                         state.nonskyline.size() == prev_nonskyline_.size(),
                     "completion.shape",
                     tag + ": completion bitsets changed size")) {
    return;
  }
  report->Check(prev_complete_.IsSubsetOf(state.complete),
                "completion.monotone_complete",
                tag + ": a tuple lost its complete mark");
  report->Check(prev_nonskyline_.IsSubsetOf(state.nonskyline),
                "completion.monotone_nonskyline",
                tag + ": a tuple lost its non-skyline mark");
  report->Check(state.nonskyline.IsSubsetOf(state.complete),
                "completion.nonskyline_subset",
                tag + ": a non-skyline mark lacks the complete mark");
  // A tuple completed as skyline may never flip to non-skyline.
  DynamicBitset flipped = state.nonskyline;
  flipped.AndWith(prev_complete_);
  report->Check(flipped.IsSubsetOf(prev_nonskyline_),
                "completion.fate_flip",
                tag + ": a complete skyline tuple became non-skyline");
  prev_complete_ = state.complete;
  prev_nonskyline_ = state.nonskyline;
}

}  // namespace crowdsky::audit
