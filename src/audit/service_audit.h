// service.* invariant rules: conservation laws of the multi-query crowd
// service (src/service). Like the shard.* rules in shard_audit.h, the
// checks run on a plain snapshot struct so tests can fabricate violations
// the scheduler makes unrepresentable by construction.
//
// Rules:
//   service.query_cost       every query's reported dollar cost re-derives
//                            from its per-round question counts under the
//                            paper's formula with its own effective
//                            pricing — packing saves the *service* money,
//                            never alters what a query's run reports
//   service.routing          every registered question slot produced
//                            exactly one answer routed back to the asking
//                            query (no lost or cross-delivered answers)
//   service.round_alignment  each query's sequence of per-epoch slot
//                            counts is exactly its questions_per_round
//                            vector: round k of the query rode epoch k of
//                            its participation, nothing skipped, nothing
//                            smeared across epochs
//   service.epoch_arithmetic each (epoch, pack class) span adds up: slot
//                            totals, packed HITs = ⌈slots/qph⌉, isolated
//                            HITs = Σ per-query ⌈·⌉, packed ≤ isolated
//   service.ledger           the service totals equal the span sums, the
//                            dollar figures re-derive from the HIT
//                            ledgers, and saved = isolated − packed ≥ 0
//   service.obs              every service.* counter equals the ledger
//                            value it mirrors; unknown service.* names
//                            are violations (checked only when counters
//                            were collected)
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "audit/invariant_auditor.h"
#include "crowd/cost_model.h"

namespace crowdsky::audit {

/// Flattened outcome of one multi-query service run.
struct ServicePackingSnapshot {
  /// One entry per *admitted* query (rejected queries never reach the
  /// packer; the scheduler asserts they carry zero slots by construction).
  struct Query {
    int query_id = -1;
    /// Effective pricing (workers_per_question folded in).
    AmtCostModel cost_model;
    /// The query's per-round paid question counts, from its AlgoResult.
    std::vector<int64_t> questions_per_round;
    /// Dollar cost the query's own run reported.
    double reported_cost_usd = 0.0;
    /// Question slots the packer registered for this query.
    int64_t slots = 0;
    /// Answers the packer routed back to this query.
    int64_t routed_answers = 0;
  };
  std::vector<Query> queries;

  /// One closed (epoch, pack class) posting span, in close order.
  struct EpochSpan {
    int64_t epoch = 0;
    AmtCostModel pricing;
    /// (query id, slots), ascending query id, counts positive.
    std::vector<std::pair<int, int64_t>> query_slots;
    int64_t slots = 0;
    int64_t packed_hits = 0;
    int64_t isolated_hits = 0;
  };
  std::vector<EpochSpan> spans;

  // Service-level ledger totals.
  int64_t epochs = 0;  ///< epochs that carried at least one question
  int64_t slots = 0;
  int64_t packed_hits = 0;
  int64_t isolated_hits = 0;
  double cost_packed_usd = 0.0;
  double cost_isolated_usd = 0.0;
  double cost_saved_usd = 0.0;

  // Admission tallies, for the service.obs counter rule.
  int64_t submitted = 0;
  int64_t admitted = 0;
  int64_t rejected = 0;
  int64_t completed = 0;
  int64_t failed = 0;

  /// service.* counter samples (name, value). Empty = observability was
  /// off and the service.obs rule is skipped.
  std::vector<std::pair<std::string, int64_t>> counters;
};

/// Evaluates every service.* rule against the snapshot.
void AuditServicePacking(const ServicePackingSnapshot& snapshot,
                         AuditReport* report);

}  // namespace crowdsky::audit
