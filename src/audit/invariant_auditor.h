// InvariantAuditor: machine-checkable statements of the invariants the
// CrowdSky algorithms rely on, validated on demand against independent
// brute-force recomputation.
//
// The auditor never trusts the data structure under test: preference
// graphs are checked through their public relation queries against the
// axioms of a strict partial order with equivalence classes; the
// DominanceStructure is re-derived pair-by-pair from the raw known-
// attribute matrix; session accounting is recomputed from the paid-
// question log; the AMT cost is recomputed from the per-round counts with
// the paper's formula  0.02 * omega * sum_i ceil(|Q_i| / 5).
//
// Checks that need corrupt inputs for testing operate on plain snapshot
// structs (RelationSnapshot, SessionSnapshot) so tests can fabricate
// violations that the production classes make unrepresentable by
// construction.
//
// Violations are *reported*, not fatal: callers collect an AuditReport and
// decide. The algorithm drivers (CrowdSkyOptions::audit) escalate a
// non-empty report to CROWDSKY_CHECK failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "crowd/cost_model.h"
#include "crowd/question.h"
#include "crowd/session.h"
#include "obs/metrics.h"
#include "persist/journal.h"
#include "prefgraph/preference_graph.h"
#include "skyline/dominance.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

struct AlgoResult;       // algo/run_result.h
struct CompletionState;  // algo/evaluator.h

namespace audit {

/// One broken invariant.
struct AuditViolation {
  std::string invariant;  ///< dotted name, e.g. "prefgraph.antisymmetry"
  std::string detail;     ///< human-readable witness
};

/// Accumulated outcome of one or more audit passes.
struct AuditReport {
  int64_t checks = 0;  ///< invariant checks evaluated (pass or fail)
  std::vector<AuditViolation> violations;

  bool ok() const { return violations.empty(); }
  /// Evaluates one check: increments `checks`, records a violation when
  /// `condition` is false. Returns `condition`.
  bool Check(bool condition, const char* invariant, std::string detail);
  /// "audit OK (N checks)" or a numbered list of violations.
  std::string ToString() const;
};

/// The strict/equivalence relation of a PreferenceGraph, flattened so
/// tests can corrupt it. strict[u].Test(v) <=> "u strictly preferred over
/// v"; rep[u] is u's equivalence-class representative.
struct RelationSnapshot {
  int n = 0;
  std::vector<DynamicBitset> strict;
  std::vector<int> rep;
};

/// Extracts the full relation of `graph` via its public queries.
RelationSnapshot SnapshotRelation(const PreferenceGraph& graph);

/// The accounting state of a CrowdSession, flattened so tests can corrupt
/// it (double-charged rounds, duplicated paid pairs, ...).
struct SessionSnapshot {
  int64_t pair_questions = 0;
  int64_t unary_questions = 0;
  int64_t cache_hits = 0;
  int64_t rounds = 0;
  int64_t open_round_questions = 0;
  int64_t budget = -1;  ///< negative = unlimited
  int64_t retries = 0;
  int64_t unresolved = 0;
  std::vector<int64_t> questions_per_round;
  std::vector<PairQuestion> paid_pairs;  ///< canonical, in ask order
  /// One entry per recorded retry, canonical (from retry_events()).
  std::vector<PairQuestion> retry_pairs;
  /// The questions given up on, canonical.
  std::vector<PairQuestion> unresolved_pairs;
};

SessionSnapshot SnapshotSession(const CrowdSession& session);

struct AuditOptions {
  /// Brute-force passes are O(n^2) (dominance) / O(n^2) bitset words
  /// (closure); above this size they are skipped rather than sampled, so
  /// a clean report on a large input only covers the cheap invariants.
  int max_brute_force_nodes = 4096;
};

/// \brief On-demand validator for CrowdSky's core invariants.
class InvariantAuditor {
 public:
  explicit InvariantAuditor(AuditOptions options = {})
      : options_(options) {}

  /// Partial-order axioms on a (possibly fabricated) relation snapshot:
  /// irreflexivity, antisymmetry, transitive closedness, equivalence-class
  /// consistency (valid idempotent representatives, identical strict rows
  /// inside a class, no strict edge within a class, class-closed columns).
  /// `label` prefixes violation details (e.g. the crowd attribute).
  void AuditRelationSnapshot(const RelationSnapshot& snapshot,
                             const std::string& label,
                             AuditReport* report) const;

  /// Snapshot + axioms for a live preference graph.
  void AuditPreferenceGraph(const PreferenceGraph& graph,
                            const std::string& label,
                            AuditReport* report) const;

  /// Recomputes AK dominance pair-by-pair from `known` and checks every
  /// derived view of `structure` against it: dominator/dominatee bitsets
  /// (mutual transposes), |DS(t)| sizes, the ascending-|DS| evaluation
  /// order, SKY_AK, skyline layers, and the direct-dominator transitive
  /// reduction. Skipped (with no violation) above max_brute_force_nodes.
  void AuditDominanceStructure(const DominanceStructure& structure,
                               const PreferenceMatrix& known,
                               AuditReport* report) const;

  /// Session accounting on a (possibly fabricated) snapshot: paid-pair log
  /// matches the question counter, canonical log entries, per-round counts
  /// positive and summing to the questions asked, round counter matching,
  /// budget respected, and the resilience ledger — a pair may appear in
  /// the paid log exactly 1 + (its recorded retries) times (no silent
  /// double-pay), every retry refers to a paid question, and every
  /// unresolved question was paid for at least once.
  void AuditSessionSnapshot(const SessionSnapshot& snapshot,
                            AuditReport* report) const;

  /// Snapshot + accounting checks for a live session, plus "every paid
  /// pair is cached or unresolved (never both)".
  void AuditSession(const CrowdSession& session, AuditReport* report) const;

  /// Durability ledger on a (possibly fabricated) journal against a
  /// session snapshot: the pair records, flattened attempt-by-attempt in
  /// journal order, are exactly the session's paid log (every paid
  /// question has exactly one durable record and nothing was paid
  /// undurably); record shapes are legal (non-final attempts failed, the
  /// final attempt failed iff the record gave up); retry / unresolved /
  /// unary arithmetic recomputed from the records matches the counters;
  /// round-end records partition the stream into exactly the session's
  /// per-round counts with the open-round tail (which makes the
  /// journal-derived AMT cost equal the session-derived cost under any
  /// cost model); and the fault-trace cursor never moves backwards.
  void AuditJournalSnapshot(
      const std::vector<persist::JournalRecord>& records,
      const SessionSnapshot& snapshot, AuditReport* report) const;

  /// Snapshot + journal checks for a live session, plus the resume
  /// ledger: the session's durable position (folded + replayed + freshly
  /// appended records) equals the journal's record count, and a resumed
  /// session consumed every queued credit — a resumed run that asked
  /// fewer questions than the original would leave credits behind.
  void AuditJournal(const std::vector<persist::JournalRecord>& records,
                    const CrowdSession& session, AuditReport* report) const;

  /// Recomputes HITs and cost from `questions_per_round` with the paper's
  /// formula and checks `model` agrees with itself and the formula.
  void AuditCostModel(const AmtCostModel& model,
                      const std::vector<int64_t>& questions_per_round,
                      AuditReport* report) const;

  /// End-of-run consistency between an AlgoResult, the session it ran
  /// through, and the final completion state: all tuples complete, the
  /// skyline is exactly the sorted complement of the non-skyline set,
  /// every counter (including the robustness counters) mirrors the
  /// session stats, and the completeness report's tuple/question ledgers
  /// add up.
  void AuditResult(const AlgoResult& result, const CrowdSession& session,
                   int num_tuples, const CompletionState& completion,
                   AuditReport* report) const;

  /// Termination-report consistency ("governor.*"): a governed run never
  /// spends past its dollar cap (`cost_spent <= cap` within float
  /// tolerance), the report's cost ledger recomputes from the session's
  /// per-round history under the report's own cost model, the round count
  /// mirrors the session, the stop reason implies the matching cap was
  /// configured (and, for the round cap, actually reached), denials only
  /// happen after a stop, and the unresolved set is exactly the
  /// session's. Ungoverned results must report kCompleted with zero caps.
  void AuditTermination(const AlgoResult& result,
                        const CrowdSession& session,
                        AuditReport* report) const;

  /// Cross-run extension ("resume.*"): `resumed` continued `partial`'s
  /// run directory under looser limits. Under the in-by-default rule the
  /// partial skyline = proven skyline + undetermined tuples, so more
  /// crowd work can only shrink it: the resumed skyline is a subset of
  /// the partial one, every dropped member was undetermined in the
  /// partial run, the undetermined set itself shrinks, the paid-work
  /// counters grow monotonically, and the partial per-round history is a
  /// prefix of the resumed one (the final capped round may be a strict
  /// prefix of the round the resumed run closes).
  void AuditResumeExtension(const AlgoResult& partial,
                            const AlgoResult& resumed,
                            AuditReport* report) const;

  /// Observability/ledger equality ("obs.*"): every `crowdsky.*` and
  /// `journal.*` counter in `metrics` is a *known* catalog name and equals
  /// the independently-maintained ledger it mirrors — SessionStats for the
  /// session counters, the journal writer / replay ledgers for the
  /// journal counters, the oracle stats, AlgoResult's free-lookup count,
  /// and the AMT HIT formula for `crowdsky.hits_paid`; histogram samples
  /// of `crowdsky.round_questions` recompute from questions_per_round.
  /// An unknown counter under those prefixes is itself a violation (a
  /// "deterministic" metric nobody cross-checks is how drift starts);
  /// `pool.*` and every other prefix are timing-dependent and ignored.
  void AuditObservability(const obs::MetricRegistry& metrics,
                          const CrowdSession& session,
                          const AlgoResult& result,
                          const AmtCostModel& model,
                          AuditReport* report) const;

 private:
  AuditOptions options_;
};

/// Watches a CompletionState across observations and reports any
/// non-monotone transition: completion bits may only be gained, a
/// non-skyline mark requires the complete mark, and a tuple that was
/// complete-as-skyline may never flip to non-skyline.
class CompletionMonitor {
 public:
  explicit CompletionMonitor(int n);

  void Observe(const CompletionState& state, AuditReport* report);

  int64_t observations() const { return observations_; }

 private:
  DynamicBitset prev_complete_;
  DynamicBitset prev_nonskyline_;
  int64_t observations_ = 0;
};

}  // namespace audit
}  // namespace crowdsky
