// shard.* invariant rules: conservation laws of the distributed merge
// (src/dist). Like the session/governor rules in invariant_auditor.h, the
// checks run on a plain snapshot struct so tests can fabricate violations
// the coordinator makes unrepresentable by construction.
//
// Rules:
//   shard.partition            the slices are disjoint and cover [0, n)
//   shard.candidate_ownership  every candidate belongs to its shard's
//                              slice; dead shards contribute none
//   shard.attribution          every merged skyline tuple is a candidate
//                              of exactly one surviving shard (its owner)
//   shard.merge_membership     the merged skyline only picks from the
//                              candidate union
//   shard.question_conservation  per-ledger question counts equal the sum
//                              of their per-round vectors, and the run
//                              total equals shards + merge
//   shard.cost_conservation    every reported dollar amount re-derives
//                              from its per-round vector under the paper's
//                              formula, and the run total equals the sum
//                              of the shard ledgers plus merge plus the
//                              dead shards' journaled losses
//   shard.completeness         complete <=> no dead shard and nothing
//                              undetermined; every dead shard's slice is
//                              reported undetermined
//   shard.budget               with a dollar cap, total spend stays under
//                              cap plus the merge's replay allowance
#pragma once

#include <cstdint>
#include <vector>

#include "audit/invariant_auditor.h"
#include "crowd/cost_model.h"

namespace crowdsky::audit {

/// Flattened outcome of one sharded run, global tuple ids throughout.
struct ShardMergeSnapshot {
  int num_tuples = 0;

  struct Shard {
    bool dead = false;
    std::vector<int> tuple_ids;   ///< slice, ascending
    std::vector<int> candidates;  ///< contributed candidates (empty if dead)
    std::vector<int64_t> questions_per_round;
    int64_t questions = 0;
    double cost_usd = 0.0;
    double cost_lost_usd = 0.0;  ///< dead incarnations' journaled spend
  };
  std::vector<Shard> shards;

  std::vector<int> merged_skyline;  ///< ascending
  std::vector<int64_t> merge_questions_per_round;
  int64_t merge_questions = 0;
  double merge_cost_usd = 0.0;

  int64_t total_questions = 0;
  double total_cost_usd = 0.0;
  /// Governor dollar cap on the whole run (0 = uncapped).
  double cost_cap_usd = 0.0;
  /// Effective pricing (workers_per_question folded in).
  AmtCostModel cost_model;

  std::vector<int> undetermined;  ///< aggregate, ascending
  bool complete = true;
};

/// Evaluates every shard.* rule against the snapshot.
void AuditShardMerge(const ShardMergeSnapshot& snapshot,
                     AuditReport* report);

}  // namespace crowdsky::audit
