// ParallelSL (Algorithm 2, Section 4.2): parallelization with skyline
// layers. A tuple's questions may start as soon as all its *direct*
// AK-dominators c(t) are complete — which transitively implies all of
// DS(t) is complete — so in every crowd round all ready tuples advance by
// one question simultaneously. Dependency (C2) is deliberately violated
// (overlapping dominating sets may probe redundantly), trading a few
// additional questions (~10% in the paper) for rounds that drop by up to
// two orders of magnitude.
#pragma once

#include "algo/run_result.h"
#include "crowd/session.h"
#include "data/dataset.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

AlgoResult RunParallelSL(const Dataset& dataset,
                         const DominanceStructure& structure,
                         CrowdSession* session,
                         const CrowdSkyOptions& options = {});

AlgoResult RunParallelSL(const Dataset& dataset, CrowdSession* session,
                         const CrowdSkyOptions& options = {});

}  // namespace crowdsky
