#include "algo/evaluator.h"

#include <algorithm>

namespace crowdsky {

TupleEvaluator::TupleEvaluator(int tuple, const DominanceStructure& structure,
                               CrowdKnowledge* knowledge,
                               CrowdSession* session,
                               const CompletionState* completion,
                               const CrowdSkyOptions& options)
    : t_(tuple),
      structure_(structure),
      knowledge_(knowledge),
      session_(session),
      completion_(completion),
      pruning_(options.pruning),
      multi_attr_(options.multi_attr),
      ds_(structure.dominator_bits(tuple)) {
  CROWDSKY_CHECK(knowledge != nullptr && session != nullptr &&
                 completion != nullptr);
}

void TupleEvaluator::Refresh() {
  if (pruning_.use_p1) {
    // P1 (Corollary 1): a complete non-skyline dominator u never decides
    // t's fate — the tuple that eliminated u is also in DS(t) (Lemma 2).
    ds_.AndNotWith(completion_->nonskyline);
  }
  if (pruning_.use_p2) {
    // P2 (Corollary 2): only SKY_AC(DS(t)) needs to be compared with t.
    const std::vector<int> members = Members();
    if (members.size() > 1) {
      for (const int u : members) {
        if (knowledge_->PrunedFromAcSkyline(ds_, members, u)) {
          ds_.Reset(static_cast<size_t>(u));
        }
      }
    }
  }
}

void TupleEvaluator::BuildProbePairs() {
  const std::vector<int> members = Members();
  probe_pairs_.clear();
  probe_idx_ = 0;
  if (members.size() < 2) return;
  probe_pairs_.reserve(members.size() * (members.size() - 1) / 2);
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      probe_pairs_.push_back({members[i], members[j],
                              structure_.Frequency(members[i], members[j])});
    }
  }
  // Highest pruning power first (Section 3.4); ties by id for determinism.
  std::stable_sort(probe_pairs_.begin(), probe_pairs_.end(),
                   [](const ProbePair& a, const ProbePair& b) {
                     if (a.freq != b.freq) return a.freq > b.freq;
                     if (a.u != b.u) return a.u < b.u;
                     return a.v < b.v;
                   });
}

bool TupleEvaluator::AskPair(int u, int v, size_t freq, AskMode mode) {
  bool paid = false;
  last_ask_unresolved_ = false;
  const AskContext ctx{freq};
  for (int attr = 0; attr < knowledge_->num_attrs(); ++attr) {
    const PreferenceGraph& g = knowledge_->graph(attr);
    if (pruning_.use_transitivity && g.Comparable(u, v)) {
      continue;  // already implied by the preference tree
    }
    if (!session_->IsCached(attr, u, v) &&
        !session_->IsUnresolved(attr, u, v) && !session_->CanAsk()) {
      budget_aborted_ = true;
      break;
    }
    const CrowdSession::AskResult res = session_->TryAsk(attr, u, v, ctx);
    if (res.paid) paid = true;
    if (res.status == AskStatus::kUnresolved) {
      // Retry cap ran dry for this attribute question; it will never get
      // an answer. Other attributes may still decide the pair.
      last_ask_unresolved_ = true;
      continue;
    }
    knowledge_->Record(attr, u, v, res.answer).CheckOK();
    if (multi_attr_ == MultiAttributeStrategy::kRoundRobin) {
      // Early exits: stop as soon as the pair's fate is decided.
      if (knowledge_->Relation(u, v) != AcRelation::kUnknown) break;
      if (mode == AskMode::kQuery && !knowledge_->CanWeaklyPrefer(u, v)) {
        break;  // u can no longer dominate v; remaining attrs are moot
      }
    }
  }
  if (last_ask_unresolved_) ++unresolved_pair_asks_;
  if (!paid) ++free_lookups_;
  return paid;
}

void TupleEvaluator::Finalize(bool is_skyline) {
  phase_ = Phase::kDone;
  is_skyline_ = is_skyline;
}

bool TupleEvaluator::Step() {
  CROWDSKY_CHECK_MSG(!done(), "Step() called on a completed evaluator");
  if (phase_ == Phase::kInit) {
    Refresh();
    if (pruning_.use_p3) BuildProbePairs();
    phase_ = Phase::kProbe;
  }
  if (phase_ == Phase::kProbe) {
    while (probe_idx_ < probe_pairs_.size()) {
      const ProbePair pair = probe_pairs_[probe_idx_];
      if (!ds_.Test(static_cast<size_t>(pair.u)) ||
          !ds_.Test(static_cast<size_t>(pair.v))) {
        ++probe_idx_;  // an endpoint was already removed from DS(t)
        continue;
      }
      if (pruning_.use_p1 &&
          (completion_->nonskyline.Test(static_cast<size_t>(pair.u)) ||
           completion_->nonskyline.Test(static_cast<size_t>(pair.v)))) {
        Refresh();  // a dominator completed since the last refresh
        ++probe_idx_;
        continue;
      }
      AcRelation r = knowledge_->Relation(pair.u, pair.v);
      bool paid = false;
      if (r == AcRelation::kUnknown) {
        paid = AskPair(pair.u, pair.v, pair.freq, AskMode::kProbe);
        if (budget_aborted_) {
          Finalize(/*is_skyline=*/!dominated_);
          return paid;
        }
        r = knowledge_->Relation(pair.u, pair.v);
      } else {
        ++free_lookups_;
      }
      switch (r) {
        case AcRelation::kPrefers:
          ds_.Reset(static_cast<size_t>(pair.v));
          break;
        case AcRelation::kPreferredBy:
          ds_.Reset(static_cast<size_t>(pair.u));
          break;
        case AcRelation::kEqual:
          // Equal dominators are interchangeable; keep the smaller id.
          ds_.Reset(static_cast<size_t>(std::max(pair.u, pair.v)));
          break;
        case AcRelation::kIncomparable:
          break;  // |AC| > 1: neither endpoint can prune the other
        case AcRelation::kUnknown:
          if (last_ask_unresolved_) {
            // The pair can never be fully resolved (retry cap exhausted).
            // Probe pairs only trim DS(t), so skipping one costs pruning
            // power but never correctness.
            break;
          }
          // Round-robin paid for one attribute but the pair is still
          // undecided; resume the same pair on the next step.
          CROWDSKY_DCHECK(paid);
          return true;
      }
      ++probe_idx_;
      if (paid) return true;
    }
    phase_ = Phase::kQuery;
  }
  // Query phase: generate Q(t) from the surviving dominators.
  while (true) {
    if (!dominated_) Refresh();
    const size_t first = ds_.FindFirst();
    if (first == ds_.size()) {
      // No dominator can decide t's fate anymore: complete tuple.
      Finalize(/*is_skyline=*/!dominated_);
      return false;
    }
    const int s = static_cast<int>(first);
    AcRelation r = knowledge_->Relation(s, t_);
    bool paid = false;
    if (r == AcRelation::kUnknown || !pruning_.use_transitivity) {
      paid = AskPair(s, t_, structure_.Frequency(s, t_), AskMode::kQuery);
      if (budget_aborted_) {
        Finalize(/*is_skyline=*/!dominated_);
        return paid;
      }
      r = knowledge_->Relation(s, t_);
    } else {
      ++free_lookups_;
    }
    if (r == AcRelation::kPrefers || r == AcRelation::kEqual) {
      // s <=_AC t and s dominates t in AK, so s dominates t in A: t is a
      // complete non-skyline tuple (Definition 4) and the remaining
      // questions of Q(t) are unnecessary — Algorithm 1's break at line
      // 24. With the break disabled (Example 3's exhaustive accounting)
      // the rest of Q(t) is still asked.
      if (pruning_.use_completion_break) {
        Finalize(/*is_skyline=*/false);
        return paid;
      }
      dominated_ = true;
      ds_.Reset(static_cast<size_t>(s));
    } else if (r == AcRelation::kUnknown && last_ask_unresolved_) {
      // (s, t) exhausted its retry cap: whether s dominates t is
      // permanently unknowable. Drop s and keep going best-effort; the
      // tuple is reported undetermined (in the skyline unless some other
      // dominator proves otherwise).
      ds_.Reset(static_cast<size_t>(s));
      undetermined_ = true;
    } else if (r == AcRelation::kUnknown &&
               knowledge_->CanWeaklyPrefer(s, t_)) {
      // Round-robin: the pair is still undecided; resume next step.
      CROWDSKY_DCHECK(paid);
      return true;
    } else {
      // t <_AC s, known-incomparable within AC, or s provably unable to
      // weakly precede t: s cannot dominate t.
      ds_.Reset(static_cast<size_t>(s));
    }
    if (paid) return true;
  }
}

}  // namespace crowdsky
