// CrowdKnowledge: what the machine has learned from crowd answers so far —
// one PreferenceGraph per crowd attribute, combined into AC-level
// relations (Definitions 1-2 restricted to AC).
//
// With |AC| = 1 every pair is totally ordered once asked; with |AC| > 1
// two tuples can be *known incomparable* within AC (each preferred on some
// crowd attribute), which Definition 2(ii) treats as incomparability in A.
#pragma once

#include <vector>

#include "common/bitset.h"
#include "crowd/question.h"
#include "prefgraph/preference_graph.h"

namespace crowdsky {

/// Combined relation of a tuple pair over all crowd attributes.
enum class AcRelation {
  kPrefers,       ///< u weakly preferred everywhere, strictly somewhere
  kPreferredBy,   ///< v weakly preferred everywhere, strictly somewhere
  kEqual,         ///< equal on every crowd attribute
  kIncomparable,  ///< each strictly preferred somewhere (definite)
  kUnknown,       ///< not enough answers yet
};

/// \brief Aggregated crowd-derived preference state.
class CrowdKnowledge {
 public:
  CrowdKnowledge(int num_tuples, int num_crowd_attrs,
                 ContradictionPolicy policy = ContradictionPolicy::kFirstWins);

  int num_tuples() const { return n_; }
  int num_attrs() const { return static_cast<int>(graphs_.size()); }
  PreferenceGraph& graph(int attr) { return graphs_[static_cast<size_t>(attr)]; }
  const PreferenceGraph& graph(int attr) const {
    return graphs_[static_cast<size_t>(attr)];
  }

  /// Records the (aggregated) answer to pair question (u, v) on `attr`.
  /// kFirstPreferred means u preferred over v.
  Status Record(int attr, int u, int v, Answer answer);

  /// Combined relation of u vs v over all crowd attributes.
  AcRelation Relation(int u, int v) const;

  /// u "<=_AC" v: weakly preferred on every crowd attribute. This is what
  /// turns an AK-dominator u of v into an A-dominator (Definition 1).
  bool WeaklyPrefers(int u, int v) const {
    const AcRelation r = Relation(u, v);
    return r == AcRelation::kPrefers || r == AcRelation::kEqual;
  }

  /// True while it is still possible that u <=_AC v, i.e. no crowd
  /// attribute is known to strictly prefer v. Once false, u can never
  /// dominate v regardless of the remaining (unasked) attributes — the
  /// early exit of the round-robin strategy.
  bool CanWeaklyPrefer(int u, int v) const {
    for (const PreferenceGraph& g : graphs_) {
      if (g.Prefers(v, u)) return false;
    }
    return true;
  }

  /// True iff u should be pruned from SKY_AC(members): some other member
  /// is weakly preferred over u — with the deterministic tie-break that
  /// keeps exactly one representative of an all-equal group (the smallest
  /// id). `mask` is the bitset form of `members`.
  bool PrunedFromAcSkyline(const DynamicBitset& mask,
                           const std::vector<int>& members, int u) const;

  /// Total contradictions rejected across all attribute graphs.
  int64_t contradiction_count() const;

 private:
  int n_;
  std::vector<PreferenceGraph> graphs_;
};

}  // namespace crowdsky
