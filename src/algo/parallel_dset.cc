#include "algo/parallel_dset.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "algo/crowdsky_algorithm.h"
#include "algo/evaluator.h"

namespace crowdsky {
namespace {

/// Runs the evaluators of one sub-batch in lockstep rounds: each round,
/// every unfinished evaluator performs its free work and pays for at most
/// one pair-ask; the batch's asks share the round.
int64_t RunBatchLockstep(const std::vector<int>& batch,
                         const DominanceStructure& structure,
                         CrowdKnowledge* knowledge, CrowdSession* session,
                         CompletionState* completion,
                         const CrowdSkyOptions& options, AlgoResult* result) {
  std::vector<std::unique_ptr<TupleEvaluator>> evaluators;
  evaluators.reserve(batch.size());
  for (const int t : batch) {
    evaluators.push_back(std::make_unique<TupleEvaluator>(
        t, structure, knowledge, session, completion, options));
  }
  int64_t free_lookups = 0;
  bool any_active = true;
  while (any_active) {
    any_active = false;
    bool any_paid = false;
    for (auto& ev : evaluators) {
      if (ev->done()) continue;
      // Let the evaluator do free work; stop at one paid ask per round.
      if (ev->Step()) {
        any_paid = true;
      }
      if (!ev->done()) any_active = true;
    }
    if (any_paid) session->EndRound();
  }
  for (auto& ev : evaluators) {
    free_lookups += ev->free_lookups();
    if (!ev->complete()) {
      ++result->incomplete_tuples;
      result->completeness.undetermined_tuples.push_back(ev->tuple());
    }
    if (ev->is_skyline()) {
      completion->MarkSkyline(ev->tuple());
      result->skyline.push_back(ev->tuple());
    } else {
      completion->MarkNonSkyline(ev->tuple());
    }
  }
  return free_lookups;
}

}  // namespace

AlgoResult RunParallelDSet(const Dataset& dataset,
                           const DominanceStructure& structure,
                           CrowdSession* session,
                           const CrowdSkyOptions& options) {
  const int n = dataset.size();
  CrowdKnowledge knowledge(n, dataset.schema().num_crowd(),
                           options.contradiction_policy);
  CompletionState completion(n);
  AlgoResult result;
  audit::AuditReport audit_report;
  std::optional<audit::CompletionMonitor> monitor;
  if (options.audit) monitor.emplace(n);
  result.seeded_relations =
      internal::SeedKnownCrowdValues(dataset, options, &knowledge);
  int64_t free_lookups = 0;
  internal::ApplyResumeState(options.resume, n, &knowledge, &completion,
                             &result, &free_lookups);
  {
    obs::TraceSpan span = obs::SpanIf(options.obs, "phase.resolve_ties");
    internal::ResolveKnownTies(dataset, &knowledge, session, &completion,
                               /*parallel_rounds=*/true);
  }
  if (monitor) monitor->Observe(completion, &audit_report);
  for (const int t : structure.known_skyline()) {
    if (completion.complete.Test(static_cast<size_t>(t))) continue;
    completion.MarkSkyline(t);
    result.skyline.push_back(t);
  }
  if (monitor) monitor->Observe(completion, &audit_report);

  // Partition by |DS(t)| (evaluation_order is already sorted by it), then
  // greedily split each partition into sub-batches with pairwise-disjoint
  // dominating sets.
  const std::vector<int>& order = structure.evaluation_order();
  obs::TraceSpan evaluate_span = obs::SpanIf(options.obs, "phase.evaluate");
  size_t i = 0;
  while (i < order.size()) {
    const int ds_size = structure.dominating_set_size(order[i]);
    size_t j = i;
    std::vector<int> partition;
    while (j < order.size() &&
           structure.dominating_set_size(order[j]) == ds_size) {
      if (!completion.complete.Test(static_cast<size_t>(order[j]))) {
        partition.push_back(order[j]);
      }
      ++j;
    }
    i = j;
    if (partition.empty()) continue;
    // Disjointness (C2) is decided on the *effective* dominating sets —
    // after the P1/P2 reductions the evaluators will apply anyway — since
    // pruned-away dominators cannot create probe interplay. This is what
    // lets batches grow as completions accumulate.
    std::vector<DynamicBitset> effective;
    effective.reserve(partition.size());
    for (const int t : partition) {
      DynamicBitset ds;
      if (options.pruning.use_p1) {
        // One-pass difference instead of copy + AndNotWith.
        ds.AssignAndNot(structure.dominator_bits(t), completion.nonskyline);
      } else {
        ds = structure.dominator_bits(t);
      }
      if (options.pruning.use_p2) {
        const std::vector<int> members = ds.ToVector();
        if (members.size() > 1) {
          for (const int u : members) {
            if (knowledge.PrunedFromAcSkyline(ds, members, u)) {
              ds.Reset(static_cast<size_t>(u));
            }
          }
        }
      }
      effective.push_back(std::move(ds));
    }
    // First-fit batching under the disjointness constraint, tracked with a
    // union bitset of the batch's dominating sets.
    std::vector<char> assigned(partition.size(), 0);
    size_t remaining = partition.size();
    while (remaining > 0) {
      std::vector<int> batch;
      DynamicBitset batch_union(static_cast<size_t>(n));
      for (size_t k = 0; k < partition.size(); ++k) {
        if (assigned[k]) continue;
        if (batch.empty() || !effective[k].Intersects(batch_union)) {
          batch.push_back(partition[k]);
          batch_union.OrWith(effective[k]);
          assigned[k] = 1;
          --remaining;
        }
      }
      free_lookups += RunBatchLockstep(batch, structure, &knowledge, session,
                                       &completion, options, &result);
      if (monitor) monitor->Observe(completion, &audit_report);
    }
    // Partition boundary: the only quiescent point safe to checkpoint.
    // Sub-batch boundaries are not — the effective-DS batching above is
    // computed from the knowledge at partition *entry*, and a resume that
    // recomputed it mid-partition with later knowledge would batch (and
    // round-account) differently than the uninterrupted run.
    if (options.checkpoint_hook != nullptr) {
      options.checkpoint_hook->MaybeCheckpoint(
          completion, result.skyline,
          result.completeness.undetermined_tuples, free_lookups, {});
    }
  }

  evaluate_span.End();
  std::sort(result.skyline.begin(), result.skyline.end());
  internal::FillStats(*session, knowledge, free_lookups, n, &result);
  if (options.audit) {
    internal::AuditFinalState(dataset, structure, knowledge, *session,
                              completion, result, &audit_report);
    CROWDSKY_CHECK_MSG(audit_report.ok(), audit_report.ToString().c_str());
  }
  return result;
}

AlgoResult RunParallelDSet(const Dataset& dataset, CrowdSession* session,
                           const CrowdSkyOptions& options) {
  const DominanceStructure structure(PreferenceMatrix::FromKnown(dataset));
  return RunParallelDSet(dataset, structure, session, options);
}

}  // namespace crowdsky
