// Accuracy metrics of Section 6.1: precision and recall of the *newly
// retrieved* skyline tuples, SKY_A(R) − SKY_AK(R) — the part of the answer
// the crowd is responsible for (the AK skyline is trivially correct).
#pragma once

#include <vector>

#include "data/dataset.h"

namespace crowdsky {

/// Precision/recall of a crowdsourced skyline against the ground truth.
struct AccuracyMetrics {
  double precision = 1.0;
  double recall = 1.0;
  double f1 = 1.0;
  int truth_new = 0;      ///< |SKY_A − SKY_AK| in the ground truth
  int retrieved_new = 0;  ///< newly retrieved tuples in the result
  int correct_new = 0;    ///< their intersection
};

/// Evaluates `result_skyline` (ascending ids) against the ground-truth
/// skyline computed from the dataset's hidden crowd values. Conventions:
/// empty retrieved set gives precision 1; empty truth set gives recall 1.
AccuracyMetrics EvaluateNewSkylineAccuracy(
    const Dataset& dataset, const std::vector<int>& result_skyline);

}  // namespace crowdsky
