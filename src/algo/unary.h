// Unary-question method, simulating Lofi et al. [12] as the paper does
// (Section 6.1): every tuple's missing value is estimated with a unary
// (quantitative) question — workers rate the tuple on an absolute scale,
// modelled as draws from N(true value, sigma) — and the skyline is then
// computed machine-side over AK plus the estimates. One-shot strategy:
// all n*|AC| questions are independent and run in a single round.
#pragma once

#include "algo/run_result.h"
#include "crowd/session.h"
#include "data/dataset.h"

namespace crowdsky {

/// Result of the unary baseline: AlgoResult plus the estimated values
/// (normalized, smaller preferred), row-major n x |AC|.
struct UnaryResult : AlgoResult {
  std::vector<double> estimates;
};

UnaryResult RunUnary(const Dataset& dataset, CrowdSession* session);

}  // namespace crowdsky
