// TupleEvaluator: Algorithm 1's per-tuple inner loop (lines 9-26) as a
// resumable state machine, shared by the Serial, ParallelDSet and
// ParallelSL drivers — the three only differ in *which* evaluators may pay
// for a question in the same crowd round (Section 4).
//
// Lifecycle per tuple t:
//   1. start from DS(t);
//   2. refresh: P1 drops complete non-skyline dominators, P2 reduces DS(t)
//      to SKY_AC(DS(t)) using the preference tree;
//   3. P3 probes DS(t) pair-by-pair in descending freq(u, v), removing the
//      AC-dominated endpoint of each resolved pair;
//   4. Q(t): ask (s, t) for the surviving dominators until one weakly
//      precedes t in AC (t is a complete non-skyline tuple) or none is
//      left (t is a complete skyline tuple).
// Every relation already implied by the preference tree (transitivity) or
// by the session cache is consumed for free. With |AC| > 1 the evaluator
// either asks all attribute questions of a pair at once or round-robins
// them with early exits (MultiAttributeStrategy). When the session's
// question budget runs out the evaluator finalizes the tuple in its
// current (possibly incomplete) state: in the skyline unless already
// proven dominated.
//
// Under a fault plan a question can come back *unresolved* (its retry cap
// ran dry). The evaluator degrades instead of aborting: an unresolved
// probe pair only costs pruning power and is skipped; an unresolved query
// pair (s, t) means s's dominance over t can never be decided, so s is
// dropped from consideration and the tuple is finalized as undetermined —
// kept in the skyline unless already proven dominated, and reported
// incomplete.
#pragma once

#include <vector>

#include "algo/crowd_knowledge.h"
#include "algo/run_result.h"
#include "common/bitset.h"
#include "crowd/session.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

/// Completion knowledge shared by all evaluators of one run
/// (Definition 4's complete-tuple sets).
struct CompletionState {
  explicit CompletionState(int n)
      : complete(static_cast<size_t>(n)),
        nonskyline(static_cast<size_t>(n)) {}

  DynamicBitset complete;    ///< complete tuples (skyline fate decided)
  DynamicBitset nonskyline;  ///< complete non-skyline tuples

  void MarkSkyline(int t) { complete.Set(static_cast<size_t>(t)); }
  void MarkNonSkyline(int t) {
    complete.Set(static_cast<size_t>(t));
    nonskyline.Set(static_cast<size_t>(t));
  }
};

/// \brief Resumable evaluation of one tuple's skyline membership.
class TupleEvaluator {
 public:
  TupleEvaluator(int tuple, const DominanceStructure& structure,
                 CrowdKnowledge* knowledge, CrowdSession* session,
                 const CompletionState* completion,
                 const CrowdSkyOptions& options);

  /// Performs all currently-free work, then either pays for exactly one
  /// pair-ask (returns true) or completes the tuple (returns false and
  /// done() becomes true). A return of false with done() == false cannot
  /// happen.
  bool Step();

  bool done() const { return phase_ == Phase::kDone; }
  /// Valid once done(): is the tuple in the skyline? Budget-aborted
  /// tuples count as skyline unless already proven dominated.
  bool is_skyline() const {
    CROWDSKY_DCHECK(done());
    return is_skyline_;
  }
  /// Valid once done(): false iff the question budget or a query pair's
  /// retry cap ran out before the tuple became complete in the
  /// Definition-4 sense.
  bool complete() const {
    CROWDSKY_DCHECK(done());
    return !budget_aborted_ && !undetermined_;
  }
  int tuple() const { return t_; }
  /// Relations resolved without paying (cache hits + transitivity).
  int64_t free_lookups() const { return free_lookups_; }
  /// Pair asks that came back unresolved (retry cap exhausted).
  int64_t unresolved_pair_asks() const { return unresolved_pair_asks_; }

 private:
  enum class Phase { kInit, kProbe, kQuery, kDone };
  struct ProbePair {
    int u;
    int v;
    size_t freq;
  };
  enum class AskMode { kProbe, kQuery };

  /// P1 + P2 refresh of the current dominating-set members.
  void Refresh();
  void BuildProbePairs();
  /// Asks crowd-attribute questions for (u, v) per the multi-attribute
  /// strategy; records answers; sets budget_aborted_ when the session's
  /// budget runs out mid-pair and last_ask_unresolved_ when any attribute
  /// question of the pair came back unresolved. Returns true iff any
  /// question was paid for.
  bool AskPair(int u, int v, size_t freq, AskMode mode);
  void Finalize(bool is_skyline);
  std::vector<int> Members() const { return ds_.ToVector(); }

  int t_;
  const DominanceStructure& structure_;
  CrowdKnowledge* knowledge_;
  CrowdSession* session_;
  const CompletionState* completion_;
  PruningConfig pruning_;
  MultiAttributeStrategy multi_attr_;

  Phase phase_ = Phase::kInit;
  DynamicBitset ds_;
  std::vector<ProbePair> probe_pairs_;
  size_t probe_idx_ = 0;
  bool is_skyline_ = false;
  /// Set when t is found dominated while P1's early break is disabled
  /// (Example 3 counts every question in Q(t) even after t's fate is
  /// decided).
  bool dominated_ = false;
  bool budget_aborted_ = false;
  /// Set when a query pair's retry cap ran dry: t's fate can no longer be
  /// fully determined, only best-effort.
  bool undetermined_ = false;
  /// Set by AskPair when the last pair had an unresolved attribute ask.
  bool last_ask_unresolved_ = false;
  int64_t free_lookups_ = 0;
  int64_t unresolved_pair_asks_ = 0;
};

}  // namespace crowdsky
