#include "algo/run_result.h"

#include <sstream>

namespace crowdsky {

std::string CompletenessReport::ToString() const {
  if (complete) {
    std::ostringstream oss;
    oss << "complete (" << determined_tuples << " tuples, "
        << resolved_questions << " questions resolved)";
    return oss.str();
  }
  std::ostringstream oss;
  oss << "best-effort: " << undetermined_tuples.size() << " of "
      << (determined_tuples +
          static_cast<int64_t>(undetermined_tuples.size()))
      << " tuples undetermined (" << resolved_questions << " questions "
      << "resolved, " << unresolved_questions << " unresolved";
  if (budget_exhausted) oss << "; budget exhausted";
  if (retries_exhausted) oss << "; retry cap exhausted";
  oss << ")";
  return oss.str();
}

}  // namespace crowdsky
