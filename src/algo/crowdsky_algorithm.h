// CrowdSky (Algorithm 1): the serial crowd-enabled skyline algorithm that
// minimizes monetary cost with the dominating-set question generation and
// pruning rules P1/P2/P3 (Section 3).
#pragma once

#include "algo/crowd_knowledge.h"
#include "algo/evaluator.h"
#include "algo/run_result.h"
#include "audit/invariant_auditor.h"
#include "crowd/session.h"
#include "data/dataset.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

/// Runs Algorithm 1 on `dataset`, asking questions through `session`.
/// `structure` must be built from the dataset's known attributes (it is a
/// parameter so benches can share one build across method variants).
/// Every paid question occupies its own crowd round (the Serial latency
/// model of Section 6.1).
AlgoResult RunCrowdSky(const Dataset& dataset,
                       const DominanceStructure& structure,
                       CrowdSession* session,
                       const CrowdSkyOptions& options = {});

/// Convenience overload that builds the dominance structure internally.
AlgoResult RunCrowdSky(const Dataset& dataset, CrowdSession* session,
                       const CrowdSkyOptions& options = {});

namespace internal {

/// Lines 1-3 of Algorithm 1: resolves groups of tuples with identical
/// known-attribute values by asking the crowd, marking strictly
/// AC-dominated group members as complete non-skyline tuples. When
/// `parallel_rounds` is true, independent groups share rounds.
void ResolveKnownTies(const Dataset& dataset, CrowdKnowledge* knowledge,
                      CrowdSession* session, CompletionState* completion,
                      bool parallel_rounds);

/// Fills the result's aggregate counters (including the robustness
/// counters and the completeness report) from the session and knowledge.
/// The driver must have pushed every undetermined tuple id into
/// result->completeness.undetermined_tuples beforehand; FillStats sorts
/// the list and derives the report's aggregate fields from it.
void FillStats(const CrowdSession& session, const CrowdKnowledge& knowledge,
               int64_t free_lookups, int num_tuples, AlgoResult* result);

/// The end-of-run half of CrowdSkyOptions::audit, shared by the Serial,
/// ParallelDSet and ParallelSL drivers: appends to `report` the audits of
/// every per-attribute preference graph, the session accounting, the AMT
/// cost formula, the dominance structure against brute-force dominance,
/// and the result/completion consistency.
void AuditFinalState(const Dataset& dataset,
                     const DominanceStructure& structure,
                     const CrowdKnowledge& knowledge,
                     const CrowdSession& session,
                     const CompletionState& completion,
                     const AlgoResult& result, audit::AuditReport* report);

/// Folds recovered state into a resuming driver, before it executes
/// anything: rebuilds crowd knowledge from the folded journal prefix (one
/// Record per resolved pair record, in journal order — the original run's
/// Record order), then restores the checkpoint's completion bitsets,
/// partial skyline / undetermined lists and free-lookup ledger. With the
/// knowledge rebuilt, the re-executed pre-evaluation phases (tie
/// resolution, probes) find every previously-crowdsourced relation already
/// in the tree and pay nothing; the completion bitsets make the
/// evaluation loops skip finished tuples. No-op on `resume == nullptr`.
void ApplyResumeState(const DriverResumeState* resume, int num_tuples,
                      CrowdKnowledge* knowledge, CompletionState* completion,
                      AlgoResult* result, int64_t* free_lookups);

/// Seeds the preference tree with the relations derivable from crowd
/// values the machine already knows (options.known_crowd_values), so only
/// pairs involving a genuinely missing value are crowdsourced. Returns
/// the number of seeded relations (chain edges; the closure implies the
/// rest). No-op when every crowd value is missing.
int64_t SeedKnownCrowdValues(const Dataset& dataset,
                             const CrowdSkyOptions& options,
                             CrowdKnowledge* knowledge);

}  // namespace internal
}  // namespace crowdsky
