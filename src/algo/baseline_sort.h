// Sort-based baselines (Section 3's Baseline): obtain a *total order* of
// the tuples on each crowd attribute with a crowd-powered sorting network,
// then compute the skyline machine-side over AK plus the ranks.
//
//  * Tournament sort (the paper's Baseline): asks the minimum number of
//    questions a sort needs, but its question chain is long — replay paths
//    after each extraction are sequential — so it also serves as the
//    high-latency upper bound in Figures 8-9 and 12(b).
//  * Bitonic sort (mentioned as the alternative in Section 3): asks more
//    questions but every stage is fully parallel, giving O(log^2 n) rounds
//    — a useful extra point in the cost/latency trade-off space.
#pragma once

#include "algo/run_result.h"
#include "crowd/session.h"
#include "data/dataset.h"

namespace crowdsky {

/// Result of a sort-based baseline: the AlgoResult plus, per crowd
/// attribute, the crowd-derived total order (most preferred first).
struct BaselineResult : AlgoResult {
  std::vector<std::vector<int>> orders;
};

/// Tournament-sort baseline.
BaselineResult RunBaselineSort(const Dataset& dataset,
                               CrowdSession* session);

/// Bitonic-network baseline (extension).
BaselineResult RunBitonicBaseline(const Dataset& dataset,
                                  CrowdSession* session);

namespace internal {

/// Machine-side skyline of AK joined with per-attribute crowd ranks
/// (rank 0 = most preferred).
std::vector<int> SkylineFromOrders(const Dataset& dataset,
                                   const std::vector<std::vector<int>>& orders);

}  // namespace internal
}  // namespace crowdsky
