// Options and result types shared by every crowd-enabled skyline
// algorithm in this library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitset.h"
#include "core/governor.h"
#include "crowd/session.h"
#include "persist/checkpoint.h"
#include "prefgraph/preference_graph.h"

namespace crowdsky {

struct CompletionState;

/// Driver-side durability callback. A driver invokes it at every
/// *quiescent* point — no evaluator mid-flight, no open crowd round — with
/// its progress so far; the engine-provided implementation decides whether
/// the cadence warrants writing a checkpoint (and syncing the journal
/// first). `skyline`/`undetermined` are in discovery order; `pending` is
/// the driver-specific pending work list (ParallelSL's ready queue in
/// activation order; empty for drivers that re-derive iteration order from
/// the completion bitsets).
class DriverCheckpointHook {
 public:
  virtual ~DriverCheckpointHook() = default;
  virtual void MaybeCheckpoint(const CompletionState& completion,
                               const std::vector<int>& skyline,
                               const std::vector<int>& undetermined,
                               int64_t free_lookups,
                               const std::vector<int>& pending) = 0;
};

/// Recovered state a resuming driver folds in before executing: the
/// checkpoint (null on a journal-only resume) and the journal prefix it
/// covers, used to rebuild crowd knowledge in original Record order. The
/// journal *tail* is not here — it replays through normal execution as
/// session credits. Both pointers must outlive the run.
struct DriverResumeState {
  const persist::CheckpointData* checkpoint = nullptr;
  const std::vector<persist::JournalRecord>* fold = nullptr;
};

/// Which of Algorithm 1's pruning rules are active. Turning rules off is
/// how the benches reproduce the DSet / P1 / P1+P2 / P1+P2+P3 series of
/// Figures 6-7.
struct PruningConfig {
  bool use_p1 = true;  ///< Section 3.2: drop complete non-skyline dominators
  bool use_p2 = true;  ///< Section 3.3: reduce DS(t) to SKY_AC(DS(t))
  bool use_p3 = true;  ///< Section 3.4: probe DS(t) by freq(u,v)
  /// Stop asking questions for t once it is complete (Definition 4; the
  /// break of Algorithm 1 line 24). Always on in the paper's algorithms;
  /// switching it off reproduces Example 3's exhaustive sum |DS(t)| count.
  bool use_completion_break = true;
  /// Answer questions from the preference tree's transitive closure when
  /// possible instead of paying the crowd. The tree T is introduced with
  /// P2 (Section 3.3), so the DSet and P1 measurement modes of Figures 6-7
  /// run without it; every full configuration keeps it on.
  bool use_transitivity = true;

  static PruningConfig DSetOnly() {
    return {false, false, false, true, false};
  }
  static PruningConfig DSetExhaustive() {
    return {false, false, false, false, false};
  }
  static PruningConfig P1() { return {true, false, false, true, false}; }
  static PruningConfig P1P2() { return {true, true, false, true, true}; }
  static PruningConfig All() { return {true, true, true, true, true}; }
};

/// How a pair-ask handles multiple crowd attributes (|AC| > 1).
enum class MultiAttributeStrategy {
  /// Ask all |AC| attribute questions for the pair at once (the paper's
  /// evaluation setting, Section 6.1).
  kAllAtOnce,
  /// Ask one attribute at a time and stop as soon as the pair's fate is
  /// decided — e.g. the tuples are already incomparable within AC, or the
  /// queried dominator is already strictly beaten somewhere so it cannot
  /// dominate. The round-robin refinement the paper mentions but does not
  /// apply; saves questions at the price of extra rounds.
  kRoundRobin,
};

/// Options common to the CrowdSky family of algorithms.
struct CrowdSkyOptions {
  PruningConfig pruning = PruningConfig::All();
  /// What to do when a (noisy) answer contradicts the preference tree.
  ContradictionPolicy contradiction_policy = ContradictionPolicy::kFirstWins;
  /// Multi-crowd-attribute question strategy.
  MultiAttributeStrategy multi_attr = MultiAttributeStrategy::kAllAtOnce;
  /// Partially-missing crowd data (Example 1: "when some values of tuples
  /// are missing, we can apply our proposed solution to only the tuples
  /// with missing values"): one bitset per crowd attribute marking the
  /// tuples whose value on that attribute is already known to the
  /// machine. Preferences between two known tuples are seeded into the
  /// preference tree for free; only pairs involving a missing value reach
  /// the crowd. Null (default) means every crowd value is missing —
  /// the paper's hands-off setting. Not owned; must outlive the run.
  const std::vector<DynamicBitset>* known_crowd_values = nullptr;
  /// Runs the invariant auditor (src/audit) alongside the algorithm:
  /// completion-state monotonicity is watched throughout, and at the end
  /// the preference graphs, session accounting, AMT cost formula,
  /// dominance structure (vs. brute force) and result consistency are
  /// validated. Any violation aborts via CROWDSKY_CHECK with the full
  /// report. Costs roughly O(n^2) extra work — meant for tests and
  /// debugging, not production serving.
  bool audit = false;
  /// Durability wiring (both null on a plain run; the engine sets them
  /// when a journal directory is configured). Not owned.
  DriverCheckpointHook* checkpoint_hook = nullptr;
  const DriverResumeState* resume = nullptr;
  /// Observability sink (src/obs): drivers emit phase TraceSpans through
  /// it and the session mirrors its ledgers into its counters. Null
  /// (default) disables everything — the instrumented paths reduce to one
  /// null check, so a run without an observer is bit-identical to the
  /// pre-observability code. Not owned; must outlive the run.
  obs::RunObserver* obs = nullptr;
};

/// Best-effort execution report: how much of the skyline decision was
/// actually resolved when the run ended. On an unconstrained, fault-free
/// run it is trivially complete; under a question budget or a fault plan
/// whose retry caps ran dry it names exactly what is still undetermined,
/// so a caller gets a usable partial answer instead of an abort.
struct CompletenessReport {
  /// True iff every tuple's skyline membership was determined.
  bool complete = true;
  int64_t determined_tuples = 0;
  /// Tuples whose membership is undetermined, ascending. They are kept in
  /// the skyline unless already proven dominated (Section 2.3's
  /// in-by-default rule).
  std::vector<int> undetermined_tuples;
  /// Distinct pair questions that received an aggregated answer.
  int64_t resolved_questions = 0;
  /// Distinct pair questions given up on (retry cap or budget mid-retry).
  int64_t unresolved_questions = 0;
  /// The question budget gated at least one ask.
  bool budget_exhausted = false;
  /// At least one question exhausted its retry cap.
  bool retries_exhausted = false;

  /// "complete" or a one-line summary of what is undetermined and why.
  std::string ToString() const;
};

/// Outcome of one crowd-enabled skyline execution.
struct AlgoResult {
  /// Skyline tuple ids, ascending. When the question budget ran out this
  /// includes every tuple whose fate is still undecided (tuples are in the
  /// skyline by default until proven dominated, Section 2.3).
  std::vector<int> skyline;
  /// Tuples whose skyline status was still undecided when the question
  /// budget ran out (0 on unlimited runs).
  int64_t incomplete_tuples = 0;
  /// Preference-tree edges seeded from machine-known crowd values
  /// (partially-missing data; 0 in the hands-off setting).
  int64_t seeded_relations = 0;
  /// Distinct pair/unary questions paid for.
  int64_t questions = 0;
  /// Crowd rounds consumed (latency, Section 2.1).
  int64_t rounds = 0;
  /// Asks answered for free from the session cache or by transitivity in
  /// the preference tree.
  int64_t free_lookups = 0;
  /// Individual worker assignments consumed (for voting-cost parity).
  int64_t worker_answers = 0;
  /// Answers rejected as contradicting the preference tree.
  int64_t contradictions = 0;
  /// Questions issued in each round (input to AmtCostModel).
  std::vector<int64_t> questions_per_round;

  // --- Robustness counters (0 on a fault-free run) -----------------------
  /// Failed attempts that were re-asked (each retry is a paid question,
  /// included in `questions` and in the cost model's rounds).
  int64_t retries = 0;
  /// Answers accepted from a partial vote set (quorum degradation).
  int64_t degraded_quorum = 0;
  /// Paid attempts that produced no answer.
  int64_t failed_attempts = 0;
  /// Latency-only rounds lost to retry backoff and expired HITs; add to
  /// `rounds` for wall-clock latency (money is unaffected — empty rounds
  /// post no HITs).
  int64_t backoff_rounds = 0;
  /// What was (and was not) determined when the run ended.
  CompletenessReport completeness;
  /// Why the run stopped paying (governor caps, cancellation, or a
  /// natural finish). The CompletenessReport names *what* is unresolved;
  /// this names *why the money stopped*.
  TerminationReport termination;
};

}  // namespace crowdsky
