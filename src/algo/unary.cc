#include "algo/unary.h"

#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace crowdsky {

UnaryResult RunUnary(const Dataset& dataset, CrowdSession* session) {
  UnaryResult result;
  const int n = dataset.size();
  const int m = dataset.schema().num_crowd();
  const PreferenceMatrix known = PreferenceMatrix::FromKnown(dataset);
  const int dk = known.dims();

  result.estimates.resize(static_cast<size_t>(n) * static_cast<size_t>(m));
  std::vector<double> values(static_cast<size_t>(n) *
                             static_cast<size_t>(dk + m));
  for (int id = 0; id < n; ++id) {
    double* row =
        values.data() + static_cast<size_t>(id) * static_cast<size_t>(dk + m);
    for (int k = 0; k < dk; ++k) row[k] = known.value(id, k);
    for (int j = 0; j < m; ++j) {
      const double est = session->AskUnary(id, j);
      result.estimates[static_cast<size_t>(id) * static_cast<size_t>(m) +
                       static_cast<size_t>(j)] = est;
      row[dk + j] = est;
    }
  }
  session->EndRound();  // one-shot: everything in a single round

  result.skyline = ComputeSkylineSFS(
      PreferenceMatrix::FromRaw(n, dk + m, std::move(values)));
  result.questions = session->stats().unary_questions;
  result.rounds = session->stats().rounds;
  result.worker_answers = session->oracle_stats().worker_answers;
  result.questions_per_round = session->questions_per_round();
  return result;
}

}  // namespace crowdsky
