#include "algo/crowd_knowledge.h"

namespace crowdsky {

CrowdKnowledge::CrowdKnowledge(int num_tuples, int num_crowd_attrs,
                               ContradictionPolicy policy)
    : n_(num_tuples) {
  CROWDSKY_CHECK(num_crowd_attrs >= 1);
  graphs_.reserve(static_cast<size_t>(num_crowd_attrs));
  for (int j = 0; j < num_crowd_attrs; ++j) {
    graphs_.emplace_back(num_tuples, policy);
  }
}

Status CrowdKnowledge::Record(int attr, int u, int v, Answer answer) {
  PreferenceGraph& g = graphs_[static_cast<size_t>(attr)];
  switch (answer) {
    case Answer::kFirstPreferred:
      return g.AddPreference(u, v);
    case Answer::kSecondPreferred:
      return g.AddPreference(v, u);
    case Answer::kEqual:
      return g.AddEquivalence(u, v);
  }
  return Status::InvalidArgument("unrecognized answer");
}

AcRelation CrowdKnowledge::Relation(int u, int v) const {
  bool any_unknown = false;
  bool u_strict = false;
  bool v_strict = false;
  for (const PreferenceGraph& g : graphs_) {
    if (g.Equivalent(u, v)) {
      continue;
    }
    if (g.Prefers(u, v)) {
      u_strict = true;
    } else if (g.Prefers(v, u)) {
      v_strict = true;
    } else {
      any_unknown = true;
    }
    if (u_strict && v_strict) return AcRelation::kIncomparable;
  }
  if (any_unknown) return AcRelation::kUnknown;
  if (u_strict) return AcRelation::kPrefers;
  if (v_strict) return AcRelation::kPreferredBy;
  return AcRelation::kEqual;
}

bool CrowdKnowledge::PrunedFromAcSkyline(const DynamicBitset& mask,
                                         const std::vector<int>& members,
                                         int u) const {
  if (num_attrs() == 1) {
    const PreferenceGraph& g = graphs_[0];
    if (g.AnyStrictlyPrefers(mask, u)) return true;
    // All-equal groups keep their smallest member.
    for (const int s : members) {
      if (s != u && s < u && g.Equivalent(s, u)) return true;
    }
    return false;
  }
  for (const int s : members) {
    if (s == u) continue;
    const AcRelation r = Relation(s, u);
    if (r == AcRelation::kPrefers) return true;
    if (r == AcRelation::kEqual && s < u) return true;
  }
  return false;
}

int64_t CrowdKnowledge::contradiction_count() const {
  int64_t total = 0;
  for (const PreferenceGraph& g : graphs_) total += g.contradiction_count();
  return total;
}

}  // namespace crowdsky
