#include "algo/parallel_sl.h"

#include <algorithm>
#include <memory>
#include <optional>

#include "algo/crowdsky_algorithm.h"
#include "algo/evaluator.h"

namespace crowdsky {

AlgoResult RunParallelSL(const Dataset& dataset,
                         const DominanceStructure& structure,
                         CrowdSession* session,
                         const CrowdSkyOptions& options) {
  const int n = dataset.size();
  CrowdKnowledge knowledge(n, dataset.schema().num_crowd(),
                           options.contradiction_policy);
  CompletionState completion(n);
  AlgoResult result;
  audit::AuditReport audit_report;
  std::optional<audit::CompletionMonitor> monitor;
  if (options.audit) monitor.emplace(n);
  result.seeded_relations =
      internal::SeedKnownCrowdValues(dataset, options, &knowledge);
  int64_t free_lookups = 0;
  internal::ApplyResumeState(options.resume, n, &knowledge, &completion,
                             &result, &free_lookups);
  {
    obs::TraceSpan span = obs::SpanIf(options.obs, "phase.resolve_ties");
    internal::ResolveKnownTies(dataset, &knowledge, session, &completion,
                               /*parallel_rounds=*/true);
  }
  if (monitor) monitor->Observe(completion, &audit_report);
  // C is initialized with SL1 = SKY_AK(R) (line 4).
  for (const int t : structure.known_skyline()) {
    if (completion.complete.Test(static_cast<size_t>(t))) continue;
    completion.MarkSkyline(t);
    result.skyline.push_back(t);
  }
  if (monitor) monitor->Observe(completion, &audit_report);

  // Count how many direct dominators of each tuple are still incomplete;
  // a tuple becomes ready when the count reaches zero.
  std::vector<int> waiting(static_cast<size_t>(n), 0);
  std::vector<std::vector<int>> direct_children(static_cast<size_t>(n));
  std::vector<int> ready;
  for (int t = 0; t < n; ++t) {
    if (completion.complete.Test(static_cast<size_t>(t))) continue;
    int w = 0;
    for (const int s : structure.direct_dominators(t)) {
      if (!completion.complete.Test(static_cast<size_t>(s))) {
        ++w;
        direct_children[static_cast<size_t>(s)].push_back(t);
      }
    }
    waiting[static_cast<size_t>(t)] = w;
    if (w == 0) ready.push_back(t);
  }
  if (options.resume != nullptr && options.resume->checkpoint != nullptr) {
    // The checkpointed pending list is the ready queue at the snapshot, in
    // activation order (which derives from completion order, not tuple
    // ids, so it cannot be re-derived here). Adopt it after checking it is
    // the same *set* the restored completion state implies.
    const std::vector<int32_t>& pending = options.resume->checkpoint->pending;
    std::vector<int> computed = ready;
    std::vector<int> stored(pending.begin(), pending.end());
    std::sort(computed.begin(), computed.end());
    std::sort(stored.begin(), stored.end());
    CROWDSKY_CHECK_MSG(computed == stored,
                       "checkpoint pending list disagrees with the "
                       "restored completion state");
    ready.assign(pending.begin(), pending.end());
  }

  std::vector<std::unique_ptr<TupleEvaluator>> active;
  auto activate = [&](const std::vector<int>& tuples) {
    for (const int t : tuples) {
      active.push_back(std::make_unique<TupleEvaluator>(
          t, structure, &knowledge, session, &completion, options));
    }
  };
  activate(ready);
  ready.clear();

  auto on_complete = [&](const TupleEvaluator& ev) {
    const int t = ev.tuple();
    free_lookups += ev.free_lookups();
    if (!ev.complete()) {
      ++result.incomplete_tuples;
      result.completeness.undetermined_tuples.push_back(t);
    }
    if (ev.is_skyline()) {
      completion.MarkSkyline(t);
      result.skyline.push_back(t);
    } else {
      completion.MarkNonSkyline(t);
    }
    for (const int child : direct_children[static_cast<size_t>(t)]) {
      if (--waiting[static_cast<size_t>(child)] == 0) {
        ready.push_back(child);
      }
    }
  };

  obs::TraceSpan evaluate_span = obs::SpanIf(options.obs, "phase.evaluate");
  while (!active.empty()) {
    bool any_paid = false;
    size_t keep = 0;
    for (size_t i = 0; i < active.size(); ++i) {
      TupleEvaluator* ev = active[i].get();
      if (ev->Step()) any_paid = true;
      if (ev->done()) {
        on_complete(*ev);
      } else {
        active[keep++] = std::move(active[i]);
      }
    }
    active.resize(keep);
    if (any_paid) session->EndRound();
    if (monitor) monitor->Observe(completion, &audit_report);
    // Quiescent only when the active wave fully drained: no evaluator is
    // mid-flight and the round is closed. `ready` is exactly the pending
    // work the checkpoint must carry (its order derives from completion
    // order and is not re-derivable on resume).
    if (active.empty() && options.checkpoint_hook != nullptr) {
      options.checkpoint_hook->MaybeCheckpoint(
          completion, result.skyline,
          result.completeness.undetermined_tuples, free_lookups, ready);
    }
    // Tuples whose last direct dominator completed this round join the
    // next round.
    if (!ready.empty()) {
      activate(ready);
      ready.clear();
    }
    CROWDSKY_CHECK_MSG(any_paid || !active.empty() || ready.empty(),
                       "ParallelSL made no progress");
  }

  evaluate_span.End();
  std::sort(result.skyline.begin(), result.skyline.end());
  internal::FillStats(*session, knowledge, free_lookups, n, &result);
  if (options.audit) {
    internal::AuditFinalState(dataset, structure, knowledge, *session,
                              completion, result, &audit_report);
    CROWDSKY_CHECK_MSG(audit_report.ok(), audit_report.ToString().c_str());
  }
  return result;
}

AlgoResult RunParallelSL(const Dataset& dataset, CrowdSession* session,
                         const CrowdSkyOptions& options) {
  const DominanceStructure structure(PreferenceMatrix::FromKnown(dataset));
  return RunParallelSL(dataset, structure, session, options);
}

}  // namespace crowdsky
