#include "algo/crowdsky_algorithm.h"

#include <algorithm>
#include <map>
#include <optional>
#include <string>

#include "persist/journal.h"

namespace crowdsky {
namespace internal {

void ResolveKnownTies(const Dataset& dataset, CrowdKnowledge* knowledge,
                      CrowdSession* session, CompletionState* completion,
                      bool parallel_rounds) {
  const PreferenceMatrix known = PreferenceMatrix::FromKnown(dataset);
  // Group tuples by identical known rows.
  std::map<std::vector<double>, std::vector<int>> groups;
  for (int id = 0; id < known.size(); ++id) {
    std::vector<double> key(known.row(id), known.row(id) + known.dims());
    groups[std::move(key)].push_back(id);
  }
  // Within each group, run a crowd-side BNL in AC: a member is eliminated
  // iff another member is strictly preferred within AC (equal known values
  // mean equal tuples stay incomparable and both survive).
  struct GroupState {
    std::vector<int> pending;
    std::vector<int> survivors;
  };
  std::vector<GroupState> states;
  for (auto& [key, ids] : groups) {
    if (ids.size() < 2) continue;
    GroupState gs;
    gs.survivors.push_back(ids[0]);
    gs.pending.assign(ids.begin() + 1, ids.end());
    states.push_back(std::move(gs));
  }
  // Round-robin across groups so independent groups can share rounds.
  bool active = !states.empty();
  while (active) {
    active = false;
    for (GroupState& gs : states) {
      if (gs.pending.empty()) continue;
      active = true;
      const int c = gs.pending.front();
      gs.pending.erase(gs.pending.begin());
      bool c_eliminated = false;
      bool paid_this_round = false;
      std::vector<int> next_survivors;
      next_survivors.reserve(gs.survivors.size() + 1);
      for (size_t i = 0; i < gs.survivors.size(); ++i) {
        const int s = gs.survivors[i];
        if (c_eliminated) {
          next_survivors.push_back(s);  // c is out; keep the rest as-is
          continue;
        }
        AcRelation r = knowledge->Relation(s, c);
        if (r == AcRelation::kUnknown) {
          for (int attr = 0; attr < knowledge->num_attrs(); ++attr) {
            if (knowledge->graph(attr).Comparable(s, c)) continue;
            if (!session->IsCached(attr, s, c) &&
                !session->IsUnresolved(attr, s, c) && !session->CanAsk()) {
              break;  // budget exhausted: leave the pair unresolved
            }
            const CrowdSession::AskResult res = session->TryAsk(attr, s, c);
            if (res.paid) paid_this_round = true;
            if (res.status == AskStatus::kUnresolved) {
              continue;  // retry cap ran dry; the attribute stays unknown
            }
            knowledge->Record(attr, s, c, res.answer).CheckOK();
          }
          r = knowledge->Relation(s, c);
        }
        if (r == AcRelation::kPrefers) {
          c_eliminated = true;
          next_survivors.push_back(s);
        } else if (r == AcRelation::kPreferredBy) {
          completion->MarkNonSkyline(s);  // drop s
        } else {
          next_survivors.push_back(s);
        }
      }
      gs.survivors = std::move(next_survivors);
      if (c_eliminated) {
        completion->MarkNonSkyline(c);
      } else {
        gs.survivors.push_back(c);
      }
      if (!parallel_rounds && paid_this_round) session->EndRound();
    }
    if (parallel_rounds) session->EndRound();
  }
  session->EndRound();
}

int64_t SeedKnownCrowdValues(const Dataset& dataset,
                             const CrowdSkyOptions& options,
                             CrowdKnowledge* knowledge) {
  if (options.known_crowd_values == nullptr) return 0;
  const std::vector<DynamicBitset>& masks = *options.known_crowd_values;
  CROWDSKY_CHECK_MSG(
      static_cast<int>(masks.size()) == dataset.schema().num_crowd(),
      "known_crowd_values needs one bitset per crowd attribute");
  const PreferenceMatrix crowd = PreferenceMatrix::FromCrowd(dataset);
  int64_t seeded = 0;
  for (int attr = 0; attr < knowledge->num_attrs(); ++attr) {
    const DynamicBitset& mask = masks[static_cast<size_t>(attr)];
    CROWDSKY_CHECK_MSG(mask.size() == static_cast<size_t>(dataset.size()),
                       "known_crowd_values bitset has the wrong size");
    std::vector<int> known = mask.ToVector();
    if (known.size() < 2) continue;
    // The known values induce a total order; seeding the sorted chain is
    // enough — the closure supplies every other pair transitively.
    std::sort(known.begin(), known.end(), [&crowd, attr](int a, int b) {
      return crowd.value(a, attr) < crowd.value(b, attr);
    });
    for (size_t i = 1; i < known.size(); ++i) {
      const int prev = known[i - 1];
      const int cur = known[i];
      const Answer answer = crowd.value(prev, attr) < crowd.value(cur, attr)
                                ? Answer::kFirstPreferred
                                : Answer::kEqual;
      knowledge->Record(attr, prev, cur, answer).CheckOK();
      ++seeded;
    }
  }
  return seeded;
}

void AuditFinalState(const Dataset& dataset,
                     const DominanceStructure& structure,
                     const CrowdKnowledge& knowledge,
                     const CrowdSession& session,
                     const CompletionState& completion,
                     const AlgoResult& result, audit::AuditReport* report) {
  const audit::InvariantAuditor auditor;
  for (int attr = 0; attr < knowledge.num_attrs(); ++attr) {
    auditor.AuditPreferenceGraph(knowledge.graph(attr),
                                 "crowd attr " + std::to_string(attr),
                                 report);
  }
  auditor.AuditSession(session, report);
  auditor.AuditCostModel(AmtCostModel{}, session.questions_per_round(),
                         report);
  if (persist::JournalWriter* journal = session.journal();
      journal != nullptr) {
    // Durability rules are audited against the bytes actually on disk:
    // sync, re-read, and require the journal to reproduce every session
    // ledger (and, on a resume, that every credit was consumed).
    journal->Sync().CheckOK();
    Result<persist::RecoveredJournal> recovered =
        persist::ReadJournal(journal->path());
    CROWDSKY_CHECK_MSG(recovered.ok(),
                       "audit could not re-read the answer journal");
    report->Check(!recovered->torn_tail, "journal.torn",
                  "journal has a torn tail while its writer is alive");
    auditor.AuditJournal(recovered->records, session, report);
  }
  auditor.AuditDominanceStructure(structure,
                                  PreferenceMatrix::FromKnown(dataset),
                                  report);
  auditor.AuditResult(result, session, dataset.size(), completion, report);
  auditor.AuditTermination(result, session, report);
}

void FillStats(const CrowdSession& session, const CrowdKnowledge& knowledge,
               int64_t free_lookups, int num_tuples, AlgoResult* result) {
  const SessionStats& s = session.stats();
  result->questions = s.questions + s.unary_questions;
  result->rounds = s.rounds;
  result->free_lookups = free_lookups + s.cache_hits;
  result->worker_answers = session.oracle_stats().worker_answers;
  result->contradictions = knowledge.contradiction_count();
  result->questions_per_round = session.questions_per_round();
  result->retries = s.retries;
  result->degraded_quorum = s.degraded_quorum;
  result->failed_attempts = s.failed_attempts;
  result->backoff_rounds = s.backoff_rounds;

  CompletenessReport& c = result->completeness;
  std::sort(c.undetermined_tuples.begin(), c.undetermined_tuples.end());
  c.complete = c.undetermined_tuples.empty();
  c.determined_tuples =
      num_tuples - static_cast<int64_t>(c.undetermined_tuples.size());
  // Each retry re-pays an already-counted question, and every unresolved
  // question's attempts never produced an answer; the remainder is the
  // set of distinct pair questions that were actually resolved.
  c.resolved_questions = s.questions - s.retries - s.unresolved_questions;
  c.unresolved_questions = s.unresolved_questions;
  // Budget-only by design: a governor denial is reported through the
  // termination report below, not as budget exhaustion (and CanAsk() has
  // a counting side effect on the governor that post-run reporting must
  // not trigger).
  c.budget_exhausted = !c.complete && session.question_budget() >= 0 &&
                       !session.BudgetCanAsk();
  c.retries_exhausted = s.unresolved_questions > 0;

  // Why the run stopped paying. Ungoverned runs still report their round
  // count and unresolved set so the report is self-contained.
  TerminationReport& term = result->termination;
  term.rounds = s.rounds;
  term.unresolved = session.unresolved_questions();
  if (const RunGovernor* governor = session.governor();
      governor != nullptr) {
    term.governed = true;
    term.reason = governor->reason();
    term.cost_spent_usd = governor->cost_spent_usd();
    term.cost_cap_usd = governor->cost_cap_usd();
    term.round_cap = governor->options().max_rounds;
    term.stall_cap = governor->options().stall_rounds;
    term.denied_questions = governor->denied_questions();
    term.cost_model = governor->cost_model();
  }
}

void ApplyResumeState(const DriverResumeState* resume, int num_tuples,
                      CrowdKnowledge* knowledge, CompletionState* completion,
                      AlgoResult* result, int64_t* free_lookups) {
  if (resume == nullptr) return;
  if (resume->fold != nullptr) {
    for (const persist::JournalRecord& record : *resume->fold) {
      if (record.kind != persist::JournalRecord::Kind::kPairAsk ||
          !record.resolved) {
        continue;
      }
      // Same Record order as the original run; under kFirstWins a noisy
      // contradiction is rejected now exactly as it was then.
      knowledge
          ->Record(record.question.attr, record.question.first,
                   record.question.second, record.answer)
          .CheckOK();
    }
  }
  if (resume->checkpoint == nullptr) return;
  const persist::CheckpointData& ckpt = *resume->checkpoint;
  CROWDSKY_CHECK_MSG(ckpt.num_tuples == num_tuples,
                     "checkpoint was taken over a different dataset size");
  for (int t = 0; t < num_tuples; ++t) {
    if (!ckpt.complete[static_cast<size_t>(t)]) continue;
    if (ckpt.nonskyline[static_cast<size_t>(t)]) {
      completion->MarkNonSkyline(t);
    } else {
      completion->MarkSkyline(t);
    }
  }
  result->skyline.assign(ckpt.skyline.begin(), ckpt.skyline.end());
  for (const int32_t t : ckpt.undetermined) {
    result->completeness.undetermined_tuples.push_back(t);
    ++result->incomplete_tuples;
  }
  *free_lookups = ckpt.free_lookups;
}

}  // namespace internal

AlgoResult RunCrowdSky(const Dataset& dataset,
                       const DominanceStructure& structure,
                       CrowdSession* session,
                       const CrowdSkyOptions& options) {
  const int n = dataset.size();
  CrowdKnowledge knowledge(n, dataset.schema().num_crowd(),
                           options.contradiction_policy);
  CompletionState completion(n);
  AlgoResult result;
  audit::AuditReport audit_report;
  std::optional<audit::CompletionMonitor> monitor;
  if (options.audit) monitor.emplace(n);
  result.seeded_relations =
      internal::SeedKnownCrowdValues(dataset, options, &knowledge);
  int64_t free_lookups = 0;
  // On resume this rebuilds the preference tree from the folded journal
  // prefix before any phase re-executes, so the tie pre-pass and the
  // evaluators find every previously-paid answer already known.
  internal::ApplyResumeState(options.resume, n, &knowledge, &completion,
                             &result, &free_lookups);
  {
    obs::TraceSpan span = obs::SpanIf(options.obs, "phase.resolve_ties");
    internal::ResolveKnownTies(dataset, &knowledge, session, &completion,
                               /*parallel_rounds=*/false);
  }
  if (monitor) monitor->Observe(completion, &audit_report);

  // SKY_AK(R) members are complete from the start; those eliminated by the
  // tie pre-pass are complete non-skyline tuples instead. A tuple already
  // complete (restored from a checkpoint) keeps its recovered fate.
  for (const int t : structure.known_skyline()) {
    if (completion.complete.Test(static_cast<size_t>(t))) continue;
    completion.MarkSkyline(t);
    result.skyline.push_back(t);
  }
  if (monitor) monitor->Observe(completion, &audit_report);

  // Evaluate remaining tuples in ascending |DS(t)| order (line 7).
  obs::TraceSpan evaluate_span = obs::SpanIf(options.obs, "phase.evaluate");
  for (const int t : structure.evaluation_order()) {
    if (completion.complete.Test(static_cast<size_t>(t))) continue;
    TupleEvaluator evaluator(t, structure, &knowledge, session, &completion,
                             options);
    while (!evaluator.done()) {
      if (evaluator.Step()) session->EndRound();
    }
    free_lookups += evaluator.free_lookups();
    if (!evaluator.complete()) {
      ++result.incomplete_tuples;
      result.completeness.undetermined_tuples.push_back(t);
    }
    if (evaluator.is_skyline()) {
      completion.MarkSkyline(t);
      result.skyline.push_back(t);
    } else {
      completion.MarkNonSkyline(t);
    }
    if (monitor) monitor->Observe(completion, &audit_report);
    // Per-tuple quiescent point: the evaluator is finalized and every paid
    // step closed its round.
    if (options.checkpoint_hook != nullptr) {
      options.checkpoint_hook->MaybeCheckpoint(
          completion, result.skyline,
          result.completeness.undetermined_tuples, free_lookups, {});
    }
  }

  evaluate_span.End();
  std::sort(result.skyline.begin(), result.skyline.end());
  internal::FillStats(*session, knowledge, free_lookups, n, &result);
  if (options.audit) {
    internal::AuditFinalState(dataset, structure, knowledge, *session,
                              completion, result, &audit_report);
    CROWDSKY_CHECK_MSG(audit_report.ok(),
                       audit_report.ToString().c_str());
  }
  return result;
}

AlgoResult RunCrowdSky(const Dataset& dataset, CrowdSession* session,
                       const CrowdSkyOptions& options) {
  const DominanceStructure structure(PreferenceMatrix::FromKnown(dataset));
  return RunCrowdSky(dataset, structure, session, options);
}

}  // namespace crowdsky
