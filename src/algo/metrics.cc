#include "algo/metrics.h"

#include <algorithm>

#include "skyline/algorithms.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

AccuracyMetrics EvaluateNewSkylineAccuracy(
    const Dataset& dataset, const std::vector<int>& result_skyline) {
  const std::vector<int> truth = ComputeGroundTruthSkyline(dataset);
  const std::vector<int> known_sky =
      ComputeSkylineSFS(PreferenceMatrix::FromKnown(dataset));

  auto subtract = [](const std::vector<int>& a, const std::vector<int>& b) {
    std::vector<int> out;
    std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
    return out;
  };
  const std::vector<int> truth_new = subtract(truth, known_sky);
  std::vector<int> retrieved = result_skyline;
  std::sort(retrieved.begin(), retrieved.end());
  const std::vector<int> retrieved_new = subtract(retrieved, known_sky);

  std::vector<int> correct;
  std::set_intersection(truth_new.begin(), truth_new.end(),
                        retrieved_new.begin(), retrieved_new.end(),
                        std::back_inserter(correct));

  AccuracyMetrics m;
  m.truth_new = static_cast<int>(truth_new.size());
  m.retrieved_new = static_cast<int>(retrieved_new.size());
  m.correct_new = static_cast<int>(correct.size());
  m.precision = retrieved_new.empty()
                    ? 1.0
                    : static_cast<double>(m.correct_new) /
                          static_cast<double>(m.retrieved_new);
  m.recall = truth_new.empty() ? 1.0
                               : static_cast<double>(m.correct_new) /
                                     static_cast<double>(m.truth_new);
  m.f1 = (m.precision + m.recall) > 0.0
             ? 2.0 * m.precision * m.recall / (m.precision + m.recall)
             : 0.0;
  return m;
}

}  // namespace crowdsky
