// ParallelDSet (Section 4.1): partitions R into groups of equal |DS(t)|
// (tuples in the same group cannot dominate each other, Lemma 3), then
// splits each group into sub-batches whose dominating sets are pairwise
// disjoint — removing dependency (C2) — and runs each sub-batch's
// evaluators in lockstep rounds. Question counts match the serial
// algorithm; only the round count shrinks.
#pragma once

#include "algo/run_result.h"
#include "crowd/session.h"
#include "data/dataset.h"
#include "skyline/dominance_structure.h"

namespace crowdsky {

AlgoResult RunParallelDSet(const Dataset& dataset,
                           const DominanceStructure& structure,
                           CrowdSession* session,
                           const CrowdSkyOptions& options = {});

AlgoResult RunParallelDSet(const Dataset& dataset, CrowdSession* session,
                           const CrowdSkyOptions& options = {});

}  // namespace crowdsky
