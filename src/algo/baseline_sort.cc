#include "algo/baseline_sort.h"

#include <algorithm>

#include "skyline/algorithms.h"
#include "skyline/dominance.h"

namespace crowdsky {
namespace {

constexpr int kSentinel = -1;

/// Crowd-backed "is u preferred over v" with a deterministic tie-break so
/// the sort is a strict total order. Sentinels lose to everything.
class CrowdLess {
 public:
  CrowdLess(CrowdSession* session, int attr) : session_(session), attr_(attr) {}

  bool operator()(int u, int v) {
    if (u == kSentinel) return false;
    if (v == kSentinel) return true;
    const Answer a = session_->Ask(attr_, u, v);
    if (a == Answer::kFirstPreferred) return true;
    if (a == Answer::kSecondPreferred) return false;
    return u < v;  // equal: ids break the tie
  }

  /// True iff comparing u and v would contact the crowd.
  bool WouldPay(int u, int v) const {
    if (u == kSentinel || v == kSentinel) return false;
    return !session_->IsCached(attr_, u, v);
  }

 private:
  CrowdSession* session_;
  int attr_;
};

size_t NextPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// Tournament sort of ids on one crowd attribute; returns the ids most
/// preferred first. Rounds: one per tree level during the build (matches
/// within a level are independent), then one per paid match during the
/// replays (a replay path is a chain of dependent matches).
std::vector<int> TournamentSort(const std::vector<int>& ids,
                                CrowdSession* session, int attr) {
  std::vector<int> result;
  if (ids.empty()) return result;
  if (ids.size() == 1) return ids;
  CrowdLess less(session, attr);
  const size_t leaves = NextPow2(ids.size());
  // Heap-like array: nodes[1] is the root, leaves at [leaves, 2*leaves).
  std::vector<int> nodes(2 * leaves, kSentinel);
  for (size_t i = 0; i < ids.size(); ++i) nodes[leaves + i] = ids[i];
  // Build, level by level (each level is one parallel round).
  for (size_t node = leaves - 1; node >= 1; --node) {
    const int a = nodes[2 * node];
    const int b = nodes[2 * node + 1];
    nodes[node] = (b == kSentinel || (a != kSentinel && less(a, b))) ? a : b;
    // Close the round at each level boundary (node counts per level are
    // powers of two; level ends when node is a power of two).
    if ((node & (node - 1)) == 0) session->EndRound();
  }
  std::vector<size_t> leaf_of(
      static_cast<size_t>(*std::max_element(ids.begin(), ids.end())) + 1);
  for (size_t i = 0; i < ids.size(); ++i) {
    leaf_of[static_cast<size_t>(ids[i])] = leaves + i;
  }
  result.reserve(ids.size());
  for (size_t extracted = 0; extracted < ids.size(); ++extracted) {
    const int winner = nodes[1];
    CROWDSKY_CHECK(winner != kSentinel);
    result.push_back(winner);
    // Remove the winner and replay its path to the root; each match in the
    // chain depends on the previous one, so each paid match is a round.
    size_t node = leaf_of[static_cast<size_t>(winner)];
    nodes[node] = kSentinel;
    while (node > 1) {
      node /= 2;
      const int a = nodes[2 * node];
      const int b = nodes[2 * node + 1];
      const bool paid = less.WouldPay(a, b);
      nodes[node] =
          (b == kSentinel || (a != kSentinel && less(a, b))) ? a : b;
      if (paid) session->EndRound();
    }
  }
  return result;
}

/// Bitonic sorting network; every (k, j) stage is one parallel round.
std::vector<int> BitonicSort(const std::vector<int>& ids,
                             CrowdSession* session, int attr) {
  if (ids.size() <= 1) return ids;
  CrowdLess less(session, attr);
  const size_t m = NextPow2(ids.size());
  std::vector<int> a(m, kSentinel);
  std::copy(ids.begin(), ids.end(), a.begin());
  for (size_t k = 2; k <= m; k <<= 1) {
    for (size_t j = k >> 1; j > 0; j >>= 1) {
      for (size_t i = 0; i < m; ++i) {
        const size_t l = i ^ j;
        if (l <= i) continue;
        const bool ascending = (i & k) == 0;
        // "Smaller" = more preferred; sentinels sort last.
        const bool in_order =
            a[i] == a[l] ? true
                         : (less(a[i], a[l]) ? true : false);
        if (in_order != ascending) std::swap(a[i], a[l]);
      }
      session->EndRound();  // all comparators of a stage are independent
    }
  }
  a.resize(ids.size());
  return a;
}

template <typename SortFn>
BaselineResult RunSortBaseline(const Dataset& dataset, CrowdSession* session,
                               SortFn sort_fn) {
  BaselineResult result;
  const int n = dataset.size();
  const int m = dataset.schema().num_crowd();
  std::vector<int> ids(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) ids[static_cast<size_t>(i)] = i;
  for (int attr = 0; attr < m; ++attr) {
    result.orders.push_back(sort_fn(ids, session, attr));
  }
  session->EndRound();
  result.skyline = internal::SkylineFromOrders(dataset, result.orders);
  result.questions = session->stats().questions;
  result.rounds = session->stats().rounds;
  result.free_lookups = session->stats().cache_hits;
  result.worker_answers = session->oracle_stats().worker_answers;
  result.questions_per_round = session->questions_per_round();
  return result;
}

}  // namespace

namespace internal {

std::vector<int> SkylineFromOrders(
    const Dataset& dataset, const std::vector<std::vector<int>>& orders) {
  const PreferenceMatrix known = PreferenceMatrix::FromKnown(dataset);
  const int n = dataset.size();
  const int dk = known.dims();
  const int m = static_cast<int>(orders.size());
  std::vector<double> values(static_cast<size_t>(n) *
                             static_cast<size_t>(dk + m));
  for (int id = 0; id < n; ++id) {
    double* row =
        values.data() + static_cast<size_t>(id) * static_cast<size_t>(dk + m);
    for (int k = 0; k < dk; ++k) row[k] = known.value(id, k);
  }
  for (int j = 0; j < m; ++j) {
    const std::vector<int>& order = orders[static_cast<size_t>(j)];
    CROWDSKY_CHECK(static_cast<int>(order.size()) == n);
    for (size_t rank = 0; rank < order.size(); ++rank) {
      double* row = values.data() +
                    static_cast<size_t>(order[rank]) *
                        static_cast<size_t>(dk + m);
      row[dk + j] = static_cast<double>(rank);
    }
  }
  return ComputeSkylineSFS(
      PreferenceMatrix::FromRaw(n, dk + m, std::move(values)));
}

}  // namespace internal

BaselineResult RunBaselineSort(const Dataset& dataset,
                               CrowdSession* session) {
  return RunSortBaseline(dataset, session, TournamentSort);
}

BaselineResult RunBitonicBaseline(const Dataset& dataset,
                                  CrowdSession* session) {
  return RunSortBaseline(dataset, session, BitonicSort);
}

}  // namespace crowdsky
