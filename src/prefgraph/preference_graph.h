// PreferenceGraph: the preference tree T of Section 3.3, generalized to
// noisy input.
//
// Nodes are tuple ids; an edge u -> v records the (majority-voted) crowd
// judgement "u is preferred over v" on one crowd attribute, and "equally
// preferred" answers merge nodes into equivalence classes. Transitivity is
// the whole point of T — CrowdSky's pruning rules P2/P3 skip any question
// whose answer is already implied — so reachability must be cheap: we
// maintain the full transitive closure incrementally (Italiano-style) with
// one ancestor and one descendant bitset per node, giving O(1) Prefers()
// and word-parallel "does anything in this set precede v" queries.
//
// With imperfect workers, an answer may contradict the closure (a cycle) or
// an equivalence (equal vs. already strictly ordered). The contradiction
// policy decides what happens; the default keeps the existing knowledge and
// counts the contradiction, which matches the paper's discussion of
// preventing the propagation of false dominance relationships.
#pragma once

#include <cstdint>

#include "common/bitset.h"
#include "common/status.h"

namespace crowdsky {

/// What to do when a new answer contradicts the current closure.
enum class ContradictionPolicy {
  kFirstWins,  ///< ignore the new answer, count the contradiction
  kFail,       ///< return Status::Contradiction (used under perfect oracles)
};

/// \brief Dynamic partial order with equivalence classes and O(1)
/// reachability.
class PreferenceGraph {
 public:
  explicit PreferenceGraph(
      int num_nodes, ContradictionPolicy policy = ContradictionPolicy::kFirstWins);

  int size() const { return n_; }

  /// Records "u is strictly preferred over v". Returns OK if the edge was
  /// added or already implied; Contradiction per policy if v is already
  /// (weakly) preferred over u.
  Status AddPreference(int u, int v);

  /// Records "u and v are equally preferred" (class merge).
  Status AddEquivalence(int u, int v);

  /// True iff u is strictly preferred over v (directly or transitively).
  bool Prefers(int u, int v) const;
  /// True iff u and v were judged equally preferred (transitively).
  bool Equivalent(int u, int v) const;
  /// Prefers(u,v) || Equivalent(u,v). This is the `u .AC v` weak
  /// preference that makes a dominator u in DS(t) decide t's fate.
  bool WeaklyPrefers(int u, int v) const {
    return Equivalent(u, v) || Prefers(u, v);
  }
  /// True iff any relation between u and v is known.
  bool Comparable(int u, int v) const {
    return Equivalent(u, v) || Prefers(u, v) || Prefers(v, u);
  }

  /// True iff some node in `ids` (a bitset over node ids, excluding v
  /// itself) is strictly preferred over v.
  bool AnyStrictlyPrefers(const DynamicBitset& ids, int v) const;
  /// True iff some node in `ids` other than v is weakly preferred over v.
  bool AnyWeaklyPrefers(const DynamicBitset& ids, int v) const;

  /// Union-find representative of v's equivalence class.
  int representative(int v) const { return Find(v); }

  /// Number of answers rejected as contradictory (kFirstWins only).
  int64_t contradiction_count() const { return contradictions_; }
  /// Number of strict edges accepted (excluding already-implied ones).
  int64_t edge_count() const { return edges_; }
  /// Number of equivalence merges performed.
  int64_t merge_count() const { return merges_; }

 private:
  int Find(int v) const;
  void InsertEdgeClosure(int ru, int rv);

  int n_;
  ContradictionPolicy policy_;
  // Union-find parent; mutable for path halving in const lookups.
  mutable std::vector<int> parent_;
  // Closure rows, indexed by representative; bits are representative ids.
  std::vector<DynamicBitset> desc_;
  std::vector<DynamicBitset> anc_;
  // Class membership in original-id space, indexed by representative.
  std::vector<DynamicBitset> members_;
  int64_t contradictions_ = 0;
  int64_t edges_ = 0;
  int64_t merges_ = 0;
  // Scratch for mask canonicalization when merges have occurred.
  mutable DynamicBitset scratch_;
};

}  // namespace crowdsky
