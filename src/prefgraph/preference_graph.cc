#include "prefgraph/preference_graph.h"

#include <string>

namespace crowdsky {

PreferenceGraph::PreferenceGraph(int num_nodes, ContradictionPolicy policy)
    : n_(num_nodes), policy_(policy), scratch_(static_cast<size_t>(n_)) {
  CROWDSKY_CHECK(num_nodes >= 0);
  const auto un = static_cast<size_t>(n_);
  parent_.resize(un);
  desc_.assign(un, DynamicBitset(un));
  anc_.assign(un, DynamicBitset(un));
  members_.assign(un, DynamicBitset(un));
  for (int v = 0; v < n_; ++v) {
    parent_[static_cast<size_t>(v)] = v;
    members_[static_cast<size_t>(v)].Set(static_cast<size_t>(v));
  }
}

int PreferenceGraph::Find(int v) const {
  CROWDSKY_DCHECK(v >= 0 && v < n_);
  auto uv = static_cast<size_t>(v);
  while (parent_[uv] != static_cast<int>(uv)) {
    parent_[uv] = parent_[static_cast<size_t>(parent_[uv])];  // path halving
    uv = static_cast<size_t>(parent_[uv]);
  }
  return static_cast<int>(uv);
}

bool PreferenceGraph::Prefers(int u, int v) const {
  const auto ru = static_cast<size_t>(Find(u));
  const auto rv = static_cast<size_t>(Find(v));
  return ru != rv && desc_[ru].Test(rv);
}

bool PreferenceGraph::Equivalent(int u, int v) const {
  return Find(u) == Find(v);
}

void PreferenceGraph::InsertEdgeClosure(int ru, int rv) {
  const auto u = static_cast<size_t>(ru);
  const auto v = static_cast<size_t>(rv);
  // Every ancestor of u (and u itself) now reaches v and v's descendants;
  // every descendant of v (and v itself) is now reached from u and u's
  // ancestors. anc_[u] / desc_[v] are not modified by the opposite loop, so
  // no snapshots are needed.
  desc_[u].OrWithAndSet(desc_[v], v);
  anc_[u].ForEachSetBit(
      [this, v](size_t a) { desc_[a].OrWithAndSet(desc_[v], v); });
  anc_[v].OrWithAndSet(anc_[u], u);
  desc_[v].ForEachSetBit(
      [this, u](size_t d) { anc_[d].OrWithAndSet(anc_[u], u); });
}

Status PreferenceGraph::AddPreference(int u, int v) {
  CROWDSKY_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  const int ru = Find(u);
  const int rv = Find(v);
  if (ru == rv || desc_[static_cast<size_t>(rv)].Test(
                      static_cast<size_t>(ru))) {
    // u and v already equal, or v already preferred over u.
    if (policy_ == ContradictionPolicy::kFail) {
      return Status::Contradiction(
          "preference " + std::to_string(u) + " < " + std::to_string(v) +
          " contradicts existing order");
    }
    ++contradictions_;
    return Status::OK();
  }
  if (desc_[static_cast<size_t>(ru)].Test(static_cast<size_t>(rv))) {
    return Status::OK();  // already implied
  }
  InsertEdgeClosure(ru, rv);
  ++edges_;
  return Status::OK();
}

Status PreferenceGraph::AddEquivalence(int u, int v) {
  CROWDSKY_DCHECK(u >= 0 && u < n_ && v >= 0 && v < n_);
  const int ru = Find(u);
  const int rv = Find(v);
  if (ru == rv) return Status::OK();
  const auto sru = static_cast<size_t>(ru);
  const auto srv = static_cast<size_t>(rv);
  if (desc_[sru].Test(srv) || desc_[srv].Test(sru)) {
    if (policy_ == ContradictionPolicy::kFail) {
      return Status::Contradiction(
          "equivalence " + std::to_string(u) + " ~ " + std::to_string(v) +
          " contradicts a strict preference");
    }
    ++contradictions_;
    return Status::OK();
  }
  // Merge the class of `other` into the class of `rep`.
  const int rep = ru < rv ? ru : rv;
  const int other = ru < rv ? rv : ru;
  const auto srep = static_cast<size_t>(rep);
  const auto soth = static_cast<size_t>(other);
  parent_[soth] = rep;
  members_[srep].OrWith(members_[soth]);

  // Rewrite bit `other` -> `rep` in every row that referenced it, before
  // combining the rows themselves.
  anc_[soth].ForEachSetBit([this, soth, srep](size_t a) {
    desc_[a].Reset(soth);
    desc_[a].Set(srep);
  });
  desc_[soth].ForEachSetBit([this, soth, srep](size_t d) {
    anc_[d].Reset(soth);
    anc_[d].Set(srep);
  });
  desc_[srep].OrWith(desc_[soth]);
  anc_[srep].OrWith(anc_[soth]);
  desc_[soth].ClearAll();
  anc_[soth].ClearAll();

  // The merge can create new transitive paths (x -> ru merged with rv -> y
  // gives x -> y): propagate the combined rows outward.
  anc_[srep].ForEachSetBit(
      [this, srep](size_t a) { desc_[a].OrWith(desc_[srep]); });
  desc_[srep].ForEachSetBit(
      [this, srep](size_t d) { anc_[d].OrWith(anc_[srep]); });
  ++merges_;
  return Status::OK();
}

bool PreferenceGraph::AnyStrictlyPrefers(const DynamicBitset& ids,
                                         int v) const {
  CROWDSKY_DCHECK(ids.size() == static_cast<size_t>(n_));
  const auto rv = static_cast<size_t>(Find(v));
  if (merges_ == 0) {
    return anc_[rv].Intersects(ids);
  }
  // Translate the id mask into representative space.
  scratch_.ClearAll();
  ids.ForEachSetBit([this](size_t id) {
    scratch_.Set(static_cast<size_t>(Find(static_cast<int>(id))));
  });
  return anc_[rv].Intersects(scratch_);
}

bool PreferenceGraph::AnyWeaklyPrefers(const DynamicBitset& ids,
                                       int v) const {
  const auto rv = static_cast<size_t>(Find(v));
  // Some other member of v's class present in ids?
  if (members_[rv].IntersectionCount(ids) >
      (ids.Test(static_cast<size_t>(v)) ? 1u : 0u)) {
    return true;
  }
  return AnyStrictlyPrefers(ids, v);
}

}  // namespace crowdsky
