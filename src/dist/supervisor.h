// ShardSupervisor: fault-tolerant process supervision for shard children.
//
// Each shard runs as a fork+exec'd child of a shard-capable binary with an
// inherited pipe for heartbeats (HELLO on start, PROG per closed crowd
// round, DONE after the result file is durable). The supervisor polls the
// pipes and reaps children:
//
//   - a child that exits 0 with a result file is *completed*;
//   - a child that crashes (any other exit, including the chaos harness's
//     _Exit(137)) or goes heartbeat-silent past the timeout (hang) is
//     SIGKILLed if needed and relaunched after exponential backoff, with
//     `durability.resume` set whenever its shard journal is usable — the
//     restarted incarnation replays every paid answer as credits (PR 4's
//     recovery path) and re-pays nothing;
//   - after `max_restarts` failed incarnations the shard is declared
//     permanently *dead* and the run degrades gracefully: the coordinator
//     merges the surviving shards and reports the gap.
//
// Straggler detection is advisory: once half the shards finished, a shard
// running longer than straggler_factor x the median finish time is flagged
// in its outcome (and the coordinator's ShardReport), never killed —
// killing a slow-but-correct shard would trade latency for money.
//
// Wall-clock use (heartbeat timeouts, backoff, straggler math) is confined
// to supervisor.cc behind a file-local clock helper, mirroring
// governor.cc's allowlisted pattern; nothing here feeds the deterministic
// question/answer stream.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/options.h"
#include "dist/wire.h"

namespace crowdsky::dist {

/// One shard to launch and supervise. `spec` is the generation-0 spec;
/// the supervisor rewrites generation, heartbeat_fd, resume flag and
/// per-generation fault fields on every (re)launch.
struct ShardLaunch {
  ShardSpec spec;
  /// Process-level faults for this shard, any generation.
  std::vector<ShardFaultInjection> faults;
};

/// What supervision concluded about one shard.
struct ShardOutcome {
  int shard = 0;
  bool completed = false;  ///< exited 0 with a result file
  bool dead = false;       ///< exhausted max_restarts
  int restarts = 0;
  bool straggler = false;
  /// Last PROG round count seen (progress witness for dead shards).
  int64_t last_rounds = 0;
  /// Human-readable description of the last failure ("" when clean).
  std::string last_failure;
};

/// \brief Supervises a fleet of shard child processes to completion.
///
/// Single-threaded: one poll(2) loop multiplexes every heartbeat pipe and
/// reaps children with waitpid(WNOHANG), so no std::thread is needed.
class ShardSupervisor {
 public:
  ShardSupervisor(const SupervisorOptions& options, std::string shard_exe);

  /// Launches every shard and supervises until each is completed or dead.
  /// Fails only on supervisor-level errors (spawn failure, unwritable spec
  /// files); shard-level failures are reported per ShardOutcome.
  Result<std::vector<ShardOutcome>> Run(
      const std::vector<ShardLaunch>& launches);

 private:
  const SupervisorOptions options_;
  const std::string shard_exe_;
};

}  // namespace crowdsky::dist
