#include "dist/supervisor.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/macros.h"
#include "persist/recovery.h"

namespace crowdsky::dist {
namespace {

/// The supervisor's only clock. Wall time is inherently nondeterministic;
/// confining the read to this helper keeps the project linter's wall-clock
/// rule scoped to one allowlisted line (the governor.cc idiom). Nothing
/// derived from it feeds the shards' deterministic answer streams.
double SupervisorNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// A shard journal is worth resuming from when it at least holds a full
/// header (magic + version + fingerprint + crc = 24 bytes); anything
/// shorter is discarded and the incarnation starts fresh.
bool JournalLooksResumable(const std::string& shard_dir) {
  constexpr uint64_t kHeaderBytes = 24;
  std::error_code ec;
  const auto size = std::filesystem::file_size(
      persist::JournalPath(shard_dir), ec);
  return !ec && size >= kHeaderBytes;
}

/// Supervision state of one shard across incarnations.
struct ShardState {
  enum class Phase { kRunning, kBackoff, kCompleted, kDead };

  Phase phase = Phase::kRunning;
  pid_t pid = -1;
  int pipe_fd = -1;  ///< read end of the heartbeat pipe (-1 once closed)
  int generation = 0;
  int restarts = 0;
  bool straggler = false;
  int64_t rounds = 0;
  double started_at = 0.0;
  double last_beat = 0.0;
  double backoff_until = 0.0;
  double finish_seconds = -1.0;  ///< wall duration of the last incarnation
  std::string line_buffer;
  std::string last_failure;
};

void CloseFd(int* fd) {
  if (*fd >= 0) {
    close(*fd);
    *fd = -1;
  }
}

}  // namespace

ShardSupervisor::ShardSupervisor(const SupervisorOptions& options,
                                 std::string shard_exe)
    : options_(options), shard_exe_(std::move(shard_exe)) {
  CROWDSKY_CHECK(options_.heartbeat_timeout_seconds > 0);
  CROWDSKY_CHECK(options_.max_restarts >= 0);
  CROWDSKY_CHECK(options_.poll_interval_seconds > 0);
}

Result<std::vector<ShardOutcome>> ShardSupervisor::Run(
    const std::vector<ShardLaunch>& launches) {
  const size_t n = launches.size();
  std::vector<ShardState> states(n);

  // Launches one incarnation of shard i: writes its generation spec file,
  // opens a fresh heartbeat pipe and fork+execs the shard binary.
  auto spawn = [&](size_t i) -> Status {
    ShardState& st = states[i];
    ShardSpec spec = launches[i].spec;
    spec.generation = st.generation;
    // Restarted incarnations resume; generation 0 resumes only when the
    // coordinator asked for a whole-run resume (and the journal is usable
    // either way).
    spec.engine.durability.resume =
        (st.generation > 0 || launches[i].spec.engine.durability.resume) &&
        JournalLooksResumable(spec.shard_dir);
    for (const ShardFaultInjection& fault : launches[i].faults) {
      if (fault.shard != spec.shard || fault.generation != st.generation) {
        continue;
      }
      switch (fault.kind) {
        case ShardFaultKind::kKillAtRound:
          spec.kill_at_round = fault.value;
          break;
        case ShardFaultKind::kKillAtRecord:
          spec.kill_at_record = fault.value;
          break;
        case ShardFaultKind::kTornTailAtRecord:
          spec.kill_at_record = fault.value;
          spec.tear_bytes = fault.tear_bytes;
          break;
        case ShardFaultKind::kHangAtStart:
          spec.hang_at_start = true;
          break;
        case ShardFaultKind::kHangAtRound:
          spec.hang_at_round = fault.value;
          break;
        case ShardFaultKind::kSlowStart:
          spec.slow_start_ms = fault.value;
          break;
      }
    }

    int fds[2];
    if (pipe(fds) != 0) {
      return Status::IOError(std::string("pipe: ") + std::strerror(errno));
    }
    // Read end: supervisor-only, nonblocking, never inherited. Write end:
    // must survive the exec so the child can heartbeat on it.
    fcntl(fds[0], F_SETFD, FD_CLOEXEC);
    fcntl(fds[0], F_SETFL, O_NONBLOCK);
    spec.heartbeat_fd = fds[1];

    const std::string spec_path =
        spec.shard_dir + "/spec.gen" + std::to_string(st.generation) +
        ".txt";
    CROWDSKY_RETURN_NOT_OK(
        WriteFileAtomic(spec_path, EncodeShardSpec(spec)));

    const pid_t pid = fork();
    if (pid < 0) {
      close(fds[0]);
      close(fds[1]);
      return Status::IOError(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: drop every other shard's pipe end, then become the shard.
      close(fds[0]);
      for (const ShardState& other : states) {
        if (other.pipe_fd >= 0 && other.pipe_fd != fds[1]) {
          close(other.pipe_fd);
        }
      }
      execl(shard_exe_.c_str(), shard_exe_.c_str(), "--crowdsky_shard",
            spec_path.c_str(), static_cast<char*>(nullptr));
      _exit(127);  // exec failed; the supervisor sees a crash
    }
    close(fds[1]);
    st.phase = ShardState::Phase::kRunning;
    st.pid = pid;
    st.pipe_fd = fds[0];
    const double now = SupervisorNowSeconds();
    st.started_at = now;
    st.last_beat = now;
    st.line_buffer.clear();
    return Status::OK();
  };

  // Records a failed incarnation and either schedules a restart (with
  // exponential backoff) or declares the shard dead.
  auto handle_failure = [&](size_t i, const std::string& why) {
    ShardState& st = states[i];
    CloseFd(&st.pipe_fd);
    st.pid = -1;
    st.last_failure = why;
    if (st.restarts >= options_.max_restarts) {
      st.phase = ShardState::Phase::kDead;
      return;
    }
    const double backoff = std::min(
        options_.restart_backoff_base_seconds *
            static_cast<double>(int64_t{1} << st.restarts),
        options_.restart_backoff_max_seconds);
    ++st.restarts;
    ++st.generation;
    st.phase = ShardState::Phase::kBackoff;
    st.backoff_until = SupervisorNowSeconds() + backoff;
  };

  for (size_t i = 0; i < n; ++i) {
    CROWDSKY_RETURN_NOT_OK(spawn(i));
  }

  std::vector<double> finish_times;
  auto all_settled = [&] {
    for (const ShardState& st : states) {
      if (st.phase == ShardState::Phase::kRunning ||
          st.phase == ShardState::Phase::kBackoff) {
        return false;
      }
    }
    return true;
  };

  while (!all_settled()) {
    // 1. Multiplex every live heartbeat pipe.
    std::vector<pollfd> fds;
    std::vector<size_t> fd_owner;
    for (size_t i = 0; i < n; ++i) {
      if (states[i].phase == ShardState::Phase::kRunning &&
          states[i].pipe_fd >= 0) {
        fds.push_back(pollfd{states[i].pipe_fd, POLLIN, 0});
        fd_owner.push_back(i);
      }
    }
    if (!fds.empty()) {
      poll(fds.data(), fds.size(),
           static_cast<int>(options_.poll_interval_seconds * 1000));
    }
    const double now = SupervisorNowSeconds();
    for (size_t f = 0; f < fds.size(); ++f) {
      if ((fds[f].revents & (POLLIN | POLLHUP)) == 0) continue;
      ShardState& st = states[fd_owner[f]];
      char buf[512];
      for (;;) {
        const ssize_t got = read(st.pipe_fd, buf, sizeof buf);
        if (got <= 0) {
          if (got == 0) CloseFd(&st.pipe_fd);  // writer gone; waitpid rules
          break;
        }
        st.line_buffer.append(buf, static_cast<size_t>(got));
        st.last_beat = now;
      }
      size_t pos;
      while ((pos = st.line_buffer.find('\n')) != std::string::npos) {
        const std::string line = st.line_buffer.substr(0, pos);
        st.line_buffer.erase(0, pos + 1);
        int64_t rounds = 0;
        if (std::sscanf(line.c_str(), "PROG rounds=%" SCNd64, &rounds) ==
            1) {
          st.rounds = std::max(st.rounds, rounds);
        }
      }
    }

    // 2. Reap exits and catch hung shards.
    for (size_t i = 0; i < n; ++i) {
      ShardState& st = states[i];
      if (st.phase != ShardState::Phase::kRunning) continue;
      int wstatus = 0;
      const pid_t reaped = waitpid(st.pid, &wstatus, WNOHANG);
      if (reaped == st.pid) {
        const bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
        const bool has_result = std::filesystem::exists(
            launches[i].spec.shard_dir + "/result.txt");
        if (clean && has_result) {
          CloseFd(&st.pipe_fd);
          st.pid = -1;
          st.phase = ShardState::Phase::kCompleted;
          st.finish_seconds = now - st.started_at;
          finish_times.push_back(st.finish_seconds);
        } else {
          std::string why;
          if (WIFSIGNALED(wstatus)) {
            why = "killed by signal " + std::to_string(WTERMSIG(wstatus));
          } else {
            why = "exit code " +
                  std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus)
                                                    : -1);
          }
          if (clean && !has_result) why = "exited 0 without a result file";
          handle_failure(i, why);
        }
        continue;
      }
      if (now - st.last_beat > options_.heartbeat_timeout_seconds) {
        // Hung (or wedged before HELLO): kill and treat as a crash.
        kill(st.pid, SIGKILL);
        waitpid(st.pid, &wstatus, 0);
        handle_failure(i, "heartbeat silence > " +
                              std::to_string(
                                  options_.heartbeat_timeout_seconds) +
                              "s (hang)");
      }
    }

    // 3. Relaunch shards whose backoff expired.
    const double relaunch_now = SupervisorNowSeconds();
    for (size_t i = 0; i < n; ++i) {
      if (states[i].phase == ShardState::Phase::kBackoff &&
          relaunch_now >= states[i].backoff_until) {
        CROWDSKY_RETURN_NOT_OK(spawn(i));
      }
    }

    // 4. Advisory straggler flagging once half the fleet finished.
    if (options_.straggler_factor > 0 &&
        finish_times.size() * 2 >= n && !finish_times.empty()) {
      std::vector<double> sorted = finish_times;
      std::sort(sorted.begin(), sorted.end());
      const double median = sorted[sorted.size() / 2];
      for (ShardState& st : states) {
        if (st.phase == ShardState::Phase::kRunning && median > 0 &&
            relaunch_now - st.started_at >
                options_.straggler_factor * median) {
          st.straggler = true;
        }
      }
    }
  }

  std::vector<ShardOutcome> outcomes(n);
  for (size_t i = 0; i < n; ++i) {
    outcomes[i].shard = launches[i].spec.shard;
    outcomes[i].completed =
        states[i].phase == ShardState::Phase::kCompleted;
    outcomes[i].dead = states[i].phase == ShardState::Phase::kDead;
    outcomes[i].restarts = states[i].restarts;
    outcomes[i].straggler = states[i].straggler;
    outcomes[i].last_rounds = states[i].rounds;
    outcomes[i].last_failure = states[i].last_failure;
  }
  return outcomes;
}

}  // namespace crowdsky::dist
