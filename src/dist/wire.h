// On-disk and on-pipe formats of the shard protocol.
//
// The coordinator hands each shard incarnation a *spec file* (key=value
// lines) naming the dataset CSV, the slice, the engine options and any
// injected faults; the shard writes heartbeat lines ("HELLO", "PROG
// rounds=N", "DONE") to an inherited pipe fd and, on success, an atomic
// *result file* (key=value lines, tmp+rename) with its candidates,
// accounting and exported answers in global tuple ids. Everything is
// line-oriented text so a torn write is detectable and a failed run
// debuggable with cat.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dist/options.h"

namespace crowdsky::dist {

/// Everything one shard incarnation needs to run. `engine` carries the
/// full per-shard engine configuration (durability dir already pointing
/// into the shard directory).
struct ShardSpec {
  int shard = 0;
  int shards = 1;
  int generation = 0;
  PartitionScheme partition = PartitionScheme::kRoundRobin;
  std::string dataset_csv;
  std::string shard_dir;
  /// Pipe fd (inherited across exec) for heartbeat lines; -1 = none.
  int heartbeat_fd = -1;
  EngineOptions engine;

  // Faults for this incarnation (all off by default).
  int64_t kill_at_round = 0;    ///< >0: _Exit(137) after N closed rounds
  int64_t kill_at_record = 0;   ///< >0: journal kill hook after N records
  int64_t tear_bytes = 0;       ///< with kill_at_record: torn-tail bytes
  bool hang_at_start = false;   ///< hang before HELLO
  int64_t hang_at_round = -1;   ///< >=0: stop heartbeating after N rounds
  int64_t slow_start_ms = 0;    ///< sleep before doing anything
};

/// What a completed shard wrote to its result file.
struct ShardResult {
  bool ok = false;
  std::string error;  ///< set when !ok
  std::vector<int> skyline;       ///< global ids
  std::vector<int> undetermined;  ///< global ids
  int64_t questions = 0;
  int64_t rounds = 0;
  std::vector<int64_t> questions_per_round;
  int64_t free_lookups = 0;
  int64_t retries = 0;
  double cost_usd = 0.0;
  int64_t incomplete_tuples = 0;
  int64_t resolved_questions = 0;
  int64_t unresolved_questions = 0;
  bool budget_exhausted = false;
  bool retries_exhausted = false;
  bool resumed = false;
  bool used_checkpoint = false;
  int64_t replayed_pair_attempts = 0;
  int64_t journal_records = 0;
  std::string termination_reason;
  /// Resolved answers among this shard's candidates, global ids,
  /// canonical orientation (attr:u:v:answer).
  std::vector<ImportedAnswer> answers;
};

std::string EncodeShardSpec(const ShardSpec& spec);
Result<ShardSpec> DecodeShardSpec(const std::string& text);

std::string EncodeShardResult(const ShardResult& result);
Result<ShardResult> DecodeShardResult(const std::string& text);

/// Reads/writes a whole file. WriteFileAtomic goes through path.tmp +
/// rename so a reader never observes a half-written file.
Result<std::string> ReadFileToString(const std::string& path);
Status WriteFileAtomic(const std::string& path, const std::string& content);

}  // namespace crowdsky::dist
