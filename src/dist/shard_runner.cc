#include "dist/shard_runner.h"

#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_set>
#include <vector>

#include <time.h>
#include <unistd.h>

#include "core/engine.h"
#include "data/csv.h"
#include "dist/partition.h"
#include "dist/wire.h"

namespace crowdsky::dist {
namespace {

/// Coarse sleep built on nanosleep (signal-safe, no chrono clock read).
void SleepMs(int64_t ms) {
  struct timespec ts;
  ts.tv_sec = static_cast<time_t>(ms / 1000);
  ts.tv_nsec = static_cast<long>((ms % 1000) * 1000000L);
  nanosleep(&ts, nullptr);
}

/// Injected hang: stop making progress (and stop heartbeating) forever.
/// The supervisor's heartbeat timeout is the only way out.
[[noreturn]] void HangForever() {
  for (;;) SleepMs(1000);
}

/// Line-oriented heartbeat writer over the inherited pipe fd. Write errors
/// are ignored: a shard whose supervisor died keeps computing, and the
/// result file is the authoritative output channel anyway.
class Heartbeat {
 public:
  explicit Heartbeat(int fd) : fd_(fd) {}

  void Send(const std::string& line) {
    if (fd_ < 0) return;
    std::string framed = line;
    framed.push_back('\n');
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n =
          write(fd_, framed.data() + off, framed.size() - off);
      if (n <= 0) return;
      off += static_cast<size_t>(n);
    }
  }

 private:
  int fd_;
};

int FailWithResult(const std::string& shard_dir, const std::string& error) {
  ShardResult r;
  r.ok = false;
  r.error = error;
  // Best-effort: the nonzero exit code is the authoritative signal.
  const Status ignored =
      WriteFileAtomic(shard_dir + "/result.txt", EncodeShardResult(r));
  (void)ignored;
  std::fprintf(stderr, "crowdsky shard: %s\n", error.c_str());
  return 1;
}

}  // namespace

int RunShardChildMode(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s --crowdsky_shard <spec-file>\n",
                 argc > 0 ? argv[0] : "shard");
    return 2;
  }
  // The supervisor may close its read end between our writes; computing on
  // regardless beats dying on SIGPIPE.
  signal(SIGPIPE, SIG_IGN);
  Result<std::string> spec_text = ReadFileToString(argv[2]);
  if (!spec_text.ok()) {
    std::fprintf(stderr, "crowdsky shard: %s\n",
                 spec_text.status().ToString().c_str());
    return 2;
  }
  Result<ShardSpec> spec_or = DecodeShardSpec(spec_text.ValueOrDie());
  if (!spec_or.ok()) {
    std::fprintf(stderr, "crowdsky shard: %s\n",
                 spec_or.status().ToString().c_str());
    return 2;
  }
  const ShardSpec spec = std::move(spec_or).ValueOrDie();

  if (spec.slow_start_ms > 0) SleepMs(spec.slow_start_ms);
  if (spec.hang_at_start) HangForever();

  Heartbeat heartbeat(spec.heartbeat_fd);
  heartbeat.Send("HELLO shard=" + std::to_string(spec.shard) +
                 " gen=" + std::to_string(spec.generation));

  // Journal kill hooks are per-incarnation: arm or disarm them explicitly
  // so a restarted shard never inherits its predecessor's crash plan.
  if (spec.kill_at_record > 0) {
    setenv("CROWDSKY_JOURNAL_KILL_AFTER",
           std::to_string(spec.kill_at_record).c_str(), 1);
    if (spec.tear_bytes > 0) {
      setenv("CROWDSKY_JOURNAL_KILL_TEAR",
             std::to_string(spec.tear_bytes).c_str(), 1);
    } else {
      unsetenv("CROWDSKY_JOURNAL_KILL_TEAR");
    }
  } else {
    unsetenv("CROWDSKY_JOURNAL_KILL_AFTER");
    unsetenv("CROWDSKY_JOURNAL_KILL_TEAR");
  }

  Result<Dataset> dataset_or = ReadCsvFile(spec.dataset_csv);
  if (!dataset_or.ok()) {
    return FailWithResult(spec.shard_dir,
                          dataset_or.status().ToString());
  }
  const Dataset& dataset = dataset_or.ValueOrDie();
  const std::vector<int> tuple_ids = ShardTupleIds(
      dataset.size(), spec.shards, spec.shard, spec.partition);
  if (tuple_ids.empty()) {
    return FailWithResult(spec.shard_dir,
                          "shard owns no tuples (more shards than tuples?)");
  }
  const Dataset local = dataset.Project(tuple_ids);

  EngineOptions options = spec.engine;
  options.export_answers = true;
  options.round_callback = [&](int64_t rounds) {
    if (spec.kill_at_round > 0 && rounds >= spec.kill_at_round) {
      std::_Exit(137);
    }
    if (spec.hang_at_round >= 0 && rounds >= spec.hang_at_round) {
      HangForever();
    }
    heartbeat.Send("PROG rounds=" + std::to_string(rounds));
  };

  Result<EngineResult> run = RunSkylineQuery(local, options);
  if (!run.ok()) {
    return FailWithResult(spec.shard_dir, run.status().ToString());
  }
  const EngineResult& engine_result = run.ValueOrDie();

  ShardResult out;
  out.ok = true;
  // Local -> global id mapping: Project assigned local id i to tuple_ids[i]
  // (ascending), so orientation and canonical order survive the mapping.
  for (const int local_id : engine_result.algo.skyline) {
    out.skyline.push_back(tuple_ids[static_cast<size_t>(local_id)]);
  }
  for (const int local_id :
       engine_result.algo.completeness.undetermined_tuples) {
    out.undetermined.push_back(tuple_ids[static_cast<size_t>(local_id)]);
  }
  out.questions = engine_result.algo.questions;
  out.rounds = engine_result.algo.rounds;
  out.questions_per_round = engine_result.algo.questions_per_round;
  out.free_lookups = engine_result.algo.free_lookups;
  out.retries = engine_result.algo.retries;
  out.cost_usd = engine_result.cost_usd;
  out.incomplete_tuples = engine_result.algo.incomplete_tuples;
  out.resolved_questions =
      engine_result.algo.completeness.resolved_questions;
  out.unresolved_questions =
      engine_result.algo.completeness.unresolved_questions;
  out.budget_exhausted = engine_result.algo.completeness.budget_exhausted;
  out.retries_exhausted = engine_result.algo.completeness.retries_exhausted;
  out.resumed = engine_result.durability.resumed;
  out.used_checkpoint = engine_result.durability.used_checkpoint;
  out.replayed_pair_attempts =
      engine_result.durability.replayed_pair_attempts;
  out.journal_records = engine_result.durability.journal_records;
  out.termination_reason =
      TerminationReasonName(engine_result.algo.termination.reason);
  // Export only the answers the merge can use: pairs whose endpoints are
  // both candidates (the skyline already includes every undetermined
  // tuple, so it *is* the candidate set).
  std::unordered_set<int> candidate(engine_result.algo.skyline.begin(),
                                    engine_result.algo.skyline.end());
  for (const ImportedAnswer& a : engine_result.exported_answers) {
    if (candidate.count(a.u) == 0 || candidate.count(a.v) == 0) continue;
    out.answers.push_back(
        ImportedAnswer{a.attr, tuple_ids[static_cast<size_t>(a.u)],
                       tuple_ids[static_cast<size_t>(a.v)], a.answer});
  }

  const Status write =
      WriteFileAtomic(spec.shard_dir + "/result.txt",
                      EncodeShardResult(out));
  if (!write.ok()) {
    std::fprintf(stderr, "crowdsky shard: %s\n", write.ToString().c_str());
    return 1;
  }
  heartbeat.Send("DONE");
  return 0;
}

}  // namespace crowdsky::dist
