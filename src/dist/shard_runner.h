// Shard child-process entry point. A shard-capable binary (any test or
// bench that embeds the coordinator) routes `--crowdsky_shard <spec>` from
// its main() to RunShardChildMode before anything else:
//
//   int main(int argc, char** argv) {
//     if (argc > 1 && std::string(argv[1]) == "--crowdsky_shard")
//       return crowdsky::dist::RunShardChildMode(argc, argv);
//     ...
//   }
//
// The child loads the dataset CSV named by the spec, recomputes its tuple
// slice with the shared partition function, runs the configured engine
// over it (resuming from the shard journal when told to), and writes its
// candidates + accounting + exported answers to an atomic result file —
// heartbeating HELLO/PROG/DONE on the inherited pipe fd throughout.
#pragma once

namespace crowdsky::dist {

/// Exit codes: 0 success, 1 engine/config error (result file carries the
/// message), 2 unusable spec.
int RunShardChildMode(int argc, char** argv);

}  // namespace crowdsky::dist
