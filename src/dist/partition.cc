#include "dist/partition.h"

#include "common/macros.h"
#include "common/random.h"

namespace crowdsky::dist {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kRoundRobin:
      return "round_robin";
    case PartitionScheme::kBlock:
      return "block";
    case PartitionScheme::kHash:
      return "hash";
  }
  return "?";
}

std::vector<int> ShardTupleIds(int num_tuples, int shards, int shard,
                               PartitionScheme scheme) {
  CROWDSKY_CHECK(num_tuples >= 0 && shards >= 1 && shard >= 0 &&
                 shard < shards);
  std::vector<int> ids;
  switch (scheme) {
    case PartitionScheme::kRoundRobin:
      for (int i = shard; i < num_tuples; i += shards) ids.push_back(i);
      break;
    case PartitionScheme::kBlock: {
      // First (num_tuples % shards) blocks get one extra tuple.
      const int base = num_tuples / shards;
      const int extra = num_tuples % shards;
      const int begin = shard * base + (shard < extra ? shard : extra);
      const int size = base + (shard < extra ? 1 : 0);
      for (int i = begin; i < begin + size; ++i) ids.push_back(i);
      break;
    }
    case PartitionScheme::kHash:
      for (int i = 0; i < num_tuples; ++i) {
        uint64_t state =
            static_cast<uint64_t>(i) + uint64_t{0x5113d15c0bae71d1};
        if (SplitMix64(&state) % static_cast<uint64_t>(shards) ==
            static_cast<uint64_t>(shard)) {
          ids.push_back(i);
        }
      }
      break;
  }
  return ids;
}

}  // namespace crowdsky::dist
