#include "dist/coordinator.h"

#include <algorithm>
#include <filesystem>
#include <string>
#include <unordered_map>
#include <vector>

#include "algo/evaluator.h"
#include "audit/shard_audit.h"
#include "common/macros.h"
#include "common/random.h"
#include "core/engine.h"
#include "data/csv.h"
#include "dist/partition.h"
#include "dist/supervisor.h"
#include "dist/wire.h"
#include "persist/journal.h"
#include "persist/recovery.h"

namespace crowdsky::dist {
namespace {

std::string ShardDir(const std::string& run_dir, int shard) {
  return run_dir + "/shard_" + std::to_string(shard);
}

/// What a permanently dead shard's journal proves it paid for: the cost of
/// every closed round plus, when paid answers follow the last round
/// boundary, the open tail counted as one more round. Zero when the shard
/// died before journaling anything.
double JournaledCost(const std::string& shard_dir,
                     const AmtCostModel& pricing) {
  Result<persist::RecoveredJournal> recovered =
      persist::ReadJournal(persist::JournalPath(shard_dir));
  if (!recovered.ok()) return 0.0;
  std::vector<int64_t> rounds;
  int64_t open_tail = 0;
  for (const persist::JournalRecord& record :
       recovered.ValueOrDie().records) {
    switch (record.kind) {
      case persist::JournalRecord::Kind::kPairAsk:
        open_tail += static_cast<int64_t>(record.attempts.size());
        break;
      case persist::JournalRecord::Kind::kUnary:
        ++open_tail;
        break;
      case persist::JournalRecord::Kind::kRoundEnd:
        rounds.push_back(record.round_questions);
        open_tail = 0;
        break;
      case persist::JournalRecord::Kind::kTermination:
        break;
    }
  }
  if (open_tail > 0) rounds.push_back(open_tail);
  return pricing.Cost(rounds);
}

Status ValidateOptions(const Dataset& dataset, const DistOptions& options) {
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  if (options.shards > dataset.size()) {
    return Status::InvalidArgument(
        "more shards than tuples: every shard needs a non-empty slice");
  }
  if (options.run_dir.empty()) {
    return Status::InvalidArgument("dist run_dir is required");
  }
  const Algorithm algo = options.engine.algorithm;
  if (algo != Algorithm::kCrowdSkySerial &&
      algo != Algorithm::kParallelDSet && algo != Algorithm::kParallelSL) {
    return Status::InvalidArgument(
        "sharded execution supports the CrowdSky-family algorithms only "
        "(the merge needs their best-effort/candidate semantics)");
  }
  if (!options.engine.durability.dir.empty()) {
    return Status::InvalidArgument(
        "engine.durability.dir is owned by the coordinator (per-shard "
        "directories under run_dir); leave it empty");
  }
  if (!options.engine.imported_answers.empty() ||
      options.engine.round_callback || options.engine.export_answers) {
    return Status::InvalidArgument(
        "engine.imported_answers / round_callback / export_answers are "
        "owned by the coordinator; leave them unset");
  }
  if (options.engine.governor.deadline_seconds > 0 ||
      options.engine.governor.cancel != nullptr) {
    return Status::InvalidArgument(
        "wall-clock deadlines and cancellation tokens do not cross the "
        "shard process boundary; use the supervisor's timeouts instead");
  }
  if (options.engine.crowdsky.known_crowd_values != nullptr) {
    return Status::InvalidArgument(
        "known_crowd_values does not serialize across the shard boundary");
  }
  if (options.engine.obs.level != obs::ObsLevel::kDisabled) {
    return Status::InvalidArgument(
        "per-shard observability is not plumbed through the shard "
        "protocol yet; run with obs disabled");
  }
  for (const ShardFaultInjection& fault : options.faults) {
    if (fault.shard < 0 || fault.shard >= options.shards) {
      return Status::InvalidArgument(
          "fault injection references shard " +
          std::to_string(fault.shard) + " of " +
          std::to_string(options.shards));
    }
  }
  return Status::OK();
}

}  // namespace

uint64_t ShardSeed(uint64_t base_seed, int shard) {
  uint64_t state = base_seed ^
                   (0x9e3779b97f4a7c15ULL *
                    (static_cast<uint64_t>(shard) + 1));
  return SplitMix64(&state);
}

Result<DistResult> RunShardedSkylineQuery(const Dataset& dataset,
                                          const DistOptions& options) {
  CROWDSKY_RETURN_NOT_OK(ValidateOptions(dataset, options));
  const int k = options.shards;

  std::error_code ec;
  std::filesystem::create_directories(options.run_dir, ec);
  if (ec) {
    return Status::IOError("cannot create run_dir '" + options.run_dir +
                           "': " + ec.message());
  }
  const std::string dataset_csv = options.run_dir + "/dataset.csv";
  if (!options.resume || !std::filesystem::exists(dataset_csv)) {
    CROWDSKY_RETURN_NOT_OK(WriteCsvFile(dataset, dataset_csv));
  }

  // Effective pricing (omega folded in), shared by every ledger below.
  AmtCostModel pricing = options.engine.cost_model;
  pricing.workers_per_question = options.engine.workers_per_question;

  // --- Launch & supervise the shard fleet --------------------------------
  std::vector<ShardLaunch> launches(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    const std::string shard_dir = ShardDir(options.run_dir, i);
    std::filesystem::create_directories(shard_dir, ec);
    if (ec) {
      return Status::IOError("cannot create shard dir '" + shard_dir +
                             "': " + ec.message());
    }
    ShardSpec& spec = launches[static_cast<size_t>(i)].spec;
    spec.shard = i;
    spec.shards = k;
    spec.partition = options.partition;
    spec.dataset_csv = dataset_csv;
    spec.shard_dir = shard_dir;
    spec.engine = options.engine;
    spec.engine.seed = ShardSeed(options.engine.seed, i);
    spec.engine.durability.dir = shard_dir;
    spec.engine.durability.resume =
        options.resume &&
        std::filesystem::exists(persist::JournalPath(shard_dir));
    if (options.engine.governor.max_cost_usd > 0) {
      // Even dollar slices; what the shards leave unspent funds the merge.
      spec.engine.governor.max_cost_usd =
          options.engine.governor.max_cost_usd / k;
    }
    launches[static_cast<size_t>(i)].faults = options.faults;
  }
  std::string shard_exe = options.shard_exe;
  if (shard_exe.empty()) shard_exe = "/proc/self/exe";
  ShardSupervisor supervisor(options.supervisor, shard_exe);
  std::vector<ShardOutcome> outcomes;
  CROWDSKY_ASSIGN_OR_RETURN(outcomes, supervisor.Run(launches));

  // --- Collect shard results ---------------------------------------------
  DistResult result;
  result.shards.resize(static_cast<size_t>(k));
  std::vector<ShardResult> shard_results(static_cast<size_t>(k));
  int64_t max_shard_rounds = 0;
  for (int i = 0; i < k; ++i) {
    const size_t si = static_cast<size_t>(i);
    const std::string shard_dir = ShardDir(options.run_dir, i);
    ShardReport& report = result.shards[si];
    report.shard = i;
    report.restarts = outcomes[si].restarts;
    report.straggler = outcomes[si].straggler;
    report.tuple_ids =
        ShardTupleIds(dataset.size(), k, i, options.partition);
    result.restarts_total += outcomes[si].restarts;
    result.stragglers += outcomes[si].straggler ? 1 : 0;
    if (!outcomes[si].completed) {
      report.state = ShardReport::State::kDead;
      report.termination_reason = "dead";
      report.cost_lost_usd = JournaledCost(shard_dir, pricing);
      result.cost_lost_usd += report.cost_lost_usd;
      ++result.shards_dead;
      continue;
    }
    Result<std::string> text =
        ReadFileToString(shard_dir + "/result.txt");
    if (!text.ok()) return text.status();
    Result<ShardResult> parsed = DecodeShardResult(text.ValueOrDie());
    if (!parsed.ok()) return parsed.status();
    ShardResult& shard = shard_results[si];
    shard = std::move(parsed).ValueOrDie();
    if (!shard.ok) {
      // Not a crash: the shard ran and reported a configuration/engine
      // error. That poisons the whole run.
      return Status::FailedPrecondition(
          "shard " + std::to_string(i) + " failed: " + shard.error);
    }
    report.state = ShardReport::State::kCompleted;
    report.candidates = shard.skyline;
    report.undetermined = shard.undetermined;
    report.questions = shard.questions;
    report.rounds = shard.rounds;
    report.questions_per_round = shard.questions_per_round;
    report.cost_usd = shard.cost_usd;
    report.replayed_pair_attempts = shard.replayed_pair_attempts;
    report.journal_records = shard.journal_records;
    report.resumed = shard.resumed;
    report.termination_reason = shard.termination_reason;
    result.total_questions += shard.questions;
    result.total_cost_usd += shard.cost_usd;
    max_shard_rounds = std::max(max_shard_rounds, shard.rounds);
  }
  result.total_cost_usd += result.cost_lost_usd;
  if (result.shards_dead == k) {
    return Status::FailedPrecondition(
        "every shard died; nothing to merge (see the shard journals under " +
        options.run_dir + ")");
  }

  // --- Bounded-round merge ------------------------------------------------
  std::vector<int> candidates;
  for (const ShardReport& report : result.shards) {
    candidates.insert(candidates.end(), report.candidates.begin(),
                      report.candidates.end());
  }
  std::sort(candidates.begin(), candidates.end());

  std::vector<int> merged_skyline;          // global ids
  std::vector<int> merge_undetermined;      // global ids
  std::vector<int64_t> merge_qpr;
  bool merge_budget_exhausted = false;
  bool merge_retries_exhausted = false;
  int64_t merge_resolved = 0;
  int64_t merge_unresolved = 0;
  if (k == 1) {
    // One shard's local skyline is the global skyline; no merge round.
    merged_skyline = candidates;
    merge_undetermined = result.shards[0].undetermined;
    merge_budget_exhausted = shard_results[0].budget_exhausted;
    merge_retries_exhausted = shard_results[0].retries_exhausted;
  } else {
    const Dataset merge_dataset = dataset.Project(candidates);
    // Global -> merge-local: position within the sorted candidate union.
    std::unordered_map<int, int> to_local;
    to_local.reserve(candidates.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      to_local[candidates[i]] = static_cast<int>(i);
    }
    EngineOptions merge_options = options.engine;
    merge_options.seed = ShardSeed(options.engine.seed, k);
    for (size_t si = 0; si < static_cast<size_t>(k); ++si) {
      for (const ImportedAnswer& a : shard_results[si].answers) {
        merge_options.imported_answers.push_back(ImportedAnswer{
            a.attr, to_local.at(a.u), to_local.at(a.v), a.answer});
      }
    }
    std::sort(merge_options.imported_answers.begin(),
              merge_options.imported_answers.end(),
              [](const ImportedAnswer& a, const ImportedAnswer& b) {
                if (a.attr != b.attr) return a.attr < b.attr;
                if (a.u != b.u) return a.u < b.u;
                return a.v < b.v;
              });
    const std::string merge_dir = options.run_dir + "/merge";
    merge_options.durability.dir = merge_dir;
    merge_options.durability.resume =
        options.resume &&
        std::filesystem::exists(persist::JournalPath(merge_dir));
    if (options.engine.governor.max_cost_usd > 0) {
      // The merge runs on whatever the cap has left. A fully spent cap
      // still needs a nonzero value here: 0 would mean "uncapped".
      const double remaining =
          options.engine.governor.max_cost_usd - result.total_cost_usd;
      merge_options.governor.max_cost_usd =
          std::max(remaining, pricing.reward_per_hit * 1e-6);
    }
    Result<EngineResult> merge_run =
        RunSkylineQuery(merge_dataset, merge_options);
    if (!merge_run.ok()) return merge_run.status();
    const EngineResult& merge = merge_run.ValueOrDie();
    for (const int local : merge.algo.skyline) {
      merged_skyline.push_back(candidates[static_cast<size_t>(local)]);
    }
    for (const int local : merge.algo.completeness.undetermined_tuples) {
      merge_undetermined.push_back(candidates[static_cast<size_t>(local)]);
    }
    merge_qpr = merge.algo.questions_per_round;
    merge_budget_exhausted = merge.algo.completeness.budget_exhausted;
    merge_retries_exhausted = merge.algo.completeness.retries_exhausted;
    merge_resolved = merge.algo.completeness.resolved_questions;
    merge_unresolved = merge.algo.completeness.unresolved_questions;
    result.merge.ran = true;
    result.merge.candidates = static_cast<int64_t>(candidates.size());
    result.merge.imported_answers =
        static_cast<int64_t>(merge_options.imported_answers.size());
    result.merge.questions = merge.algo.questions;
    result.merge.rounds = merge.algo.rounds;
    result.merge.cost_usd = merge.cost_usd;
    result.merge.resumed = merge.durability.resumed;
    result.total_questions += merge.algo.questions;
    result.total_cost_usd += merge.cost_usd;
  }

  // --- Aggregate result ---------------------------------------------------
  result.skyline = merged_skyline;
  result.rounds = max_shard_rounds + result.merge.rounds;
  result.skyline_labels.reserve(result.skyline.size());
  for (const int id : result.skyline) {
    result.skyline_labels.push_back(dataset.tuple(id).label);
  }

  CompletenessReport& completeness = result.completeness;
  completeness.undetermined_tuples = merge_undetermined;
  for (const ShardReport& report : result.shards) {
    if (report.state == ShardReport::State::kDead) {
      completeness.undetermined_tuples.insert(
          completeness.undetermined_tuples.end(), report.tuple_ids.begin(),
          report.tuple_ids.end());
    }
  }
  std::sort(completeness.undetermined_tuples.begin(),
            completeness.undetermined_tuples.end());
  completeness.complete = completeness.undetermined_tuples.empty() &&
                          result.shards_dead == 0;
  completeness.determined_tuples =
      dataset.size() -
      static_cast<int64_t>(completeness.undetermined_tuples.size());
  completeness.budget_exhausted = merge_budget_exhausted;
  completeness.retries_exhausted = merge_retries_exhausted;
  completeness.resolved_questions = merge_resolved;
  completeness.unresolved_questions = merge_unresolved;
  for (size_t si = 0; si < static_cast<size_t>(k); ++si) {
    completeness.resolved_questions += shard_results[si].resolved_questions;
    completeness.unresolved_questions +=
        shard_results[si].unresolved_questions;
    completeness.budget_exhausted |= shard_results[si].budget_exhausted;
    completeness.retries_exhausted |= shard_results[si].retries_exhausted;
  }
  result.accuracy = EvaluateNewSkylineAccuracy(dataset, result.skyline);

  // --- shard.* audit -------------------------------------------------------
  if (options.engine.crowdsky.audit) {
    audit::ShardMergeSnapshot snapshot;
    snapshot.num_tuples = dataset.size();
    for (const ShardReport& report : result.shards) {
      audit::ShardMergeSnapshot::Shard shard;
      shard.dead = report.state == ShardReport::State::kDead;
      shard.tuple_ids = report.tuple_ids;
      shard.candidates = report.candidates;
      shard.questions_per_round = report.questions_per_round;
      shard.questions = report.questions;
      shard.cost_usd = report.cost_usd;
      shard.cost_lost_usd = report.cost_lost_usd;
      snapshot.shards.push_back(std::move(shard));
    }
    snapshot.merged_skyline = result.skyline;
    snapshot.merge_questions_per_round = merge_qpr;
    snapshot.merge_questions = result.merge.questions;
    snapshot.merge_cost_usd = result.merge.cost_usd;
    snapshot.total_questions = result.total_questions;
    snapshot.total_cost_usd = result.total_cost_usd;
    snapshot.cost_cap_usd = options.engine.governor.max_cost_usd;
    snapshot.cost_model = pricing;
    snapshot.undetermined = completeness.undetermined_tuples;
    snapshot.complete = completeness.complete;
    audit::AuditReport report;
    audit::AuditShardMerge(snapshot, &report);
    CROWDSKY_CHECK_MSG(report.ok(), report.ToString().c_str());
  }
  return result;
}

}  // namespace crowdsky::dist
