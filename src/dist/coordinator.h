// Coordinator for shared-nothing sharded skyline execution.
//
// RunShardedSkylineQuery partitions the dataset across k supervised shard
// child processes (see supervisor.h), each running one CrowdSky driver over
// its slice with a private journal/checkpoint directory and an even slice
// of any governor dollar cap, then merges the surviving shards' candidate
// skylines with a bounded number of extra crowd rounds:
//
//   merge input   = union of the surviving shards' candidate sets (each
//                   shard's best-effort skyline, which by the in-by-default
//                   rule contains its true local skyline);
//   merge answers = every shard-paid answer among candidates, seeded into
//                   the merge session so only *cross-shard* pairs are paid
//                   for — the O(1)-round cross-validation;
//   merge output  = the skyline of the candidate union, which by
//                   transitivity of dominance equals the global skyline.
//
// Degradation: a permanently dead shard contributes nothing; its entire
// slice is excluded from the merged skyline and reported as undetermined
// in the aggregate CompletenessReport (a deliberate deviation from the
// in-by-default rule — a slice with *zero* evidence is a gap, not a set of
// tentative skyline members), and the money its journal proves it spent is
// surfaced as cost_lost_usd.
#pragma once

#include "common/result.h"
#include "data/dataset.h"
#include "dist/options.h"

namespace crowdsky::dist {

/// Deterministic per-shard seed derived from the engine seed; shard k
/// (one past the last shard) is the merge run's seed.
uint64_t ShardSeed(uint64_t base_seed, int shard);

/// Runs one sharded skyline query. Fails on invalid options or
/// coordinator-level I/O errors; shard crashes, hangs and permanent deaths
/// are handled (that is the point) and reported in the DistResult.
Result<DistResult> RunShardedSkylineQuery(const Dataset& dataset,
                                          const DistOptions& options);

}  // namespace crowdsky::dist
