// Deterministic tuple partitioning for sharded execution. Pure functions
// of (n, k, scheme): the coordinator, a freshly launched shard and a
// restarted shard all recompute identical slices, which is what makes a
// journal written by generation g replayable by generation g+1.
#pragma once

#include <vector>

#include "dist/options.h"

namespace crowdsky::dist {

/// Global tuple ids owned by `shard` (0-based) of `shards`, ascending.
/// The k slices are disjoint and cover [0, num_tuples) exactly.
std::vector<int> ShardTupleIds(int num_tuples, int shards, int shard,
                               PartitionScheme scheme);

}  // namespace crowdsky::dist
