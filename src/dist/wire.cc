#include "dist/wire.h"

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "persist/recovery.h"

namespace crowdsky::dist {
namespace {

// --- encoding helpers ----------------------------------------------------

void Put(std::string* out, const std::string& key, const std::string& v) {
  out->append(key);
  out->push_back('=');
  out->append(v);
  out->push_back('\n');
}

void PutI(std::string* out, const std::string& key, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  Put(out, key, buf);
}

void PutB(std::string* out, const std::string& key, bool v) {
  Put(out, key, v ? "1" : "0");
}

/// %.17g round-trips every finite double bit-exactly.
void PutF(std::string* out, const std::string& key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  Put(out, key, buf);
}

void PutIds(std::string* out, const std::string& key,
            const std::vector<int>& ids) {
  std::string v;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) v.push_back(',');
    v.append(std::to_string(ids[i]));
  }
  Put(out, key, v);
}

void PutI64s(std::string* out, const std::string& key,
             const std::vector<int64_t>& vals) {
  std::string v;
  for (size_t i = 0; i < vals.size(); ++i) {
    if (i > 0) v.push_back(',');
    v.append(std::to_string(vals[i]));
  }
  Put(out, key, v);
}

// --- decoding helpers ----------------------------------------------------

/// Key -> value map plus typed accessors; the first parse error sticks.
class Fields {
 public:
  explicit Fields(const std::string& text) {
    std::istringstream in(text);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const size_t eq = line.find('=');
      if (eq == std::string::npos) {
        Fail("line without '=': " + line);
        continue;
      }
      map_[line.substr(0, eq)] = line.substr(eq + 1);
    }
  }

  bool Has(const std::string& key) const { return map_.count(key) > 0; }

  std::string Str(const std::string& key, const std::string& fallback = "") {
    const auto it = map_.find(key);
    return it == map_.end() ? fallback : it->second;
  }

  int64_t Int(const std::string& key, int64_t fallback = 0) {
    const auto it = map_.find(key);
    if (it == map_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const long long v = std::strtoll(it->second.c_str(), &end, 10);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
      Fail("bad integer for '" + key + "': " + it->second);
      return fallback;
    }
    return v;
  }

  double Double(const std::string& key, double fallback = 0.0) {
    const auto it = map_.find(key);
    if (it == map_.end()) return fallback;
    errno = 0;
    char* end = nullptr;
    const double v = std::strtod(it->second.c_str(), &end);
    if (errno != 0 || end == it->second.c_str() || *end != '\0') {
      Fail("bad double for '" + key + "': " + it->second);
      return fallback;
    }
    return v;
  }

  bool Bool(const std::string& key, bool fallback = false) {
    return Int(key, fallback ? 1 : 0) != 0;
  }

  std::vector<int> Ids(const std::string& key) {
    std::vector<int> out;
    for (const int64_t v : Int64s(key)) out.push_back(static_cast<int>(v));
    return out;
  }

  std::vector<int64_t> Int64s(const std::string& key) {
    std::vector<int64_t> out;
    const std::string v = Str(key);
    if (v.empty()) return out;
    std::istringstream in(v);
    std::string item;
    while (std::getline(in, item, ',')) {
      errno = 0;
      char* end = nullptr;
      const long long x = std::strtoll(item.c_str(), &end, 10);
      if (errno != 0 || end == item.c_str() || *end != '\0') {
        Fail("bad integer list for '" + key + "': " + v);
        return out;
      }
      out.push_back(x);
    }
    return out;
  }

  void Fail(const std::string& detail) {
    if (error_.empty()) error_ = detail;
  }
  const std::string& error() const { return error_; }

 private:
  std::map<std::string, std::string> map_;
  std::string error_;
};

std::string EncodeAnswers(const std::vector<ImportedAnswer>& answers) {
  std::string v;
  for (size_t i = 0; i < answers.size(); ++i) {
    if (i > 0) v.push_back(';');
    v.append(std::to_string(answers[i].attr));
    v.push_back(':');
    v.append(std::to_string(answers[i].u));
    v.push_back(':');
    v.append(std::to_string(answers[i].v));
    v.push_back(':');
    v.append(std::to_string(static_cast<int>(answers[i].answer)));
  }
  return v;
}

Result<std::vector<ImportedAnswer>> DecodeAnswers(const std::string& text) {
  std::vector<ImportedAnswer> out;
  if (text.empty()) return out;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ';')) {
    ImportedAnswer a;
    int code = 0;
    if (std::sscanf(item.c_str(), "%d:%d:%d:%d", &a.attr, &a.u, &a.v,
                    &code) != 4 ||
        code < 0 || code > 2) {
      return Status::IOError("bad answer entry '" + item + "'");
    }
    a.answer = static_cast<Answer>(code);
    out.push_back(a);
  }
  return out;
}

}  // namespace

std::string EncodeShardSpec(const ShardSpec& spec) {
  const EngineOptions& e = spec.engine;
  std::string out;
  Put(&out, "format", "crowdsky-shard-spec-v1");
  PutI(&out, "shard", spec.shard);
  PutI(&out, "shards", spec.shards);
  PutI(&out, "generation", spec.generation);
  Put(&out, "partition", PartitionSchemeName(spec.partition));
  Put(&out, "dataset_csv", spec.dataset_csv);
  Put(&out, "shard_dir", spec.shard_dir);
  PutI(&out, "heartbeat_fd", spec.heartbeat_fd);

  Put(&out, "algorithm", AlgorithmName(e.algorithm));
  PutI(&out, "oracle", static_cast<int>(e.oracle));
  PutF(&out, "worker.p_correct", e.worker.p_correct);
  PutF(&out, "worker.p_stddev", e.worker.p_stddev);
  PutF(&out, "worker.spammer_fraction", e.worker.spammer_fraction);
  PutF(&out, "worker.unary_sigma", e.worker.unary_sigma);
  PutI(&out, "workers_per_question", e.workers_per_question);
  PutB(&out, "dynamic_voting", e.dynamic_voting);
  PutI(&out, "seed", static_cast<int64_t>(e.seed));
  PutI(&out, "max_questions", e.max_questions);
  PutI(&out, "market.pool_size", e.marketplace.pool_size);
  PutF(&out, "market.p_correct", e.marketplace.population.p_correct);
  PutF(&out, "market.p_stddev", e.marketplace.population.p_stddev);
  PutF(&out, "market.spammer_fraction",
       e.marketplace.population.spammer_fraction);
  PutF(&out, "market.unary_sigma", e.marketplace.population.unary_sigma);
  PutI(&out, "market.gold_questions", e.marketplace.gold_questions);
  PutF(&out, "market.qualification_threshold",
       e.marketplace.qualification_threshold);
  PutB(&out, "market.weighted_votes", e.marketplace.weighted_votes);
  PutF(&out, "faults.transient_error_rate",
       e.marketplace.faults.transient_error_rate);
  PutF(&out, "faults.hit_expiration_rate",
       e.marketplace.faults.hit_expiration_rate);
  PutI(&out, "faults.hit_expiration_rounds",
       e.marketplace.faults.hit_expiration_rounds);
  PutF(&out, "faults.worker_no_show_rate",
       e.marketplace.faults.worker_no_show_rate);
  PutF(&out, "faults.straggler_rate", e.marketplace.faults.straggler_rate);
  PutI(&out, "faults.straggler_delay_rounds",
       e.marketplace.faults.straggler_delay_rounds);
  PutI(&out, "market.seed", static_cast<int64_t>(e.marketplace.seed));
  PutI(&out, "retry.max_retries", e.retry.max_retries);
  PutI(&out, "retry.backoff_base_rounds", e.retry.backoff_base_rounds);
  PutI(&out, "retry.max_backoff_rounds", e.retry.max_backoff_rounds);
  PutF(&out, "cost.reward_per_hit", e.cost_model.reward_per_hit);
  PutI(&out, "cost.workers_per_question", e.cost_model.workers_per_question);
  PutI(&out, "cost.questions_per_hit", e.cost_model.questions_per_hit);
  PutI(&out, "governor.max_rounds", e.governor.max_rounds);
  PutF(&out, "governor.max_cost_usd", e.governor.max_cost_usd);
  PutI(&out, "governor.stall_rounds", e.governor.stall_rounds);
  PutB(&out, "durability.resume", e.durability.resume);
  PutI(&out, "durability.sync", static_cast<int>(e.durability.sync));
  PutI(&out, "durability.checkpoint_every_rounds",
       e.durability.checkpoint_every_rounds);
  PutB(&out, "pruning.use_p1", e.crowdsky.pruning.use_p1);
  PutB(&out, "pruning.use_p2", e.crowdsky.pruning.use_p2);
  PutB(&out, "pruning.use_p3", e.crowdsky.pruning.use_p3);
  PutB(&out, "pruning.use_completion_break",
       e.crowdsky.pruning.use_completion_break);
  PutB(&out, "pruning.use_transitivity", e.crowdsky.pruning.use_transitivity);
  PutI(&out, "contradiction_policy",
       static_cast<int>(e.crowdsky.contradiction_policy));
  PutI(&out, "multi_attr", static_cast<int>(e.crowdsky.multi_attr));
  PutB(&out, "audit", e.crowdsky.audit);

  PutI(&out, "fault.kill_at_round", spec.kill_at_round);
  PutI(&out, "fault.kill_at_record", spec.kill_at_record);
  PutI(&out, "fault.tear_bytes", spec.tear_bytes);
  PutB(&out, "fault.hang_at_start", spec.hang_at_start);
  PutI(&out, "fault.hang_at_round", spec.hang_at_round);
  PutI(&out, "fault.slow_start_ms", spec.slow_start_ms);
  return out;
}

Result<ShardSpec> DecodeShardSpec(const std::string& text) {
  Fields f(text);
  if (f.Str("format") != "crowdsky-shard-spec-v1") {
    return Status::IOError("not a crowdsky shard spec");
  }
  ShardSpec spec;
  spec.shard = static_cast<int>(f.Int("shard"));
  spec.shards = static_cast<int>(f.Int("shards", 1));
  spec.generation = static_cast<int>(f.Int("generation"));
  const std::string partition = f.Str("partition", "round_robin");
  if (partition == "round_robin") {
    spec.partition = PartitionScheme::kRoundRobin;
  } else if (partition == "block") {
    spec.partition = PartitionScheme::kBlock;
  } else if (partition == "hash") {
    spec.partition = PartitionScheme::kHash;
  } else {
    return Status::IOError("unknown partition scheme '" + partition + "'");
  }
  spec.dataset_csv = f.Str("dataset_csv");
  spec.shard_dir = f.Str("shard_dir");
  spec.heartbeat_fd = static_cast<int>(f.Int("heartbeat_fd", -1));

  EngineOptions& e = spec.engine;
  CROWDSKY_ASSIGN_OR_RETURN(e.algorithm, ParseAlgorithm(f.Str("algorithm")));
  e.oracle = static_cast<OracleKind>(f.Int("oracle"));
  e.worker.p_correct = f.Double("worker.p_correct", e.worker.p_correct);
  e.worker.p_stddev = f.Double("worker.p_stddev", e.worker.p_stddev);
  e.worker.spammer_fraction =
      f.Double("worker.spammer_fraction", e.worker.spammer_fraction);
  e.worker.unary_sigma = f.Double("worker.unary_sigma", e.worker.unary_sigma);
  e.workers_per_question =
      static_cast<int>(f.Int("workers_per_question", e.workers_per_question));
  e.dynamic_voting = f.Bool("dynamic_voting");
  e.seed = static_cast<uint64_t>(f.Int("seed", 42));
  e.max_questions = f.Int("max_questions");
  e.marketplace.pool_size =
      static_cast<int>(f.Int("market.pool_size", e.marketplace.pool_size));
  e.marketplace.population.p_correct =
      f.Double("market.p_correct", e.marketplace.population.p_correct);
  e.marketplace.population.p_stddev =
      f.Double("market.p_stddev", e.marketplace.population.p_stddev);
  e.marketplace.population.spammer_fraction = f.Double(
      "market.spammer_fraction", e.marketplace.population.spammer_fraction);
  e.marketplace.population.unary_sigma =
      f.Double("market.unary_sigma", e.marketplace.population.unary_sigma);
  e.marketplace.gold_questions = static_cast<int>(
      f.Int("market.gold_questions", e.marketplace.gold_questions));
  e.marketplace.qualification_threshold =
      f.Double("market.qualification_threshold",
               e.marketplace.qualification_threshold);
  e.marketplace.weighted_votes = f.Bool("market.weighted_votes");
  e.marketplace.faults.transient_error_rate =
      f.Double("faults.transient_error_rate");
  e.marketplace.faults.hit_expiration_rate =
      f.Double("faults.hit_expiration_rate");
  e.marketplace.faults.hit_expiration_rounds = static_cast<int>(f.Int(
      "faults.hit_expiration_rounds",
      e.marketplace.faults.hit_expiration_rounds));
  e.marketplace.faults.worker_no_show_rate =
      f.Double("faults.worker_no_show_rate");
  e.marketplace.faults.straggler_rate = f.Double("faults.straggler_rate");
  e.marketplace.faults.straggler_delay_rounds = static_cast<int>(f.Int(
      "faults.straggler_delay_rounds",
      e.marketplace.faults.straggler_delay_rounds));
  e.marketplace.seed = static_cast<uint64_t>(f.Int("market.seed"));
  e.retry.max_retries =
      static_cast<int>(f.Int("retry.max_retries", e.retry.max_retries));
  e.retry.backoff_base_rounds = static_cast<int>(
      f.Int("retry.backoff_base_rounds", e.retry.backoff_base_rounds));
  e.retry.max_backoff_rounds = static_cast<int>(
      f.Int("retry.max_backoff_rounds", e.retry.max_backoff_rounds));
  e.cost_model.reward_per_hit =
      f.Double("cost.reward_per_hit", e.cost_model.reward_per_hit);
  e.cost_model.workers_per_question = static_cast<int>(
      f.Int("cost.workers_per_question", e.cost_model.workers_per_question));
  e.cost_model.questions_per_hit = static_cast<int>(
      f.Int("cost.questions_per_hit", e.cost_model.questions_per_hit));
  e.governor.max_rounds = f.Int("governor.max_rounds");
  e.governor.max_cost_usd = f.Double("governor.max_cost_usd");
  e.governor.stall_rounds = static_cast<int>(f.Int("governor.stall_rounds"));
  e.durability.dir = spec.shard_dir;
  e.durability.resume = f.Bool("durability.resume");
  e.durability.sync = static_cast<persist::SyncMode>(f.Int(
      "durability.sync", static_cast<int>(persist::SyncMode::kFlush)));
  e.durability.checkpoint_every_rounds =
      static_cast<int>(f.Int("durability.checkpoint_every_rounds",
                             e.durability.checkpoint_every_rounds));
  e.crowdsky.pruning.use_p1 = f.Bool("pruning.use_p1", true);
  e.crowdsky.pruning.use_p2 = f.Bool("pruning.use_p2", true);
  e.crowdsky.pruning.use_p3 = f.Bool("pruning.use_p3", true);
  e.crowdsky.pruning.use_completion_break =
      f.Bool("pruning.use_completion_break", true);
  e.crowdsky.pruning.use_transitivity =
      f.Bool("pruning.use_transitivity", true);
  e.crowdsky.contradiction_policy =
      static_cast<ContradictionPolicy>(f.Int("contradiction_policy"));
  e.crowdsky.multi_attr =
      static_cast<MultiAttributeStrategy>(f.Int("multi_attr"));
  e.crowdsky.audit = f.Bool("audit");

  spec.kill_at_round = f.Int("fault.kill_at_round");
  spec.kill_at_record = f.Int("fault.kill_at_record");
  spec.tear_bytes = f.Int("fault.tear_bytes");
  spec.hang_at_start = f.Bool("fault.hang_at_start");
  spec.hang_at_round = f.Int("fault.hang_at_round", -1);
  spec.slow_start_ms = f.Int("fault.slow_start_ms");
  if (!f.error().empty()) {
    return Status::IOError("bad shard spec: " + f.error());
  }
  return spec;
}

std::string EncodeShardResult(const ShardResult& result) {
  std::string out;
  Put(&out, "format", "crowdsky-shard-result-v1");
  PutB(&out, "ok", result.ok);
  if (!result.ok) {
    // Errors are single-line by construction (Status messages).
    std::string msg = result.error;
    for (char& c : msg) {
      if (c == '\n') c = ' ';
    }
    Put(&out, "error", msg);
    return out;
  }
  PutIds(&out, "skyline", result.skyline);
  PutIds(&out, "undetermined", result.undetermined);
  PutI(&out, "questions", result.questions);
  PutI(&out, "rounds", result.rounds);
  PutI64s(&out, "questions_per_round", result.questions_per_round);
  PutI(&out, "free_lookups", result.free_lookups);
  PutI(&out, "retries", result.retries);
  PutF(&out, "cost_usd", result.cost_usd);
  PutI(&out, "incomplete_tuples", result.incomplete_tuples);
  PutI(&out, "resolved_questions", result.resolved_questions);
  PutI(&out, "unresolved_questions", result.unresolved_questions);
  PutB(&out, "budget_exhausted", result.budget_exhausted);
  PutB(&out, "retries_exhausted", result.retries_exhausted);
  PutB(&out, "resumed", result.resumed);
  PutB(&out, "used_checkpoint", result.used_checkpoint);
  PutI(&out, "replayed_pair_attempts", result.replayed_pair_attempts);
  PutI(&out, "journal_records", result.journal_records);
  Put(&out, "termination", result.termination_reason);
  Put(&out, "answers", EncodeAnswers(result.answers));
  return out;
}

Result<ShardResult> DecodeShardResult(const std::string& text) {
  Fields f(text);
  if (f.Str("format") != "crowdsky-shard-result-v1") {
    return Status::IOError("not a crowdsky shard result");
  }
  ShardResult r;
  r.ok = f.Bool("ok");
  r.error = f.Str("error");
  r.skyline = f.Ids("skyline");
  r.undetermined = f.Ids("undetermined");
  r.questions = f.Int("questions");
  r.rounds = f.Int("rounds");
  r.questions_per_round = f.Int64s("questions_per_round");
  r.free_lookups = f.Int("free_lookups");
  r.retries = f.Int("retries");
  r.cost_usd = f.Double("cost_usd");
  r.incomplete_tuples = f.Int("incomplete_tuples");
  r.resolved_questions = f.Int("resolved_questions");
  r.unresolved_questions = f.Int("unresolved_questions");
  r.budget_exhausted = f.Bool("budget_exhausted");
  r.retries_exhausted = f.Bool("retries_exhausted");
  r.resumed = f.Bool("resumed");
  r.used_checkpoint = f.Bool("used_checkpoint");
  r.replayed_pair_attempts = f.Int("replayed_pair_attempts");
  r.journal_records = f.Int("journal_records");
  r.termination_reason = f.Str("termination");
  CROWDSKY_ASSIGN_OR_RETURN(r.answers, DecodeAnswers(f.Str("answers")));
  if (!f.error().empty()) {
    return Status::IOError("bad shard result: " + f.error());
  }
  return r;
}

Result<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed for '" + path + "'");
  return buf.str();
}

Status WriteFileAtomic(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot create '" + tmp + "'");
    out << content;
    out.flush();
    if (!out) return Status::IOError("write failed for '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename failed: " + tmp + " -> " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

}  // namespace crowdsky::dist
