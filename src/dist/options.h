// Configuration and result types for shared-nothing sharded execution
// (src/dist): k shard child processes, each running one CrowdSky driver
// over its tuple slice with a private journal/checkpoint directory and
// governor budget slice, supervised for crashes/hangs/stragglers, and a
// bounded-round merge that cross-validates the shards' candidate skylines.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "algo/metrics.h"
#include "algo/run_result.h"
#include "core/engine.h"

namespace crowdsky::dist {

/// How tuples are assigned to shards. All schemes are pure functions of
/// (tuple id, shard count), so a restarted shard recomputes exactly the
/// slice its journal was written against.
enum class PartitionScheme {
  kRoundRobin,  ///< tuple i -> shard i % k (default: balanced, order-mixing)
  kBlock,       ///< contiguous ranges of near-equal size
  kHash,        ///< SplitMix64(i) % k (decorrelates from input order)
};

/// Stable lowercase name ("round_robin", "block", "hash").
const char* PartitionSchemeName(PartitionScheme scheme);

/// Process-level fault kinds, extending the crowd-level FaultInjector's
/// seeded determinism to whole shards. Each injection targets one shard
/// *incarnation* (generation 0 = first launch, 1 = first restart, ...), so
/// a test can kill generation 0 and let generation 1 run clean.
enum class ShardFaultKind {
  kKillAtRound,      ///< _Exit(137) once `value` crowd rounds have closed
  kKillAtRecord,     ///< _Exit(137) after the value-th journal record
  kTornTailAtRecord, ///< kKillAtRecord plus a torn garbage tail
  kHangAtStart,      ///< hang before the HELLO heartbeat (startup timeout)
  kHangAtRound,      ///< stop heartbeating after `value` rounds (mid-run hang)
  kSlowStart,        ///< sleep `value` ms before doing anything (straggler)
};

/// One injected process-level fault.
struct ShardFaultInjection {
  int shard = 0;
  ShardFaultKind kind = ShardFaultKind::kKillAtRound;
  /// Round count, record count, or milliseconds depending on `kind`.
  int64_t value = 0;
  /// Torn-tail byte count for kTornTailAtRecord.
  int64_t tear_bytes = 8;
  /// Which incarnation of the shard the fault applies to.
  int generation = 0;
};

/// Supervisor policy. The defaults are generous enough that a healthy
/// shard never trips them; chaos tests shrink the timeout to seconds.
struct SupervisorOptions {
  /// Heartbeat silence (no HELLO/PROG/DONE line) after which a shard is
  /// presumed hung, killed and restarted.
  double heartbeat_timeout_seconds = 30.0;
  /// Restarts per shard before it is declared permanently dead.
  int max_restarts = 3;
  /// Exponential backoff between restarts: base * 2^(restart-1), capped.
  double restart_backoff_base_seconds = 0.05;
  double restart_backoff_max_seconds = 1.0;
  /// A still-running shard is flagged a straggler once at least half the
  /// shards finished and it has been running longer than this factor times
  /// the median finish time (0 disables flagging).
  double straggler_factor = 4.0;
  /// Supervision loop poll interval.
  double poll_interval_seconds = 0.02;
};

/// Everything configurable about one sharded run.
struct DistOptions {
  /// Shard count k (>= 1). k == 1 degenerates to one supervised child and
  /// no merge phase.
  int shards = 2;
  PartitionScheme partition = PartitionScheme::kRoundRobin;
  /// Per-shard engine template. `durability.dir`, `imported_answers`,
  /// `round_callback` and `export_answers` are owned by the coordinator
  /// and must be unset; a governor dollar cap is split evenly across the
  /// shards with the remainder funding the merge. CrowdSky-family
  /// algorithms only.
  EngineOptions engine;
  /// Scratch root: dataset.csv, shard_<i>/ (spec, journal, checkpoint,
  /// result), merge/. Required.
  std::string run_dir;
  /// Shard-capable executable (its main() must route
  /// `--crowdsky_shard <spec>` to RunShardChildMode). Empty =
  /// /proc/self/exe, i.e. the embedding binary itself.
  std::string shard_exe;
  SupervisorOptions supervisor;
  /// Seeded process-level fault plan.
  std::vector<ShardFaultInjection> faults;
  /// Resume a previously interrupted sharded run from run_dir: shards and
  /// the merge resume from their journals (zero re-paid questions).
  bool resume = false;
};

/// Per-shard outcome inside a DistResult.
struct ShardReport {
  enum class State : uint8_t {
    kCompleted = 0,  ///< produced a result (possibly after restarts)
    kDead = 1,       ///< exhausted max_restarts; its slice is unknown
  };
  int shard = 0;
  State state = State::kCompleted;
  int restarts = 0;
  bool straggler = false;
  /// Global tuple ids of this shard's slice.
  std::vector<int> tuple_ids;
  /// Global ids of the local skyline candidates (skyline + undetermined)
  /// this shard contributed to the merge. Empty for dead shards.
  std::vector<int> candidates;
  /// Global ids still undetermined at shard level.
  std::vector<int> undetermined;
  int64_t questions = 0;
  int64_t rounds = 0;
  std::vector<int64_t> questions_per_round;
  double cost_usd = 0.0;
  /// Money a permanently dead shard spent before dying (recovered from its
  /// journal; the answers bought nothing the merge could use).
  double cost_lost_usd = 0.0;
  int64_t replayed_pair_attempts = 0;
  int64_t journal_records = 0;
  bool resumed = false;
  std::string termination_reason;  ///< TerminationReasonName or "dead"
};

/// Merge-phase accounting.
struct MergeStats {
  /// Ran at all (false when k == 1 or every shard died).
  bool ran = false;
  /// Tuples entering the merge (union of surviving candidates).
  int64_t candidates = 0;
  /// Shard answers seeded into the merge session (paid once, by a shard).
  int64_t imported_answers = 0;
  /// New cross-shard questions the merge paid for.
  int64_t questions = 0;
  /// Extra crowd rounds the merge consumed (the bounded-round overhead).
  int64_t rounds = 0;
  double cost_usd = 0.0;
  bool resumed = false;
};

/// Output of one sharded run.
struct DistResult {
  /// Global skyline tuple ids, ascending. With a dead shard this covers
  /// surviving shards only (see `completeness`).
  std::vector<int> skyline;
  std::vector<std::string> skyline_labels;
  /// Aggregate completeness: undetermined tuples from surviving shards
  /// that the merge could not settle, plus every tuple of a dead shard.
  CompletenessReport completeness;
  AccuracyMetrics accuracy;
  double total_cost_usd = 0.0;
  double cost_lost_usd = 0.0;
  int64_t total_questions = 0;
  /// Crowd-round latency: shards run concurrently, so max over shards,
  /// plus the merge's extra rounds.
  int64_t rounds = 0;
  std::vector<ShardReport> shards;
  MergeStats merge;
  int shards_dead = 0;
  int restarts_total = 0;
  int stragglers = 0;
};

}  // namespace crowdsky::dist
